package seagull_test

import (
	"fmt"
	"log"
	"time"

	"seagull"
)

// ExampleNewSystem shows the minimal end-to-end flow: load a fleet, run the
// weekly pipeline, schedule backups.
func ExampleNewSystem() {
	sys, err := seagull.NewSystem(seagull.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fleet := seagull.GenerateFleet(seagull.FleetConfig{
		Region: "demo", Servers: 40, Weeks: 4, Seed: 1,
	})
	if _, err := sys.LoadFleet(fleet); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RunWeeks("demo", 0, 3, seagull.PipelineConfig{}); err != nil {
		log.Fatal(err)
	}
	decisions, err := sys.ScheduleBackups("demo", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(decisions) > 0)
	// Output: true
}

// ExamplePredictDay trains the deployed heuristic on a week of history and
// predicts the next day.
func ExamplePredictDay() {
	// A flat 30% CPU server.
	vals := make([]float64, 7*288)
	for i := range vals {
		vals[i] = 30
	}
	history := seagull.Series{
		Start:    time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC),
		Interval: 5 * time.Minute,
		Values:   vals,
	}
	m, err := seagull.NewModel(seagull.ModelPersistentPrevDay, 1)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := seagull.PredictDay(m, history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d observations, mean %.0f%% CPU\n", pred.Len(), pred.Mean())
	// Output: 288 observations, mean 30% CPU
}

// ExampleEvaluateDay judges a backup-day prediction with the paper's two
// orthogonal metrics.
func ExampleEvaluateDay() {
	mk := func(level func(i int) float64) seagull.Series {
		vals := make([]float64, 288)
		for i := range vals {
			vals[i] = level(i)
		}
		return seagull.Series{
			Start:    time.Date(2019, 12, 2, 0, 0, 0, 0, time.UTC),
			Interval: 5 * time.Minute,
			Values:   vals,
		}
	}
	busyMidday := func(i int) float64 {
		if i >= 96 && i < 192 {
			return 70
		}
		return 10
	}
	trueDay := mk(busyMidday)
	predDay := mk(busyMidday) // a perfect forecast

	res, err := seagull.EvaluateDay(trueDay, predDay, 12, seagull.DefaultMetrics())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window correct: %v, load accurate: %v\n", res.Window.Correct, res.WindowAccurate)
	// Output: window correct: true, load accurate: true
}
