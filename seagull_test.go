package seagull

import (
	"net/http/httptest"
	"os"
	"testing"

	"seagull/internal/registry"
	"seagull/internal/serving"
)

func newTestSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

func TestSystemEndToEnd(t *testing.T) {
	sys := newTestSystem(t)
	fleet := GenerateFleet(FleetConfig{Region: "e2e", Servers: 60, Weeks: 4, Seed: 5})
	rows, err := sys.LoadFleet(fleet)
	if err != nil || rows == 0 {
		t.Fatalf("LoadFleet rows=%d err=%v", rows, err)
	}

	res, err := sys.RunWeeks("e2e", 0, 3, PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Week != 3 || res.Summary.Servers == 0 {
		t.Fatalf("final result = %+v", res)
	}
	if res.Summary.PctCorrect < 0.85 {
		t.Errorf("LL correct = %.3f", res.Summary.PctCorrect)
	}

	decisions, err := sys.ScheduleBackups("e2e", 3)
	if err != nil || len(decisions) == 0 {
		t.Fatalf("decisions=%d err=%v", len(decisions), err)
	}
	if sys.Fabric.Len() != len(decisions) {
		t.Errorf("fabric has %d props for %d decisions", sys.Fabric.Len(), len(decisions))
	}

	im, err := EvaluateImpact(decisions, FleetTrueDay(fleet), DefaultMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if im.Decisions == 0 {
		t.Fatalf("impact = %+v", im)
	}

	// Dashboard has the four runs.
	sum := sys.DashboardSummary()
	if sum.Runs != 4 || sum.Succeeded != 4 {
		t.Errorf("dashboard = %+v", sum)
	}
}

func TestSystemTempDirLifecycle(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := sys.DataDir()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("data dir missing: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Error("owned temp dir should be removed on Close")
	}
}

func TestSystemServingHandler(t *testing.T) {
	sys := newTestSystem(t)
	// Deploy a model directly and serve it.
	sys.Registry.Deploy(registry.Target{Scenario: "backup", Region: "api"}, ModelPersistentPrevDay, "")
	srv := httptest.NewServer(sys.Handler())
	defer srv.Close()

	client := serving.NewClient(srv.URL)
	if !client.Healthy() {
		t.Fatal("endpoint unhealthy")
	}
	fleet := GenerateFleet(FleetConfig{Region: "api", Servers: 1, Weeks: 1, Seed: 2,
		Mix: Mix{Stable: 1}})
	hist := fleet.Servers[0].Load()
	pred, resp, err := client.Predict("backup", "api", hist, 288)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != ModelPersistentPrevDay || pred.Len() != 288 {
		t.Errorf("resp=%+v len=%d", resp, pred.Len())
	}
}

func TestPublicModelFactory(t *testing.T) {
	for _, name := range StandardModels() {
		m, err := NewModel(name, 1)
		if err != nil || m.Name() != name {
			t.Errorf("NewModel(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := NewModel("bogus", 1); err == nil {
		t.Error("bogus model should error")
	}
	// StandardModels returns a copy.
	s := StandardModels()
	s[0] = "mutated"
	if StandardModels()[0] == "mutated" {
		t.Error("StandardModels must return a copy")
	}
}

func TestPublicClassify(t *testing.T) {
	fleet := GenerateFleet(FleetConfig{Region: "c", Servers: 20, Weeks: 4, Seed: 7, Mix: Mix{Stable: 1}})
	sum := NewClassSummary()
	for _, srv := range fleet.Servers {
		cat, err := Classify(srv.Load(), srv.LifespanDays(), DefaultMetrics())
		if err != nil {
			t.Fatal(err)
		}
		sum.Add(cat)
	}
	if sum.Pct(CategoryStable) < 0.9 {
		t.Errorf("stable share = %.2f", sum.Pct(CategoryStable))
	}
}

func TestPublicAutoscale(t *testing.T) {
	dbs := GenerateSQL(SQLConfig{Databases: 30, Days: 9, Seed: 3})
	stable, total, err := ClassifySQLFleet(dbs)
	if err != nil || total != 30 {
		t.Fatalf("classify: %d/%d err=%v", stable, total, err)
	}
	evs, err := CompareAutoscaleModels([]string{ModelPersistentPrevDay}, dbs, AutoscaleConfig{})
	if err != nil || len(evs) != 1 || evs[0].Databases == 0 {
		t.Fatalf("evals=%+v err=%v", evs, err)
	}
}

func TestFleetTrueDayMisses(t *testing.T) {
	fleet := GenerateFleet(FleetConfig{Region: "m", Servers: 2, Weeks: 1, Seed: 4})
	td := FleetTrueDay(fleet)
	if _, ok := td("ghost", fleet.Config.Start); ok {
		t.Error("unknown server should miss")
	}
	if _, ok := td(fleet.Servers[0].ID, fleet.Config.Start.AddDate(0, 0, 100)); ok {
		t.Error("day outside span should miss")
	}
	if day, ok := td(fleet.Servers[0].ID, fleet.Config.Start); !ok || day.Len() != 288 {
		t.Errorf("valid day: ok=%v len=%d", ok, day.Len())
	}
}
