// Quickstart: the smallest end-to-end Seagull run.
//
// It generates a one-region fleet, loads the telemetry into the system, runs
// the weekly pipeline for a month, schedules backups into predicted
// lowest-load windows, and prints a handful of decisions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seagull"
)

func main() {
	log.SetFlags(0)

	sys, err := seagull.NewSystem(seagull.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A small regional fleet with the paper's class mix: mostly stable and
	// short-lived servers, a few pattern-less ones.
	fleet := seagull.GenerateFleet(seagull.FleetConfig{
		Region: "westus", Servers: 120, Weeks: 4, Seed: 7,
	})
	rows, err := sys.LoadFleet(fleet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d telemetry rows for %d servers\n", rows, len(fleet.Servers))

	// Run the weekly pipeline for the whole month. Week 3's run knows three
	// weeks of history, enough for Definition 9's predictability gate.
	res, err := sys.RunWeeks("westus", 0, 3, seagull.PipelineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("week 3: %d servers evaluated, LL windows correct %.1f%%, predictable %.1f%%\n",
		res.Summary.Servers, 100*res.Summary.PctCorrect, 100*res.Summary.PctPredictable)

	// Schedule the final week's backups.
	decisions, err := sys.ScheduleBackups("westus", 3)
	if err != nil {
		log.Fatal(err)
	}
	moved := 0
	for _, d := range decisions {
		if d.Source == "predicted" {
			moved++
		}
	}
	fmt.Printf("scheduled %d backups, %d into predicted lowest-load windows\n",
		len(decisions), moved)

	fmt.Println("\nsample decisions:")
	for i, d := range decisions {
		if i == 5 {
			break
		}
		fmt.Printf("  %-22s backup day %s window %s (%s)\n",
			d.ServerID, d.BackupDay.Format("Mon 2006-01-02"),
			d.Start.Format("15:04"), d.Source)
	}

	// How good were the choices against the true load?
	impact, err := seagull.EvaluateImpact(decisions, seagull.FleetTrueDay(fleet), seagull.DefaultMetrics())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nimpact: %d scheduled | default-already-LL %.1f%% | moved %.1f%% | incorrect %.1f%%\n",
		impact.Scheduled, 100*impact.PctDefaultWasLL(), 100*impact.PctMoved(), 100*impact.PctIncorrect())
}
