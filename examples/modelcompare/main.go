// Model comparison: the Section 5 experiment in miniature.
//
// The program takes unstable servers (the 4.2% without recognizable
// patterns — the only class where ML models could beat the persistent
// forecast heuristic), trains every model in the zoo, and reports the three
// paper metrics per model along with training+inference runtime — the data
// behind Figure 11.
//
//	go run ./examples/modelcompare
package main

import (
	"fmt"
	"log"
	"time"

	"seagull"
)

func main() {
	log.SetFlags(0)

	fleet := seagull.GenerateFleet(seagull.FleetConfig{
		Region: "unstable", Servers: 30, Weeks: 4, Seed: 23,
		Mix: seagull.Mix{NoPattern: 1}, // the class ML models target (§5.3.3)
	})
	mcfg := seagull.DefaultMetrics()

	fmt.Println("model                    LL-correct  LL-accurate  predictable  train+infer")
	fmt.Println("-----------------------  ----------  -----------  -----------  -----------")
	for _, name := range seagull.StandardModels() {
		start := time.Now()
		days, correct, accurate := 0, 0, 0
		servers, predictable := 0, 0
		for _, srv := range fleet.Servers {
			ppd := srv.Load().PointsPerDay()
			var results []seagull.DayResult
			// Three weekly backup-day evaluations per server (Definition 9).
			for week := 1; week <= 3; week++ {
				dayIdx := (week*7 + int(srv.BackupDay)) * ppd
				if dayIdx+ppd > srv.Load().Len() || dayIdx < 3*ppd {
					continue
				}
				trainFrom := dayIdx - 7*ppd
				if trainFrom < 0 {
					trainFrom = 0
				}
				history, err := srv.Load().Slice(trainFrom, dayIdx)
				if err != nil {
					log.Fatal(err)
				}
				m, err := seagull.NewModel(name, 23)
				if err != nil {
					log.Fatal(err)
				}
				pred, err := seagull.PredictDay(m, history)
				if err != nil {
					continue
				}
				trueDay, err := srv.Load().Slice(dayIdx, dayIdx+ppd)
				if err != nil {
					log.Fatal(err)
				}
				dr, err := seagull.EvaluateDay(trueDay.FillGaps(), pred, srv.WindowPoints(), mcfg)
				if err != nil {
					log.Fatal(err)
				}
				results = append(results, dr)
				days++
				if dr.Window.Correct {
					correct++
				}
				if dr.WindowAccurate {
					accurate++
				}
			}
			if len(results) > 0 {
				servers++
				if seagull.Predictable(results, mcfg) {
					predictable++
				}
			}
		}
		fmt.Printf("%-23s  %9.1f%%  %10.1f%%  %10.1f%%  %11v\n",
			name,
			100*float64(correct)/float64(max(days, 1)),
			100*float64(accurate)/float64(max(days, 1)),
			100*float64(predictable)/float64(max(servers, 1)),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\npaper finding (§5.4): ML accuracy is not significantly higher than persistent")
	fmt.Println("forecast, which needs no training — so persistent forecast was deployed.")
}
