// Backup scheduling: the paper's production scenario at multi-region scale.
//
// Four regions of different sizes run the weekly pipeline for a month. The
// backup scheduler then moves every predictable server's backup into its
// predicted lowest-load window, and the program reports the Figure 13(a)
// impact buckets plus the operations dashboard.
//
//	go run ./examples/backupscheduling
package main

import (
	"fmt"
	"log"

	"seagull"
)

func main() {
	log.SetFlags(0)

	sys, err := seagull.NewSystem(seagull.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	regions := map[string]int{
		"westus": 150, "eastus": 120, "westeurope": 90, "southeastasia": 60,
	}
	fleets := map[string]*seagull.Fleet{}
	seed := int64(11)
	for region, n := range regions {
		// A pattern-heavier mix than Figure 3's fleet average: the servers
		// whose backups actually benefit from rescheduling are the ones with
		// pronounced daily activity (the paper's "hundreds of top-revenue
		// customers" class).
		fleet := seagull.GenerateFleet(seagull.FleetConfig{
			Region: region, Servers: n, Weeks: 4, Seed: seed,
			Mix: seagull.Mix{ShortLived: 0.2, Stable: 0.45, Daily: 0.25, Weekly: 0.05, NoPattern: 0.05},
		})
		seed += 101
		if _, err := sys.LoadFleet(fleet); err != nil {
			log.Fatal(err)
		}
		fleets[region] = fleet
	}

	// The pipeline scheduler runs once a week per region (Section 2.2).
	for region := range regions {
		res, err := sys.RunWeeks(region, 0, 3, seagull.PipelineConfig{})
		if err != nil {
			log.Fatalf("%s: %v", region, err)
		}
		fmt.Printf("%-14s week 3: %3d servers, LL correct %.1f%%, accurate %.1f%%, predictable %.1f%%\n",
			region, res.Summary.Servers, 100*res.Summary.PctCorrect,
			100*res.Summary.PctAccurate, 100*res.Summary.PctPredictable)
	}

	// Schedule and assess the final week in every region.
	fmt.Println("\nscheduling impact (Figure 13(a) accounting):")
	totalImproved := 0
	for region, fleet := range fleets {
		decisions, err := sys.ScheduleBackups(region, 3)
		if err != nil {
			log.Fatal(err)
		}
		impact, err := seagull.EvaluateImpact(decisions, seagull.FleetTrueDay(fleet), seagull.DefaultMetrics())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s scheduled=%3d default-was-LL=%.1f%% moved=%.1f%% incorrect=%.1f%% improved=%.1fh\n",
			region, impact.Scheduled, 100*impact.PctDefaultWasLL(),
			100*impact.PctMoved(), 100*impact.PctIncorrect(),
			float64(impact.ImprovedMinutes)/60)
		totalImproved += impact.ImprovedMinutes
	}
	fmt.Printf("total improved customer experience this week: %.1f hours\n",
		float64(totalImproved)/60)

	// The Application-Insights-style dashboard the on-call engineer watches.
	sum := sys.DashboardSummary()
	fmt.Printf("\ndashboard: %d runs (%d ok, %d failed) across %d regions, mean runtime %v\n",
		sum.Runs, sum.Succeeded, sum.Failed, len(sum.Regions), sum.MeanRuntime.Round(1000000))
	for stage, mean := range sum.StageMeans {
		fmt.Printf("  stage %-20s mean %v\n", stage, mean.Round(1000000))
	}
}
