// Streaming: the online telemetry loop end to end — a weekly batch run
// stores predictions, live telemetry flows in through POST /v2/ingest,
// one server's backup day runs hot, a drift sweep flags exactly that
// server, and the refresher retrains it through the warm model pool and
// republishes the prediction. A fleet where one server drifted costs one
// retrain, not a weekly run.
//
// The finale is the durability seam: the live rings are snapshotted to the
// lake, a second System (a "restarted process") restores them, and its
// live windows are bit-identical — a restart costs nothing re-fed.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"seagull"
	"seagull/internal/serving"
)

func main() {
	log.SetFlags(0)

	// An explicit data dir so a "restarted" System below can find the
	// snapshot the first one saved (a System-owned temp dir is removed on
	// Close).
	dir, err := os.MkdirTemp("", "seagull-streaming-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	start := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	sys, err := seagull.NewSystem(seagull.SystemConfig{
		DataDir: dir,
		Stream:  seagull.StreamConfig{Epoch: start},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Week 1 of the batch world: extract, train, predict, store.
	fleet := seagull.GenerateFleet(seagull.FleetConfig{Region: "westus", Servers: 12, Weeks: 2, Seed: 11})
	if _, err := sys.LoadFleet(fleet); err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunWeek(seagull.PipelineConfig{Region: "westus", Week: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weekly run: %d servers predicted, %.0f%% LL windows correct\n",
		res.Predicted, 100*res.Summary.PctCorrect)

	// Expose the serving surface (predict, ingest, varz) and start the
	// background refresher that drains the drift queue.
	srv := httptest.NewServer(sys.Handler())
	defer srv.Close()
	stop := sys.StartRefresher()
	defer stop()
	client := seagull.NewClient(srv.URL)
	ctx := context.Background()

	stored, err := client.Predictions(ctx, "westus", 1)
	if err != nil {
		log.Fatal(err)
	}
	target := stored.Predictions[0]
	fmt.Printf("stored prediction for %s: backup day %s, LL window at %s\n",
		target.ServerID, target.BackupDay.Format("Mon Jan 2"),
		target.Series().TimeAt(target.LLStart).Format("15:04"))

	// Live telemetry arrives continuously. Everyone reports their true
	// load — except the target server, whose backup day runs 45 points
	// above what the model predicted last week.
	points := 0
	for _, s := range fleet.Servers {
		load := s.Load()
		hot := s.ID == target.ServerID
		vals := make([]float64, 0, load.Len())
		for i := 0; i < load.Len(); i++ {
			v := load.Values[i]
			at := load.TimeAt(i)
			if hot && !at.Before(target.BackupDay) && at.Before(target.BackupDay.Add(24*time.Hour)) {
				v += 45
			}
			if v != v {
				v = -1 // missing encodes as negative on the wire (lake convention)
			}
			vals = append(vals, v)
		}
		resp, err := client.Ingest(ctx, serving.IngestRequest{Servers: []serving.IngestSeries{
			{ServerID: s.ID, Start: load.Start, IntervalMin: 5, Values: vals},
		}})
		if err != nil {
			log.Fatal(err)
		}
		points += resp.Accepted
	}
	fmt.Printf("\ningested %d live points for %d servers\n", points, len(fleet.Servers))

	// One more ingest call closes the loop: sweep week 1 for drift and
	// queue whatever drifted for refresh.
	resp, err := client.Ingest(ctx, serving.IngestRequest{
		Points: []serving.IngestPoint{{
			ServerID: target.ServerID,
			TimeUnix: target.BackupDay.Add(24 * time.Hour).Unix(),
			Value:    42,
		}},
		Sweep: &serving.SweepSpec{Region: "westus", Week: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drift sweep: %d predictions checked, %d drifted %v, %d queued for refresh\n",
		resp.Sweep.Checked, resp.Sweep.Drifted, resp.Sweep.Servers, resp.Sweep.Queued)

	// The background refresher retrains only the drifted servers through
	// the warm pool and republishes their PredictionDocs.
	deadline := time.Now().Add(10 * time.Second)
	for sys.Refresher().Stats().Refreshed < uint64(resp.Sweep.Queued) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	after, err := client.Predictions(ctx, "westus", 1)
	if err != nil {
		log.Fatal(err)
	}
	refreshed := 0
	for _, doc := range after.Predictions {
		if doc.Refreshes > 0 {
			refreshed++
			fmt.Printf("refreshed %s: LL window now at %s (refresh #%d)\n",
				doc.ServerID, doc.Series().TimeAt(doc.LLStart).Format("15:04"), doc.Refreshes)
		}
	}
	fmt.Printf("→ %d of %d predictions refreshed; the rest were left untouched\n",
		refreshed, len(after.Predictions))

	// /varz tells the same story operationally.
	vz, err := client.Varz(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvarz: ingest appended=%d dup=%d · drift sweeps=%d drifted=%d · refreshed=%d · pool hits=%d misses=%d\n",
		vz.Ingest.Appended, vz.Ingest.Duplicates, vz.Drift.Sweeps, vz.Drift.Drifted,
		vz.Refresh.Refreshed, vz.Pool.Hits, vz.Pool.Misses)

	// Restart recovery: snapshot the live rings to the lake (what
	// seagull-serve does on drain), then bring up a second System over the
	// same data dir — its restored live windows match the original bit for
	// bit, so forecasts, drift verdicts and refreshes pick up where the
	// dead process left off instead of waiting for a month of re-fed
	// telemetry.
	if err := sys.SaveStreamSnapshot(); err != nil {
		log.Fatal(err)
	}
	restarted, err := seagull.NewSystem(seagull.SystemConfig{
		DataDir: dir,
		Stream:  seagull.StreamConfig{Epoch: start},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer restarted.Close()
	if err := restarted.RestoreStreamSnapshot(); err != nil {
		log.Fatal(err)
	}
	identical := 0
	for _, s := range fleet.Servers {
		before, ok1 := sys.Stream().View(s.ID)
		after, ok2 := restarted.Stream().View(s.ID)
		if ok1 && ok2 && before.Len() == after.Len() {
			same := true
			for i := range before.Values {
				a, b := before.Values[i], after.Values[i]
				if a != b && !(a != a && b != b) { // NaN slots compare equal
					same = false
					break
				}
			}
			if same {
				identical++
			}
		}
	}
	fmt.Printf("\nrestart recovery: snapshot → restore brought back %d/%d live windows bit-identical\n",
		identical, len(fleet.Servers))
}
