// Auto-scale: the Appendix A scenario — preemptive auto-scale of SQL
// databases.
//
// The program classifies a SQL database population into stable/unstable
// (Definition 10), compares forecasting models on 24h-ahead prediction with
// the standard NRMSE/MASE metrics (Figures 16/17), and derives preemptive
// scaling recommendations from the winning model's forecasts.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"

	"seagull"
)

func main() {
	log.SetFlags(0)

	dbs := seagull.GenerateSQL(seagull.SQLConfig{Databases: 400, Days: 9, Seed: 17})
	stable, total, err := seagull.ClassifySQLFleet(dbs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classified %d SQL databases: %.2f%% stable (paper: 19.36%%)\n",
		total, 100*float64(stable)/float64(total))

	// Compare persistent forecast with the neural network on a sample
	// (Figure 16/17). ARIMA is omitted here for speed; see
	// cmd/seagull-experiments -run fig16 for the full comparison.
	sample := dbs[:60]
	evals, err := seagull.CompareAutoscaleModels(
		[]string{seagull.ModelPersistentPrevDay, seagull.ModelFFNN},
		sample, seagull.AutoscaleConfig{Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmodel comparison (24h ahead, one week training):")
	for _, ev := range evals {
		fmt.Printf("  %-22s NRMSE %.3f  MASE %.3f  train+infer %v (%d dbs)\n",
			ev.Model, ev.MeanNRMSE, ev.MeanMASE, ev.TrainInfer.Round(1000000), ev.Databases)
	}

	// Preemptive recommendations from tomorrow's forecast, persistent
	// forecast being the deployed choice (Section 5.4 / Appendix A.3).
	fmt.Println("\npreemptive scaling recommendations (first 10 databases):")
	counts := map[string]int{}
	for i, db := range dbs {
		m, err := seagull.NewModel(seagull.ModelPersistentPrevDay, 1)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := seagull.PredictDay(m, db.Load)
		if err != nil {
			log.Fatal(err)
		}
		action, err := recommend(pred)
		if err != nil {
			log.Fatal(err)
		}
		counts[action]++
		if i < 10 {
			p95, _ := pred.Quantile(0.95)
			fmt.Printf("  %-14s predicted p95 %5.1f%% → %s\n", db.ID, p95, action)
		}
	}
	fmt.Printf("\nfleet recommendations: %v\n", counts)
	fmt.Println("(Figure 13(b): only ~3.7% of servers ever reach capacity — most can scale down)")
}

// recommend maps a predicted day of load onto a scaling action: scale up
// when the predicted 95th percentile exceeds 80% of capacity, scale down
// when even the peak stays under 25%.
func recommend(pred seagull.Series) (string, error) {
	p95, err := pred.Quantile(0.95)
	if err != nil {
		return "", err
	}
	peak, _ := pred.Max()
	switch {
	case p95 >= 80:
		return "scale-up", nil
	case peak < 25:
		return "scale-down", nil
	default:
		return "hold", nil
	}
}
