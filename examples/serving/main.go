// Serving: deploy a model behind the REST service and query it — the
// "deploys this model to a REST endpoint" flow of Section 2.2, at the v2
// protocol: a batch predict fanned across the warm model pool, a
// lowest-load window computed server-side, and a window advice call.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"seagull"
	"seagull/internal/registry"
	"seagull/internal/serving"
)

func main() {
	log.SetFlags(0)

	sys, err := seagull.NewSystem(seagull.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Deploy the production model for one region and expose the service.
	sys.Registry.Deploy(registry.Target{Scenario: "backup", Region: "westus"},
		seagull.ModelPersistentPrevDay, "serving example")
	srv := httptest.NewServer(sys.Handler())
	defer srv.Close()
	fmt.Printf("endpoint: %s\n", srv.URL)

	ctx := context.Background()
	client := seagull.NewClient(srv.URL)
	if !client.Healthy() || !client.Ready(ctx) {
		log.Fatal("endpoint unhealthy")
	}
	models, err := client.ModelsV2(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range models.Models {
		fmt.Printf("deployed: %s/%s → %s v%d\n", m.Scenario, m.Region, m.Model, m.Version)
	}

	// A client (the backup scheduler, in production) posts a whole fleet
	// partition in one batch call; each item gets its forecast and its
	// predicted lowest-load window back.
	fleet := seagull.GenerateFleet(seagull.FleetConfig{
		Region: "westus", Servers: 3, Weeks: 1, Seed: 3,
		Mix: seagull.Mix{Daily: 1},
	})
	var items []serving.BatchItem
	for _, s := range fleet.Servers {
		items = append(items, serving.BatchItem{
			ServerID:     s.ID,
			History:      serving.FromSeries(s.Load()),
			Horizon:      s.Load().PointsPerDay(),
			WindowPoints: s.WindowPoints(),
		})
	}
	batch, err := client.PredictBatch(ctx, serving.BatchRequest{
		Scenario: "backup", Region: "westus", Servers: items,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch: %d forecasts from %s v%d (%d failed)\n",
		batch.Succeeded, batch.Model, batch.Version, batch.Failed)
	for _, r := range batch.Results {
		if r.Error != nil {
			fmt.Printf("  %s: %s (%s)\n", r.ServerID, r.Error.Message, r.Error.Code)
			continue
		}
		day := r.Forecast.ToSeries()
		fmt.Printf("  %s: LL window starts %s, predicted avg %.1f%% CPU\n",
			r.ServerID, day.TimeAt(r.LLStart).Format("15:04"), r.LLAvg)
	}

	// Section 6.2: would a customer-selected 12:30 window be a good choice?
	first := batch.Results[0]
	if first.Error != nil {
		log.Fatalf("first server failed: %s (%s)", first.Error.Message, first.Error.Code)
	}
	adv, err := client.Advise(ctx, serving.AdviseRequest{
		PredictedDay:  *first.Forecast,
		CustomerStart: 150,
		WindowPoints:  fleet.Servers[0].WindowPoints(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\na 12:30 window would see %.1f%% CPU — keep it? %v (suggested: %.1f%%)\n",
		adv.CurrentAvg, adv.KeepCurrent, adv.SuggestedAvg)

	// The second call hits the warm pool.
	one, err := client.PredictV2(ctx, serving.PredictRequestV2{
		Scenario: "backup", Region: "westus",
		History: items[0].History, Horizon: items[0].Horizon,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single predict: %d observations, served from warm pool: %v\n",
		one.Forecast.ToSeries().Len(), one.Pooled)
}
