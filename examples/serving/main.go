// Serving: deploy a model behind the REST endpoint and query it — the
// "deploys this model to a REST endpoint" flow of Section 2.2.
//
// The program starts an in-process HTTP server, deploys persistent forecast
// for one region, posts a week of server history to /v1/predict and prints
// the forecast's lowest-load window.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"seagull"
	"seagull/internal/registry"
	"seagull/internal/serving"
)

func main() {
	log.SetFlags(0)

	sys, err := seagull.NewSystem(seagull.SystemConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Deploy the production model for one region and expose the endpoint.
	sys.Registry.Deploy(registry.Target{Scenario: "backup", Region: "westus"},
		seagull.ModelPersistentPrevDay, "serving example")
	srv := httptest.NewServer(sys.Handler())
	defer srv.Close()
	fmt.Printf("endpoint: %s\n", srv.URL)

	client := serving.NewClient(srv.URL)
	if !client.Healthy() {
		log.Fatal("endpoint unhealthy")
	}
	models, err := client.Models()
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range models {
		fmt.Printf("deployed: %s/%s → %s v%d\n", m.Scenario, m.Region, m.Model, m.Version)
	}

	// A client (the backup scheduler, in production) posts one server's
	// history and receives tomorrow's predicted load.
	fleet := seagull.GenerateFleet(seagull.FleetConfig{
		Region: "westus", Servers: 1, Weeks: 1, Seed: 3,
		Mix: seagull.Mix{Daily: 1},
	})
	history := fleet.Servers[0].Load()
	pred, resp, err := client.Predict("backup", "westus", history, history.PointsPerDay())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted %d observations with %s v%d\n", pred.Len(), resp.Model, resp.Version)

	window := fleet.Servers[0].WindowPoints()
	adv, err := seagull.AdviseWindow(pred, 150, window, seagull.DefaultMetrics())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lowest-load window: starts %s, predicted avg %.1f%% CPU\n",
		pred.TimeAt(adv.SuggestedStart).Format("15:04"), adv.SuggestedAvg)
	fmt.Printf("a 12:30 window would see %.1f%% CPU — keep it? %v\n",
		adv.CurrentAvg, adv.KeepCurrent)
}
