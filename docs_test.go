package seagull_test

// Markdown hygiene: every relative link in the repo's *.md files must
// resolve to a real file or directory, so the docs never rot as code moves.
// External links (http/https/mailto) and pure anchors are out of scope —
// CI has no network, and anchor validity is an editor concern.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches the target of an inline markdown link: ](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestMarkdownLinks(t *testing.T) {
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found at the repo root")
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		inFence := false
		for lineNo, line := range strings.Split(string(data), "\n") {
			// Skip fenced code blocks: curl bodies and Go snippets are not
			// links.
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				switch {
				case strings.HasPrefix(target, "http://"),
					strings.HasPrefix(target, "https://"),
					strings.HasPrefix(target, "mailto:"),
					strings.HasPrefix(target, "#"):
					continue
				}
				// Drop an anchor suffix; what must exist is the file.
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" {
					continue
				}
				if strings.HasPrefix(target, "/") {
					t.Errorf("%s:%d: absolute link %q — use a repo-relative path", f, lineNo+1, m[1])
					continue
				}
				if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
					t.Errorf("%s:%d: broken link %q", f, lineNo+1, m[1])
				}
			}
		}
	}
}
