// Command seagull-gen generates synthetic fleet telemetry and extracts it
// into a Seagull data lake — the stand-in for the production Load Extraction
// query over raw Azure telemetry (Section 2.2).
//
// Usage:
//
//	seagull-gen -data ./data -regions westus,eastus -servers 500 -weeks 4 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"seagull"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seagull-gen: ")

	var (
		dataDir = flag.String("data", "./seagull-data", "data directory (lake root lives under it)")
		regions = flag.String("regions", "westus", "comma-separated region names")
		servers = flag.Int("servers", 500, "servers per region")
		weeks   = flag.Int("weeks", 4, "weeks of telemetry")
		seed    = flag.Int64("seed", 1, "generator seed")
		missing = flag.Float64("missing", 0, "per-point probability of missing telemetry")
		sqlDBs  = flag.Int("sqldbs", 0, "additionally generate this many SQL databases (report only)")
	)
	flag.Parse()

	sys, err := seagull.NewSystem(seagull.SystemConfig{DataDir: *dataDir})
	if err != nil {
		log.Fatal(err)
	}

	names := strings.Split(*regions, ",")
	totalRows := 0
	for i, region := range names {
		region = strings.TrimSpace(region)
		if region == "" {
			continue
		}
		fleet := seagull.GenerateFleet(seagull.FleetConfig{
			Region:      region,
			Servers:     *servers,
			Weeks:       *weeks,
			Seed:        *seed + int64(i)*1000,
			MissingRate: *missing,
		})
		rows, err := sys.LoadFleet(fleet)
		if err != nil {
			log.Fatalf("region %s: %v", region, err)
		}
		totalRows += rows
		short := 0
		for _, srv := range fleet.Servers {
			if srv.ShortLived {
				short++
			}
		}
		fmt.Printf("region %-12s servers=%d (short-lived %d) weeks=%d rows=%d\n",
			region, len(fleet.Servers), short, *weeks, rows)
	}
	fmt.Printf("lake: %s (total %d rows)\n", *dataDir, totalRows)

	if *sqlDBs > 0 {
		dbs := seagull.GenerateSQL(seagull.SQLConfig{Databases: *sqlDBs, Seed: *seed})
		stable, total, err := seagull.ClassifySQLFleet(dbs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sql databases: %d generated, %.2f%% stable (Definition 10)\n",
			total, 100*float64(stable)/float64(total))
	}
	if err := sys.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err)
	}
}
