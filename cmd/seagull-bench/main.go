// Command seagull-bench is the repo's perf-trajectory helper: it runs
// go vet, the test suite, and a short benchmark pass, then writes a
// machine-readable BENCH_<n>.json summary (ns/op, B/op, allocs/op per
// benchmark) so successive PRs can be compared without re-deriving numbers.
//
// Usage:
//
//	go run ./cmd/seagull-bench                 # vet + test + short benchmarks
//	go run ./cmd/seagull-bench -out BENCH_2.json
//	go run ./cmd/seagull-bench -bench 'BenchmarkARIMATrain' -benchtime 10x
//	go run ./cmd/seagull-bench -skip-checks    # benchmarks only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBench covers the hot-path micro-benchmarks plus the headline figure
// benchmark the acceptance numbers track.
const defaultBench = "BenchmarkARIMATrain|BenchmarkSolveRidge|BenchmarkPoolForEach|" +
	"BenchmarkSSATrainInfer|BenchmarkFFNNTrainInfer|BenchmarkPersistentForecastTrainInfer|" +
	"BenchmarkFig11aTrainInfer"

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type summary struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	NumCPU    int           `json:"num_cpu"`
	Benchtime string        `json:"benchtime"`
	Pattern   string        `json:"pattern"`
	VetOK     bool          `json:"vet_ok"`
	TestsOK   bool          `json:"tests_ok"`
	Results   []benchResult `json:"results"`
}

func run(name string, args ...string) (string, error) {
	cmd := exec.Command(name, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// benchLine matches go test benchmark output, e.g.
// BenchmarkARIMATrain  	     186	  13733155 ns/op	  269404 B/op	     110 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parseBench(out string) []benchResult {
	var results []benchResult
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := benchResult{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, r)
	}
	return results
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	bench := flag.String("bench", defaultBench, "benchmark pattern passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "value passed to go test -benchtime")
	skipChecks := flag.Bool("skip-checks", false, "skip go vet and go test, run benchmarks only")
	flag.Parse()

	s := summary{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Benchtime: *benchtime,
		Pattern:   *bench,
	}

	failed := false
	if *skipChecks {
		s.VetOK, s.TestsOK = true, true
	} else {
		fmt.Println("→ go vet ./...")
		if o, err := run("go", "vet", "./..."); err != nil {
			fmt.Fprint(os.Stderr, o)
			fmt.Fprintln(os.Stderr, "go vet failed:", err)
			failed = true
		} else {
			s.VetOK = true
		}
		fmt.Println("→ go test ./...")
		if o, err := run("go", "test", "./..."); err != nil {
			fmt.Fprint(os.Stderr, o)
			fmt.Fprintln(os.Stderr, "go test failed:", err)
			failed = true
		} else {
			s.TestsOK = true
		}
	}

	fmt.Printf("→ go test -run ^$ -bench %q -benchmem -benchtime %s .\n", *bench, *benchtime)
	benchOut, err := run("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem", "-benchtime", *benchtime, ".")
	fmt.Print(benchOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmarks failed:", err)
		failed = true
	}
	s.Results = parseBench(benchOut)

	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(s.Results))
	if failed {
		os.Exit(1)
	}
}
