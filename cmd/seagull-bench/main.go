// Command seagull-bench is the repo's perf-trajectory helper: it runs
// go vet, the test suite, and a short benchmark pass, then writes a
// machine-readable BENCH_<n>.json summary (ns/op, B/op, allocs/op per
// benchmark) so successive PRs can be compared without re-deriving numbers.
//
// Usage:
//
//	go run ./cmd/seagull-bench                 # vet + test + short benchmarks
//	go run ./cmd/seagull-bench -out BENCH_2.json
//	go run ./cmd/seagull-bench -bench 'BenchmarkARIMATrain' -benchtime 10x
//	go run ./cmd/seagull-bench -skip-checks    # benchmarks only
//	go run ./cmd/seagull-bench -compare BENCH_1.json
//
// -compare diffs the fresh run against a prior snapshot, printing ±% deltas
// per benchmark, and exits non-zero when any shared benchmark regresses its
// allocs/op by more than -max-alloc-regress percent (default 10) — the CI
// gate for the perf trajectory. Time and bytes deltas are informational
// (wall clock is too machine-dependent to gate on; allocation counts are
// deterministic).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// defaultBench covers the hot-path micro-benchmarks plus the headline figure
// benchmark the acceptance numbers track. SSA/FFNN appear in both their
// default-config and fast-path variants; fleet generation in lazy, eager and
// materialize-all forms.
const defaultBench = "BenchmarkARIMATrain|BenchmarkSolveRidge|BenchmarkPoolForEach|" +
	"BenchmarkSSATrainInfer|BenchmarkSSATrainInferRandomized|" +
	"BenchmarkFFNNTrainInfer|BenchmarkFFNNTrainInferBatched|" +
	"BenchmarkPersistentForecastTrainInfer|BenchmarkFleetGeneration|" +
	"BenchmarkFleetGenerationEager|BenchmarkFleetMaterialize|" +
	"BenchmarkFig11aTrainInfer|" +
	"BenchmarkServePredict|BenchmarkServeBatch|" +
	"BenchmarkTracedPredict|BenchmarkMetricsRender|" +
	"BenchmarkStreamIngest|BenchmarkStreamDriftSweep|BenchmarkStreamRefresh|" +
	"BenchmarkStreamSnapshotWrite|BenchmarkStreamSnapshotRestore|BenchmarkStreamSweeper|" +
	"BenchmarkStreamWALAppend|BenchmarkStreamWALReplay|" +
	"BenchmarkAdmissionAccept|BenchmarkAdmissionShed|" +
	"BenchmarkRouterPredict|BenchmarkRouterFleetVarz|BenchmarkSimulateScenario"

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra carries custom b.ReportMetric units (e.g. points/s from
	// BenchmarkStreamIngest), informational.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type summary struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	NumCPU    int           `json:"num_cpu"`
	Benchtime string        `json:"benchtime"`
	Pattern   string        `json:"pattern"`
	VetOK     bool          `json:"vet_ok"`
	TestsOK   bool          `json:"tests_ok"`
	Results   []benchResult `json:"results"`
}

func run(name string, args ...string) (string, error) {
	cmd := exec.Command(name, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// parseBench reads go test benchmark output lines, e.g.
//
//	BenchmarkARIMATrain  	     186	  13733155 ns/op	  269404 B/op	     110 allocs/op
//	BenchmarkStreamIngest	 2000000	      62.19 ns/op	  16080650 points/s	       0 B/op	       0 allocs/op
//
// Value/unit pairs are scanned positionally so custom b.ReportMetric units
// (points/s above) do not hide the B/op and allocs/op columns from the
// regression gate; they land in Extra instead.
func parseBench(out string) []benchResult {
	var results []benchResult
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "ns/op") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		r := benchResult{Name: name}
		r.Iterations, _ = strconv.ParseInt(fields[1], 10, 64)
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				r.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			default:
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					if r.Extra == nil {
						r.Extra = map[string]float64{}
					}
					r.Extra[unit] = v
				}
			}
		}
		results = append(results, r)
	}
	return results
}

// loadSummary reads a prior snapshot for -compare.
func loadSummary(path string) (*summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// pctDelta renders (new-old)/old as a signed percentage, guarding zero.
func pctDelta(oldV, newV float64) string {
	if oldV == 0 {
		if newV == 0 {
			return "0.0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}

// compare prints per-benchmark deltas against old and returns the names of
// benchmarks that fail the gate: allocs/op regressed beyond
// maxAllocRegressPct, or present in the baseline but absent from the fresh
// run (a renamed/deleted/crashed benchmark must not silently lose its
// regression protection — regenerate the baseline to retire one).
func compare(old *summary, fresh []benchResult, maxAllocRegressPct float64) []string {
	byName := make(map[string]benchResult, len(old.Results))
	for _, r := range old.Results {
		byName[r.Name] = r
	}
	fmt.Printf("\ncomparison vs snapshot of %s:\n", old.Generated)
	fmt.Printf("%-40s %12s %12s %12s\n", "benchmark", "ns/op Δ", "B/op Δ", "allocs/op Δ")
	var failures []string
	for _, r := range fresh {
		o, ok := byName[r.Name]
		if !ok {
			fmt.Printf("%-40s %12s %12s %12s\n", r.Name, "(new)", "(new)", "(new)")
			continue
		}
		delete(byName, r.Name)
		fmt.Printf("%-40s %12s %12s %12s\n", r.Name,
			pctDelta(o.NsPerOp, r.NsPerOp),
			pctDelta(float64(o.BytesPerOp), float64(r.BytesPerOp)),
			pctDelta(float64(o.AllocsPerOp), float64(r.AllocsPerOp)))
		switch {
		case o.AllocsPerOp == 0 && r.AllocsPerOp > 0:
			// A zero-alloc guarantee broke; no percentage threshold applies.
			failures = append(failures, r.Name+" (0 allocs/op baseline broken)")
		case o.AllocsPerOp > 0 &&
			float64(r.AllocsPerOp) > float64(o.AllocsPerOp)*(1+maxAllocRegressPct/100):
			failures = append(failures, r.Name)
		}
	}
	for name := range byName {
		fmt.Printf("%-40s %12s %12s %12s\n", name, "(gone)", "(gone)", "(gone)")
		failures = append(failures, name+" (missing from this run)")
	}
	return failures
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	bench := flag.String("bench", defaultBench, "benchmark pattern passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "value passed to go test -benchtime")
	skipChecks := flag.Bool("skip-checks", false, "skip go vet and go test, run benchmarks only")
	comparePath := flag.String("compare", "", "prior BENCH_<n>.json to diff against; "+
		"exits non-zero on allocs/op regression beyond -max-alloc-regress")
	maxAllocRegress := flag.Float64("max-alloc-regress", 10,
		"allowed allocs/op regression in percent before -compare fails the run")
	flag.Parse()

	s := summary{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Benchtime: *benchtime,
		Pattern:   *bench,
	}

	failed := false
	if *skipChecks {
		s.VetOK, s.TestsOK = true, true
	} else {
		fmt.Println("→ go vet ./...")
		if o, err := run("go", "vet", "./..."); err != nil {
			fmt.Fprint(os.Stderr, o)
			fmt.Fprintln(os.Stderr, "go vet failed:", err)
			failed = true
		} else {
			s.VetOK = true
		}
		// -shuffle=on randomizes test (and subtest-parent) execution order so
		// inter-test state dependence cannot hide; the seed is printed on
		// failure for replay with -shuffle=<seed>.
		fmt.Println("→ go test -shuffle=on ./...")
		if o, err := run("go", "test", "-shuffle=on", "./..."); err != nil {
			fmt.Fprint(os.Stderr, o)
			fmt.Fprintln(os.Stderr, "go test failed:", err)
			failed = true
		} else {
			s.TestsOK = true
		}
	}

	fmt.Printf("→ go test -run ^$ -bench %q -benchmem -benchtime %s .\n", *bench, *benchtime)
	benchOut, err := run("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem", "-benchtime", *benchtime, ".")
	fmt.Print(benchOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmarks failed:", err)
		failed = true
	}
	s.Results = parseBench(benchOut)

	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(s.Results))

	if *comparePath != "" {
		old, err := loadSummary(*comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "compare:", err)
			os.Exit(1)
		}
		// Every benchmark in the default pattern pins its worker count
		// (benchOpts Workers=1, BenchmarkPoolForEach at 4), so allocs/op is
		// machine-independent and the gate applies regardless of where the
		// baseline was captured.
		if bad := compare(old, s.Results, *maxAllocRegress); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "alloc gate failed (>%.0f%% allocs/op, broken zero-alloc, or missing) vs %s: %s\n",
				*maxAllocRegress, *comparePath, strings.Join(bad, ", "))
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
