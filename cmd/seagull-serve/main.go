// Command seagull-serve runs Seagull as an actual server: it wires a System
// (lake, document store, model registry, pipeline, scheduler) behind the
// serving layer's v1+v2 REST protocol, with a warm model pool, the online
// telemetry stream (live ingest + drift-triggered refresh), durable ring
// snapshots, a background drift sweeper, an optional weekly pipeline cron,
// readiness reporting and graceful shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	seagull-serve -addr :8080 -deploy backup/westus=pf-prev-day,backup/eastus=nimbus-ssa
//	seagull-serve -addr :8080 -demo          # seed a demo fleet + pipeline run
//	seagull-serve -addr :8080 -demo -cron    # + recurring weekly runs, no operator
//	seagull-serve -data ./seagull-data -persist
//
// Endpoints: GET /healthz, GET /readyz, GET /varz, POST /v1/predict,
// GET /v1/models, POST /v2/predict, POST /v2/predict/batch, POST /v2/advise,
// POST /v2/ingest, GET /v2/models, GET /v2/predictions/{region}/{week}.
// See README.md ("Operations guide") for the full flag and /varz reference.
//
// The stream layer (on by default, -stream=false to disable) accepts live
// telemetry on POST /v2/ingest; a request carrying a "sweep" clause checks
// the stored predictions of one (region, week) against the live actuals and
// queues drifted servers for background retraining through the warm pool.
// The same loop also runs itself: every -sweep-interval the background
// sweeper discovers each region's latest summarized week from the document
// store and sweeps it with zero client involvement, fanning the resulting
// retrains across -refresh-workers. -cron re-runs the weekly pipeline per
// deployed backup region as each dataset week elapses, so deployments
// refresh without an operator.
//
// Every endpoint runs behind adaptive admission control (-max-inflight,
// -latency-target): an AIMD limiter bounds in-flight requests, prioritized
// shedding answers overload with 503/429 + Retry-After (predict > ingest >
// background; liveness endpoints exempt), and -brownout degrades saturated
// /v2/predict traffic to the persistent forecast instead of refusing it.
// See README.md ("Overload behavior").
//
// On SIGTERM the server flips /readyz to draining, stops accepting new
// connections, waits up to -drain for in-flight requests, snapshots the
// live telemetry rings to the lake (-snapshot, on by default; restored on
// the next boot so the live window survives restarts) and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"seagull"
	"seagull/internal/obs"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seagull-serve: ")

	var (
		addr   = flag.String("addr", ":8080", "listen address")
		deploy = flag.String("deploy", "backup/westus=pf-prev-day",
			"comma-separated scenario/region=model deployments")
		dataDir = flag.String("data", "", "data directory (empty = temporary)")
		persist = flag.Bool("persist", false, "keep the document store durable on disk")
		demo    = flag.Bool("demo", false,
			"seed a demo fleet for the first deployment's region and run one pipeline week "+
				"so /v2/predictions has content")
		drain = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		grace = flag.Duration("grace", 0,
			"delay between flipping /readyz to draining and closing the listener, so load "+
				"balancers observe the drain before connections are refused (set to your probe interval)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request serving deadline")
		maxInflight = flag.Int("max-inflight", 0,
			"adaptive admission control: ceiling on concurrently served requests "+
				"(0 = default 256; negative disables admission entirely)")
		latencyTarget = flag.Duration("latency-target", 0,
			"admission latency target for predict traffic (ingest 2x, background 4x); the "+
				"limiter backs off when served latency exceeds it (0 = default 500ms)")
		brownout = flag.Bool("brownout", false,
			"serve saturated /v2/predict traffic from the persistent-forecast fallback "+
				"(flagged degraded:true) instead of shedding it")
		streamOn = flag.Bool("stream", true, "enable the online telemetry stream (POST /v2/ingest + drift refresh)")
		snapshot = flag.Bool("snapshot", true,
			"restore the live telemetry rings from the lake on startup and persist them while running, "+
				"so the stream window survives restarts (requires -stream; pair with -data for durability)")
		walOn = flag.Bool("wal", true,
			"write-ahead-log live telemetry appends so a hard kill loses at most one -wal-commit "+
				"interval of points (requires -snapshot)")
		walCommit = flag.Duration("wal-commit", 100*time.Millisecond,
			"WAL group-commit interval: the bounded-loss δ in restore ≥ T-δ")
		snapInterval = flag.Duration("snapshot-interval", 30*time.Second,
			"incremental ring-snapshot interval; unchanged shards are skipped (negative = drain-only snapshots)")
		sweepEvery = flag.Duration("sweep-interval", time.Minute,
			"background drift sweeper tick: every interval, sweep each region's latest summarized week "+
				"against live telemetry and queue drifted servers for refresh (0 disables; requires -stream)")
		refreshWorkers = flag.Int("refresh-workers", 0,
			"concurrent drift retrains in the refresher (0 = one per CPU; 1 = serial)")
		cronOn    = flag.Bool("cron", false, "run the weekly pipeline automatically for every backup deployment region")
		cronEpoch = flag.String("cron-epoch", "2019-12-01T00:00:00Z",
			"dataset epoch (RFC3339): week N covers [epoch+N·week, epoch+(N+1)·week)")
		cronFirst = flag.Int("cron-first", 1, "first week the cron processes")
		cronLast  = flag.Int("cron-last", 1, "last week the cron processes (inclusive)")
		logFormat = flag.String("log", "text", "structured log format: text or json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		slowReq   = flag.Duration("slow-request", time.Second,
			"log any request slower than this with its full span breakdown (0 disables the slow log; "+
				"tracing and GET /debug/traces stay on)")
		pprofOn = flag.Bool("pprof", false,
			"mount net/http/pprof under /debug/pprof/ (off by default: profiling endpoints "+
				"bypass admission control)")
	)
	flag.Parse()

	cfg := serveConfig{
		Deploy:         *deploy,
		DataDir:        *dataDir,
		Persist:        *persist,
		Demo:           *demo,
		Drain:          *drain,
		Grace:          *grace,
		Timeout:        *timeout,
		MaxInflight:    *maxInflight,
		LatencyTarget:  *latencyTarget,
		Brownout:       *brownout,
		Stream:         *streamOn,
		Snapshot:       *snapshot,
		WAL:            *walOn,
		WALCommit:      *walCommit,
		SnapshotEvery:  *snapInterval,
		SweepInterval:  *sweepEvery,
		RefreshWorkers: *refreshWorkers,
		Cron:           *cronOn,
		CronEpoch:      *cronEpoch,
		CronFirst:      *cronFirst,
		CronLast:       *cronLast,
		LogFormat:      *logFormat,
		LogLevel:       *logLevel,
		SlowRequest:    *slowReq,
		Pprof:          *pprofOn,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if err := serve(ctx, cfg, ln, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// serveConfig carries everything serve needs; main fills it from flags and
// the smoke test builds it directly.
type serveConfig struct {
	Deploy  string
	DataDir string
	Persist bool
	Demo    bool
	Drain   time.Duration
	Grace   time.Duration
	Timeout time.Duration
	// MaxInflight caps concurrently served requests under the adaptive
	// admission limiter (0 = service default; negative disables admission).
	MaxInflight int
	// LatencyTarget is the admission AIMD target for predict traffic.
	LatencyTarget time.Duration
	// Brownout degrades saturated /v2/predict to the persistent forecast
	// instead of shedding.
	Brownout bool
	Stream   bool
	// Snapshot restores the telemetry rings from the lake on startup and
	// persists them while running + on drain (stream layer only).
	Snapshot bool
	// WAL write-ahead-logs appends between snapshots so a hard kill loses at
	// most WALCommit worth of telemetry (requires Snapshot).
	WAL bool
	// WALCommit is the WAL group-commit interval — the bounded-loss δ.
	WALCommit time.Duration
	// SnapshotEvery is the incremental snapshot cadence (negative disables
	// the ticker, leaving drain-time snapshots only).
	SnapshotEvery time.Duration
	// SweepInterval ticks the background drift sweeper; 0 disables it.
	SweepInterval time.Duration
	// RefreshWorkers bounds concurrent drift retrains (0 = one per CPU).
	RefreshWorkers int
	Cron      bool
	CronEpoch string
	CronFirst int
	CronLast  int
	// LogFormat/LogLevel configure the structured logger ("" = text/info).
	LogFormat string
	LogLevel  string
	// SlowRequest is the threshold above which a finished request logs its
	// full span breakdown (0 disables the slow log, not tracing).
	SlowRequest time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// serve builds the system, wires the service over ln and blocks until ctx is
// cancelled (SIGINT/SIGTERM in production), then drains gracefully. It owns
// the listener.
func serve(ctx context.Context, cfg serveConfig, ln net.Listener, out io.Writer) error {
	if cfg.Persist && cfg.DataDir == "" {
		// Without -data the system owns a temp dir and removes it on Close,
		// which would silently delete the "durable" store on shutdown.
		return fmt.Errorf("-persist requires -data: a temporary data directory is removed on shutdown")
	}
	logger, err := obs.NewLogger(out, cfg.LogFormat, cfg.LogLevel)
	if err != nil {
		return err
	}
	// One tracer serves the whole process: HTTP requests, background sweeps
	// and drift refreshes all record into the same ring, so /debug/traces
	// shows the serving and stream sides of one overload event together.
	tracer := obs.NewTracer(obs.TracerConfig{
		SlowThreshold: cfg.SlowRequest,
		Logger:        logger,
	})
	workers := cfg.RefreshWorkers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sys, err := seagull.NewSystem(seagull.SystemConfig{
		DataDir: cfg.DataDir,
		Persist: cfg.Persist,
		Refresh: seagull.RefreshConfig{Workers: workers, Tracer: tracer, Logger: logger},
		Sweep:   seagull.SweeperConfig{Interval: cfg.SweepInterval, Tracer: tracer, Logger: logger},
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	slots, err := parseDeployments(cfg.Deploy)
	if err != nil {
		return err
	}
	for _, d := range slots {
		v := sys.Registry.Deploy(registry.Target{Scenario: d.scenario, Region: d.region}, d.model, "seagull-serve")
		logger.Info("deployed", "model", d.model, "version", v, "scenario", d.scenario, "region", d.region)
	}

	if cfg.Demo && len(slots) > 0 {
		region := slots[0].region
		fleet := seagull.GenerateFleet(seagull.FleetConfig{Region: region, Servers: 30, Weeks: 2, Seed: 1})
		if _, err := sys.LoadFleet(fleet); err != nil {
			return err
		}
		res, err := sys.RunWeekCtx(ctx, seagull.PipelineConfig{Region: region, Week: 1, ModelName: slots[0].model})
		if err != nil {
			return err
		}
		logger.Info("demo pipeline complete", "region", region, "week", 1, "predicted", res.Predicted)
	}

	svcCfg := seagull.ServiceConfig{
		Timeout:       cfg.Timeout,
		MaxInflight:   cfg.MaxInflight,
		LatencyTarget: cfg.LatencyTarget,
		Brownout:      cfg.Brownout,
		DrainGrace:    cfg.Grace,
		Tracer:        tracer,
		Logger:        logger,
	}
	var dur *seagull.Durability
	var rec seagull.RecoveryStats
	if cfg.Stream {
		// The shared stream set: live ingest on /v2/ingest, drift sweeps,
		// and a background refresher retraining drifted servers through a
		// registry-bound warm pool (stopped by sys.Close on the way out).
		svcCfg.Ingestor = sys.Stream()
		svcCfg.Drift = sys.Drift()
		svcCfg.Refresher = sys.Refresher()
		svcCfg.Sweeper = sys.Sweeper()
		sys.StartRefresher()
		logger.Info("stream layer enabled", "ingest", "POST /v2/ingest", "refresh_workers", workers)
		if cfg.Snapshot {
			// Bounded-loss durability: replay the previous run's per-shard
			// snapshots and WALs, then keep group-committing appends and
			// snapshotting changed shards in the background. A missing object
			// is the normal first boot; a damaged one is skipped, recorded in
			// the recovery stats, and surfaced as a degraded /readyz — stale
			// durable state must never block a restart.
			if n, err := sys.Lake.SweepTempObjects(); err != nil {
				logger.Warn("lake temp sweep failed", "error", err)
			} else if n > 0 {
				logger.Info("lake temp sweep removed staging files", "count", n)
			}
			dur = sys.NewDurability(seagull.DurabilityConfig{
				DisableWAL:    !cfg.WAL,
				CommitEvery:   cfg.WALCommit,
				SnapshotEvery: cfg.SnapshotEvery,
			})
			if rec, err = dur.Recover(); err != nil {
				return err
			}
			logger.Info("stream recovery complete",
				"outcome", rec.String(),
				"servers", rec.Servers,
				"wal_records", rec.WALRecords,
				"failures", len(rec.Failures))
			svcCfg.Durability = dur
		}
		if cfg.SweepInterval > 0 {
			sys.StartSweeper()
			logger.Info("background drift sweeper started", "interval", cfg.SweepInterval)
		}
	}
	svc := sys.Service(svcCfg)
	if cfg.MaxInflight >= 0 {
		maxIn, target := cfg.MaxInflight, cfg.LatencyTarget
		if maxIn == 0 {
			maxIn = 256 // serving default
		}
		if target == 0 {
			target = 500 * time.Millisecond // serving default
		}
		mode := "shed"
		if cfg.Brownout {
			mode = "brownout"
		}
		logger.Info("admission control enabled",
			"max_inflight", maxIn, "latency_target", target, "saturated_predicts", mode)
	}
	if rec.Degraded() {
		// Keep serving what survived, but say so on /readyz and /varz: live
		// windows touched by the failed objects are cold-started, so their
		// live_history predicts may hit the insufficient_history floor.
		logger.Warn("recovery was partial; serving degraded", "outcome", rec.String())
		svc.SetDegraded("degraded: live window cold-started: " + rec.String())
	}
	if dur != nil {
		if err := dur.Start(ctx); err != nil {
			return err
		}
	}

	var crons []*pipeline.Cron
	if cfg.Cron {
		epoch, err := time.Parse(time.RFC3339, cfg.CronEpoch)
		if err != nil {
			return fmt.Errorf("-cron-epoch: %w", err)
		}
		// One cron per backup deployment: each region's weekly runs retrain
		// the model the operator deployed for *that* region (RunWeek deploys
		// its configured model, so sharing one model across regions would
		// silently flip the others' deployments).
		var regions []string
		for _, d := range slots {
			if d.scenario != pipeline.Scenario {
				continue
			}
			regions = append(regions, d.region)
			c := pipeline.NewCron(sys.Pipeline, pipeline.CronConfig{
				Regions: []string{d.region}, Start: epoch,
				FirstWeek: cfg.CronFirst, LastWeek: cfg.CronLast,
				Base: pipeline.Config{ModelName: d.model},
			})
			c.Start()
			crons = append(crons, c)
		}
		if len(crons) == 0 {
			return fmt.Errorf("-cron requires at least one %s/<region> deployment", pipeline.Scenario)
		}
		logger.Info("pipeline cron started",
			"first_week", cfg.CronFirst, "last_week", cfg.CronLast,
			"regions", strings.Join(regions, ","), "epoch", epoch.Format(time.RFC3339))
	}

	// Profiling endpoints are opt-in and mounted on an outer mux: they must
	// bypass the service's admission control (an operator profiles precisely
	// when the limiter is shedding), but exposing them unconditionally would
	// hand every client a CPU-burning endpoint.
	var handler http.Handler = svc
	if cfg.Pprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", svc)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		if err := server.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()
	logger.Info("serving", "addr", ln.Addr().String(),
		"endpoints", "v1+v2; GET /healthz, GET /readyz, GET /varz, GET /metrics, GET /debug/traces")

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop advertising readiness, hold the listener open
	// for the grace period so readiness probes can observe the draining
	// state, then let in-flight requests finish under the drain budget.
	logger.Info("shutdown: draining", "drain", cfg.Drain, "grace", cfg.Grace)
	for _, c := range crons {
		c.Stop()
	}
	svc.SetReady(false)
	if cfg.Grace > 0 {
		time.Sleep(cfg.Grace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.Drain)
	defer cancel()
	shutdownErr := server.Shutdown(shutdownCtx)
	if dur != nil {
		// On a clean drain the listener is closed and in-flight requests
		// have finished, so the rings are quiescent: Close flushes the last
		// buffered appends to the WALs, snapshots every changed shard, and
		// truncates the logs — the next boot restores from snapshots alone.
		// On a blown drain budget the capture is merely approximate, but an
		// unclean shutdown is precisely when losing the window would hurt
		// most, so the state is persisted either way; snapshot replaces are
		// atomic, so a crash here leaves the previous generation.
		if err := dur.Close(); err != nil {
			if shutdownErr != nil {
				return fmt.Errorf("shutdown: %v; stream persistence: %w", shutdownErr, err)
			}
			return fmt.Errorf("stream persistence: %w", err)
		}
		logger.Info("stream state persisted", "servers", sys.Stream().Stats().Servers)
	}
	if shutdownErr != nil {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	if err := <-errCh; err != nil {
		return err
	}
	logger.Info("shutdown: clean")
	return nil
}

type deployment struct {
	scenario, region, model string
}

// parseDeployments parses "scenario/region=model,..." specs.
func parseDeployments(spec string) ([]deployment, error) {
	var out []deployment
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		slot, model, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("bad deployment %q (want scenario/region=model)", item)
		}
		scenario, region, ok := strings.Cut(slot, "/")
		if !ok {
			return nil, fmt.Errorf("bad deployment slot %q (want scenario/region)", slot)
		}
		out = append(out, deployment{scenario: scenario, region: region, model: model})
	}
	return out, nil
}
