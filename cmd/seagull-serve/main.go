// Command seagull-serve deploys forecast models into the model registry and
// exposes them over the REST endpoint of Section 2.2. Clients POST a
// server's load history to /v1/predict and receive the predicted series;
// GET /v1/models lists deployments and /healthz reports liveness.
//
// Usage:
//
//	seagull-serve -addr :8080 -deploy backup/westus=pf-prev-day,backup/eastus=nimbus-ssa
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"

	"seagull/internal/registry"
	"seagull/internal/serving"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seagull-serve: ")

	var (
		addr   = flag.String("addr", ":8080", "listen address")
		deploy = flag.String("deploy", "backup/westus=pf-prev-day",
			"comma-separated scenario/region=model deployments")
	)
	flag.Parse()

	reg := registry.New(nil)
	for _, spec := range strings.Split(*deploy, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		slot, model, ok := strings.Cut(spec, "=")
		if !ok {
			log.Fatalf("bad deployment %q (want scenario/region=model)", spec)
		}
		scenario, region, ok := strings.Cut(slot, "/")
		if !ok {
			log.Fatalf("bad deployment slot %q (want scenario/region)", slot)
		}
		v := reg.Deploy(registry.Target{Scenario: scenario, Region: region}, model, "seagull-serve")
		fmt.Printf("deployed %s v%d at %s/%s\n", model, v, scenario, region)
	}

	handler := serving.NewHandler(reg)
	fmt.Printf("serving on %s (POST /v1/predict, GET /v1/models, GET /healthz)\n", *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatal(err)
	}
}
