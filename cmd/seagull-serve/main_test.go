package main

import (
	"context"
	"net"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"seagull"
	"seagull/internal/serving"
)

// TestServeSmoke boots the real server wiring on an ephemeral port, checks
// liveness and readiness, runs a batch predict against the demo pipeline's
// deployment, fetches the stored demo predictions, then delivers a real
// SIGTERM and expects a clean drain.
func TestServeSmoke(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	cfg := serveConfig{
		Deploy:    "backup/smoke=pf-prev-day",
		Demo:      true,
		Drain:     5 * time.Second,
		Grace:     500 * time.Millisecond,
		Timeout:   30 * time.Second,
		Stream:    true,
		Cron:      true,
		CronEpoch: "2019-12-01T00:00:00Z",
		CronFirst: 1,
		CronLast:  1,
	}
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ln, testWriter{t}) }()

	c := seagull.NewClient("http://" + ln.Addr().String())
	waitFor(t, func() bool { return c.Healthy() }, "healthz")
	if !c.Ready(context.Background()) {
		t.Error("server should be ready")
	}

	// Batch predict two servers against the deployed model.
	fleet := seagull.GenerateFleet(seagull.FleetConfig{Region: "smoke", Servers: 2, Weeks: 1, Seed: 7})
	var items []serving.BatchItem
	for _, srv := range fleet.Servers {
		items = append(items, serving.BatchItem{
			ServerID: srv.ID,
			History:  serving.FromSeries(srv.Load()),
			Horizon:  srv.Load().PointsPerDay(),
		})
	}
	batch, err := c.PredictBatch(context.Background(), serving.BatchRequest{
		Scenario: "backup", Region: "smoke", Servers: items,
	})
	if err != nil {
		t.Fatalf("batch predict: %v", err)
	}
	if batch.Succeeded != len(items) || batch.Failed != 0 {
		t.Fatalf("batch = %d ok / %d failed, want %d / 0", batch.Succeeded, batch.Failed, len(items))
	}

	// The -demo pipeline stored week-1 predictions for the region.
	preds, err := c.Predictions(context.Background(), "smoke", 1)
	if err != nil {
		t.Fatalf("predictions: %v", err)
	}
	if len(preds.Predictions) == 0 {
		t.Error("demo run should have stored predictions")
	}

	// The cron re-runs week 1 without an operator: the demo run deployed
	// v2, so the cron's run promotes v3 (dataset weeks have long elapsed
	// against the wall clock, so it fires immediately).
	waitFor(t, func() bool {
		ms, err := c.ModelsV2(context.Background())
		if err != nil {
			return false
		}
		for _, m := range ms.Models {
			if m.Scenario == "backup" && m.Region == "smoke" && m.Version >= 3 {
				return true
			}
		}
		return false
	}, "cron pipeline run")

	// Live ingest → drift sweep → background refresh, over the wire.
	target := preds.Predictions[0]
	day := target.BackupDay
	vals := make([]float64, 8*288)
	for i := range vals {
		if i < 7*288 {
			vals[i] = 25
		} else {
			// The live backup day runs 45 points above the stored forecast:
			// far outside the +10/−5 acceptance bound, so the prediction
			// has unambiguously drifted.
			vals[i] = target.Values[i-7*288] + 45
		}
	}
	ing, err := c.Ingest(context.Background(), serving.IngestRequest{
		Servers: []serving.IngestSeries{{
			ServerID: target.ServerID, Start: day.Add(-7 * 24 * time.Hour), IntervalMin: 5, Values: vals,
		}},
		Sweep: &serving.SweepSpec{Region: "smoke", Week: 1},
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if ing.Accepted == 0 || ing.Sweep == nil {
		t.Fatalf("ingest = %+v", ing)
	}
	if ing.Sweep.Drifted == 0 || ing.Sweep.Queued == 0 {
		t.Fatalf("sweep = %+v, want the hot server drifted and queued", ing.Sweep)
	}

	// /varz reflects the whole loop once the background refresher drains.
	waitFor(t, func() bool {
		vz, err := c.Varz(context.Background())
		if err != nil || vz.Ingest == nil || vz.Drift == nil || vz.Refresh == nil {
			return false
		}
		return vz.Refresh.Refreshed >= uint64(ing.Sweep.Queued) && vz.Drift.Sweeps >= 1
	}, "background refresh observed on /varz")

	// Deliver a real SIGTERM to this process; the notify context catches it
	// and serve must drain cleanly. During the grace window the listener
	// stays open with /readyz reporting draining, so load balancers can
	// observe the drain before connections are refused.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	sawDraining := false
	for deadline := time.Now().Add(cfg.Grace); time.Now().Before(deadline); {
		if c.Healthy() && !c.Ready(context.Background()) {
			sawDraining = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("never observed the draining state while the listener was open")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
	if c.Healthy() {
		t.Error("endpoint still serving after shutdown")
	}
}

func waitFor(t *testing.T, ok func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testWriter routes server output through the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
