package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"seagull"
	"seagull/internal/serving"
)

// TestServeSmoke boots the real server wiring on an ephemeral port, checks
// liveness and readiness, runs a batch predict against the demo pipeline's
// deployment, fetches the stored demo predictions, then delivers a real
// SIGTERM and expects a clean drain.
func TestServeSmoke(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	cfg := serveConfig{
		Deploy:    "backup/smoke=pf-prev-day",
		Demo:      true,
		Drain:     5 * time.Second,
		Grace:     500 * time.Millisecond,
		Timeout:   30 * time.Second,
		Stream:    true,
		Cron:      true,
		CronEpoch: "2019-12-01T00:00:00Z",
		CronFirst: 1,
		CronLast:  1,
	}
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ln, testWriter{t}) }()

	c := seagull.NewClient("http://" + ln.Addr().String())
	waitFor(t, func() bool { return c.Healthy() }, "healthz")
	if !c.Ready(context.Background()) {
		t.Error("server should be ready")
	}

	// Batch predict two servers against the deployed model.
	fleet := seagull.GenerateFleet(seagull.FleetConfig{Region: "smoke", Servers: 2, Weeks: 1, Seed: 7})
	var items []serving.BatchItem
	for _, srv := range fleet.Servers {
		items = append(items, serving.BatchItem{
			ServerID: srv.ID,
			History:  serving.FromSeries(srv.Load()),
			Horizon:  srv.Load().PointsPerDay(),
		})
	}
	batch, err := c.PredictBatch(context.Background(), serving.BatchRequest{
		Scenario: "backup", Region: "smoke", Servers: items,
	})
	if err != nil {
		t.Fatalf("batch predict: %v", err)
	}
	if batch.Succeeded != len(items) || batch.Failed != 0 {
		t.Fatalf("batch = %d ok / %d failed, want %d / 0", batch.Succeeded, batch.Failed, len(items))
	}

	// The -demo pipeline stored week-1 predictions for the region.
	preds, err := c.Predictions(context.Background(), "smoke", 1)
	if err != nil {
		t.Fatalf("predictions: %v", err)
	}
	if len(preds.Predictions) == 0 {
		t.Error("demo run should have stored predictions")
	}

	// The cron re-runs week 1 without an operator: the demo run deployed
	// v2, so the cron's run promotes v3 (dataset weeks have long elapsed
	// against the wall clock, so it fires immediately).
	waitFor(t, func() bool {
		ms, err := c.ModelsV2(context.Background())
		if err != nil {
			return false
		}
		for _, m := range ms.Models {
			if m.Scenario == "backup" && m.Region == "smoke" && m.Version >= 3 {
				return true
			}
		}
		return false
	}, "cron pipeline run")

	// Live ingest → drift sweep → background refresh, over the wire.
	target := preds.Predictions[0]
	day := target.BackupDay
	vals := make([]float64, 8*288)
	for i := range vals {
		if i < 7*288 {
			vals[i] = 25
		} else {
			// The live backup day runs 45 points above the stored forecast:
			// far outside the +10/−5 acceptance bound, so the prediction
			// has unambiguously drifted.
			vals[i] = target.Values[i-7*288] + 45
		}
	}
	ing, err := c.Ingest(context.Background(), serving.IngestRequest{
		Servers: []serving.IngestSeries{{
			ServerID: target.ServerID, Start: day.Add(-7 * 24 * time.Hour), IntervalMin: 5, Values: vals,
		}},
		Sweep: &serving.SweepSpec{Region: "smoke", Week: 1},
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if ing.Accepted == 0 || ing.Sweep == nil {
		t.Fatalf("ingest = %+v", ing)
	}
	if ing.Sweep.Drifted == 0 || ing.Sweep.Queued == 0 {
		t.Fatalf("sweep = %+v, want the hot server drifted and queued", ing.Sweep)
	}

	// /varz reflects the whole loop once the background refresher drains.
	waitFor(t, func() bool {
		vz, err := c.Varz(context.Background())
		if err != nil || vz.Ingest == nil || vz.Drift == nil || vz.Refresh == nil {
			return false
		}
		return vz.Refresh.Refreshed >= uint64(ing.Sweep.Queued) && vz.Drift.Sweeps >= 1
	}, "background refresh observed on /varz")

	// Observability surfaces over the wire: the Prometheus exposition and
	// the trace ring both reflect the traffic this test just generated.
	base := "http://" + ln.Addr().String()
	metricsResp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	metricsBody, _ := io.ReadAll(metricsResp.Body)
	metricsResp.Body.Close()
	if ct := metricsResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"seagull_http_requests_total", "seagull_pool_hits_total",
		"seagull_ingest_appended_total", "seagull_trace_stage_total",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	tracesResp, err := http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatalf("GET /debug/traces: %v", err)
	}
	if id := tracesResp.Header.Get("X-Request-Id"); id == "" {
		t.Error("/debug/traces response carries no X-Request-Id")
	}
	tracesBody, _ := io.ReadAll(tracesResp.Body)
	tracesResp.Body.Close()
	if !strings.Contains(string(tracesBody), `"enabled":true`) ||
		!strings.Contains(string(tracesBody), `"stage":"ingest"`) {
		t.Errorf("/debug/traces = %s", tracesBody)
	}

	// Deliver a real SIGTERM to this process; the notify context catches it
	// and serve must drain cleanly. During the grace window the listener
	// stays open with /readyz reporting draining, so load balancers can
	// observe the drain before connections are refused.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	sawDraining := false
	for deadline := time.Now().Add(cfg.Grace); time.Now().Before(deadline); {
		if c.Healthy() && !c.Ready(context.Background()) {
			sawDraining = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Error("never observed the draining state while the listener was open")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want clean shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
	if c.Healthy() {
		t.Error("endpoint still serving after shutdown")
	}
}

// TestServeBackgroundSweep: the self-driving loop. With -sweep-interval set,
// the server discovers the demo pipeline's stored week on its own, sweeps it
// against live telemetry and retrains the drifted server — the client only
// ever ingests points; no request carries a sweep clause.
func TestServeBackgroundSweep(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := serveConfig{
		Deploy:        "backup/bgsweep=pf-prev-day",
		Demo:          true,
		Drain:         5 * time.Second,
		Timeout:       30 * time.Second,
		Stream:        true,
		SweepInterval: 50 * time.Millisecond,
	}
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ln, testWriter{t}) }()

	c := seagull.NewClient("http://" + ln.Addr().String())
	waitFor(t, func() bool { return c.Healthy() }, "healthz")

	preds, err := c.Predictions(context.Background(), "bgsweep", 1)
	if err != nil || len(preds.Predictions) == 0 {
		t.Fatalf("demo predictions: %v (%d)", err, len(preds.Predictions))
	}
	target := preds.Predictions[0]

	// Live telemetry only: history plus a backup day far above the stored
	// forecast. Zero sweep clauses anywhere in this test.
	vals := make([]float64, 8*288)
	for i := range vals {
		if i < 7*288 {
			vals[i] = 25
		} else {
			vals[i] = target.Values[i-7*288] + 45
		}
	}
	ing, err := c.Ingest(context.Background(), serving.IngestRequest{
		Servers: []serving.IngestSeries{{
			ServerID: target.ServerID, Start: target.BackupDay.Add(-7 * 24 * time.Hour),
			IntervalMin: 5, Values: vals,
		}},
	})
	if err != nil || ing.Accepted == 0 {
		t.Fatalf("ingest: %v (%+v)", err, ing)
	}
	if ing.Sweep != nil {
		t.Fatal("no sweep was requested; the response must not carry one")
	}

	// The background loop alone finds and fixes the drift.
	waitFor(t, func() bool {
		vz, err := c.Varz(context.Background())
		if err != nil || vz.Sweeper == nil || vz.Refresh == nil {
			return false
		}
		return vz.Sweeper.Ticks >= 1 && vz.Sweeper.Drifted >= 1 && vz.Refresh.Refreshed >= 1
	}, "background sweep + refresh observed on /varz")

	refreshed, err := c.Predictions(context.Background(), "bgsweep", 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, doc := range refreshed.Predictions {
		if doc.ServerID == target.ServerID && doc.Refreshes >= 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("drifted server was not republished by the background loop")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// recoveryServe boots serve() on an ephemeral port against dataDir and
// returns a client plus a shutdown func that drains and waits.
func recoveryServe(t *testing.T, dataDir string) (*seagull.Client, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := serveConfig{
		Deploy:   "backup/rec=pf-prev-day",
		DataDir:  dataDir,
		Drain:    5 * time.Second,
		Timeout:  30 * time.Second,
		Stream:   true,
		Snapshot: true,
		WAL:      true,
	}
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, ln, testWriter{t}) }()
	c := seagull.NewClient("http://" + ln.Addr().String())
	waitFor(t, func() bool { return c.Healthy() }, "healthz")
	return c, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve returned %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
}

// livePredict asks the deployed model to forecast from the server-held live
// window — no history on the wire.
func livePredict(t *testing.T, c *seagull.Client) (serving.PredictResponseV2, error) {
	t.Helper()
	return c.PredictV2(context.Background(), serving.PredictRequestV2{
		Scenario: "backup", Region: "rec", ServerID: "srv-rec",
		LiveHistory: true, Horizon: 288, WindowPoints: 12,
	})
}

// TestServeSnapshotRecovery is the crash-recovery property test: a server
// killed mid-window and restarted over the same data dir must serve
// /v2/predict responses bit-identical to a server that never restarted.
func TestServeSnapshotRecovery(t *testing.T) {
	// One deterministic telemetry window, split mid-stream.
	start := time.Now().UTC().Add(-3 * 24 * time.Hour).Truncate(5 * time.Minute)
	vals := make([]float64, 2*288)
	for i := range vals {
		vals[i] = 20 + float64(i%13)
	}
	cut := 400
	ingest := func(c *seagull.Client, lo, hi int) {
		t.Helper()
		resp, err := c.Ingest(context.Background(), serving.IngestRequest{
			Servers: []serving.IngestSeries{{
				ServerID: "srv-rec", Start: start.Add(time.Duration(lo) * 5 * time.Minute),
				IntervalMin: 5, Values: vals[lo:hi],
			}},
		})
		if err != nil || resp.Accepted != hi-lo {
			t.Fatalf("ingest [%d:%d): %v (%+v)", lo, hi, err, resp)
		}
	}

	// Interrupted world: ingest half, die, restart, ingest the rest.
	dirA := t.TempDir()
	c1, shutdown1 := recoveryServe(t, dirA)
	ingest(c1, 0, cut)
	shutdown1() // SIGTERM path: drain + ring snapshot to the lake

	c2, shutdown2 := recoveryServe(t, dirA)
	defer shutdown2()
	// The restored window alone already serves live predictions.
	if resp, err := livePredict(t, c2); err != nil || len(resp.Forecast.Values) != 288 {
		t.Fatalf("predict from restored rings: %v", err)
	}
	ingest(c2, cut, len(vals))
	respA, err := livePredict(t, c2)
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted world: same telemetry, one process.
	c3, shutdown3 := recoveryServe(t, t.TempDir())
	defer shutdown3()
	ingest(c3, 0, len(vals))
	respB, err := livePredict(t, c3)
	if err != nil {
		t.Fatal(err)
	}

	if respA.Model != respB.Model || respA.Version != respB.Version {
		t.Fatalf("deployment differs: %s v%d vs %s v%d", respA.Model, respA.Version, respB.Model, respB.Version)
	}
	if !respA.Forecast.Start.Equal(respB.Forecast.Start) || len(respA.Forecast.Values) != len(respB.Forecast.Values) {
		t.Fatalf("forecast shape differs: %v/%d vs %v/%d",
			respA.Forecast.Start, len(respA.Forecast.Values), respB.Forecast.Start, len(respB.Forecast.Values))
	}
	for i := range respA.Forecast.Values {
		if respA.Forecast.Values[i] != respB.Forecast.Values[i] {
			t.Fatalf("forecast[%d] = %v vs %v: restart is observable", i, respA.Forecast.Values[i], respB.Forecast.Values[i])
		}
	}
	if respA.LLStart != respB.LLStart || respA.LLAvg != respB.LLAvg {
		t.Fatalf("LL window (%d, %v) vs (%d, %v)", respA.LLStart, respA.LLAvg, respB.LLStart, respB.LLAvg)
	}
}

// TestServeSnapshotCorruption: a truncated snapshot file must produce a
// clean cold start — the server boots, reports healthy and simply has no
// live telemetry — never a panic or a refused boot.
func TestServeSnapshotCorruption(t *testing.T) {
	dir := t.TempDir()
	c1, shutdown1 := recoveryServe(t, dir)
	resp, err := c1.Ingest(context.Background(), serving.IngestRequest{
		Servers: []serving.IngestSeries{{
			ServerID:    "srv-rec",
			Start:       time.Now().UTC().Add(-24 * time.Hour).Truncate(5 * time.Minute),
			IntervalMin: 5, Values: []float64{1, 2, 3, 4, 5},
		}},
	})
	if err != nil || resp.Accepted != 5 {
		t.Fatalf("ingest: %v (%+v)", err, resp)
	}
	shutdown1()

	snaps, err := filepath.Glob(filepath.Join(dir, "lake", "stream", "rings", "shard-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no per-shard snapshots written on drain: %v (%d)", err, len(snaps))
	}
	for _, snapPath := range snaps {
		fi, err := os.Stat(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(snapPath, fi.Size()/2); err != nil {
			t.Fatal(err)
		}
	}

	c2, shutdown2 := recoveryServe(t, dir)
	defer shutdown2()
	if !c2.Ready(context.Background()) {
		t.Fatal("server with a corrupt snapshot should still become ready")
	}
	// The partial restore is reported, not hidden: /varz carries the
	// degraded reason alongside the recovery stats.
	vz, err := c2.Varz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vz.Degraded == "" {
		t.Fatal("corrupt snapshot restore should report a degraded state on /varz")
	}
	if vz.Durability == nil || vz.Durability.Recovered == nil || !vz.Durability.Recovered.Degraded() {
		t.Fatalf("varz durability = %+v, want a degraded recovery outcome", vz.Durability)
	}
	// Cold start: the live window is gone, reported as not_found — not 500.
	if _, err := livePredict(t, c2); !isAPICode(err, serving.CodeNotFound) {
		t.Fatalf("predict after corrupt snapshot: %v, want not_found", err)
	}
	// The stream still works; the next drain rewrites a good snapshot.
	if _, err := c2.Ingest(context.Background(), serving.IngestRequest{
		Points: []serving.IngestPoint{{ServerID: "srv-rec", TimeUnix: time.Now().Unix() - 600, Value: 9}},
	}); err != nil {
		t.Fatal(err)
	}
}

// isAPICode reports whether err is a serving APIError with the given code.
func isAPICode(err error, code serving.ErrorCode) bool {
	var apiErr *serving.APIError
	return errors.As(err, &apiErr) && apiErr.Code == code
}

func waitFor(t *testing.T, ok func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testWriter routes server output through the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// TestMain doubles as the entry point for the hard-kill child process: when
// SEAGULL_SERVE_KILL_CHILD names a data directory, this binary runs a real
// server against it (announcing its address on stdout) instead of the test
// suite, so the parent test can SIGKILL an actual process mid-ingest.
func TestMain(m *testing.M) {
	if dir := os.Getenv("SEAGULL_SERVE_KILL_CHILD"); dir != "" {
		runKillChild(dir)
		return
	}
	os.Exit(m.Run())
}

// runKillChild is the sacrificial server: WAL commits every 25ms, snapshots
// effectively never (1h), so recovery after the kill must come from the WAL.
func runKillChild(dataDir string) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("SEAGULL_ADDR=%s\n", ln.Addr())
	cfg := serveConfig{
		Deploy:        "backup/rec=pf-prev-day",
		DataDir:       dataDir,
		Drain:         5 * time.Second,
		Timeout:       30 * time.Second,
		Stream:        true,
		Snapshot:      true,
		WAL:           true,
		WALCommit:     25 * time.Millisecond,
		SnapshotEvery: time.Hour,
	}
	if err := serve(context.Background(), cfg, ln, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// TestServeHardKillRecovery is the tentpole's end-to-end proof: a real child
// process is SIGKILLed — no drain, no snapshot, no deferred cleanup — after
// its WAL committed the ingested window, and a restart over the same data
// directory must serve live predictions bit-identical to a process that was
// never killed.
func TestServeHardKillRecovery(t *testing.T) {
	dir := t.TempDir()
	child := exec.Command(os.Args[0])
	child.Env = append(os.Environ(), "SEAGULL_SERVE_KILL_CHILD="+dir)
	stdout, err := child.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			child.Process.Kill()
			child.Wait()
		}
	}()

	// The child announces its ephemeral address as the first stdout line.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "SEAGULL_ADDR="); ok {
				addrCh <- rest
			}
			t.Logf("child: %s", line)
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("child never announced its address")
	}
	c := seagull.NewClient("http://" + addr)
	waitFor(t, func() bool { return c.Healthy() }, "child healthz")

	// One deterministic window, fully ingested into the child.
	start := time.Now().UTC().Add(-3 * 24 * time.Hour).Truncate(5 * time.Minute)
	vals := make([]float64, 2*288)
	for i := range vals {
		vals[i] = 20 + float64(i%13)
	}
	resp, err := c.Ingest(context.Background(), serving.IngestRequest{
		Servers: []serving.IngestSeries{{
			ServerID: "srv-rec", Start: start, IntervalMin: 5, Values: vals,
		}},
	})
	if err != nil || resp.Accepted != len(vals) {
		t.Fatalf("ingest: %v (%+v)", err, resp)
	}

	// Wait for the WAL group commit to cover every ingested point, then pull
	// the rug: SIGKILL, no chance to flush or snapshot.
	waitFor(t, func() bool {
		vz, err := c.Varz(context.Background())
		if err != nil || vz.Durability == nil {
			return false
		}
		return vz.Durability.CommitRecords >= uint64(len(vals)) && vz.Durability.Dropped == 0
	}, "WAL commit to cover the ingested window")
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	child.Wait()
	killed = true

	// Survivor world: restart over the killed child's data directory.
	c2, shutdown2 := recoveryServe(t, dir)
	defer shutdown2()
	respA, err := livePredict(t, c2)
	if err != nil {
		t.Fatalf("predict from WAL-recovered rings: %v", err)
	}

	// Reference world: same telemetry, never killed.
	c3, shutdown3 := recoveryServe(t, t.TempDir())
	defer shutdown3()
	if _, err := c3.Ingest(context.Background(), serving.IngestRequest{
		Servers: []serving.IngestSeries{{
			ServerID: "srv-rec", Start: start, IntervalMin: 5, Values: vals,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	respB, err := livePredict(t, c3)
	if err != nil {
		t.Fatal(err)
	}

	if respA.Model != respB.Model || respA.Version != respB.Version {
		t.Fatalf("deployment differs: %s v%d vs %s v%d", respA.Model, respA.Version, respB.Model, respB.Version)
	}
	if !respA.Forecast.Start.Equal(respB.Forecast.Start) || len(respA.Forecast.Values) != len(respB.Forecast.Values) {
		t.Fatalf("forecast shape differs: %v/%d vs %v/%d",
			respA.Forecast.Start, len(respA.Forecast.Values), respB.Forecast.Start, len(respB.Forecast.Values))
	}
	for i := range respA.Forecast.Values {
		if respA.Forecast.Values[i] != respB.Forecast.Values[i] {
			t.Fatalf("forecast[%d] = %v vs %v: the kill is observable", i, respA.Forecast.Values[i], respB.Forecast.Values[i])
		}
	}
	if respA.LLStart != respB.LLStart || respA.LLAvg != respB.LLAvg {
		t.Fatalf("LL window (%d, %v) vs (%d, %v)", respA.LLStart, respA.LLAvg, respB.LLStart, respB.LLAvg)
	}
}
