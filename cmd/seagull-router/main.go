// Command seagull-router fronts a region-sharded Seagull fleet: N
// seagull-serve replicas, each owning a consistent-hash shard of server IDs,
// behind one stateless routing process.
//
// Usage:
//
//	seagull-router -addr :8090 \
//	  -replica shard-a=http://10.0.0.1:8080 \
//	  -replica shard-b=http://10.0.0.2:8080 \
//	  -seed 42
//
// The router routes POST /v2/predict and /v2/ingest by server ID, splits
// POST /v2/predict/batch across shards and merges per-item results in
// request order, broadcasts ingest sweep clauses, aggregates GET /varz and
// GET /metrics fleet-wide, and round-robins the stateless endpoints
// (/v2/advise, /v2/models, /v1/*). Requests to a draining replica are
// retried with jittered exponential backoff honoring Retry-After
// (-retry-attempts, -retry-budget) behind a per-replica circuit breaker
// (-breaker-threshold, -breaker-cooldown).
//
// Every router configured with the same -seed and -replica set routes
// identically — the process holds no state, so run as many as you like.
//
// On SIGINT/SIGTERM the router stops accepting connections, waits up to
// -drain for in-flight requests, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seagull/internal/router"
	"seagull/internal/serving"
)

// replicaFlags collects repeated -replica name=url flags.
type replicaFlags []router.Replica

func (f *replicaFlags) String() string {
	parts := make([]string, len(*f))
	for i, r := range *f {
		parts[i] = r.Name + "=" + r.BaseURL
	}
	return strings.Join(parts, ",")
}

func (f *replicaFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*f = append(*f, router.Replica{Name: name, BaseURL: url})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("seagull-router: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("seagull-router", flag.ExitOnError)
	var replicas replicaFlags
	fs.Var(&replicas, "replica", "replica as name=url (repeat per replica)")
	var (
		addr     = fs.String("addr", ":8090", "listen address")
		seed     = fs.Uint64("seed", 0, "shard-map seed (identical on every router)")
		attempts = fs.Int("retry-attempts", 4, "upstream attempts per request (1 disables retries)")
		budget   = fs.Duration("retry-budget", 2*time.Second, "total upstream retry budget per request")
		brkN     = fs.Int("breaker-threshold", 5, "consecutive failures opening a replica's circuit (-1 disables)")
		brkCool  = fs.Duration("breaker-cooldown", time.Second, "open-circuit cooldown before the half-open probe")
		timeout  = fs.Duration("timeout", 60*time.Second, "upstream HTTP timeout")
		drain    = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(replicas) == 0 {
		return errors.New("at least one -replica name=url is required")
	}

	rt, err := router.New(router.Config{
		Seed:     *seed,
		Replicas: replicas,
		Retry:    serving.RetryConfig{MaxAttempts: *attempts, MaxElapsed: *budget},
		Breaker:  serving.BreakerConfig{Threshold: *brkN, Cooldown: *brkCool},
		HTTP:     &http.Client{Timeout: *timeout},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("routing %d replicas (seed %d) on %s", len(replicas), *seed, ln.Addr())
	for _, r := range replicas {
		log.Printf("  replica %s -> %s", r.Name, r.BaseURL)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("draining (up to %v)", *drain)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	log.Printf("drained, bye")
	return nil
}
