// Command seagull-simulate runs a time-compressed fleet simulation: a full
// Seagull system — weekly pipeline warmup, live ingest, drift sweeps, model
// refresh, WAL durability and the serving layer over a loopback listener —
// driven by a declarative scenario on a simulated clock, so days of fleet
// operation replay in seconds of wall time.
//
// Usage:
//
//	go run ./cmd/seagull-simulate                          # built-in smoke scenario
//	go run ./cmd/seagull-simulate -scenario burst-drift-36h -out /tmp/sim
//	go run ./cmd/seagull-simulate -scenario scenario.json  # custom JSON scenario
//	go run ./cmd/seagull-simulate -list                    # built-in scenarios
//	go run ./cmd/seagull-simulate -hours 12 -seed 42       # overrides
//	go run ./cmd/seagull-simulate -scale 100               # pace at 100x real time
//
// The run writes timeline.csv (deterministic per scenario+seed: cumulative
// subsystem counters sampled every simulated hour) and slo.json (the SLO
// report: predict latency percentiles, shed/degraded counts, drift detection
// lag, durability counters) into -out, and prints the report summary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"seagull/internal/parallel"
	"seagull/internal/simworkload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "seagull-simulate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario = flag.String("scenario", "smoke", "built-in scenario name or path to a scenario JSON file")
		list     = flag.Bool("list", false, "list built-in scenarios and exit")
		out      = flag.String("out", "", "output directory for timeline.csv and slo.json (default: report only)")
		hours    = flag.Float64("hours", 0, "override the scenario's simulated replay hours")
		seed     = flag.Int64("seed", 0, "override the scenario seed")
		scale    = flag.Float64("scale", 0, "pace the replay at this many simulated seconds per wall second (0 = unthrottled)")
		ingestW  = flag.Int("ingest-workers", 4, "ingest fan-out workers")
		predictW = flag.Int("predict-workers", 8, "predict request workers")
		schedule = flag.String("schedule", "guided", "ingest fan-out schedule: guided or chunked")
		rowEvery = flag.Duration("row-every", time.Hour, "timeline sampling cadence in simulated time")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
		replicas = flag.Int("replicas", 0, "override the scenario's serving replicas (consistent-hash shards behind a router; 1 = single process)")
	)
	flag.Parse()

	if *list {
		for _, name := range simworkload.BuiltinNames() {
			sc, _ := simworkload.Builtin(name)
			fmt.Printf("%-18s %d region(s), %g simulated hours, %d events, %d replica(s)\n",
				name, len(sc.Regions), sc.Hours, len(sc.Events), max(sc.Replicas, 1))
		}
		return nil
	}

	sc, ok := simworkload.Builtin(*scenario)
	if !ok {
		var err error
		if sc, err = simworkload.LoadScenario(*scenario); err != nil {
			return fmt.Errorf("scenario %q is not built-in (%s) and did not load as a file: %w",
				*scenario, strings.Join(simworkload.BuiltinNames(), ", "), err)
		}
	}
	if *replicas > 0 {
		sc.Replicas = *replicas
	}

	var sched parallel.Schedule
	switch *schedule {
	case "guided":
		sched = parallel.ScheduleGuided
	case "chunked":
		sched = parallel.ScheduleChunked
	default:
		return fmt.Errorf("unknown -schedule %q (want guided or chunked)", *schedule)
	}

	opts := simworkload.Options{
		Hours:          *hours,
		Seed:           *seed,
		Scale:          *scale,
		Schedule:       sched,
		IngestWorkers:  *ingestW,
		PredictWorkers: *predictW,
		RowEvery:       *rowEvery,
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	outcome, err := simworkload.Run(ctx, sc, opts)
	if err != nil {
		return err
	}

	if *out != "" {
		if err := writeArtifacts(*out, outcome); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s and %s\n",
			filepath.Join(*out, "timeline.csv"), filepath.Join(*out, "slo.json"))
	}
	fmt.Print(outcome.Report.String())
	return nil
}

// writeArtifacts persists the run's two artifacts: the deterministic
// timeline CSV and the SLO report JSON.
func writeArtifacts(dir string, outcome *simworkload.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "timeline.csv"), outcome.CSV, 0o644); err != nil {
		return err
	}
	rep, err := json.MarshalIndent(outcome.Report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "slo.json"), append(rep, '\n'), 0o644)
}
