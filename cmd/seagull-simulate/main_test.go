package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"seagull/internal/simworkload"
)

// TestSimulateArtifactsDeterministic: two runs of the same scenario and seed
// write byte-identical timeline CSVs, and the SLO report parses back with
// the deterministic fields intact.
func TestSimulateArtifactsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	sc, ok := simworkload.Builtin("smoke")
	if !ok {
		t.Fatal("smoke scenario missing")
	}
	opts := simworkload.Options{Hours: 3}

	dirs := [2]string{t.TempDir(), t.TempDir()}
	for _, dir := range dirs {
		out, err := simworkload.Run(context.Background(), sc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeArtifacts(dir, out); err != nil {
			t.Fatal(err)
		}
	}

	csv1, err := os.ReadFile(filepath.Join(dirs[0], "timeline.csv"))
	if err != nil {
		t.Fatal(err)
	}
	csv2, err := os.ReadFile(filepath.Join(dirs[1], "timeline.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Fatalf("timeline.csv differs across identical runs:\n--- run 1\n%s\n--- run 2\n%s", csv1, csv2)
	}
	if !strings.HasPrefix(string(csv1), "sim_hours,") {
		t.Fatalf("timeline.csv missing header: %q", string(csv1[:40]))
	}

	raw, err := os.ReadFile(filepath.Join(dirs[0], "slo.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep simworkload.SLOReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "smoke" || rep.SimHours != 3 || rep.Ingest.Appended == 0 {
		t.Fatalf("slo.json content wrong: %+v", rep)
	}
}

// TestSimulateShutdownLeaksNothing: cancelling a run mid-scenario tears the
// whole system down — loopback HTTP server, serving pool binding, durability
// — without leaving goroutines behind.
func TestSimulateShutdownLeaksNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	sc, ok := simworkload.Builtin("smoke")
	if !ok {
		t.Fatal("smoke scenario missing")
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := simworkload.Options{
		Hours: 6,
		Logf: func(format string, args ...any) {
			if strings.HasPrefix(format, "sim ") {
				cancel() // first progress line: the replay loop is live
			}
		},
	}
	if _, err := simworkload.Run(ctx, sc, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}

	// HTTP client/server goroutines unwind asynchronously; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after shutdown: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
