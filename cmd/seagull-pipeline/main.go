// Command seagull-pipeline runs the weekly AML-pipeline analog for one or
// more regions and weeks: ingestion, validation, feature extraction, model
// training/inference, deployment/tracking, accuracy evaluation, and result
// persistence (Section 2.2). After the final week it can also run the
// backup scheduler (Section 2.3).
//
// Usage:
//
//	seagull-pipeline -data ./seagull-data -region westus -weeks 0-3 -model pf-prev-day -schedule
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"seagull"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seagull-pipeline: ")

	var (
		dataDir  = flag.String("data", "./seagull-data", "data directory with the lake")
		region   = flag.String("region", "westus", "region to process")
		weeksArg = flag.String("weeks", "0-3", "weeks to run: N, N-M or comma list")
		model    = flag.String("model", seagull.ModelPersistentPrevDay, "forecast model to deploy")
		workers  = flag.Int("workers", 0, "parallel partitions (0 = NumCPU)")
		seed     = flag.Int64("seed", 1, "seed for stochastic models")
		schedule = flag.Bool("schedule", false, "run the backup scheduler after the final week")
	)
	flag.Parse()

	weeks, err := parseWeeks(*weeksArg)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := seagull.NewSystem(seagull.SystemConfig{DataDir: *dataDir, Persist: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	for _, week := range weeks {
		res, err := sys.RunWeek(seagull.PipelineConfig{
			Region: *region, Week: week, ModelName: *model,
			Workers: *workers, Seed: *seed,
		})
		if err != nil {
			log.Fatalf("week %d: %v", week, err)
		}
		fmt.Printf("week %d: servers=%d rows=%d predicted=%d evaluated=%d\n",
			week, res.Servers, res.Rows, res.Predicted, res.Evaluated)
		fmt.Printf("  accuracy: LL-correct=%.2f%% LL-accurate=%.2f%% predictable=%.2f%%\n",
			100*res.Summary.PctCorrect, 100*res.Summary.PctAccurate, 100*res.Summary.PctPredictable)
		fmt.Printf("  classes: %s\n", res.Classes)
		if res.Validation != nil && !res.Validation.Valid {
			fmt.Printf("  validation anomalies: %d\n", len(res.Validation.Anomalies))
		}
		for _, st := range res.StageTimings {
			fmt.Printf("  %-20s %v\n", st.Stage, st.Duration.Round(1000))
		}
	}

	if *schedule {
		final := weeks[len(weeks)-1]
		decisions, err := sys.ScheduleBackups(*region, final)
		if err != nil {
			log.Fatal(err)
		}
		predicted := 0
		for _, d := range decisions {
			if d.Source == "predicted" {
				predicted++
			}
		}
		fmt.Printf("scheduler: %d decisions, %d moved to predicted LL windows, %d kept defaults\n",
			len(decisions), predicted, len(decisions)-predicted)
	}

	sum := sys.DashboardSummary()
	fmt.Printf("dashboard: runs=%d ok=%d failed=%d mean=%v\n",
		sum.Runs, sum.Succeeded, sum.Failed, sum.MeanRuntime.Round(1000))
}

// parseWeeks accepts "3", "0-3" or "0,2,3".
func parseWeeks(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if from, to, ok := strings.Cut(s, "-"); ok {
		a, err1 := strconv.Atoi(from)
		b, err2 := strconv.Atoi(to)
		if err1 != nil || err2 != nil || b < a {
			return nil, fmt.Errorf("bad week range %q", s)
		}
		var out []int
		for w := a; w <= b; w++ {
			out = append(out, w)
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad week %q", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no weeks in %q", s)
	}
	return out, nil
}
