package main

import (
	"reflect"
	"testing"
)

func TestParseWeeks(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"3", []int{3}, false},
		{"0-3", []int{0, 1, 2, 3}, false},
		{"2-2", []int{2}, false},
		{"0,2,5", []int{0, 2, 5}, false},
		{" 1 , 2 ", []int{1, 2}, false},
		{"3-1", nil, true},
		{"a-b", nil, true},
		{"x", nil, true},
		{"", nil, true},
	}
	for _, c := range cases {
		got, err := parseWeeks(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseWeeks(%q) should fail, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseWeeks(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseWeeks(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
