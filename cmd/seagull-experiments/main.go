// Command seagull-experiments regenerates the paper's tables and figures on
// the synthetic substrate (see DESIGN.md's per-experiment index). Output is
// aligned text on stdout, or markdown with -markdown — the format used to
// produce EXPERIMENTS.md.
//
// Usage:
//
//	seagull-experiments -list
//	seagull-experiments -run fig3,fig11a
//	seagull-experiments -run all -scale full -markdown > EXPERIMENTS-full.md
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"seagull/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seagull-experiments: ")

	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.String("scale", "small", "small or full")
		seed     = flag.Int64("seed", 1, "experiment seed")
		workers  = flag.Int("workers", 0, "parallel partitions (0 = NumCPU)")
		markdown = flag.Bool("markdown", false, "emit markdown instead of aligned text")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Workers: *workers}
	switch *scale {
	case "small":
		opts.Scale = experiments.ScaleSmall
	case "full":
		opts.Scale = experiments.ScaleFull
	default:
		log.Fatalf("unknown scale %q (want small or full)", *scale)
	}

	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				log.Fatalf("unknown experiment %q (use -list); known: %s",
					id, strings.Join(experiments.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}

	// fig16 and fig17 share one run function; dedupe to avoid computing twice.
	seen := map[string]bool{}
	failures := 0
	for _, e := range selected {
		if e.ID == "fig17" && seen["fig16"] {
			continue // fig16's run already emitted both tables
		}
		seen[e.ID] = true
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			log.Printf("%s FAILED: %v", e.ID, err)
			failures++
			continue
		}
		if *markdown {
			fmt.Printf("## %s\n\n", e.Title)
			fmt.Printf("Paper: %s.\n\n", e.Paper)
			for _, tb := range tables {
				fmt.Println(tb.Markdown())
			}
			fmt.Printf("_Regenerated in %v._\n\n", time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("=== %s — %s (%v)\n", e.ID, e.Title, time.Since(start).Round(time.Millisecond))
			fmt.Printf("paper: %s\n\n", e.Paper)
			for _, tb := range tables {
				fmt.Println(tb.Text())
			}
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}
