package seagull_test

// Benchmark harness: one benchmark per paper table/figure (see DESIGN.md's
// per-experiment index) plus micro-benchmarks of the core primitives. The
// figure benchmarks regenerate the experiment at small scale; run
// cmd/seagull-experiments -scale full for paper-sized runs.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"seagull"
	"seagull/internal/admission"
	"seagull/internal/cosmos"
	"seagull/internal/experiments"
	"seagull/internal/forecast"
	"seagull/internal/lake"
	"seagull/internal/linalg"
	"seagull/internal/metrics"
	"seagull/internal/obs"
	"seagull/internal/parallel"
	"seagull/internal/registry"
	"seagull/internal/router"
	"seagull/internal/serving"
	"seagull/internal/simulate"
	"seagull/internal/simworkload"
	"seagull/internal/stream"
	"seagull/internal/timeseries"
)

// benchOpts pins Workers to 1 so the figure benchmarks have a deterministic
// allocation profile across machines: per-worker model arenas and grid-spill
// scratch scale allocs/op with the worker count, and the seagull-bench
// -compare gate diffs allocs across runs. Parallel behaviour is exercised by
// the experiments CLI and the pool's own tests/benchmarks instead.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: experiments.ScaleSmall, Seed: 1, Workers: 1}
}

// runExperiment executes one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// --- One benchmark per paper artifact ---

func BenchmarkFig3Classification(b *testing.B)      { runExperiment(b, "fig3") }
func BenchmarkFig11aTrainInfer(b *testing.B)        { runExperiment(b, "fig11a") }
func BenchmarkFig11bLLWindows(b *testing.B)         { runExperiment(b, "fig11bcd") }
func BenchmarkFig12aComponents(b *testing.B)        { runExperiment(b, "fig12a") }
func BenchmarkFig12bAccuracyEval(b *testing.B)      { runExperiment(b, "fig12b") }
func BenchmarkFig13aImpact(b *testing.B)            { runExperiment(b, "fig13a") }
func BenchmarkFig13bUtilization(b *testing.B)       { runExperiment(b, "fig13b") }
func BenchmarkSec53PersistentForecast(b *testing.B) { runExperiment(b, "sec53") }
func BenchmarkFigA1StableDatabases(b *testing.B)    { runExperiment(b, "a1") }
func BenchmarkFig16AutoscaleAccuracy(b *testing.B)  { runExperiment(b, "fig16") }

// Figure 17 shares fig16's evaluation pass; its benchmark isolates the
// runtime-measurement half on a smaller population.
func BenchmarkFig17AutoscaleRuntime(b *testing.B) {
	dbs := simulate.GenerateSQL(simulate.SQLConfig{Databases: 10, Days: 9, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evs, err := seagull.CompareAutoscaleModels(
			[]string{seagull.ModelPersistentPrevDay, seagull.ModelFFNN}, dbs,
			seagull.AutoscaleConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if evs[0].TrainInfer > evs[1].TrainInfer {
			b.Fatalf("persistent forecast (%v) must not out-train the network (%v)",
				evs[0].TrainInfer, evs[1].TrainInfer)
		}
	}
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

func BenchmarkAblationBound(b *testing.B)      { runExperiment(b, "ablation-bound") }
func BenchmarkAblationThreshold(b *testing.B)  { runExperiment(b, "ablation-threshold") }
func BenchmarkAblationHistory(b *testing.B)    { runExperiment(b, "ablation-history") }
func BenchmarkAblationPFVariants(b *testing.B) { runExperiment(b, "ablation-pf-variants") }
func BenchmarkAblationWorkers(b *testing.B)    { runExperiment(b, "ablation-workers") }

// --- Micro-benchmarks of the primitives the experiments lean on ---

func benchDay(seed int64) timeseries.Series {
	vals := make([]float64, 288)
	for i := range vals {
		v := 10.0
		if i >= 96 && i < 192 {
			v = 60
		}
		vals[i] = v + float64((int(seed)+i*37)%7)
	}
	return timeseries.New(time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC), 5*time.Minute, vals)
}

func benchHistory(days int) timeseries.Series {
	h := benchDay(1)
	full := timeseries.New(h.Start, h.Interval, nil)
	for d := 0; d < days; d++ {
		day := benchDay(int64(d))
		full.Append(day.Values...)
	}
	return full
}

func BenchmarkMinWindow(b *testing.B) {
	day := benchDay(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := day.MinWindow(12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBucketRatio(b *testing.B) {
	t, p := benchDay(1), benchDay(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.BucketRatio(t, p, metrics.DefaultBound); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateDay(b *testing.B) {
	t, p := benchDay(1), benchDay(2)
	cfg := metrics.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.EvaluateDay(t, p, 12, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPersistentForecastTrainInfer(b *testing.B) {
	hist := benchHistory(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := forecast.NewPersistent(forecast.PrevDay)
		if _, err := forecast.PredictDay(m, hist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSSATrainInfer(b *testing.B) {
	hist := benchHistory(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := forecast.NewSSA(forecast.SSAConfig{})
		if _, err := forecast.PredictDay(m, hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSATrainInferRandomized measures the seeded randomized
// range-finder SVD variant (the fast experiment profile); forecasts match
// the exact Jacobi path to ≤1e-6.
func BenchmarkSSATrainInferRandomized(b *testing.B) {
	hist := benchHistory(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := forecast.NewSSA(forecast.SSAConfig{RandomizedSVD: true})
		if _, err := forecast.PredictDay(m, hist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFNNTrainInfer(b *testing.B) {
	hist := benchHistory(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := forecast.NewFFNN(forecast.FFNNConfig{Seed: 1, Epochs: 5})
		if _, err := forecast.PredictDay(m, hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFNNTrainInferBatched measures the fused minibatched trainer at
// the experiments' fast-profile configuration (accuracy equivalence recorded
// in TestFFNNBatchedAccuracyEquivalent).
func BenchmarkFFNNTrainInferBatched(b *testing.B) {
	hist := benchHistory(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := forecast.NewFFNN(forecast.FFNNConfig{
			Seed: 1, Epochs: 5, BatchSize: 8, LearningRate: 0.1,
		})
		if _, err := forecast.PredictDay(m, hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkARIMATrain isolates the ARIMA order search — the dominant cost of
// fig11a and every experiment that trains per-server models. The config
// mirrors modelFactory's ScaleSmall settings.
func BenchmarkARIMATrain(b *testing.B) {
	hist := benchHistory(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := forecast.NewARIMA(forecast.ARIMAConfig{MaxP: 1, MaxQ: 1, SearchBudget: 60})
		if _, err := forecast.PredictDay(m, hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveRidge exercises the normal-equations solver at the shape the
// Hannan–Rissanen long-AR regression produces (~600×26).
func BenchmarkSolveRidge(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const rows, cols = 600, 26
	a := linalg.NewMatrix(rows, cols)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	y := make([]float64, rows)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SolveRidge(a, y, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolForEach measures pure work-distribution overhead: many tiny
// tasks, so channel sends / chunk claiming dominate. The worker count is
// pinned (not NumCPU) so goroutine-spawn allocations — and therefore the
// seagull-bench allocs/op gate — are machine-independent.
func BenchmarkPoolForEach(b *testing.B) {
	pool := parallel.NewPool(4)
	sink := make([]int64, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := pool.ForEach(len(sink), func(j int) error {
			sink[j]++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetGeneration measures the default (lazy) fleet build: server
// metadata only, telemetry deferred to first Load access.
func BenchmarkFleetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fleet := simulate.GenerateFleet(simulate.Config{
			Region: "bench", Servers: 50, Weeks: 4, Seed: int64(i),
		})
		if len(fleet.Servers) != 50 {
			b.Fatal("wrong fleet size")
		}
	}
}

// BenchmarkFleetGenerationEager forces every series at generation time —
// the historical behaviour, for comparison with the lazy default.
func BenchmarkFleetGenerationEager(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fleet := simulate.GenerateFleet(simulate.Config{
			Region: "bench", Servers: 50, Weeks: 4, Seed: int64(i), Eager: true,
		})
		if len(fleet.Servers) != 50 {
			b.Fatal("wrong fleet size")
		}
	}
}

// BenchmarkFleetMaterialize isolates the deferred telemetry synthesis: lazy
// generation followed by materializing every server.
func BenchmarkFleetMaterialize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fleet := simulate.GenerateFleet(simulate.Config{
			Region: "bench", Servers: 50, Weeks: 4, Seed: int64(i),
		})
		for _, srv := range fleet.Servers {
			if srv.Load().Len() == 0 {
				b.Fatal("empty series")
			}
		}
	}
}

// --- Serving-layer benchmarks: warm pool vs model-per-request ---

// benchServePredict measures the core serving path (no HTTP: the network
// stack would drown the allocation signal) for one deployed model.
// maxIdle 0 selects the default warm pool; -1 disables pooling, reproducing
// the v1 model-per-request behaviour as the baseline. newModel may override
// model construction (nil = production defaults).
func benchServePredict(b *testing.B, model string, maxIdle int, newModel func(name string, seed int64) (forecast.Model, error)) {
	b.Helper()
	reg := registry.New(nil)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "bench"}, model, "bench")
	svc := serving.NewService(reg, nil, serving.ServiceConfig{
		Workers: 1, Pool: serving.PoolConfig{MaxIdle: maxIdle, NewModel: newModel},
	})
	req := serving.PredictRequestV2{
		Scenario: "backup", Region: "bench",
		History: serving.FromSeries(benchHistory(7)), Horizon: 288, WindowPoints: 12,
	}
	ctx := context.Background()
	// Prime the pool so the timed loop measures the steady state.
	if _, serr := svc.Predict(ctx, req); serr != nil {
		b.Fatal(serr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, serr := svc.Predict(ctx, req); serr != nil {
			b.Fatal(serr)
		}
	}
}

// fastFFNN is the experiments' fast trainer profile (equivalence recorded in
// TestFFNNBatchedAccuracyEquivalent); the serve benchmarks use it so the
// measured quantity is serving overhead, not 25 epochs of SGD.
func fastFFNN(_ string, seed int64) (forecast.Model, error) {
	return forecast.NewFFNN(forecast.FFNNConfig{
		Seed: seed, Epochs: 5, BatchSize: 8, LearningRate: 0.1,
	}), nil
}

func BenchmarkServePredictSSA(b *testing.B)     { benchServePredict(b, forecast.NameSSA, 0, nil) }
func BenchmarkServePredictSSACold(b *testing.B) { benchServePredict(b, forecast.NameSSA, -1, nil) }
func BenchmarkServePredictFFNN(b *testing.B) {
	benchServePredict(b, forecast.NameFFNN, 0, fastFFNN)
}
func BenchmarkServePredictFFNNCold(b *testing.B) {
	benchServePredict(b, forecast.NameFFNN, -1, fastFFNN)
}

// BenchmarkServeBatch measures a whole batch predict through the fan-out
// path: 8 servers with distinct histories (so every item genuinely
// retrains — the train memo cannot kick in), one worker (deterministic
// allocs), SSA. Per-worker warm checkout means the 8 servers share one
// model instance per op, reusing its retained buffers.
func BenchmarkServeBatch(b *testing.B) {
	reg := registry.New(nil)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "bench"}, forecast.NameSSA, "bench")
	svc := serving.NewService(reg, nil, serving.ServiceConfig{Workers: 1})
	items := make([]serving.BatchItem, 8)
	for i := range items {
		hist := benchHistory(7)
		for k := range hist.Values {
			hist.Values[k] += float64(i) // per-server offset defeats the memo
		}
		items[i] = serving.BatchItem{
			ServerID: fmt.Sprintf("srv-%d", i),
			History:  serving.FromSeries(hist),
			Horizon:  288, WindowPoints: 12,
		}
	}
	req := serving.BatchRequest{Scenario: "backup", Region: "bench", Servers: items}
	ctx := context.Background()
	if _, serr := svc.PredictBatch(ctx, req); serr != nil {
		b.Fatal(serr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, serr := svc.PredictBatch(ctx, req)
		if serr != nil {
			b.Fatal(serr)
		}
		if resp.Failed != 0 {
			b.Fatalf("%d batch items failed", resp.Failed)
		}
	}
}

// BenchmarkTracedPredict is BenchmarkServePredictSSA with tracing enabled:
// the trace rides a pre-bound TraceRef (one context allocation total, zero
// per iteration), so the delta against the untraced benchmark is the true
// cost of span recording on the warm path. The CI alloc gate pins this at the
// same 3 allocs/op budget as the untraced predict — tracing must be free
// enough to leave on in production.
func BenchmarkTracedPredict(b *testing.B) {
	reg := registry.New(nil)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "bench"}, forecast.NameSSA, "bench")
	tracer := obs.NewTracer(obs.TracerConfig{})
	svc := serving.NewService(reg, nil, serving.ServiceConfig{Workers: 1, Tracer: tracer})
	req := serving.PredictRequestV2{
		Scenario: "backup", Region: "bench",
		History: serving.FromSeries(benchHistory(7)), Horizon: 288, WindowPoints: 12,
	}
	ref := &obs.TraceRef{}
	ctx := obs.ContextWithTraceRef(context.Background(), ref)
	if _, serr := svc.Predict(ctx, req); serr != nil {
		b.Fatal(serr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tracer.Start("bench", "bench") // fixed ID: minting one costs an alloc
		ref.Set(tr)
		if _, serr := svc.Predict(ctx, req); serr != nil {
			b.Fatal(serr)
		}
		tracer.Finish(tr, 200)
	}
}

// BenchmarkMetricsRender measures one full /metrics scrape render into a
// reused buffer — the scrape-side cost a Prometheus poller imposes.
func BenchmarkMetricsRender(b *testing.B) {
	reg := registry.New(nil)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "bench"}, forecast.NameSSA, "bench")
	tracer := obs.NewTracer(obs.TracerConfig{})
	svc := serving.NewService(reg, nil, serving.ServiceConfig{Workers: 1, Tracer: tracer})
	req := serving.PredictRequestV2{
		Scenario: "backup", Region: "bench",
		History: serving.FromSeries(benchHistory(7)), Horizon: 288, WindowPoints: 12,
	}
	if _, serr := svc.Predict(context.Background(), req); serr != nil {
		b.Fatal(serr)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := svc.WriteMetrics(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "bytes/scrape")
}

// --- Stream-layer benchmarks: ingest hot path, drift sweep, warm refresh ---

// BenchmarkStreamIngest measures the warm append path: 64 servers, strictly
// advancing slots, every ring already allocated. The acceptance bar is ≥1M
// points/sec on the 1-CPU bench host with 0 allocs/op.
func BenchmarkStreamIngest(b *testing.B) {
	epoch := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	ing := stream.NewIngestor(stream.Config{Epoch: epoch, Slots: 4096})
	const servers = 64
	ids := make([]string, servers)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-srv-%04d", i)
		ing.Append(ids[i], epoch, 1) // prime: the only allocating append per server
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := epoch.Add(time.Duration(1+i/servers) * 5 * time.Minute)
		if st := ing.Append(ids[i%servers], at, 42); st != stream.Appended {
			b.Fatalf("append %d: %v", i, st)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// streamDriftFixture stores `servers` flat predictions and full live backup
// days, half of them drifted.
func streamDriftFixture(b *testing.B, servers int) (*stream.DriftDetector, int) {
	b.Helper()
	db, err := cosmos.Open("")
	if err != nil {
		b.Fatal(err)
	}
	epoch := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	ing := stream.NewIngestor(stream.Config{Epoch: epoch, Slots: 4096})
	day := epoch.Add(24 * time.Hour)
	for s := 0; s < servers; s++ {
		id := fmt.Sprintf("bench-srv-%04d", s)
		vals := make([]float64, 288)
		for i := range vals {
			vals[i] = 20
		}
		doc := &seagull.PredictionDoc{
			ServerID: id, Region: "bench", Week: 1, Model: seagull.ModelPersistentPrevDay,
			BackupDay: day, WindowPoints: 12, IntervalMin: 5, Values: vals,
		}
		if err := db.Collection("predictions").Upsert("bench", fmt.Sprintf("%s/week-0001", id), doc); err != nil {
			b.Fatal(err)
		}
		live := 20.0
		if s%2 == 1 {
			live = 60 // drifted half
		}
		for i := 0; i < 288; i++ {
			ing.Append(id, day.Add(time.Duration(i)*5*time.Minute), live)
		}
	}
	return stream.NewDriftDetector(ing, db, stream.DriftConfig{}), servers / 2
}

// BenchmarkStreamDriftSweep measures a full drift sweep over 64 stored
// predictions with complete live backup days (zero-copy comparisons on both
// sides).
func BenchmarkStreamDriftSweep(b *testing.B) {
	det, wantDrifted := streamDriftFixture(b, 64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := det.Sweep(ctx, "bench", 1)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Drifted != wantDrifted {
			b.Fatalf("drifted = %d, want %d", rep.Drifted, wantDrifted)
		}
	}
}

// BenchmarkStreamRefresh measures one drift-triggered refresh through the
// serving layer's warm model pool (SSA): snapshot the live history, retrain
// the warm instance (the train memo collapses identical-history retrains),
// forecast, recompute the LL window and republish the PredictionDoc.
func BenchmarkStreamRefresh(b *testing.B) {
	db, err := cosmos.Open("")
	if err != nil {
		b.Fatal(err)
	}
	epoch := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	ing := stream.NewIngestor(stream.Config{Epoch: epoch, Slots: 8064})
	reg := registry.New(nil)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "bench"}, forecast.NameSSA, "bench")
	day := epoch.Add(7 * 24 * time.Hour)
	for i := 0; i < 7*288; i++ {
		ing.Append("bench-srv", epoch.Add(time.Duration(i)*5*time.Minute),
			30+20*math.Sin(2*math.Pi*float64(i%288)/288))
	}
	doc := &seagull.PredictionDoc{
		ServerID: "bench-srv", Region: "bench", Week: 1, Model: forecast.NameSSA,
		BackupDay: day, WindowPoints: 12, IntervalMin: 5, Values: make([]float64, 288),
	}
	if err := db.Collection("predictions").Upsert("bench", "bench-srv/week-0001", doc); err != nil {
		b.Fatal(err)
	}
	pool := serving.NewModelPool(serving.PoolConfig{})
	defer pool.Bind(reg)()
	ref := stream.NewRefresher(ing, db, reg, serving.StreamPool(pool), stream.RefreshConfig{})
	ctx := context.Background()
	if err := ref.RefreshServer(ctx, "bench", "bench-srv", 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ref.RefreshServer(ctx, "bench", "bench-srv", 1); err != nil {
			b.Fatal(err)
		}
	}
}

// streamSnapshotFixture primes an ingestor with `servers` full live windows.
func streamSnapshotFixture(b *testing.B, servers, points int) (*stream.Ingestor, stream.Config) {
	b.Helper()
	epoch := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	cfg := stream.Config{Epoch: epoch, Slots: 4096}
	ing := stream.NewIngestor(cfg)
	for s := 0; s < servers; s++ {
		id := fmt.Sprintf("bench-srv-%04d", s)
		for i := 0; i < points; i++ {
			ing.Append(id, epoch.Add(time.Duration(i)*5*time.Minute), 20+float64(i%11))
		}
	}
	return ing, cfg
}

// BenchmarkStreamSnapshotWrite measures serializing 64 servers × 2016 live
// points (one week) to the snapshot format — the seagull-serve drain hook.
func BenchmarkStreamSnapshotWrite(b *testing.B) {
	ing, _ := streamSnapshotFixture(b, 64, 2016)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := ing.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkStreamSnapshotRestore measures parsing, CRC-verifying and
// installing the same snapshot into a cold ingestor — the startup hook.
func BenchmarkStreamSnapshotRestore(b *testing.B) {
	ing, cfg := streamSnapshotFixture(b, 64, 2016)
	var buf bytes.Buffer
	if err := ing.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold := stream.NewIngestor(cfg)
		if err := cold.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSweeper measures one background round over 64 stored
// predictions: discover the region's latest summarized week, sweep it and
// queue the drifted half (steady state: already-pending jobs coalesce).
func BenchmarkStreamSweeper(b *testing.B) {
	det, wantDrifted := streamDriftFixture(b, 64)
	db, err := cosmos.Open("")
	if err != nil {
		b.Fatal(err)
	}
	if err := db.Collection("summaries").Upsert("bench", "week-0001", map[string]int{"week": 1}); err != nil {
		b.Fatal(err)
	}
	// The sweeper discovers weeks from its own db handle but sweeps through
	// the fixture's detector (which reads the fixture's predictions).
	ref := stream.NewRefresher(stream.NewIngestor(stream.Config{}), db, registry.New(nil), nil, stream.RefreshConfig{})
	sw := stream.NewSweeper(db, det, ref, stream.SweeperConfig{})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sw.SweepOnce(ctx); err != nil {
			b.Fatal(err)
		}
	}
	if st := sw.Stats(); st.Drifted != uint64(wantDrifted*b.N) {
		b.Fatalf("sweeper stats = %+v, want %d drifted per round", st, wantDrifted)
	}
}

func BenchmarkPipelineWeek(b *testing.B) {
	sys, err := seagull.NewSystem(seagull.SystemConfig{DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	fleet := seagull.GenerateFleet(seagull.FleetConfig{
		Region: "bench", Servers: 40, Weeks: 2, Seed: 1,
	})
	if _, err := sys.LoadFleet(fleet); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.RunWeek(seagull.PipelineConfig{Region: "bench", Week: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Predicted == 0 {
			b.Fatal("no predictions")
		}
	}
	b.ReportMetric(float64(fleet.Config.Servers), "servers/run")
}

// Sanity: the figure benchmarks correspond one-to-one to registered
// experiments (guards against silent drift when experiments are added).
func TestBenchCoverage(t *testing.T) {
	covered := map[string]bool{
		"fig3": true, "fig11a": true, "fig11bcd": true, "fig12a": true,
		"fig12b": true, "fig13a": true, "fig13b": true, "sec53": true,
		"a1": true, "fig16": true, "fig17": true,
		"ablation-bound": true, "ablation-threshold": true, "ablation-history": true,
		"ablation-pf-variants": true, "ablation-workers": true,
	}
	for _, e := range experiments.All() {
		if !covered[e.ID] {
			t.Errorf("experiment %q has no benchmark; add one to bench_test.go", e.ID)
		}
	}
	if len(experiments.All()) != len(covered) {
		t.Errorf("experiment count %d != covered %d", len(experiments.All()), len(covered))
	}
	_ = fmt.Sprint() // keep fmt imported alongside future debug output
}

// --- Admission benchmarks: accept fast path and saturated shed path ---

// BenchmarkAdmissionAccept measures the uncontended admit/release round-trip
// every served request pays once admission control is on. The acceptance bar
// is 0 allocs/op: the happy path must not tax the warm predict pipeline.
func BenchmarkAdmissionAccept(b *testing.B) {
	l := admission.NewLimiter(admission.Config{MaxInflight: 64, Target: time.Second})
	ep := l.Endpoint("bench", admission.Predict, time.Second)
	ctx := context.Background()
	if tk, res := ep.Acquire(ctx, false); res.Verdict != admission.Admitted {
		b.Fatalf("prime acquire: %v", res.Verdict)
	} else {
		tk.Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk, res := ep.Acquire(ctx, false)
		if res.Verdict != admission.Admitted {
			b.Fatalf("acquire %d: %v", i, res.Verdict)
		}
		tk.Release()
	}
}

// BenchmarkAdmissionShed measures the overload path: limit occupied, queue
// full, every arrival rejected with a computed Retry-After. Shedding must be
// far cheaper than serving — it is the work the server does precisely when it
// has no headroom.
func BenchmarkAdmissionShed(b *testing.B) {
	l := admission.NewLimiter(admission.Config{MaxInflight: 1, QueueCap: 1, Target: time.Second})
	ep := l.Endpoint("bench", admission.Predict, time.Second)
	blocker, res := ep.Acquire(context.Background(), false)
	if res.Verdict != admission.Admitted {
		b.Fatalf("blocker acquire: %v", res.Verdict)
	}
	defer blocker.Release()
	qctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if tk, qres := ep.Acquire(qctx, false); qres.Verdict == admission.Admitted {
			tk.Release()
		}
	}()
	defer func() { cancel(); <-done }()
	for deadline := time.Now().Add(2 * time.Second); l.Stats().InQueue < 1; {
		if time.Now().After(deadline) {
			b.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	ctx := context.Background()
	// Prime the one-time lazy shed bookkeeping so a 1x CI pass measures the
	// steady state (mirrors the WAL benchmark's CommitNow prime).
	if _, sres := ep.Acquire(ctx, false); sres.Verdict != admission.Shed {
		b.Fatalf("prime acquire: %v, want shed", sres.Verdict)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sres := ep.Acquire(ctx, false)
		if sres.Verdict != admission.Shed {
			b.Fatalf("acquire %d: %v, want shed", i, sres.Verdict)
		}
		if sres.RetryAfter <= 0 {
			b.Fatal("shed without Retry-After")
		}
	}
	// The deferred teardown (cancel + grant of the queued waiter) would
	// otherwise be attributed to the final timed region.
	b.StopTimer()
}

// --- Durability benchmarks: WAL hot-path cost and boot replay throughput ---

// BenchmarkStreamWALAppend measures the warm append path with the WAL
// attached: the only extra per-point work is buffering one value-typed entry
// under the shard lock the append already holds, so the acceptance bar stays
// 0 allocs/op — durability must not tax ingest.
func BenchmarkStreamWALAppend(b *testing.B) {
	store, err := lake.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	epoch := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	ing := stream.NewIngestor(stream.Config{Epoch: epoch, Slots: 4096})
	// No background ticker: the commit loop is benchmarked separately via
	// replay; a huge buffer keeps the hot path on the buffered branch.
	dur := stream.NewDurability(ing, store, stream.DurabilityConfig{
		CommitEvery: time.Hour, SnapshotEvery: -1, BufferEntries: 1 << 16,
	})
	if _, err := dur.Recover(); err != nil {
		b.Fatal(err)
	}
	if err := dur.Open(); err != nil {
		b.Fatal(err)
	}
	defer dur.Close()
	const servers = 64
	ids := make([]string, servers)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-srv-%04d", i)
		ing.Append(ids[i], epoch, 1) // prime: the only allocating append per server
	}
	// Prime the one-time commit allocations (scratch buffer, spare entry
	// slab) so a 1x CI pass measures the steady state.
	if err := dur.CommitNow(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := epoch.Add(time.Duration(1+i/servers) * 5 * time.Minute)
		if st := ing.Append(ids[i%servers], at, 42); st != stream.Appended {
			b.Fatalf("append %d: %v", i, st)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkStreamWALReplay measures boot-time recovery throughput: parse,
// CRC-verify and re-apply the WALs of 64 servers x 576 points into a cold
// ingestor — the path that bounds restart time after a hard kill.
func BenchmarkStreamWALReplay(b *testing.B) {
	store, err := lake.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	epoch := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	cfg := stream.Config{Epoch: epoch, Slots: 4096}
	dcfg := stream.DurabilityConfig{CommitEvery: time.Hour, SnapshotEvery: -1}
	ing := stream.NewIngestor(cfg)
	dur := stream.NewDurability(ing, store, dcfg)
	if _, err := dur.Recover(); err != nil {
		b.Fatal(err)
	}
	if err := dur.Open(); err != nil {
		b.Fatal(err)
	}
	const servers, points = 64, 576
	for s := 0; s < servers; s++ {
		id := fmt.Sprintf("bench-srv-%04d", s)
		for i := 0; i < points; i++ {
			ing.Append(id, epoch.Add(time.Duration(i)*5*time.Minute), 20+float64(i%11))
		}
	}
	if err := dur.CommitNow(); err != nil {
		b.Fatal(err)
	}
	// Deliberately no Close: closing snapshots the shards and truncates the
	// logs, leaving nothing to replay. The files model a hard-killed server.
	const records = servers * points
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold := stream.NewIngestor(cfg)
		rec, err := stream.NewDurability(cold, store, dcfg).Recover()
		if err != nil {
			b.Fatal(err)
		}
		if rec.WALRecords != records {
			b.Fatalf("replayed %d records, want %d", rec.WALRecords, records)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// --- Router benchmarks: hop overhead and fleet varz aggregation ---

// benchRouterFleet builds n warm SSA serving replicas on loopback listeners
// behind a router. Retries and breakers are disabled so the timed loop
// measures the forwarding path, not resilience machinery (which only engages
// on failure anyway).
func benchRouterFleet(b *testing.B, n int) (*router.Router, []*httptest.Server) {
	b.Helper()
	reps := make([]router.Replica, n)
	srvs := make([]*httptest.Server, n)
	for i := range reps {
		reg := registry.New(nil)
		reg.Deploy(registry.Target{Scenario: "backup", Region: "bench"}, forecast.NameSSA, "bench")
		svc := serving.NewService(reg, nil, serving.ServiceConfig{Workers: 1})
		srvs[i] = httptest.NewServer(svc.Handler())
		b.Cleanup(srvs[i].Close)
		reps[i] = router.Replica{Name: fmt.Sprintf("shard-%02d", i), BaseURL: srvs[i].URL}
	}
	rt, err := router.New(router.Config{
		Seed:     7,
		Replicas: reps,
		Retry:    serving.RetryConfig{MaxAttempts: 1},
		Breaker:  serving.BreakerConfig{Threshold: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	return rt, srvs
}

// benchPredictBody is the pre-encoded predict request the router benchmarks
// replay: full inline history, so any replica can serve it, routed by
// ServerID like production traffic.
func benchPredictBody(b *testing.B) []byte {
	b.Helper()
	body, err := json.Marshal(serving.PredictRequestV2{
		ServerID: "bench-srv-00042", Scenario: "backup", Region: "bench",
		History: serving.FromSeries(benchHistory(7)), Horizon: 288, WindowPoints: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// benchPredictLoop replays the predict body against url b.N times, failing on
// any non-200.
func benchPredictLoop(b *testing.B, url string, body []byte) {
	b.Helper()
	post := func() {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("predict: %d %s", resp.StatusCode, out)
		}
	}
	post() // prime the warm pool (and the keep-alive connection)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

// BenchmarkRouterPredictDirect is the single-hop baseline: the same predict
// request straight at one replica's listener. The delta against
// BenchmarkRouterPredict is the router hop overhead (decode, shard lookup,
// client forward, response relay).
func BenchmarkRouterPredictDirect(b *testing.B) {
	_, srvs := benchRouterFleet(b, 4)
	benchPredictLoop(b, srvs[0].URL+"/v2/predict", benchPredictBody(b))
}

// BenchmarkRouterPredict measures a predict through the full two-hop path:
// client → router (shard lookup + forward) → owner replica → relay back.
func BenchmarkRouterPredict(b *testing.B) {
	rt, _ := benchRouterFleet(b, 4)
	front := httptest.NewServer(rt.Handler())
	b.Cleanup(front.Close)
	benchPredictLoop(b, front.URL+"/v2/predict", benchPredictBody(b))
}

// BenchmarkRouterFleetVarz measures fleet-wide observability aggregation:
// one FleetVarz call fans out to every replica's /varz concurrently and
// merges stream/serving counters into the fleet view.
func BenchmarkRouterFleetVarz(b *testing.B) {
	rt, _ := benchRouterFleet(b, 4)
	ctx := context.Background()
	if fv := rt.FleetVarz(ctx); fv.ReadyReplicas != 4 {
		b.Fatalf("fleet not ready: %+v", fv)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fv := rt.FleetVarz(ctx)
		if fv.ReadyReplicas != 4 {
			b.Fatalf("fleet degraded at iter %d: %+v", i, fv)
		}
	}
}

// BenchmarkSimulateScenario is the headline figure for the time-compressed
// simulation harness: a two-hour smoke scenario — pipeline warmup, live
// ingest, drift sweeps, refresh, WAL and real loopback predicts on a
// simulated clock — reported as simulated hours per wall second.
func BenchmarkSimulateScenario(b *testing.B) {
	sc, ok := simworkload.Builtin("smoke")
	if !ok {
		b.Fatal("smoke scenario missing")
	}
	const simHours = 2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := simworkload.Run(context.Background(), sc, simworkload.Options{Hours: simHours})
		if err != nil {
			b.Fatal(err)
		}
		if out.Report.Ingest.Appended == 0 || out.Report.Predicts.Issued == 0 {
			b.Fatalf("harness idle: %+v", out.Report)
		}
	}
	b.StopTimer()
	b.ReportMetric(simHours*float64(b.N)/b.Elapsed().Seconds(), "sim_hours/s")
}
