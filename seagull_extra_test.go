package seagull

import (
	"testing"
	"time"

	"seagull/internal/pipeline"
)

// TestSystemPersistence verifies the Persist option: results written by one
// System are visible to a fresh System over the same data directory — the
// durability role Cosmos DB plays in the paper.
func TestSystemPersistence(t *testing.T) {
	dir := t.TempDir()
	sys, err := NewSystem(SystemConfig{DataDir: dir, Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	fleet := GenerateFleet(FleetConfig{Region: "persist", Servers: 30, Weeks: 2, Seed: 9})
	if _, err := sys.LoadFleet(fleet); err != nil {
		t.Fatal(err)
	}
	res, err := sys.RunWeek(PipelineConfig{Region: "persist", Week: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicted == 0 {
		t.Fatal("no predictions")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := NewSystem(SystemConfig{DataDir: dir, Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if n := sys2.DB.Collection("predictions").Count("persist"); n != res.Predicted {
		t.Errorf("reloaded predictions = %d, want %d", n, res.Predicted)
	}
	var sum pipeline.SummaryDoc
	if err := sys2.DB.Collection("summaries").Get("persist", "week-0001", &sum); err != nil {
		t.Errorf("summary doc did not survive restart: %v", err)
	}
}

func TestPublicAdviseWindow(t *testing.T) {
	cfg := DefaultMetrics()
	vals := make([]float64, 288)
	for i := range vals {
		if i >= 96 && i < 192 {
			vals[i] = 70
		} else {
			vals[i] = 10
		}
	}
	day := Series{Start: time.Date(2019, 12, 2, 0, 0, 0, 0, time.UTC), Interval: 5 * time.Minute, Values: vals}
	adv, err := AdviseWindow(day, 120, 12, cfg) // customer picked noon
	if err != nil {
		t.Fatal(err)
	}
	if adv.KeepCurrent {
		t.Errorf("noon window should be replaced: %+v", adv)
	}
	adv, err = AdviseWindow(day, 0, 12, cfg) // customer picked midnight
	if err != nil {
		t.Fatal(err)
	}
	if !adv.KeepCurrent {
		t.Errorf("midnight window should be kept: %+v", adv)
	}
}

func TestPublicBestBackupDay(t *testing.T) {
	const ppd = 288
	// Day class 0 idle, others busy all day; 21 days of history.
	vals := make([]float64, 21*ppd)
	for d := 0; d < 21; d++ {
		level := 60.0
		if d%7 == 0 {
			level = 5
		}
		for s := 0; s < ppd; s++ {
			vals[d*ppd+s] = level
		}
	}
	hist := Series{Start: time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC), Interval: 5 * time.Minute, Values: vals}
	m, err := NewModel(ModelPersistentPrevEq, 1)
	if err != nil {
		t.Fatal(err)
	}
	best, choices, err := BestBackupDay(m, hist, 12, DefaultMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 7 || best.DayOffset != 0 {
		t.Errorf("best = %+v (choices %d)", best, len(choices))
	}
	if best.Window.AvgLoad > 10 {
		t.Errorf("best window load %.1f, want idle level", best.Window.AvgLoad)
	}
}
