module seagull

go 1.24
