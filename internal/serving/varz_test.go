package serving

import (
	"context"
	"testing"

	"seagull/internal/forecast"
	"seagull/internal/registry"
)

func TestVarzEndpoint(t *testing.T) {
	srv, _, reg := v2Server(t, ServiceConfig{})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	c := NewClient(srv.URL)
	ctx := context.Background()

	// Two warm predicts and one failing request.
	req := PredictRequestV2{
		Scenario: "backup", Region: "r",
		History: FromSeries(weekHistory()), Horizon: 288,
	}
	for i := 0; i < 2; i++ {
		if _, err := c.PredictV2(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.PredictV2(ctx, PredictRequestV2{Scenario: "backup", Region: "nope", History: req.History, Horizon: 1}); err == nil {
		t.Fatal("predict against missing region should fail")
	}

	vz, err := c.Varz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if vz.UptimeSec < 0 {
		t.Errorf("uptime = %v", vz.UptimeSec)
	}
	ep, ok := vz.Endpoints["POST /v2/predict"]
	if !ok {
		t.Fatalf("endpoints = %v", vz.Endpoints)
	}
	if ep.Count != 3 || ep.Errors != 1 || ep.InFlight != 0 {
		t.Fatalf("predict endpoint = %+v, want 3 requests / 1 error / 0 in flight", ep)
	}
	// Histogram invariants: one bucket per bound plus overflow, and the
	// observations all landed somewhere.
	if len(ep.LatencyCounts) != len(ep.LatencyMsBounds)+1 {
		t.Fatalf("bucket layout: %d counts vs %d bounds", len(ep.LatencyCounts), len(ep.LatencyMsBounds))
	}
	var total uint64
	for _, n := range ep.LatencyCounts {
		total += n
	}
	if total != ep.Count {
		t.Errorf("histogram total %d != count %d", total, ep.Count)
	}
	if ep.LatencyMsSum <= 0 {
		t.Errorf("latency sum = %v", ep.LatencyMsSum)
	}
	// Pool effectiveness flows through: the second predict hit warm.
	if vz.Pool.Hits == 0 || vz.Pool.Misses == 0 {
		t.Errorf("pool = %+v", vz.Pool)
	}
	// No stream layer attached: those sections are absent.
	if vz.Ingest != nil || vz.Drift != nil || vz.Refresh != nil {
		t.Errorf("stream sections should be nil without a stream layer: %+v", vz)
	}
	// The varz fetch itself is instrumented too.
	vz2, err := c.Varz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if vz2.Endpoints["GET /varz"].Count == 0 {
		t.Error("varz endpoint not instrumented")
	}
}
