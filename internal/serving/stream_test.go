package serving

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/forecast"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/stream"
)

// newTestHTTPServer serves svc on an ephemeral port and returns its URL.
func newTestHTTPServer(t *testing.T, svc *Service) string {
	t.Helper()
	srv := httptest.NewServer(svc)
	t.Cleanup(srv.Close)
	return srv.URL
}

func timeUnixStr(t time.Time) string { return strconv.FormatInt(t.Unix(), 10) }

// streamServer wires a service with the full stream stack attached: an
// ingestor, a drift detector over db, and a refresher training through the
// service's own warm pool.
func streamServer(t *testing.T) (*Client, *Service, *registry.Registry, *cosmos.DB, *stream.Ingestor) {
	t.Helper()
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(nil)
	epoch := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	ing := stream.NewIngestor(stream.Config{Epoch: epoch})
	det := stream.NewDriftDetector(ing, db, stream.DriftConfig{})
	pool := NewModelPool(PoolConfig{})
	t.Cleanup(pool.Bind(reg))
	ref := stream.NewRefresher(ing, db, reg, StreamPool(pool), stream.RefreshConfig{})
	svc := NewService(reg, db, ServiceConfig{Ingestor: ing, Drift: det, Refresher: ref})
	srv := newTestHTTPServer(t, svc)
	return NewClient(srv), svc, reg, db, ing
}

// TestIngestEndToEnd drives the full loop over HTTP: ingest live telemetry,
// sweep for drift against a stored prediction, queue the drifted server,
// refresh it through the warm pool, and observe the counters on /varz.
func TestIngestEndToEnd(t *testing.T) {
	c, svc, reg, db, ing := streamServer(t)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	ctx := context.Background()
	epoch := ing.Epoch()
	day := epoch.Add(7 * 24 * time.Hour)

	// A stored prediction of flat 20 for the backup day.
	vals := make([]float64, 288)
	for i := range vals {
		vals[i] = 20
	}
	doc := &pipeline.PredictionDoc{
		ServerID: "srv", Region: "r", Week: 1, Model: forecast.NamePersistentPrevDay,
		BackupDay: day, WindowPoints: 12, IntervalMin: 5, Values: vals,
	}
	if err := db.Collection("predictions").Upsert("r", "srv/week-0001", doc); err != nil {
		t.Fatal(err)
	}

	// Seven days of history plus a backup day running 40 points hot: the
	// prediction has drifted. One value is negative (missing per the lake
	// convention) and the last chunk is re-sent to prove idempotence.
	hist := make([]float64, 8*288)
	for i := range hist {
		if i < 7*288 {
			hist[i] = 25
		} else {
			hist[i] = 60
		}
	}
	hist[3] = -1
	resp, err := c.Ingest(ctx, IngestRequest{Servers: []IngestSeries{
		{ServerID: "srv", Start: epoch, IntervalMin: 5, Values: hist},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != len(hist)-1 || resp.Skipped != 1 {
		t.Fatalf("ingest = %+v", resp)
	}
	replay, err := c.Ingest(ctx, IngestRequest{Servers: []IngestSeries{
		{ServerID: "srv", Start: day, IntervalMin: 5, Values: hist[7*288:]},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Duplicates != 288 || replay.Accepted != 0 {
		t.Fatalf("replay = %+v, want all duplicates", replay)
	}

	// Sweep week 1: srv drifted (actuals 60 vs predicted 20) and queues.
	resp, err = c.Ingest(ctx, IngestRequest{
		Points: []IngestPoint{{ServerID: "other", TimeUnix: day.Unix(), Value: 30}},
		Sweep:  &SweepSpec{Region: "r", Week: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Sweep == nil {
		t.Fatalf("sweep ingest = %+v", resp)
	}
	if resp.Sweep.Drifted != 1 || resp.Sweep.Queued != 1 || resp.Sweep.Servers[0] != "srv" {
		t.Fatalf("sweep = %+v", resp.Sweep)
	}

	// Drain the refresh queue: the stored doc must now carry the live-based
	// forecast (pf-prev-day → previous live day = 60s).
	if err := svc.cfg.Refresher.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	var got pipeline.PredictionDoc
	if err := db.Collection("predictions").Get("r", "srv/week-0001", &got); err != nil {
		t.Fatal(err)
	}
	if got.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", got.Refreshes)
	}
	if got.Values[0] != 25 {
		t.Fatalf("refreshed forecast v0 = %v, want the live previous-day 25", got.Values[0])
	}

	// /varz surfaces the whole story.
	vz, err := c.Varz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if vz.Ingest == nil || vz.Ingest.Appended == 0 || vz.Ingest.Duplicates == 0 {
		t.Fatalf("varz ingest = %+v", vz.Ingest)
	}
	if vz.Drift == nil || vz.Drift.Sweeps != 1 || vz.Drift.Drifted != 1 {
		t.Fatalf("varz drift = %+v", vz.Drift)
	}
	if vz.Refresh == nil || vz.Refresh.Refreshed != 1 {
		t.Fatalf("varz refresh = %+v", vz.Refresh)
	}
	ep, ok := vz.Endpoints["POST /v2/ingest"]
	if !ok || ep.Count != 3 {
		t.Fatalf("varz ingest endpoint = %+v (ok=%v)", ep, ok)
	}
}

func TestIngestValidation(t *testing.T) {
	c, _, _, _, ing := streamServer(t)
	ctx := context.Background()
	epoch := ing.Epoch()

	cases := []struct {
		name string
		req  IngestRequest
		code ErrorCode
	}{
		{"empty", IngestRequest{}, CodeBadRequest},
		{"no id", IngestRequest{Servers: []IngestSeries{{IntervalMin: 5, Start: epoch, Values: []float64{1}}}}, CodeBadRequest},
		{"bad interval", IngestRequest{Servers: []IngestSeries{{ServerID: "s", IntervalMin: 15, Start: epoch, Values: []float64{1}}}}, CodeBadRequest},
		{"point no id", IngestRequest{Points: []IngestPoint{{TimeUnix: epoch.Unix(), Value: 1}}}, CodeBadRequest},
	}
	for _, tc := range cases {
		_, err := c.Ingest(ctx, tc.req)
		apiErr, ok := err.(*APIError)
		if !ok || apiErr.Code != tc.code {
			t.Errorf("%s: err = %v, want code %s", tc.name, err, tc.code)
		}
	}

	// Over the point limit → too_large.
	big := IngestRequest{Servers: []IngestSeries{{ServerID: "s", IntervalMin: 5, Start: epoch, Values: make([]float64, 2048)}}}
	svcSmall := NewService(registry.New(nil), nil, ServiceConfig{
		Ingestor: stream.NewIngestor(stream.Config{}), MaxIngestPoints: 1024,
	})
	cSmall := NewClient(newTestHTTPServer(t, svcSmall))
	if _, err := cSmall.Ingest(ctx, big); !hasCode(err, CodeTooLarge) {
		t.Errorf("oversized ingest: %v", err)
	}

	// Sweep without a drift detector attached.
	db, _ := cosmos.Open("")
	reg := registry.New(nil)
	svcNoDrift := NewService(reg, db, ServiceConfig{Ingestor: stream.NewIngestor(stream.Config{})})
	cNoDrift := NewClient(newTestHTTPServer(t, svcNoDrift))
	_, err := cNoDrift.Ingest(ctx, IngestRequest{
		Points: []IngestPoint{{ServerID: "s", TimeUnix: time.Now().Unix(), Value: 1}},
		Sweep:  &SweepSpec{Region: "r", Week: 0},
	})
	if !hasCode(err, CodeNotFound) {
		t.Errorf("sweep without detector: %v", err)
	}

	// No ingestor at all → not_found.
	svcBare := NewService(registry.New(nil), nil, ServiceConfig{})
	cBare := NewClient(newTestHTTPServer(t, svcBare))
	_, err = cBare.Ingest(ctx, IngestRequest{Points: []IngestPoint{{ServerID: "s", TimeUnix: 0, Value: 1}}})
	if !hasCode(err, CodeNotFound) {
		t.Errorf("ingest without ingestor: %v", err)
	}
}

// hasCode reports whether err is an APIError with the given code.
func hasCode(err error, code ErrorCode) bool {
	apiErr, ok := err.(*APIError)
	return ok && apiErr.Code == code
}

// TestPredictLiveHistory: a predict sourcing its history from the ingestor's
// live window returns the same response as one carrying the identical
// history explicitly — clients that stream telemetry need not re-upload it.
func TestPredictLiveHistory(t *testing.T) {
	c, _, reg, _, ing := streamServer(t)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	ctx := context.Background()
	epoch := ing.Epoch()

	hist := make([]float64, 2*288)
	for i := range hist {
		hist[i] = float64(10 + i%7)
	}
	if _, err := c.Ingest(ctx, IngestRequest{Servers: []IngestSeries{
		{ServerID: "srv", Start: epoch, IntervalMin: 5, Values: hist},
	}}); err != nil {
		t.Fatal(err)
	}

	live, err := c.PredictV2(ctx, PredictRequestV2{
		Scenario: "backup", Region: "r", ServerID: "srv",
		LiveHistory: true, Horizon: 288, WindowPoints: 12,
	})
	if err != nil {
		t.Fatalf("live-history predict: %v", err)
	}
	explicit, err := c.PredictV2(ctx, PredictRequestV2{
		Scenario: "backup", Region: "r", ServerID: "srv",
		History: SeriesJSON{Start: epoch, IntervalMin: 5, Values: hist},
		Horizon: 288, WindowPoints: 12,
	})
	if err != nil {
		t.Fatalf("explicit predict: %v", err)
	}
	if len(live.Forecast.Values) != len(explicit.Forecast.Values) {
		t.Fatalf("forecast lengths %d vs %d", len(live.Forecast.Values), len(explicit.Forecast.Values))
	}
	for i := range live.Forecast.Values {
		if live.Forecast.Values[i] != explicit.Forecast.Values[i] {
			t.Fatalf("forecast[%d] = %v vs %v", i, live.Forecast.Values[i], explicit.Forecast.Values[i])
		}
	}
	if live.LLStart != explicit.LLStart || live.LLAvg != explicit.LLAvg {
		t.Fatalf("LL window (%d, %v) vs (%d, %v)", live.LLStart, live.LLAvg, explicit.LLStart, explicit.LLAvg)
	}

	// Validation: unknown server, missing server_id, both histories at once,
	// and a service without an ingestor.
	if _, err := c.PredictV2(ctx, PredictRequestV2{
		Scenario: "backup", Region: "r", ServerID: "ghost", LiveHistory: true, Horizon: 288,
	}); !hasCode(err, CodeNotFound) {
		t.Errorf("unknown server: %v", err)
	}
	if _, err := c.PredictV2(ctx, PredictRequestV2{
		Scenario: "backup", Region: "r", LiveHistory: true, Horizon: 288,
	}); !hasCode(err, CodeBadRequest) {
		t.Errorf("missing server_id: %v", err)
	}
	if _, err := c.PredictV2(ctx, PredictRequestV2{
		Scenario: "backup", Region: "r", ServerID: "srv", LiveHistory: true,
		History: SeriesJSON{Start: epoch, IntervalMin: 5, Values: hist}, Horizon: 288,
	}); !hasCode(err, CodeBadRequest) {
		t.Errorf("both histories: %v", err)
	}
	reg2 := registry.New(nil)
	reg2.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	cBare := NewClient(newTestHTTPServer(t, NewService(reg2, nil, ServiceConfig{})))
	if _, err := cBare.PredictV2(ctx, PredictRequestV2{
		Scenario: "backup", Region: "r", ServerID: "srv", LiveHistory: true, Horizon: 288,
	}); !hasCode(err, CodeNotFound) {
		t.Errorf("no ingestor: %v", err)
	}
}

// TestVarzSweeper: an attached background sweeper surfaces its counters on
// /varz.
func TestVarzSweeper(t *testing.T) {
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(nil)
	ing := stream.NewIngestor(stream.Config{})
	det := stream.NewDriftDetector(ing, db, stream.DriftConfig{})
	sw := stream.NewSweeper(db, det, nil, stream.SweeperConfig{})
	svc := NewService(reg, db, ServiceConfig{Ingestor: ing, Drift: det, Sweeper: sw})
	c := NewClient(newTestHTTPServer(t, svc))

	if err := sw.SweepOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	vz, err := c.Varz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vz.Sweeper == nil || vz.Sweeper.Ticks != 1 {
		t.Fatalf("varz sweeper = %+v, want one tick", vz.Sweeper)
	}
}

// TestIngestRaw exercises the wire shape directly (field names are a
// compatibility surface).
func TestIngestRaw(t *testing.T) {
	c, _, _, _, ing := streamServer(t)
	body := `{"points":[{"server_id":"s","t_unix":` +
		// a point one week past the epoch
		timeUnixStr(ing.Epoch().Add(7*24*time.Hour)) + `,"v":12.5}]}`
	resp, err := http.Post(c.BaseURL+"/v2/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw ingest status = %d", resp.StatusCode)
	}
	if st := ing.Stats(); st.Appended != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
