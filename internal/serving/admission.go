package serving

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"seagull/internal/admission"
	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/obs"
)

// This file wires the adaptive admission layer (internal/admission) around
// the HTTP surface. One shared Limiter protects the process — the CPU pool
// is the contended resource, so a single limit with class-prioritized
// queueing beats per-endpoint limits that would let background traffic
// starve predicts. Liveness endpoints (/healthz, /readyz, /varz) bypass
// admission entirely: an operator must be able to see an overloaded process.
//
// Per class, the latency target scales from the configured predict target:
// ingest tolerates 2x (clients hold buffered telemetry and re-send),
// background 4x (advise/models/predictions are not on any serving SLO).

// classTarget resolves a priority class's latency target from the predict
// target.
func classTarget(base time.Duration, class admission.Class) time.Duration {
	switch class {
	case admission.Predict:
		return base
	case admission.Ingest:
		return 2 * base
	default:
		return 4 * base
	}
}

// admitted wraps h with admission control under the given endpoint name and
// priority class. A non-nil degraded handler marks the endpoint
// brownout-capable: under saturation its requests are served the cheap
// fallback instead of queueing behind the storm or being shed. With
// admission disabled (ServiceConfig.MaxInflight < 0) the handler passes
// through untouched.
func (s *Service) admitted(pattern string, class admission.Class, h, degraded http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return h
	}
	ep := s.limiter.Endpoint(pattern, class, classTarget(s.cfg.LatencyTarget, class))
	allowDegrade := degraded != nil
	var lastShedLog atomic.Int64 // unix nanos of the last shed/brownout log line
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.TraceFrom(r.Context())
		sp := tr.Begin(obs.StageAdmission)
		tk, res := ep.Acquire(r.Context(), allowDegrade)
		sp.End()
		switch res.Verdict {
		case admission.Admitted:
			defer tk.Release()
			h(w, r)
		case admission.Degraded:
			s.logShed(&lastShedLog, "brownout fallback", pattern, tr, res)
			degraded(w, r)
		default:
			s.logShed(&lastShedLog, "request shed", pattern, tr, res)
			writeOverload(w, r, class, res)
		}
	}
}

// logShed emits one structured line for a shed or brownout verdict,
// rate-limited to roughly one per second per endpoint — overload produces
// thousands of sheds per second and the log must not amplify the storm.
func (s *Service) logShed(last *atomic.Int64, msg, pattern string, tr *obs.Trace, res admission.Result) {
	now := time.Now().UnixNano()
	prev := last.Load()
	if now-prev < int64(time.Second) || !last.CompareAndSwap(prev, now) {
		return
	}
	s.logger.Warn(msg,
		"endpoint", pattern,
		"verdict", res.Verdict.String(),
		"retry_after_ms", res.RetryAfter.Milliseconds(),
		"request_id", tr.RequestID())
}

// retryAfterSeconds renders a retry hint as whole delta-seconds (the wire
// form of Retry-After), rounding up so clients never come back early.
func retryAfterSeconds(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int(math.Ceil(d.Seconds()))
}

// writeOverload renders a non-admitted verdict. Shed ingest answers 429
// (pacing: the client holds buffered telemetry and re-sends), everything
// else 503; both carry the limiter's computed Retry-After. v1 endpoints keep
// their flat legacy error shape.
func writeOverload(w http.ResponseWriter, r *http.Request, class admission.Class, res admission.Result) {
	v1 := strings.HasPrefix(r.URL.Path, "/v1/")
	if res.Verdict == admission.Canceled {
		if v1 {
			httpError(w, statusClientClosedRequest, errors.New("request canceled while queued for admission"))
			return
		}
		writeV2Error(w, svcErr(CodeCanceled, statusClientClosedRequest, "request canceled while queued for admission"))
		return
	}
	if sec := retryAfterSeconds(res.RetryAfter); sec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(sec))
	}
	status := http.StatusServiceUnavailable
	if class == admission.Ingest {
		status = http.StatusTooManyRequests
	}
	msg := "overloaded: request shed, retry after the indicated delay"
	if res.Verdict == admission.ShedDeadline {
		msg = "overloaded: request could not meet its deadline and was rejected before doing work"
	}
	if v1 {
		httpError(w, status, errors.New(msg))
		return
	}
	writeV2Error(w, svcErr(CodeOverloaded, status, "%s", msg))
}

// PredictDegraded is the brownout fallback for /v2/predict: the persistent
// previous-day forecast — the paper's zero-training-cost production variant
// (Section 5.4) — computed outside the concurrency limit, because replaying
// a day of history costs microseconds where a model train costs
// milliseconds. The response is flagged degraded:true and names the
// persistent model so callers can tell accuracy was traded for
// availability. Same validation and live-history resolution as the full
// path; the answer equals what a pf-prev-day deployment would serve, which
// the model-equivalence suite already pins.
func (s *Service) PredictDegraded(ctx context.Context, req PredictRequestV2) (PredictResponseV2, *ServiceError) {
	if serr := s.resolveLiveHistory(&req); serr != nil {
		return PredictResponseV2{}, serr
	}
	if serr := s.validateSeries(req.History, req.Horizon, req.WindowPoints, true); serr != nil {
		return PredictResponseV2{}, serr
	}
	_, v, serr := s.active(req.Scenario, req.Region)
	if serr != nil {
		return PredictResponseV2{}, serr
	}
	if err := ctx.Err(); err != nil {
		return PredictResponseV2{}, ctxServiceError(err)
	}
	m := forecast.NewPersistent(forecast.PrevDay)
	if err := m.Train(req.History.ToSeries()); err != nil {
		return PredictResponseV2{}, svcErr(CodeUntrainable, http.StatusUnprocessableEntity, "degraded train: %v", err)
	}
	pred, err := m.Forecast(req.Horizon)
	if err != nil {
		return PredictResponseV2{}, svcErr(CodeInternal, http.StatusInternalServerError, "degraded forecast: %v", err)
	}
	llStart, llAvg := -1, 0.0
	if req.WindowPoints > 0 {
		ll, err := metrics.LowestLoadWindow(pred, req.WindowPoints)
		if err != nil {
			return PredictResponseV2{}, svcErr(CodeInternal, http.StatusInternalServerError, "lowest-load window: %v", err)
		}
		llStart, llAvg = ll.Start, ll.AvgLoad
	}
	return PredictResponseV2{
		ServerID: req.ServerID,
		Model:    m.Name(),
		Version:  v.Number,
		Forecast: FromSeries(pred),
		Degraded: true,
		LLStart:  llStart,
		LLAvg:    llAvg,
	}, nil
}

func (s *Service) handlePredictDegradedV2(w http.ResponseWriter, r *http.Request) {
	var req PredictRequestV2
	if serr := s.decode(w, r, &req); serr != nil {
		writeV2Error(w, serr)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, serr := s.PredictDegraded(ctx, req)
	if serr != nil {
		writeV2Error(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
