package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seagull/internal/admission"
	"seagull/internal/cosmos"
	"seagull/internal/metrics"
	"seagull/internal/obs"
	"seagull/internal/parallel"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/scheduler"
	"seagull/internal/simclock"
	"seagull/internal/stream"
)

// statusClientClosedRequest is the conventional (nginx) status for a request
// abandoned by the caller; Go's net/http has no constant for it.
const statusClientClosedRequest = 499

// ServiceConfig parameterizes the serving layer. The zero value selects
// production defaults.
type ServiceConfig struct {
	// Metrics carries the accuracy constants used by /v2/advise and the
	// lowest-load windows of predict responses. Zero value → DefaultConfig.
	Metrics metrics.Config
	// MaxBodyBytes bounds any request body. Default 64 MiB (the historical
	// v1 limit).
	MaxBodyBytes int64
	// MaxBatch bounds the servers in one batch predict call. Default 256.
	MaxBatch int
	// MaxHorizon bounds the forecast horizon in observations. Default 4032
	// (two weeks at five-minute granularity).
	MaxHorizon int
	// Timeout is the per-request serving deadline. Default 60s. Negative
	// disables the deadline (the caller's context still applies).
	Timeout time.Duration
	// Workers bounds the batch fan-out concurrency. 0 means NumCPU.
	Workers int
	// Pool sizes the warm model pool.
	Pool PoolConfig
	// MaxIngestPoints bounds the telemetry points in one /v2/ingest call.
	// Default 1<<20 (one million — ~8 MiB of values, inside the body limit).
	MaxIngestPoints int
	// Ingestor, when set, enables the POST /v2/ingest endpoint feeding the
	// stream layer (and live_history predicts); Drift and Refresher
	// additionally let an ingest call run a drift sweep and queue drifted
	// servers for refresh. All three also surface their counters on /varz.
	Ingestor  *stream.Ingestor
	Drift     *stream.DriftDetector
	Refresher *stream.Refresher
	// Sweeper, when set, surfaces the background drift sweeper's counters
	// on /varz. The service never drives the sweeper — its loop runs in the
	// owning process (seagull-serve, or System.StartSweeper).
	Sweeper *stream.Sweeper
	// Durability, when set, surfaces the stream layer's WAL and snapshot
	// counters on /varz. The service never drives it — its tickers run in
	// the owning process.
	Durability *stream.Durability
	// MinLivePoints is the floor a server's live window must reach before a
	// live_history predict will forecast from it; thinner windows fail with
	// insufficient_history rather than silently serving a worse forecast
	// (the cold-start symptom after a failed restore). 0 means one day of
	// points at the ingestor's interval; negative disables the floor.
	MinLivePoints int
	// MaxInflight bounds concurrently-executing requests across every
	// admission-controlled endpoint (all of /v1 and /v2; liveness endpoints
	// are exempt). The adaptive limiter starts here and walks the effective
	// limit down whenever observed latency exceeds the per-class target.
	// 0 → default 256; negative disables admission control entirely.
	MaxInflight int
	// LatencyTarget is the predict-class latency target the AIMD limiter
	// defends (ingest gets 2x, background 4x). Default 500ms.
	LatencyTarget time.Duration
	// Brownout lets /v2/predict degrade to the persistent previous-day
	// forecast (flagged degraded:true) when the limiter saturates, instead
	// of queueing or shedding — availability traded against accuracy.
	Brownout bool
	// DrainGrace is the drain duration advertised as Retry-After on a
	// draining /readyz, so balancers and clients back off for exactly the
	// grace window instead of guessing. Default 5s.
	DrainGrace time.Duration
	// Clock supplies varz uptime/latency timestamps, batch deadlines and the
	// admission limiter's cooldown clock; nil means the wall clock.
	Clock simclock.Clock
	// Tracer, when set, records a per-request trace for every instrumented
	// endpoint — admission wait, warm-pool checkout, train memo hit/miss and
	// inference spans — served on GET /debug/traces, with request IDs
	// propagated via X-Request-Id. Nil disables tracing; the hot path then
	// pays a single context lookup. Span recording is allocation-free, so a
	// traced warm predict stays inside the untraced allocation budget (the
	// BENCH_9 gate pins this).
	Tracer *obs.Tracer
	// Logger receives structured operational logs: admission sheds and
	// brownout serves (rate-limited to one line per second per endpoint).
	// Nil discards them.
	Logger *slog.Logger
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Metrics == (metrics.Config{}) {
		c.Metrics = metrics.DefaultConfig()
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 256
	}
	if c.MaxHorizon == 0 {
		c.MaxHorizon = 4032
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxIngestPoints == 0 {
		c.MaxIngestPoints = 1 << 20
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 500 * time.Millisecond
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	return c
}

// Service is the long-lived serving layer: the v2 prediction protocol
// (single, batch, advise, model listing, stored predictions) over a warm
// model pool, plus the v1 endpoints as a compatibility shim. Safe for
// concurrent use; one Service is meant to serve a process's whole traffic.
type Service struct {
	reg      *registry.Registry
	db       *cosmos.DB // optional; nil disables /v2/predictions
	cfg      ServiceConfig
	pool     *ModelPool
	workers  *parallel.Pool
	limiter  *admission.Limiter // nil: admission control disabled
	tracer   *obs.Tracer        // nil: tracing disabled (every method is nil-safe)
	logger   *slog.Logger       // never nil: discards when unconfigured
	mux      *http.ServeMux
	varz     *varz
	ready    atomic.Bool
	degraded atomic.Pointer[string] // non-nil: serving, but restore was partial
	unbind   func()                 // detaches the pool's registry watcher
}

// NewService wires a service over a registry and an optional document store
// and subscribes the warm pool to the registry's deployment changes.
func NewService(reg *registry.Registry, db *cosmos.DB, cfg ServiceConfig) *Service {
	cfg = cfg.withDefaults()
	if cfg.Pool.MaxIdle == 0 {
		// A batch checks out one instance per fan-out worker; the per-slot
		// idle bound must cover that width or every batch on a many-core
		// host would discard most of the trained instances it returns.
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		cfg.Pool.MaxIdle = max(4, workers)
	}
	cfg.Clock = simclock.Or(cfg.Clock)
	s := &Service{
		reg:     reg,
		db:      db,
		cfg:     cfg,
		pool:    NewModelPool(cfg.Pool),
		workers: parallel.NewPool(cfg.Workers).WithSchedule(parallel.ScheduleGuided),
		tracer:  cfg.Tracer,
		logger:  obs.LoggerOr(cfg.Logger),
		varz:    newVarz(cfg.Clock),
	}
	s.unbind = s.pool.Bind(reg)
	s.ready.Store(true)

	// One shared adaptive limiter guards the whole traffic surface; the
	// refresher's sustained-backpressure predicate doubles as an external
	// brownout-entry signal (a saturated refresh queue means the CPUs are
	// already behind on retraining).
	if cfg.MaxInflight > 0 {
		var saturated func() bool
		if cfg.Refresher != nil {
			saturated = cfg.Refresher.Saturated
		}
		s.limiter = admission.NewLimiter(admission.Config{
			MaxInflight: cfg.MaxInflight,
			Target:      cfg.LatencyTarget,
			Brownout:    cfg.Brownout,
			Saturated:   saturated,
			Clock:       cfg.Clock,
		})
	}

	// Every route is instrumented under its route pattern, so /varz reports
	// per-endpoint latency histograms, error counts and in-flight gauges.
	// Traffic-bearing routes additionally pass admission control under a
	// priority class; liveness routes (healthz/readyz/varz) never queue.
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	admit := func(pattern string, class admission.Class, h http.HandlerFunc) {
		handle(pattern, s.admitted(pattern, class, h, nil))
	}
	handle("GET /healthz", s.handleHealth)
	handle("GET /readyz", s.handleReady)
	handle("GET /varz", s.handleVarz)
	// Observability surfaces: Prometheus exposition of the varz atomics, and
	// the trace ring (recent + slowest views). Like the liveness routes they
	// bypass admission — a scraper must see an overloaded process.
	handle("GET /metrics", s.handleMetrics)
	handle("GET /debug/traces", s.handleTraces)
	// v1 compatibility shim (see serving.go for the wire types).
	admit("GET /v1/models", admission.Background, s.handleModelsV1)
	admit("POST /v1/predict", admission.Predict, s.handlePredictV1)
	// v2 protocol. /v2/predict is the one brownout-capable route: under
	// saturation it degrades to the persistent forecast instead of shedding.
	handle("POST /v2/predict",
		s.admitted("POST /v2/predict", admission.Predict, s.handlePredictV2, s.handlePredictDegradedV2))
	admit("POST /v2/predict/batch", admission.Predict, s.handleBatchV2)
	admit("POST /v2/advise", admission.Background, s.handleAdviseV2)
	admit("POST /v2/ingest", admission.Ingest, s.handleIngestV2)
	admit("GET /v2/models", admission.Background, s.handleModelsV2)
	admit("GET /v2/predictions/{region}/{week}", admission.Background, s.handlePredictionsV2)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Handler returns the service as an http.Handler (itself).
func (s *Service) Handler() http.Handler { return s }

// Pool exposes the warm model pool (stats, manual invalidation).
func (s *Service) Pool() *ModelPool { return s.pool }

// SetReady flips the /readyz verdict. A service starts ready; servers flip
// it to false while draining during graceful shutdown so load balancers
// stop routing new traffic.
func (s *Service) SetReady(ready bool) { s.ready.Store(ready) }

// SetDegraded marks the service as serving in a degraded state (e.g. the
// live window cold-started because its snapshot or WAL failed to restore).
// /readyz keeps answering 200 — the process can serve — but reports the
// status and reason honestly instead of pretending full health; /varz
// carries the same string. Empty clears the mark.
func (s *Service) SetDegraded(reason string) {
	if reason == "" {
		s.degraded.Store(nil)
		return
	}
	s.degraded.Store(&reason)
}

// Degraded returns the degraded reason, or "" when fully healthy.
func (s *Service) Degraded() string {
	if r := s.degraded.Load(); r != nil {
		return *r
	}
	return ""
}

// Close detaches the service from its registry so a discarded service (and
// its warm pool) can be collected while the registry lives on. The service
// keeps answering requests after Close, but its pool no longer learns about
// promotes/rollbacks — call it only when retiring the service. Idempotent.
func (s *Service) Close() { s.unbind() }

// --- core operations (also the benchmark surface: no HTTP involved) ---

// ctxServiceError maps a context error to its wire representation.
func ctxServiceError(err error) *ServiceError {
	if errors.Is(err, context.DeadlineExceeded) {
		return svcErr(CodeDeadline, http.StatusGatewayTimeout, "request deadline exceeded")
	}
	return svcErr(CodeCanceled, statusClientClosedRequest, "request canceled")
}

// validateSeries checks the common history/horizon invariants.
// enforceLimits applies the v2 horizon cap; the v1 shim passes false —
// the legacy endpoint accepted any positive horizon and must keep doing so.
func (s *Service) validateSeries(history SeriesJSON, horizon, windowPoints int, enforceLimits bool) *ServiceError {
	if horizon <= 0 {
		return badRequest("horizon must be positive")
	}
	if enforceLimits && horizon > s.cfg.MaxHorizon {
		return svcErr(CodeTooLarge, http.StatusRequestEntityTooLarge,
			"horizon %d exceeds the limit of %d observations", horizon, s.cfg.MaxHorizon)
	}
	if history.IntervalMin <= 0 || len(history.Values) == 0 {
		return badRequest("history must be a non-empty series with a positive interval")
	}
	if windowPoints < 0 || windowPoints > horizon {
		return badRequest("window_points %d must be within the horizon %d", windowPoints, horizon)
	}
	return nil
}

// minLivePoints resolves the live_history window floor: the configured value,
// or one day of observations at the ingestor's interval by default.
func (s *Service) minLivePoints() int {
	switch {
	case s.cfg.MinLivePoints > 0:
		return s.cfg.MinLivePoints
	case s.cfg.MinLivePoints < 0 || s.cfg.Ingestor == nil:
		return 0
	default:
		return int(24 * time.Hour / s.cfg.Ingestor.Interval())
	}
}

// active resolves the deployment slot serving (scenario, region).
func (s *Service) active(scenario, region string) (registry.Target, registry.Version, *ServiceError) {
	target := registry.Target{Scenario: scenario, Region: region}
	v, err := s.reg.Active(target)
	if err != nil {
		return target, registry.Version{}, svcErr(CodeNotFound, http.StatusNotFound, "%v", err)
	}
	return target, v, nil
}

// predictWith trains the instance on the item's history and forecasts,
// observing ctx between the phases (models do not take a context; training
// one server is the cancellation granularity). Deterministic-inference
// instances skip the retrain when the history is identical to their last
// trained one (see Instance.TrainOn); the train span's hit flag records
// that memo outcome. tr may be nil (tracing disabled); batch workers record
// into one shared trace concurrently.
func (s *Service) predictWith(ctx context.Context, tr *obs.Trace, inst *Instance, history SeriesJSON, horizon, windowPoints int) (SeriesJSON, int, float64, *ServiceError) {
	if err := ctx.Err(); err != nil {
		return SeriesJSON{}, -1, 0, ctxServiceError(err)
	}
	sp := tr.Begin(obs.StageTrain)
	memoHit, err := inst.TrainOn(history.ToSeries())
	sp.EndHit(memoHit)
	if err != nil {
		return SeriesJSON{}, -1, 0, svcErr(CodeUntrainable, http.StatusUnprocessableEntity, "train: %v", err)
	}
	if err := ctx.Err(); err != nil {
		return SeriesJSON{}, -1, 0, ctxServiceError(err)
	}
	sp = tr.Begin(obs.StageInference)
	pred, err := inst.Model.Forecast(horizon)
	sp.End()
	if err != nil {
		return SeriesJSON{}, -1, 0, svcErr(CodeInternal, http.StatusInternalServerError, "forecast: %v", err)
	}
	llStart, llAvg := -1, 0.0
	if windowPoints > 0 {
		ll, err := metrics.LowestLoadWindow(pred, windowPoints)
		if err != nil {
			return SeriesJSON{}, -1, 0, svcErr(CodeInternal, http.StatusInternalServerError, "lowest-load window: %v", err)
		}
		llStart, llAvg = ll.Start, ll.AvgLoad
	}
	return FromSeries(pred), llStart, llAvg, nil
}

// Predict serves one forecast through the warm model pool.
func (s *Service) Predict(ctx context.Context, req PredictRequestV2) (PredictResponseV2, *ServiceError) {
	return s.predict(ctx, req, true)
}

// resolveLiveHistory sources a live_history request's training history from
// the attached ingestor's live window (no-op when the request carries its
// own history). Shared by the full predict path and the brownout fallback.
func (s *Service) resolveLiveHistory(req *PredictRequestV2) *ServiceError {
	if !req.LiveHistory {
		return nil
	}
	if s.cfg.Ingestor == nil {
		return svcErr(CodeNotFound, http.StatusNotFound,
			"live_history requires a stream ingestor attached to this service")
	}
	if req.ServerID == "" {
		return badRequest("live_history requires server_id")
	}
	if len(req.History.Values) != 0 {
		return badRequest("live_history and history are mutually exclusive")
	}
	// Stable copy of the live window: training is long and zero-copy
	// views are only valid under the shard lock. Missing slots stay
	// missing; models gap-fill exactly as they do on batch extracts.
	snap, ok := s.cfg.Ingestor.SnapshotInto(req.ServerID, nil)
	if !ok {
		return svcErr(CodeNotFound, http.StatusNotFound,
			"no live telemetry for server %q", req.ServerID)
	}
	if min := s.minLivePoints(); min > 0 && snap.Len() < min {
		return svcErr(CodeInsufficientHistory, http.StatusUnprocessableEntity,
			"live window for %q spans %d observations, below the %d-observation floor (cold-started window?)",
			req.ServerID, snap.Len(), min)
	}
	req.History = FromSeries(snap)
	return nil
}

func (s *Service) predict(ctx context.Context, req PredictRequestV2, enforceLimits bool) (PredictResponseV2, *ServiceError) {
	if serr := s.resolveLiveHistory(&req); serr != nil {
		return PredictResponseV2{}, serr
	}
	if serr := s.validateSeries(req.History, req.Horizon, req.WindowPoints, enforceLimits); serr != nil {
		return PredictResponseV2{}, serr
	}
	target, v, serr := s.active(req.Scenario, req.Region)
	if serr != nil {
		return PredictResponseV2{}, serr
	}
	tr := obs.TraceFrom(ctx)
	sp := tr.Begin(obs.StageCheckout)
	inst, hit, err := s.pool.Checkout(target, v.Number, v.ModelName)
	sp.EndHit(hit)
	if err != nil {
		return PredictResponseV2{}, svcErr(CodeInternal, http.StatusInternalServerError, "%v", err)
	}
	forecastJSON, llStart, llAvg, serr := s.predictWith(ctx, tr, inst, req.History, req.Horizon, req.WindowPoints)
	s.pool.Return(target, v.Number, inst)
	if serr != nil {
		return PredictResponseV2{}, serr
	}
	return PredictResponseV2{
		ServerID: req.ServerID,
		Model:    v.ModelName,
		Version:  v.Number,
		Forecast: forecastJSON,
		Pooled:   hit,
		LLStart:  llStart,
		LLAvg:    llAvg,
	}, nil
}

// PredictBatch serves many servers of one deployment slot in a single call.
// Items fan out across the service's worker pool under guided scheduling;
// each worker checks out one warm model and retrains it per server (the
// retrain-equals-fresh guarantee makes that equivalent to fresh models).
// Item-level failures are reported per item; cancelling ctx abandons the
// batch and fails the whole call. An item carrying a positive DeadlineMS is
// additionally bounded by its own deadline, measured from the start of the
// batch: a late item fails alone with a deadline_exceeded code while the
// rest of the batch proceeds (deadlines are observed at the train/forecast
// phase boundaries — training one server is the cancellation granularity).
func (s *Service) PredictBatch(ctx context.Context, req BatchRequest) (BatchResponse, *ServiceError) {
	if len(req.Servers) == 0 {
		return BatchResponse{}, badRequest("batch must contain at least one server")
	}
	batchStart := s.cfg.Clock.Now()
	if len(req.Servers) > s.cfg.MaxBatch {
		return BatchResponse{}, svcErr(CodeTooLarge, http.StatusRequestEntityTooLarge,
			"batch of %d servers exceeds the limit of %d", len(req.Servers), s.cfg.MaxBatch)
	}
	target, v, serr := s.active(req.Scenario, req.Region)
	if serr != nil {
		return BatchResponse{}, serr
	}
	// One trace covers the whole batch; workers record spans into it
	// concurrently (span recording is lock-free) and the worker join below
	// happens-before Finish publishes the trace.
	tr := obs.TraceFrom(ctx)

	type workerModel struct {
		inst *Instance
		err  error
	}
	var (
		mu      sync.Mutex
		loaned  []*Instance
		results = make([]BatchItemResult, len(req.Servers))
	)
	err := parallel.ForEachScratchCtx(ctx, s.workers, len(req.Servers),
		func() *workerModel {
			sp := tr.Begin(obs.StageCheckout)
			inst, hit, err := s.pool.Checkout(target, v.Number, v.ModelName)
			sp.EndHit(hit)
			if err == nil {
				mu.Lock()
				loaned = append(loaned, inst)
				mu.Unlock()
			}
			return &workerModel{inst: inst, err: err}
		},
		func(i int, wm *workerModel) error {
			item := req.Servers[i]
			res := BatchItemResult{ServerID: item.ServerID, LLStart: -1}
			switch {
			case wm.err != nil:
				res.Error = &ErrorBody{Code: CodeInternal, Message: wm.err.Error()}
			default:
				if serr := s.validateSeries(item.History, item.Horizon, item.WindowPoints, true); serr != nil {
					res.Error = &ErrorBody{Code: serr.Code, Message: serr.Message}
					break
				}
				itemCtx := ctx
				if item.DeadlineMS > 0 {
					var cancel context.CancelFunc
					itemCtx, cancel = context.WithDeadline(ctx,
						batchStart.Add(time.Duration(item.DeadlineMS)*time.Millisecond))
					defer cancel()
				}
				forecastJSON, llStart, llAvg, serr := s.predictWith(itemCtx, tr, wm.inst, item.History, item.Horizon, item.WindowPoints)
				if serr != nil {
					res.Error = &ErrorBody{Code: serr.Code, Message: serr.Message}
					break
				}
				res.Forecast, res.LLStart, res.LLAvg = &forecastJSON, llStart, llAvg
			}
			results[i] = res
			return nil
		})
	for _, inst := range loaned {
		s.pool.Return(target, v.Number, inst)
	}
	if err != nil {
		if ctx.Err() != nil {
			return BatchResponse{}, ctxServiceError(ctx.Err())
		}
		return BatchResponse{}, svcErr(CodeInternal, http.StatusInternalServerError, "%v", err)
	}

	resp := BatchResponse{Model: v.ModelName, Version: v.Number, Results: results}
	for i := range results {
		if results[i].Error != nil {
			resp.Failed++
		} else {
			resp.Succeeded++
		}
	}
	return resp, nil
}

// Advise reviews a customer-selected backup window against the predicted
// lowest-load window (Section 6.2).
func (s *Service) Advise(req AdviseRequest) (AdviseResponse, *ServiceError) {
	if req.PredictedDay.IntervalMin <= 0 || len(req.PredictedDay.Values) == 0 {
		return AdviseResponse{}, badRequest("predicted_day must be a non-empty series with a positive interval")
	}
	if req.WindowPoints <= 0 || req.WindowPoints > len(req.PredictedDay.Values) {
		return AdviseResponse{}, badRequest("window_points %d must be within the predicted day of %d observations",
			req.WindowPoints, len(req.PredictedDay.Values))
	}
	adv, err := scheduler.AdviseWindow(req.PredictedDay.ToSeries(), req.CustomerStart, req.WindowPoints, s.cfg.Metrics)
	if err != nil {
		return AdviseResponse{}, badRequest("advise: %v", err)
	}
	return AdviseResponse{
		KeepCurrent:    adv.KeepCurrent,
		SuggestedStart: adv.SuggestedStart,
		CurrentAvg:     adv.CurrentAvg,
		SuggestedAvg:   adv.SuggestedAvg,
	}, nil
}

// ModelList snapshots every deployment slot's active version.
func (s *Service) ModelList() []ModelInfo {
	var out []ModelInfo
	for _, t := range s.reg.Targets() {
		v, err := s.reg.Active(t)
		if err != nil {
			continue
		}
		out = append(out, ModelInfo{
			Scenario: t.Scenario, Region: t.Region,
			Model: v.ModelName, Version: v.Number, Accuracy: v.Accuracy,
		})
	}
	return out
}

// StoredPredictions returns the pipeline's stored PredictionDocs for one
// (region, week) from the document store.
func (s *Service) StoredPredictions(region string, week int) ([]*pipeline.PredictionDoc, *ServiceError) {
	if s.db == nil {
		return nil, svcErr(CodeNotFound, http.StatusNotFound, "no document store attached to this service")
	}
	var docs []*pipeline.PredictionDoc
	// The pipeline keys predictions as "<serverID>/week-%04d"; matching the
	// id suffix first avoids unmarshalling every other week's documents in
	// a region partition that accumulates weeks. The decoded Week is still
	// checked, so a foreign id scheme degrades to a filter, not a wrong
	// answer.
	weekSuffix := fmt.Sprintf("/week-%04d", week)
	err := s.db.Collection("predictions").Query(region, func(id string, body json.RawMessage) error {
		if !strings.HasSuffix(id, weekSuffix) {
			return nil
		}
		var pd pipeline.PredictionDoc
		if err := json.Unmarshal(body, &pd); err != nil {
			return fmt.Errorf("decode prediction %s: %w", id, err)
		}
		if pd.Week == week {
			docs = append(docs, &pd)
		}
		return nil
	})
	if err != nil {
		return nil, svcErr(CodeInternal, http.StatusInternalServerError, "%v", err)
	}
	return docs, nil
}

// --- HTTP plumbing ---

// requestContext applies the service deadline to the caller's context.
func (s *Service) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.Timeout)
}

// decode reads a JSON body under the service's size limit.
func (s *Service) decode(w http.ResponseWriter, r *http.Request, v any) *ServiceError {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return svcErr(CodeTooLarge, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return badRequest("decode request: %v", err)
	}
	return nil
}

func writeV2Error(w http.ResponseWriter, serr *ServiceError) {
	writeJSON(w, serr.Status, errorEnvelope{Error: ErrorBody{Code: serr.Code, Message: serr.Message}})
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		// Advertise the drain window so balancers and the client back off
		// for exactly as long as the drain lasts, not a guessed jitter.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.DrainGrace)))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if reason := s.Degraded(); reason != "" {
		writeJSON(w, http.StatusOK, map[string]string{"status": "degraded", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Service) handlePredictV2(w http.ResponseWriter, r *http.Request) {
	var req PredictRequestV2
	if serr := s.decode(w, r, &req); serr != nil {
		writeV2Error(w, serr)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, serr := s.Predict(ctx, req)
	if serr != nil {
		writeV2Error(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleBatchV2(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if serr := s.decode(w, r, &req); serr != nil {
		writeV2Error(w, serr)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, serr := s.PredictBatch(ctx, req)
	if serr != nil {
		writeV2Error(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleAdviseV2(w http.ResponseWriter, r *http.Request) {
	var req AdviseRequest
	if serr := s.decode(w, r, &req); serr != nil {
		writeV2Error(w, serr)
		return
	}
	resp, serr := s.Advise(req)
	if serr != nil {
		writeV2Error(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleModelsV2(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ModelsResponseV2{Models: s.ModelList(), Pool: s.pool.Stats()})
}

func (s *Service) handlePredictionsV2(w http.ResponseWriter, r *http.Request) {
	region := r.PathValue("region")
	week, err := strconv.Atoi(r.PathValue("week"))
	if err != nil {
		writeV2Error(w, badRequest("week must be an integer: %v", err))
		return
	}
	docs, serr := s.StoredPredictions(region, week)
	if serr != nil {
		writeV2Error(w, serr)
		return
	}
	if docs == nil {
		docs = []*pipeline.PredictionDoc{}
	}
	writeJSON(w, http.StatusOK, PredictionsResponse{Region: region, Week: week, Predictions: docs})
}
