package serving

import (
	"net/http"
	"strconv"

	"seagull/internal/obs"
)

// /debug/traces exposes the trace ring as one JSON document: the most recent
// completed traces (newest first, ?n= caps the count), the slowest-N board,
// the per-stage latency aggregates, and the overrun counter. When the
// service carries no tracer the document says so instead of 404ing, so
// operators can tell "tracing off" from "wrong port".

// defaultRecentTraces bounds the recent list when ?n= is absent.
const defaultRecentTraces = 32

// TracesDoc is the /debug/traces document.
type TracesDoc struct {
	Enabled  bool            `json:"enabled"`
	Recent   []obs.TraceView `json:"recent,omitempty"`
	Slowest  []obs.TraceView `json:"slowest,omitempty"`
	Stages   []obs.StageStat `json:"stages,omitempty"`
	Overruns uint64          `json:"overruns,omitempty"`
}

func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusOK, TracesDoc{Enabled: false})
		return
	}
	n := defaultRecentTraces
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeV2Error(w, svcErr(CodeBadRequest, http.StatusBadRequest, "bad n=%q: want a non-negative integer", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, TracesDoc{
		Enabled:  true,
		Recent:   s.tracer.Recent(n),
		Slowest:  s.tracer.Slowest(),
		Stages:   s.tracer.StageStats(),
		Overruns: s.tracer.Overruns(),
	})
}
