package serving

import (
	"context"
	"testing"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/registry"
	"seagull/internal/timeseries"
)

// slowModel delays every Train by a fixed amount.
type slowModel struct {
	forecast.Model
	delay time.Duration
}

func (m *slowModel) Train(h timeseries.Series) error {
	time.Sleep(m.delay)
	return m.Model.Train(h)
}

// TestBatchPerItemDeadline: an item with an expired per-item deadline fails
// alone with deadline_exceeded while the rest of the batch — and the request
// itself — succeed.
func TestBatchPerItemDeadline(t *testing.T) {
	reg := registry.New(nil)
	svc := NewService(reg, nil, ServiceConfig{
		Workers: 1,
		Pool: PoolConfig{NewModel: func(name string, seed int64) (forecast.Model, error) {
			inner, err := forecast.New(name, seed)
			if err != nil {
				return nil, err
			}
			return &slowModel{Model: inner, delay: 30 * time.Millisecond}, nil
		}},
	})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")

	good := FromSeries(weekHistory())
	req := BatchRequest{Scenario: "backup", Region: "r", Servers: []BatchItem{
		{ServerID: "tight", History: good, Horizon: 288, DeadlineMS: 1},
		{ServerID: "roomy", History: good, Horizon: 288},
	}}
	resp, serr := svc.PredictBatch(context.Background(), req)
	if serr != nil {
		t.Fatalf("batch failed wholesale: %v", serr)
	}
	if resp.Succeeded != 1 || resp.Failed != 1 {
		t.Fatalf("batch = %d ok / %d failed, want 1 / 1", resp.Succeeded, resp.Failed)
	}
	tight, roomy := resp.Results[0], resp.Results[1]
	if tight.Error == nil || tight.Error.Code != CodeDeadline {
		t.Fatalf("tight item error = %+v, want %s", tight.Error, CodeDeadline)
	}
	if roomy.Error != nil || roomy.Forecast == nil {
		t.Fatalf("roomy item = %+v, want success", roomy)
	}

	// Without per-item deadlines the same batch fully succeeds.
	for i := range req.Servers {
		req.Servers[i].DeadlineMS = 0
	}
	resp, serr = svc.PredictBatch(context.Background(), req)
	if serr != nil || resp.Failed != 0 {
		t.Fatalf("deadline-free batch: %v / %+v", serr, resp)
	}

	// A generous per-item deadline does not interfere.
	req.Servers[0].DeadlineMS = 60_000
	resp, serr = svc.PredictBatch(context.Background(), req)
	if serr != nil || resp.Failed != 0 {
		t.Fatalf("generous deadline batch: %v / %+v", serr, resp)
	}
}
