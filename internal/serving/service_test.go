package serving

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/timeseries"
)

func v2Server(t *testing.T, cfg ServiceConfig) (*httptest.Server, *Service, *registry.Registry) {
	t.Helper()
	reg := registry.New(nil)
	svc := NewService(reg, nil, cfg)
	srv := httptest.NewServer(svc)
	t.Cleanup(srv.Close)
	return srv, svc, reg
}

func TestPredictV2EndToEnd(t *testing.T) {
	srv, _, reg := v2Server(t, ServiceConfig{})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "westus"}, forecast.NamePersistentPrevDay, "")
	c := NewClient(srv.URL)
	ctx := context.Background()

	hist := weekHistory()
	req := PredictRequestV2{
		Scenario: "backup", Region: "westus", ServerID: "srv-1",
		History: FromSeries(hist), Horizon: 288, WindowPoints: 12,
	}
	resp, err := c.PredictV2(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != forecast.NamePersistentPrevDay || resp.Version != 1 || resp.ServerID != "srv-1" {
		t.Errorf("resp = %+v", resp)
	}
	pred := resp.Forecast.ToSeries()
	if pred.Len() != 288 {
		t.Fatalf("forecast len = %d", pred.Len())
	}
	// The server-side LL window must equal a client-side recomputation.
	ll, err := metrics.LowestLoadWindow(pred, 12)
	if err != nil {
		t.Fatal(err)
	}
	if resp.LLStart != ll.Start || resp.LLAvg != ll.AvgLoad {
		t.Errorf("ll = (%d, %v), want (%d, %v)", resp.LLStart, resp.LLAvg, ll.Start, ll.AvgLoad)
	}
	if resp.Pooled {
		t.Error("first request cannot be served warm")
	}
	resp2, err := c.PredictV2(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.Pooled {
		t.Error("second request must hit the warm pool")
	}
	for i := range resp.Forecast.Values {
		if resp.Forecast.Values[i] != resp2.Forecast.Values[i] {
			t.Fatalf("warm forecast differs at %d", i)
		}
	}
}

func TestPredictBatchEndToEnd(t *testing.T) {
	srv, _, reg := v2Server(t, ServiceConfig{})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	c := NewClient(srv.URL)

	good := FromSeries(weekHistory())
	short := SeriesJSON{Start: t0, IntervalMin: 5, Values: []float64{1, 2, 3}}
	req := BatchRequest{
		Scenario: "backup", Region: "r",
		Servers: []BatchItem{
			{ServerID: "a", History: good, Horizon: 288, WindowPoints: 12},
			{ServerID: "too-short", History: short, Horizon: 288},
			{ServerID: "b", History: good, Horizon: 288},
			{ServerID: "bad-horizon", History: good, Horizon: 0},
		},
	}
	resp, err := c.PredictBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Succeeded != 2 || resp.Failed != 2 {
		t.Fatalf("succeeded=%d failed=%d, want 2/2", resp.Succeeded, resp.Failed)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	// Results arrive in request order with per-item error codes.
	if resp.Results[0].ServerID != "a" || resp.Results[0].Error != nil || resp.Results[0].LLStart < 0 {
		t.Errorf("results[0] = %+v", resp.Results[0])
	}
	if e := resp.Results[1].Error; e == nil || e.Code != CodeUntrainable {
		t.Errorf("results[1].Error = %+v, want %s", resp.Results[1].Error, CodeUntrainable)
	}
	if resp.Results[2].Error != nil || resp.Results[2].Forecast == nil {
		t.Errorf("results[2] = %+v", resp.Results[2])
	}
	if e := resp.Results[3].Error; e == nil || e.Code != CodeBadRequest {
		t.Errorf("results[3].Error = %+v, want %s", resp.Results[3].Error, CodeBadRequest)
	}
	// A batch forecast must equal a single-predict forecast for the same input.
	single, err := c.PredictV2(context.Background(), PredictRequestV2{
		Scenario: "backup", Region: "r", History: good, Horizon: 288,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Forecast.Values {
		if single.Forecast.Values[i] != resp.Results[0].Forecast.Values[i] {
			t.Fatalf("batch forecast differs from single at %d", i)
		}
	}
}

// TestConcurrentServing hammers single and batch predicts concurrently; its
// value is under -race (CI runs the serving package with the race detector):
// the warm pool must hand out exclusive instances, never sharing one model
// across goroutines.
func TestConcurrentServing(t *testing.T) {
	srv, svc, reg := v2Server(t, ServiceConfig{Workers: 4, Pool: PoolConfig{MaxIdle: 2}})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	c := NewClient(srv.URL)
	ctx := context.Background()

	good := FromSeries(weekHistory())
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				if g%2 == 0 {
					_, err := c.PredictV2(ctx, PredictRequestV2{
						Scenario: "backup", Region: "r", History: good, Horizon: 288,
					})
					if err != nil {
						errCh <- err
						return
					}
					continue
				}
				_, err := c.PredictBatch(ctx, BatchRequest{
					Scenario: "backup", Region: "r",
					Servers: []BatchItem{
						{ServerID: "x", History: good, Horizon: 288},
						{ServerID: "y", History: good, Horizon: 288},
						{ServerID: "z", History: good, Horizon: 288},
					},
				})
				if err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := svc.Pool().Stats()
	if st.Hits == 0 {
		t.Error("concurrent serving should produce warm hits")
	}
}

func TestPoolInvalidationAcrossDeployments(t *testing.T) {
	srv, svc, reg := v2Server(t, ServiceConfig{})
	target := registry.Target{Scenario: "backup", Region: "r"}
	v1 := reg.Deploy(target, forecast.NamePersistentPrevDay, "")
	if err := reg.RecordAccuracy(target, v1, 0.97); err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.URL)
	ctx := context.Background()
	req := PredictRequestV2{Scenario: "backup", Region: "r", History: FromSeries(weekHistory()), Horizon: 288}

	resp, err := c.PredictV2(ctx, req)
	if err != nil || resp.Version != 1 {
		t.Fatalf("v1 predict: %+v %v", resp, err)
	}
	resp, err = c.PredictV2(ctx, req)
	if err != nil || !resp.Pooled {
		t.Fatalf("expected warm v1 hit: %+v %v", resp, err)
	}

	// Promote a new model: the next request must serve the new version cold.
	reg.Deploy(target, forecast.NamePersistentPrevWeek, "")
	resp, err = c.PredictV2(ctx, req)
	if err != nil || resp.Version != 2 || resp.Model != forecast.NamePersistentPrevWeek || resp.Pooled {
		t.Fatalf("after promote: %+v %v", resp, err)
	}

	// Roll back to the known-good v1: again a cold hit of the old version.
	if _, err := reg.Fallback(target, 0.9); err != nil {
		t.Fatal(err)
	}
	resp, err = c.PredictV2(ctx, req)
	if err != nil || resp.Version != 1 || resp.Model != forecast.NamePersistentPrevDay || resp.Pooled {
		t.Fatalf("after rollback: %+v %v", resp, err)
	}
	if st := svc.Pool().Stats(); st.Invalidations == 0 {
		t.Errorf("stats = %+v, want invalidations > 0", st)
	}
}

// blockingModel wraps a persistent forecaster and parks every Train until
// released, letting the cancellation test control batch progress.
type blockingModel struct {
	forecast.Model
	started chan<- struct{}
	release <-chan struct{}
}

func (m *blockingModel) Train(h timeseries.Series) error {
	m.started <- struct{}{}
	<-m.release
	return m.Model.Train(h)
}

func TestBatchCancellationMidBatch(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	reg := registry.New(nil)
	svc := NewService(reg, nil, ServiceConfig{
		Workers: 2,
		Pool: PoolConfig{NewModel: func(name string, seed int64) (forecast.Model, error) {
			inner, err := forecast.New(name, seed)
			if err != nil {
				return nil, err
			}
			return &blockingModel{Model: inner, started: started, release: release}, nil
		}},
	})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")

	good := FromSeries(weekHistory())
	items := make([]BatchItem, 16)
	for i := range items {
		items[i] = BatchItem{ServerID: "s", History: good, Horizon: 288}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var (
		resp BatchResponse
		serr *ServiceError
	)
	go func() {
		resp, serr = svc.PredictBatch(ctx, BatchRequest{Scenario: "backup", Region: "r", Servers: items})
		close(done)
	}()

	// Wait until both workers are mid-Train, cancel, then release them.
	<-started
	<-started
	cancel()
	close(release)
	<-done

	if serr == nil || serr.Code != CodeCanceled {
		t.Fatalf("serr = %+v, want %s", serr, CodeCanceled)
	}
	if resp.Results != nil {
		t.Errorf("cancelled batch must not return partial results, got %d", len(resp.Results))
	}
	// Drain the remaining started signals, if any worker claimed one more
	// item between the cancel and its next claim check.
	for {
		select {
		case <-started:
		default:
			return
		}
	}
}

func TestStructuredErrorCodes(t *testing.T) {
	srv, _, reg := v2Server(t, ServiceConfig{MaxBatch: 2, MaxBodyBytes: 1 << 20})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	reg.Deploy(registry.Target{Scenario: "backup", Region: "broken"}, "no-such-model", "")

	good := FromSeries(weekHistory())
	// A structurally valid request whose JSON alone exceeds the 1 MiB body
	// limit: the decoder must hit the MaxBytesReader mid-array.
	oversized := `{"scenario":"backup","region":"r","horizon":288,"history":{"start":"2019-12-01T00:00:00Z","interval_min":5,"values":[` +
		strings.Repeat("0,", 700000) + `0]}}`

	post := func(path, body string) (int, ErrorBody) {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env errorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env.Error
	}
	mustJSON := func(v any) string {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	cases := []struct {
		name   string
		path   string
		body   string
		status int
		code   ErrorCode
	}{
		{"malformed json", "/v2/predict", "{not json", http.StatusBadRequest, CodeBadRequest},
		{"zero horizon", "/v2/predict", mustJSON(PredictRequestV2{
			Scenario: "backup", Region: "r", History: good, Horizon: 0,
		}), http.StatusBadRequest, CodeBadRequest},
		{"window beyond horizon", "/v2/predict", mustJSON(PredictRequestV2{
			Scenario: "backup", Region: "r", History: good, Horizon: 12, WindowPoints: 24,
		}), http.StatusBadRequest, CodeBadRequest},
		{"no deployment", "/v2/predict", mustJSON(PredictRequestV2{
			Scenario: "backup", Region: "nowhere", History: good, Horizon: 288,
		}), http.StatusNotFound, CodeNotFound},
		{"short history", "/v2/predict", mustJSON(PredictRequestV2{
			Scenario: "backup", Region: "r",
			History: SeriesJSON{Start: t0, IntervalMin: 5, Values: []float64{1}}, Horizon: 288,
		}), http.StatusUnprocessableEntity, CodeUntrainable},
		{"horizon beyond limit", "/v2/predict", mustJSON(PredictRequestV2{
			Scenario: "backup", Region: "r", History: good, Horizon: 100000,
		}), http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"unknown deployed model", "/v2/predict", mustJSON(PredictRequestV2{
			Scenario: "backup", Region: "broken", History: good, Horizon: 288,
		}), http.StatusInternalServerError, CodeInternal},
		{"batch beyond limit", "/v2/predict/batch", mustJSON(BatchRequest{
			Scenario: "backup", Region: "r",
			Servers: []BatchItem{{Horizon: 1}, {Horizon: 1}, {Horizon: 1}},
		}), http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"empty batch", "/v2/predict/batch", mustJSON(BatchRequest{
			Scenario: "backup", Region: "r",
		}), http.StatusBadRequest, CodeBadRequest},
		{"oversized body", "/v2/predict", oversized,
			http.StatusRequestEntityTooLarge, CodeTooLarge},
		{"advise bad window", "/v2/advise", mustJSON(AdviseRequest{
			PredictedDay: good, CustomerStart: 0, WindowPoints: 0,
		}), http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		status, errBody := post(tc.path, tc.body)
		if status != tc.status || errBody.Code != tc.code {
			t.Errorf("%s: got %d %q (%q), want %d %q",
				tc.name, status, errBody.Code, errBody.Message, tc.status, tc.code)
		}
		if errBody.Message == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

func TestAdviseEndpoint(t *testing.T) {
	srv, _, _ := v2Server(t, ServiceConfig{})
	c := NewClient(srv.URL)
	day, _ := weekHistory().Day(6)

	resp, err := c.Advise(context.Background(), AdviseRequest{
		PredictedDay: FromSeries(day), CustomerStart: 150, WindowPoints: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	ll, _ := metrics.LowestLoadWindow(day, 12)
	if resp.SuggestedStart != ll.Start || resp.SuggestedAvg != ll.AvgLoad {
		t.Errorf("resp = %+v, ll = %+v", resp, ll)
	}
	// The 150 start sits mid-plateau at 60 load, far outside the +10/−5
	// bound of the 10-load optimum: the advice must be to move.
	if resp.KeepCurrent {
		t.Errorf("resp = %+v: a peak-load window should not be kept", resp)
	}
}

func TestPredictionsEndpoint(t *testing.T) {
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	col := db.Collection("predictions")
	for week := 0; week < 2; week++ {
		doc := pipeline.PredictionDoc{
			ServerID: "srv-1", Region: "westus", Week: week,
			Model: forecast.NamePersistentPrevDay, IntervalMin: 5,
			Values: []float64{1, 2, 3}, LLStart: 1, LLAvg: 2,
		}
		id := docIDForTest(doc.ServerID, week)
		if err := col.Upsert("westus", id, &doc); err != nil {
			t.Fatal(err)
		}
	}
	reg := registry.New(nil)
	srv := httptest.NewServer(NewService(reg, db, ServiceConfig{}))
	defer srv.Close()
	c := NewClient(srv.URL)

	resp, err := c.Predictions(context.Background(), "westus", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 1 || resp.Predictions[0].Week != 1 || resp.Predictions[0].ServerID != "srv-1" {
		t.Fatalf("resp = %+v", resp)
	}
	// Unknown region → empty list, not an error.
	empty, err := c.Predictions(context.Background(), "nowhere", 0)
	if err != nil || len(empty.Predictions) != 0 {
		t.Errorf("empty = %+v, err = %v", empty, err)
	}
	// A service without a document store reports not_found.
	srvNoDB := httptest.NewServer(NewService(registry.New(nil), nil, ServiceConfig{}))
	defer srvNoDB.Close()
	_, err = NewClient(srvNoDB.URL).Predictions(context.Background(), "westus", 1)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.Code != CodeNotFound {
		t.Errorf("err = %v, want %s", err, CodeNotFound)
	}
}

// docIDForTest mirrors the pipeline's prediction document id scheme.
func docIDForTest(serverID string, week int) string {
	return fmt.Sprintf("%s/week-%04d", serverID, week)
}

// TestBatchWorkersRePoolInFull: the default per-slot idle bound must cover
// the batch fan-out width, or every batch on a many-core host would discard
// most of the trained instances it checks out.
func TestBatchWorkersRePoolInFull(t *testing.T) {
	reg := registry.New(nil)
	svc := NewService(reg, nil, ServiceConfig{Workers: 8})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	good := FromSeries(weekHistory())
	items := make([]BatchItem, 8)
	for i := range items {
		items[i] = BatchItem{ServerID: "s", History: good, Horizon: 288}
	}
	resp, serr := svc.PredictBatch(context.Background(), BatchRequest{
		Scenario: "backup", Region: "r", Servers: items,
	})
	if serr != nil || resp.Failed != 0 {
		t.Fatalf("batch: %+v %v", resp, serr)
	}
	st := svc.Pool().Stats()
	if st.Idle != 8 {
		t.Errorf("idle = %d, want all 8 worker instances re-pooled (stats %+v)", st.Idle, st)
	}
}

// TestServiceCloseDetachesWatcher: a closed service's pool must stop
// receiving registry invalidations, while a live service on the same
// registry keeps receiving them.
func TestServiceCloseDetachesWatcher(t *testing.T) {
	reg := registry.New(nil)
	target := registry.Target{Scenario: "backup", Region: "r"}
	retired := NewService(reg, nil, ServiceConfig{})
	live := NewService(reg, nil, ServiceConfig{})
	retired.Close()
	reg.Deploy(target, forecast.NamePersistentPrevDay, "")
	if st := retired.Pool().Stats(); st.Invalidations != 0 {
		t.Errorf("closed service still receives invalidations: %+v", st)
	}
	if st := live.Pool().Stats(); st.Invalidations == 0 {
		t.Errorf("live service missed the invalidation: %+v", st)
	}
}

func TestReadiness(t *testing.T) {
	srv, svc, _ := v2Server(t, ServiceConfig{})
	c := NewClient(srv.URL)
	ctx := context.Background()
	if !c.Ready(ctx) {
		t.Error("fresh service must be ready")
	}
	svc.SetReady(false)
	if c.Ready(ctx) {
		t.Error("draining service must not be ready")
	}
	if !c.Healthy() {
		t.Error("draining service must stay live")
	}
}

func TestRequestDeadline(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	defer close(release)
	reg := registry.New(nil)
	svc := NewService(reg, nil, ServiceConfig{
		Timeout: 30 * time.Millisecond,
		Pool: PoolConfig{NewModel: func(name string, seed int64) (forecast.Model, error) {
			inner, err := forecast.New(name, seed)
			if err != nil {
				return nil, err
			}
			return &blockingModel{Model: inner, started: started, release: release}, nil
		}},
	})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	srv := httptest.NewServer(svc)
	defer srv.Close()

	go func() {
		<-started
		// Hold Train well past the 30ms service deadline.
		time.Sleep(60 * time.Millisecond)
		release <- struct{}{}
	}()
	body, _ := json.Marshal(PredictRequestV2{
		Scenario: "backup", Region: "r", History: FromSeries(weekHistory()), Horizon: 288,
	})
	resp, err := http.Post(srv.URL+"/v2/predict", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env errorEnvelope
	_ = json.NewDecoder(resp.Body).Decode(&env)
	if resp.StatusCode != http.StatusGatewayTimeout || env.Error.Code != CodeDeadline {
		t.Errorf("got %d %q, want %d %q", resp.StatusCode, env.Error.Code,
			http.StatusGatewayTimeout, CodeDeadline)
	}
}
