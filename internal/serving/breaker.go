package serving

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) when the client-side circuit breaker
// rejects a call without sending it: the endpoint has produced enough
// consecutive retryable failures that hammering it further only deepens the
// overload the server is shedding. Callers branch with errors.Is.
var ErrCircuitOpen = errors.New("serving: circuit breaker open")

// BreakerConfig parameterizes the client-side circuit breaker. The zero
// value disables it (NewClient's default), preserving the plain retry
// behavior; set Threshold to enable.
//
// The breaker closes the loop the server's admission layer opens: a shed
// response (503/429) carries Retry-After, and an open breaker keeps the
// client off the endpoint for that long instead of re-queueing jittered
// retries into the storm. One breaker tracks each request path.
type BreakerConfig struct {
	// Threshold is the number of consecutive retryable failures (transport
	// errors, 503, 429) on one path that opens its circuit. 0 disables the
	// breaker; 1 opens on any failure.
	Threshold int
	// Cooldown is how long an open circuit rejects calls before letting a
	// single half-open probe through. A server Retry-After on the opening
	// failure overrides it — the server knows its own recovery schedule.
	// Default 1s.
	Cooldown time.Duration
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one path's circuit. closed → (threshold consecutive retryable
// failures) → open → (cooldown elapses) → half-open: exactly one probe flies
// while other calls keep failing fast; the probe's success closes the
// circuit, its failure reopens it for another cooldown.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int
	openUntil time.Time
	probing   bool
}

// allow decides whether a call may be sent now. It returns nil to proceed
// (possibly as the half-open probe) or an ErrCircuitOpen-wrapped error to
// fail fast.
func (b *breaker) allow(now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if now.Before(b.openUntil) {
			return fmt.Errorf("%w for another %v", ErrCircuitOpen, b.openUntil.Sub(now).Round(time.Millisecond))
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return fmt.Errorf("%w: recovery probe in flight", ErrCircuitOpen)
		}
		b.probing = true
		return nil
	}
}

// onSuccess records a successful (or definitively-answered) call: a server
// that returns a real answer is healthy, so the circuit closes and the
// consecutive-failure streak resets.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure records a retryable failure and reports whether the circuit is
// now open. A failed half-open probe reopens immediately; a closed circuit
// opens once the streak reaches threshold. retryAfter, when positive,
// overrides cooldown as the open duration.
func (b *breaker) onFailure(threshold int, cooldown, retryAfter time.Duration, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasProbe := b.state == breakerHalfOpen && b.probing
	b.probing = false
	b.failures++
	if !wasProbe && b.failures < threshold {
		return false
	}
	b.state = breakerOpen
	d := cooldown
	if retryAfter > 0 {
		d = retryAfter
	}
	b.openUntil = now.Add(d)
	b.failures = 0
	return true
}

// breakerFor returns (creating once) the breaker tracking path, or nil when
// the breaker is disabled.
func (c *Client) breakerFor(path string) *breaker {
	if c.Breaker.Threshold <= 0 {
		return nil
	}
	c.brkMu.Lock()
	defer c.brkMu.Unlock()
	if c.brks == nil {
		c.brks = map[string]*breaker{}
	}
	b := c.brks[path]
	if b == nil {
		b = &breaker{}
		c.brks[path] = b
	}
	return b
}
