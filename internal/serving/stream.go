package serving

import (
	"context"
	"math"
	"net/http"
	"time"

	"seagull/internal/obs"
	"seagull/internal/registry"
	"seagull/internal/stream"
	"seagull/internal/timeseries"
)

// This file wires the stream layer into the serving surface: the warm-pool
// adapter the refresher trains through, and the POST /v2/ingest endpoint
// that feeds live telemetry into the ingestor (optionally closing the loop
// with a drift sweep + refresh enqueue in the same call).

// poolInstance adapts a warm-pool Instance to stream.Instance (Forecast
// lives on the embedded Model).
type poolInstance struct{ *Instance }

func (pi poolInstance) Forecast(horizon int) (timeseries.Series, error) {
	return pi.Model.Forecast(horizon)
}

// streamPool adapts a ModelPool to the stream refresher's Pool interface.
type streamPool struct{ p *ModelPool }

func (sp streamPool) Checkout(target registry.Target, version int, modelName string) (stream.Instance, error) {
	inst, _, err := sp.p.Checkout(target, version, modelName)
	if err != nil {
		return nil, err
	}
	return poolInstance{inst}, nil
}

func (sp streamPool) Return(target registry.Target, version int, inst stream.Instance) {
	if pi, ok := inst.(poolInstance); ok {
		sp.p.Return(target, version, pi.Instance)
	}
}

// StreamPool adapts a warm model pool to the stream refresher's Pool
// interface, so drift-triggered retrains reuse the same trained-scratch-
// retaining instances (and invalidation semantics) as serving traffic.
func StreamPool(p *ModelPool) stream.Pool { return streamPool{p: p} }

// --- /v2/ingest wire types ---

// IngestSeries is one server's contiguous run of observations. Its interval
// must match the ingestor's slot granularity. Negative values follow the
// lake extract convention and mark missing observations (skipped — an empty
// slot already reads as missing).
type IngestSeries struct {
	ServerID    string    `json:"server_id"`
	Start       time.Time `json:"start"`
	IntervalMin int       `json:"interval_min"`
	Values      []float64 `json:"values"`
}

// IngestPoint is one standalone observation.
type IngestPoint struct {
	ServerID string `json:"server_id"`
	// TimeUnix is the observation time in Unix seconds.
	TimeUnix int64   `json:"t_unix"`
	Value    float64 `json:"v"`
}

// SweepSpec asks the ingest call to run a drift sweep over one stored
// (region, week) after the appends and queue drifted servers for refresh.
type SweepSpec struct {
	Region string `json:"region"`
	Week   int    `json:"week"`
}

// IngestRequest feeds live telemetry into the stream layer. Either (or
// both) of Servers and Points may be set; ingestion is idempotent, so
// at-least-once clients simply re-send on failure.
type IngestRequest struct {
	Servers []IngestSeries `json:"servers,omitempty"`
	Points  []IngestPoint  `json:"points,omitempty"`
	Sweep   *SweepSpec     `json:"sweep,omitempty"`
}

// SweepResult reports the drift sweep an ingest call ran.
type SweepResult struct {
	Region  string `json:"region"`
	Week    int    `json:"week"`
	Checked int    `json:"checked"`
	Drifted int    `json:"drifted"`
	Skipped int    `json:"skipped"`
	Queued  int    `json:"queued"` // drifted servers newly queued for refresh
	// Dropped counts drifted servers the full refresh queue rejected — the
	// backpressure signal. A server that stays drifted is re-found by the
	// next sweep, so a drop delays its refresh rather than losing it.
	Dropped int      `json:"dropped,omitempty"`
	Servers []string `json:"drifted_servers,omitempty"`
}

// IngestResponse tallies the appended points and carries the optional sweep
// outcome.
type IngestResponse struct {
	Accepted   int          `json:"accepted"`
	Duplicates int          `json:"duplicates"`
	TooOld     int          `json:"too_old"`
	TooNew     int          `json:"too_new"`
	BadValues  int          `json:"bad_values"`
	Skipped    int          `json:"skipped"` // missing observations in series
	Sweep      *SweepResult `json:"sweep,omitempty"`
}

// Ingest appends a telemetry batch into the attached ingestor and, when
// requested, sweeps one stored week for drift and queues the drifted
// servers for refresh. ctx is observed between servers and before the
// sweep; a cancelled call may have ingested a prefix (re-sending is safe —
// appends are idempotent).
func (s *Service) Ingest(ctx context.Context, req IngestRequest) (IngestResponse, *ServiceError) {
	ing := s.cfg.Ingestor
	if ing == nil {
		return IngestResponse{}, svcErr(CodeNotFound, http.StatusNotFound, "no stream ingestor attached to this service")
	}
	total := len(req.Points)
	for i := range req.Servers {
		total += len(req.Servers[i].Values)
	}
	// A sweep-only request (no points) is legal: the sharded router
	// broadcasts the sweep clause to every replica, but each replica
	// receives only its own shard's points — possibly none.
	if total == 0 && req.Sweep == nil {
		return IngestResponse{}, badRequest("ingest batch must contain at least one point")
	}
	if total > s.cfg.MaxIngestPoints {
		return IngestResponse{}, svcErr(CodeTooLarge, http.StatusRequestEntityTooLarge,
			"ingest batch of %d points exceeds the limit of %d", total, s.cfg.MaxIngestPoints)
	}

	var sum stream.AppendSummary
	ingestSpan := obs.TraceFrom(ctx).Begin(obs.StageIngest)
	slotMin := int(ing.Interval() / time.Minute)
	for i := range req.Servers {
		if err := ctx.Err(); err != nil {
			return IngestResponse{}, ctxServiceError(err)
		}
		sr := &req.Servers[i]
		if sr.ServerID == "" {
			return IngestResponse{}, badRequest("servers[%d]: server_id is required", i)
		}
		if sr.IntervalMin != slotMin {
			return IngestResponse{}, badRequest(
				"servers[%d]: interval %dm must match the ingest granularity of %dm", i, sr.IntervalMin, slotMin)
		}
		for j, v := range sr.Values {
			if v < 0 || math.IsNaN(v) {
				sum.Skipped++ // lake convention: negative encodes missing
				continue
			}
			sum.Add(ing.Append(sr.ServerID, sr.Start.Add(time.Duration(j)*ing.Interval()), v))
		}
	}
	for i := range req.Points {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return IngestResponse{}, ctxServiceError(err)
			}
		}
		p := &req.Points[i]
		if p.ServerID == "" {
			return IngestResponse{}, badRequest("points[%d]: server_id is required", i)
		}
		if p.Value < 0 || math.IsNaN(p.Value) {
			sum.Skipped++
			continue
		}
		sum.Add(ing.Append(p.ServerID, time.Unix(p.TimeUnix, 0).UTC(), p.Value))
	}
	ingestSpan.End()

	resp := IngestResponse{
		Accepted:   sum.Appended,
		Duplicates: sum.Duplicates,
		TooOld:     sum.TooOld,
		TooNew:     sum.TooNew,
		BadValues:  sum.BadValues,
		Skipped:    sum.Skipped,
	}
	if req.Sweep != nil {
		if s.cfg.Drift == nil {
			return resp, svcErr(CodeNotFound, http.StatusNotFound, "no drift detector attached to this service")
		}
		if err := ctx.Err(); err != nil {
			return resp, ctxServiceError(err)
		}
		rep, err := s.cfg.Drift.Sweep(ctx, req.Sweep.Region, req.Sweep.Week)
		if err != nil {
			if ctx.Err() != nil {
				return resp, ctxServiceError(ctx.Err())
			}
			return resp, svcErr(CodeInternal, http.StatusInternalServerError, "drift sweep: %v", err)
		}
		sr := &SweepResult{
			Region: rep.Region, Week: rep.Week,
			Checked: rep.Checked, Drifted: rep.Drifted, Skipped: rep.Skipped,
		}
		for _, sd := range rep.DriftedServers {
			sr.Servers = append(sr.Servers, sd.ServerID)
		}
		if s.cfg.Refresher != nil {
			sr.Queued, sr.Dropped = s.cfg.Refresher.EnqueueReport(rep)
		}
		resp.Sweep = sr
	}
	return resp, nil
}

func (s *Service) handleIngestV2(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if serr := s.decode(w, r, &req); serr != nil {
		writeV2Error(w, serr)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, serr := s.Ingest(ctx, req)
	if serr != nil {
		writeV2Error(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
