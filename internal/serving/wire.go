package serving

import (
	"fmt"
	"net/http"

	"seagull/internal/pipeline"
)

// The v2 wire protocol. Every v2 error response is a structured envelope
//
//	{"error": {"code": "<machine-readable>", "message": "<human-readable>"}}
//
// so clients can branch on the code without parsing prose; the v1 endpoints
// keep their original flat {"error": "<message>"} shape through the compat
// shim.

// ErrorCode is a machine-readable v2 error class.
type ErrorCode string

// v2 error codes.
const (
	CodeBadRequest  ErrorCode = "bad_request"       // malformed JSON or invalid fields
	CodeNotFound    ErrorCode = "not_found"         // no deployment / stored document
	CodeUntrainable ErrorCode = "untrainable"       // history cannot support the model
	CodeTooLarge    ErrorCode = "too_large"         // body or batch beyond the limits
	CodeCanceled    ErrorCode = "canceled"          // caller went away mid-request
	CodeDeadline    ErrorCode = "deadline_exceeded" // request exceeded its deadline
	CodeInternal    ErrorCode = "internal"          // unexpected server-side failure
	// CodeOverloaded: admission control shed the request (503, or 429 for
	// ingest). The response carries Retry-After with the limiter's computed
	// backoff; retrying before it elapses only deepens the overload.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeInsufficientHistory: a live_history predict found the server's
	// window thinner than the configured floor — typically right after a
	// cold start (failed restore), when silently forecasting from a sliver
	// of telemetry would be worse than failing loudly.
	CodeInsufficientHistory ErrorCode = "insufficient_history"
)

// ErrorBody is the structured payload inside a v2 error envelope, and the
// per-item error of a batch response.
type ErrorBody struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// errorEnvelope is the v2 error response wrapper.
type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ServiceError is a service failure with its wire representation: the v2
// code, the HTTP status, and the human-readable message. The v1 shim reuses
// Status and Message and drops the code.
type ServiceError struct {
	Code    ErrorCode
	Status  int
	Message string
}

// Error implements error.
func (e *ServiceError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

func svcErr(code ErrorCode, status int, format string, args ...any) *ServiceError {
	return &ServiceError{Code: code, Status: status, Message: fmt.Sprintf(format, args...)}
}

func badRequest(format string, args ...any) *ServiceError {
	return svcErr(CodeBadRequest, http.StatusBadRequest, format, args...)
}

// PredictRequestV2 asks the deployed model of one (scenario, region) to
// forecast `horizon` observations following the supplied history.
type PredictRequestV2 struct {
	Scenario string     `json:"scenario"`
	Region   string     `json:"region"`
	ServerID string     `json:"server_id,omitempty"` // echoed back; useful for correlation
	History  SeriesJSON `json:"history"`
	Horizon  int        `json:"horizon"`
	// WindowPoints, when positive, additionally computes the lowest-load
	// window of that length over the forecast (Definition 7) — the quantity
	// the backup scheduler consumes — so clients need not recompute it.
	WindowPoints int `json:"window_points,omitempty"`
	// LiveHistory asks the server to source the training history from the
	// attached stream ingestor's live window for ServerID instead of a
	// client-supplied History (the two are mutually exclusive). Clients that
	// already stream telemetry through /v2/ingest need not re-upload it to
	// predict, and the response is identical whether the window was fed
	// continuously or restored from a ring snapshot after a restart.
	LiveHistory bool `json:"live_history,omitempty"`
}

// PredictResponseV2 carries the forecast, the serving model's identity, and
// the optional lowest-load window.
type PredictResponseV2 struct {
	ServerID string     `json:"server_id,omitempty"`
	Model    string     `json:"model"`
	Version  int        `json:"version"`
	Forecast SeriesJSON `json:"forecast"`
	// Pooled reports whether a warm model instance served the request.
	Pooled bool `json:"pooled"`
	// Degraded marks a brownout response: the limiter was saturated and the
	// forecast came from the cheap persistent previous-day model instead of
	// the deployed one (Model names it). Accuracy traded for availability.
	Degraded bool `json:"degraded,omitempty"`
	// LLStart/LLAvg describe the lowest-load window when WindowPoints was
	// requested; LLStart is -1 otherwise.
	LLStart int     `json:"ll_start"`
	LLAvg   float64 `json:"ll_avg"`
}

// BatchItem is one server's work inside a batch predict call.
type BatchItem struct {
	ServerID     string     `json:"server_id"`
	History      SeriesJSON `json:"history"`
	Horizon      int        `json:"horizon"`
	WindowPoints int        `json:"window_points,omitempty"`
	// DeadlineMS, when positive, bounds this item's train+forecast to a
	// deadline that many milliseconds after the batch started; a late item
	// fails alone with a deadline_exceeded code instead of cancelling the
	// whole batch. Zero means only the request deadline applies.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// BatchRequest predicts many servers of one (scenario, region) in a single
// call. The service fans the items across its worker pool under guided
// scheduling, with one warm model per worker.
type BatchRequest struct {
	Scenario string      `json:"scenario"`
	Region   string      `json:"region"`
	Servers  []BatchItem `json:"servers"`
}

// BatchItemResult is one server's outcome: either a forecast or an error.
type BatchItemResult struct {
	ServerID string      `json:"server_id"`
	Forecast *SeriesJSON `json:"forecast,omitempty"`
	LLStart  int         `json:"ll_start"`
	LLAvg    float64     `json:"ll_avg"`
	Error    *ErrorBody  `json:"error,omitempty"`
}

// BatchResponse carries per-item outcomes in request order plus the serving
// model's identity.
type BatchResponse struct {
	Model     string            `json:"model"`
	Version   int               `json:"version"`
	Results   []BatchItemResult `json:"results"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
}

// AdviseRequest reviews a customer-selected backup window against the
// predicted lowest-load window (Section 6.2, scheduler.AdviseWindow).
type AdviseRequest struct {
	PredictedDay  SeriesJSON `json:"predicted_day"`
	CustomerStart int        `json:"customer_start"`
	WindowPoints  int        `json:"window_points"`
}

// AdviseResponse mirrors scheduler.Advice on the wire.
type AdviseResponse struct {
	KeepCurrent    bool    `json:"keep_current"`
	SuggestedStart int     `json:"suggested_start"`
	CurrentAvg     float64 `json:"current_avg"`
	SuggestedAvg   float64 `json:"suggested_avg"`
}

// ModelsResponseV2 is the v2 deployment listing with pool effectiveness.
type ModelsResponseV2 struct {
	Models []ModelInfo `json:"models"`
	Pool   PoolStats   `json:"pool"`
}

// PredictionsResponse returns the stored PredictionDocs of one pipeline run
// (region, week) from the document store.
type PredictionsResponse struct {
	Region      string                    `json:"region"`
	Week        int                       `json:"week"`
	Predictions []*pipeline.PredictionDoc `json:"predictions"`
}
