package serving

import (
	"bufio"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"seagull/internal/admission"
	"seagull/internal/obs"
	"seagull/internal/simclock"
	"seagull/internal/stream"
)

// The /varz endpoint (stdlib-only, named after the classic borgmon page)
// exposes the serving process's operational counters as one JSON document:
// warm-pool effectiveness, per-endpoint latency histograms and in-flight
// counts, and — when the stream layer is attached — ingest, drift and
// refresh counters. The same atomics feed the Prometheus rendering on
// /metrics (see metrics.go).

// latencyBoundsMs are the histogram bucket upper bounds in milliseconds; a
// final implicit +Inf bucket catches the rest. Spanning 100µs to 10s covers
// warm-pool predicts (~10µs–1ms) through cold batch trains (seconds). An
// array (not a slice) so the bucket-counter array below is sized from it at
// compile time — editing the bounds can never silently truncate the
// histogram.
var latencyBoundsMs = [...]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// numLatencyBuckets is the bucket-counter width: one per bound plus the
// overflow bucket.
const numLatencyBuckets = len(latencyBoundsMs) + 1

// endpointVars is one endpoint's live counters. All fields are atomics: the
// observation path adds no locks to request handling.
type endpointVars struct {
	inFlight atomic.Int64
	count    atomic.Uint64
	errors   atomic.Uint64
	sumNs    atomic.Int64
	buckets  [numLatencyBuckets]atomic.Uint64 // last = overflow
}

// observe records one finished request.
func (ev *endpointVars) observe(d time.Duration, status int) {
	ev.count.Add(1)
	if status >= 400 {
		ev.errors.Add(1)
	}
	ev.sumNs.Add(int64(d))
	ms := float64(d) / float64(time.Millisecond)
	i := sort.SearchFloat64s(latencyBoundsMs[:], ms)
	ev.buckets[i].Add(1)
}

// EndpointVarz is the wire form of one endpoint's counters.
type EndpointVarz struct {
	Count    uint64 `json:"count"`
	Errors   uint64 `json:"errors"`
	InFlight int64  `json:"in_flight"`
	// LatencyMsSum is the total handling time in milliseconds; divide by
	// Count for the mean.
	LatencyMsSum float64 `json:"latency_ms_sum"`
	// LatencyMsBounds are the histogram bucket upper bounds; LatencyCounts
	// has one extra trailing entry for observations beyond the last bound.
	LatencyMsBounds []float64 `json:"latency_ms_bounds"`
	LatencyCounts   []uint64  `json:"latency_counts"`
}

// Varz is the /varz document.
type Varz struct {
	UptimeSec float64                 `json:"uptime_sec"`
	Pool      PoolStats               `json:"pool"`
	Endpoints map[string]EndpointVarz `json:"endpoints"`
	Ingest    *stream.Stats           `json:"ingest,omitempty"`
	Drift     *stream.DriftStats      `json:"drift,omitempty"`
	Refresh   *stream.RefreshStats    `json:"refresh,omitempty"`
	Sweeper   *stream.SweeperStats    `json:"sweeper,omitempty"`
	// Durability reports WAL commits, incremental snapshots and the boot
	// recovery outcome; Degraded carries the reason when restore was partial
	// (mirrors /readyz).
	Durability *stream.DurabilityStats `json:"durability,omitempty"`
	// Admission reports the adaptive limiter: current limit, in-flight,
	// queue depth, shed/eviction/brownout counters and per-endpoint detail.
	Admission *admission.Stats `json:"admission,omitempty"`
	Degraded  string           `json:"degraded,omitempty"`
}

// varz tracks every instrumented endpoint for one service.
type varz struct {
	mu        sync.Mutex
	clock     simclock.Clock
	started   time.Time
	endpoints map[string]*endpointVars
}

func newVarz(clock simclock.Clock) *varz {
	clock = simclock.Or(clock)
	return &varz{clock: clock, started: clock.Now(), endpoints: map[string]*endpointVars{}}
}

// endpoint returns (creating once) the counters for name. Endpoints are
// registered at mux-build time, so the map is effectively read-only while
// serving.
func (v *varz) endpoint(name string) *endpointVars {
	v.mu.Lock()
	defer v.mu.Unlock()
	ev, ok := v.endpoints[name]
	if !ok {
		ev = &endpointVars{}
		v.endpoints[name] = ev
	}
	return ev
}

// statusWriter captures the response status for the error counter while
// forwarding the optional ResponseWriter upgrades — Flusher for streaming
// responses and Hijacker for connection takeover — that a plain embedding
// would silently swallow behind type assertions. Unwrap additionally lets
// http.ResponseController reach the underlying writer for everything else.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Unwrap exposes the wrapped writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Flush forwards http.Flusher when the underlying writer streams.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards http.Hijacker when the underlying connection allows
// takeover, and reports ErrNotSupported otherwise (matching
// http.ResponseController's contract).
func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if h, ok := w.ResponseWriter.(http.Hijacker); ok {
		return h.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}

// instrument wraps a handler with latency/error/in-flight accounting under
// the given endpoint name and — when the service carries a tracer — opens
// the request's trace: the inbound X-Request-Id (or a minted one) labels
// it, rides the response header, and the trace travels the request context
// so every layer below records spans into it.
func (s *Service) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ev := s.varz.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		ev.inFlight.Add(1)
		defer ev.inFlight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		clock := s.varz.clock
		start := clock.Now()
		if tr := s.tracer.Start(name, r.Header.Get("X-Request-Id")); tr != nil {
			w.Header().Set("X-Request-Id", tr.RequestID())
			r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
			defer func() { s.tracer.Finish(tr, sw.status) }()
		}
		h(sw, r)
		ev.observe(clock.Now().Sub(start), sw.status)
	}
}

// VarzSnapshot assembles the current /varz document.
func (s *Service) VarzSnapshot() Varz {
	out := Varz{
		UptimeSec: simclock.Since(s.varz.clock, s.varz.started).Seconds(),
		Pool:      s.pool.Stats(),
		Endpoints: map[string]EndpointVarz{},
	}
	s.varz.mu.Lock()
	for name, ev := range s.varz.endpoints {
		e := EndpointVarz{
			Count:           ev.count.Load(),
			Errors:          ev.errors.Load(),
			InFlight:        ev.inFlight.Load(),
			LatencyMsSum:    float64(ev.sumNs.Load()) / float64(time.Millisecond),
			LatencyMsBounds: latencyBoundsMs[:],
			LatencyCounts:   make([]uint64, len(ev.buckets)),
		}
		for i := range ev.buckets {
			e.LatencyCounts[i] = ev.buckets[i].Load()
		}
		out.Endpoints[name] = e
	}
	s.varz.mu.Unlock()
	if s.cfg.Ingestor != nil {
		st := s.cfg.Ingestor.Stats()
		out.Ingest = &st
	}
	if s.cfg.Drift != nil {
		st := s.cfg.Drift.Stats()
		out.Drift = &st
	}
	if s.cfg.Refresher != nil {
		st := s.cfg.Refresher.Stats()
		out.Refresh = &st
	}
	if s.cfg.Sweeper != nil {
		st := s.cfg.Sweeper.Stats()
		out.Sweeper = &st
	}
	if s.cfg.Durability != nil {
		st := s.cfg.Durability.Stats()
		out.Durability = &st
	}
	if s.limiter != nil {
		st := s.limiter.Stats()
		out.Admission = &st
	}
	out.Degraded = s.Degraded()
	return out
}

func (s *Service) handleVarz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.VarzSnapshot())
}
