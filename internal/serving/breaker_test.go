package serving

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seagull/internal/simclock"
)

func TestBreakerOpensFailsFastAndRecloses(t *testing.T) {
	// A server that is down for the first `failing` requests, then healthy.
	var calls atomic.Int64
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			writeJSON(w, http.StatusServiceUnavailable, errorEnvelope{Error: ErrorBody{Code: CodeOverloaded, Message: "shed"}})
			return
		}
		writeJSON(w, http.StatusOK, ModelsResponseV2{})
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	c.Breaker = BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond}
	clock := simclock.NewSimulated(time.Unix(0, 0))
	clock.AutoAdvanceSleeps() // backoff waits advance simulated time instantly
	c.Clock = clock
	ctx := context.Background()

	// Three consecutive failures (call 1: two attempts; call 2: opens on its
	// first attempt, before the retry loop can fire a second).
	if _, err := c.ModelsV2(ctx); err == nil {
		t.Fatal("down server must fail")
	}
	_, err := c.ModelsV2(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want circuit-open on the opening failure", err)
	}
	sent := calls.Load()
	if sent != 3 {
		t.Fatalf("server saw %d requests, want exactly Threshold=3 before the circuit opened", sent)
	}

	// Open: calls fail fast without touching the server.
	for i := 0; i < 5; i++ {
		if _, err := c.ModelsV2(ctx); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("call %d err = %v, want fail-fast ErrCircuitOpen", i, err)
		}
	}
	if got := calls.Load(); got != sent {
		t.Fatalf("open circuit leaked %d requests to the server", got-sent)
	}

	// Cooldown elapses on the simulated clock; the server has recovered. The
	// half-open probe flies, succeeds and closes the circuit for everyone.
	healthy.Store(true)
	clock.Advance(60 * time.Millisecond)
	if _, err := c.ModelsV2(ctx); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if _, err := c.ModelsV2(ctx); err != nil {
		t.Fatalf("closed circuit failed: %v", err)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	srv, calls := flappingServer(t, 1<<30, http.StatusServiceUnavailable)
	c := NewClient(srv.URL)
	c.Breaker = BreakerConfig{Threshold: 1, Cooldown: 30 * time.Millisecond}
	clock := simclock.NewSimulated(time.Unix(0, 0))
	c.Clock = clock
	ctx := context.Background()

	if _, err := c.ModelsV2(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want open on first failure (threshold 1)", err)
	}
	clock.Advance(40 * time.Millisecond)
	// The probe fails against the still-down server: reopen immediately.
	if _, err := c.ModelsV2(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe err = %v, want circuit-open", err)
	}
	sent := calls.Load()
	if _, err := c.ModelsV2(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("want fail-fast after failed probe")
	}
	if calls.Load() != sent {
		t.Fatal("reopened circuit let a request through before the cooldown")
	}
}

func TestBreakerRetryAfterSetsOpenDuration(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorEnvelope{Error: ErrorBody{Code: CodeOverloaded, Message: "shed"}})
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	// Tiny cooldown; the server's Retry-After: 1 must override it.
	c.Breaker = BreakerConfig{Threshold: 1, Cooldown: time.Millisecond}
	clock := simclock.NewSimulated(time.Unix(0, 0))
	c.Clock = clock
	ctx := context.Background()
	if _, err := c.ModelsV2(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want circuit-open", err)
	}
	clock.Advance(20 * time.Millisecond) // far past Cooldown, well inside Retry-After
	if _, err := c.ModelsV2(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want still-open (Retry-After outranks Cooldown)", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

func TestBreakerDefinitiveAnswerCloses(t *testing.T) {
	// 404 is a healthy server's answer: it must reset the failure streak.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n%2 == 1 {
			writeJSON(w, http.StatusServiceUnavailable, errorEnvelope{Error: ErrorBody{Code: CodeOverloaded, Message: "shed"}})
			return
		}
		writeJSON(w, http.StatusNotFound, errorEnvelope{Error: ErrorBody{Code: CodeNotFound, Message: "nope"}})
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	c.Breaker = BreakerConfig{Threshold: 3, Cooldown: time.Second}
	ctx := context.Background()
	// Alternating 503/404 never accumulates 3 consecutive failures.
	for i := 0; i < 10; i++ {
		if _, err := c.ModelsV2(ctx); errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("call %d: circuit opened despite interleaved definitive answers", i)
		}
	}
	if got := calls.Load(); got != 10 {
		t.Fatalf("server saw %d requests, want all 10", got)
	}
}

// TestBreakerConcurrentFlappingServer exercises the breaker lifecycle from
// many goroutines against a flapping server under -race: it must open
// (bounding the requests that reach the server), half-open with exactly one
// probe per cooldown, and close once the server heals — without leaking
// goroutines.
func TestBreakerConcurrentFlappingServer(t *testing.T) {
	before := runtime.NumGoroutine()
	var calls atomic.Int64
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			writeJSON(w, http.StatusOK, ModelsResponseV2{})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, errorEnvelope{Error: ErrorBody{Code: CodeOverloaded, Message: "shed"}})
	}))

	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	c.Breaker = BreakerConfig{Threshold: 5, Cooldown: 20 * time.Millisecond}

	const workers = 8
	var wg sync.WaitGroup
	var successes, fastFails atomic.Int64
	stop := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := c.ModelsV2(context.Background())
				switch {
				case err == nil:
					successes.Add(1)
				case errors.Is(err, ErrCircuitOpen):
					fastFails.Add(1)
				}
			}
		}()
	}

	time.Sleep(150 * time.Millisecond) // unhealthy phase: breaker cycles open/probe
	unhealthyCalls := calls.Load()
	healthy.Store(true)
	time.Sleep(150 * time.Millisecond) // healthy phase: probe closes the circuit
	close(stop)
	wg.Wait()
	srv.Close()

	if fastFails.Load() == 0 {
		t.Error("no fail-fast rejections — the breaker never opened")
	}
	if successes.Load() == 0 {
		t.Error("no successes after recovery — the breaker never reclosed")
	}
	// While unhealthy, ~150ms/20ms cooldowns ≈ 8 probe windows; with the
	// opening streaks that bounds server traffic far below the thousands an
	// unbroken 8-worker hammer would deliver. Allow a generous margin.
	if unhealthyCalls > 200 {
		t.Errorf("server saw %d requests while down; breaker did not bound the hammering", unhealthyCalls)
	}

	// No goroutine leaks: the client spawns none of its own, so the count
	// must settle back to (roughly) the pre-test level once transports idle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+2 {
		t.Errorf("goroutines: %d before, %d after — leak", before, now)
	}
}

// TestClientIngestRetries429: the overload path of satellite ingest — a 429
// shed with Retry-After is retried under the existing backoff budget and
// succeeds once admission re-opens.
func TestClientIngestRetries429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorEnvelope{Error: ErrorBody{Code: CodeOverloaded, Message: "ingest shed"}})
			return
		}
		writeJSON(w, http.StatusOK, IngestResponse{Accepted: 1})
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	clock := simclock.NewSimulated(time.Unix(0, 0))
	clock.AutoAdvanceSleeps() // the Retry-After wait advances simulated time
	c.Clock = clock
	start := clock.Now()
	resp, err := c.Ingest(context.Background(), IngestRequest{
		Points: []IngestPoint{{ServerID: "s", TimeUnix: 0, Value: 1}},
	})
	if err != nil {
		t.Fatalf("ingest through 429 failed: %v", err)
	}
	if resp.Accepted != 1 || calls.Load() != 2 {
		t.Fatalf("accepted=%d calls=%d, want 1 accepted over 2 calls", resp.Accepted, calls.Load())
	}
	// The server's Retry-After paced the retry (~1s of simulated time), not
	// the 1ms backoff — and no real second was slept.
	if elapsed := clock.Now().Sub(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry waited only %v; Retry-After: 1 must pace the 429 retry", elapsed)
	}
}

// TestClientIngestRespectsBudgetOn429: sustained 429s exhaust MaxElapsed
// instead of retrying forever.
func TestClientIngestRespectsBudgetOn429(t *testing.T) {
	srv, calls := flappingServer(t, 1<<30, http.StatusTooManyRequests)
	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond, MaxElapsed: 60 * time.Millisecond}
	clock := simclock.NewSimulated(time.Unix(0, 0))
	clock.AutoAdvanceSleeps()
	c.Clock = clock
	_, err := c.Ingest(context.Background(), IngestRequest{
		Points: []IngestPoint{{ServerID: "s", TimeUnix: 0, Value: 1}},
	})
	var apiErr *APIError
	if err == nil || !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want budget exhaustion wrapping the 429", err)
	}
	if got := calls.Load(); got < 2 || got >= 100 {
		t.Fatalf("server saw %d requests, want a few paced attempts", got)
	}
}
