package serving

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"seagull/internal/forecast"
	"seagull/internal/registry"
)

// The v1 golden wire test: the compatibility shim must keep emitting the
// exact bytes the original single-endpoint handler produced — struct field
// order, flat {"error": ...} bodies, trailing newline from json.Encoder and
// all. Any diff here is a v1 wire break.

func postRaw(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

func TestV1PredictGoldenWire(t *testing.T) {
	srv, reg := testServer(t)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "westus"}, forecast.NamePersistentPrevDay, "")

	// One day of hourly observations 0..23: the persistent prev-day forecast
	// replays them verbatim starting at the next midnight.
	req := `{"scenario":"backup","region":"westus","horizon":24,` +
		`"history":{"start":"2019-12-01T00:00:00Z","interval_min":60,` +
		`"values":[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23]}}`

	status, body := postRaw(t, srv.URL+"/v1/predict", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body = %s", status, body)
	}
	want := `{"model":"pf-prev-day","version":1,"forecast":` +
		`{"start":"2019-12-02T00:00:00Z","interval_min":60,` +
		`"values":[0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23]}}` + "\n"
	if body != want {
		t.Errorf("v1 predict wire format changed:\n got: %q\nwant: %q", body, want)
	}
}

func TestV1ErrorGoldenWire(t *testing.T) {
	srv, reg := testServer(t)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")

	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantBody   string
	}{
		{
			"zero horizon",
			`{"scenario":"backup","region":"r","horizon":0,` +
				`"history":{"start":"2019-12-01T00:00:00Z","interval_min":5,"values":[1]}}`,
			http.StatusBadRequest,
			`{"error":"horizon must be positive"}` + "\n",
		},
		{
			"zero interval",
			`{"scenario":"backup","region":"r","horizon":10,` +
				`"history":{"start":"2019-12-01T00:00:00Z","interval_min":0,"values":[1]}}`,
			http.StatusBadRequest,
			`{"error":"history must be a non-empty series with a positive interval"}` + "\n",
		},
		{
			"no deployment",
			`{"scenario":"backup","region":"nowhere","horizon":10,` +
				`"history":{"start":"2019-12-01T00:00:00Z","interval_min":5,"values":[1]}}`,
			http.StatusNotFound,
			`{"error":"registry: no deployment: backup/nowhere"}` + "\n",
		},
	}
	for _, tc := range cases {
		status, body := postRaw(t, srv.URL+"/v1/predict", tc.body)
		if status != tc.wantStatus || body != tc.wantBody {
			t.Errorf("%s: got %d %q, want %d %q", tc.name, status, body, tc.wantStatus, tc.wantBody)
		}
	}
}

// TestV1AcceptsHorizonBeyondV2Limit: the legacy endpoint took any positive
// horizon; the v2 MaxHorizon cap must not leak into the shim.
func TestV1AcceptsHorizonBeyondV2Limit(t *testing.T) {
	srv, reg := testServer(t)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "westus"}, forecast.NamePersistentPrevDay, "")
	req := `{"scenario":"backup","region":"westus","horizon":8640,` +
		`"history":{"start":"2019-12-01T00:00:00Z","interval_min":5,"values":[` +
		strings.Repeat("1,", 287) + `1]}}`
	status, body := postRaw(t, srv.URL+"/v1/predict", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body = %.200s", status, body)
	}
}

func TestV1ModelsGoldenWire(t *testing.T) {
	srv, reg := testServer(t)
	tgt := registry.Target{Scenario: "backup", Region: "westus"}
	v := reg.Deploy(tgt, forecast.NamePersistentPrevDay, "")
	if err := reg.RecordAccuracy(tgt, v, 0.5); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	want := `[{"scenario":"backup","region":"westus","model":"pf-prev-day","version":1,"accuracy":0.5}]` + "\n"
	if string(data) != want {
		t.Errorf("v1 models wire format changed:\n got: %q\nwant: %q", data, want)
	}
}
