package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"seagull/internal/timeseries"
)

// APIError is a structured error decoded from a v2 error envelope. v1
// responses and undecodable bodies degrade to CodeInternal with the raw
// body as the message.
type APIError struct {
	Status  int
	Code    ErrorCode
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("serving: %d %s: %s", e.Status, e.Code, e.Message)
}

// Client is the typed Go client for the serving endpoints, v1 and v2.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for baseURL (no trailing slash required).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 60 * time.Second}}
}

// do posts (or gets, when in is nil) JSON and decodes the response into out,
// converting non-200 responses into *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError reads a failed response into an *APIError, preferring the
// v2 envelope and degrading to the raw body.
func decodeAPIError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env errorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
	}
	return &APIError{Status: resp.StatusCode, Code: CodeInternal, Message: string(bytes.TrimSpace(data))}
}

// --- v2 methods ---

// PredictV2 posts a v2 predict request.
func (c *Client) PredictV2(ctx context.Context, req PredictRequestV2) (PredictResponseV2, error) {
	var out PredictResponseV2
	err := c.do(ctx, http.MethodPost, "/v2/predict", req, &out)
	return out, err
}

// PredictBatch posts a batch of servers in one call.
func (c *Client) PredictBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v2/predict/batch", req, &out)
	return out, err
}

// Advise reviews a customer-selected backup window.
func (c *Client) Advise(ctx context.Context, req AdviseRequest) (AdviseResponse, error) {
	var out AdviseResponse
	err := c.do(ctx, http.MethodPost, "/v2/advise", req, &out)
	return out, err
}

// ModelsV2 fetches the v2 deployment listing with pool statistics.
func (c *Client) ModelsV2(ctx context.Context) (ModelsResponseV2, error) {
	var out ModelsResponseV2
	err := c.do(ctx, http.MethodGet, "/v2/models", nil, &out)
	return out, err
}

// Predictions fetches the stored pipeline predictions of one (region, week).
func (c *Client) Predictions(ctx context.Context, region string, week int) (PredictionsResponse, error) {
	var out PredictionsResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v2/predictions/%s/%d", region, week), nil, &out)
	return out, err
}

// Ready reports whether the endpoint accepts new traffic (/readyz).
func (c *Client) Ready(ctx context.Context) bool {
	err := c.do(ctx, http.MethodGet, "/readyz", nil, nil)
	return err == nil
}

// --- v1 methods (kept for compatibility) ---

// Predict posts a history series to the v1 endpoint and returns the
// forecast.
func (c *Client) Predict(scenario, region string, history timeseries.Series, horizon int) (timeseries.Series, PredictResponse, error) {
	req := PredictRequest{
		Scenario: scenario, Region: region,
		History: FromSeries(history), Horizon: horizon,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return timeseries.Series{}, PredictResponse{}, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return timeseries.Series{}, PredictResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return timeseries.Series{}, PredictResponse{}, fmt.Errorf("serving: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return timeseries.Series{}, PredictResponse{}, err
	}
	return pr.Forecast.ToSeries(), pr, nil
}

// Models fetches the v1 deployment listing.
func (c *Client) Models() ([]ModelInfo, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serving: %s", resp.Status)
	}
	var out []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthy reports whether the endpoint responds to /healthz.
func (c *Client) Healthy() bool {
	resp, err := c.HTTP.Get(c.BaseURL + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
