package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"seagull/internal/simclock"
	"seagull/internal/timeseries"
)

// APIError is a structured error decoded from a v2 error envelope. v1
// responses and undecodable bodies degrade to CodeInternal with the raw
// body as the message.
type APIError struct {
	Status  int
	Code    ErrorCode
	Message string
	// RetryAfter is the server's Retry-After hint, when the response carried
	// one (0 otherwise). The retry loop prefers it over its own backoff.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("serving: %d %s: %s", e.Status, e.Code, e.Message)
}

// RetryConfig bounds the client's retry loop. Retries target the drain
// window of a rolling restart: a server flips /readyz to draining and soon
// refuses connections, so a request may hit a transport error or a 503
// until the replacement is up. Every v2 request is safe to retry — predicts
// are pure, ingest appends are idempotent (first write per slot wins).
type RetryConfig struct {
	// MaxAttempts is the total number of tries (first attempt included);
	// values below 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the first backoff; each retry doubles it up to MaxDelay,
	// and the actual sleep is uniformly jittered over [delay/2, delay) so
	// synchronized clients do not re-converge on the recovering server.
	// A 503 carrying a Retry-After header overrides the computed backoff —
	// the server knows its own drain schedule better than the client does.
	// Defaults: 50ms base, 1s max.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// MaxElapsed is the total retry budget, measured from the first attempt:
	// when the next backoff would overrun it, the loop gives up immediately
	// instead of sleeping, so callers can bound worst-case latency. 0 means
	// no budget (retries bounded by MaxAttempts and ctx alone).
	MaxElapsed time.Duration
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Second
	}
	return c
}

// Client is the typed Go client for the serving endpoints, v1 and v2.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Retry, when MaxAttempts ≥ 2, retries requests that failed with a
	// transport error, a 503 or a 429 (the drain/restart and overload
	// signals) with jittered exponential backoff. The readiness probe
	// itself never retries — its job is to observe draining, not to wait
	// it out.
	Retry RetryConfig
	// Breaker, when Threshold > 0, adds a per-path circuit breaker: after
	// that many consecutive retryable failures the path fails fast (wrapped
	// ErrCircuitOpen) instead of hammering an overloaded or down endpoint,
	// then recovers through a single half-open probe after the cooldown (or
	// the server's Retry-After). Zero value: disabled.
	Breaker BreakerConfig
	// Clock paces retries and breaker cooldowns; nil means the wall clock.
	// Simulated-clock tests advance it instead of sleeping for real.
	Clock simclock.Clock

	brkMu sync.Mutex
	brks  map[string]*breaker
}

// NewClient returns a client for baseURL (no trailing slash required).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 60 * time.Second}}
}

// do posts (or gets, when in is nil) JSON and decodes the response into out,
// converting non-200 responses into *APIError, with retries per c.Retry.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	rc := c.Retry.withDefaults()
	clock := simclock.Or(c.Clock)
	brk := c.breakerFor(path)
	cooldown := c.Breaker.Cooldown
	if cooldown <= 0 {
		cooldown = time.Second
	}
	start := clock.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if brk != nil {
			if berr := brk.allow(clock.Now()); berr != nil {
				if lastErr != nil {
					return fmt.Errorf("%w (last failure: %v)", berr, lastErr)
				}
				return berr
			}
		}
		err := c.doOnce(ctx, method, path, data, out)
		if err == nil || !retryable(err) {
			if brk != nil {
				// A definitive non-retryable answer (e.g. 404) also proves
				// the server is up; both close the circuit.
				brk.onSuccess()
			}
			return err
		}
		if brk != nil {
			var ra time.Duration
			if apiErr, ok := err.(*APIError); ok {
				ra = apiErr.RetryAfter
			}
			if brk.onFailure(c.Breaker.Threshold, cooldown, ra, clock.Now()) {
				// The circuit just opened: stop hammering this endpoint even
				// if the attempt budget has room.
				return fmt.Errorf("%w after consecutive failures: %v", ErrCircuitOpen, err)
			}
		}
		if attempt+1 >= rc.MaxAttempts {
			return err
		}
		lastErr = err
		delay := rc.BaseDelay << attempt
		if delay > rc.MaxDelay || delay <= 0 {
			delay = rc.MaxDelay
		}
		// Uniform jitter over [delay/2, delay).
		delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		// A server-provided Retry-After outranks the computed backoff: it is
		// the drain schedule, not a guess.
		if apiErr, ok := err.(*APIError); ok && apiErr.RetryAfter > 0 {
			delay = apiErr.RetryAfter
		}
		if rc.MaxElapsed > 0 && clock.Now().Sub(start)+delay > rc.MaxElapsed {
			// The budget would expire mid-backoff; failing now keeps the
			// caller's worst-case latency bounded by MaxElapsed.
			return fmt.Errorf("serving: retry budget %v exhausted after %d attempts: %w",
				rc.MaxElapsed, attempt+1, lastErr)
		}
		if err := clock.Sleep(ctx, delay); err != nil {
			return fmt.Errorf("serving: retry abandoned after %d attempts: %w (last: %v)",
				attempt+1, err, lastErr)
		}
	}
}

// retryable reports whether an attempt's failure is a drain/restart or
// overload signal worth retrying: transport errors (connection
// refused/reset mid-restart), 503 (draining or shed) and 429 (paced ingest
// shed — the server's Retry-After tells the loop when). Other structured
// API errors are definitive.
func retryable(err error) bool {
	if apiErr, ok := err.(*APIError); ok {
		return apiErr.Status == http.StatusServiceUnavailable ||
			apiErr.Status == http.StatusTooManyRequests
	}
	return true // transport-level failure
}

// doOnce performs a single request attempt over the pre-marshalled body.
func (c *Client) doOnce(ctx context.Context, method, path string, data []byte, out any) error {
	var body io.Reader
	if data != nil {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError reads a failed response into an *APIError, preferring the
// v2 envelope and degrading to the raw body.
func decodeAPIError(resp *http.Response) error {
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env errorEnvelope
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message, RetryAfter: retryAfter}
	}
	return &APIError{Status: resp.StatusCode, Code: CodeInternal, Message: string(bytes.TrimSpace(data)), RetryAfter: retryAfter}
}

// parseRetryAfter decodes a Retry-After header: delta-seconds or an HTTP
// date. Absent, malformed or already-elapsed values yield 0.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// Do performs one JSON request against path under the client's full retry
// and circuit-breaker policy, decoding the response into out. in may be any
// marshalable value (json.RawMessage relays a pre-encoded body verbatim);
// nil sends no body. The sharded router's stateless forwards are built on
// it.
func (c *Client) Do(ctx context.Context, method, path string, in, out any) error {
	return c.do(ctx, method, path, in, out)
}

// --- v2 methods ---

// PredictV2 posts a v2 predict request.
func (c *Client) PredictV2(ctx context.Context, req PredictRequestV2) (PredictResponseV2, error) {
	var out PredictResponseV2
	err := c.do(ctx, http.MethodPost, "/v2/predict", req, &out)
	return out, err
}

// PredictBatch posts a batch of servers in one call.
func (c *Client) PredictBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v2/predict/batch", req, &out)
	return out, err
}

// Advise reviews a customer-selected backup window.
func (c *Client) Advise(ctx context.Context, req AdviseRequest) (AdviseResponse, error) {
	var out AdviseResponse
	err := c.do(ctx, http.MethodPost, "/v2/advise", req, &out)
	return out, err
}

// ModelsV2 fetches the v2 deployment listing with pool statistics.
func (c *Client) ModelsV2(ctx context.Context) (ModelsResponseV2, error) {
	var out ModelsResponseV2
	err := c.do(ctx, http.MethodGet, "/v2/models", nil, &out)
	return out, err
}

// Predictions fetches the stored pipeline predictions of one (region, week).
func (c *Client) Predictions(ctx context.Context, region string, week int) (PredictionsResponse, error) {
	var out PredictionsResponse
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v2/predictions/%s/%d", region, week), nil, &out)
	return out, err
}

// Ingest posts a telemetry batch to the stream layer. Safe to re-send on
// failure: appends are idempotent (replays count as duplicates). A 429 from
// admission control (ingest shed under overload) is retried under the same
// backoff budget as a drain 503, honoring the server's Retry-After pacing.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (IngestResponse, error) {
	var out IngestResponse
	err := c.do(ctx, http.MethodPost, "/v2/ingest", req, &out)
	return out, err
}

// Varz fetches the operational counters document.
func (c *Client) Varz(ctx context.Context) (Varz, error) {
	var out Varz
	err := c.do(ctx, http.MethodGet, "/varz", nil, &out)
	return out, err
}

// Ready reports whether the endpoint accepts new traffic (/readyz). It
// deliberately bypasses the retry loop: its job is to observe the draining
// state, not to wait it out.
func (c *Client) Ready(ctx context.Context) bool {
	err := c.doOnce(ctx, http.MethodGet, "/readyz", nil, nil)
	return err == nil
}

// --- v1 methods (kept for compatibility) ---

// Predict posts a history series to the v1 endpoint and returns the
// forecast.
func (c *Client) Predict(scenario, region string, history timeseries.Series, horizon int) (timeseries.Series, PredictResponse, error) {
	req := PredictRequest{
		Scenario: scenario, Region: region,
		History: FromSeries(history), Horizon: horizon,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return timeseries.Series{}, PredictResponse{}, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return timeseries.Series{}, PredictResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return timeseries.Series{}, PredictResponse{}, fmt.Errorf("serving: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return timeseries.Series{}, PredictResponse{}, err
	}
	return pr.Forecast.ToSeries(), pr, nil
}

// Models fetches the v1 deployment listing.
func (c *Client) Models() ([]ModelInfo, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serving: %s", resp.Status)
	}
	var out []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthy reports whether the endpoint responds to /healthz.
func (c *Client) Healthy() bool {
	resp, err := c.HTTP.Get(c.BaseURL + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
