package serving

import (
	"testing"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/registry"
	"seagull/internal/timeseries"
)

var poolTarget = registry.Target{Scenario: "backup", Region: "westus"}

func TestPoolCheckoutReturnReuse(t *testing.T) {
	p := NewModelPool(PoolConfig{})
	m1, hit, err := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	if err != nil || hit {
		t.Fatalf("first checkout: hit=%v err=%v", hit, err)
	}
	p.Return(poolTarget, 1, m1)
	m2, hit, err := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	if err != nil || !hit {
		t.Fatalf("second checkout: hit=%v err=%v", hit, err)
	}
	if m1 != m2 {
		t.Error("warm checkout must hand back the returned instance")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestPoolVersionIsPartOfTheKey(t *testing.T) {
	p := NewModelPool(PoolConfig{})
	m1, _, _ := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	p.Return(poolTarget, 1, m1)
	_, hit, _ := p.Checkout(poolTarget, 2, forecast.NamePersistentPrevDay)
	if hit {
		t.Error("a new version must miss the old version's warm instances")
	}
}

func TestPoolMaxIdleBound(t *testing.T) {
	p := NewModelPool(PoolConfig{MaxIdle: 1})
	m1, _, _ := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	m2, _, _ := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	p.Return(poolTarget, 1, m1)
	p.Return(poolTarget, 1, m2) // beyond MaxIdle: dropped
	if st := p.Stats(); st.Idle != 1 {
		t.Errorf("idle = %d, want 1", st.Idle)
	}
}

func TestPoolLRUEviction(t *testing.T) {
	p := NewModelPool(PoolConfig{MaxEntries: 2})
	slot := func(region string) registry.Target {
		return registry.Target{Scenario: "backup", Region: region}
	}
	for _, region := range []string{"a", "b", "c"} {
		m, _, _ := p.Checkout(slot(region), 1, forecast.NamePersistentPrevDay)
		p.Return(slot(region), 1, m)
	}
	st := p.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	// "a" was least recently used and must be cold again.
	if _, hit, _ := p.Checkout(slot("a"), 1, forecast.NamePersistentPrevDay); hit {
		t.Error("evicted slot must miss")
	}
	if _, hit, _ := p.Checkout(slot("c"), 1, forecast.NamePersistentPrevDay); !hit {
		t.Error("recently used slot must stay warm")
	}
}

func TestPoolNegativeMaxEntriesUsesDefault(t *testing.T) {
	p := NewModelPool(PoolConfig{MaxEntries: -1})
	inst, _, err := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	if err != nil {
		t.Fatal(err)
	}
	p.Return(poolTarget, 1, inst) // must not panic in the eviction loop
	if st := p.Stats(); st.Entries != 1 || st.Idle != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolDisabled(t *testing.T) {
	p := NewModelPool(PoolConfig{MaxIdle: -1})
	m1, hit, err := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	if err != nil || hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	p.Return(poolTarget, 1, m1)
	m2, hit, _ := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	if hit || m1 == m2 {
		t.Error("disabled pool must build a fresh model per checkout")
	}
	if st := p.Stats(); st.Entries != 0 || st.Idle != 0 {
		t.Errorf("disabled pool stats = %+v", st)
	}
}

func TestPoolInvalidateOnRegistryChange(t *testing.T) {
	reg := registry.New(nil)
	p := NewModelPool(PoolConfig{})
	p.Bind(reg)

	v1 := reg.Deploy(poolTarget, forecast.NamePersistentPrevDay, "")
	m, _, _ := p.Checkout(poolTarget, v1, forecast.NamePersistentPrevDay)
	p.Return(poolTarget, v1, m)
	if st := p.Stats(); st.Idle != 1 {
		t.Fatalf("idle = %d, want 1", st.Idle)
	}

	// Promote: the watcher must drop the warm slot.
	reg.Deploy(poolTarget, forecast.NameSSA, "")
	st := p.Stats()
	if st.Idle != 0 || st.Invalidations == 0 {
		t.Fatalf("after promote: stats = %+v, want 0 idle and >0 invalidations", st)
	}
	if _, hit, _ := p.Checkout(poolTarget, v1, forecast.NamePersistentPrevDay); hit {
		t.Error("stale version must be cold after a promote")
	}
}

func TestPoolInvalidateOnRollback(t *testing.T) {
	reg := registry.New(nil)
	p := NewModelPool(PoolConfig{})
	p.Bind(reg)

	v1 := reg.Deploy(poolTarget, forecast.NamePersistentPrevDay, "")
	if err := reg.RecordAccuracy(poolTarget, v1, 0.95); err != nil {
		t.Fatal(err)
	}
	v2 := reg.Deploy(poolTarget, forecast.NameSSA, "")
	m, _, _ := p.Checkout(poolTarget, v2, forecast.NameSSA)
	p.Return(poolTarget, v2, m)

	if _, err := reg.Fallback(poolTarget, 0.9); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Idle != 0 {
		t.Fatalf("after rollback: idle = %d, want 0", st.Idle)
	}
}

// TestReturnAfterInvalidateDropsInstance: an instance checked out before an
// invalidation must be discarded on Return, not resurrect a stale slot.
func TestReturnAfterInvalidateDropsInstance(t *testing.T) {
	p := NewModelPool(PoolConfig{})
	inst, _, err := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	if err != nil {
		t.Fatal(err)
	}
	p.Invalidate(poolTarget)
	p.Return(poolTarget, 1, inst)
	if st := p.Stats(); st.Entries != 0 || st.Idle != 0 {
		t.Fatalf("stale return resurrected a slot: %+v", st)
	}
	if _, hit, _ := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay); hit {
		t.Error("invalidated target must be cold")
	}
	// A fresh checkout/return cycle after the invalidation pools normally.
	inst2, _, _ := p.Checkout(poolTarget, 1, forecast.NamePersistentPrevDay)
	p.Return(poolTarget, 1, inst2)
	if st := p.Stats(); st.Idle != 1 {
		t.Fatalf("post-invalidation return should pool: %+v", st)
	}
}

// warmHistory builds a deterministic daily-pattern week.
func warmHistory(seed int64, days int) timeseries.Series {
	vals := make([]float64, days*288)
	for i := range vals {
		base := 10.0
		if i%288 >= 96 && i%288 < 192 {
			base = 55
		}
		vals[i] = base + float64((int(seed)+i*31)%9)
	}
	return timeseries.New(time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC), 5*time.Minute, vals)
}

// TestWarmPoolForecastEquivalence is the acceptance gate for pool reuse: a
// model checked out warm (already trained on some other server's history)
// and retrained must forecast bit-identically to a fresh instance — for the
// stateful models SSA, FFNN and the additive trainer, not just persistents.
func TestWarmPoolForecastEquivalence(t *testing.T) {
	for _, name := range []string{forecast.NameSSA, forecast.NameFFNN, forecast.NameAdditive, forecast.NamePersistentPrevDay} {
		t.Run(name, func(t *testing.T) {
			p := NewModelPool(PoolConfig{})
			warm, _, err := p.Checkout(poolTarget, 1, name)
			if err != nil {
				t.Fatal(err)
			}
			// Dirty the instance on an unrelated server, as batch serving does.
			if _, err := warm.TrainOn(warmHistory(3, 9)); err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Model.Forecast(288); err != nil {
				t.Fatal(err)
			}
			p.Return(poolTarget, 1, warm)

			again, hit, err := p.Checkout(poolTarget, 1, name)
			if err != nil || !hit {
				t.Fatalf("hit=%v err=%v", hit, err)
			}
			target := warmHistory(8, 7)
			skipped, err := again.TrainOn(target)
			if err != nil {
				t.Fatal(err)
			}
			if skipped {
				t.Fatal("a different history must not skip the retrain")
			}
			warmPred, err := again.Model.Forecast(288)
			if err != nil {
				t.Fatal(err)
			}

			fresh, err := forecast.New(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			freshPred, err := forecast.PredictDay(fresh, target)
			if err != nil {
				t.Fatal(err)
			}
			if warmPred.Len() != freshPred.Len() {
				t.Fatalf("len %d vs %d", warmPred.Len(), freshPred.Len())
			}
			for i := range warmPred.Values {
				if warmPred.Values[i] != freshPred.Values[i] {
					t.Fatalf("forecast diverges at %d: warm %v fresh %v",
						i, warmPred.Values[i], freshPred.Values[i])
				}
			}
		})
	}
}

// TestTrainMemoSkipsIdenticalHistory pins the retrain-skip contract for a
// deterministic-inference model: identical history skips, and the skipped
// forecast is bit-identical to a fresh model's.
func TestTrainMemoSkipsIdenticalHistory(t *testing.T) {
	p := NewModelPool(PoolConfig{})
	inst, _, err := p.Checkout(poolTarget, 1, forecast.NameSSA)
	if err != nil {
		t.Fatal(err)
	}
	hist := warmHistory(8, 7)
	if skipped, err := inst.TrainOn(hist); err != nil || skipped {
		t.Fatalf("first train: skipped=%v err=%v", skipped, err)
	}
	if _, err := inst.Model.Forecast(288); err != nil {
		t.Fatal(err)
	}
	// Same bits in a different backing array must skip — the memo compares
	// values, never slice identity; and client-supplied bytes are verified
	// in full, so nothing short of bit-identity can ever skip.
	skipped, err := inst.TrainOn(hist.Clone())
	if err != nil || !skipped {
		t.Fatalf("identical retrain: skipped=%v err=%v", skipped, err)
	}
	memoPred, err := inst.Model.Forecast(288)
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := forecast.New(forecast.NameSSA, 0)
	freshPred, err := forecast.PredictDay(fresh, hist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range memoPred.Values {
		if memoPred.Values[i] != freshPred.Values[i] {
			t.Fatalf("memoized forecast diverges at %d", i)
		}
	}

	// One changed observation must invalidate the memo.
	changed := hist.Clone()
	changed.Values[100] += 0.5
	if skipped, err := inst.TrainOn(changed); err != nil || skipped {
		t.Fatalf("changed history: skipped=%v err=%v", skipped, err)
	}
}

// panicOnceModel trains normally except for one call that panics mid-train,
// simulating corruption of the retained state.
type panicOnceModel struct {
	forecast.Model
	calls   int
	panicAt int
}

func (m *panicOnceModel) Train(h timeseries.Series) error {
	m.calls++
	if m.calls == m.panicAt {
		panic("mid-train corruption")
	}
	return m.Model.Train(h)
}

func (m *panicOnceModel) DeterministicInference() bool { return true }

// TestTrainMemoInvalidatedByPanickedTrain: a Train that panics (recovered by
// the batch path's safeCall) must leave the instance untrained, so a later
// request with the previously memoized history retrains instead of serving
// a forecast from half-mutated state.
func TestTrainMemoInvalidatedByPanickedTrain(t *testing.T) {
	inner, err := forecast.New(forecast.NamePersistentPrevDay, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst := newInstance(&panicOnceModel{Model: inner, panicAt: 2})
	if !inst.memoOK {
		t.Fatal("wrapper must advertise deterministic inference")
	}
	h1 := warmHistory(1, 7)
	if _, err := inst.TrainOn(h1); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected the second Train to panic")
			}
		}()
		_, _ = inst.TrainOn(warmHistory(2, 7))
	}()
	skipped, err := inst.TrainOn(h1)
	if err != nil {
		t.Fatal(err)
	}
	if skipped {
		t.Fatal("memo must not survive a panicked Train")
	}
}

// TestAdditiveNeverSkipsTrain: the additive model consumes RNG at inference,
// so the memo must never skip its retrain — each request re-seeds in Train,
// keeping every response equivalent to a fresh model's.
func TestAdditiveNeverSkipsTrain(t *testing.T) {
	p := NewModelPool(PoolConfig{})
	inst, _, err := p.Checkout(poolTarget, 1, forecast.NameAdditive)
	if err != nil {
		t.Fatal(err)
	}
	hist := warmHistory(8, 7)
	for round := 0; round < 2; round++ {
		skipped, err := inst.TrainOn(hist)
		if err != nil {
			t.Fatal(err)
		}
		if skipped {
			t.Fatal("additive retrain must never be skipped")
		}
		got, err := inst.Model.Forecast(288)
		if err != nil {
			t.Fatal(err)
		}
		fresh, _ := forecast.New(forecast.NameAdditive, 0)
		want, err := forecast.PredictDay(fresh, hist)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Values {
			if got.Values[i] != want.Values[i] {
				t.Fatalf("round %d: additive forecast diverges at %d", round, i)
			}
		}
	}
}
