// Package serving exposes deployed forecast models through a REST service,
// mirroring the AML-deployed REST endpoints of Section 2.2 at production
// shape: a long-lived, concurrency-safe Service carries a warm model pool
// per (scenario, region, version) — checked-out instances reuse the scratch
// buffers the models retain across Train calls — and speaks a versioned wire
// protocol. v2 adds batch prediction, window advice, stored-prediction
// lookup, structured error codes and request limits; the original v1
// endpoints keep serving through a thin compatibility shim.
//
// Endpoints:
//
//	GET  /healthz                          liveness
//	GET  /readyz                           readiness (flips during drain)
//	POST /v1/predict                       single forecast (legacy wire format)
//	GET  /v1/models                        deployment listing (legacy wire format)
//	POST /v2/predict                       single forecast + lowest-load window
//	POST /v2/predict/batch                 many servers, fanned across the pool
//	POST /v2/advise                        customer backup-window review
//	GET  /v2/models                        deployments + pool statistics
//	GET  /v2/predictions/{region}/{week}   stored pipeline predictions
//	POST /v2/ingest                        live telemetry (stream layer)
//	GET  /varz                             operational counters
//
// Concurrency: one Service is meant to carry a process's whole traffic; all
// endpoints are safe for concurrent use, pool checkouts hand exclusive
// instances, and /varz counters are atomics off the request path.
// Equivalence: a warm-pool forecast is pinned bit-identical to a fresh
// model's (pool_test.go), and a /v2/predict carrying live_history returns
// exactly what the same request with the explicit live window would — pool
// reuse and server-side history are latency optimizations, never accuracy
// trades.
package serving

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"seagull/internal/registry"
	"seagull/internal/timeseries"
)

// SeriesJSON is the wire form of a time series (shared by v1 and v2).
type SeriesJSON struct {
	Start       time.Time `json:"start"`
	IntervalMin int       `json:"interval_min"`
	Values      []float64 `json:"values"`
}

// ToSeries converts the wire form into a Series.
func (s SeriesJSON) ToSeries() timeseries.Series {
	return timeseries.New(s.Start, time.Duration(s.IntervalMin)*time.Minute, s.Values)
}

// FromSeries converts a Series into its wire form.
func FromSeries(s timeseries.Series) SeriesJSON {
	return SeriesJSON{Start: s.Start, IntervalMin: int(s.Interval / time.Minute), Values: s.Values}
}

// PredictRequest is the v1 predict request: one (scenario, region), one
// history, no batch, no window. Kept wire-compatible forever.
type PredictRequest struct {
	Scenario string     `json:"scenario"`
	Region   string     `json:"region"`
	History  SeriesJSON `json:"history"`
	Horizon  int        `json:"horizon"`
}

// PredictResponse is the v1 predict response.
type PredictResponse struct {
	Model    string     `json:"model"`
	Version  int        `json:"version"`
	Forecast SeriesJSON `json:"forecast"`
}

// ModelInfo describes one deployment slot in the models listings.
type ModelInfo struct {
	Scenario string  `json:"scenario"`
	Region   string  `json:"region"`
	Model    string  `json:"model"`
	Version  int     `json:"version"`
	Accuracy float64 `json:"accuracy"`
}

// NewHandler returns the serving endpoint over a registry with default
// limits and no document store — the historical constructor, now backed by
// the full Service (v1 and v2 endpoints both).
func NewHandler(reg *registry.Registry) *Service {
	return NewService(reg, nil, ServiceConfig{})
}

// --- v1 compatibility shim ---
//
// The v1 handlers translate to the v2 core (same warm pool, same
// cancellation) but keep the original wire format: flat {"error": "..."}
// bodies and the original status mapping. The golden test in
// serving_test.go pins the format.

func (s *Service) handlePredictV1(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if serr := s.decode(w, r, &req); serr != nil {
		if serr.Code == CodeTooLarge {
			// The original handler truncated oversized bodies at its
			// LimitReader and reported a 400 decode failure; keep the v1
			// status class.
			httpError(w, http.StatusBadRequest, errors.New("decode request: request body too large"))
			return
		}
		httpError(w, serr.Status, errors.New(serr.Message))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// enforceLimits=false: v1 accepted any positive horizon.
	resp, serr := s.predict(ctx, PredictRequestV2{
		Scenario: req.Scenario, Region: req.Region,
		History: req.History, Horizon: req.Horizon,
	}, false)
	if serr != nil {
		httpError(w, serr.Status, errors.New(serr.Message))
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Model: resp.Model, Version: resp.Version, Forecast: resp.Forecast,
	})
}

func (s *Service) handleModelsV1(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ModelList())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
