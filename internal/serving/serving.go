// Package serving exposes deployed forecast models through a REST endpoint,
// mirroring the AML-deployed REST endpoints of Section 2.2: the pipeline
// deploys a model version per (scenario, region); clients post a server's
// load history and receive the predicted series.
package serving

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/registry"
	"seagull/internal/timeseries"
)

// SeriesJSON is the wire form of a time series.
type SeriesJSON struct {
	Start       time.Time `json:"start"`
	IntervalMin int       `json:"interval_min"`
	Values      []float64 `json:"values"`
}

// ToSeries converts the wire form into a Series.
func (s SeriesJSON) ToSeries() timeseries.Series {
	return timeseries.New(s.Start, time.Duration(s.IntervalMin)*time.Minute, s.Values)
}

// FromSeries converts a Series into its wire form.
func FromSeries(s timeseries.Series) SeriesJSON {
	return SeriesJSON{Start: s.Start, IntervalMin: int(s.Interval / time.Minute), Values: s.Values}
}

// PredictRequest asks the deployed model of one (scenario, region) to
// forecast `horizon` observations following the supplied history.
type PredictRequest struct {
	Scenario string     `json:"scenario"`
	Region   string     `json:"region"`
	History  SeriesJSON `json:"history"`
	Horizon  int        `json:"horizon"`
}

// PredictResponse carries the forecast and the serving model's identity.
type PredictResponse struct {
	Model    string     `json:"model"`
	Version  int        `json:"version"`
	Forecast SeriesJSON `json:"forecast"`
}

// ModelInfo describes one deployment slot in the /v1/models listing.
type ModelInfo struct {
	Scenario string  `json:"scenario"`
	Region   string  `json:"region"`
	Model    string  `json:"model"`
	Version  int     `json:"version"`
	Accuracy float64 `json:"accuracy"`
}

// Handler serves the model endpoint backed by a registry. Model instances
// are created per request from the deployed model name; persistent forecast
// instances are stateless between requests, making this safe.
type Handler struct {
	reg *registry.Registry
	// NewModel builds a model by name; defaults to forecast.New with seed 0.
	NewModel func(name string) (forecast.Model, error)
	mux      *http.ServeMux
}

// NewHandler returns an http.Handler exposing the registry's models.
func NewHandler(reg *registry.Registry) *Handler {
	h := &Handler{
		reg: reg,
		NewModel: func(name string) (forecast.Model, error) {
			return forecast.New(name, 0)
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.handleHealth)
	mux.HandleFunc("GET /v1/models", h.handleModels)
	mux.HandleFunc("POST /v1/predict", h.handlePredict)
	h.mux = mux
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *Handler) handleModels(w http.ResponseWriter, _ *http.Request) {
	var out []ModelInfo
	for _, t := range h.reg.Targets() {
		v, err := h.reg.Active(t)
		if err != nil {
			continue
		}
		out = append(out, ModelInfo{
			Scenario: t.Scenario, Region: t.Region,
			Model: v.ModelName, Version: v.Number, Accuracy: v.Accuracy,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *Handler) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.Horizon <= 0 {
		httpError(w, http.StatusBadRequest, errors.New("horizon must be positive"))
		return
	}
	if req.History.IntervalMin <= 0 || len(req.History.Values) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("history must be a non-empty series with a positive interval"))
		return
	}
	target := registry.Target{Scenario: req.Scenario, Region: req.Region}
	v, err := h.reg.Active(target)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	m, err := h.NewModel(v.ModelName)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if err := m.Train(req.History.ToSeries()); err != nil {
		httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("train: %w", err))
		return
	}
	pred, err := m.Forecast(req.Horizon)
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("forecast: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Model: v.ModelName, Version: v.Number, Forecast: FromSeries(pred),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Client is a typed client for the serving endpoint.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for baseURL (no trailing slash required).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 60 * time.Second}}
}

// Predict posts a history series and returns the forecast.
func (c *Client) Predict(scenario, region string, history timeseries.Series, horizon int) (timeseries.Series, PredictResponse, error) {
	req := PredictRequest{
		Scenario: scenario, Region: region,
		History: FromSeries(history), Horizon: horizon,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return timeseries.Series{}, PredictResponse{}, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return timeseries.Series{}, PredictResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return timeseries.Series{}, PredictResponse{}, fmt.Errorf("serving: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return timeseries.Series{}, PredictResponse{}, err
	}
	return pr.Forecast.ToSeries(), pr, nil
}

// Models fetches the deployment listing.
func (c *Client) Models() ([]ModelInfo, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/models")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serving: %s", resp.Status)
	}
	var out []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Healthy reports whether the endpoint responds to /healthz.
func (c *Client) Healthy() bool {
	resp, err := c.HTTP.Get(c.BaseURL + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
