package serving

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/registry"
	"seagull/internal/timeseries"
)

var t0 = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)

func testServer(t *testing.T) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New(nil)
	srv := httptest.NewServer(NewHandler(reg))
	t.Cleanup(srv.Close)
	return srv, reg
}

func weekHistory() timeseries.Series {
	vals := make([]float64, 7*288)
	for i := range vals {
		if i%288 >= 96 && i%288 < 192 {
			vals[i] = 60
		} else {
			vals[i] = 10
		}
	}
	return timeseries.New(t0, 5*time.Minute, vals)
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	if !c.Healthy() {
		t.Error("endpoint should be healthy")
	}
}

func TestPredictEndToEnd(t *testing.T) {
	srv, reg := testServer(t)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "westus"}, forecast.NamePersistentPrevDay, "")

	c := NewClient(srv.URL)
	hist := weekHistory()
	pred, resp, err := c.Predict("backup", "westus", hist, 288)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Model != forecast.NamePersistentPrevDay || resp.Version != 1 {
		t.Errorf("resp = %+v", resp)
	}
	if pred.Len() != 288 {
		t.Fatalf("forecast len = %d", pred.Len())
	}
	// Persistent prev-day forecast equals the last history day.
	last, _ := hist.Day(6)
	for i := range pred.Values {
		if pred.Values[i] != last.Values[i] {
			t.Fatalf("forecast differs from last day at %d", i)
		}
	}
	if !pred.Start.Equal(hist.End()) {
		t.Errorf("forecast start = %v", pred.Start)
	}
}

func TestPredictNoDeployment(t *testing.T) {
	srv, _ := testServer(t)
	c := NewClient(srv.URL)
	_, _, err := c.Predict("backup", "nowhere", weekHistory(), 288)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("err = %v, want 404", err)
	}
}

func TestPredictValidation(t *testing.T) {
	srv, reg := testServer(t)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")

	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("bad json status = %d", code)
	}
	if code := post(`{"scenario":"backup","region":"r","horizon":0,
		"history":{"start":"2019-12-01T00:00:00Z","interval_min":5,"values":[1]}}`); code != http.StatusBadRequest {
		t.Errorf("zero horizon status = %d", code)
	}
	if code := post(`{"scenario":"backup","region":"r","horizon":10,
		"history":{"start":"2019-12-01T00:00:00Z","interval_min":0,"values":[1]}}`); code != http.StatusBadRequest {
		t.Errorf("zero interval status = %d", code)
	}
	// Insufficient history → unprocessable.
	req := PredictRequest{
		Scenario: "backup", Region: "r", Horizon: 288,
		History: SeriesJSON{Start: t0, IntervalMin: 5, Values: []float64{1, 2, 3}},
	}
	data, _ := json.Marshal(req)
	resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("short history status = %d", resp.StatusCode)
	}
}

func TestModelsListing(t *testing.T) {
	srv, reg := testServer(t)
	c := NewClient(srv.URL)
	models, err := c.Models()
	if err != nil || len(models) != 0 {
		t.Errorf("empty registry: %v %v", models, err)
	}

	tgt := registry.Target{Scenario: "backup", Region: "westus"}
	v := reg.Deploy(tgt, forecast.NamePersistentPrevDay, "")
	_ = reg.RecordAccuracy(tgt, v, 0.99)
	reg.Deploy(registry.Target{Scenario: "autoscale", Region: "eastus"}, forecast.NameSSA, "")

	models, err = c.Models()
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("models = %+v", models)
	}
	// Sorted by target string: autoscale/eastus first.
	if models[0].Scenario != "autoscale" || models[0].Model != forecast.NameSSA {
		t.Errorf("models[0] = %+v", models[0])
	}
	if models[1].Accuracy != 0.99 {
		t.Errorf("models[1] = %+v", models[1])
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := timeseries.New(t0, 5*time.Minute, []float64{1, 2, 3})
	got := FromSeries(s).ToSeries()
	if !got.Start.Equal(s.Start) || got.Interval != s.Interval || got.Len() != 3 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _ := testServer(t)
	resp, err := http.Get(srv.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict status = %d", resp.StatusCode)
	}
}

func TestUnknownDeployedModel(t *testing.T) {
	srv, reg := testServer(t)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, "no-such-model", "")
	c := NewClient(srv.URL)
	_, _, err := c.Predict("backup", "r", weekHistory(), 288)
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("err = %v, want 500", err)
	}
}
