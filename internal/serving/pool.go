package serving

import (
	"container/list"
	"math"
	"sync"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/registry"
	"seagull/internal/timeseries"
)

// PoolConfig sizes the warm model pool.
type PoolConfig struct {
	// MaxEntries bounds how many distinct (scenario, region, version) slots
	// the pool keeps warm; the least recently used slot is evicted beyond
	// that. Values below 1 select the default, 64.
	MaxEntries int
	// MaxIdle bounds the idle model instances retained per slot (the
	// concurrency level that stays warm). Default 4; NewService raises the
	// default to its batch fan-out width so a whole batch's worker models
	// re-pool. Negative disables pooling entirely: every checkout builds a
	// fresh model — the model-per-request behaviour of the v1 handler,
	// kept for benchmarks and as an escape hatch.
	MaxIdle int
	// Seed is the deterministic seed every pooled model instance is built
	// with, so a warm instance and a fresh instance are interchangeable:
	// all models pin retrain-equals-fresh behaviour in their equivalence
	// tests, and identical seeding removes the remaining degree of freedom.
	Seed int64
	// NewModel overrides model construction (tests inject slow or failing
	// models). Default forecast.New.
	NewModel func(name string, seed int64) (forecast.Model, error)
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.MaxEntries < 1 {
		c.MaxEntries = 64
	}
	if c.MaxIdle == 0 {
		c.MaxIdle = 4
	}
	if c.NewModel == nil {
		c.NewModel = forecast.New
	}
	return c
}

// poolKey identifies one warm slot: a deployment target at a specific
// version. Keying on the version means a promote or rollback naturally
// misses the pool even before the invalidation watcher runs.
type poolKey struct {
	scenario, region string
	version          int
}

// targetKey is the version-less half of a poolKey: invalidation generations
// are tracked per target because Invalidate drops every version of one.
type targetKey struct {
	scenario, region string
}

// Instance is one checked-out model with its warm-pool bookkeeping: the
// fingerprint of the last trained history, which lets TrainOn skip a
// retrain when a deterministic-inference model sees the identical series
// again (retries, several clients asking about the same server, an advise
// flow following a predict). Instances are handed out with exclusive
// ownership — models are not safe for concurrent use.
type Instance struct {
	Model forecast.Model
	// memoOK records whether the model advertises deterministic inference
	// (see forecast.InferenceDeterministic); only then may a retrain be
	// skipped.
	memoOK  bool
	trained bool
	// The last trained history, retained verbatim (start/interval/values).
	// Histories are arbitrary client-supplied data on a public endpoint, so
	// a skip is proven by comparing the actual bytes — sameHistory rejects
	// in O(1) on differing start/length and early-exits on the first
	// differing value, so no hash pre-filter is needed.
	histStart    time.Time
	histInterval time.Duration
	histVals     []float64
	// gen is the target's invalidation generation at checkout time; Return
	// drops the instance when the target was invalidated while it was out.
	gen uint64
}

func newInstance(m forecast.Model) *Instance {
	di, ok := m.(forecast.InferenceDeterministic)
	return &Instance{Model: m, memoOK: ok && di.DeterministicInference()}
}

// TrainOn trains the instance on h. When the model's inference is
// deterministic and h is bit-identical to the last trained history, the
// retrain is skipped — the post-Train state is already exactly what Train
// would re-establish. skipped reports whether that happened.
func (inst *Instance) TrainOn(h timeseries.Series) (skipped bool, err error) {
	if inst.memoOK && inst.trained && inst.sameHistory(h) {
		return true, nil
	}
	// Drop the trained flag before touching the model: Train mutates the
	// retained state in place, so an error — or a panic recovered further
	// up (parallel.safeCall on the batch path) — must leave the instance
	// marked untrained, or a later memo hit would serve a forecast from
	// half-mutated weights.
	inst.trained = false
	if err := inst.Model.Train(h); err != nil {
		return false, err
	}
	inst.trained = true
	if inst.memoOK {
		inst.histStart, inst.histInterval = h.Start, h.Interval
		if cap(inst.histVals) < len(h.Values) {
			inst.histVals = make([]float64, len(h.Values))
		}
		inst.histVals = inst.histVals[:len(h.Values)]
		copy(inst.histVals, h.Values)
	}
	return false, nil
}

// sameHistory compares h against the retained last-trained series bit for
// bit (Float64bits, so Missing/NaN observations compare equal to
// themselves).
func (inst *Instance) sameHistory(h timeseries.Series) bool {
	if !h.Start.Equal(inst.histStart) || h.Interval != inst.histInterval || len(h.Values) != len(inst.histVals) {
		return false
	}
	for i, v := range h.Values {
		if math.Float64bits(v) != math.Float64bits(inst.histVals[i]) {
			return false
		}
	}
	return true
}

// poolEntry is one slot's idle instances.
type poolEntry struct {
	key  poolKey
	idle []*Instance
}

// PoolStats is a point-in-time snapshot of pool effectiveness.
type PoolStats struct {
	Entries       int    `json:"entries"`       // warm slots
	Idle          int    `json:"idle"`          // idle model instances across slots
	Hits          uint64 `json:"hits"`          // checkouts served from a warm instance
	Misses        uint64 `json:"misses"`        // checkouts that built a fresh model
	Evictions     uint64 `json:"evictions"`     // slots dropped by the LRU bound
	Invalidations uint64 `json:"invalidations"` // invalidation events (registry changes, manual)
}

// ModelPool keeps trained model instances warm per (scenario, region,
// version) so repeated serving requests reuse the scratch buffers the models
// retain across Train calls (PR 2's retrain-equals-fresh guarantee) instead
// of reallocating them per request. Safe for concurrent use.
type ModelPool struct {
	mu      sync.Mutex
	cfg     PoolConfig
	entries map[poolKey]*list.Element // value: *poolEntry
	lru     *list.List                // front = most recently used slot
	// gens counts invalidations per target; instances checked out under an
	// older generation are dropped on Return instead of resurrecting a
	// stale slot.
	gens  map[targetKey]uint64
	stats PoolStats
}

// NewModelPool returns an empty pool.
func NewModelPool(cfg PoolConfig) *ModelPool {
	return &ModelPool{
		cfg:     cfg.withDefaults(),
		entries: map[poolKey]*list.Element{},
		lru:     list.New(),
		gens:    map[targetKey]uint64{},
	}
}

// Bind subscribes the pool to a registry's deployment changes: any promote
// or rollback of a target invalidates that target's warm instances, so a
// request arriving after a deployment never trains a stale model name. The
// returned unbind removes the subscription; a pool that does not outlive
// the registry must be unbound or it stays pinned by the watcher.
func (p *ModelPool) Bind(reg *registry.Registry) (unbind func()) {
	return reg.Watch(p.Invalidate)
}

// Checkout hands out a model instance for the deployment (target, version,
// modelName) with exclusive ownership. It returns a warm instance when one
// is idle and builds a deterministic fresh one otherwise; hit reports which.
// The caller must hand the instance back with Return when done (also on
// error paths), or drop it on the floor — the pool does not track it.
func (p *ModelPool) Checkout(target registry.Target, version int, modelName string) (inst *Instance, hit bool, err error) {
	if p.cfg.MaxIdle < 0 {
		p.mu.Lock()
		p.stats.Misses++
		p.mu.Unlock()
		m, err := p.cfg.NewModel(modelName, p.cfg.Seed)
		if err != nil {
			return nil, false, err
		}
		return newInstance(m), false, nil
	}
	key := poolKey{scenario: target.Scenario, region: target.Region, version: version}
	p.mu.Lock()
	gen := p.gens[targetKey{scenario: target.Scenario, region: target.Region}]
	if el, ok := p.entries[key]; ok {
		p.lru.MoveToFront(el)
		e := el.Value.(*poolEntry)
		if n := len(e.idle); n > 0 {
			inst = e.idle[n-1]
			e.idle[n-1] = nil
			e.idle = e.idle[:n-1]
			inst.gen = gen
			p.stats.Hits++
			p.mu.Unlock()
			return inst, true, nil
		}
	}
	p.stats.Misses++
	p.mu.Unlock()
	m, err := p.cfg.NewModel(modelName, p.cfg.Seed)
	if err != nil {
		return nil, false, err
	}
	inst = newInstance(m)
	inst.gen = gen
	return inst, false, nil
}

// Return hands an instance back to its slot. Instances whose target was
// invalidated while they were out, and instances beyond the slot's MaxIdle,
// are dropped. A slot that was merely LRU-evicted in the meantime is
// recreated — the instance is still valid for its version, so re-pooling it
// is harmless LRU churn, unlike an invalidation, where re-pooling would
// serve a stale deployment.
func (p *ModelPool) Return(target registry.Target, version int, inst *Instance) {
	if inst == nil || p.cfg.MaxIdle < 0 {
		return
	}
	key := poolKey{scenario: target.Scenario, region: target.Region, version: version}
	p.mu.Lock()
	defer p.mu.Unlock()
	if inst.gen != p.gens[targetKey{scenario: target.Scenario, region: target.Region}] {
		// The target was invalidated while the instance was out: dropping it
		// here is what keeps a stale slot from being resurrected.
		return
	}
	el, ok := p.entries[key]
	if !ok {
		// First return for this slot creates it (checkout misses do not, so
		// a burst of misses cannot thrash the LRU before any model is warm).
		e := &poolEntry{key: key}
		el = p.lru.PushFront(e)
		p.entries[key] = el
		for p.lru.Len() > p.cfg.MaxEntries {
			back := p.lru.Back()
			evicted := back.Value.(*poolEntry)
			p.lru.Remove(back)
			delete(p.entries, evicted.key)
			p.stats.Evictions++
		}
	}
	e := el.Value.(*poolEntry)
	if len(e.idle) < p.cfg.MaxIdle {
		e.idle = append(e.idle, inst)
	}
}

// Invalidate drops every warm slot of a target, across all versions —
// including instances currently checked out, which Return discards instead
// of re-pooling. Wired to registry.Watch by Bind, and callable directly
// (e.g. after mutating a model's configuration out of band).
func (p *ModelPool) Invalidate(target registry.Target) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gens[targetKey{scenario: target.Scenario, region: target.Region}]++
	p.stats.Invalidations++
	for key, el := range p.entries {
		if key.scenario == target.Scenario && key.region == target.Region {
			p.lru.Remove(el)
			delete(p.entries, key)
		}
	}
}

// Stats returns a snapshot of pool effectiveness counters.
func (p *ModelPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Entries = p.lru.Len()
	for _, el := range p.entries {
		st.Idle += len(el.Value.(*poolEntry).idle)
	}
	return st
}
