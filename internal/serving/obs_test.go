package serving

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/obs"
	"seagull/internal/registry"
)

// tracedServer is v2Server with a tracer attached — the configuration
// seagull-serve always runs with.
func tracedServer(t *testing.T, cfg ServiceConfig) (*httptest.Server, *Service, *registry.Registry) {
	t.Helper()
	cfg.Tracer = obs.NewTracer(obs.TracerConfig{})
	return v2Server(t, cfg)
}

// warmPredicts deploys a model and issues n predicts so every observability
// surface has content.
func warmPredicts(t *testing.T, srv *httptest.Server, reg *registry.Registry, n int) {
	t.Helper()
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	c := NewClient(srv.URL)
	req := PredictRequestV2{
		Scenario: "backup", Region: "r",
		History: FromSeries(weekHistory()), Horizon: 288,
	}
	for i := 0; i < n; i++ {
		if _, err := c.PredictV2(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVarzGoldenShape pins the /varz JSON contract: the exact top-level key
// set and the per-endpoint key set. New fields must land here deliberately —
// dashboards parse this document.
func TestVarzGoldenShape(t *testing.T) {
	srv, _, reg := tracedServer(t, ServiceConfig{})
	warmPredicts(t, srv, reg, 1)

	resp, err := http.Get(srv.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	got := make([]string, 0, len(doc))
	for k := range doc {
		got = append(got, k)
	}
	sort.Strings(got)
	// No stream layer attached: the ingest/drift/refresh/sweeper/durability
	// sections are omitted. Admission control is on by default.
	want := []string{"admission", "endpoints", "pool", "uptime_sec"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("varz top-level keys = %v, want %v", got, want)
	}

	var eps map[string]map[string]json.RawMessage
	if err := json.Unmarshal(doc["endpoints"], &eps); err != nil {
		t.Fatal(err)
	}
	ep, ok := eps["POST /v2/predict"]
	if !ok {
		t.Fatalf("endpoints = %v", eps)
	}
	var epKeys []string
	for k := range ep {
		epKeys = append(epKeys, k)
	}
	sort.Strings(epKeys)
	wantEp := []string{"count", "errors", "in_flight", "latency_counts", "latency_ms_bounds", "latency_ms_sum"}
	if strings.Join(epKeys, ",") != strings.Join(wantEp, ",") {
		t.Fatalf("endpoint keys = %v, want %v", epKeys, wantEp)
	}
	// The observability surfaces themselves are registered endpoints.
	for _, name := range []string{"GET /varz", "GET /metrics", "GET /debug/traces"} {
		if _, ok := eps[name]; !ok {
			t.Errorf("endpoint %q not instrumented", name)
		}
	}
}

// expoSample is one parsed exposition line.
type expoSample struct {
	name   string
	labels string // raw {...} content, le pair removed for histogram grouping
	le     string
	value  float64
}

// parseExpo parses Prometheus text exposition 0.0.4 into TYPE declarations
// and samples, failing the test on any malformed line.
func parseExpo(t *testing.T, body string) (types map[string]string, samples []expoSample) {
	t.Helper()
	types = map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Split at the LAST space: label values may contain spaces
		// (endpoint="GET /varz"); exposition values never do.
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		nameAndLabels, valStr := line[:cut], line[cut+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s := expoSample{name: nameAndLabels, value: v}
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			s.name = nameAndLabels[:i]
			inner := strings.TrimSuffix(nameAndLabels[i+1:], "}")
			var kept []string
			for _, pair := range strings.Split(inner, ",") {
				if rest, ok := strings.CutPrefix(pair, `le="`); ok {
					s.le = strings.TrimSuffix(rest, `"`)
					continue
				}
				kept = append(kept, pair)
			}
			s.labels = strings.Join(kept, ",")
		}
		samples = append(samples, s)
	}
	return types, samples
}

// family resolves a sample name to its declared family: the exact name when
// declared (a counter may legitimately end in _sum), else the histogram base
// after stripping the _bucket/_sum/_count suffix.
func family(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, suf); ok {
			return f
		}
	}
	return name
}

// TestMetricsExposition scrapes /metrics twice and verifies the exposition
// contract: every sample belongs to a declared family, histogram triples are
// internally consistent (cumulative buckets, +Inf == _count), and counters
// never decrease between scrapes.
func TestMetricsExposition(t *testing.T) {
	srv, _, reg := tracedServer(t, ServiceConfig{})
	warmPredicts(t, srv, reg, 2)

	scrape := func() (map[string]string, []expoSample) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != obs.ExpoContentType {
			t.Fatalf("content-type = %q, want %q", ct, obs.ExpoContentType)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return parseExpo(t, string(body))
	}

	types, samples := scrape()
	if len(samples) == 0 {
		t.Fatal("no samples scraped")
	}
	for _, s := range samples {
		if _, ok := types[family(s.name, types)]; !ok {
			t.Errorf("sample %s has no TYPE declaration", s.name)
		}
	}
	for _, name := range []string{
		"seagull_http_requests_total", "seagull_pool_hits_total",
		"seagull_http_request_duration_seconds", "seagull_trace_stage_total",
	} {
		if _, ok := types[name]; !ok {
			t.Errorf("family %s missing (have %v)", name, types)
		}
	}

	// Histogram triples: per (family, label set), buckets are cumulative in
	// ascending le order, the +Inf bucket equals _count, and _sum exists.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		buckets := map[string][]expoSample{}
		counts := map[string]float64{}
		sums := map[string]bool{}
		for _, s := range samples {
			switch s.name {
			case fam + "_bucket":
				buckets[s.labels] = append(buckets[s.labels], s)
			case fam + "_count":
				counts[s.labels] = s.value
			case fam + "_sum":
				sums[s.labels] = true
			}
		}
		if len(buckets) == 0 {
			t.Errorf("histogram %s has no buckets", fam)
		}
		for labels, bs := range buckets {
			sort.Slice(bs, func(i, j int) bool { return leLess(bs[i].le, bs[j].le) })
			prev := -1.0
			for _, b := range bs {
				if b.value < prev {
					t.Errorf("%s{%s}: bucket le=%s count %v below previous %v", fam, labels, b.le, b.value, prev)
				}
				prev = b.value
			}
			last := bs[len(bs)-1]
			if last.le != "+Inf" {
				t.Errorf("%s{%s}: last bucket le=%s, want +Inf", fam, labels, last.le)
			}
			if c, ok := counts[labels]; !ok || c != last.value {
				t.Errorf("%s{%s}: +Inf bucket %v != _count %v", fam, labels, last.value, c)
			}
			if !sums[labels] {
				t.Errorf("%s{%s}: missing _sum", fam, labels)
			}
		}
	}

	// Counter monotonicity across scrapes, with traffic in between.
	warmPredicts(t, srv, reg, 2)
	_, samples2 := scrape()
	first := map[string]float64{}
	for _, s := range samples {
		if types[family(s.name, types)] == "counter" {
			first[s.name+"{"+s.labels+"}"] = s.value
		}
	}
	for _, s := range samples2 {
		if types[family(s.name, types)] != "counter" {
			continue
		}
		if prev, ok := first[s.name+"{"+s.labels+"}"]; ok && s.value < prev {
			t.Errorf("counter %s{%s} went backwards: %v -> %v", s.name, s.labels, prev, s.value)
		}
	}
}

// leLess orders le bucket labels numerically with +Inf last.
func leLess(a, b string) bool {
	if a == "+Inf" {
		return false
	}
	if b == "+Inf" {
		return true
	}
	fa, _ := strconv.ParseFloat(a, 64)
	fb, _ := strconv.ParseFloat(b, 64)
	return fa < fb
}

// TestTracesEndpointAndRequestID: the request ID round-trips (inbound header
// honored, response header always set), spans land in /debug/traces, ?n=
// bounds the recent list and a bad n is a 400.
func TestTracesEndpointAndRequestID(t *testing.T) {
	srv, _, reg := tracedServer(t, ServiceConfig{})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")

	body, _ := json.Marshal(PredictRequestV2{
		Scenario: "backup", Region: "r",
		History: FromSeries(weekHistory()), Horizon: 288,
	})
	req, _ := http.NewRequest("POST", srv.URL+"/v2/predict", strings.NewReader(string(body)))
	req.Header.Set("X-Request-Id", "trace-me-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-7" {
		t.Fatalf("X-Request-Id echo = %q, want trace-me-7", got)
	}

	// A request without the header gets a minted ID.
	resp2, err := http.Post(srv.URL+"/v2/predict", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-Id") == "" {
		t.Fatal("no X-Request-Id minted")
	}

	tresp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var doc TracesDoc
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Enabled {
		t.Fatal("traces disabled on a traced service")
	}
	var predictTrace *obs.TraceView
	for i := range doc.Recent {
		if doc.Recent[i].RequestID == "trace-me-7" {
			predictTrace = &doc.Recent[i]
		}
	}
	if predictTrace == nil {
		t.Fatalf("trace-me-7 not in recent traces: %+v", doc.Recent)
	}
	stages := map[string]bool{}
	for _, sp := range predictTrace.Spans {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"checkout", "train", "inference"} {
		if !stages[want] {
			t.Errorf("predict trace missing %s span: %+v", want, predictTrace.Spans)
		}
	}
	if len(doc.Stages) == 0 {
		t.Error("no stage aggregates")
	}

	// ?n= caps the recent list; a bad n is a clean 400.
	nresp, err := http.Get(srv.URL + "/debug/traces?n=1")
	if err != nil {
		t.Fatal(err)
	}
	var capped TracesDoc
	if err := json.NewDecoder(nresp.Body).Decode(&capped); err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if len(capped.Recent) > 1 {
		t.Errorf("n=1 returned %d traces", len(capped.Recent))
	}
	bad, err := http.Get(srv.URL + "/debug/traces?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("n=bogus status = %d, want 400", bad.StatusCode)
	}
}

// TestTracesDisabled: without a tracer the endpoint reports enabled:false
// instead of 404ing, and no X-Request-Id is minted.
func TestTracesDisabled(t *testing.T) {
	srv, _, _ := v2Server(t, ServiceConfig{})
	resp, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc TracesDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Enabled || len(doc.Recent) != 0 {
		t.Fatalf("untraced service reported %+v", doc)
	}
	if resp.Header.Get("X-Request-Id") != "" {
		t.Error("untraced service minted a request ID")
	}
}

// flushRecorder wraps httptest.ResponseRecorder to count Flush calls through
// the statusWriter.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// TestStatusWriterUpgrades: the instrumentation wrapper must forward the
// optional ResponseWriter interfaces instead of swallowing them.
func TestStatusWriterUpgrades(t *testing.T) {
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	sw := &statusWriter{ResponseWriter: rec, status: http.StatusOK}

	var w http.ResponseWriter = sw
	if f, ok := w.(http.Flusher); !ok {
		t.Fatal("statusWriter does not expose Flusher")
	} else {
		f.Flush()
	}
	if rec.flushes != 1 {
		t.Fatalf("flushes = %d, want 1 forwarded", rec.flushes)
	}

	// Unwrap lets http.ResponseController find the underlying writer.
	if got := sw.Unwrap(); got != http.ResponseWriter(rec) {
		t.Fatal("Unwrap did not return the wrapped writer")
	}

	// A non-hijackable underlying writer yields ErrNotSupported, not a panic.
	if _, _, err := sw.Hijack(); err != http.ErrNotSupported {
		t.Fatalf("Hijack on plain recorder = %v, want ErrNotSupported", err)
	}

	// A hijackable writer is forwarded.
	hj := &hijackRecorder{ResponseRecorder: httptest.NewRecorder()}
	sw2 := &statusWriter{ResponseWriter: hj, status: http.StatusOK}
	if _, _, err := sw2.Hijack(); err != nil {
		t.Fatalf("Hijack on hijackable writer = %v", err)
	}
	if !hj.hijacked {
		t.Fatal("Hijack not forwarded")
	}
}

type hijackRecorder struct {
	*httptest.ResponseRecorder
	hijacked bool
}

func (h *hijackRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h.hijacked = true
	return nil, nil, nil
}

// TestLatencyBucketLayout guards the compile-time tie between the bounds
// array and the bucket-counter width, and the overflow behavior at the edges.
func TestLatencyBucketLayout(t *testing.T) {
	if numLatencyBuckets != len(latencyBoundsMs)+1 {
		t.Fatalf("numLatencyBuckets = %d, want len(bounds)+1 = %d", numLatencyBuckets, len(latencyBoundsMs)+1)
	}
	if !sort.Float64sAreSorted(latencyBoundsMs[:]) {
		t.Fatal("latencyBoundsMs must be ascending for sort.SearchFloat64s")
	}
	var ev endpointVars
	ev.observe(50*time.Microsecond, 200) // below the first bound (0.1ms)
	ev.observe(time.Hour, 200)           // far beyond the last bound (10s)
	if ev.buckets[0].Load() != 1 {
		t.Errorf("fast observation not in first bucket")
	}
	if ev.buckets[numLatencyBuckets-1].Load() != 1 {
		t.Errorf("slow observation not in overflow bucket")
	}
}
