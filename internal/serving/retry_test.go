package serving

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seagull/internal/registry"
)

// flappingServer fails the first `failures` requests with the given status
// (or by dropping the connection when status is 0), then serves a valid
// empty v2 models response — a server mid rolling restart.
func flappingServer(t *testing.T, failures int64, status int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failures {
			if status == 0 {
				// Simulate a connection cut: hijack and close.
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Fatal("no hijacker")
				}
				conn, _, err := hj.Hijack()
				if err != nil {
					t.Fatal(err)
				}
				conn.Close()
				return
			}
			writeJSON(w, status, errorEnvelope{Error: ErrorBody{Code: CodeInternal, Message: "draining"}})
			return
		}
		writeJSON(w, http.StatusOK, ModelsResponseV2{})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestClientRetriesThrough503(t *testing.T) {
	srv, calls := flappingServer(t, 2, http.StatusServiceUnavailable)
	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	if _, err := c.ModelsV2(context.Background()); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 failures + success)", got)
	}
}

func TestClientRetriesThroughConnectionDrop(t *testing.T) {
	srv, calls := flappingServer(t, 1, 0)
	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond}
	if _, err := c.ModelsV2(context.Background()); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

func TestClientRetryBounded(t *testing.T) {
	srv, calls := flappingServer(t, 1<<30, http.StatusServiceUnavailable)
	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err := c.ModelsV2(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the final 503", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d requests, want exactly MaxAttempts=4", got)
	}
}

func TestClientNoRetryByDefault(t *testing.T) {
	srv, calls := flappingServer(t, 1, http.StatusServiceUnavailable)
	c := NewClient(srv.URL)
	if _, err := c.ModelsV2(context.Background()); err == nil {
		t.Fatal("default client must not retry")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

func TestClientNoRetryOnDefinitiveError(t *testing.T) {
	// 404 is a definitive answer, not a drain signal.
	srv, calls := flappingServer(t, 5, http.StatusNotFound)
	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond}
	if _, err := c.ModelsV2(context.Background()); err == nil {
		t.Fatal("404 should surface")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retry on 404)", got)
	}
}

func TestClientRetryCancelDuringBackoff(t *testing.T) {
	srv, _ := flappingServer(t, 1<<30, http.StatusServiceUnavailable)
	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 10, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.ModelsV2(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ctx deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v; backoff did not observe ctx", elapsed)
	}
}

// TestClientRetryAgainstReadyzDrain: the readiness probe stays retry-free so
// callers can observe the draining state the retry loop exists to ride out.
func TestClientRetryAgainstReadyzDrain(t *testing.T) {
	svc := NewService(registry.New(nil), nil, ServiceConfig{})
	srv := httptest.NewServer(svc)
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond}

	svc.SetReady(false)
	start := time.Now()
	if c.Ready(context.Background()) {
		t.Fatal("draining service reported ready")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Ready() took %v; it must not retry", elapsed)
	}
	svc.SetReady(true)
	if !c.Ready(context.Background()) {
		t.Fatal("ready service reported draining")
	}
}

// TestClientHonorsRetryAfter: a 503 carrying a Retry-After header overrides
// the client's own (tiny) backoff — the server's drain schedule wins.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorEnvelope{Error: ErrorBody{Code: CodeInternal, Message: "draining"}})
			return
		}
		writeJSON(w, http.StatusOK, ModelsResponseV2{})
	}))
	t.Cleanup(srv.Close)

	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	start := time.Now()
	if _, err := c.ModelsV2(context.Background()); err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry waited only %v; Retry-After: 1 should have stretched the backoff to ~1s", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

// TestClientRetryBudgetExhaustion: when the next backoff would overrun
// MaxElapsed, the client fails immediately instead of sleeping — bounding the
// caller's worst-case latency mid-backoff rather than at the next attempt.
func TestClientRetryBudgetExhaustion(t *testing.T) {
	srv, calls := flappingServer(t, 1<<30, http.StatusServiceUnavailable)
	c := NewClient(srv.URL)
	// A 10s base delay against a 50ms budget: the very first backoff blows
	// the budget, so the loop must give up after one attempt without sleeping.
	c.Retry = RetryConfig{MaxAttempts: 10, BaseDelay: 10 * time.Second, MaxElapsed: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.ModelsV2(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want budget-exhaustion error, got success")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want a retry-budget message", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503 *APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (budget dies before the first sleep)", got)
	}
	if elapsed > time.Second {
		t.Fatalf("exhaustion took %v; the client must not sleep past the budget", elapsed)
	}
}

// TestClientRetryBudgetMidBackoff: a budget wide enough for a couple of
// attempts still cuts the loop off before MaxAttempts.
func TestClientRetryBudgetMidBackoff(t *testing.T) {
	srv, calls := flappingServer(t, 1<<30, http.StatusServiceUnavailable)
	c := NewClient(srv.URL)
	c.Retry = RetryConfig{MaxAttempts: 100, BaseDelay: 30 * time.Millisecond, MaxDelay: 30 * time.Millisecond, MaxElapsed: 100 * time.Millisecond}
	start := time.Now()
	_, err := c.ModelsV2(context.Background())
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want a retry-budget message", err)
	}
	if got := calls.Load(); got < 2 || got >= 100 {
		t.Fatalf("server saw %d requests, want a few attempts then budget exhaustion", got)
	}
	if elapsed > time.Second {
		t.Fatalf("exhaustion took %v, want well under the un-budgeted backoff total", elapsed)
	}
}
