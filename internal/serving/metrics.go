package serving

import (
	"io"
	"net/http"
	"sort"

	"seagull/internal/obs"
)

// The /metrics endpoint renders the same atomics that feed /varz in the
// Prometheus text exposition format (version 0.0.4), so the JSON debug page
// and the scrape target can never disagree: both are views over one
// VarzSnapshot. Latency histograms are converted from the per-bucket
// millisecond counts /varz reports to the cumulative le-labeled
// seconds-valued buckets Prometheus expects.

// WriteMetrics renders the service's metrics in exposition format.
func (s *Service) WriteMetrics(w io.Writer) error {
	v := s.VarzSnapshot()
	e := obs.NewExpo(w)

	e.Gauge("seagull_uptime_seconds", "Seconds since the service started.", v.UptimeSec)

	// Per-endpoint HTTP counters, in sorted order for stable scrapes.
	names := make([]string, 0, len(v.Endpoints))
	for name := range v.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	secBounds := make([]float64, len(latencyBoundsMs))
	for i, ms := range latencyBoundsMs {
		secBounds[i] = ms / 1000
	}
	e.Header("seagull_http_requests_total", "counter", "Requests handled, by endpoint.")
	for _, name := range names {
		e.Sample("seagull_http_requests_total", obs.Labels("endpoint", name), float64(v.Endpoints[name].Count))
	}
	e.Header("seagull_http_request_errors_total", "counter", "Requests answered with status >= 400, by endpoint.")
	for _, name := range names {
		e.Sample("seagull_http_request_errors_total", obs.Labels("endpoint", name), float64(v.Endpoints[name].Errors))
	}
	e.Header("seagull_http_in_flight", "gauge", "Requests currently being handled, by endpoint.")
	for _, name := range names {
		e.Sample("seagull_http_in_flight", obs.Labels("endpoint", name), float64(v.Endpoints[name].InFlight))
	}
	e.Header("seagull_http_request_duration_seconds", "histogram", "Request handling latency, by endpoint.")
	for _, name := range names {
		ep := v.Endpoints[name]
		e.Histogram("seagull_http_request_duration_seconds", obs.Labels("endpoint", name),
			secBounds, ep.LatencyCounts, ep.LatencyMsSum/1000)
	}

	// Warm pool.
	e.Gauge("seagull_pool_entries", "Warm-pool slots currently resident.", float64(v.Pool.Entries))
	e.Gauge("seagull_pool_idle", "Idle model instances across warm-pool slots.", float64(v.Pool.Idle))
	e.Counter("seagull_pool_hits_total", "Checkouts served from a warm instance.", float64(v.Pool.Hits))
	e.Counter("seagull_pool_misses_total", "Checkouts that built a fresh model.", float64(v.Pool.Misses))
	e.Counter("seagull_pool_evictions_total", "Warm-pool slots dropped by the LRU bound.", float64(v.Pool.Evictions))
	e.Counter("seagull_pool_invalidations_total", "Warm-pool invalidation events.", float64(v.Pool.Invalidations))

	if st := v.Ingest; st != nil {
		e.Gauge("seagull_ingest_servers", "Servers with live telemetry windows.", float64(st.Servers))
		e.Counter("seagull_ingest_appended_total", "Telemetry points appended.", float64(st.Appended))
		e.Counter("seagull_ingest_duplicates_total", "Telemetry points dropped as duplicates.", float64(st.Duplicates))
		e.Counter("seagull_ingest_too_old_total", "Telemetry points older than the retained window.", float64(st.TooOld))
		e.Counter("seagull_ingest_too_new_total", "Telemetry points beyond the accepted horizon.", float64(st.TooNew))
		e.Counter("seagull_ingest_bad_values_total", "Telemetry points rejected as non-finite.", float64(st.BadValues))
	}
	if st := v.Drift; st != nil {
		e.Counter("seagull_drift_sweeps_total", "Drift sweeps performed.", float64(st.Sweeps))
		e.Counter("seagull_drift_checked_total", "Stored predictions checked for drift.", float64(st.Checked))
		e.Counter("seagull_drift_drifted_total", "Stored predictions found drifted.", float64(st.Drifted))
		e.Counter("seagull_drift_skipped_total", "Drift checks skipped for missing data.", float64(st.Skipped))
	}
	if st := v.Refresh; st != nil {
		e.Counter("seagull_refresh_queued_total", "Refresh jobs enqueued.", float64(st.Queued))
		e.Counter("seagull_refresh_coalesced_total", "Refresh enqueues folded into a pending job.", float64(st.Coalesced))
		e.Counter("seagull_refresh_dropped_total", "Refresh enqueues rejected by a full queue.", float64(st.Dropped))
		e.Counter("seagull_refresh_refreshed_total", "Predictions retrained and republished.", float64(st.Refreshed))
		e.Counter("seagull_refresh_skipped_total", "Refreshes skipped for insufficient history.", float64(st.Skipped))
		e.Counter("seagull_refresh_failed_total", "Refreshes that failed.", float64(st.Failed))
		e.Gauge("seagull_refresh_pending", "Refresh jobs currently queued.", float64(st.Pending))
	}
	if st := v.Sweeper; st != nil {
		e.Counter("seagull_sweeper_ticks_total", "Completed background sweep rounds.", float64(st.Ticks))
		e.Counter("seagull_sweeper_regions_total", "Region sweeps across all rounds.", float64(st.Regions))
		e.Counter("seagull_sweeper_drifted_total", "Drifted servers found by background sweeps.", float64(st.Drifted))
		e.Counter("seagull_sweeper_queued_total", "Drifted servers newly queued for refresh.", float64(st.Queued))
		e.Counter("seagull_sweeper_dropped_total", "Drifted servers rejected by a full refresh queue.", float64(st.Dropped))
		e.Counter("seagull_sweeper_paused_total", "Sweep rounds skipped under refresh backpressure.", float64(st.Paused))
		e.Counter("seagull_sweeper_errors_total", "Failed region sweeps.", float64(st.Errors))
	}
	if st := v.Durability; st != nil {
		e.Gauge("seagull_wal_enabled", "1 when the write-ahead log is active.", boolGauge(st.WAL))
		e.Gauge("seagull_wal_commit_interval_ms", "Configured WAL commit interval (delta) in milliseconds.", st.DeltaMS)
		e.Counter("seagull_wal_commits_total", "WAL commit cycles.", float64(st.Commits))
		e.Counter("seagull_wal_records_total", "Telemetry records committed to the WAL.", float64(st.CommitRecords))
		e.Counter("seagull_wal_bytes_total", "Bytes committed to the WAL.", float64(st.CommitBytes))
		e.Counter("seagull_wal_errors_total", "WAL commit errors.", float64(st.CommitErrors))
		e.Counter("seagull_wal_dropped_total", "Records dropped by WAL buffer overflow.", float64(st.Dropped))
		e.Counter("seagull_snapshots_total", "Incremental snapshots taken.", float64(st.Snapshots))
		e.Counter("seagull_snapshot_errors_total", "Snapshot failures.", float64(st.SnapshotErrs))
		e.Counter("seagull_wal_truncations_total", "WAL truncations after snapshots.", float64(st.Truncations))
	}
	if st := v.Admission; st != nil {
		e.Gauge("seagull_admission_limit", "Current adaptive concurrency limit.", st.Limit)
		e.Gauge("seagull_admission_max_inflight", "Configured concurrency ceiling.", float64(st.MaxInflight))
		e.Gauge("seagull_admission_in_flight", "Admitted requests currently executing.", float64(st.InFlight))
		e.Gauge("seagull_admission_in_queue", "Requests waiting for admission.", float64(st.InQueue))
		e.Counter("seagull_admission_sheds_total", "Requests shed at admission.", float64(st.Sheds))
		e.Counter("seagull_admission_evictions_total", "Queued requests evicted by higher-priority arrivals.", float64(st.Evictions))
		e.Counter("seagull_admission_deadline_rejects_total", "Requests rejected as unable to meet their deadline.", float64(st.DeadlineRejects))
		e.Gauge("seagull_admission_brownout", "1 while degraded fallbacks are serving.", boolGauge(st.Brownout))
		e.Counter("seagull_admission_brownout_entries_total", "Transitions into brownout.", float64(st.BrownoutEntries))
		epNames := make([]string, 0, len(st.Endpoints))
		for name := range st.Endpoints {
			epNames = append(epNames, name)
		}
		sort.Strings(epNames)
		e.Header("seagull_admission_admitted_total", "counter", "Requests admitted, by endpoint.")
		for _, name := range epNames {
			e.Sample("seagull_admission_admitted_total", obs.Labels("endpoint", name), float64(st.Endpoints[name].Admitted))
		}
		e.Header("seagull_admission_degraded_total", "counter", "Requests served by degraded fallbacks, by endpoint.")
		for _, name := range epNames {
			e.Sample("seagull_admission_degraded_total", obs.Labels("endpoint", name), float64(st.Endpoints[name].Degraded))
		}
	}

	e.Gauge("seagull_degraded", "1 when the service reports partial health.", boolGauge(v.Degraded != ""))

	// Per-stage trace aggregates, when tracing is enabled.
	if stats := s.tracer.StageStats(); len(stats) > 0 {
		e.Header("seagull_trace_stage_total", "counter", "Spans recorded, by pipeline stage.")
		for _, st := range stats {
			e.Sample("seagull_trace_stage_total", obs.Labels("stage", st.Stage), float64(st.Count))
		}
		e.Header("seagull_trace_stage_hits_total", "counter", "Spans that hit a warm path (pool checkout, train memo), by stage.")
		for _, st := range stats {
			e.Sample("seagull_trace_stage_hits_total", obs.Labels("stage", st.Stage), float64(st.Hits))
		}
		e.Header("seagull_trace_stage_seconds_sum", "counter", "Total time spent in each pipeline stage, in seconds.")
		for _, st := range stats {
			e.Sample("seagull_trace_stage_seconds_sum", obs.Labels("stage", st.Stage), st.TotalMs/1000)
		}
		e.Counter("seagull_trace_overruns_total", "Trace starts skipped because every ring slot was active.", float64(s.tracer.Overruns()))
	}

	return e.Flush()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", obs.ExpoContentType)
	_ = s.WriteMetrics(w)
}
