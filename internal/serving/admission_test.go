package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"seagull/internal/admission"
	"seagull/internal/forecast"
	"seagull/internal/registry"
)

// saturateService occupies the service's limiter directly: one admitted
// ticket plus queued waiters until the queue holds queued entries. The
// returned release frees everything.
func saturateService(t *testing.T, svc *Service, queued int) (release func()) {
	t.Helper()
	ep := svc.limiter.Endpoint("POST /v2/predict", admission.Predict, 0)
	tk, res := ep.Acquire(context.Background(), false)
	if res.Verdict != admission.Admitted {
		t.Fatalf("saturate acquire: %v", res.Verdict)
	}
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < queued; i++ {
		go func() {
			// A cancel racing a grant can still admit this waiter; honor
			// the grant by releasing so the slot is never leaked.
			qtk, qres := ep.Acquire(ctx, false)
			if qres.Verdict == admission.Admitted {
				qtk.Release()
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for svc.limiter.Stats().InQueue < queued {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d", queued)
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		cancel()
		tk.Release()
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeErrCode(t *testing.T, resp *http.Response) ErrorCode {
	t.Helper()
	defer resp.Body.Close()
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode error envelope: %v", err)
	}
	return env.Error.Code
}

func TestAdmissionShedsOverloadedWithRetryAfter(t *testing.T) {
	// MaxInflight 1 → QueueCap 2 (limiter default). One admitted + two
	// queued predicts saturate the process completely.
	srv, svc, reg := v2Server(t, ServiceConfig{MaxInflight: 1})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	release := saturateService(t, svc, 2)
	defer release()

	// A background request cannot evict the queued predicts: shed, 503,
	// Retry-After present, structured overloaded code.
	resp, err := http.Get(srv.URL + "/v2/models")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 shed carries no Retry-After")
	}
	if code := decodeErrCode(t, resp); code != CodeOverloaded {
		t.Errorf("code = %q, want %q", code, CodeOverloaded)
	}

	// Shed ingest is pacing, not an outage: 429 + Retry-After.
	resp = postJSON(t, srv.URL+"/v2/ingest", IngestRequest{
		Points: []IngestPoint{{ServerID: "s", TimeUnix: 0, Value: 1}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingest status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 shed carries no Retry-After")
	}
	if code := decodeErrCode(t, resp); code != CodeOverloaded {
		t.Errorf("ingest code = %q, want %q", code, CodeOverloaded)
	}

	// Liveness endpoints bypass admission even while saturated.
	for _, path := range []string{"/healthz", "/readyz", "/varz"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d under saturation, want 200", path, r.StatusCode)
		}
	}

	// v1 sheds keep the flat legacy error shape.
	resp = postJSON(t, srv.URL+"/v1/predict", PredictRequest{
		Scenario: "backup", Region: "r", History: FromSeries(weekHistory()), Horizon: 288,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("v1 status = %d, want 503", resp.StatusCode)
	}
	var flat map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if flat["error"] == "" {
		t.Error("v1 shed must use the flat error shape")
	}

	// Capacity freed: traffic flows again.
	release()
	resp, err = http.Get(srv.URL + "/v2/models")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release status = %d, want 200", resp.StatusCode)
	}

	var vz Varz
	r, _ := http.Get(srv.URL + "/varz")
	if err := json.NewDecoder(r.Body).Decode(&vz); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if vz.Admission == nil {
		t.Fatal("varz carries no admission section")
	}
	if vz.Admission.Sheds == 0 {
		t.Error("admission sheds not counted on varz")
	}
	if _, ok := vz.Admission.Endpoints["POST /v2/ingest"]; !ok {
		t.Error("per-endpoint admission stats missing ingest")
	}
}

func TestBrownoutPredictDegradesToPersistent(t *testing.T) {
	srv, svc, reg := v2Server(t, ServiceConfig{MaxInflight: 1, Brownout: true})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NameSSA, "")
	release := saturateService(t, svc, 1)

	req := PredictRequestV2{
		Scenario: "backup", Region: "r", ServerID: "srv-1",
		History: FromSeries(weekHistory()), Horizon: 288, WindowPoints: 12,
	}
	resp := postJSON(t, srv.URL+"/v2/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("brownout status = %d, want 200", resp.StatusCode)
	}
	var pr PredictResponseV2
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !pr.Degraded {
		t.Error("saturated brownout predict must be flagged degraded")
	}
	if pr.Model != forecast.NamePersistentPrevDay {
		t.Errorf("degraded model = %q, want %q", pr.Model, forecast.NamePersistentPrevDay)
	}
	if len(pr.Forecast.Values) != 288 || pr.LLStart < 0 {
		t.Errorf("degraded forecast incomplete: len=%d llstart=%d", len(pr.Forecast.Values), pr.LLStart)
	}

	st := svc.limiter.Stats()
	if !st.Brownout || st.BrownoutEntries == 0 {
		t.Errorf("limiter does not report brownout: %+v", st)
	}
	if st.Endpoints["POST /v2/predict"].Degraded == 0 {
		t.Error("degraded counter not incremented")
	}

	// Saturation over: the full model serves again, unflagged.
	release()
	resp = postJSON(t, srv.URL+"/v2/predict", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d", resp.StatusCode)
	}
	pr = PredictResponseV2{} // degraded is omitempty; don't keep the stale true
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Degraded || pr.Model != forecast.NameSSA {
		t.Errorf("recovered predict = (degraded=%v, model=%q), want full %q", pr.Degraded, pr.Model, forecast.NameSSA)
	}
}

func TestBrownoutDisabledShedsPredict(t *testing.T) {
	srv, svc, reg := v2Server(t, ServiceConfig{MaxInflight: 1})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	release := saturateService(t, svc, 2) // queue full
	defer release()

	resp := postJSON(t, srv.URL+"/v2/predict", PredictRequestV2{
		Scenario: "backup", Region: "r", History: FromSeries(weekHistory()), Horizon: 288,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 with brownout off and queue full", resp.StatusCode)
	}
}

func TestReadyzDrainingCarriesRetryAfter(t *testing.T) {
	srv, svc, _ := v2Server(t, ServiceConfig{DrainGrace: 7 * time.Second})
	svc.SetReady(false)
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q (the drain grace)", got, "7")
	}
}

func TestAdmissionDisabledPassesThrough(t *testing.T) {
	srv, svc, reg := v2Server(t, ServiceConfig{MaxInflight: -1})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	if svc.limiter != nil {
		t.Fatal("negative MaxInflight must disable the limiter")
	}
	resp := postJSON(t, srv.URL+"/v2/predict", PredictRequestV2{
		Scenario: "backup", Region: "r", History: FromSeries(weekHistory()), Horizon: 288,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var vz Varz
	r, err := http.Get(srv.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&vz); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if vz.Admission != nil {
		t.Error("disabled admission must not appear on varz")
	}
}

// The degraded fallback must equal a pf-prev-day deployment's answer: the
// brownout trades model quality, never correctness of the cheap model.
func TestBrownoutForecastEqualsPersistentDeployment(t *testing.T) {
	_, svc, reg := v2Server(t, ServiceConfig{MaxInflight: 1, Brownout: true})
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")

	req := PredictRequestV2{
		Scenario: "backup", Region: "r", History: FromSeries(weekHistory()), Horizon: 288, WindowPoints: 12,
	}
	full, serr := svc.Predict(context.Background(), req)
	if serr != nil {
		t.Fatal(serr)
	}
	deg, serr := svc.PredictDegraded(context.Background(), req)
	if serr != nil {
		t.Fatal(serr)
	}
	if !deg.Degraded || deg.Model != full.Model {
		t.Fatalf("degraded = %+v vs full model %q", deg.Degraded, full.Model)
	}
	if len(full.Forecast.Values) != len(deg.Forecast.Values) {
		t.Fatal("forecast lengths differ")
	}
	for i := range full.Forecast.Values {
		if full.Forecast.Values[i] != deg.Forecast.Values[i] {
			t.Fatalf("forecast differs at %d: %v vs %v", i, full.Forecast.Values[i], deg.Forecast.Values[i])
		}
	}
	if full.LLStart != deg.LLStart || full.LLAvg != deg.LLAvg {
		t.Fatalf("lowest-load window differs: (%d,%v) vs (%d,%v)", full.LLStart, full.LLAvg, deg.LLStart, deg.LLAvg)
	}
}
