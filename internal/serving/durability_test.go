package serving

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/forecast"
	"seagull/internal/lake"
	"seagull/internal/registry"
	"seagull/internal/stream"
)

// TestReadyDegraded: a degraded service keeps serving (200) but reports the
// state honestly on /readyz and /varz instead of pretending full health.
func TestReadyDegraded(t *testing.T) {
	c, svc, _, _, _ := streamServer(t)
	svc.SetDegraded("degraded: live window cold-started")

	resp, err := http.Get(c.BaseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 (degraded still serves)", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "degraded" || body["reason"] == "" {
		t.Fatalf("/readyz body = %v, want degraded with a reason", body)
	}

	vz, err := c.Varz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vz.Degraded != "degraded: live window cold-started" {
		t.Fatalf("varz degraded = %q", vz.Degraded)
	}

	// Clearing restores the ready verdict, and draining still outranks it.
	svc.SetDegraded("")
	if vz, err = c.Varz(context.Background()); err != nil || vz.Degraded != "" {
		t.Fatalf("after clear: degraded = %q (err %v)", vz.Degraded, err)
	}
	if !c.Ready(context.Background()) {
		t.Fatal("cleared service not ready")
	}
	svc.SetDegraded("degraded: live window cold-started")
	svc.SetReady(false)
	if c.Ready(context.Background()) {
		t.Fatal("draining service reported ready")
	}
}

// TestPredictLiveHistoryInsufficient: a thin live window (the cold-start
// symptom) fails with a structured insufficient_history error rather than a
// silently worse forecast; a full window predicts normally.
func TestPredictLiveHistoryInsufficient(t *testing.T) {
	c, _, reg, _, ing := streamServer(t)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	ctx := context.Background()

	// 100 points is well under the default one-day (288-point) floor.
	thin := make([]float64, 100)
	for i := range thin {
		thin[i] = float64(10 + i%5)
	}
	if _, err := c.Ingest(ctx, IngestRequest{Servers: []IngestSeries{
		{ServerID: "srv-thin", Start: ing.Epoch(), IntervalMin: 5, Values: thin},
	}}); err != nil {
		t.Fatal(err)
	}
	_, err := c.PredictV2(ctx, PredictRequestV2{
		Scenario: "backup", Region: "r", ServerID: "srv-thin",
		LiveHistory: true, Horizon: 288,
	})
	if !hasCode(err, CodeInsufficientHistory) {
		t.Fatalf("thin-window predict err = %v, want %s", err, CodeInsufficientHistory)
	}
	apiErr := err.(*APIError)
	if apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", apiErr.Status)
	}
}

// TestPredictLiveHistoryFloorConfig: the floor is tunable and can be
// disabled.
func TestPredictLiveHistoryFloorConfig(t *testing.T) {
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(nil)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "")
	ing := stream.NewIngestor(stream.Config{Epoch: time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)})
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(i % 9)
	}
	if _, err := ing.AppendSeries("srv", ing.Epoch(), vals); err != nil {
		t.Fatal(err)
	}

	strict := NewService(reg, db, ServiceConfig{Ingestor: ing, MinLivePoints: 400})
	_, serr := strict.Predict(context.Background(), PredictRequestV2{
		Scenario: "backup", Region: "r", ServerID: "srv", LiveHistory: true, Horizon: 10,
	})
	if serr == nil || serr.Code != CodeInsufficientHistory {
		t.Fatalf("strict floor err = %v, want insufficient_history", serr)
	}

	lax := NewService(reg, db, ServiceConfig{Ingestor: ing, MinLivePoints: -1})
	if _, serr := lax.Predict(context.Background(), PredictRequestV2{
		Scenario: "backup", Region: "r", ServerID: "srv", LiveHistory: true, Horizon: 10,
	}); serr != nil {
		t.Fatalf("disabled floor err = %v, want success", serr)
	}
}

// TestVarzDurability: an attached Durability surfaces its WAL and snapshot
// counters on /varz.
func TestVarzDurability(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db, err2 := cosmos.Open("")
	if err2 != nil {
		t.Fatal(err2)
	}
	reg := registry.New(nil)
	ing := stream.NewIngestor(stream.Config{})
	dur := stream.NewDurability(ing, store, stream.DurabilityConfig{SnapshotEvery: -1, CommitEvery: time.Hour})
	if _, err := dur.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := dur.Open(); err != nil {
		t.Fatal(err)
	}
	defer dur.Close()

	svc := NewService(reg, db, ServiceConfig{Ingestor: ing, Durability: dur})
	c := NewClient(newTestHTTPServer(t, svc))

	ing.Append("srv", time.Now().Add(-time.Hour), 5)
	if err := dur.CommitNow(); err != nil {
		t.Fatal(err)
	}
	vz, err := c.Varz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vz.Durability == nil || !vz.Durability.WAL || vz.Durability.CommitRecords != 1 {
		t.Fatalf("varz durability = %+v, want one committed record", vz.Durability)
	}
	if vz.Durability.Recovered == nil {
		t.Fatal("varz durability missing the boot recovery outcome")
	}
}
