package extract

import (
	"testing"
	"time"

	"seagull/internal/lake"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

func testFleet(t *testing.T, servers int) *simulate.Fleet {
	t.Helper()
	return simulate.GenerateFleet(simulate.Config{
		Region: "testregion", Servers: servers, Weeks: 2, Seed: 3,
	})
}

func testStore(t *testing.T) *lake.Store {
	t.Helper()
	s, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExtractWeekRowCount(t *testing.T) {
	fleet := testFleet(t, 20)
	store := testStore(t)
	n, err := ExtractWeek(store, fleet, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every server alive in week 0 contributes its in-week points.
	want := 0
	start, _ := fleet.Span()
	weekEnd := start.Add(7 * 24 * time.Hour)
	for _, srv := range fleet.Servers {
		want += srv.Load().Between(start, weekEnd).Len()
	}
	if n != want {
		t.Errorf("rows = %d, want %d", n, want)
	}
	if sz, err := store.Size(Dataset, "testregion", 0); err != nil || sz == 0 {
		t.Errorf("object size = %d err %v", sz, err)
	}
}

func TestExtractIngestRoundTrip(t *testing.T) {
	fleet := testFleet(t, 15)
	store := testStore(t)
	if _, err := ExtractWeek(store, fleet, 1); err != nil {
		t.Fatal(err)
	}
	loads, err := Ingest(store, "testregion", 1, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	start, _ := fleet.Span()
	weekStart := start.Add(7 * 24 * time.Hour)
	weekEnd := weekStart.Add(7 * 24 * time.Hour)

	byID := map[string]*ServerLoad{}
	for _, sl := range loads {
		byID[sl.ServerID] = sl
	}
	for _, srv := range fleet.Servers {
		sub := srv.Load().Between(weekStart, weekEnd)
		sl, ok := byID[srv.ID]
		if sub.Len() == 0 {
			if ok {
				t.Errorf("%s absent in week but ingested", srv.ID)
			}
			continue
		}
		if !ok {
			t.Fatalf("%s missing from ingest", srv.ID)
		}
		if sl.Load.Len() != sub.Len() {
			t.Fatalf("%s ingested %d points, want %d", srv.ID, sl.Load.Len(), sub.Len())
		}
		for i := range sub.Values {
			a, b := sub.Values[i], sl.Load.Values[i]
			if timeseries.IsMissing(a) != timeseries.IsMissing(b) {
				t.Fatalf("%s missing mismatch at %d", srv.ID, i)
			}
			if !timeseries.IsMissing(a) && abs(a-b) > 0.001 { // 3-decimal CSV precision
				t.Fatalf("%s value mismatch at %d: %v vs %v", srv.ID, i, a, b)
			}
		}
		if !sl.Load.Start.Equal(sub.Start) {
			t.Errorf("%s start %v, want %v", srv.ID, sl.Load.Start, sub.Start)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestIngestBackupWindow(t *testing.T) {
	fleet := testFleet(t, 10)
	store := testStore(t)
	if _, err := ExtractWeek(store, fleet, 0); err != nil {
		t.Fatal(err)
	}
	loads, err := Ingest(store, "testregion", 0, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*simulate.Server{}
	for _, srv := range fleet.Servers {
		byID[srv.ID] = srv
	}
	for _, sl := range loads {
		srv := byID[sl.ServerID]
		if srv == nil {
			t.Fatalf("unknown server %s", sl.ServerID)
		}
		if got := sl.BackupEnd.Sub(sl.BackupStart); got != srv.BackupDuration {
			t.Errorf("%s backup duration %v, want %v", sl.ServerID, got, srv.BackupDuration)
		}
		if sl.BackupStart.Weekday() != srv.BackupDay {
			t.Errorf("%s backup day %v, want %v", sl.ServerID, sl.BackupStart.Weekday(), srv.BackupDay)
		}
		if wp := sl.WindowPoints(); wp != srv.WindowPoints() {
			t.Errorf("%s window points %d, want %d", sl.ServerID, wp, srv.WindowPoints())
		}
	}
}

func TestExtractMissingEncodedNegative(t *testing.T) {
	fleet := simulate.GenerateFleet(simulate.Config{
		Region: "gap", Servers: 10, Weeks: 1, Seed: 5, MissingRate: 0.05,
	})
	store := testStore(t)
	if _, err := ExtractWeek(store, fleet, 0); err != nil {
		t.Fatal(err)
	}
	loads, err := Ingest(store, "gap", 0, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	missing := 0
	for _, sl := range loads {
		missing += sl.Load.MissingCount()
	}
	if missing == 0 {
		t.Error("expected missing points to survive the round trip")
	}
}

func TestExtractAll(t *testing.T) {
	fleet := testFleet(t, 8)
	store := testStore(t)
	total, err := ExtractAll(store, fleet)
	if err != nil {
		t.Fatal(err)
	}
	weeks, err := store.Weeks(Dataset, "testregion")
	if err != nil || len(weeks) != 2 {
		t.Fatalf("weeks = %v err %v", weeks, err)
	}
	n0, _ := ExtractWeek(store, fleet, 0)
	n1, _ := ExtractWeek(store, fleet, 1)
	if total != n0+n1 {
		t.Errorf("total = %d, want %d", total, n0+n1)
	}
}

func TestWeekOf(t *testing.T) {
	start := time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)
	if w := WeekOf(start, start); w != 0 {
		t.Errorf("week of start = %d", w)
	}
	if w := WeekOf(start, start.Add(8*24*time.Hour)); w != 1 {
		t.Errorf("week of day 8 = %d", w)
	}
}

func TestIngestMissingObject(t *testing.T) {
	store := testStore(t)
	if _, err := Ingest(store, "ghost", 0, 5*time.Minute); err == nil {
		t.Error("missing extract should error")
	}
}
