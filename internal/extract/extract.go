// Package extract implements Seagull's Load Extraction module (Section 2.2):
// "a recurring query that extracts relevant data from raw production
// telemetry and stores this data in Azure Data Lake Store". Here the raw
// telemetry is the simulated fleet; the extraction writes one CSV object per
// region per week into the lake, and the ingestion side reads such an object
// back into per-server series for the pipeline.
//
// Concurrency: extraction and ingestion are stateless functions over the
// lake; distinct (region, week) objects may be processed concurrently.
// Equivalence: extract → ingest round-trips a fleet's telemetry exactly (the
// CSV codec is lossless for the paper's value precision), so the pipeline
// sees the same series the simulator generated.
package extract

import (
	"fmt"
	"sort"
	"time"

	"seagull/internal/lake"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

// Dataset is the lake dataset name for backup-scheduling extracts.
const Dataset = "pgmysql-load"

// WeekOf returns the 0-based week index of t relative to fleetStart.
func WeekOf(fleetStart, t time.Time) int {
	return int(t.Sub(fleetStart) / (7 * 24 * time.Hour))
}

// ExtractWeek runs the weekly extraction query for one fleet: it selects all
// telemetry falling inside week (0-based from the fleet start) and writes it
// to the lake partition for (fleet region, week). It returns the number of
// rows written.
//
// Rows are ordered by server then time, which is how the production query
// clusters its output.
func ExtractWeek(store *lake.Store, fleet *simulate.Fleet, week int) (int, error) {
	start, _ := fleet.Span()
	weekStart := start.Add(time.Duration(week) * 7 * 24 * time.Hour)
	weekEnd := weekStart.Add(7 * 24 * time.Hour)

	w, err := store.Writer(Dataset, fleet.Config.Region, week)
	if err != nil {
		return 0, err
	}
	defer w.Close()

	if _, err := fmt.Fprintln(w, lake.Header); err != nil {
		return 0, err
	}
	rows := 0
	buf := make([]byte, 0, 96)
	for _, srv := range fleet.Servers {
		sub := srv.Load().Between(weekStart, weekEnd)
		if sub.Len() == 0 {
			continue
		}
		// The default backup window of the server on its backup day within
		// this week.
		backupDayStart := weekStart.Add(time.Duration((int(srv.BackupDay)-int(weekStart.Weekday())+7)%7) * 24 * time.Hour)
		bStart := backupDayStart.Add(srv.DefaultBackupStart)
		bEnd := bStart.Add(srv.BackupDuration)
		for i := 0; i < sub.Len(); i++ {
			v := sub.Values[i]
			if timeseries.IsMissing(v) {
				v = -1 // missing encodes as negative in the extract format
			}
			r := lake.Row{
				ServerID:       srv.ID,
				TimestampMin:   sub.TimeAt(i).Unix() / 60,
				CPUPct:         v,
				BackupStartMin: bStart.Unix() / 60,
				BackupEndMin:   bEnd.Unix() / 60,
			}
			buf = lake.AppendRow(buf[:0], &r)
			if _, err := w.Write(buf); err != nil {
				return rows, err
			}
			rows++
		}
	}
	if err := w.Close(); err != nil {
		return rows, err
	}
	return rows, nil
}

// ExtractAll runs ExtractWeek for every whole week of the fleet span and
// returns the total rows written.
func ExtractAll(store *lake.Store, fleet *simulate.Fleet) (int, error) {
	total := 0
	for week := 0; week < fleet.Config.Weeks; week++ {
		n, err := ExtractWeek(store, fleet, week)
		if err != nil {
			return total, fmt.Errorf("extract week %d: %w", week, err)
		}
		total += n
	}
	return total, nil
}

// ServerLoad is the ingested telemetry of one server for one week.
type ServerLoad struct {
	ServerID string
	Load     timeseries.Series
	// BackupStart/BackupEnd delimit the server's default backup window.
	BackupStart time.Time
	BackupEnd   time.Time
}

// WindowPoints returns the server's backup duration in observations.
func (s *ServerLoad) WindowPoints() int {
	if s.Load.Interval <= 0 {
		return 0
	}
	n := int(s.BackupEnd.Sub(s.BackupStart) / s.Load.Interval)
	if n < 1 {
		n = 1
	}
	return n
}

// Ingest reads one weekly extract back into per-server series, sorted by
// server id. Interval is the telemetry granularity of the dataset (5 minutes
// for PostgreSQL/MySQL servers). Negative CPU readings become missing points.
func Ingest(store *lake.Store, region string, week int, interval time.Duration) ([]*ServerLoad, error) {
	r, err := store.Reader(Dataset, region, week)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	type acc struct {
		sl    *ServerLoad
		times []int64
		vals  []float64
	}
	byServer := map[string]*acc{}
	err = lake.ScanRows(r, func(row lake.Row) error {
		a, ok := byServer[row.ServerID]
		if !ok {
			a = &acc{sl: &ServerLoad{
				ServerID:    row.ServerID,
				BackupStart: time.Unix(row.BackupStartMin*60, 0).UTC(),
				BackupEnd:   time.Unix(row.BackupEndMin*60, 0).UTC(),
			}}
			byServer[row.ServerID] = a
		}
		a.times = append(a.times, row.TimestampMin)
		v := row.CPUPct
		if v < 0 {
			v = timeseries.Missing
		}
		a.vals = append(a.vals, v)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("extract: ingest %s week %d: %w", region, week, err)
	}

	out := make([]*ServerLoad, 0, len(byServer))
	step := int64(interval / time.Minute)
	for _, a := range byServer {
		// Rows arrive time-ordered per server from ExtractWeek, but re-check
		// and place by timestamp to tolerate shuffled files.
		first, last := a.times[0], a.times[0]
		for _, t := range a.times {
			if t < first {
				first = t
			}
			if t > last {
				last = t
			}
		}
		n := int((last-first)/step) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = timeseries.Missing
		}
		for i, t := range a.times {
			vals[(t-first)/step] = a.vals[i]
		}
		a.sl.Load = timeseries.New(time.Unix(first*60, 0).UTC(), interval, vals)
		out = append(out, a.sl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ServerID < out[j].ServerID })
	return out, nil
}
