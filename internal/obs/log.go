package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a structured logger writing to w. format is "text" or
// "json"; level is "debug", "info", "warn" or "error". Both are
// case-sensitive flag values validated here so seagull-serve fails fast on a
// typo instead of logging nothing.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text|json)", format)
	}
}

// Nop returns a logger that discards everything — the default for components
// whose config carries no logger.
func Nop() *slog.Logger { return slog.New(slog.DiscardHandler) }

// LoggerOr returns l, or a discarding logger when l is nil, so components
// log unconditionally without nil checks.
func LoggerOr(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Nop()
	}
	return l
}
