package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"seagull/internal/simclock"
)

func TestTraceSpansAndViews(t *testing.T) {
	clock := simclock.NewSimulated(time.Unix(0, 0).UTC())
	tr := NewTracer(TracerConfig{Clock: clock})

	trace := tr.Start("POST /v2/predict", "req-1")
	if trace == nil {
		t.Fatal("Start returned nil on a live tracer")
	}
	if got := trace.RequestID(); got != "req-1" {
		t.Fatalf("RequestID = %q, want req-1", got)
	}
	sp := trace.Begin(StageCheckout)
	clock.Advance(2 * time.Millisecond)
	sp.EndHit(true)
	sp = trace.Begin(StageTrain)
	clock.Advance(5 * time.Millisecond)
	sp.EndHit(false)
	tr.Finish(trace, 200)

	recent := tr.Recent(10)
	if len(recent) != 1 {
		t.Fatalf("Recent = %d traces, want 1", len(recent))
	}
	v := recent[0]
	if v.Op != "POST /v2/predict" || v.RequestID != "req-1" || v.Status != 200 {
		t.Fatalf("unexpected trace view: %+v", v)
	}
	if v.TotalMs != 7 {
		t.Fatalf("TotalMs = %v, want 7", v.TotalMs)
	}
	if len(v.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(v.Spans))
	}
	if v.Spans[0].Stage != "checkout" || !v.Spans[0].Hit || v.Spans[0].DurMs != 2 {
		t.Fatalf("span 0 = %+v", v.Spans[0])
	}
	if v.Spans[1].Stage != "train" || v.Spans[1].Hit || v.Spans[1].DurMs != 5 || v.Spans[1].StartMs != 2 {
		t.Fatalf("span 1 = %+v", v.Spans[1])
	}

	stats := tr.StageStats()
	if len(stats) != 2 {
		t.Fatalf("StageStats = %+v, want 2 stages", stats)
	}
	if stats[0].Stage != "checkout" || stats[0].Count != 1 || stats[0].Hits != 1 {
		t.Fatalf("checkout agg = %+v", stats[0])
	}
	if stats[1].Stage != "train" || stats[1].Count != 1 || stats[1].Hits != 0 || stats[1].TotalMs != 5 || stats[1].MaxMs != 5 {
		t.Fatalf("train agg = %+v", stats[1])
	}
}

func TestTracerGeneratesRequestID(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	trace := tr.Start("op", "")
	if id := trace.RequestID(); id == "" {
		t.Fatal("empty generated request id")
	}
	tr.Finish(trace, 0)
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	trace := tr.Start("op", "id") // nil tracer → nil trace
	if trace != nil {
		t.Fatal("nil tracer returned a trace")
	}
	sp := trace.Begin(StageTrain) // nil trace → inert span
	sp.End()
	sp.EndHit(true)
	tr.Finish(trace, 200)
	if got := tr.Recent(5); got != nil {
		t.Fatalf("Recent on nil tracer = %v", got)
	}
	if got := tr.Slowest(); got != nil {
		t.Fatalf("Slowest on nil tracer = %v", got)
	}
	if got := tr.StageStats(); got != nil {
		t.Fatalf("StageStats on nil tracer = %v", got)
	}
	if trace.RequestID() != "" {
		t.Fatal("nil trace has a request id")
	}
}

func TestRingRecyclesWithoutGrowth(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 16})
	for i := 0; i < 1000; i++ {
		trace := tr.Start("op", "x")
		trace.Begin(StageTrain).End()
		tr.Finish(trace, 200)
	}
	if got := len(tr.Recent(1000)); got != 16 {
		t.Fatalf("ring retained %d traces, want 16", got)
	}
	if tr.Overruns() != 0 {
		t.Fatalf("overruns = %d, want 0", tr.Overruns())
	}
}

func TestRingOverrunSkipsInsteadOfCorrupting(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: numStripes}) // one slot per stripe
	held := make([]*Trace, 0, numStripes)
	for i := 0; i < numStripes; i++ {
		held = append(held, tr.Start("held", "x"))
	}
	// Every slot is owned by an unfinished trace: new starts must be skipped.
	if got := tr.Start("next", "y"); got != nil {
		t.Fatalf("Start reused an active slot: %+v", got)
	}
	if tr.Overruns() != 1 {
		t.Fatalf("overruns = %d, want 1", tr.Overruns())
	}
	// Active slots must be invisible to renderers.
	if got := tr.Recent(100); len(got) != 0 {
		t.Fatalf("Recent exposed %d active traces", len(got))
	}
	for _, h := range held {
		tr.Finish(h, 200)
	}
	if got := len(tr.Recent(100)); got != numStripes {
		t.Fatalf("Recent after finish = %d, want %d", got, numStripes)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	trace := tr.Start("batch", "x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				trace.Begin(StageTrain).End()
			}
		}()
	}
	wg.Wait()
	tr.Finish(trace, 200)
	v := tr.Recent(1)[0]
	if len(v.Spans) != MaxSpans {
		t.Fatalf("spans = %d, want capped at %d", len(v.Spans), MaxSpans)
	}
	if v.DroppedSpans != 80-MaxSpans {
		t.Fatalf("dropped = %d, want %d", v.DroppedSpans, 80-MaxSpans)
	}
	if st := tr.StageStats(); len(st) != 1 || st[0].Count != 80 {
		t.Fatalf("aggregates should count dropped spans too: %+v", st)
	}
}

func TestSlowestBoard(t *testing.T) {
	clock := simclock.NewSimulated(time.Unix(0, 0).UTC())
	tr := NewTracer(TracerConfig{Slowest: 2, Clock: clock})
	for _, ms := range []int{5, 1, 9, 3, 7} {
		trace := tr.Start("op", "x")
		clock.Advance(time.Duration(ms) * time.Millisecond)
		tr.Finish(trace, 200)
	}
	slow := tr.Slowest()
	if len(slow) != 2 {
		t.Fatalf("board holds %d, want 2", len(slow))
	}
	if slow[0].TotalMs != 9 || slow[1].TotalMs != 7 {
		t.Fatalf("slowest = %v / %v ms, want 9 / 7", slow[0].TotalMs, slow[1].TotalMs)
	}
}

func TestSlowThresholdEmitsSpanTree(t *testing.T) {
	clock := simclock.NewSimulated(time.Unix(0, 0).UTC())
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(TracerConfig{SlowThreshold: 10 * time.Millisecond, Logger: logger, Clock: clock})

	fast := tr.Start("op", "fast-req")
	clock.Advance(time.Millisecond)
	tr.Finish(fast, 200)
	if buf.Len() != 0 {
		t.Fatalf("fast trace logged: %s", buf.String())
	}

	slow := tr.Start("op", "slow-req")
	sp := slow.Begin(StageTrain)
	clock.Advance(15 * time.Millisecond)
	sp.End()
	tr.Finish(slow, 200)
	out := buf.String()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, "slow-req") {
		t.Fatalf("slow trace not logged: %q", out)
	}
	if !strings.Contains(out, "train=15.000ms") {
		t.Fatalf("span tree missing from slow log: %q", out)
	}
}

func TestContextCarriers(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx := context.Background()
	if got := TraceFrom(ctx); got != nil {
		t.Fatal("TraceFrom on bare context should be nil")
	}

	trace := tr.Start("op", "x")
	if got := TraceFrom(ContextWithTrace(ctx, trace)); got != trace {
		t.Fatal("direct carrier did not round-trip")
	}

	var ref TraceRef
	rctx := ContextWithTraceRef(ctx, &ref)
	if got := TraceFrom(rctx); got != nil {
		t.Fatal("unset ref should resolve nil")
	}
	ref.Set(trace)
	if got := TraceFrom(rctx); got != trace {
		t.Fatal("ref carrier did not round-trip")
	}
	ref.Set(nil)
	if got := TraceFrom(rctx); got != nil {
		t.Fatal("cleared ref should resolve nil")
	}
	tr.Finish(trace, 0)
}

// TestSimulatedClockDeterminism pins the property seagull-simulate depends
// on: under a simulated clock, identical event sequences produce identical
// span durations and stage aggregates.
func TestSimulatedClockDeterminism(t *testing.T) {
	run := func() []StageStat {
		clock := simclock.NewSimulated(time.Unix(0, 0).UTC())
		tr := NewTracer(TracerConfig{Clock: clock})
		for i := 0; i < 5; i++ {
			trace := tr.Start("op", "x")
			sp := trace.Begin(StageSweep)
			clock.Advance(time.Duration(i) * time.Millisecond)
			sp.End()
			tr.Finish(trace, 0)
		}
		return tr.StageStats()
	}
	a, b := run(), run()
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("nondeterministic stage stats: %+v vs %+v", a, b)
	}
}

func BenchmarkTraceStartFinish(b *testing.B) {
	tr := NewTracer(TracerConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace := tr.Start("op", "bench")
		trace.Begin(StageCheckout).EndHit(true)
		trace.Begin(StageTrain).End()
		trace.Begin(StageInference).End()
		tr.Finish(trace, 200)
	}
}
