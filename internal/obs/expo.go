package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ExpoContentType is the Prometheus text exposition content type served by
// /metrics.
const ExpoContentType = "text/plain; version=0.0.4; charset=utf-8"

// Expo writes the Prometheus text exposition format (version 0.0.4) with the
// standard library only. Errors are sticky: the first write failure is
// retained and every later call is a no-op, so render code reads linearly
// without per-line error plumbing.
type Expo struct {
	w   *bufio.Writer
	err error
}

// NewExpo wraps w for exposition writing. Call Flush when done.
func NewExpo(w io.Writer) *Expo { return &Expo{w: bufio.NewWriter(w)} }

// Flush flushes the buffer and returns the first error encountered.
func (e *Expo) Flush() error {
	if e.err == nil {
		e.err = e.w.Flush()
	}
	return e.err
}

func (e *Expo) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.WriteString(s)
}

// Header declares a metric family: a # HELP line then a # TYPE line. typ is
// "counter", "gauge" or "histogram". Emit it once per family, before its
// samples.
func (e *Expo) Header(name, typ, help string) {
	e.writeString("# HELP ")
	e.writeString(name)
	e.writeString(" ")
	e.writeString(escapeHelp(help))
	e.writeString("\n# TYPE ")
	e.writeString(name)
	e.writeString(" ")
	e.writeString(typ)
	e.writeString("\n")
}

// Sample emits one sample line. labels is a pre-rendered label set from
// Labels ("" for none).
func (e *Expo) Sample(name, labels string, v float64) {
	e.writeString(name)
	e.writeString(labels)
	e.writeString(" ")
	e.writeString(formatValue(v))
	e.writeString("\n")
}

// Gauge emits a complete single-sample gauge family.
func (e *Expo) Gauge(name, help string, v float64) {
	e.Header(name, "gauge", help)
	e.Sample(name, "", v)
}

// Counter emits a complete single-sample counter family.
func (e *Expo) Counter(name, help string, v float64) {
	e.Header(name, "counter", help)
	e.Sample(name, "", v)
}

// Histogram emits one labeled histogram series: cumulative <name>_bucket
// lines for each upper bound plus +Inf, then <name>_sum and <name>_count.
// bounds are the bucket upper bounds; counts holds the per-bucket
// (non-cumulative) observation counts with one extra trailing overflow
// entry, matching the /varz histogram layout. The family Header must have
// been emitted by the caller.
func (e *Expo) Histogram(name, labels string, bounds []float64, counts []uint64, sum float64) {
	cum := uint64(0)
	for i, bound := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		e.Sample(name+"_bucket", withLE(labels, formatValue(bound)), float64(cum))
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	e.Sample(name+"_bucket", withLE(labels, "+Inf"), float64(cum))
	e.Sample(name+"_sum", labels, sum)
	e.Sample(name+"_count", labels, float64(cum))
}

// withLE appends the le label to a pre-rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

// Labels renders key/value pairs as an exposition label set, escaping values
// per the format rules. An odd trailing key is ignored.
func Labels(pairs ...string) string {
	if len(pairs) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value: backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatValue renders a sample value in the shortest round-trip form.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
