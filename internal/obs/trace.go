package obs

import (
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seagull/internal/simclock"
)

// MaxSpans is the per-trace span capacity. Spans beyond it are dropped (and
// counted) rather than allocated: a fixed array is what keeps span recording
// off the allocator. Sixteen covers the deepest real request — a batch
// predict records one train+inference pair per worker checkout, and a
// refresh job records five stages.
const MaxSpans = 16

// numStripes shards the trace ring. Eight stripes keep Finish-time lock
// traffic negligible against the serving layer's worker counts.
const numStripes = 8

// Span is one recorded stage within a trace. Times are offsets from the
// trace start, on the tracer's clock.
type Span struct {
	Stage   Stage
	Flag    uint8
	StartNs int64
	DurNs   int64
}

// Trace is one in-flight or completed request trace. Traces live inside the
// tracer's ring slots and are recycled: a *Trace obtained from Start is
// valid until Finish, after which the tracer may hand the slot to a new
// request. Span recording is safe from multiple goroutines (batch predicts
// record concurrently from every fan-out worker).
type Trace struct {
	t     *Tracer
	op    string
	reqID string
	start time.Time
	seq   uint64

	totalNs int64
	status  int

	// active marks the slot as owned by an in-flight request; it is guarded
	// by the owning stripe's mutex so renderers can skip live slots.
	active bool

	nspans  atomic.Int32
	dropped atomic.Uint32
	spans   [MaxSpans]Span
}

// RequestID returns the trace's request ID ("" on a nil trace), joining logs
// to traces.
func (tr *Trace) RequestID() string {
	if tr == nil {
		return ""
	}
	return tr.reqID
}

// ActiveSpan is an open span handle returned by Trace.Begin. The zero value
// (from a nil trace) is inert, so call sites need no nil checks.
type ActiveSpan struct {
	tr    *Trace
	start time.Time
	stage Stage
}

// Begin opens a span for stage. Nil-safe: on a nil trace the returned handle
// does nothing, and no clock is read.
func (tr *Trace) Begin(stage Stage) ActiveSpan {
	if tr == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{tr: tr, stage: stage, start: tr.t.clock.Now()}
}

// End closes the span with no flag.
func (s ActiveSpan) End() { s.end(0) }

// EndHit closes the span, setting FlagHit when hit is true (warm checkout,
// train-memo skip).
func (s ActiveSpan) EndHit(hit bool) {
	var flag uint8
	if hit {
		flag = FlagHit
	}
	s.end(flag)
}

func (s ActiveSpan) end(flag uint8) {
	if s.tr == nil {
		return
	}
	now := s.tr.t.clock.Now()
	s.tr.record(s.stage, flag, s.start.Sub(s.tr.start), now.Sub(s.start))
}

// record claims the next span slot lock-free (concurrent batch workers write
// distinct indices) and folds the duration into the tracer's per-stage
// aggregates. Spans beyond MaxSpans are counted, not stored.
func (tr *Trace) record(stage Stage, flag uint8, startOff, dur time.Duration) {
	a := &tr.t.stages[stage]
	a.count.Add(1)
	a.sumNs.Add(int64(dur))
	if flag&FlagHit != 0 {
		a.hits.Add(1)
	}
	for {
		max := a.maxNs.Load()
		if int64(dur) <= max || a.maxNs.CompareAndSwap(max, int64(dur)) {
			break
		}
	}
	i := tr.nspans.Add(1) - 1
	if int(i) >= MaxSpans {
		tr.dropped.Add(1)
		return
	}
	tr.spans[i] = Span{Stage: stage, Flag: flag, StartNs: int64(startOff), DurNs: int64(dur)}
}

// stageAgg accumulates one stage's lifetime aggregates across all traces.
type stageAgg struct {
	count atomic.Uint64
	hits  atomic.Uint64
	sumNs atomic.Int64
	maxNs atomic.Int64
}

// stripe is one shard of the trace ring.
type stripe struct {
	mu    sync.Mutex
	slots []Trace
	next  int
}

// boardEntry is one slowest-N slot: a by-value copy of a qualifying trace,
// pre-allocated so offering never touches the allocator.
type boardEntry struct {
	used    bool
	op      string
	reqID   string
	start   time.Time
	seq     uint64
	totalNs int64
	status  int
	n       int32
	dropped uint32
	spans   [MaxSpans]Span
}

// board keeps the slowest-N completed traces. minNs caches the board's
// smallest total once full, so the hot-path pre-check is one atomic load.
type board struct {
	mu      sync.Mutex
	full    atomic.Bool
	minNs   atomic.Int64
	entries []boardEntry
}

func (b *board) offer(tr *Trace) {
	if len(b.entries) == 0 {
		return
	}
	if b.full.Load() && tr.totalNs <= b.minNs.Load() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Replace the smallest entry (or fill a free one).
	victim, minNs := -1, int64(0)
	for i := range b.entries {
		e := &b.entries[i]
		if !e.used {
			victim, minNs = i, 0
			break
		}
		if victim == -1 || e.totalNs < minNs {
			victim, minNs = i, e.totalNs
		}
	}
	if b.entries[victim].used && tr.totalNs <= minNs {
		return
	}
	e := &b.entries[victim]
	e.used = true
	e.op, e.reqID, e.start, e.seq = tr.op, tr.reqID, tr.start, tr.seq
	e.totalNs, e.status = tr.totalNs, tr.status
	e.n = clampSpans(tr.nspans.Load())
	e.dropped = tr.dropped.Load()
	e.spans = tr.spans
	// Refresh the cached minimum.
	full, min := true, int64(-1)
	for i := range b.entries {
		if !b.entries[i].used {
			full = false
			break
		}
		if min == -1 || b.entries[i].totalNs < min {
			min = b.entries[i].totalNs
		}
	}
	if full {
		b.minNs.Store(min)
	}
	b.full.Store(full)
}

func clampSpans(n int32) int32 {
	if n > MaxSpans {
		return MaxSpans
	}
	return n
}

// TracerConfig parameterizes a Tracer. The zero value retains 512 traces,
// keeps the 16 slowest, and never emits slow-trace logs.
type TracerConfig struct {
	// RingSize is the total retained recent traces, rounded up to a multiple
	// of the stripe count. Default 512.
	RingSize int
	// Slowest is the slowest-N board capacity. Default 16; negative disables
	// the board.
	Slowest int
	// SlowThreshold emits a structured log line with the full span tree for
	// every trace whose total duration reaches it. 0 disables.
	SlowThreshold time.Duration
	// Logger receives slow-trace emissions; nil uses slog.Default() when a
	// threshold is set.
	Logger *slog.Logger
	// Clock supplies span timestamps; nil means the wall clock. Under a
	// simulated clock span durations are simulated time — deterministic per
	// seed, which seagull-simulate relies on.
	Clock simclock.Clock
}

// Tracer records request traces into a lock-striped fixed ring. All methods
// are safe for concurrent use and nil-safe, so call sites wire a tracer
// through config fields without guarding every touch.
type Tracer struct {
	cfg      TracerConfig
	clock    simclock.Clock
	seq      atomic.Uint64
	overruns atomic.Uint64
	stripes  [numStripes]stripe
	stages   [numStages]stageAgg
	board    board
}

// NewTracer builds a tracer with cfg's ring geometry.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 512
	}
	perStripe := (cfg.RingSize + numStripes - 1) / numStripes
	if cfg.Slowest == 0 {
		cfg.Slowest = 16
	}
	if cfg.Slowest < 0 {
		cfg.Slowest = 0
	}
	t := &Tracer{cfg: cfg, clock: simclock.Or(cfg.Clock)}
	if cfg.SlowThreshold > 0 && cfg.Logger == nil {
		t.cfg.Logger = slog.Default()
	}
	for i := range t.stripes {
		t.stripes[i].slots = make([]Trace, perStripe)
	}
	t.board.entries = make([]boardEntry, cfg.Slowest)
	return t
}

// Start claims a ring slot and begins a trace for op. requestID may be empty;
// a stable ID is then minted from the trace sequence number. Returns nil —
// which every downstream method tolerates — on a nil tracer, or when the
// claimed slot is still owned by a request older than the whole ring.
func (t *Tracer) Start(op, requestID string) *Trace {
	if t == nil {
		return nil
	}
	seq := t.seq.Add(1)
	st := &t.stripes[seq%numStripes]
	st.mu.Lock()
	tr := &st.slots[st.next]
	if tr.active {
		// The request that owns this slot outlived the entire ring; skip
		// tracing this one rather than corrupting a live trace.
		st.mu.Unlock()
		t.overruns.Add(1)
		return nil
	}
	tr.active = true
	st.next++
	if st.next == len(st.slots) {
		st.next = 0
	}
	st.mu.Unlock()
	if requestID == "" {
		requestID = mintID(seq)
	}
	tr.t = t
	tr.op = op
	tr.reqID = requestID
	tr.seq = seq
	tr.start = t.clock.Now()
	tr.totalNs = 0
	tr.status = 0
	tr.nspans.Store(0)
	tr.dropped.Store(0)
	return tr
}

// mintID derives a request ID from the trace sequence number. It allocates
// one small string; callers that must stay allocation-free pass their own ID.
func mintID(seq uint64) string { return "r-" + strconv.FormatUint(seq, 16) }

// Finish completes a trace: stamps the total, offers it to the slowest
// board, emits the slow-trace log when the threshold is met, and republishes
// the slot to renderers. status is the HTTP status (0 for non-HTTP ops).
// Nil-safe in both arguments.
func (t *Tracer) Finish(tr *Trace, status int) {
	if t == nil || tr == nil {
		return
	}
	tr.totalNs = int64(t.clock.Now().Sub(tr.start))
	tr.status = status
	t.board.offer(tr)
	if thr := t.cfg.SlowThreshold; thr > 0 && time.Duration(tr.totalNs) >= thr && t.cfg.Logger != nil {
		t.emitSlow(tr)
	}
	st := &t.stripes[tr.seq%numStripes]
	st.mu.Lock()
	tr.active = false
	st.mu.Unlock()
}

// emitSlow logs one slow trace with its full span tree rendered as a compact
// stage=duration list. This path allocates; it only runs for traces over the
// threshold.
func (t *Tracer) emitSlow(tr *Trace) {
	var b strings.Builder
	n := int(clampSpans(tr.nspans.Load()))
	for i := 0; i < n; i++ {
		sp := &tr.spans[i]
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.Stage.String())
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(float64(sp.DurNs)/1e6, 'f', 3, 64))
		b.WriteString("ms")
		if sp.Flag&FlagHit != 0 {
			b.WriteString("(hit)")
		}
	}
	t.cfg.Logger.Warn("slow request",
		"op", tr.op,
		"request_id", tr.reqID,
		"total_ms", float64(tr.totalNs)/1e6,
		"status", tr.status,
		"spans", b.String(),
	)
}

// Overruns counts Start calls skipped because their ring slot was still
// owned by an in-flight request.
func (t *Tracer) Overruns() uint64 {
	if t == nil {
		return 0
	}
	return t.overruns.Load()
}

// --- render surfaces (allocate freely; never on a request path) ---

// SpanView is the wire form of one span.
type SpanView struct {
	Stage   string  `json:"stage"`
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"duration_ms"`
	Hit     bool    `json:"hit,omitempty"`
}

// TraceView is the wire form of one completed trace.
type TraceView struct {
	Seq          uint64     `json:"seq"`
	Op           string     `json:"op"`
	RequestID    string     `json:"request_id"`
	Start        time.Time  `json:"start"`
	TotalMs      float64    `json:"total_ms"`
	Status       int        `json:"status,omitempty"`
	DroppedSpans uint32     `json:"dropped_spans,omitempty"`
	Spans        []SpanView `json:"spans"`
}

func spanViews(spans *[MaxSpans]Span, n int32) []SpanView {
	out := make([]SpanView, n)
	for i := range out {
		sp := &spans[i]
		out[i] = SpanView{
			Stage:   sp.Stage.String(),
			StartMs: float64(sp.StartNs) / 1e6,
			DurMs:   float64(sp.DurNs) / 1e6,
			Hit:     sp.Flag&FlagHit != 0,
		}
	}
	return out
}

// Recent returns up to n completed traces, newest first. In-flight traces
// are skipped — their spans are still being written.
func (t *Tracer) Recent(n int) []TraceView {
	if t == nil || n <= 0 {
		return nil
	}
	var out []TraceView
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		for j := range st.slots {
			tr := &st.slots[j]
			if tr.active || tr.seq == 0 {
				continue
			}
			out = append(out, TraceView{
				Seq:          tr.seq,
				Op:           tr.op,
				RequestID:    tr.reqID,
				Start:        tr.start,
				TotalMs:      float64(tr.totalNs) / 1e6,
				Status:       tr.status,
				DroppedSpans: tr.dropped.Load(),
				Spans:        spanViews(&tr.spans, clampSpans(tr.nspans.Load())),
			})
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Slowest returns the slowest-N board, slowest first.
func (t *Tracer) Slowest() []TraceView {
	if t == nil {
		return nil
	}
	t.board.mu.Lock()
	var out []TraceView
	for i := range t.board.entries {
		e := &t.board.entries[i]
		if !e.used {
			continue
		}
		out = append(out, TraceView{
			Seq:          e.seq,
			Op:           e.op,
			RequestID:    e.reqID,
			Start:        e.start,
			TotalMs:      float64(e.totalNs) / 1e6,
			Status:       e.status,
			DroppedSpans: e.dropped,
			Spans:        spanViews(&e.spans, e.n),
		})
	}
	t.board.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].TotalMs > out[j].TotalMs })
	return out
}

// StageStat is one stage's lifetime aggregate across every trace: span
// count, cache hits where the stage has them, and total/mean/max duration.
type StageStat struct {
	Stage   string  `json:"stage"`
	Count   uint64  `json:"count"`
	Hits    uint64  `json:"hits,omitempty"`
	TotalMs float64 `json:"total_ms"`
	AvgMs   float64 `json:"avg_ms"`
	MaxMs   float64 `json:"max_ms"`
}

// StageStats snapshots the per-stage aggregates for every stage that has
// recorded at least one span, in stage order. This is the per-stage latency
// breakdown surfaced by /debug/traces, /metrics and the simulation harness's
// SLO report.
func (t *Tracer) StageStats() []StageStat {
	if t == nil {
		return nil
	}
	var out []StageStat
	for s := Stage(0); s < numStages; s++ {
		a := &t.stages[s]
		c := a.count.Load()
		if c == 0 {
			continue
		}
		sum := a.sumNs.Load()
		out = append(out, StageStat{
			Stage:   s.String(),
			Count:   c,
			Hits:    a.hits.Load(),
			TotalMs: float64(sum) / 1e6,
			AvgMs:   float64(sum) / 1e6 / float64(c),
			MaxMs:   float64(a.maxNs.Load()) / 1e6,
		})
	}
	return out
}
