package obs

import (
	"context"
	"sync/atomic"
)

// traceKey is the context key both trace carriers share.
type traceKey struct{}

// ContextWithTrace attaches a trace to ctx. This is the ordinary carrier for
// HTTP requests, where the per-request context.WithValue allocation is lost
// in the noise of header parsing.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tr)
}

// TraceRef is the allocation-free trace carrier: bind one ref into a context
// once, then point it at the current request's trace with Set. Benchmarks
// and tight request loops use it to keep tracing inside the warm-predict
// allocation budget — context.WithValue costs an allocation per call, Set
// costs none.
type TraceRef struct{ p atomic.Pointer[Trace] }

// Set points the ref at tr (nil detaches).
func (r *TraceRef) Set(tr *Trace) { r.p.Store(tr) }

// ContextWithTraceRef binds ref into ctx under the shared trace key.
func ContextWithTraceRef(ctx context.Context, ref *TraceRef) context.Context {
	return context.WithValue(ctx, traceKey{}, ref)
}

// TraceFrom extracts the current trace from ctx, resolving either carrier.
// Returns nil — inert for every Trace method — when ctx carries no trace.
func TraceFrom(ctx context.Context) *Trace {
	switch v := ctx.Value(traceKey{}).(type) {
	case *Trace:
		return v
	case *TraceRef:
		return v.p.Load()
	}
	return nil
}
