package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestExpoBasicFamilies(t *testing.T) {
	var buf bytes.Buffer
	e := NewExpo(&buf)
	e.Counter("seagull_things_total", "Things counted.", 42)
	e.Gauge("seagull_level", "Current level.", 1.5)
	e.Header("seagull_labeled_total", "counter", "Labeled.")
	e.Sample("seagull_labeled_total", Labels("endpoint", "POST /v2/predict"), 3)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP seagull_things_total Things counted.\n",
		"# TYPE seagull_things_total counter\n",
		"seagull_things_total 42\n",
		"# TYPE seagull_level gauge\n",
		"seagull_level 1.5\n",
		`seagull_labeled_total{endpoint="POST /v2/predict"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExpoEscaping(t *testing.T) {
	var buf bytes.Buffer
	e := NewExpo(&buf)
	e.Header("m", "counter", "help with \\ and\nnewline")
	e.Sample("m", Labels("k", "quote \" slash \\ nl \n end"), 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP m help with \\ and\nnewline`) {
		t.Fatalf("help not escaped: %q", out)
	}
	if !strings.Contains(out, `m{k="quote \" slash \\ nl \n end"} 1`) {
		t.Fatalf("label not escaped: %q", out)
	}
}

func TestExpoHistogramTriple(t *testing.T) {
	var buf bytes.Buffer
	e := NewExpo(&buf)
	bounds := []float64{0.001, 0.01, 0.1}
	counts := []uint64{2, 3, 0, 1} // per-bucket, trailing overflow
	e.Header("seagull_lat_seconds", "histogram", "Latency.")
	e.Histogram("seagull_lat_seconds", Labels("ep", "x"), bounds, counts, 0.25)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`seagull_lat_seconds_bucket{ep="x",le="0.001"} 2`,
		`seagull_lat_seconds_bucket{ep="x",le="0.01"} 5`,
		`seagull_lat_seconds_bucket{ep="x",le="0.1"} 5`,
		`seagull_lat_seconds_bucket{ep="x",le="+Inf"} 6`,
		`seagull_lat_seconds_sum{ep="x"} 0.25`,
		`seagull_lat_seconds_count{ep="x"} 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("histogram missing %q:\n%s", want, out)
		}
	}
}

func TestNewLoggerValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewLogger(&buf, "text", "info"); err != nil {
		t.Fatalf("text/info: %v", err)
	}
	if _, err := NewLogger(&buf, "json", "debug"); err != nil {
		t.Fatalf("json/debug: %v", err)
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
	l, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("visible", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "visible") {
		t.Fatalf("level filtering broken: %q", out)
	}
	LoggerOr(nil).Info("discarded") // must not panic
}
