// Package obs is Seagull's zero-dependency observability layer: per-request
// trace spans recorded into a fixed-size lock-striped ring (Tracer), a
// Prometheus text-exposition writer (Expo) rendering the same atomics that
// feed /varz, and small log/slog helpers that give every process one
// structured logger.
//
// The design constraint is the serving hot path: a warm /v2/predict runs in
// ~10µs and 3 allocations, and enabling tracing must not add to that budget.
// So the tracer never allocates per request in the steady state — traces
// live in pre-allocated ring slots with a fixed span array each, span
// recording is an atomic index claim plus an array write, and the slowest-N
// board copies by value into pre-allocated entries. The only allocating
// paths are the render surfaces (/debug/traces, /metrics) and the slow-trace
// log emission, none of which sit on a request's critical path.
//
// Request IDs arrive via the X-Request-Id header (or are minted from the
// trace sequence number) and join the three surfaces: they label the trace,
// ride the response header, and appear in the structured logs.
package obs

// Stage identifies what a span measured. The enum is shared by the serving
// layer (admission wait, pool checkout, train, inference, request-level
// ingest) and the stream layer (sweep rounds, refresh jobs, live-window
// snapshots, cosmos upserts), so one /debug/traces page and one per-stage
// metric family cover both sides.
type Stage uint8

const (
	// StageAdmission is the wait for an admission token (queueing under the
	// adaptive limiter).
	StageAdmission Stage = iota
	// StageCheckout is a warm-pool model checkout. FlagHit marks a warm hit.
	StageCheckout
	// StageTrain is a model train. FlagHit marks a train-memo hit (the
	// instance skipped the retrain because the history was bit-identical).
	StageTrain
	// StageInference is a model forecast.
	StageInference
	// StageUpsert is a cosmos document upsert.
	StageUpsert
	// StageIngest is the stream-append loop of one /v2/ingest request.
	StageIngest
	// StageSweep is one region's drift sweep inside a sweeper round.
	StageSweep
	// StageRefresh is one whole refresh job (it nests checkout, train,
	// inference, snapshot and upsert spans).
	StageRefresh
	// StageSnapshot is a live-window snapshot copy out of the ingest ring.
	StageSnapshot

	numStages
)

var stageNames = [numStages]string{
	"admission", "checkout", "train", "inference",
	"upsert", "ingest", "sweep", "refresh", "snapshot",
}

// String returns the stage's wire name (used as the JSON span label and the
// Prometheus stage label).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span flags. Flags carry one stage-specific bit of detail without growing
// the span beyond its fixed slot.
const (
	// FlagHit marks a cache hit: a warm-pool checkout served warm, or a
	// train skipped by the history memo.
	FlagHit uint8 = 1 << iota
)
