package experiments

import (
	"fmt"

	"seagull/internal/classify"
	"seagull/internal/metrics"
	"seagull/internal/parallel"
	"seagull/internal/simulate"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3: classification of servers",
		Paper: "42.1% short-lived, 53.5% stable, 0.2% daily/weekly pattern, " +
			"4.2% without pattern; 58% long-lived; 53.7% expected predictable",
		Run: runFig3,
	})
}

// runFig3 classifies a multi-region sample of servers by Definitions 3–6,
// reproducing the population breakdown of Figure 3. The paper used "a random
// sample of several tens of thousands of servers from four regions during
// one month in 2019".
func runFig3(o Options) ([]Table, error) {
	o = o.withDefaults()
	perRegion := pick(o, 300, 3000)
	regions := []string{"region-a", "region-b", "region-c", "region-d"}
	mcfg := metrics.DefaultConfig()

	sum := classify.NewSummary()
	pool := parallel.NewPool(o.Workers)
	// One result buffer serves every region's classification sweep; each
	// worker carries a classify.Scratch so the Definition 4 stability test
	// reuses one prediction buffer across all servers the worker claims.
	cats := make([]classify.Category, perRegion)
	for ri, region := range regions {
		fleet := cachedFleet(simulate.Config{
			Region: region, Servers: perRegion, Weeks: 4, Seed: o.Seed + int64(ri)*97,
		})
		err := parallel.ForEachScratch(pool, len(fleet.Servers),
			func() *classify.Scratch { return &classify.Scratch{} },
			func(i int, sc *classify.Scratch) error {
				srv := fleet.Servers[i]
				cat, err := classify.CategorizeScratch(srv.Load(), srv.LifespanDays(), mcfg, sc)
				if err != nil {
					return err
				}
				cats[i] = cat
				return nil
			})
		if err != nil {
			return nil, err
		}
		for _, c := range cats[:len(fleet.Servers)] {
			sum.Add(c)
		}
	}

	t := Table{
		Caption: "Figure 3 — classification of servers (Definitions 3–6)",
		Note: fmt.Sprintf("%d servers across %d regions, 4 weeks at 5-minute granularity",
			sum.Total, len(regions)),
		Header: []string{"class", "paper", "measured"},
	}
	t.AddRow("short-lived", "42.1%", pctStr(sum.Pct(classify.ShortLived)))
	t.AddRow("long-lived stable", "53.5%", pctStr(sum.Pct(classify.Stable)))
	t.AddRow("daily pattern", "0.1%", pct2Str(sum.Pct(classify.DailyPattern)))
	t.AddRow("weekly pattern", "0.1%", pct2Str(sum.Pct(classify.WeeklyPattern)))
	t.AddRow("no pattern", "4.2%", pctStr(sum.Pct(classify.NoPattern)))
	t.AddRow("long-lived total", "58%", pctStr(sum.PctLongLived()))
	t.AddRow("expected predictable", "53.7%", pctStr(sum.PctPredictableExpected()))
	return []Table{t}, nil
}
