package experiments

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment artifact: a header row plus data rows,
// with a caption tying it to the paper figure it reproduces.
type Table struct {
	Caption string
	Note    string // methodology or substitution notes
	Header  []string
	Rows    [][]string
}

// AddRow appends a data row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Caption)
	}
	if len(t.Header) > 0 {
		b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	}
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	return b.String()
}

// Text renders the table as aligned plain text for terminal output.
func (t *Table) Text() string {
	var b strings.Builder
	if t.Caption != "" {
		b.WriteString(t.Caption + "\n")
	}
	all := make([][]string, 0, len(t.Rows)+1)
	if len(t.Header) > 0 {
		all = append(all, t.Header)
	}
	all = append(all, t.Rows...)
	widths := map[int]int{}
	for _, row := range all {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range all {
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
		if ri == 0 && len(t.Header) > 0 {
			for i := range row {
				b.WriteString(strings.Repeat("-", widths[i]) + "  ")
			}
			b.WriteString("\n")
		}
	}
	if t.Note != "" {
		b.WriteString("note: " + t.Note + "\n")
	}
	return b.String()
}

// pctStr formats a fraction as a percentage.
func pctStr(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// pct2Str formats a fraction as a percentage with two decimals.
func pct2Str(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
