package experiments

import (
	"context"
	"fmt"
	"os"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/insights"
	"seagull/internal/lake"
	"seagull/internal/metrics"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/scheduler"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

func init() {
	register(Experiment{
		ID:    "fig13a",
		Title: "Figure 13(a): backup scheduling impact",
		Paper: "daily-pattern servers: 12.5% of backups moved into correct LL windows, " +
			"85.3% of defaults already were LL windows, 2.1% incorrect; stable servers: " +
			"99.5% of defaults already LL; busy servers: 7.7% of collisions avoided",
		Run: runFig13a,
	})
	register(Experiment{
		ID:    "fig13b",
		Title: "Figure 13(b): servers per maximal CPU utilization",
		Paper: "only 3.7% of servers reach CPU capacity within a week; for 96.3% " +
			"resources could be saved by overbooking or auto-scale",
		Run: runFig13b,
	})
}

// impactFleet runs the full pipeline + scheduler flow over a fleet and
// returns per-class impact aggregates.
func impactFleet(o Options, fleet *simulate.Fleet) (map[simulate.Class]scheduler.Impact, scheduler.Impact, error) {
	dir, err := tempDir("fig13a")
	if err != nil {
		return nil, scheduler.Impact{}, err
	}
	defer cleanupDir(dir)
	store, err := lake.Open(dir)
	if err != nil {
		return nil, scheduler.Impact{}, err
	}
	if _, err := extract.ExtractAll(store, fleet); err != nil {
		return nil, scheduler.Impact{}, err
	}
	db, err := cosmos.Open("")
	if err != nil {
		return nil, scheduler.Impact{}, err
	}
	p := pipeline.New(store, db, registry.New(nil), insights.New(nil))
	region := fleet.Config.Region
	for w := 0; w < fleet.Config.Weeks; w++ {
		if _, err := p.RunWeek(context.Background(), pipeline.Config{Region: region, Week: w, Workers: o.Workers}); err != nil {
			return nil, scheduler.Impact{}, err
		}
	}
	sched := scheduler.New(db, scheduler.NewFabricStore(), metrics.DefaultConfig())
	decisions, err := sched.ScheduleWeek(context.Background(), region, fleet.Config.Weeks-1)
	if err != nil {
		return nil, scheduler.Impact{}, err
	}

	byID := map[string]*simulate.Server{}
	for _, srv := range fleet.Servers {
		byID[srv.ID] = srv
	}
	trueDay := func(serverID string, day time.Time) (timeseries.Series, bool) {
		srv := byID[serverID]
		if srv == nil {
			return timeseries.Series{}, false
		}
		idx, ok := srv.Load().IndexOf(day)
		if !ok {
			return timeseries.Series{}, false
		}
		ppd := srv.Load().PointsPerDay()
		if idx+ppd > srv.Load().Len() {
			return timeseries.Series{}, false
		}
		sub, err := srv.Load().Slice(idx, idx+ppd)
		if err != nil {
			return timeseries.Series{}, false
		}
		return sub.FillGaps(), true
	}

	// Partition decisions by the generator's ground-truth class.
	byClass := map[simulate.Class][]scheduler.Decision{}
	for _, d := range decisions {
		srv := byID[d.ServerID]
		if srv == nil {
			continue
		}
		byClass[srv.Class] = append(byClass[srv.Class], d)
	}
	impacts := map[simulate.Class]scheduler.Impact{}
	for class, ds := range byClass {
		im, err := scheduler.EvaluateImpact(ds, trueDay, metrics.DefaultConfig())
		if err != nil {
			return nil, scheduler.Impact{}, err
		}
		impacts[class] = im
	}
	total, err := scheduler.EvaluateImpact(decisions, trueDay, metrics.DefaultConfig())
	if err != nil {
		return nil, scheduler.Impact{}, err
	}
	return impacts, total, nil
}

// runFig13a reproduces the impact accounting. Two populations are evaluated:
// the paper-mix fleet (for the stable-server and busy-server statistics) and
// a pattern-heavy fleet (for the daily-pattern bucket percentages, which the
// paper reports over the daily-pattern sub-population).
func runFig13a(o Options) ([]Table, error) {
	o = o.withDefaults()
	nMix := pick(o, 250, 2000)
	nPattern := pick(o, 200, 1200)

	mixFleet := cachedFleet(simulate.Config{
		Region: "impact-mix", Servers: nMix, Weeks: 4, Seed: o.Seed,
	})
	mixImpacts, mixTotal, err := impactFleet(o, mixFleet)
	if err != nil {
		return nil, err
	}

	patternFleet := cachedFleet(simulate.Config{
		Region: "impact-daily", Servers: nPattern, Weeks: 4, Seed: o.Seed + 5,
		Mix:          simulate.Mix{Daily: 0.9, Stable: 0.1},
		BusyFraction: 0.3,
	})
	dailyImpacts, _, err := impactFleet(o, patternFleet)
	if err != nil {
		return nil, err
	}
	daily := dailyImpacts[simulate.ClassDaily]

	t := Table{
		Caption: "Figure 13(a) — backup scheduling impact",
		Note: "daily-pattern buckets measured on a pattern-heavy fleet, as the paper reports " +
			"them over the daily-pattern sub-population; stable/busy rows from the Figure 3 mix",
		Header: []string{"population", "metric", "paper", "measured"},
	}
	t.AddRow("daily pattern", "defaults already in LL windows", "85.3%", pctStr(daily.PctDefaultWasLL()))
	t.AddRow("daily pattern", "backups moved into correct LL windows", "12.5%", pctStr(daily.PctMoved()))
	t.AddRow("daily pattern", "LL window not chosen correctly", "2.1%", pctStr(daily.PctIncorrect()))
	stable := mixImpacts[simulate.ClassStable]
	t.AddRow("stable", "defaults already in LL windows", "99.5%", pctStr(stable.PctDefaultWasLL()))
	t.AddRow("busy (>60% load)", "collisions with peaks avoided", "7.7%", pctStr(daily.PctCollisionsAvoided()))
	t.AddRow("whole fleet", "scheduled by prediction", "—",
		fmt.Sprintf("%d of %d", mixTotal.Scheduled, mixTotal.Decisions))
	t.AddRow("whole fleet", "improved customer hours (this run)", "several hundred/month",
		fmt.Sprintf("%.1fh", float64(mixTotal.ImprovedMinutes+daily.ImprovedMinutes)/60))
	return []Table{t}, nil
}

// runFig13b histograms each server's maximal CPU load over its final week —
// the capacity headroom view motivating auto-scale.
func runFig13b(o Options) ([]Table, error) {
	o = o.withDefaults()
	n := pick(o, 600, 5000)
	fleet := cachedFleet(simulate.Config{
		Region: "fig13b", Servers: n, Weeks: 4, Seed: o.Seed,
	})

	var buckets [10]int
	atCapacity, total := 0, 0
	for _, srv := range fleet.Servers {
		days := srv.Load().Days()
		if len(days) < 7 {
			continue
		}
		week := timeseries.New(days[len(days)-7].Start, srv.Load().Interval, nil)
		for _, d := range days[len(days)-7:] {
			week.Append(d.Values...)
		}
		maxLoad, idx := week.Max()
		if idx < 0 {
			continue
		}
		total++
		b := int(maxLoad / 10)
		if b > 9 {
			b = 9
		}
		buckets[b]++
		if maxLoad >= 99.5 {
			atCapacity++
		}
	}

	t := Table{
		Caption: "Figure 13(b) — servers per maximal CPU load (one week)",
		Note:    fmt.Sprintf("%d servers with a full final week of telemetry", total),
		Header:  []string{"max CPU bucket", "servers", "share"},
	}
	for b := 0; b < 10; b++ {
		t.AddRow(fmt.Sprintf("%d–%d%%", b*10, b*10+10), buckets[b],
			pctStr(float64(buckets[b])/float64(max(total, 1))))
	}
	t.AddRow("reach capacity (≥99.5%)", atCapacity, pctStr(float64(atCapacity)/float64(max(total, 1))))
	t.AddRow("paper: reach capacity", "", "3.7%")
	return []Table{t}, nil
}

// tempDir creates a scratch directory for an experiment.
func tempDir(prefix string) (string, error) {
	return os.MkdirTemp("", "seagull-"+prefix+"-*")
}

func cleanupDir(dir string) { _ = os.RemoveAll(dir) }
