package experiments

import (
	"fmt"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/parallel"
	"seagull/internal/simulate"
)

func init() {
	register(Experiment{
		ID:    "fig11a",
		Title: "Figure 11(a): training and inference runtime per model",
		Paper: "PF needs no training; NimbusML 2.5s–4min for 10–700 servers; " +
			"GluonTS trains 4–10min; Prophet trains 1–34min and infers 1–15h " +
			"(OOM beyond 200 servers); ARIMA fits up to 3h per server and is excluded",
		Run: runFig11a,
	})
	register(Experiment{
		ID:    "fig11bcd",
		Title: "Figure 11(b,c,d): LL windows, window accuracy and predictable servers per model and region",
		Paper: "accuracy of PF, NimbusML and GluonTS comparable; NimbusML chooses " +
			"the highest share of LL windows; Prophet similar or lower",
		Run: runFig11bcd,
	})
}

// runFig11a measures wall-clock training + inference per model as the number
// of unstable servers grows — the scalability comparison of Figure 11(a).
// Each model trains on one week per server and predicts the next day.
func runFig11a(o Options) ([]Table, error) {
	o = o.withDefaults()
	counts := pick(o, []int{10, 50}, []int{10, 50, 100, 200, 700})
	fast := o.Scale == ScaleSmall
	models := forecast.StandardNames

	t := Table{
		Caption: "Figure 11(a) — training + inference wall clock (unstable servers, 1 week training)",
		Note: fmt.Sprintf("servers processed on %d parallel partitions; the paper's single-core "+
			"Python numbers are larger in absolute terms, and since the additive trainer moved to "+
			"Gram-form gradient descent the Prophet analog no longer dominates the zoo — PF stays "+
			"cheapest and the ARIMA order search stays the reason it is excluded", o.Workers),
		Header: append([]string{"model"}, func() []string {
			h := make([]string, len(counts))
			for i, n := range counts {
				h[i] = fmt.Sprintf("%d srv", n)
			}
			return h
		}()...),
	}

	maxCount := counts[len(counts)-1]
	fleet := unstableFleet("fig11a", maxCount, o.Seed)
	// Materialize every server's telemetry before the timed loops: the lazy
	// fleet would otherwise charge the synthesis cost to whichever model row
	// touches a server first, distorting the figure's runtime ranking.
	for _, srv := range fleet.Servers {
		srv.Load()
	}
	pool := parallel.NewPool(o.Workers)
	ppd := 288

	// One reusable model per worker (see modelArena): the timed loop
	// measures training and inference, not buffer allocation.
	trainInfer := func(n int, factory func() (forecast.Model, error)) error {
		return parallel.ForEachScratch(pool, n,
			func() *modelArena { return &modelArena{} },
			func(i int, arena *modelArena) error {
				load := fleet.Servers[i].Load()
				end := load.Len() - ppd
				hist, err := load.View(end-7*ppd, end)
				if err != nil {
					return err
				}
				m, err := arena.get(factory)
				if err != nil {
					return err
				}
				_, err = forecast.PredictDay(m, hist)
				return err
			})
	}

	for _, name := range models {
		factory := modelFactory(name, o.Seed, fast, 1)
		row := []any{name}
		for _, n := range counts {
			start := time.Now()
			if err := trainInfer(n, factory); err != nil {
				return nil, fmt.Errorf("fig11a %s n=%d: %w", name, n, err)
			}
			row = append(row, fmtDuration(time.Since(start)))
		}
		t.AddRow(row...)
	}

	// ARIMA is measured once at the smallest count — the paper excluded it
	// because the six-parameter order search does not scale. With fewer
	// servers than pool workers, the spare workers spill into each server's
	// candidate order grid (selection stays bit-identical to sequential).
	arimaN := counts[0]
	factory := modelFactory(forecast.NameARIMA, o.Seed, fast, gridSpill(pool.Workers(), arimaN))
	start := time.Now()
	if err := trainInfer(arimaN, factory); err != nil {
		return nil, fmt.Errorf("fig11a arima: %w", err)
	}
	row := []any{forecast.NameARIMA + " (excluded)"}
	row = append(row, fmtDuration(time.Since(start)))
	for range counts[1:] {
		row = append(row, "—")
	}
	t.AddRow(row...)
	return []Table{t}, nil
}

// runFig11bcd evaluates every model on unstable servers across four regions
// over one month, reporting the three paper metrics (Definitions 2, 8, 9).
func runFig11bcd(o Options) ([]Table, error) {
	o = o.withDefaults()
	sizes := pick(o, []int{20, 25, 30, 35}, []int{80, 110, 140, 170})
	fast := o.Scale == ScaleSmall
	weeks := []int{1, 2, 3}
	mcfg := metrics.DefaultConfig()
	models := forecast.StandardNames

	regions := make([]*simulate.Fleet, len(sizes))
	names := make([]string, len(sizes))
	for i, n := range sizes {
		names[i] = fmt.Sprintf("region-%c", 'a'+i)
		regions[i] = unstableFleet(names[i], n, o.Seed+int64(i)*131)
	}
	pool := parallel.NewPool(o.Workers)

	tb := Table{
		Caption: "Figure 11(b) — correctly chosen LL windows (Definition 8), unstable servers",
		Header:  append([]string{"model"}, names...),
	}
	tc := Table{
		Caption: "Figure 11(c) — LL windows with accurately predicted load (Definition 2)",
		Header:  append([]string{"model"}, names...),
	}
	td := Table{
		Caption: "Figure 11(d) — predictable servers (Definition 9)",
		Note:    "three weekly backup-day evaluations per server; one month of data per region",
		Header:  append([]string{"model"}, names...),
	}

	for _, name := range models {
		factory := modelFactory(name, o.Seed, fast, 1)
		rb, rc, rd := []any{name}, []any{name}, []any{name}
		for _, fleet := range regions {
			evals, err := evaluateFleet(fleet, factory, weeks, mcfg, pool)
			if err != nil {
				return nil, fmt.Errorf("fig11bcd %s %s: %w", name, fleet.Config.Region, err)
			}
			st := aggregate(evals, mcfg)
			rb = append(rb, pctStr(st.pctCorrect()))
			rc = append(rc, pctStr(st.pctAccurate()))
			rd = append(rd, pctStr(st.pctPredictable()))
		}
		tb.AddRow(rb...)
		tc.AddRow(rc...)
		td.AddRow(rd...)
	}
	return []Table{tb, tc, td}, nil
}
