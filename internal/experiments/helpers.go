package experiments

import (
	"fmt"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/parallel"
	"seagull/internal/simulate"
)

// modelFactory returns a constructor for fresh model instances. fast selects
// reduced fitting budgets so small-scale runs stay quick; relative cost
// ordering between models is preserved.
func modelFactory(name string, seed int64, fast bool) func() (forecast.Model, error) {
	if !fast {
		return func() (forecast.Model, error) { return forecast.New(name, seed) }
	}
	return func() (forecast.Model, error) {
		switch name {
		case forecast.NameAdditive:
			return forecast.NewAdditive(forecast.AdditiveConfig{
				Seed: seed, Iterations: 200, Samples: 200,
			}), nil
		case forecast.NameFFNN:
			return forecast.NewFFNN(forecast.FFNNConfig{Seed: seed, Epochs: 10}), nil
		case forecast.NameARIMA:
			return forecast.NewARIMA(forecast.ARIMAConfig{
				MaxP: 1, MaxQ: 1, SearchBudget: 60,
			}), nil
		default:
			return forecast.New(name, seed)
		}
	}
}

// serverEval is one server's chronological backup-day evaluations.
type serverEval struct {
	srv     *simulate.Server
	results []metrics.DayResult
}

// predictable applies Definition 9 to the collected results.
func (se serverEval) predictable(cfg metrics.Config) bool {
	return metrics.Predictable(se.results, cfg)
}

// evaluateFleet trains/infers per server per backup week and evaluates the
// backup-day prediction, exactly following the paper's methodology
// (Section 5.3.1): each model is trained on up to one week of data
// immediately preceding the server's backup day; servers need at least
// three days of history. Short-lived servers are skipped.
//
// Callers pass the shared worker pool so one pool serves every model, region
// and sweep point of an experiment run.
func evaluateFleet(fleet *simulate.Fleet, newModel func() (forecast.Model, error),
	weeks []int, mcfg metrics.Config, pool *parallel.Pool) ([]serverEval, error) {

	var longLived []*simulate.Server
	for _, srv := range fleet.Servers {
		if !srv.ShortLived {
			longLived = append(longLived, srv)
		}
	}
	evals := make([]serverEval, len(longLived))
	err := parallel.MapInto(pool, longLived, evals, func(srv *simulate.Server) (serverEval, error) {
		se := serverEval{srv: srv}
		ppd := srv.Load.PointsPerDay()
		for _, week := range weeks {
			dayGlobal := week*7 + int(srv.BackupDay)
			dayIdx := dayGlobal * ppd
			if dayIdx+ppd > srv.Load.Len() {
				continue
			}
			trainPoints := min(7*ppd, dayIdx)
			if trainPoints < 3*ppd {
				continue
			}
			history, err := srv.Load.Slice(dayIdx-trainPoints, dayIdx)
			if err != nil {
				return se, err
			}
			m, err := newModel()
			if err != nil {
				return se, err
			}
			pred, err := forecast.PredictDay(m, history.FillGaps())
			if err != nil {
				continue // model cannot fit this server; treated as skipped
			}
			trueDay, err := srv.Load.Slice(dayIdx, dayIdx+ppd)
			if err != nil {
				return se, err
			}
			w := srv.WindowPoints()
			dr, err := metrics.EvaluateDay(trueDay.FillGaps(), pred, w, mcfg)
			if err != nil {
				return se, err
			}
			se.results = append(se.results, dr)
		}
		return se, nil
	})
	if err != nil {
		return nil, err
	}
	return evals, nil
}

// fleetStats aggregates evaluations into the three paper percentages: share
// of correctly chosen LL windows, share of windows with accurately predicted
// load (both over all server-days), and share of predictable servers
// (Definition 9, over servers with enough evaluated weeks).
type fleetStats struct {
	Days        int
	Correct     int
	Accurate    int
	Servers     int
	Predictable int
}

func aggregate(evals []serverEval, mcfg metrics.Config) fleetStats {
	var st fleetStats
	for _, se := range evals {
		if len(se.results) == 0 {
			continue
		}
		st.Servers++
		for _, dr := range se.results {
			st.Days++
			if dr.Window.Correct {
				st.Correct++
			}
			if dr.WindowAccurate {
				st.Accurate++
			}
		}
		if se.predictable(mcfg) {
			st.Predictable++
		}
	}
	return st
}

func (st fleetStats) pctCorrect() float64 {
	if st.Days == 0 {
		return 0
	}
	return float64(st.Correct) / float64(st.Days)
}

func (st fleetStats) pctAccurate() float64 {
	if st.Days == 0 {
		return 0
	}
	return float64(st.Accurate) / float64(st.Days)
}

func (st fleetStats) pctPredictable() float64 {
	if st.Servers == 0 {
		return 0
	}
	return float64(st.Predictable) / float64(st.Servers)
}

// unstableFleet generates a fleet of long-lived servers without recognizable
// patterns — the population the paper applies ML models to (Section 5.3.3).
func unstableFleet(region string, servers int, seed int64) *simulate.Fleet {
	return simulate.GenerateFleet(simulate.Config{
		Region: region, Servers: servers, Weeks: 4, Seed: seed,
		Mix: simulate.Mix{NoPattern: 1},
	})
}

// fmtDuration renders a duration compactly for tables.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}
