package experiments

import (
	"fmt"
	"sync"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/parallel"
	"seagull/internal/simulate"
)

// modelFactory returns a constructor for fresh model instances. fast selects
// reduced fitting budgets so small-scale runs stay quick; relative cost
// ordering between models is preserved. The fast profiles opt into the
// equivalence-tested fast paths the production defaults keep off: the
// minibatched FFNN trainer (accuracy equivalence recorded in
// TestFFNNBatchedAccuracyEquivalent) and SSA's randomized trajectory SVD
// (≤1e-6 forecast equivalence, TestSSARandomizedMatchesJacobi).
// arimaGridWorkers parallelizes each ARIMA order search — pass
// gridSpill(poolWorkers, servers) so spare pool capacity spills into the
// candidate grid when the server partition count is below the pool width.
func modelFactory(name string, seed int64, fast bool, arimaGridWorkers int) func() (forecast.Model, error) {
	if !fast {
		if name == forecast.NameARIMA && arimaGridWorkers > 1 {
			return func() (forecast.Model, error) {
				return forecast.NewARIMA(forecast.ARIMAConfig{GridWorkers: arimaGridWorkers}), nil
			}
		}
		return func() (forecast.Model, error) { return forecast.New(name, seed) }
	}
	return func() (forecast.Model, error) {
		switch name {
		case forecast.NameAdditive:
			return forecast.NewAdditive(forecast.AdditiveConfig{
				Seed: seed, Iterations: 200, Samples: 200,
			}), nil
		case forecast.NameFFNN:
			return forecast.NewFFNN(forecast.FFNNConfig{
				Seed: seed, Epochs: 8, BatchSize: 8, LearningRate: 0.1,
			}), nil
		case forecast.NameSSA:
			return forecast.NewSSA(forecast.SSAConfig{RandomizedSVD: true, Seed: seed}), nil
		case forecast.NameARIMA:
			return forecast.NewARIMA(forecast.ARIMAConfig{
				MaxP: 1, MaxQ: 1, SearchBudget: 60, GridWorkers: arimaGridWorkers,
			}), nil
		default:
			return forecast.New(name, seed)
		}
	}
}

// gridSpill implements the adaptive grid-parallelism policy: when the number
// of server partitions is below the pool width (fig11a's 10-server ARIMA row
// on a many-core box), the spare workers spill into each server's candidate
// order grid. The selected model is identical to the sequential search, so
// the policy is purely a latency lever.
func gridSpill(poolWorkers, servers int) int {
	if servers <= 0 || poolWorkers <= servers {
		return 1
	}
	// Ceiling division: any spare capacity engages the grid (16 workers over
	// 10 servers → 2 grid workers each); the brief oversubscription is
	// cheaper than idling the spare workers for the whole row.
	return (poolWorkers + servers - 1) / servers
}

// fleetCache memoizes generated fleets by exact config. Experiments and the
// figure benchmarks regenerate identical fleets every run/iteration; the
// cached fleet (lazily materialized, read-only by convention) makes repeat
// runs skip both the metadata generation and — thanks to per-server
// sync.Once materialization — the telemetry synthesis they already paid for.
//
// The cache is a bounded LRU: a long-lived process sweeping many regions
// (seagull-serve sharing a binary with the experiments, or a full-scale
// multi-region run) must not pin every fleet it ever generated. Materialized
// telemetry dominates a fleet's footprint, so the bound is on fleet count.
const fleetCacheCap = 32

var fleetCache = struct {
	sync.Mutex
	fleets map[simulate.Config]*fleetCacheEntry
	tick   uint64 // monotonic use counter; larger = more recent
}{fleets: map[simulate.Config]*fleetCacheEntry{}}

type fleetCacheEntry struct {
	fleet    *simulate.Fleet
	lastUsed uint64
}

func cachedFleet(cfg simulate.Config) *simulate.Fleet {
	fleetCache.Lock()
	fleetCache.tick++
	if e, ok := fleetCache.fleets[cfg]; ok {
		e.lastUsed = fleetCache.tick
		fleetCache.Unlock()
		return e.fleet
	}
	// Generate outside the lock: lazy generation is cheap (metadata only)
	// but there is no reason to serialize independent configs. A racing
	// generator for the same config loses and its fleet is dropped —
	// generation is deterministic, so both fleets are identical.
	fleetCache.Unlock()
	f := simulate.GenerateFleet(cfg)
	fleetCache.Lock()
	defer fleetCache.Unlock()
	if e, ok := fleetCache.fleets[cfg]; ok {
		return e.fleet
	}
	for len(fleetCache.fleets) >= fleetCacheCap {
		var oldest simulate.Config
		var oldestUse uint64
		first := true
		for k, e := range fleetCache.fleets {
			if first || e.lastUsed < oldestUse {
				oldest, oldestUse, first = k, e.lastUsed, false
			}
		}
		delete(fleetCache.fleets, oldest)
	}
	fleetCache.fleets[cfg] = &fleetCacheEntry{fleet: f, lastUsed: fleetCache.tick}
	return f
}

// ResetFleetCache drops every memoized fleet, releasing their materialized
// telemetry. Long-lived hosts call it between unrelated workloads.
func ResetFleetCache() {
	fleetCache.Lock()
	defer fleetCache.Unlock()
	fleetCache.fleets = map[simulate.Config]*fleetCacheEntry{}
}

// fleetCacheLen reports the number of cached fleets (tests).
func fleetCacheLen() int {
	fleetCache.Lock()
	defer fleetCache.Unlock()
	return len(fleetCache.fleets)
}

// serverEval is one server's chronological backup-day evaluations.
type serverEval struct {
	srv     *simulate.Server
	results []metrics.DayResult
}

// predictable applies Definition 9 to the collected results.
func (se serverEval) predictable(cfg metrics.Config) bool {
	return metrics.Predictable(se.results, cfg)
}

// modelArena is the per-worker scratch evaluateFleet threads through
// parallel.ForEachScratch: one model instance (created lazily on the
// worker's first server) retrained across every server the worker claims.
// The forecast models all pin retrain-equals-fresh behaviour in their
// equivalence tests, so carrying weights, design matrices and solver
// buffers across servers changes nothing but the allocation profile.
type modelArena struct {
	model forecast.Model
	err   error
}

func (ar *modelArena) get(newModel func() (forecast.Model, error)) (forecast.Model, error) {
	if ar.model == nil && ar.err == nil {
		ar.model, ar.err = newModel()
	}
	return ar.model, ar.err
}

// evaluateFleet trains/infers per server per backup week and evaluates the
// backup-day prediction, exactly following the paper's methodology
// (Section 5.3.1): each model is trained on up to one week of data
// immediately preceding the server's backup day; servers need at least
// three days of history. Short-lived servers are skipped.
//
// Callers pass the shared worker pool so one pool serves every model, region
// and sweep point of an experiment run. Per-server cost is heavy-tailed
// (ARIMA order searches abandon pathological servers at different depths),
// so the loop runs under guided scheduling; each worker carries one
// modelArena for all its servers.
func evaluateFleet(fleet *simulate.Fleet, newModel func() (forecast.Model, error),
	weeks []int, mcfg metrics.Config, pool *parallel.Pool) ([]serverEval, error) {

	var longLived []*simulate.Server
	for _, srv := range fleet.Servers {
		if !srv.ShortLived {
			longLived = append(longLived, srv)
		}
	}
	evals := make([]serverEval, len(longLived))
	guided := pool.WithSchedule(parallel.ScheduleGuided)
	err := parallel.ForEachScratch(guided, len(longLived),
		func() *modelArena { return &modelArena{} },
		func(i int, arena *modelArena) error {
			srv := longLived[i]
			se := serverEval{srv: srv}
			load := srv.Load()
			ppd := load.PointsPerDay()
			for _, week := range weeks {
				dayGlobal := week*7 + int(srv.BackupDay)
				dayIdx := dayGlobal * ppd
				if dayIdx+ppd > load.Len() {
					continue
				}
				trainPoints := min(7*ppd, dayIdx)
				if trainPoints < 3*ppd {
					continue
				}
				history, err := load.View(dayIdx-trainPoints, dayIdx)
				if err != nil {
					return err
				}
				m, err := arena.get(newModel)
				if err != nil {
					return err
				}
				pred, err := forecast.PredictDay(m, history.FillGaps())
				if err != nil {
					continue // model cannot fit this server; treated as skipped
				}
				trueDay, err := load.View(dayIdx, dayIdx+ppd)
				if err != nil {
					return err
				}
				w := srv.WindowPoints()
				dr, err := metrics.EvaluateDay(trueDay.FillGaps(), pred, w, mcfg)
				if err != nil {
					return err
				}
				se.results = append(se.results, dr)
			}
			evals[i] = se
			return nil
		})
	if err != nil {
		return nil, err
	}
	return evals, nil
}

// fleetStats aggregates evaluations into the three paper percentages: share
// of correctly chosen LL windows, share of windows with accurately predicted
// load (both over all server-days), and share of predictable servers
// (Definition 9, over servers with enough evaluated weeks).
type fleetStats struct {
	Days        int
	Correct     int
	Accurate    int
	Servers     int
	Predictable int
}

func aggregate(evals []serverEval, mcfg metrics.Config) fleetStats {
	var st fleetStats
	for _, se := range evals {
		if len(se.results) == 0 {
			continue
		}
		st.Servers++
		for _, dr := range se.results {
			st.Days++
			if dr.Window.Correct {
				st.Correct++
			}
			if dr.WindowAccurate {
				st.Accurate++
			}
		}
		if se.predictable(mcfg) {
			st.Predictable++
		}
	}
	return st
}

func (st fleetStats) pctCorrect() float64 {
	if st.Days == 0 {
		return 0
	}
	return float64(st.Correct) / float64(st.Days)
}

func (st fleetStats) pctAccurate() float64 {
	if st.Days == 0 {
		return 0
	}
	return float64(st.Accurate) / float64(st.Days)
}

func (st fleetStats) pctPredictable() float64 {
	if st.Servers == 0 {
		return 0
	}
	return float64(st.Predictable) / float64(st.Servers)
}

// unstableFleet returns a (cached) fleet of long-lived servers without
// recognizable patterns — the population the paper applies ML models to
// (Section 5.3.3).
func unstableFleet(region string, servers int, seed int64) *simulate.Fleet {
	return cachedFleet(simulate.Config{
		Region: region, Servers: servers, Weeks: 4, Seed: seed,
		Mix: simulate.Mix{NoPattern: 1},
	})
}

// fmtDuration renders a duration compactly for tables.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}
