package experiments

import (
	"fmt"

	"seagull/internal/autoscale"
	"seagull/internal/forecast"
	"seagull/internal/simulate"
)

func init() {
	register(Experiment{
		ID:    "a1",
		Title: "Appendix A.1: classification of SQL databases",
		Paper: "19.36% of several thousand sampled SQL databases are stable (Definition 10)",
		Run:   runA1,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Figure 16: model accuracy for SQL databases (NRMSE / MASE)",
		Paper: "persistent forecast competitive with the neural network; ARIMA works " +
			"better on coarse 15-minute SQL data than on 5-minute server data",
		Run: runFig1617,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Figure 17: training, inference and accuracy-evaluation runtime (SQL databases)",
		Paper: "ARIMA's training runtime is not comparable with the other models; " +
			"persistent forecast needs no training",
		Run: runFig1617,
	})
}

// runA1 classifies a synthetic SQL database population per Definition 10.
func runA1(o Options) ([]Table, error) {
	o = o.withDefaults()
	n := pick(o, 800, 5000)
	dbs := simulate.GenerateSQL(simulate.SQLConfig{Databases: n, Days: 28, Seed: o.Seed})
	var c autoscale.Classifier
	stable, total, err := c.ClassifySQLFleet(dbs)
	if err != nil {
		return nil, err
	}
	t := Table{
		Caption: "Appendix A.1 — stable SQL databases (Definition 10)",
		Note:    fmt.Sprintf("%d databases, 15-minute granularity, one month", total),
		Header:  []string{"metric", "paper", "measured"},
	}
	t.AddRow("stable databases", "19.36%", pct2Str(float64(stable)/float64(total)))
	return []Table{t}, nil
}

// runFig1617 compares persistent forecast, the neural network and ARIMA on
// 24h-ahead SQL database prediction: accuracy (Figure 16) and runtime
// (Figure 17) from the same evaluation pass.
func runFig1617(o Options) ([]Table, error) {
	o = o.withDefaults()
	n := pick(o, 24, 120)
	dbs := simulate.GenerateSQL(simulate.SQLConfig{Databases: n, Days: 9, Seed: o.Seed})

	names := []string{
		forecast.NamePersistentPrevDay,
		forecast.NameFFNN, // the paper's "neural network" is GluonTS
		forecast.NameARIMA,
	}
	evs, err := autoscale.CompareModels(names, dbs, autoscale.EvalConfig{
		Workers: o.Workers, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}

	acc := Table{
		Caption: "Figure 16 — model accuracy on SQL databases (lower is better; <1 beats the naive baseline)",
		Note:    fmt.Sprintf("%d databases, trained on one week, predicting 24h ahead", n),
		Header:  []string{"model", "mean NRMSE", "mean MASE", "databases"},
	}
	rt := Table{
		Caption: "Figure 17 — training+inference and accuracy-evaluation runtime (SQL databases)",
		Note:    fmt.Sprintf("%d parallel partitions; ordering PF < neural net < ARIMA matches the paper", o.Workers),
		Header:  []string{"model", "train+infer", "accuracy evaluation"},
	}
	for _, ev := range evs {
		acc.AddRow(ev.Model, fmt.Sprintf("%.3f", ev.MeanNRMSE), fmt.Sprintf("%.3f", ev.MeanMASE), ev.Databases)
		rt.AddRow(ev.Model, fmtDuration(ev.TrainInfer), fmtDuration(ev.Evaluation))
	}
	return []Table{acc, rt}, nil
}
