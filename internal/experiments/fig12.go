package experiments

import (
	"context"
	"fmt"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/insights"
	"seagull/internal/lake"
	"seagull/internal/metrics"
	"seagull/internal/parallel"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

func init() {
	register(Experiment{
		ID:    "fig12a",
		Title: "Figure 12(a): runtime of the use-case-agnostic components per region",
		Paper: "model deployment ≈ constant (~1min); other components grow linearly " +
			"with input size; accuracy evaluation dominates beyond 1GB",
		Run: runFig12a,
	})
	register(Experiment{
		ID:    "fig12b",
		Title: "Figure 12(b): single-threaded vs parallel accuracy evaluation",
		Paper: "parallel loses slightly at 60MB, wins beyond 400MB (26% faster at 2.5GB " +
			"for backup-day evaluation); full-week evaluation speeds up 3–4.6×",
		Run: runFig12b,
	})
}

// region sizes (server counts) standing in for the paper's input sizes of
// hundreds of KB to a few GB.
func regionSizes(o Options) []int {
	return pick(o, []int{60, 150}, []int{100, 400, 1000, 2500})
}

// runFig12a runs the full weekly pipeline for regions of growing size and
// reports per-stage wall clock — the component breakdown of Figure 12(a).
func runFig12a(o Options) ([]Table, error) {
	o = o.withDefaults()
	sizes := regionSizes(o)

	t := Table{
		Caption: "Figure 12(a) — pipeline component runtime per region size (1 week, persistent forecast)",
		Header: []string{"servers", "extract MB", pipeline.StageIngestion, pipeline.StageValidation,
			pipeline.StageFeatures, pipeline.StageDeployment, pipeline.StageTrainInfer,
			pipeline.StageAccuracy, "total"},
	}

	for i, n := range sizes {
		dir, err := tempDir("fig12a")
		if err != nil {
			return nil, err
		}
		store, err := lake.Open(dir)
		if err != nil {
			return nil, err
		}
		region := fmt.Sprintf("size-%d", n)
		fleet := cachedFleet(simulate.Config{
			Region: region, Servers: n, Weeks: 1, Seed: o.Seed + int64(i)*7,
		})
		if _, err := extract.ExtractAll(store, fleet); err != nil {
			return nil, err
		}
		sz, err := store.Size(extract.Dataset, region, 0)
		if err != nil {
			return nil, err
		}
		db, err := cosmos.Open("")
		if err != nil {
			return nil, err
		}
		p := pipeline.New(store, db, registry.New(nil), insights.New(nil))
		res, err := p.RunWeek(context.Background(), pipeline.Config{Region: region, Week: 0, Workers: o.Workers})
		if err != nil {
			return nil, fmt.Errorf("fig12a n=%d: %w", n, err)
		}
		stage := map[string]time.Duration{}
		for _, st := range res.StageTimings {
			stage[st.Stage] = st.Duration
		}
		t.AddRow(n, fmt.Sprintf("%.1f", float64(sz)/(1<<20)),
			fmtDuration(stage[pipeline.StageIngestion]),
			fmtDuration(stage[pipeline.StageValidation]),
			fmtDuration(stage[pipeline.StageFeatures]),
			fmtDuration(stage[pipeline.StageDeployment]),
			fmtDuration(stage[pipeline.StageTrainInfer]),
			fmtDuration(stage[pipeline.StageAccuracy]),
			fmtDuration(res.Total))
		cleanupDir(dir)
	}
	return []Table{t}, nil
}

// runFig12b compares single-threaded and parallel (Dask-analog) accuracy
// evaluation: once for the backup day only, and once for every day of the
// week ahead (the paper's planned extension). The evaluation work is
// identical across worker settings; only the partitioning changes.
func runFig12b(o Options) ([]Table, error) {
	o = o.withDefaults()
	sizes := regionSizes(o)
	mcfg := metrics.DefaultConfig()
	// The single-threaded and parallel pools are reused across every region
	// size; only the timed work changes.
	seqPool := parallel.NewPool(1)
	parPool := parallel.NewPool(o.Workers)

	t := Table{
		Caption: "Figure 12(b) — accuracy evaluation: single-threaded vs parallel per server",
		Note: fmt.Sprintf("parallel runs on %d workers; evaluation = LL window + bucket ratio "+
			"per server-day (Definitions 2 and 8)", o.Workers),
		Header: []string{"servers", "backup-day 1w", fmt.Sprintf("backup-day %dw", o.Workers),
			"speedup", "week 1w", fmt.Sprintf("week %dw", o.Workers), "speedup"},
	}

	for i, n := range sizes {
		fleet := cachedFleet(simulate.Config{
			Region: "fig12b", Servers: n, Weeks: 2, Seed: o.Seed + int64(i)*13,
		})
		// Precompute persistent-forecast predictions for the final week so
		// the timed section isolates accuracy evaluation, as in the paper.
		type job struct {
			trueDays []timeseries.Series
			predDays []timeseries.Series
			window   int
		}
		var jobs []job
		for _, srv := range fleet.Servers {
			load := srv.Load()
			ppd := load.PointsPerDay()
			nd := load.NumDays()
			if nd < 9 {
				continue
			}
			j := job{window: srv.WindowPoints()}
			// Day views share the load's backing array; FillGaps makes the
			// one copy each day actually needs.
			for d := nd - 7; d < nd; d++ {
				cur, err1 := load.View(d*ppd, (d+1)*ppd)
				prev, err2 := load.View((d-1)*ppd, d*ppd)
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("fig12b day views: %v, %v", err1, err2)
				}
				j.trueDays = append(j.trueDays, cur.FillGaps())
				j.predDays = append(j.predDays, prev.FillGaps())
			}
			jobs = append(jobs, j)
		}

		evalBackupDay := func(j job) error {
			_, err := metrics.EvaluateDay(j.trueDays[0], j.predDays[0], j.window, mcfg)
			return err
		}
		evalWeek := func(j job) error {
			for d := range j.trueDays {
				if _, err := metrics.EvaluateDay(j.trueDays[d], j.predDays[d], j.window, mcfg); err != nil {
					return err
				}
			}
			return nil
		}

		timeRun := func(pool *parallel.Pool, fn func(job) error) (time.Duration, error) {
			start := time.Now()
			err := pool.ForEach(len(jobs), func(i int) error { return fn(jobs[i]) })
			return time.Since(start), err
		}

		day1, err := timeRun(seqPool, evalBackupDay)
		if err != nil {
			return nil, err
		}
		dayN, err := timeRun(parPool, evalBackupDay)
		if err != nil {
			return nil, err
		}
		week1, err := timeRun(seqPool, evalWeek)
		if err != nil {
			return nil, err
		}
		weekN, err := timeRun(parPool, evalWeek)
		if err != nil {
			return nil, err
		}
		t.AddRow(n,
			fmtDuration(day1), fmtDuration(dayN), speedup(day1, dayN),
			fmtDuration(week1), fmtDuration(weekN), speedup(week1, weekN))
	}
	return []Table{t}, nil
}

func speedup(single, par time.Duration) string {
	if par <= 0 {
		return "—"
	}
	return fmt.Sprintf("%.1fx", float64(single)/float64(par))
}
