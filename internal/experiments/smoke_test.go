package experiments

import "testing"

// TestAllExperimentsRun executes every registered experiment at small scale
// and validates the produced tables are well-formed. This is the integration
// gate for cmd/seagull-experiments and bench_test.go.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Options{Scale: ScaleSmall, Seed: 3})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Caption == "" {
					t.Errorf("%s: table without caption", e.ID)
				}
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tb.Caption)
				}
				for _, row := range tb.Rows {
					if len(tb.Header) > 0 && len(row) != len(tb.Header) {
						t.Errorf("%s: table %q row width %d != header %d",
							e.ID, tb.Caption, len(row), len(tb.Header))
					}
				}
				if tb.Markdown() == "" || tb.Text() == "" {
					t.Errorf("%s: table %q renders empty", e.ID, tb.Caption)
				}
			}
		})
	}
}
