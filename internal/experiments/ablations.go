package experiments

import (
	"fmt"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/parallel"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

// Ablations for the design choices DESIGN.md calls out. They are not paper
// figures; they justify the constants of Definitions 1–9 and the deployment
// choice of Section 5.4.

func init() {
	register(Experiment{
		ID:    "ablation-bound",
		Title: "Ablation: asymmetric +10/−5 error bound vs alternatives (Definition 1)",
		Paper: "the paper tolerates +10 over-prediction but only −5 under-prediction " +
			"because under-estimating load risks scheduling backups into busy periods",
		Run: runAblationBound,
	})
	register(Experiment{
		ID:    "ablation-threshold",
		Title: "Ablation: bucket-ratio accuracy threshold sweep (Definition 2)",
		Paper: "the production threshold is 90%",
		Run:   runAblationThreshold,
	})
	register(Experiment{
		ID:    "ablation-history",
		Title: "Ablation: predictability gate length (Definition 9)",
		Paper: "three weeks balances prediction confidence against applicability " +
			"(58% of servers survive beyond three weeks)",
		Run: runAblationHistory,
	})
	register(Experiment{
		ID:    "ablation-pf-variants",
		Title: "Ablation: persistent forecast variants per server class (Section 5.2)",
		Paper: "previous day covers the largest population (53.7%): it captures both " +
			"stable load and daily patterns; previous equivalent day captures weekly patterns",
		Run: runAblationPFVariants,
	})
	register(Experiment{
		ID:    "ablation-workers",
		Title: "Ablation: worker count for parallel accuracy evaluation (Section 6.1)",
		Paper: "Dask gave the paper 3–4.6× speedup over single-threaded evaluation",
		Run:   runAblationWorkers,
	})
}

// runAblationBound evaluates persistent forecast under different acceptable
// error bounds, reporting how many windows each bound accepts as accurate
// and how many of those acceptances are risky — the window's load was
// under-predicted by more than 5 points on over 10% of its observations, the
// exact failure mode the asymmetric bound exists to prevent.
func runAblationBound(o Options) ([]Table, error) {
	o = o.withDefaults()
	n := pick(o, 150, 900)
	fleet := cachedFleet(simulate.Config{
		Region: "ab-bound", Servers: n, Weeks: 2, Seed: o.Seed,
		Mix: simulate.Mix{Daily: 0.5, NoPattern: 0.5},
	})
	bounds := []struct {
		name string
		b    metrics.Bound
	}{
		{"+10/−5 (production)", metrics.Bound{Over: 10, Under: 5}},
		{"±10 symmetric", metrics.Bound{Over: 10, Under: 10}},
		{"±5 symmetric", metrics.Bound{Over: 5, Under: 5}},
		{"+5/−10 (inverted)", metrics.Bound{Over: 5, Under: 10}},
	}

	type pair struct {
		trueDay, predDay timeseries.Series
		window           int
	}
	var pairs []pair
	for _, srv := range fleet.Servers {
		load := srv.Load()
		ppd := load.PointsPerDay()
		nd := load.NumDays()
		if nd < 9 {
			continue
		}
		trueV, err1 := load.View((nd-1)*ppd, nd*ppd)
		predV, err2 := load.View((nd-2)*ppd, (nd-1)*ppd) // persistent forecast
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("ablation-bound day views: %v, %v", err1, err2)
		}
		pairs = append(pairs, pair{
			trueDay: trueV.FillGaps(),
			predDay: predV.FillGaps(),
			window:  srv.WindowPoints(),
		})
	}

	t := Table{
		Caption: "Ablation — acceptable error bound (Definition 1)",
		Note: fmt.Sprintf("%d pattern/unstable servers; 'risky' = accepted window whose load was "+
			"under-predicted by >5 points on >10%% of observations", len(pairs)),
		Header: []string{"bound", "windows accepted accurate", "risky acceptances"},
	}
	// Per-pair verdicts fan out over the shared pool (EvaluateDay itself is
	// allocation-free, so the sweep needs no per-worker arena beyond the
	// outcome buffer reused across bounds).
	pool := parallel.NewPool(o.Workers)
	type verdict struct{ accepted, risky bool }
	verdicts := make([]verdict, len(pairs))
	for _, bb := range bounds {
		cfg := metrics.DefaultConfig()
		cfg.Bound = bb.b
		cfg.WindowBound = bb.b
		err := pool.ForEach(len(pairs), func(i int) error {
			p := pairs[i]
			verdicts[i] = verdict{}
			dr, err := metrics.EvaluateDay(p.trueDay, p.predDay, p.window, cfg)
			if err != nil {
				return err
			}
			if !dr.WindowAccurate {
				return nil
			}
			// Re-examine the accepted window for dangerous under-prediction.
			start, w := dr.Window.Predicted.Start, dr.Window.Predicted.Length
			under := 0
			for k := start; k < start+w; k++ {
				if p.predDay.Values[k] < p.trueDay.Values[k]-5 {
					under++
				}
			}
			verdicts[i] = verdict{accepted: true, risky: float64(under) > 0.1*float64(w)}
			return nil
		})
		if err != nil {
			return nil, err
		}
		accepted, risky := 0, 0
		for _, v := range verdicts {
			if v.accepted {
				accepted++
			}
			if v.risky {
				risky++
			}
		}
		t.AddRow(bb.name, pctStr(float64(accepted)/float64(len(pairs))),
			pctStr(float64(risky)/float64(max(accepted, 1))))
	}
	return []Table{t}, nil
}

// runAblationThreshold sweeps the Definition 2 accuracy threshold and
// reports its effect on window accuracy and predictability.
func runAblationThreshold(o Options) ([]Table, error) {
	o = o.withDefaults()
	n := pick(o, 200, 1200)
	fleet := cachedFleet(simulate.Config{
		Region: "ab-thresh", Servers: n, Weeks: 4, Seed: o.Seed,
	})
	factory := modelFactory(forecast.NamePersistentPrevDay, o.Seed, false, 1)
	pool := parallel.NewPool(o.Workers)
	t := Table{
		Caption: "Ablation — bucket-ratio accuracy threshold (Definition 2)",
		Header:  []string{"threshold", "LL windows accurate", "servers predictable"},
	}
	for _, thr := range []float64{0.70, 0.80, 0.90, 0.95} {
		cfg := metrics.DefaultConfig()
		cfg.AccuracyThreshold = thr
		evals, err := evaluateFleet(fleet, factory, []int{1, 2, 3}, cfg, pool)
		if err != nil {
			return nil, err
		}
		st := aggregate(evals, cfg)
		label := fmt.Sprintf("%.0f%%", thr*100)
		if thr == 0.90 {
			label += " (production)"
		}
		t.AddRow(label, pctStr(st.pctAccurate()), pctStr(st.pctPredictable()))
	}
	return []Table{t}, nil
}

// runAblationHistory sweeps the Definition 9 gate length: how many trailing
// good weeks a server needs before its backups are rescheduled. Longer gates
// schedule fewer servers but the scheduled ones miss less often.
func runAblationHistory(o Options) ([]Table, error) {
	o = o.withDefaults()
	n := pick(o, 200, 1200)
	fleet := cachedFleet(simulate.Config{
		Region: "ab-hist", Servers: n, Weeks: 6, Seed: o.Seed,
		Mix: simulate.Mix{Stable: 0.5, Daily: 0.1, NoPattern: 0.4},
	})
	factory := modelFactory(forecast.NamePersistentPrevDay, o.Seed, false, 1)
	mcfg := metrics.DefaultConfig()
	// Evaluate weeks 1..5: five results per server, so even the 4-week gate
	// has a full history window before the final (week 5) outcome.
	evals, err := evaluateFleet(fleet, factory, []int{1, 2, 3, 4, 5}, mcfg, parallel.NewPool(o.Workers))
	if err != nil {
		return nil, err
	}

	t := Table{
		Caption: "Ablation — predictability gate length (Definition 9)",
		Note: "gate = number of trailing correct+accurate weeks required before trusting a " +
			"server's predictions; quality = share of gated servers whose next LL window was correct",
		Header: []string{"gate weeks", "servers passing gate", "next-window correct among passed"},
	}
	for gate := 1; gate <= 4; gate++ {
		passed, correctAfter := 0, 0
		for _, se := range evals {
			if len(se.results) < gate+1 {
				continue
			}
			hist := se.results[len(se.results)-1-gate : len(se.results)-1]
			ok := true
			for _, dr := range hist {
				if !dr.Window.Correct || !dr.WindowAccurate {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			passed++
			if se.results[len(se.results)-1].Window.Correct {
				correctAfter++
			}
		}
		label := fmt.Sprint(gate)
		if gate == 3 {
			label += " (production)"
		}
		t.AddRow(label, passed, pctStr(float64(correctAfter)/float64(max(passed, 1))))
	}
	return []Table{t}, nil
}

// runAblationPFVariants evaluates the three persistent-forecast variants on
// single-class fleets, reproducing the Section 5.2 argument for deploying
// the previous-day variant.
func runAblationPFVariants(o Options) ([]Table, error) {
	o = o.withDefaults()
	n := pick(o, 60, 300)
	mcfg := metrics.DefaultConfig()
	classes := []struct {
		name string
		mix  simulate.Mix
	}{
		{"stable", simulate.Mix{Stable: 1}},
		{"daily pattern", simulate.Mix{Daily: 1}},
		{"weekly pattern", simulate.Mix{Weekly: 1}},
		{"no pattern", simulate.Mix{NoPattern: 1}},
	}
	variants := []string{
		forecast.NamePersistentPrevDay,
		forecast.NamePersistentPrevWeek,
		forecast.NamePersistentWeekAvg,
	}
	pool := parallel.NewPool(o.Workers)

	t := Table{
		Caption: "Ablation — persistent forecast variants per server class (LL windows correct / window load accurate)",
		Note: "previous day captures stable and daily classes; previous equivalent day additionally captures " +
			"weekly; week-average chooses acceptable windows even where its flat load prediction is inaccurate",
		Header: append([]string{"class"}, variants...),
	}
	for ci, cl := range classes {
		fleet := cachedFleet(simulate.Config{
			Region: "ab-pf", Servers: n, Weeks: 4, Seed: o.Seed + int64(ci)*11, Mix: cl.mix,
		})
		row := []any{cl.name}
		for _, v := range variants {
			factory := modelFactory(v, o.Seed, false, 1)
			evals, err := evaluateFleet(fleet, factory, []int{2, 3}, mcfg, pool)
			if err != nil {
				return nil, err
			}
			st := aggregate(evals, mcfg)
			row = append(row, fmt.Sprintf("%s / %s", pctStr(st.pctCorrect()), pctStr(st.pctAccurate())))
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

// runAblationWorkers sweeps the worker-pool size for the accuracy
// evaluation workload of Figure 12(b).
func runAblationWorkers(o Options) ([]Table, error) {
	o = o.withDefaults()
	n := pick(o, 400, 2000)
	fleet := cachedFleet(simulate.Config{
		Region: "ab-workers", Servers: n, Weeks: 2, Seed: o.Seed,
	})
	mcfg := metrics.DefaultConfig()

	type pair struct {
		trueDays, predDays []timeseries.Series
		window             int
	}
	var pairs []pair
	for _, srv := range fleet.Servers {
		load := srv.Load()
		ppd := load.PointsPerDay()
		nd := load.NumDays()
		if nd < 9 {
			continue
		}
		p := pair{window: srv.WindowPoints()}
		for d := nd - 7; d < nd; d++ {
			cur, err1 := load.View(d*ppd, (d+1)*ppd)
			prev, err2 := load.View((d-1)*ppd, d*ppd)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("ablation-workers day views: %v, %v", err1, err2)
			}
			p.trueDays = append(p.trueDays, cur.FillGaps())
			p.predDays = append(p.predDays, prev.FillGaps())
		}
		pairs = append(pairs, p)
	}
	evalWeek := func(p pair) error {
		for d := range p.trueDays {
			if _, err := metrics.EvaluateDay(p.trueDays[d], p.predDays[d], p.window, mcfg); err != nil {
				return err
			}
		}
		return nil
	}

	t := Table{
		Caption: "Ablation — worker count for parallel accuracy evaluation (full-week workload)",
		Note:    fmt.Sprintf("%d servers × 7 days", len(pairs)),
		Header:  []string{"workers", "wall clock", "speedup vs 1"},
	}
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8, 16, o.Workers} {
		pool := parallel.NewPool(workers)
		start := time.Now()
		if err := pool.ForEach(len(pairs), func(i int) error { return evalWeek(pairs[i]) }); err != nil {
			return nil, err
		}
		d := time.Since(start)
		if workers == 1 {
			base = d
		}
		t.AddRow(workers, fmtDuration(d), speedup(base, d))
	}
	return []Table{t}, nil
}
