// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 3, 5, 6 and Appendix A) on the synthetic substrate.
// Each experiment is a named, parameterized run that produces tables
// comparable to the paper's figures; cmd/seagull-experiments renders them
// and bench_test.go wraps them as benchmarks.
//
// Concurrency: experiments share bounded parallel.Pool workers with
// per-worker model arenas (one scratch-retaining model set per worker, no
// locking on the hot path); fleets are memoized in a bounded LRU guarded by
// a mutex. Equivalence: every experiment is deterministic per (config,
// seed) regardless of worker count — partitioned runs must reproduce the
// single-threaded tables exactly, which the smoke tests rely on.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
)

// Scale selects the experiment size.
type Scale int

const (
	// ScaleSmall runs quickly (tests and benchmarks).
	ScaleSmall Scale = iota
	// ScaleFull approaches the paper's relative workload sizes.
	ScaleFull
)

// Options parameterize an experiment run.
type Options struct {
	Scale   Scale
	Seed    int64
	Workers int // 0 means NumCPU
}

func (o Options) withDefaults() Options {
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// pick returns small for ScaleSmall and full otherwise.
func pick[T any](o Options, small, full T) T {
	if o.Scale == ScaleFull {
		return full
	}
	return small
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string // index key, e.g. "fig3"
	Title string // paper artifact, e.g. "Figure 3: server classification"
	// Paper summarizes what the paper reports, for side-by-side reading.
	Paper string
	Run   func(Options) ([]Table, error)
}

// canonicalOrder is the paper's presentation order: evaluation figures
// first, then the appendix, then this repo's ablations.
var canonicalOrder = []string{
	"fig3", "fig11a", "fig11bcd", "fig12a", "fig12b", "fig13a", "fig13b",
	"sec53", "a1", "fig16", "fig17",
	"ablation-bound", "ablation-threshold", "ablation-history",
	"ablation-pf-variants", "ablation-workers",
}

var registryMap = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registryMap[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registryMap[e.ID] = e
}

// All returns every experiment in the paper's presentation order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registryMap))
	for _, id := range canonicalOrder {
		if e, ok := registryMap[id]; ok {
			out = append(out, e)
		}
	}
	// Any experiment registered outside the canonical list goes last.
	for id, e := range registryMap {
		found := false
		for _, c := range canonicalOrder {
			if c == id {
				found = true
				break
			}
		}
		if !found {
			out = append(out, e)
		}
	}
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registryMap[id]
	return e, ok
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registryMap))
	for id := range registryMap {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
