package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	wantIDs := []string{
		"fig3", "fig11a", "fig11bcd", "fig12a", "fig12b",
		"fig13a", "fig13b", "sec53", "a1", "fig16", "fig17",
		"ablation-bound", "ablation-threshold", "ablation-history",
		"ablation-pf-variants", "ablation-workers",
	}
	for _, id := range wantIDs {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("experiment %q not registered", id)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete: %+v", id, e)
		}
	}
	if len(All()) != len(wantIDs) {
		t.Errorf("registered %d experiments, want %d", len(All()), len(wantIDs))
	}
	if len(IDs()) != len(wantIDs) {
		t.Errorf("IDs() = %d", len(IDs()))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should miss")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Caption: "cap",
		Note:    "note",
		Header:  []string{"a", "b"},
	}
	tb.AddRow("x", 1)
	tb.AddRow(2.5, "y")
	md := tb.Markdown()
	for _, want := range []string{"**cap**", "| a | b |", "| x | 1 |", "| 2.50 | y |", "*note*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	txt := tb.Text()
	for _, want := range []string{"cap", "a", "2.50", "note:"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text missing %q:\n%s", want, txt)
		}
	}
}

func TestPctFormatting(t *testing.T) {
	if pctStr(0.123) != "12.3%" {
		t.Errorf("pctStr = %q", pctStr(0.123))
	}
	if pct2Str(0.99829) != "99.83%" {
		t.Errorf("pct2Str = %q", pct2Str(0.99829))
	}
}

// parsePct extracts a float from "12.3%".
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func findRow(t *testing.T, tb Table, key string) []string {
	t.Helper()
	for _, row := range tb.Rows {
		if row[0] == key || (len(row) > 1 && row[1] == key) {
			return row
		}
	}
	t.Fatalf("row %q not found in %q", key, tb.Caption)
	return nil
}

func TestFig3SmallScale(t *testing.T) {
	tables, err := runFig3(Options{Scale: ScaleSmall, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	short := parsePct(t, findRow(t, tb, "short-lived")[2])
	if short < 32 || short > 52 {
		t.Errorf("short-lived = %v%%, want ≈ 42%%", short)
	}
	stable := parsePct(t, findRow(t, tb, "long-lived stable")[2])
	if stable < 43 || stable > 64 {
		t.Errorf("stable = %v%%, want ≈ 53.5%%", stable)
	}
}

func TestSec53SmallScale(t *testing.T) {
	tables, err := runSec53(Options{Scale: ScaleSmall, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Stable+pattern servers: PF must be near-perfect, mirroring 99.83/99.06.
	if got := parsePct(t, tb.Rows[0][3]); got < 95 {
		t.Errorf("stable+pattern LL correct = %v%%, want ≥ 95%%", got)
	}
	if got := parsePct(t, tb.Rows[2][3]); got < 85 {
		t.Errorf("stable+pattern predictable = %v%%, want ≥ 85%%", got)
	}
}

func TestA1SmallScale(t *testing.T) {
	tables, err := runA1(Options{Scale: ScaleSmall, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := parsePct(t, tables[0].Rows[0][2])
	if got < 14 || got > 25 {
		t.Errorf("stable SQL databases = %v%%, want ≈ 19.36%%", got)
	}
}

func TestFig13bSmallScale(t *testing.T) {
	tables, err := runFig13b(Options{Scale: ScaleSmall, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	cap := parsePct(t, findRow(t, tb, "reach capacity (≥99.5%)")[2])
	if cap > 12 {
		t.Errorf("capacity share = %v%%, want small (paper 3.7%%)", cap)
	}
	// Bucket shares sum to ~100%.
	sum := 0.0
	for _, row := range tb.Rows[:10] {
		sum += parsePct(t, row[2])
	}
	if sum < 98 || sum > 102 {
		t.Errorf("bucket shares sum to %v%%", sum)
	}
}

func TestAblationBoundShowsAsymmetryValue(t *testing.T) {
	tables, err := runAblationBound(Options{Scale: ScaleSmall, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	prodRisky := parsePct(t, findRow(t, tb, "+10/−5 (production)")[2])
	symRisky := parsePct(t, findRow(t, tb, "±10 symmetric")[2])
	if prodRisky > symRisky {
		t.Errorf("production bound riskier (%v%%) than symmetric (%v%%)", prodRisky, symRisky)
	}
}

func TestAblationPFVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tables, err := runAblationPFVariants(Options{Scale: ScaleSmall, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	// Cells are "correct% / accurate%"; split them.
	cell := func(row []string, i int) (correct, accurate float64) {
		parts := strings.Split(row[i], " / ")
		if len(parts) != 2 {
			t.Fatalf("cell %q not in correct/accurate form", row[i])
		}
		return parsePct(t, parts[0]), parsePct(t, parts[1])
	}
	// On weekly-pattern servers the previous-equivalent-day variant must beat
	// or match the previous-day variant on window-load accuracy.
	row := findRow(t, tb, "weekly pattern")
	_, prevDayAcc := cell(row, 1)
	_, prevEqAcc := cell(row, 2)
	if prevEqAcc < prevDayAcc-5 {
		t.Errorf("prev-equivalent-day accuracy (%v%%) should not lose to prev-day (%v%%) on weekly servers",
			prevEqAcc, prevDayAcc)
	}
	// On stable servers every variant is near-perfect on both metrics.
	row = findRow(t, tb, "stable")
	for i := 1; i <= 3; i++ {
		c, a := cell(row, i)
		if c < 90 || a < 90 {
			t.Errorf("stable class variant %d = %v%%/%v%%, want ≥ 90%%", i, c, a)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Workers <= 0 || o.Seed == 0 {
		t.Errorf("defaults = %+v", o)
	}
	if pick(Options{Scale: ScaleSmall}, 1, 2) != 1 {
		t.Error("pick small")
	}
	if pick(Options{Scale: ScaleFull}, 1, 2) != 2 {
		t.Error("pick full")
	}
}
