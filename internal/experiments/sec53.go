package experiments

import (
	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/parallel"
	"seagull/internal/simulate"
)

func init() {
	register(Experiment{
		ID:    "sec53",
		Title: "Sections 5.3.2/5.4: persistent forecast headline accuracy",
		Paper: "stable+pattern servers: 99.83% LL windows correct, 99.06% accurate, " +
			"96.92% predictable; deployed fleet-wide: 99% / 96% / 75% of long-lived servers",
		Run: runSec53,
	})
}

// runSec53 evaluates the deployed heuristic — persistent forecast based on
// the previous day — on (1) the stable-and-pattern sub-population of
// Section 5.3.2 and (2) the full long-lived fleet of Section 5.4.
func runSec53(o Options) ([]Table, error) {
	o = o.withDefaults()
	nPattern := pick(o, 250, 2000)
	nFleet := pick(o, 300, 2500)
	weeks := []int{1, 2, 3}
	mcfg := metrics.DefaultConfig()
	factory := modelFactory(forecast.NamePersistentPrevDay, o.Seed, false, 1)
	pool := parallel.NewPool(o.Workers)

	// (1) Servers whose load is stable or follows a pattern (Section 5.3.2).
	patternFleet := cachedFleet(simulate.Config{
		Region: "sec53-pattern", Servers: nPattern, Weeks: 4, Seed: o.Seed,
		Mix: simulate.Mix{Stable: 0.93, Daily: 0.04, Weekly: 0.03},
	})
	evals, err := evaluateFleet(patternFleet, factory, weeks, mcfg, pool)
	if err != nil {
		return nil, err
	}
	pat := aggregate(evals, mcfg)

	// (2) The whole long-lived fleet (Section 5.4's deployment numbers).
	fleet := cachedFleet(simulate.Config{
		Region: "sec53-fleet", Servers: nFleet, Weeks: 4, Seed: o.Seed + 3,
	})
	evals, err = evaluateFleet(fleet, factory, weeks, mcfg, pool)
	if err != nil {
		return nil, err
	}
	all := aggregate(evals, mcfg)

	t := Table{
		Caption: "Sections 5.3.2 / 5.4 — persistent forecast (previous day) accuracy",
		Note:    "three weekly backup-day evaluations per long-lived server",
		Header:  []string{"population", "metric", "paper", "measured"},
	}
	t.AddRow("stable + pattern", "LL windows chosen correctly", "99.83%", pct2Str(pat.pctCorrect()))
	t.AddRow("stable + pattern", "LL window load predicted accurately", "99.06%", pct2Str(pat.pctAccurate()))
	t.AddRow("stable + pattern", "servers predictable", "96.92%", pct2Str(pat.pctPredictable()))
	t.AddRow("all long-lived", "LL windows chosen correctly", "99%", pctStr(all.pctCorrect()))
	t.AddRow("all long-lived", "LL window load predicted accurately", "96%", pctStr(all.pctAccurate()))
	t.AddRow("all long-lived", "servers predictable", "75%", pctStr(all.pctPredictable()))
	return []Table{t}, nil
}
