package experiments

import (
	"testing"

	"seagull/internal/simulate"
)

func cacheCfg(seed int64) simulate.Config {
	return simulate.Config{Region: "cache-test", Servers: 2, Weeks: 1, Seed: seed}
}

func TestFleetCacheMemoizesByConfig(t *testing.T) {
	ResetFleetCache()
	defer ResetFleetCache()
	f1 := cachedFleet(cacheCfg(1))
	if cachedFleet(cacheCfg(1)) != f1 {
		t.Error("identical config must return the memoized fleet")
	}
	if cachedFleet(cacheCfg(2)) == f1 {
		t.Error("different config must not share a fleet")
	}
}

func TestFleetCacheLRUEviction(t *testing.T) {
	ResetFleetCache()
	defer ResetFleetCache()
	victim := cachedFleet(cacheCfg(1))
	keeper := cachedFleet(cacheCfg(2))
	// Touch the keeper, then flood the cache past its capacity; the victim
	// (least recently used) must be evicted while the bound holds.
	cachedFleet(cacheCfg(2))
	for i := 0; i < fleetCacheCap+4; i++ {
		cachedFleet(cacheCfg(int64(100 + i)))
	}
	if n := fleetCacheLen(); n > fleetCacheCap {
		t.Errorf("cache holds %d fleets, cap is %d", n, fleetCacheCap)
	}
	if cachedFleet(cacheCfg(1)) == victim {
		t.Error("least recently used fleet should have been evicted")
	}
	_ = keeper // the keeper's fate depends on the flood order; only the bound and LRU victim are pinned
}

func TestFleetCacheReset(t *testing.T) {
	ResetFleetCache()
	f1 := cachedFleet(cacheCfg(1))
	if fleetCacheLen() != 1 {
		t.Fatalf("cache len = %d, want 1", fleetCacheLen())
	}
	ResetFleetCache()
	if fleetCacheLen() != 0 {
		t.Fatalf("cache len after reset = %d, want 0", fleetCacheLen())
	}
	if cachedFleet(cacheCfg(1)) == f1 {
		t.Error("reset must drop the memoized fleet")
	}
}
