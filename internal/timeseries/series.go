// Package timeseries provides the fixed-interval time-series substrate that
// every other Seagull component builds on: load series at a uniform sampling
// interval, day slicing, resampling, gap repair and window statistics.
//
// The paper's telemetry is "average customer CPU load percentage per five
// minutes" per server (Section 2.2); the SQL auto-scale scenario uses a
// 15-minute granularity (Appendix A). Both are represented here as a Series
// with an explicit Interval.
//
// Concurrency and aliasing contract: a Series is a value wrapping a shared
// backing array. View/Slice return zero-copy windows — read-only by
// convention; mutating helpers (FillGaps, Clone, resampling) copy first.
// Concurrent readers of the same backing array are safe; any writer
// requires external synchronization. Missing observations are NaN
// (timeseries.Missing) everywhere in the system.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Common errors returned by series operations.
var (
	ErrEmptySeries      = errors.New("timeseries: empty series")
	ErrLengthMismatch   = errors.New("timeseries: series length mismatch")
	ErrIntervalMismatch = errors.New("timeseries: interval mismatch")
	ErrBadInterval      = errors.New("timeseries: interval must be positive")
	ErrOutOfRange       = errors.New("timeseries: window out of range")
)

// Missing marks an absent observation inside a Series. Validation flags runs
// of Missing; gap repair replaces them by interpolation.
var Missing = math.NaN()

// IsMissing reports whether v marks an absent observation.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Series is a uniformly sampled time series: Values[i] is the observation for
// the interval starting at Start.Add(time.Duration(i)*Interval).
//
// A Series is a value-ish type: methods never mutate the receiver unless
// documented otherwise, and returned series share no backing storage with the
// receiver.
type Series struct {
	Start    time.Time
	Interval time.Duration
	Values   []float64
}

// New returns a Series beginning at start with the given sampling interval
// and values. The values slice is used directly (not copied).
func New(start time.Time, interval time.Duration, values []float64) Series {
	return Series{Start: start, Interval: interval, Values: values}
}

// Zeros returns a Series of n zero observations.
func Zeros(start time.Time, interval time.Duration, n int) Series {
	return Series{Start: start, Interval: interval, Values: make([]float64, n)}
}

// Len returns the number of observations.
func (s Series) Len() int { return len(s.Values) }

// End returns the time just after the last interval, i.e. Start + Len*Interval.
func (s Series) End() time.Time {
	return s.Start.Add(time.Duration(s.Len()) * s.Interval)
}

// TimeAt returns the start time of observation i.
func (s Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Interval)
}

// IndexOf returns the observation index covering time t and whether t falls
// inside the series' span.
func (s Series) IndexOf(t time.Time) (int, bool) {
	if s.Interval <= 0 || s.Len() == 0 {
		return 0, false
	}
	d := t.Sub(s.Start)
	if d < 0 {
		return 0, false
	}
	i := int(d / s.Interval)
	if i >= s.Len() {
		return 0, false
	}
	return i, true
}

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return Series{Start: s.Start, Interval: s.Interval, Values: v}
}

// Slice returns the sub-series covering observation indexes [from, to).
// The returned series copies its values.
func (s Series) Slice(from, to int) (Series, error) {
	if from < 0 || to > s.Len() || from > to {
		return Series{}, fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, from, to, s.Len())
	}
	v := make([]float64, to-from)
	copy(v, s.Values[from:to])
	return Series{Start: s.TimeAt(from), Interval: s.Interval, Values: v}, nil
}

// View returns the sub-series covering observation indexes [from, to)
// sharing the receiver's backing array — the zero-copy counterpart of Slice
// for read-only consumers. The result must not be mutated (FillGaps, Clone,
// Slice and Resample all copy before writing, so feeding a view into a
// model's Train is safe); use Slice when ownership is needed.
func (s Series) View(from, to int) (Series, error) {
	if from < 0 || to > s.Len() || from > to {
		return Series{}, fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, from, to, s.Len())
	}
	return Series{Start: s.TimeAt(from), Interval: s.Interval, Values: s.Values[from:to:to]}, nil
}

// Between returns the sub-series covering [from, to) in time. Both bounds are
// clamped to the series' span.
func (s Series) Between(from, to time.Time) Series {
	if s.Len() == 0 {
		return Series{Start: from, Interval: s.Interval}
	}
	lo := int(from.Sub(s.Start) / s.Interval)
	hi := int(to.Sub(s.Start) / s.Interval)
	if to.Sub(s.Start)%s.Interval != 0 {
		hi++
	}
	lo = max(lo, 0)
	hi = min(hi, s.Len())
	if lo >= hi {
		return Series{Start: from, Interval: s.Interval}
	}
	out, _ := s.Slice(lo, hi)
	return out
}

// Append extends the series in place with more observations.
func (s *Series) Append(values ...float64) { s.Values = append(s.Values, values...) }

// PointsPerDay returns how many observations cover 24 hours.
func (s Series) PointsPerDay() int {
	if s.Interval <= 0 {
		return 0
	}
	return int(24 * time.Hour / s.Interval)
}

// Days splits the series into consecutive whole days (UTC midnight-aligned
// relative to Start). The final partial day, if any, is dropped. Each day
// copies its values.
func (s Series) Days() []Series {
	ppd := s.PointsPerDay()
	if ppd == 0 || s.Len() < ppd {
		return nil
	}
	n := s.Len() / ppd
	days := make([]Series, 0, n)
	for i := 0; i < n; i++ {
		d, _ := s.Slice(i*ppd, (i+1)*ppd)
		days = append(days, d)
	}
	return days
}

// Day returns day i (0-based from Start) of the series.
func (s Series) Day(i int) (Series, error) {
	ppd := s.PointsPerDay()
	if ppd == 0 {
		return Series{}, ErrBadInterval
	}
	return s.Slice(i*ppd, (i+1)*ppd)
}

// NumDays returns the number of whole days the series covers.
func (s Series) NumDays() int {
	ppd := s.PointsPerDay()
	if ppd == 0 {
		return 0
	}
	return s.Len() / ppd
}

// Mean returns the arithmetic mean, skipping missing observations. A series
// of only missing values has mean 0.
func (s Series) Mean() float64 {
	sum, n := 0.0, 0
	for _, v := range s.Values {
		if IsMissing(v) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Std returns the population standard deviation, skipping missing values.
func (s Series) Std() float64 {
	mean := s.Mean()
	sum, n := 0.0, 0
	for _, v := range s.Values {
		if IsMissing(v) {
			continue
		}
		d := v - mean
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// Min returns the smallest non-missing observation and its index, or
// (0, -1) when every observation is missing.
func (s Series) Min() (float64, int) {
	best, idx := math.Inf(1), -1
	for i, v := range s.Values {
		if IsMissing(v) {
			continue
		}
		if v < best {
			best, idx = v, i
		}
	}
	if idx < 0 {
		return 0, -1
	}
	return best, idx
}

// Max returns the largest non-missing observation and its index, or (0, -1)
// when every observation is missing.
func (s Series) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, v := range s.Values {
		if IsMissing(v) {
			continue
		}
		if v > best {
			best, idx = v, i
		}
	}
	if idx < 0 {
		return 0, -1
	}
	return best, idx
}

// MissingCount returns the number of missing observations.
func (s Series) MissingCount() int {
	n := 0
	for _, v := range s.Values {
		if IsMissing(v) {
			n++
		}
	}
	return n
}

// WindowMean returns the mean of the w observations starting at index i,
// skipping missing values. It returns an error when [i, i+w) is out of range.
func (s Series) WindowMean(i, w int) (float64, error) {
	if i < 0 || w <= 0 || i+w > s.Len() {
		return 0, fmt.Errorf("%w: window [%d,%d) of %d", ErrOutOfRange, i, i+w, s.Len())
	}
	sum, n := 0.0, 0
	for _, v := range s.Values[i : i+w] {
		if IsMissing(v) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// MinWindow returns the start index of the length-w window with the minimal
// mean, scanning every start offset. This is the primitive behind the lowest
// load window (Definition 7 in the paper).
func (s Series) MinWindow(w int) (start int, mean float64, err error) {
	if w <= 0 || w > s.Len() {
		return 0, 0, fmt.Errorf("%w: window %d of %d", ErrOutOfRange, w, s.Len())
	}
	// Incremental sliding sum over non-missing values.
	sum, cnt := 0.0, 0
	for _, v := range s.Values[:w] {
		if !IsMissing(v) {
			sum += v
			cnt++
		}
	}
	bestMean := math.Inf(1)
	if cnt > 0 {
		bestMean = sum / float64(cnt)
	}
	best := 0
	for i := 1; i+w <= s.Len(); i++ {
		out, in := s.Values[i-1], s.Values[i+w-1]
		if !IsMissing(out) {
			sum -= out
			cnt--
		}
		if !IsMissing(in) {
			sum += in
			cnt++
		}
		if cnt == 0 {
			continue
		}
		if m := sum / float64(cnt); m < bestMean {
			bestMean, best = m, i
		}
	}
	if math.IsInf(bestMean, 1) {
		return 0, 0, ErrEmptySeries
	}
	return best, bestMean, nil
}

// Resample converts the series to a coarser interval by averaging whole
// buckets. target must be a positive multiple of s.Interval; the trailing
// partial bucket is dropped.
func (s Series) Resample(target time.Duration) (Series, error) {
	if target <= 0 || s.Interval <= 0 {
		return Series{}, ErrBadInterval
	}
	if target%s.Interval != 0 {
		return Series{}, fmt.Errorf("%w: %v not a multiple of %v", ErrIntervalMismatch, target, s.Interval)
	}
	k := int(target / s.Interval)
	if k == 1 {
		return s.Clone(), nil
	}
	n := s.Len() / k
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		sum, cnt := 0.0, 0
		for _, v := range s.Values[i*k : (i+1)*k] {
			if IsMissing(v) {
				continue
			}
			sum += v
			cnt++
		}
		if cnt == 0 {
			out[i] = Missing
		} else {
			out[i] = sum / float64(cnt)
		}
	}
	return Series{Start: s.Start, Interval: target, Values: out}, nil
}

// FillGaps returns a copy with missing observations replaced by linear
// interpolation between the nearest non-missing neighbours; leading/trailing
// gaps are filled with the nearest observed value. A fully-missing series is
// filled with zeros.
func (s Series) FillGaps() Series {
	out := s.Clone()
	n := out.Len()
	prev := -1 // last non-missing index
	for i := 0; i < n; i++ {
		if IsMissing(out.Values[i]) {
			continue
		}
		if prev < 0 && i > 0 {
			// Leading gap: back-fill.
			for j := 0; j < i; j++ {
				out.Values[j] = out.Values[i]
			}
		} else if prev >= 0 && i-prev > 1 {
			// Interior gap: linear interpolation.
			lo, hi := out.Values[prev], out.Values[i]
			span := float64(i - prev)
			for j := prev + 1; j < i; j++ {
				frac := float64(j-prev) / span
				out.Values[j] = lo + (hi-lo)*frac
			}
		}
		prev = i
	}
	if prev < 0 {
		for i := range out.Values {
			out.Values[i] = 0
		}
		return out
	}
	for j := prev + 1; j < n; j++ {
		out.Values[j] = out.Values[prev]
	}
	return out
}

// Clamp limits every observation to [lo, hi] in place and returns the series
// for chaining. Missing values are preserved.
func (s Series) Clamp(lo, hi float64) Series {
	for i, v := range s.Values {
		if IsMissing(v) {
			continue
		}
		if v < lo {
			s.Values[i] = lo
		} else if v > hi {
			s.Values[i] = hi
		}
	}
	return s
}

// Add returns the element-wise sum of two equally shaped series.
func Add(a, b Series) (Series, error) {
	if a.Len() != b.Len() {
		return Series{}, ErrLengthMismatch
	}
	out := a.Clone()
	for i := range out.Values {
		out.Values[i] += b.Values[i]
	}
	return out, nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the non-missing values using
// linear interpolation between order statistics.
func (s Series) Quantile(q float64) (float64, error) {
	vals := make([]float64, 0, s.Len())
	for _, v := range s.Values {
		if !IsMissing(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, ErrEmptySeries
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("timeseries: quantile %v out of [0,1]", q)
	}
	sort.Float64s(vals)
	pos := q * float64(len(vals)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return vals[lo], nil
	}
	frac := pos - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac, nil
}

// String summarizes the series for debugging.
func (s Series) String() string {
	return fmt.Sprintf("Series{start=%s interval=%s n=%d mean=%.2f}",
		s.Start.Format(time.RFC3339), s.Interval, s.Len(), s.Mean())
}
