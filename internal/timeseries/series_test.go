package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewAndAccessors(t *testing.T) {
	s := New(t0, 5*time.Minute, []float64{1, 2, 3})
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.TimeAt(2); !got.Equal(t0.Add(10 * time.Minute)) {
		t.Errorf("TimeAt(2) = %v", got)
	}
	if got := s.End(); !got.Equal(t0.Add(15 * time.Minute)) {
		t.Errorf("End = %v", got)
	}
}

func TestIndexOf(t *testing.T) {
	s := New(t0, 5*time.Minute, make([]float64, 12))
	cases := []struct {
		t    time.Time
		want int
		ok   bool
	}{
		{t0, 0, true},
		{t0.Add(4 * time.Minute), 0, true},
		{t0.Add(5 * time.Minute), 1, true},
		{t0.Add(59 * time.Minute), 11, true},
		{t0.Add(60 * time.Minute), 0, false},
		{t0.Add(-time.Minute), 0, false},
	}
	for _, c := range cases {
		got, ok := s.IndexOf(c.t)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("IndexOf(%v) = (%d,%v), want (%d,%v)", c.t, got, ok, c.want, c.ok)
		}
	}
}

func TestIndexOfEmptySeries(t *testing.T) {
	var s Series
	if _, ok := s.IndexOf(t0); ok {
		t.Error("IndexOf on empty series should report not found")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(t0, time.Minute, []float64{1, 2, 3})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Error("Clone shares backing storage with the original")
	}
}

func TestSlice(t *testing.T) {
	s := New(t0, time.Minute, []float64{0, 1, 2, 3, 4})
	sub, err := s.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Values[0] != 1 || !sub.Start.Equal(t0.Add(time.Minute)) {
		t.Errorf("Slice = %+v", sub)
	}
	sub.Values[0] = 42
	if s.Values[1] != 1 {
		t.Error("Slice shares storage")
	}
	if _, err := s.Slice(-1, 2); err == nil {
		t.Error("negative from should error")
	}
	if _, err := s.Slice(0, 6); err == nil {
		t.Error("to beyond length should error")
	}
	if _, err := s.Slice(3, 2); err == nil {
		t.Error("from>to should error")
	}
}

func TestBetween(t *testing.T) {
	s := New(t0, time.Hour, []float64{0, 1, 2, 3, 4, 5})
	sub := s.Between(t0.Add(time.Hour), t0.Add(3*time.Hour))
	if sub.Len() != 2 || sub.Values[0] != 1 || sub.Values[1] != 2 {
		t.Errorf("Between = %+v", sub.Values)
	}
	// Clamped bounds.
	sub = s.Between(t0.Add(-time.Hour), t0.Add(100*time.Hour))
	if sub.Len() != 6 {
		t.Errorf("clamped Between len = %d", sub.Len())
	}
	// Partial-interval upper bound rounds up.
	sub = s.Between(t0, t0.Add(90*time.Minute))
	if sub.Len() != 2 {
		t.Errorf("partial Between len = %d, want 2", sub.Len())
	}
	// Empty range.
	if sub := s.Between(t0.Add(10*time.Hour), t0.Add(11*time.Hour)); sub.Len() != 0 {
		t.Errorf("out-of-range Between len = %d, want 0", sub.Len())
	}
}

func TestDays(t *testing.T) {
	ppd := 288 // 5-minute granularity
	s := New(t0, 5*time.Minute, make([]float64, ppd*3+10))
	for i := range s.Values {
		s.Values[i] = float64(i / ppd)
	}
	days := s.Days()
	if len(days) != 3 {
		t.Fatalf("Days = %d, want 3 (partial day dropped)", len(days))
	}
	for i, d := range days {
		if d.Len() != ppd {
			t.Errorf("day %d len = %d", i, d.Len())
		}
		if d.Values[0] != float64(i) {
			t.Errorf("day %d starts with %v", i, d.Values[0])
		}
		if !d.Start.Equal(t0.Add(time.Duration(i) * 24 * time.Hour)) {
			t.Errorf("day %d start = %v", i, d.Start)
		}
	}
	if s.NumDays() != 3 {
		t.Errorf("NumDays = %d", s.NumDays())
	}
	d1, err := s.Day(1)
	if err != nil || d1.Values[0] != 1 {
		t.Errorf("Day(1) = %+v, err %v", d1.Values[:1], err)
	}
}

func TestDaysTooShort(t *testing.T) {
	s := New(t0, 5*time.Minute, make([]float64, 100))
	if days := s.Days(); days != nil {
		t.Errorf("Days on sub-day series = %d, want nil", len(days))
	}
}

func TestMeanStdMinMax(t *testing.T) {
	s := New(t0, time.Minute, []float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEq(s.Mean(), 5) {
		t.Errorf("Mean = %v", s.Mean())
	}
	if !almostEq(s.Std(), 2) {
		t.Errorf("Std = %v", s.Std())
	}
	mn, i := s.Min()
	if mn != 2 || i != 0 {
		t.Errorf("Min = %v@%d", mn, i)
	}
	mx, j := s.Max()
	if mx != 9 || j != 7 {
		t.Errorf("Max = %v@%d", mx, j)
	}
}

func TestStatsSkipMissing(t *testing.T) {
	s := New(t0, time.Minute, []float64{Missing, 10, Missing, 20})
	if !almostEq(s.Mean(), 15) {
		t.Errorf("Mean with missing = %v", s.Mean())
	}
	if s.MissingCount() != 2 {
		t.Errorf("MissingCount = %d", s.MissingCount())
	}
	mn, i := s.Min()
	if mn != 10 || i != 1 {
		t.Errorf("Min = %v@%d", mn, i)
	}
}

func TestAllMissingStats(t *testing.T) {
	s := New(t0, time.Minute, []float64{Missing, Missing})
	if s.Mean() != 0 || s.Std() != 0 {
		t.Error("all-missing mean/std should be 0")
	}
	if _, i := s.Min(); i != -1 {
		t.Error("all-missing Min should report index -1")
	}
	if _, i := s.Max(); i != -1 {
		t.Error("all-missing Max should report index -1")
	}
}

func TestWindowMean(t *testing.T) {
	s := New(t0, time.Minute, []float64{1, 2, 3, 4, 5})
	m, err := s.WindowMean(1, 3)
	if err != nil || !almostEq(m, 3) {
		t.Errorf("WindowMean = %v, err %v", m, err)
	}
	if _, err := s.WindowMean(3, 3); err == nil {
		t.Error("overflowing window should error")
	}
	if _, err := s.WindowMean(0, 0); err == nil {
		t.Error("zero-width window should error")
	}
}

func TestMinWindow(t *testing.T) {
	// Valley at indices 4..6.
	s := New(t0, time.Minute, []float64{9, 8, 7, 5, 1, 1, 1, 6, 9, 9})
	start, mean, err := s.MinWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if start != 4 || !almostEq(mean, 1) {
		t.Errorf("MinWindow = %d mean %v", start, mean)
	}
	if _, _, err := s.MinWindow(11); err == nil {
		t.Error("window longer than series should error")
	}
	if _, _, err := s.MinWindow(0); err == nil {
		t.Error("zero window should error")
	}
}

func TestMinWindowWithMissing(t *testing.T) {
	s := New(t0, time.Minute, []float64{5, Missing, 5, 1, 1, 5})
	start, mean, err := s.MinWindow(2)
	if err != nil {
		t.Fatal(err)
	}
	if start != 3 || !almostEq(mean, 1) {
		t.Errorf("MinWindow = %d mean %v", start, mean)
	}
}

func TestMinWindowBruteForceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(60)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		s := New(t0, time.Minute, vals)
		w := 1 + rng.Intn(n)
		start, mean, err := s.MinWindow(w)
		if err != nil {
			t.Fatal(err)
		}
		bestMean, best := math.Inf(1), -1
		for i := 0; i+w <= n; i++ {
			m, _ := s.WindowMean(i, w)
			if m < bestMean {
				bestMean, best = m, i
			}
		}
		if !almostEq(mean, bestMean) {
			t.Fatalf("trial %d: MinWindow mean %v, brute force %v (start %d vs %d)",
				trial, mean, bestMean, start, best)
		}
	}
}

func TestResample(t *testing.T) {
	s := New(t0, 5*time.Minute, []float64{1, 3, 5, 7, 10, 20})
	r, err := s.Resample(15 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || !almostEq(r.Values[0], 3) || !almostEq(r.Values[1], 37.0/3) {
		t.Errorf("Resample = %+v", r.Values)
	}
	if r.Interval != 15*time.Minute {
		t.Errorf("Resample interval = %v", r.Interval)
	}
	if _, err := s.Resample(7 * time.Minute); err == nil {
		t.Error("non-multiple target should error")
	}
	if _, err := s.Resample(0); err == nil {
		t.Error("zero target should error")
	}
	same, err := s.Resample(5 * time.Minute)
	if err != nil || same.Len() != s.Len() {
		t.Errorf("identity resample failed: %v", err)
	}
}

func TestResampleMissingBuckets(t *testing.T) {
	s := New(t0, time.Minute, []float64{Missing, Missing, 4, 6})
	r, err := s.Resample(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !IsMissing(r.Values[0]) {
		t.Error("fully-missing bucket should stay missing")
	}
	if !almostEq(r.Values[1], 5) {
		t.Errorf("bucket mean = %v", r.Values[1])
	}
}

func TestFillGaps(t *testing.T) {
	s := New(t0, time.Minute, []float64{Missing, 2, Missing, Missing, 8, Missing})
	f := s.FillGaps()
	want := []float64{2, 2, 4, 6, 8, 8}
	for i, w := range want {
		if !almostEq(f.Values[i], w) {
			t.Errorf("FillGaps[%d] = %v, want %v", i, f.Values[i], w)
		}
	}
	// Original untouched.
	if !IsMissing(s.Values[0]) {
		t.Error("FillGaps mutated the receiver")
	}
}

func TestFillGapsAllMissing(t *testing.T) {
	s := New(t0, time.Minute, []float64{Missing, Missing})
	f := s.FillGaps()
	if f.Values[0] != 0 || f.Values[1] != 0 {
		t.Errorf("all-missing FillGaps = %v", f.Values)
	}
}

func TestClamp(t *testing.T) {
	s := New(t0, time.Minute, []float64{-5, 50, 150, Missing})
	s.Clamp(0, 100)
	if s.Values[0] != 0 || s.Values[1] != 50 || s.Values[2] != 100 {
		t.Errorf("Clamp = %v", s.Values)
	}
	if !IsMissing(s.Values[3]) {
		t.Error("Clamp should preserve missing values")
	}
}

func TestAdd(t *testing.T) {
	a := New(t0, time.Minute, []float64{1, 2})
	b := New(t0, time.Minute, []float64{10, 20})
	c, err := Add(a, b)
	if err != nil || c.Values[0] != 11 || c.Values[1] != 22 {
		t.Errorf("Add = %+v err %v", c.Values, err)
	}
	if _, err := Add(a, New(t0, time.Minute, []float64{1})); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestQuantile(t *testing.T) {
	s := New(t0, time.Minute, []float64{1, 2, 3, 4})
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	} {
		got, err := s.Quantile(c.q)
		if err != nil || !almostEq(got, c.want) {
			t.Errorf("Quantile(%v) = %v, want %v (err %v)", c.q, got, c.want, err)
		}
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Error("out-of-range q should error")
	}
	empty := New(t0, time.Minute, nil)
	if _, err := empty.Quantile(0.5); err == nil {
		t.Error("empty quantile should error")
	}
}

func TestPointsPerDay(t *testing.T) {
	if got := New(t0, 5*time.Minute, nil).PointsPerDay(); got != 288 {
		t.Errorf("5-min PointsPerDay = %d, want 288", got)
	}
	if got := New(t0, 15*time.Minute, nil).PointsPerDay(); got != 96 {
		t.Errorf("15-min PointsPerDay = %d, want 96", got)
	}
	if got := (Series{}).PointsPerDay(); got != 0 {
		t.Errorf("zero-interval PointsPerDay = %d", got)
	}
}

// Property: MinWindow mean is never larger than any window mean.
func TestPropertyMinWindowIsMinimal(t *testing.T) {
	f := func(raw []uint8, wSeed uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		s := New(t0, time.Minute, vals)
		w := 1 + int(wSeed)%len(vals)
		_, mean, err := s.MinWindow(w)
		if err != nil {
			return false
		}
		for i := 0; i+w <= s.Len(); i++ {
			m, _ := s.WindowMean(i, w)
			if mean > m+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: FillGaps output has no missing values and preserves observed points.
func TestPropertyFillGapsComplete(t *testing.T) {
	f := func(raw []uint8, mask []bool) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(raw[i])
			if i < len(mask) && mask[i] {
				vals[i] = Missing
			}
		}
		s := New(t0, time.Minute, vals)
		filled := s.FillGaps()
		for i, v := range filled.Values {
			if IsMissing(v) {
				return false
			}
			if !IsMissing(s.Values[i]) && !almostEq(v, s.Values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Resample then mean equals original mean when no values are
// missing and length divides evenly.
func TestPropertyResamplePreservesMean(t *testing.T) {
	f := func(raw []uint8) bool {
		n := (len(raw) / 4) * 4
		if n == 0 {
			return true
		}
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = float64(raw[i])
		}
		s := New(t0, time.Minute, vals)
		r, err := s.Resample(4 * time.Minute)
		if err != nil {
			return false
		}
		return almostEq(s.Mean(), r.Mean())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestViewSharesBackingAndMatchesSlice(t *testing.T) {
	s := New(time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC), 5*time.Minute, []float64{1, 2, 3, 4, 5, 6})
	v, err := s.View(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := s.Slice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Start.Equal(sl.Start) || v.Len() != sl.Len() {
		t.Fatalf("view %v != slice %v", v, sl)
	}
	for i := range sl.Values {
		if v.Values[i] != sl.Values[i] {
			t.Fatalf("view[%d] = %v, want %v", i, v.Values[i], sl.Values[i])
		}
	}
	// The view shares backing storage with the receiver…
	s.Values[2] = 42
	if v.Values[0] != 42 {
		t.Error("view does not share the receiver's backing array")
	}
	// …while a full-capacity slice expression keeps appends from clobbering
	// the parent.
	v.Append(99)
	if s.Values[5] != 6 {
		t.Errorf("append through view clobbered parent: %v", s.Values)
	}
	if _, err := s.View(4, 2); err == nil {
		t.Error("inverted bounds must error")
	}
	if _, err := s.View(0, 7); err == nil {
		t.Error("out-of-range view must error")
	}
}
