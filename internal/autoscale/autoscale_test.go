package autoscale

import (
	"math"
	"testing"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

var t0 = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)

func mkSeries(days int, f func(day, slot int) float64) timeseries.Series {
	const ppd = 96 // 15-minute granularity
	vals := make([]float64, days*ppd)
	for d := 0; d < days; d++ {
		for s := 0; s < ppd; s++ {
			vals[d*ppd+s] = f(d, s)
		}
	}
	return timeseries.New(t0, 15*time.Minute, vals)
}

func TestIsStableFlat(t *testing.T) {
	var c Classifier
	s := mkSeries(5, func(d, sl int) float64 { return 20 + 0.5*float64(sl%2) })
	ok, err := c.IsStable(s)
	if err != nil || !ok {
		t.Errorf("flat database: stable=%v err=%v", ok, err)
	}
}

func TestIsStableRejectsSeasonal(t *testing.T) {
	var c Classifier
	s := mkSeries(5, func(d, sl int) float64 {
		return 20 + 15*math.Sin(2*math.Pi*float64(sl)/96)
	})
	ok, err := c.IsStable(s)
	if err != nil || ok {
		t.Errorf("seasonal database: stable=%v err=%v", ok, err)
	}
}

func TestIsStableUsesLastThreeDays(t *testing.T) {
	var c Classifier
	// Volatile early history, flat final three days.
	s := mkSeries(6, func(d, sl int) float64 {
		if d < 3 {
			return float64(20 + 30*(sl%2))
		}
		return 25
	})
	ok, err := c.IsStable(s)
	if err != nil || !ok {
		t.Errorf("recently stabilized database: stable=%v err=%v", ok, err)
	}
}

func TestIsStableNeedsThreeDays(t *testing.T) {
	var c Classifier
	s := mkSeries(2, func(d, sl int) float64 { return 10 })
	if _, err := c.IsStable(s); err == nil {
		t.Error("two days should error")
	}
}

func TestCustomThreshold(t *testing.T) {
	c := Classifier{Threshold: 100}
	s := mkSeries(3, func(d, sl int) float64 { return float64(50 * (sl % 2)) })
	ok, err := c.IsStable(s)
	if err != nil || !ok {
		t.Errorf("loose threshold should accept: %v %v", ok, err)
	}
}

// The Appendix A.1 statistic: ~19.36% of SQL databases are stable.
func TestClassifySQLFleetRecoversPaperShare(t *testing.T) {
	dbs := simulate.GenerateSQL(simulate.SQLConfig{Databases: 1500, Days: 28, Seed: 9})
	var c Classifier
	stable, total, err := c.ClassifySQLFleet(dbs)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(stable) / float64(total)
	if math.Abs(got-0.1936) > 0.04 {
		t.Errorf("stable share = %.4f, want ≈ 0.1936", got)
	}
	// Classification should recover the construction labels closely.
	agree := 0
	for _, db := range dbs {
		ok, err := c.IsStable(db.Load)
		if err != nil {
			t.Fatal(err)
		}
		if ok == db.StableByConstruction {
			agree++
		}
	}
	if rate := float64(agree) / float64(total); rate < 0.95 {
		t.Errorf("construction agreement = %.3f, want ≥ 0.95", rate)
	}
}

func TestEvaluateModelPersistentForecast(t *testing.T) {
	dbs := simulate.GenerateSQL(simulate.SQLConfig{Databases: 40, Days: 9, Seed: 4})
	ev, err := EvaluateModel(forecast.NamePersistentPrevDay, dbs, EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Databases != 40 {
		t.Errorf("evaluated %d of 40", ev.Databases)
	}
	if ev.MeanNRMSE <= 0 || ev.MeanMASE <= 0 {
		t.Errorf("metrics: NRMSE=%v MASE=%v", ev.MeanNRMSE, ev.MeanMASE)
	}
	// Persistent forecast on mostly-unstable SQL data should still beat
	// predicting the mean by a wide margin on stable databases, keeping the
	// fleet mean NRMSE within sane bounds.
	if ev.MeanNRMSE > 3 {
		t.Errorf("NRMSE = %v, implausibly bad", ev.MeanNRMSE)
	}
	if ev.TrainInfer <= 0 || ev.Evaluation <= 0 {
		t.Errorf("timings: %+v", ev)
	}
}

func TestEvaluateModelSkipsShortHistories(t *testing.T) {
	dbs := simulate.GenerateSQL(simulate.SQLConfig{Databases: 5, Days: 4, Seed: 4})
	if _, err := EvaluateModel(forecast.NamePersistentPrevDay, dbs, EvalConfig{TrainDays: 7}); err == nil {
		t.Error("population with too-short histories should error (none evaluated)")
	}
}

func TestEvaluateModelUnknown(t *testing.T) {
	dbs := simulate.GenerateSQL(simulate.SQLConfig{Databases: 3, Days: 9, Seed: 4})
	if _, err := EvaluateModel("bogus", dbs, EvalConfig{}); err == nil {
		t.Error("unknown model should error")
	}
}

func TestCompareModels(t *testing.T) {
	dbs := simulate.GenerateSQL(simulate.SQLConfig{Databases: 12, Days: 9, Seed: 6})
	evs, err := CompareModels([]string{
		forecast.NamePersistentPrevDay,
		forecast.NameSSA,
	}, dbs, EvalConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("evals = %d", len(evs))
	}
	for _, ev := range evs {
		if ev.Databases == 0 {
			t.Errorf("%s evaluated nothing", ev.Model)
		}
	}
	// Persistent forecast has (near-)zero training cost; SSA trains for real.
	if evs[0].TrainInfer > evs[1].TrainInfer*3 {
		t.Errorf("PF train+infer %v should not dwarf SSA %v", evs[0].TrainInfer, evs[1].TrainInfer)
	}
}

func TestRecommend(t *testing.T) {
	high := timeseries.New(t0, 15*time.Minute, []float64{90, 92, 95, 91, 90, 93})
	low := timeseries.New(t0, 15*time.Minute, []float64{5, 6, 4, 5, 6, 5})
	mid := timeseries.New(t0, 15*time.Minute, []float64{40, 45, 50, 42, 41, 44})

	if a, err := Recommend(high, 80, 20); err != nil || a != ActionScaleUp {
		t.Errorf("high: %v %v", a, err)
	}
	if a, err := Recommend(low, 80, 20); err != nil || a != ActionScaleDown {
		t.Errorf("low: %v %v", a, err)
	}
	if a, err := Recommend(mid, 80, 20); err != nil || a != ActionHold {
		t.Errorf("mid: %v %v", a, err)
	}
	empty := timeseries.New(t0, 15*time.Minute, nil)
	if _, err := Recommend(empty, 80, 20); err == nil {
		t.Error("empty forecast should error")
	}
}
