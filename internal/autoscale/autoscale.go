// Package autoscale implements the second Seagull scenario (Appendix A):
// preemptive auto-scale of Azure SQL databases. It classifies databases into
// stable and unstable (Definition 10), forecasts CPU load 24 hours ahead at
// 15-minute granularity with the shared model zoo, and evaluates prediction
// error with the standard metrics of Appendix A.2 (mean NRMSE and MASE) —
// the data behind Figures 16 and 17.
//
// Concurrency: evaluation entry points are stateless and safe to call from
// multiple goroutines; the forecast models they build internally are not
// shared. Equivalence: every run is deterministic per (model, seed, input),
// so evaluation rows are reproducible bit for bit.
package autoscale

import (
	"errors"
	"fmt"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/parallel"
	"seagull/internal/simulate"
	"seagull/internal/timeseries"
)

// ErrShortHistory is returned when a database has too little telemetry.
var ErrShortHistory = errors.New("autoscale: insufficient history")

// StableStdThreshold interprets Definition 10's "variation does not exceed
// one standard deviation for the last three days": the load's standard
// deviation over the last three days must stay within one standard-deviation
// unit of the stable-fleet noise band (2 CPU points for the SQL fleet).
// Exposed as the default of Classifier.Threshold so other fleets can plug in
// their own band (Section 2.4's parameter updates).
const StableStdThreshold = 2.0

// Classifier classifies databases per Definition 10.
type Classifier struct {
	// Threshold is the maximal last-three-day standard deviation for a
	// stable database. Zero means StableStdThreshold.
	Threshold float64
}

// IsStable (Definition 10) reports whether the database's load variation
// over the last three days stays within the stability threshold.
func (c Classifier) IsStable(load timeseries.Series) (bool, error) {
	days := load.Days()
	if len(days) < 3 {
		return false, fmt.Errorf("%w: %d days, need 3", ErrShortHistory, len(days))
	}
	thr := c.Threshold
	if thr == 0 {
		thr = StableStdThreshold
	}
	last3 := timeseries.New(days[len(days)-3].Start, load.Interval, nil)
	for _, d := range days[len(days)-3:] {
		last3.Append(d.Values...)
	}
	return last3.Std() <= thr, nil
}

// ClassifySQLFleet returns the number of stable databases and the total —
// the Appendix A.1 statistic (19.36% stable in the paper's sample).
func (c Classifier) ClassifySQLFleet(dbs []*simulate.Database) (stable, total int, err error) {
	for _, db := range dbs {
		ok, cerr := c.IsStable(db.Load)
		if cerr != nil {
			return stable, total, fmt.Errorf("%s: %w", db.ID, cerr)
		}
		total++
		if ok {
			stable++
		}
	}
	return stable, total, nil
}

// ModelEval is one row of Figures 16/17: a model's mean error metrics and
// aggregate runtime over a database population.
type ModelEval struct {
	Model      string
	Databases  int           // databases successfully evaluated
	MeanNRMSE  float64       // Figure 16
	MeanMASE   float64       // Figure 16
	TrainInfer time.Duration // Figure 17: total training + inference
	Evaluation time.Duration // Figure 17: accuracy evaluation time
}

// EvalConfig parameterizes the Appendix A model comparison.
type EvalConfig struct {
	// TrainDays of history per database before the 24h-ahead target day.
	// Default 7 (the paper trains on one week).
	TrainDays int
	// Workers for per-database parallelism; 0 means NumCPU.
	Workers int
	// Seed drives stochastic models.
	Seed int64
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.TrainDays == 0 {
		c.TrainDays = 7
	}
	return c
}

// EvaluateModel trains the named model per database on TrainDays of history,
// predicts the following day (24h ahead), and accumulates NRMSE/MASE against
// the actual day.
func EvaluateModel(name string, dbs []*simulate.Database, cfg EvalConfig) (ModelEval, error) {
	cfg = cfg.withDefaults()
	ev := ModelEval{Model: name}

	type result struct {
		nrmse, mase float64
		ok          bool
	}
	pool := parallel.NewPool(cfg.Workers)
	tiStart := time.Now()
	// Train + infer in parallel per database (the per-database partitioning
	// of Appendix A: "ARIMA runs in parallel per database").
	preds, err := parallel.Map(pool, dbs, func(db *simulate.Database) (timeseries.Series, error) {
		ppd := db.Load.PointsPerDay()
		need := (cfg.TrainDays + 1) * ppd
		if db.Load.Len() < need {
			return timeseries.Series{}, nil
		}
		hist, err := db.Load.Slice(db.Load.Len()-need, db.Load.Len()-ppd)
		if err != nil {
			return timeseries.Series{}, nil
		}
		m, err := forecast.New(name, cfg.Seed)
		if err != nil {
			return timeseries.Series{}, err
		}
		pred, err := forecast.PredictDay(m, hist)
		if err != nil {
			return timeseries.Series{}, nil // skip databases the model can't fit
		}
		return pred, nil
	})
	if err != nil {
		return ev, err
	}
	ev.TrainInfer = time.Since(tiStart)

	evStart := time.Now()
	results := make([]result, len(dbs))
	for i, db := range dbs {
		pred := preds[i]
		if pred.Len() == 0 {
			continue
		}
		ppd := db.Load.PointsPerDay()
		target, err := db.Load.Slice(db.Load.Len()-ppd, db.Load.Len())
		if err != nil {
			continue
		}
		nr, err1 := metrics.NRMSE(target.Values, pred.Values)
		ms, err2 := metrics.MASE(target.Values, pred.Values)
		if err1 != nil || err2 != nil {
			continue
		}
		results[i] = result{nrmse: nr, mase: ms, ok: true}
	}
	ev.Evaluation = time.Since(evStart)

	var sumN, sumM float64
	for _, r := range results {
		if !r.ok {
			continue
		}
		ev.Databases++
		sumN += r.nrmse
		sumM += r.mase
	}
	if ev.Databases == 0 {
		return ev, fmt.Errorf("autoscale: model %s evaluated no databases", name)
	}
	ev.MeanNRMSE = sumN / float64(ev.Databases)
	ev.MeanMASE = sumM / float64(ev.Databases)
	return ev, nil
}

// CompareModels runs EvaluateModel for each named model — the Figure 16/17
// comparison (persistent forecast vs neural network vs ARIMA).
func CompareModels(names []string, dbs []*simulate.Database, cfg EvalConfig) ([]ModelEval, error) {
	out := make([]ModelEval, 0, len(names))
	for _, name := range names {
		ev, err := EvaluateModel(name, dbs, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// Action is a preemptive auto-scale recommendation.
type Action string

// Recommendations derived from the 24h-ahead forecast.
const (
	ActionScaleUp   Action = "scale-up"
	ActionScaleDown Action = "scale-down"
	ActionHold      Action = "hold"
)

// Recommend derives the preemptive scaling action from a predicted day of
// load: scale up when the predicted 95th percentile exceeds upPct, scale
// down when the predicted peak stays under downPct — the resource-saving
// opportunity Figure 13(b) quantifies (96.3% of servers never reach
// capacity).
func Recommend(predicted timeseries.Series, upPct, downPct float64) (Action, error) {
	p95, err := predicted.Quantile(0.95)
	if err != nil {
		return ActionHold, err
	}
	peak, _ := predicted.Max()
	switch {
	case p95 >= upPct:
		return ActionScaleUp, nil
	case peak < downPct:
		return ActionScaleDown, nil
	default:
		return ActionHold, nil
	}
}
