package forecast

import (
	"fmt"
	"math"
	"time"

	"seagull/internal/linalg"
	"seagull/internal/timeseries"
)

// ARIMAConfig configures the seasonal ARIMA forecaster. Like the pmdarima
// auto-ARIMA the paper evaluated, it "searches the optimal values of six
// parameters per server" — (p, d, q) and the seasonal (P, D, Q) — fitting
// each candidate by conditional-sum-of-squares and selecting by AIC. This
// search is what makes ARIMA the most expensive model of the zoo, which is
// exactly the finding that led the paper to exclude it (Section 2.1, 5.3.3).
type ARIMAConfig struct {
	// MaxP/MaxQ bound the non-seasonal AR and MA orders. Default 3.
	MaxP, MaxQ int
	// MaxD bounds the non-seasonal differencing order. Default 1.
	MaxD int
	// MaxSP/MaxSQ bound the seasonal AR and MA orders. Default 1.
	MaxSP, MaxSQ int
	// MaxSD bounds the seasonal differencing order. Default 1.
	MaxSD int
	// Granularity is the internal sampling interval. Default 15 minutes; the
	// season length is one day at this granularity.
	Granularity time.Duration
	// TrainDays limits how much trailing history is used. Default 7.
	TrainDays int
	// SearchBudget is the maximum number of CSS objective evaluations per
	// candidate order during the pattern-search refinement. Default 400.
	SearchBudget int
}

func (c ARIMAConfig) withDefaults() ARIMAConfig {
	if c.MaxP == 0 {
		c.MaxP = 3
	}
	if c.MaxQ == 0 {
		c.MaxQ = 3
	}
	if c.MaxD == 0 {
		c.MaxD = 1
	}
	if c.MaxSP == 0 {
		c.MaxSP = 1
	}
	if c.MaxSQ == 0 {
		c.MaxSQ = 1
	}
	if c.MaxSD == 0 {
		c.MaxSD = 1
	}
	if c.Granularity == 0 {
		c.Granularity = 15 * time.Minute
	}
	if c.TrainDays == 0 {
		c.TrainDays = 7
	}
	if c.SearchBudget == 0 {
		c.SearchBudget = 400
	}
	return c
}

// arimaOrder is one candidate (p,d,q)(P,D,Q)_s specification.
type arimaOrder struct {
	p, d, q, sp, sd, sq int
}

func (o arimaOrder) String() string {
	return fmt.Sprintf("(%d,%d,%d)(%d,%d,%d)", o.p, o.d, o.q, o.sp, o.sd, o.sq)
}

// numCoeffs returns the coefficient count including the intercept.
func (o arimaOrder) numCoeffs() int { return 1 + o.p + o.sp + o.q + o.sq }

// ARIMA is the seasonal ARIMA(p,d,q)(P,D,Q)_s forecaster with grid-searched
// orders. Seasonal terms enter additively (lags s·i), an established
// approximation of the multiplicative Box-Jenkins form.
type ARIMA struct {
	cfg ARIMAConfig

	trained      bool
	order        arimaOrder
	coeffs       []float64 // intercept, AR(p), SAR(P), MA(q), SMA(Q)
	season       int
	w            []float64 // differenced training series
	resid        []float64 // in-sample residuals aligned with w
	xTail        []float64 // trailing raw values (for seasonal undiff)
	zTail        []float64 // trailing seasonally differenced values
	factor       int
	fineInterval time.Duration
	end          time.Time
	aic          float64
}

// NewARIMA returns a seasonal ARIMA forecaster with cfg (zero fields take
// defaults).
func NewARIMA(cfg ARIMAConfig) *ARIMA { return &ARIMA{cfg: cfg.withDefaults()} }

// Name implements Model.
func (a *ARIMA) Name() string { return NameARIMA }

// Order returns the selected specification after training.
func (a *ARIMA) Order() string { return a.order.String() }

// AIC returns the selected model's Akaike information criterion.
func (a *ARIMA) AIC() float64 { return a.aic }

// Train implements Model: grid search over the six order parameters, each
// candidate estimated by Hannan–Rissanen regression and refined by pattern
// search on the conditional sum of squares; the best AIC wins.
func (a *ARIMA) Train(history timeseries.Series) error {
	h, err := prepare(history, 3)
	if err != nil {
		return err
	}
	ppd := h.PointsPerDay()
	if h.NumDays() > a.cfg.TrainDays {
		h, err = h.Slice(h.Len()-a.cfg.TrainDays*ppd, h.Len())
		if err != nil {
			return err
		}
	}
	coarse, factor, err := resampleTo(h, a.cfg.Granularity)
	if err != nil {
		return err
	}
	coarse = coarse.FillGaps()
	x := coarse.Values
	season := coarse.PointsPerDay()

	bestAIC := math.Inf(1)
	var best arimaOrder
	var bestCoeffs, bestW, bestResid []float64
	for p := 0; p <= a.cfg.MaxP; p++ {
		for d := 0; d <= a.cfg.MaxD; d++ {
			for q := 0; q <= a.cfg.MaxQ; q++ {
				for sp := 0; sp <= a.cfg.MaxSP; sp++ {
					for sd := 0; sd <= a.cfg.MaxSD; sd++ {
						for sq := 0; sq <= a.cfg.MaxSQ; sq++ {
							o := arimaOrder{p, d, q, sp, sd, sq}
							if o.numCoeffs() == 1 && d == 0 && sd == 0 {
								continue // pure-intercept model carries no signal
							}
							w := differenceAll(x, d, sd, season)
							coeffs, resid, css, ok := a.fit(o, w, season)
							if !ok {
								continue
							}
							nEff := float64(len(resid))
							if nEff < 8 {
								continue
							}
							aic := nEff*math.Log(css/nEff+1e-12) + 2*float64(o.numCoeffs())
							if aic < bestAIC {
								bestAIC, best = aic, o
								bestCoeffs = coeffs
								bestW = w
								bestResid = resid
							}
						}
					}
				}
			}
		}
	}
	if math.IsInf(bestAIC, 1) {
		return fmt.Errorf("%w: no ARIMA candidate could be fitted", ErrNeedHistory)
	}

	a.order = best
	a.coeffs = bestCoeffs
	a.w = bestW
	a.resid = bestResid
	a.season = season
	a.aic = bestAIC
	// Tails for undifferencing.
	z := differenceAll(x, 0, best.sd, season)
	a.zTail = append([]float64(nil), z[maxInt(len(z)-best.d, 0):]...)
	a.xTail = append([]float64(nil), x[maxInt(len(x)-best.sd*season, 0):]...)
	a.factor = factor
	a.fineInterval = h.Interval
	a.end = h.End()
	a.trained = true
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// differenceAll applies d ordinary and sd seasonal differences.
func differenceAll(x []float64, d, sd, season int) []float64 {
	w := append([]float64(nil), x...)
	for k := 0; k < sd; k++ {
		w = difference(w, season)
	}
	for k := 0; k < d; k++ {
		w = difference(w, 1)
	}
	return w
}

func difference(x []float64, lag int) []float64 {
	if len(x) <= lag {
		return nil
	}
	out := make([]float64, len(x)-lag)
	for i := range out {
		out[i] = x[i+lag] - x[i]
	}
	return out
}

// fit estimates one candidate: Hannan–Rissanen initialization followed by a
// Hooke–Jeeves pattern search minimizing the conditional sum of squares.
func (a *ARIMA) fit(o arimaOrder, w []float64, season int) (coeffs, resid []float64, css float64, ok bool) {
	t0 := maxInt(maxInt(o.p, o.q), maxInt(o.sp, o.sq)*season)
	if len(w) < t0+16 {
		return nil, nil, 0, false
	}

	// Hannan–Rissanen step 1: long AR for preliminary innovations.
	initResid := longARResiduals(w, minInt(24, len(w)/4), season)

	// Step 2: regress w_t on its own lags and lagged innovations.
	k := o.numCoeffs()
	start := maxInt(t0, minInt(24, len(w)/4)+season)
	if start >= len(w)-8 {
		start = t0
	}
	rows := make([][]float64, 0, len(w)-start)
	ys := make([]float64, 0, len(w)-start)
	for t := start; t < len(w); t++ {
		row := make([]float64, k)
		fillLagRow(row, o, w, initResid, t, season)
		rows = append(rows, row)
		ys = append(ys, w[t])
	}
	design, err := linalg.FromRows(rows)
	if err != nil {
		return nil, nil, 0, false
	}
	beta, err := linalg.SolveRidge(design, ys, 1e-6)
	if err != nil {
		return nil, nil, 0, false
	}

	// CSS refinement: pattern search around the HR estimate.
	beta = a.patternSearch(o, w, season, beta)
	resid, css = cssResiduals(o, w, season, beta)
	if math.IsNaN(css) || math.IsInf(css, 0) {
		return nil, nil, 0, false
	}
	return beta, resid, css, true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// longARResiduals fits a high-order AR (plus the seasonal lag) by OLS and
// returns its residuals aligned with w (zeros before the fit window).
func longARResiduals(w []float64, m, season int) []float64 {
	resid := make([]float64, len(w))
	lags := make([]int, 0, m+1)
	for i := 1; i <= m; i++ {
		lags = append(lags, i)
	}
	if season < len(w)/2 {
		lags = append(lags, season)
	}
	start := lags[len(lags)-1]
	if start >= len(w)-4 {
		return resid
	}
	rows := make([][]float64, 0, len(w)-start)
	ys := make([]float64, 0, len(w)-start)
	for t := start; t < len(w); t++ {
		row := make([]float64, len(lags)+1)
		row[0] = 1
		for j, lag := range lags {
			row[j+1] = w[t-lag]
		}
		rows = append(rows, row)
		ys = append(ys, w[t])
	}
	design, err := linalg.FromRows(rows)
	if err != nil {
		return resid
	}
	beta, err := linalg.SolveRidge(design, ys, 1e-6)
	if err != nil {
		return resid
	}
	for t := start; t < len(w); t++ {
		pred := beta[0]
		for j, lag := range lags {
			pred += beta[j+1] * w[t-lag]
		}
		resid[t] = w[t] - pred
	}
	return resid
}

// fillLagRow writes the regression features for time t: intercept, AR lags,
// seasonal AR lags, MA lags, seasonal MA lags.
func fillLagRow(row []float64, o arimaOrder, w, resid []float64, t, season int) {
	row[0] = 1
	k := 1
	for i := 1; i <= o.p; i++ {
		row[k] = w[t-i]
		k++
	}
	for i := 1; i <= o.sp; i++ {
		row[k] = w[t-i*season]
		k++
	}
	for j := 1; j <= o.q; j++ {
		row[k] = resid[t-j]
		k++
	}
	for j := 1; j <= o.sq; j++ {
		row[k] = resid[t-j*season]
		k++
	}
}

// cssResiduals filters w through the ARMA recursion with the given
// coefficients, returning residuals (zeros before the burn-in) and the
// conditional sum of squares over the post-burn-in range.
func cssResiduals(o arimaOrder, w []float64, season int, beta []float64) ([]float64, float64) {
	t0 := maxInt(maxInt(o.p, o.q), maxInt(o.sp, o.sq)*season)
	resid := make([]float64, len(w))
	css := 0.0
	for t := t0; t < len(w); t++ {
		pred := beta[0]
		k := 1
		for i := 1; i <= o.p; i++ {
			pred += beta[k] * w[t-i]
			k++
		}
		for i := 1; i <= o.sp; i++ {
			pred += beta[k] * w[t-i*season]
			k++
		}
		for j := 1; j <= o.q; j++ {
			pred += beta[k] * resid[t-j]
			k++
		}
		for j := 1; j <= o.sq; j++ {
			pred += beta[k] * resid[t-j*season]
			k++
		}
		e := w[t] - pred
		resid[t] = e
		css += e * e
	}
	return resid[t0:], css
}

// patternSearch refines beta by Hooke–Jeeves coordinate moves on the CSS
// objective, bounded by the configured evaluation budget. This stands in for
// the iterative maximum-likelihood optimization that dominates auto-ARIMA's
// runtime.
func (a *ARIMA) patternSearch(o arimaOrder, w []float64, season int, beta []float64) []float64 {
	best := append([]float64(nil), beta...)
	_, bestCSS := cssResiduals(o, w, season, best)
	evals := 1
	step := 0.1
	for step > 1e-4 && evals < a.cfg.SearchBudget {
		improved := false
		for j := 0; j < len(best) && evals < a.cfg.SearchBudget; j++ {
			for _, dir := range [2]float64{1, -1} {
				cand := append([]float64(nil), best...)
				cand[j] += dir * step
				_, css := cssResiduals(o, w, season, cand)
				evals++
				if css < bestCSS {
					best, bestCSS = cand, css
					improved = true
					break
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best
}

// Forecast implements Model: iterate the ARMA recursion with future
// innovations at zero, then integrate the differencing back out.
func (a *ARIMA) Forecast(horizon int) (timeseries.Series, error) {
	if !a.trained {
		return timeseries.Series{}, ErrNotTrained
	}
	if horizon <= 0 {
		return timeseries.Series{}, fmt.Errorf("forecast: non-positive horizon %d", horizon)
	}
	coarseH := (horizon + a.factor - 1) / a.factor
	o := a.order
	season := a.season

	// Extended differenced series and residuals.
	wExt := append([]float64(nil), a.w...)
	eExt := make([]float64, len(a.w))
	copy(eExt[len(a.w)-len(a.resid):], a.resid)
	for h := 0; h < coarseH; h++ {
		t := len(wExt)
		pred := a.coeffs[0]
		k := 1
		at := func(arr []float64, idx int) float64 {
			if idx < 0 || idx >= len(arr) {
				return 0
			}
			return arr[idx]
		}
		for i := 1; i <= o.p; i++ {
			pred += a.coeffs[k] * at(wExt, t-i)
			k++
		}
		for i := 1; i <= o.sp; i++ {
			pred += a.coeffs[k] * at(wExt, t-i*season)
			k++
		}
		for j := 1; j <= o.q; j++ {
			pred += a.coeffs[k] * at(eExt, t-j)
			k++
		}
		for j := 1; j <= o.sq; j++ {
			pred += a.coeffs[k] * at(eExt, t-j*season)
			k++
		}
		wExt = append(wExt, pred)
		eExt = append(eExt, 0)
	}
	wf := wExt[len(a.w):]

	// Undo ordinary differencing (d ∈ {0,1} by default but handle general).
	zf := wf
	if o.d > 0 {
		zf = integrate(wf, a.zTail, o.d)
	}
	// Undo seasonal differencing.
	xf := zf
	if o.sd > 0 {
		xf = integrateSeasonal(zf, a.xTail, season, o.sd)
	}
	out := make([]float64, len(xf))
	for i, v := range xf {
		out[i] = math.Min(math.Max(v, 0), 100)
	}
	coarse := timeseries.New(a.end, time.Duration(a.factor)*a.fineInterval, out)
	return expand(coarse, a.factor, a.fineInterval, horizon), nil
}

// integrate undoes d levels of ordinary differencing given the trailing d
// values of the once-less-differenced series.
func integrate(wf, tail []float64, d int) []float64 {
	out := wf
	for k := 0; k < d; k++ {
		prev := 0.0
		if len(tail) > 0 {
			prev = tail[len(tail)-1-k]
		}
		acc := make([]float64, len(out))
		run := prev
		for i, v := range out {
			run += v
			acc[i] = run
		}
		out = acc
	}
	return out
}

// integrateSeasonal undoes sd levels of seasonal differencing given the
// trailing season·sd raw values.
func integrateSeasonal(zf, xTail []float64, season, sd int) []float64 {
	out := zf
	for k := 0; k < sd; k++ {
		acc := make([]float64, len(out))
		for i := range out {
			var prev float64
			if i < season {
				idx := len(xTail) - season + i
				if idx >= 0 && idx < len(xTail) {
					prev = xTail[idx]
				}
			} else {
				prev = acc[i-season]
			}
			acc[i] = out[i] + prev
		}
		out = acc
	}
	return out
}
