package forecast

import (
	"fmt"
	"math"
	"time"

	"seagull/internal/linalg"
	"seagull/internal/parallel"
	"seagull/internal/timeseries"
)

// ARIMAConfig configures the seasonal ARIMA forecaster. Like the pmdarima
// auto-ARIMA the paper evaluated, it "searches the optimal values of six
// parameters per server" — (p, d, q) and the seasonal (P, D, Q) — fitting
// each candidate by conditional-sum-of-squares and selecting by AIC. This
// search is what makes ARIMA the most expensive model of the zoo, which is
// exactly the finding that led the paper to exclude it (Section 2.1, 5.3.3).
type ARIMAConfig struct {
	// MaxP/MaxQ bound the non-seasonal AR and MA orders. Default 3.
	MaxP, MaxQ int
	// MaxD bounds the non-seasonal differencing order. Default 1.
	MaxD int
	// MaxSP/MaxSQ bound the seasonal AR and MA orders. Default 1.
	MaxSP, MaxSQ int
	// MaxSD bounds the seasonal differencing order. Default 1.
	MaxSD int
	// Granularity is the internal sampling interval. Default 15 minutes; the
	// season length is one day at this granularity.
	Granularity time.Duration
	// TrainDays limits how much trailing history is used. Default 7.
	TrainDays int
	// SearchBudget is the maximum number of CSS objective evaluations per
	// candidate order during the pattern-search refinement. Default 400.
	SearchBudget int
	// GridWorkers parallelizes the candidate order grid across a worker pool
	// with per-worker scratch buffers; the selected model is identical to the
	// sequential search. Default 1 (sequential) — the experiments already
	// parallelize across servers, so grid parallelism is opt-in for
	// single-server and interactive use.
	GridWorkers int
}

func (c ARIMAConfig) withDefaults() ARIMAConfig {
	if c.MaxP == 0 {
		c.MaxP = 3
	}
	if c.MaxQ == 0 {
		c.MaxQ = 3
	}
	if c.MaxD == 0 {
		c.MaxD = 1
	}
	if c.MaxSP == 0 {
		c.MaxSP = 1
	}
	if c.MaxSQ == 0 {
		c.MaxSQ = 1
	}
	if c.MaxSD == 0 {
		c.MaxSD = 1
	}
	if c.Granularity == 0 {
		c.Granularity = 15 * time.Minute
	}
	if c.TrainDays == 0 {
		c.TrainDays = 7
	}
	if c.SearchBudget == 0 {
		c.SearchBudget = 400
	}
	if c.GridWorkers <= 0 {
		c.GridWorkers = 1
	}
	return c
}

// arimaOrder is one candidate (p,d,q)(P,D,Q)_s specification.
type arimaOrder struct {
	p, d, q, sp, sd, sq int
}

func (o arimaOrder) String() string {
	return fmt.Sprintf("(%d,%d,%d)(%d,%d,%d)", o.p, o.d, o.q, o.sp, o.sd, o.sq)
}

// numCoeffs returns the coefficient count including the intercept.
func (o arimaOrder) numCoeffs() int { return 1 + o.p + o.sp + o.q + o.sq }

// burnIn returns the number of leading observations the ARMA recursion needs
// before residuals are defined.
func (o arimaOrder) burnIn(season int) int {
	return maxInt(maxInt(o.p, o.q), maxInt(o.sp, o.sq)*season)
}

// ARIMA is the seasonal ARIMA(p,d,q)(P,D,Q)_s forecaster with grid-searched
// orders. Seasonal terms enter additively (lags s·i), an established
// approximation of the multiplicative Box-Jenkins form.
type ARIMA struct {
	cfg ARIMAConfig

	trained      bool
	order        arimaOrder
	coeffs       []float64 // intercept, AR(p), SAR(P), MA(q), SMA(Q)
	season       int
	w            []float64 // differenced training series
	resid        []float64 // in-sample residuals aligned with w
	xTail        []float64 // trailing raw values (for seasonal undiff)
	zTail        []float64 // trailing seasonally differenced values
	factor       int
	fineInterval time.Duration
	end          time.Time
	aic          float64

	// scratch carries the design/residual/solver buffers across candidates
	// within one Train and across Train calls, so a model reused as a
	// per-worker arena fits its whole grid without per-candidate (or
	// per-server) allocations. The parallel grid path still creates one
	// scratch per grid worker.
	scratch fitScratch
}

// NewARIMA returns a seasonal ARIMA forecaster with cfg (zero fields take
// defaults).
func NewARIMA(cfg ARIMAConfig) *ARIMA { return &ARIMA{cfg: cfg.withDefaults()} }

// Name implements Model.
func (a *ARIMA) Name() string { return NameARIMA }

// DeterministicInference implements InferenceDeterministic: forecasting
// iterates the fitted recursion with zero future shocks.
func (a *ARIMA) DeterministicInference() bool { return true }

// Order returns the selected specification after training.
func (a *ARIMA) Order() string { return a.order.String() }

// AIC returns the selected model's Akaike information criterion.
func (a *ARIMA) AIC() float64 { return a.aic }

// fitScratch holds the per-worker buffers the candidate fits reuse, so the
// grid search does no per-candidate design-matrix or residual allocations.
// The zero value is ready to use; buffers grow on demand.
type fitScratch struct {
	design    linalg.Matrix
	designBuf []float64
	ys        []float64
	ridge     linalg.RidgeScratch
	resid     []float64 // ARMA-recursion residual buffer
	best      []float64 // pattern-search incumbent
	cand      []float64 // pattern-search probe
}

// designFor returns a rows×cols matrix backed by the scratch buffer. Every
// element is overwritten by the caller, so no zeroing is needed.
func (s *fitScratch) designFor(rows, cols int) *linalg.Matrix {
	if cap(s.designBuf) < rows*cols {
		s.designBuf = make([]float64, rows*cols)
	}
	s.design = linalg.Matrix{Rows: rows, Cols: cols, Data: s.designBuf[:rows*cols]}
	return &s.design
}

// residFor returns the residual buffer sized for an n-point series.
func (s *fitScratch) residFor(n int) []float64 {
	if cap(s.resid) < n {
		s.resid = make([]float64, n)
	}
	return s.resid[:n]
}

// ysFor returns the regression-target buffer for n rows.
func (s *fitScratch) ysFor(n int) []float64 {
	if cap(s.ys) < n {
		s.ys = make([]float64, n)
	}
	return s.ys[:n]
}

// searchVecs returns the two k-coefficient pattern-search buffers.
func (s *fitScratch) searchVecs(k int) (best, cand []float64) {
	if cap(s.best) < k {
		s.best = make([]float64, k)
	}
	if cap(s.cand) < k {
		s.cand = make([]float64, k)
	}
	return s.best[:k], s.cand[:k]
}

// Train implements Model: grid search over the six order parameters, each
// candidate estimated by Hannan–Rissanen regression and refined by pattern
// search on the conditional sum of squares; the best AIC wins.
//
// The differenced series and the Hannan–Rissanen long-AR innovations depend
// only on the differencing pair (d, sd), so they are computed once per pair
// and shared by the full (p,q,P,Q) sub-grid instead of being recomputed for
// every one of the up-to-512 candidates. Candidate fits reuse per-worker
// scratch buffers and may run in parallel (GridWorkers); selection iterates
// the canonical candidate order with strict AIC improvement, so the chosen
// model is bit-identical to the sequential search.
func (a *ARIMA) Train(history timeseries.Series) error {
	h, err := prepare(history, 3)
	if err != nil {
		return err
	}
	ppd := h.PointsPerDay()
	if h.NumDays() > a.cfg.TrainDays {
		h, err = h.Slice(h.Len()-a.cfg.TrainDays*ppd, h.Len())
		if err != nil {
			return err
		}
	}
	coarse, factor, err := resampleTo(h, a.cfg.Granularity)
	if err != nil {
		return err
	}
	coarse = coarse.FillGaps()
	x := coarse.Values
	season := coarse.PointsPerDay()

	// Hoisted per-(d,sd) state.
	nDS := (a.cfg.MaxD + 1) * (a.cfg.MaxSD + 1)
	ws := make([][]float64, nDS)
	initResids := make([][]float64, nDS)
	hoist := &a.scratch
	for d := 0; d <= a.cfg.MaxD; d++ {
		for sd := 0; sd <= a.cfg.MaxSD; sd++ {
			idx := d*(a.cfg.MaxSD+1) + sd
			w := differenceAll(x, d, sd, season)
			ws[idx] = w
			initResids[idx] = longARResiduals(w, minInt(24, len(w)/4), season, hoist)
		}
	}

	// Enumerate candidates in the canonical nested-loop order; tie-breaking by
	// strict AIC improvement then matches the sequential search exactly.
	type candidate struct {
		o  arimaOrder
		ds int
	}
	gridCap := (a.cfg.MaxP + 1) * (a.cfg.MaxD + 1) * (a.cfg.MaxQ + 1) *
		(a.cfg.MaxSP + 1) * (a.cfg.MaxSD + 1) * (a.cfg.MaxSQ + 1)
	cands := make([]candidate, 0, gridCap)
	for p := 0; p <= a.cfg.MaxP; p++ {
		for d := 0; d <= a.cfg.MaxD; d++ {
			for q := 0; q <= a.cfg.MaxQ; q++ {
				for sp := 0; sp <= a.cfg.MaxSP; sp++ {
					for sd := 0; sd <= a.cfg.MaxSD; sd++ {
						for sq := 0; sq <= a.cfg.MaxSQ; sq++ {
							o := arimaOrder{p, d, q, sp, sd, sq}
							if o.numCoeffs() == 1 && d == 0 && sd == 0 {
								continue // pure-intercept model carries no signal
							}
							cands = append(cands, candidate{o, d*(a.cfg.MaxSD+1) + sd})
						}
					}
				}
			}
		}
	}

	type result struct {
		ok     bool
		aic    float64
		coeffs []float64
	}
	results := make([]result, len(cands))
	fitOne := func(i int, s *fitScratch) error {
		c := cands[i]
		coeffs, aic, ok := a.fit(c.o, ws[c.ds], initResids[c.ds], season, s)
		if ok {
			results[i] = result{ok: true, aic: aic, coeffs: coeffs}
		}
		return nil
	}
	if a.cfg.GridWorkers > 1 && len(cands) > 1 {
		pool := parallel.NewPool(a.cfg.GridWorkers)
		if err := parallel.ForEachScratch(pool, len(cands),
			func() *fitScratch { return new(fitScratch) }, fitOne); err != nil {
			return err
		}
	} else {
		for i := range cands {
			if err := fitOne(i, hoist); err != nil {
				return err
			}
		}
	}

	bestAIC := math.Inf(1)
	bestIdx := -1
	for i, r := range results {
		if r.ok && r.aic < bestAIC {
			bestAIC, bestIdx = r.aic, i
		}
	}
	if bestIdx < 0 {
		return fmt.Errorf("%w: no ARIMA candidate could be fitted", ErrNeedHistory)
	}
	best := cands[bestIdx].o
	bestW := ws[cands[bestIdx].ds]
	residFull := make([]float64, len(bestW))
	cssInto(best, bestW, season, results[bestIdx].coeffs, residFull)

	a.order = best
	a.coeffs = results[bestIdx].coeffs
	a.w = bestW
	a.resid = residFull[best.burnIn(season):]
	a.season = season
	a.aic = bestAIC
	// Tails for undifferencing.
	z := differenceAll(x, 0, best.sd, season)
	a.zTail = append([]float64(nil), z[maxInt(len(z)-best.d, 0):]...)
	a.xTail = append([]float64(nil), x[maxInt(len(x)-best.sd*season, 0):]...)
	a.factor = factor
	a.fineInterval = h.Interval
	a.end = h.End()
	a.trained = true
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// differenceAll applies d ordinary and sd seasonal differences.
func differenceAll(x []float64, d, sd, season int) []float64 {
	w := append([]float64(nil), x...)
	for k := 0; k < sd; k++ {
		w = difference(w, season)
	}
	for k := 0; k < d; k++ {
		w = difference(w, 1)
	}
	return w
}

func difference(x []float64, lag int) []float64 {
	if len(x) <= lag {
		return nil
	}
	out := make([]float64, len(x)-lag)
	for i := range out {
		out[i] = x[i+lag] - x[i]
	}
	return out
}

// fit estimates one candidate: Hannan–Rissanen initialization followed by a
// Hooke–Jeeves pattern search minimizing the conditional sum of squares.
// initResid is the hoisted long-AR innovation series for this candidate's
// differencing pair. All intermediate state lives in s; the returned
// coefficient slice is freshly allocated (it survives candidate selection).
func (a *ARIMA) fit(o arimaOrder, w, initResid []float64, season int, s *fitScratch) (coeffs []float64, aic float64, ok bool) {
	t0 := o.burnIn(season)
	if len(w) < t0+16 {
		return nil, 0, false
	}

	// Hannan–Rissanen step 2: regress w_t on its own lags and the hoisted
	// lagged innovations, filling one flat design buffer row by row.
	k := o.numCoeffs()
	start := maxInt(t0, minInt(24, len(w)/4)+season)
	if start >= len(w)-8 {
		start = t0
	}
	rows := len(w) - start
	design := s.designFor(rows, k)
	ys := s.ysFor(rows)
	for t := start; t < len(w); t++ {
		r := t - start
		fillLagRow(design.Data[r*k:(r+1)*k], o, w, initResid, t, season)
		ys[r] = w[t]
	}
	beta, err := linalg.SolveRidgeInto(design, ys, 1e-6, &s.ridge)
	if err != nil {
		return nil, 0, false
	}

	// CSS refinement: pattern search around the HR estimate.
	beta = a.patternSearch(o, w, season, beta, s)
	resid := s.residFor(len(w))
	css := cssInto(o, w, season, beta, resid)
	if math.IsNaN(css) || math.IsInf(css, 0) {
		return nil, 0, false
	}
	nEff := float64(len(w) - t0) // ≥ 16 by the entry check
	aic = nEff*math.Log(css/nEff+1e-12) + 2*float64(k)
	return append([]float64(nil), beta...), aic, true
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// longARResiduals fits a high-order AR (plus the seasonal lag) by OLS and
// returns its residuals aligned with w (zeros before the fit window). The
// result depends only on w and season, so Train computes it once per
// differencing pair; s provides the design and solver buffers.
func longARResiduals(w []float64, m, season int, s *fitScratch) []float64 {
	resid := make([]float64, len(w))
	lags := make([]int, 0, m+1)
	for i := 1; i <= m; i++ {
		lags = append(lags, i)
	}
	if season < len(w)/2 {
		lags = append(lags, season)
	}
	start := lags[len(lags)-1]
	if start >= len(w)-4 {
		return resid
	}
	rows := len(w) - start
	cols := len(lags) + 1
	design := s.designFor(rows, cols)
	ys := s.ysFor(rows)
	for t := start; t < len(w); t++ {
		row := design.Data[(t-start)*cols : (t-start+1)*cols]
		row[0] = 1
		for j, lag := range lags {
			row[j+1] = w[t-lag]
		}
		ys[t-start] = w[t]
	}
	beta, err := linalg.SolveRidgeInto(design, ys, 1e-6, &s.ridge)
	if err != nil {
		return resid
	}
	for t := start; t < len(w); t++ {
		pred := beta[0]
		for j, lag := range lags {
			pred += beta[j+1] * w[t-lag]
		}
		resid[t] = w[t] - pred
	}
	return resid
}

// fillLagRow writes the regression features for time t: intercept, AR lags,
// seasonal AR lags, MA lags, seasonal MA lags.
func fillLagRow(row []float64, o arimaOrder, w, resid []float64, t, season int) {
	row[0] = 1
	k := 1
	for i := 1; i <= o.p; i++ {
		row[k] = w[t-i]
		k++
	}
	for i := 1; i <= o.sp; i++ {
		row[k] = w[t-i*season]
		k++
	}
	for j := 1; j <= o.q; j++ {
		row[k] = resid[t-j]
		k++
	}
	for j := 1; j <= o.sq; j++ {
		row[k] = resid[t-j*season]
		k++
	}
}

// cssInto filters w through the ARMA recursion with the given coefficients,
// writing residuals into resid (len(w); the burn-in prefix is zeroed — the
// recursion reads it) and returning the conditional sum of squares over the
// post-burn-in range. Entries at or past the burn-in are always written
// before they are read, so resid may be reused across calls unzeroed.
func cssInto(o arimaOrder, w []float64, season int, beta, resid []float64) float64 {
	return cssIntoBounded(o, w, season, beta, resid, math.Inf(1))
}

// cssIntoBounded is cssInto with an early exit: the running sum is monotone,
// so once it exceeds limit the candidate cannot beat the incumbent and the
// scan stops (the partial residual tail is stale, but every cssInto variant
// writes resid[t] before reading it within a call, so reuse stays safe).
// The returned value is ≥ limit exactly when the scan exited early, which is
// all the pattern search's strict-improvement comparison needs — accepted
// probes always ran to completion, keeping the search trajectory identical
// to the unbounded scan.
func cssIntoBounded(o arimaOrder, w []float64, season int, beta, resid []float64, limit float64) float64 {
	if o.p <= 1 && o.q <= 1 && o.sp <= 1 && o.sq <= 1 {
		return cssSmallOrder(o, w, season, beta, resid, limit)
	}
	t0 := o.burnIn(season)
	for i := 0; i < t0; i++ {
		resid[i] = 0
	}
	css := 0.0
	for t := t0; t < len(w); t++ {
		if css > limit {
			return css
		}
		pred := beta[0]
		k := 1
		for i := 1; i <= o.p; i++ {
			pred += beta[k] * w[t-i]
			k++
		}
		for i := 1; i <= o.sp; i++ {
			pred += beta[k] * w[t-i*season]
			k++
		}
		for j := 1; j <= o.q; j++ {
			pred += beta[k] * resid[t-j]
			k++
		}
		for j := 1; j <= o.sq; j++ {
			pred += beta[k] * resid[t-j*season]
			k++
		}
		e := w[t] - pred
		resid[t] = e
		css += e * e
	}
	return css
}

// cssSmallOrder is cssIntoBounded specialized for orders with every
// component ≤ 1 — the entire default grid (MaxP/MaxQ ≤ 3 only exceed this
// for the non-seasonal terms of a minority of candidates, and the fast
// experiment profile caps at 1 everywhere). Coefficients are hoisted into
// registers and the per-lag loops disappear; the term order matches the
// general recursion exactly, so the sums are bit-identical.
func cssSmallOrder(o arimaOrder, w []float64, season int, beta, resid []float64, limit float64) float64 {
	t0 := o.burnIn(season)
	for i := 0; i < t0; i++ {
		resid[i] = 0
	}
	b0 := beta[0]
	var bAR, bSAR, bMA, bSMA float64
	k := 1
	if o.p == 1 {
		bAR = beta[k]
		k++
	}
	if o.sp == 1 {
		bSAR = beta[k]
		k++
	}
	if o.q == 1 {
		bMA = beta[k]
		k++
	}
	if o.sq == 1 {
		bSMA = beta[k]
	}
	hasP, hasSP := o.p == 1, o.sp == 1
	hasQ, hasSQ := o.q == 1, o.sq == 1
	css := 0.0
	for t := t0; t < len(w); t++ {
		if css > limit {
			return css
		}
		pred := b0
		if hasP {
			pred += bAR * w[t-1]
		}
		if hasSP {
			pred += bSAR * w[t-season]
		}
		if hasQ {
			pred += bMA * resid[t-1]
		}
		if hasSQ {
			pred += bSMA * resid[t-season]
		}
		e := w[t] - pred
		resid[t] = e
		css += e * e
	}
	return css
}

// patternSearch refines beta by Hooke–Jeeves coordinate moves on the CSS
// objective, bounded by the configured evaluation budget. This stands in for
// the iterative maximum-likelihood optimization that dominates auto-ARIMA's
// runtime. The incumbent and probe vectors are scratch-backed and swapped on
// improvement instead of reallocated per evaluation; the returned slice
// aliases s and is only valid until the scratch is reused.
func (a *ARIMA) patternSearch(o arimaOrder, w []float64, season int, beta []float64, s *fitScratch) []float64 {
	best, cand := s.searchVecs(len(beta))
	copy(best, beta)
	resid := s.residFor(len(w))
	bestCSS := cssInto(o, w, season, best, resid)
	evals := 1
	step := 0.1
	for step > 1e-4 && evals < a.cfg.SearchBudget {
		improved := false
		for j := 0; j < len(best) && evals < a.cfg.SearchBudget; j++ {
			for _, dir := range [2]float64{1, -1} {
				copy(cand, best)
				cand[j] += dir * step
				css := cssIntoBounded(o, w, season, cand, resid, bestCSS)
				evals++
				if css < bestCSS {
					best, cand = cand, best
					bestCSS = css
					improved = true
					break
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best
}

// Forecast implements Model: iterate the ARMA recursion with future
// innovations at zero, then integrate the differencing back out.
func (a *ARIMA) Forecast(horizon int) (timeseries.Series, error) {
	if !a.trained {
		return timeseries.Series{}, ErrNotTrained
	}
	if horizon <= 0 {
		return timeseries.Series{}, fmt.Errorf("forecast: non-positive horizon %d", horizon)
	}
	coarseH := (horizon + a.factor - 1) / a.factor
	o := a.order
	season := a.season

	// Extended differenced series and residuals.
	wExt := make([]float64, len(a.w), len(a.w)+coarseH)
	copy(wExt, a.w)
	eExt := make([]float64, len(a.w), len(a.w)+coarseH)
	copy(eExt[len(a.w)-len(a.resid):], a.resid)
	for h := 0; h < coarseH; h++ {
		t := len(wExt)
		pred := a.coeffs[0]
		k := 1
		at := func(arr []float64, idx int) float64 {
			if idx < 0 || idx >= len(arr) {
				return 0
			}
			return arr[idx]
		}
		for i := 1; i <= o.p; i++ {
			pred += a.coeffs[k] * at(wExt, t-i)
			k++
		}
		for i := 1; i <= o.sp; i++ {
			pred += a.coeffs[k] * at(wExt, t-i*season)
			k++
		}
		for j := 1; j <= o.q; j++ {
			pred += a.coeffs[k] * at(eExt, t-j)
			k++
		}
		for j := 1; j <= o.sq; j++ {
			pred += a.coeffs[k] * at(eExt, t-j*season)
			k++
		}
		wExt = append(wExt, pred)
		eExt = append(eExt, 0)
	}
	wf := wExt[len(a.w):]

	// Undo ordinary differencing (d ∈ {0,1} by default but handle general).
	zf := wf
	if o.d > 0 {
		zf = integrate(wf, a.zTail, o.d)
	}
	// Undo seasonal differencing.
	xf := zf
	if o.sd > 0 {
		xf = integrateSeasonal(zf, a.xTail, season, o.sd)
	}
	out := make([]float64, len(xf))
	for i, v := range xf {
		out[i] = math.Min(math.Max(v, 0), 100)
	}
	coarse := timeseries.New(a.end, time.Duration(a.factor)*a.fineInterval, out)
	return expand(coarse, a.factor, a.fineInterval, horizon), nil
}

// integrate undoes d levels of ordinary differencing given the trailing d
// values of the once-less-differenced series.
func integrate(wf, tail []float64, d int) []float64 {
	out := wf
	for k := 0; k < d; k++ {
		prev := 0.0
		if len(tail) > 0 {
			prev = tail[len(tail)-1-k]
		}
		acc := make([]float64, len(out))
		run := prev
		for i, v := range out {
			run += v
			acc[i] = run
		}
		out = acc
	}
	return out
}

// integrateSeasonal undoes sd levels of seasonal differencing given the
// trailing season·sd raw values.
func integrateSeasonal(zf, xTail []float64, season, sd int) []float64 {
	out := zf
	for k := 0; k < sd; k++ {
		acc := make([]float64, len(out))
		for i := range out {
			var prev float64
			if i < season {
				idx := len(xTail) - season + i
				if idx >= 0 && idx < len(xTail) {
					prev = xTail[idx]
				}
			} else {
				prev = acc[i-season]
			}
			acc[i] = out[i] + prev
		}
		out = acc
	}
	return out
}
