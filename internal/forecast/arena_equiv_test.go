package forecast

import "testing"

// The worker-arena contract for the remaining models: retraining a used
// instance must produce exactly the output of a fresh instance, so
// evaluateFleet can carry one model per worker across servers.

func TestAdditiveRetrainMatchesFresh(t *testing.T) {
	cfg := AdditiveConfig{Seed: 9, Iterations: 150, Samples: 100}
	reused := NewAdditive(cfg)
	if _, err := PredictDay(reused, mkDays(10, dailyShape(51))); err != nil {
		t.Fatal(err)
	}
	hist := mkDays(7, dailyShape(52))
	predReused, err := PredictDay(reused, hist)
	if err != nil {
		t.Fatal(err)
	}
	predFresh, err := PredictDay(NewAdditive(cfg), hist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range predFresh.Values {
		if predReused.Values[i] != predFresh.Values[i] {
			t.Fatalf("retrained additive diverges from fresh at %d: %v != %v",
				i, predReused.Values[i], predFresh.Values[i])
		}
	}
}

func TestARIMARetrainMatchesFresh(t *testing.T) {
	cfg := ARIMAConfig{MaxP: 1, MaxQ: 1, SearchBudget: 60}
	reused := NewARIMA(cfg)
	if _, err := PredictDay(reused, mkDays(7, dailyShape(53))); err != nil {
		t.Fatal(err)
	}
	hist := mkDays(7, dailyShape(54))
	predReused, err := PredictDay(reused, hist)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewARIMA(cfg)
	predFresh, err := PredictDay(fresh, hist)
	if err != nil {
		t.Fatal(err)
	}
	if reused.Order() != fresh.Order() {
		t.Fatalf("retrained ARIMA selected %s, fresh selected %s", reused.Order(), fresh.Order())
	}
	for i := range predFresh.Values {
		if predReused.Values[i] != predFresh.Values[i] {
			t.Fatalf("retrained ARIMA diverges from fresh at %d", i)
		}
	}
}
