package forecast

import (
	"math"
	"testing"
)

// The additive trainer now iterates on the precomputed Gram matrix
// (grad = (AᵀAβ − Aᵀy)/n) instead of scanning the n×p design twice per
// iteration. The two forms are algebraically identical; this test keeps the
// seed implementation as a reference and bounds the floating-point drift.

// refAdditiveGD is the seed gradient-descent loop: two passes over the
// design per iteration.
func refAdditiveGD(design, y []float64, n, p, iterations int, lr, ridge float64) []float64 {
	beta := make([]float64, p)
	grad := make([]float64, p)
	pred := make([]float64, n)
	for it := 0; it < iterations; it++ {
		for t := 0; t < n; t++ {
			row := design[t*p : (t+1)*p]
			s := 0.0
			for j, b := range beta {
				s += b * row[j]
			}
			pred[t] = s
		}
		for j := range grad {
			grad[j] = 0
		}
		for t := 0; t < n; t++ {
			e := pred[t] - y[t]
			row := design[t*p : (t+1)*p]
			for j := range grad {
				grad[j] += e * row[j]
			}
		}
		inv := 1 / float64(n)
		for j := range beta {
			g := grad[j] * inv
			if j > 0 {
				g += ridge * beta[j] * inv
			}
			beta[j] -= lr * g
		}
	}
	return beta
}

func TestAdditiveGramTrainerMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		hist := equivSeries(seed, 14)
		cfg := AdditiveConfig{Seed: seed, Iterations: 300, Samples: 50}
		m := NewAdditive(cfg)
		if err := m.Train(hist); err != nil {
			t.Fatal(err)
		}

		// Rebuild the exact design Train fitted (the trained model exposes the
		// preamble products: nTrain, ppd, cpTimes, featureDim).
		p := m.featureDim()
		n := m.nTrain
		design := make([]float64, n*p)
		for tt := 0; tt < n; tt++ {
			m.features(design[tt*p:(tt+1)*p], tt)
		}
		h, err := prepare(hist, 2)
		if err != nil {
			t.Fatal(err)
		}
		if h.NumDays() > m.cfg.TrainDays {
			h, err = h.Slice(h.Len()-m.cfg.TrainDays*h.PointsPerDay(), h.Len())
			if err != nil {
				t.Fatal(err)
			}
		}
		if h.Len() != n {
			t.Fatalf("preamble mismatch: %d points, trained on %d", h.Len(), n)
		}
		y := make([]float64, n)
		for i, v := range h.Values {
			y[i] = v / 100
		}
		want := refAdditiveGD(design, y, n, p, m.cfg.Iterations, m.cfg.LearningRate, m.cfg.Ridge)

		if len(m.beta) != len(want) {
			t.Fatalf("beta length %d != %d", len(m.beta), len(want))
		}
		for j := range want {
			if math.Abs(m.beta[j]-want[j]) > 1e-6 {
				t.Fatalf("seed %d: beta[%d] = %v, reference %v (Δ=%g)",
					seed, j, m.beta[j], want[j], m.beta[j]-want[j])
			}
		}
	}
}
