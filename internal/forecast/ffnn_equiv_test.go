package forecast

import (
	"math"
	"math/rand"
	"testing"

	"seagull/internal/metrics"
	"seagull/internal/timeseries"
)

// Equivalence tests for the FFNN trainer rework: the default BatchSize=1
// path must reproduce the historical per-sample SGD loop bit for bit, a
// retrained (worker-arena) model must match a fresh one exactly, and the
// minibatched path must match per-sample training on forecast accuracy.

// refFFNNTrain is a frozen copy of the historical per-sample training loop
// (pre-minibatch, pre-buffer-reuse), kept as the bit-identity reference. It
// returns the trained weights for history at the given config.
func refFFNNTrain(t *testing.T, cfg FFNNConfig, history timeseries.Series) (w1, b1, w2, b2, context []float64) {
	t.Helper()
	cfg = cfg.withDefaults()
	h, err := prepare(history, cfg.ContextDays+1)
	if err != nil {
		t.Fatal(err)
	}
	ppd := h.PointsPerDay()
	if h.NumDays() > cfg.TrainDays {
		h, err = h.Slice(h.Len()-cfg.TrainDays*ppd, h.Len())
		if err != nil {
			t.Fatal(err)
		}
	}
	coarse, _, err := resampleTo(h, cfg.Granularity)
	if err != nil {
		t.Fatal(err)
	}
	coarse = coarse.FillGaps()
	cppd := coarse.PointsPerDay()
	inDim := cfg.ContextDays * cppd
	outDim := cppd

	x := make([]float64, coarse.Len())
	for i, v := range coarse.Values {
		x[i] = v / 100
	}
	nSamples := len(x) - inDim - outDim + 1
	if nSamples < 1 {
		t.Fatal("reference: series too short")
	}

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5ea9011))
	refInit := func(n, fanIn int) []float64 {
		w := make([]float64, n)
		scale := math.Sqrt(2 / float64(fanIn))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		return w
	}
	w1 = refInit(inDim*cfg.Hidden, inDim)
	b1 = make([]float64, cfg.Hidden)
	w2 = refInit(cfg.Hidden*outDim, cfg.Hidden)
	b2 = make([]float64, outDim)

	vw1 := make([]float64, len(w1))
	vb1 := make([]float64, len(b1))
	vw2 := make([]float64, len(w2))
	vb2 := make([]float64, len(b2))
	hidden := make([]float64, cfg.Hidden)
	dHidden := make([]float64, cfg.Hidden)
	out := make([]float64, outDim)
	dOut := make([]float64, outDim)

	forward := func(in []float64) {
		for k := range hidden {
			hidden[k] = b1[k]
		}
		for i, xi := range in {
			if xi == 0 {
				continue
			}
			row := w1[i*cfg.Hidden : (i+1)*cfg.Hidden]
			for k, w := range row {
				hidden[k] += xi * w
			}
		}
		for k := range hidden {
			if hidden[k] < 0 {
				hidden[k] = 0
			}
		}
		copy(out, b2)
		for k, hk := range hidden {
			if hk == 0 {
				continue
			}
			row := w2[k*outDim : (k+1)*outDim]
			for j, w := range row {
				out[j] += hk * w
			}
		}
	}

	order := rng.Perm(nSamples)
	lr := cfg.LearningRate
	mom := cfg.Momentum
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		step := lr / (1 + 0.1*float64(epoch))
		for _, s := range order {
			in := x[s : s+inDim]
			target := x[s+inDim : s+inDim+outDim]
			forward(in)
			for j := range out {
				dOut[j] = (out[j] - target[j]) / float64(outDim)
			}
			for k := range hidden {
				if hidden[k] <= 0 {
					dHidden[k] = 0
					continue
				}
				hk := hidden[k]
				g := 0.0
				for j, dj := range dOut {
					g += dj * w2[k*outDim+j]
					v := mom*vw2[k*outDim+j] - step*dj*hk
					vw2[k*outDim+j] = v
					w2[k*outDim+j] += v
				}
				dHidden[k] = g
			}
			for j := range dOut {
				vb2[j] = mom*vb2[j] - step*dOut[j]
				b2[j] += vb2[j]
			}
			for i, xi := range in {
				if xi == 0 {
					continue
				}
				for k, dh := range dHidden {
					if dh == 0 {
						continue
					}
					v := mom*vw1[i*cfg.Hidden+k] - step*dh*xi
					vw1[i*cfg.Hidden+k] = v
					w1[i*cfg.Hidden+k] += v
				}
			}
			for k := range dHidden {
				vb1[k] = mom*vb1[k] - step*dHidden[k]
				b1[k] += vb1[k]
			}
		}
	}
	context = append([]float64(nil), x[len(x)-inDim:]...)
	return w1, b1, w2, b2, context
}

func equalFloats(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s diverges at %d: %v != %v", name, i, got[i], want[i])
		}
	}
}

// TestFFNNBatch1BitIdenticalToOldLoop pins the default path to the
// historical trainer exactly — weights and context must be equal bit for
// bit, not just close.
func TestFFNNBatch1BitIdenticalToOldLoop(t *testing.T) {
	for _, cfg := range []FFNNConfig{
		{Seed: 1},
		{Seed: 7, Epochs: 5},
		{Seed: 3, Hidden: 20, Epochs: 8},
	} {
		hist := mkDays(7, dailyShape(cfg.Seed+100))
		w1, b1, w2, b2, context := refFFNNTrain(t, cfg, hist)

		m := NewFFNN(cfg)
		if err := m.Train(hist); err != nil {
			t.Fatal(err)
		}
		equalFloats(t, "w1", m.w1, w1)
		equalFloats(t, "b1", m.b1, b1)
		equalFloats(t, "w2", m.w2, w2)
		equalFloats(t, "b2", m.b2, b2)
		equalFloats(t, "context", m.context, context)
	}
}

// TestFFNNRetrainMatchesFresh pins the worker-arena contract: retraining a
// used model must equal training a fresh one, for both trainer paths.
func TestFFNNRetrainMatchesFresh(t *testing.T) {
	for _, cfg := range []FFNNConfig{{Seed: 5}, {Seed: 5, BatchSize: 16}} {
		reused := NewFFNN(cfg)
		if _, err := PredictDay(reused, mkDays(9, dailyShape(31))); err != nil {
			t.Fatal(err)
		}
		hist := mkDays(7, dailyShape(32))
		predReused, err := PredictDay(reused, hist)
		if err != nil {
			t.Fatal(err)
		}
		predFresh, err := PredictDay(NewFFNN(cfg), hist)
		if err != nil {
			t.Fatal(err)
		}
		for i := range predFresh.Values {
			if predReused.Values[i] != predFresh.Values[i] {
				t.Fatalf("batch=%d: retrained model diverges from fresh at %d",
					cfg.BatchSize, i)
			}
		}
	}
}

// TestFFNNBatchedAccuracyEquivalent is the recorded accuracy-equivalence
// story for the minibatched trainer, at the exact configuration the figure
// experiments opt into (BatchSize 8, the linearly scaled 0.1 learning rate):
// on daily-pattern servers the batched network must predict the held-out day
// with the same mean bucket-ratio accuracy as per-sample SGD (within 1.5%),
// never lose more than three of the 48 half-hour buckets on any one server,
// and agree with per-sample forecasts in absolute level.
func TestFFNNBatchedAccuracyEquivalent(t *testing.T) {
	const seeds = 5
	worstGap, worstDev := 0.0, 0.0
	sum1, sumB := 0.0, 0.0
	for seed := int64(1); seed <= seeds; seed++ {
		hist := mkDays(14, dailyShape(seed))
		full := mkDays(15, dailyShape(seed))
		target, _ := full.Day(14)

		p1, err := PredictDay(NewFFNN(FFNNConfig{Seed: seed}), hist)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := PredictDay(NewFFNN(FFNNConfig{Seed: seed, BatchSize: 8, LearningRate: 0.1}), hist)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := metrics.BucketRatio(target, p1, metrics.DefaultBound)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := metrics.BucketRatio(target, pb, metrics.DefaultBound)
		if err != nil {
			t.Fatal(err)
		}
		sum1 += r1
		sumB += rb
		if gap := r1 - rb; gap > worstGap {
			worstGap = gap
		}
		// Mean absolute deviation between the two forecasts, in load points.
		dev := 0.0
		for i := range p1.Values {
			dev += math.Abs(p1.Values[i] - pb.Values[i])
		}
		dev /= float64(p1.Len())
		if dev > worstDev {
			worstDev = dev
		}
	}
	if meanGap := (sum1 - sumB) / seeds; meanGap > 0.015 {
		t.Errorf("batched FFNN loses %.4f mean bucket ratio vs per-sample (allowed 0.015)", meanGap)
	}
	if worstGap > 3.0/48 {
		t.Errorf("batched FFNN loses %.4f bucket ratio on one server (allowed %.4f)",
			worstGap, 3.0/48)
	}
	if worstDev > 6 {
		t.Errorf("batched forecast deviates %.2f load points on average (allowed 6)", worstDev)
	}
}

// TestFFNNBatchLargerThanSampleCount degenerates gracefully to full-batch
// gradient descent.
func TestFFNNBatchLargerThanSampleCount(t *testing.T) {
	hist := mkDays(3, dailyShape(41))
	m := NewFFNN(FFNNConfig{Seed: 2, BatchSize: 100000, Epochs: 5})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Len() != 288 {
		t.Fatalf("forecast len %d", pred.Len())
	}
	for i, v := range pred.Values {
		if v < 0 || v > 100 || math.IsNaN(v) {
			t.Fatalf("forecast[%d] = %v", i, v)
		}
	}
}

// TestFFNNSamplesPerEpochCoversTail exercises the rotating window budget at
// sizes where the batch cadence does not divide the window count: the
// cursor must shorten batches at the end of the shuffled order (visiting
// the tail windows) rather than skipping back to the start.
func TestFFNNSamplesPerEpochCoversTail(t *testing.T) {
	// 3 days at 30-minute granularity → 49 windows; batch 5, budget 20.
	hist := mkDays(3, dailyShape(61))
	m := NewFFNN(FFNNConfig{Seed: 4, Epochs: 6, BatchSize: 5, SamplesPerEpoch: 20})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pred.Values {
		if v < 0 || v > 100 || math.IsNaN(v) {
			t.Fatalf("forecast[%d] = %v", i, v)
		}
	}
	// Deterministic given the seed, like every other trainer path.
	pred2, err := PredictDay(NewFFNN(FFNNConfig{Seed: 4, Epochs: 6, BatchSize: 5, SamplesPerEpoch: 20}), hist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pred.Values {
		if pred.Values[i] != pred2.Values[i] {
			t.Fatalf("SamplesPerEpoch path not deterministic at %d", i)
		}
	}
}
