package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"seagull/internal/timeseries"
)

// FFNNConfig configures the feed-forward network forecaster — the stand-in
// for GluonTS's simple feed-forward estimator, the estimator the paper found
// most accurate among the GluonTS models it tried (Section 5.1).
type FFNNConfig struct {
	// ContextDays is the look-back window fed to the network, in days.
	// Default 2.
	ContextDays int
	// Hidden is the hidden layer width. Default 48.
	Hidden int
	// Epochs is the number of passes over the training windows. Default 25.
	Epochs int
	// LearningRate for SGD with momentum. Default 0.05.
	LearningRate float64
	// Momentum coefficient. Default 0.9.
	Momentum float64
	// BatchSize is the SGD minibatch size. The default (1) runs the
	// historical per-sample trainer bit-identically. Larger batches take the
	// fused vectorized path: the forward and backward passes stream the
	// weight matrices once per batch instead of once per sample and the
	// momentum update applies once per batch to the batch-sum gradient
	// (the linear scaling rule — the effective step per window visit stays
	// on par with per-sample SGD, so LearningRate keeps its meaning). The
	// trained weights still differ from per-sample SGD (the whole batch's
	// gradient is taken at the same stale weights), but the forecast
	// accuracy is equivalent — see TestFFNNBatchedAccuracyEquivalent for
	// the recorded story — which is why the figure experiments opt in while
	// the default stays 1.
	BatchSize int
	// SamplesPerEpoch bounds how many training windows each epoch visits,
	// mirroring GluonTS's num_batches_per_epoch: the reference trainer draws
	// a fixed window budget per epoch rather than sweeping every sliding
	// position. 0 (the default) visits every window, preserving the
	// historical trajectory bit-identically; a positive budget rotates
	// through the shuffled window order across epochs so all windows are
	// still covered over the run. Only consulted by the minibatched trainer
	// (BatchSize > 1).
	SamplesPerEpoch int
	// Granularity is the internal sampling interval (the network predicts a
	// full coarse day in one shot). Default 30 minutes.
	Granularity time.Duration
	// TrainDays limits how much trailing history is used. Default 14.
	TrainDays int
	// Seed drives weight initialization and sample shuffling.
	Seed int64
}

func (c FFNNConfig) withDefaults() FFNNConfig {
	if c.ContextDays == 0 {
		c.ContextDays = 2
	}
	if c.Hidden == 0 {
		c.Hidden = 48
	}
	if c.Epochs == 0 {
		c.Epochs = 25
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1
	}
	if c.Granularity == 0 {
		c.Granularity = 30 * time.Minute
	}
	if c.TrainDays == 0 {
		c.TrainDays = 14
	}
	return c
}

// FFNN is a one-hidden-layer feed-forward regression network mapping a
// context window of past load to the next day of load (multi-output), trained
// with SGD with momentum on sliding windows. Inputs and outputs are scaled
// to [0,1] (load percentage / 100).
//
// An FFNN may be retrained on fresh histories; weights, scratch and the
// shuffling RNG are retained (the RNG is re-seeded at the top of Train), so
// a model reused as a per-worker arena across many servers allocates almost
// nothing after the first fit and trains exactly like a fresh instance.
type FFNN struct {
	cfg FFNNConfig

	trained       bool
	inDim, outDim int
	w1, b1        []float64 // inDim×Hidden weights, Hidden biases
	w2, b2        []float64 // Hidden×outDim weights, outDim biases
	context       []float64 // final context window at coarse granularity
	factor        int
	fineInterval  time.Duration
	end           time.Time

	// Reused training state.
	rng       *rand.Rand
	weightBuf []float64
	scratch   []float64
	xBuf      []float64
	orderBuf  []int
	active    []int32
}

// NewFFNN returns a feed-forward forecaster with cfg (zero fields take
// defaults).
func NewFFNN(cfg FFNNConfig) *FFNN { return &FFNN{cfg: cfg.withDefaults()} }

// DeterministicInference implements InferenceDeterministic: inference is a
// forward pass over the trained weights; the RNG is consumed by Train only.
func (f *FFNN) DeterministicInference() bool { return true }

// Name implements Model.
func (f *FFNN) Name() string { return NameFFNN }

// Train implements Model.
func (f *FFNN) Train(history timeseries.Series) error {
	h, err := prepare(history, f.cfg.ContextDays+1)
	if err != nil {
		return err
	}
	ppd := h.PointsPerDay()
	if h.NumDays() > f.cfg.TrainDays {
		h, err = h.Slice(h.Len()-f.cfg.TrainDays*ppd, h.Len())
		if err != nil {
			return err
		}
	}
	coarse, factor, err := resampleTo(h, f.cfg.Granularity)
	if err != nil {
		return err
	}
	coarse = coarse.FillGaps()
	cppd := coarse.PointsPerDay()
	f.inDim = f.cfg.ContextDays * cppd
	f.outDim = cppd

	if cap(f.xBuf) < coarse.Len() {
		f.xBuf = make([]float64, coarse.Len())
	}
	x := f.xBuf[:coarse.Len()]
	for i, v := range coarse.Values {
		x[i] = v / 100
	}
	nSamples := len(x) - f.inDim - f.outDim + 1
	if nSamples < 1 {
		return fmt.Errorf("%w: %d coarse points for context %d + horizon %d",
			ErrNeedHistory, len(x), f.inDim, f.outDim)
	}

	seed := f.cfg.Seed ^ 0x5ea9011
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(seed))
	} else {
		f.rng.Seed(seed)
	}
	rng := f.rng
	nw1, nb1 := f.inDim*f.cfg.Hidden, f.cfg.Hidden
	nw2, nb2 := f.cfg.Hidden*f.outDim, f.outDim
	if cap(f.weightBuf) < nw1+nb1+nw2+nb2 {
		f.weightBuf = make([]float64, nw1+nb1+nw2+nb2)
	}
	wb := f.weightBuf
	f.w1, wb = wb[:nw1:nw1], wb[nw1:]
	f.b1, wb = wb[:nb1:nb1], wb[nb1:]
	f.w2, wb = wb[:nw2:nw2], wb[nw2:]
	f.b2 = wb[:nb2:nb2]
	initWeights(rng, f.w1, f.inDim)
	zeroFloats(f.b1)
	initWeights(rng, f.w2, f.cfg.Hidden)
	zeroFloats(f.b2)

	order := f.permInto(rng, nSamples)
	batch := f.cfg.BatchSize
	if batch > nSamples {
		batch = nSamples
	}
	if batch <= 1 {
		f.trainPerSample(x, order)
	} else {
		f.trainMinibatch(x, order, batch)
	}

	f.context = append(f.context[:0], x[len(x)-f.inDim:]...)
	f.factor = factor
	f.fineInterval = h.Interval
	f.end = h.End()
	f.trained = true
	return nil
}

// permInto reproduces rng.Perm(n)'s draw sequence bit-identically into a
// reused buffer.
func (f *FFNN) permInto(rng *rand.Rand, n int) []int {
	if cap(f.orderBuf) < n {
		f.orderBuf = make([]int, n)
	}
	m := f.orderBuf[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

// sizeScratch zeroes the shared training slab at the given total size and
// returns the cutter the trainer paths use to carve their regions, in a
// fixed order.
func (f *FFNN) sizeScratch(total int) func(n int) []float64 {
	if cap(f.scratch) < total {
		f.scratch = make([]float64, total)
	}
	s := f.scratch[:total]
	zeroFloats(s)
	return func(n int) []float64 {
		out := s[:n:n]
		s = s[n:]
		return out
	}
}

// trainPerSample is the historical per-sample SGD trainer, preserved
// bit-identically as the BatchSize=1 path (the default).
func (f *FFNN) trainPerSample(x []float64, order []int) {
	// All training scratch — momentum state plus forward/backward buffers —
	// lives in one backing slab reused across epochs, samples and Train calls.
	cut := f.sizeScratch(len(f.w1) + len(f.b1) + len(f.w2) + len(f.b2) + 2*f.cfg.Hidden + 2*f.outDim)
	vw1, vb1, vw2, vb2 := cut(len(f.w1)), cut(len(f.b1)), cut(len(f.w2)), cut(len(f.b2))
	hidden, dHidden := cut(f.cfg.Hidden), cut(f.cfg.Hidden)
	out, dOut := cut(f.outDim), cut(f.outDim)
	// Indices of hidden units with non-zero gradient this sample; the W1
	// update touches only these. Per-unit updates are independent, so
	// iterating the compacted set is numerically identical to scanning all
	// units and skipping zeros.
	if cap(f.active) < f.cfg.Hidden {
		f.active = make([]int32, 0, f.cfg.Hidden)
	}
	active := f.active[:0]

	lr := f.cfg.LearningRate
	mom := f.cfg.Momentum
	for epoch := 0; epoch < f.cfg.Epochs; epoch++ {
		// Simple learning-rate decay stabilizes the final weights.
		step := lr / (1 + 0.1*float64(epoch))
		for _, s := range order {
			in := x[s : s+f.inDim]
			target := x[s+f.inDim : s+f.inDim+f.outDim]
			f.forward(in, hidden, out)

			// Backprop of 0.5·MSE. The hidden gradient and the W2 update share
			// one pass over each W2 row: the row is read (pre-update weights)
			// to accumulate dHidden[k], then updated in place.
			for j := range out {
				dOut[j] = (out[j] - target[j]) / float64(f.outDim)
			}
			active = active[:0]
			for k := range hidden {
				if hidden[k] <= 0 { // ReLU gate
					dHidden[k] = 0
					continue
				}
				hk := hidden[k]
				w2row := f.w2[k*f.outDim : (k+1)*f.outDim]
				v2row := vw2[k*f.outDim : (k+1)*f.outDim][:len(w2row)]
				g := 0.0
				for j, dj := range dOut {
					g += dj * w2row[j]
					v := mom*v2row[j] - step*dj*hk
					v2row[j] = v
					w2row[j] += v
				}
				dHidden[k] = g
				if g != 0 {
					active = append(active, int32(k))
				}
			}
			for j := range dOut {
				vb2[j] = mom*vb2[j] - step*dOut[j]
				f.b2[j] += vb2[j]
			}
			for i, xi := range in {
				if xi == 0 {
					continue
				}
				w1row := f.w1[i*f.cfg.Hidden : (i+1)*f.cfg.Hidden]
				v1row := vw1[i*f.cfg.Hidden : (i+1)*f.cfg.Hidden][:len(w1row)]
				for _, k := range active {
					dh := dHidden[k]
					v := mom*v1row[k] - step*dh*xi
					v1row[k] = v
					w1row[k] += v
				}
			}
			for k := range dHidden {
				vb1[k] = mom*vb1[k] - step*dHidden[k]
				f.b1[k] += vb1[k]
			}
		}
	}
	f.active = active[:0]
}

// trainMinibatch is the fused vectorized trainer for BatchSize > 1. Each
// batch gathers its sample windows once, runs the forward and backward
// passes with the weight matrices streamed once per batch rather than once
// per sample, accumulates the batch-sum gradient, and applies a single
// momentum update (see the BatchSize doc for the scaling rationale).
func (f *FFNN) trainMinibatch(x []float64, order []int, batch int) {
	hid, outD, inD := f.cfg.Hidden, f.outDim, f.inDim
	nw1, nb1, nw2, nb2 := len(f.w1), len(f.b1), len(f.w2), len(f.b2)
	cut := f.sizeScratch(2*(nw1+nb1+nw2+nb2) + batch*(inD+2*hid+2*outD))
	vw1, vb1, vw2, vb2 := cut(nw1), cut(nb1), cut(nw2), cut(nb2)
	gw1, gb1, gw2, gb2 := cut(nw1), cut(nb1), cut(nw2), cut(nb2)
	xbT := cut(batch * inD)  // inputs, transposed: feature-major inD×B
	tb := cut(batch * outD)  // targets, sample-major B×outD
	hbuf := cut(batch * hid) // hidden activations, sample-major B×hid
	dh := cut(batch * hid)   // hidden gradients, sample-major B×hid
	ob := cut(batch * outD)  // outputs then output gradients, B×outD

	perEpoch := len(order)
	if f.cfg.SamplesPerEpoch > 0 && f.cfg.SamplesPerEpoch < perEpoch {
		perEpoch = f.cfg.SamplesPerEpoch
	}
	lr := f.cfg.LearningRate
	mom := f.cfg.Momentum
	cursor := 0 // rotates through the shuffled order across epochs
	for epoch := 0; epoch < f.cfg.Epochs; epoch++ {
		step := lr / (1 + 0.1*float64(epoch))
		for off := 0; off < perEpoch; {
			if cursor == len(order) {
				cursor = 0
			}
			bs := batch
			if off+bs > perEpoch {
				bs = perEpoch - off
			}
			// A batch never wraps: it shortens at the end of the order so
			// the tail windows are visited too, then the cursor restarts.
			if cursor+bs > len(order) {
				bs = len(order) - cursor
			}
			samples := order[cursor : cursor+bs]
			cursor += bs
			off += bs

			// Gather the batch: inputs feature-major so the forward pass can
			// stream each W1 row across all samples, targets sample-major.
			for bi, s := range samples {
				in := x[s : s+inD]
				for i, v := range in {
					xbT[i*batch+bi] = v
				}
				copy(tb[bi*outD:(bi+1)*outD], x[s+inD:s+inD+outD])
			}

			// Forward: H = relu(X·W1 + b1), O = H·W2 + b2. The W1 pass blocks
			// four samples per row so each loaded weight feeds four
			// independent accumulator chains (the scalar loop is
			// ILP-bound, not memory-bound, at these layer shapes).
			for bi := 0; bi < bs; bi++ {
				copy(hbuf[bi*hid:(bi+1)*hid], f.b1)
			}
			for i := 0; i < inD; i++ {
				xrow := xbT[i*batch : i*batch+bs]
				w1row := f.w1[i*hid : (i+1)*hid]
				bi := 0
				for ; bi+4 <= bs; bi += 4 {
					scatter4(hbuf[bi*hid:], hid, w1row,
						xrow[bi], xrow[bi+1], xrow[bi+2], xrow[bi+3])
				}
				for ; bi < bs; bi++ {
					xi := xrow[bi]
					if xi == 0 {
						continue
					}
					hrow := hbuf[bi*hid : (bi+1)*hid][:len(w1row)]
					for k, w := range w1row {
						hrow[k] += xi * w
					}
				}
			}
			for i := 0; i < bs*hid; i++ {
				if hbuf[i] < 0 {
					hbuf[i] = 0
				}
			}
			for bi := 0; bi < bs; bi++ {
				copy(ob[bi*outD:(bi+1)*outD], f.b2)
			}
			// The W2 passes iterate (unit, sample) and skip gated units —
			// post-ReLU roughly half the activations are exactly zero, and
			// skipping whole rows beats four-wide blocking here.
			for k := 0; k < hid; k++ {
				w2row := f.w2[k*outD : (k+1)*outD]
				for bi := 0; bi < bs; bi++ {
					hk := hbuf[bi*hid+k]
					if hk == 0 {
						continue
					}
					orow := ob[bi*outD : (bi+1)*outD][:len(w2row)]
					for j, w := range w2row {
						orow[j] += hk * w
					}
				}
			}

			// Output gradient of 0.5·MSE, in place over the outputs.
			for bi := 0; bi < bs; bi++ {
				orow := ob[bi*outD : (bi+1)*outD]
				trow := tb[bi*outD : (bi+1)*outD][:len(orow)]
				for j := range orow {
					orow[j] = (orow[j] - trow[j]) / float64(outD)
				}
			}

			// Backward: one pass over each W2 row serves both the hidden
			// gradient (dH = dO·W2ᵀ, ReLU-gated) and the W2 gradient
			// accumulation (gW2 += HᵀdO); gated units skip the row.
			for k := 0; k < hid; k++ {
				w2row := f.w2[k*outD : (k+1)*outD]
				g2row := gw2[k*outD : (k+1)*outD][:len(w2row)]
				for bi := 0; bi < bs; bi++ {
					hk := hbuf[bi*hid+k]
					if hk <= 0 {
						dh[bi*hid+k] = 0
						continue
					}
					orow := ob[bi*outD : (bi+1)*outD][:len(w2row)]
					g := 0.0
					for j, dj := range orow {
						g += dj * w2row[j]
						g2row[j] += hk * dj
					}
					dh[bi*hid+k] = g
				}
			}
			for bi := 0; bi < bs; bi++ {
				orow := ob[bi*outD : (bi+1)*outD][:len(gb2)]
				for j, dj := range orow {
					gb2[j] += dj
				}
			}
			// gW1 += XᵀdH, gathered four samples per row: one store per
			// gradient element, four multiply-adds per loop iteration.
			for i := 0; i < inD; i++ {
				xrow := xbT[i*batch : i*batch+bs]
				g1row := gw1[i*hid : (i+1)*hid]
				bi := 0
				for ; bi+4 <= bs; bi += 4 {
					gather4(g1row, dh[bi*hid:], hid,
						xrow[bi], xrow[bi+1], xrow[bi+2], xrow[bi+3])
				}
				for ; bi < bs; bi++ {
					xi := xrow[bi]
					if xi == 0 {
						continue
					}
					dhrow := dh[bi*hid : (bi+1)*hid][:len(g1row)]
					for k, d := range dhrow {
						g1row[k] += xi * d
					}
				}
			}
			{
				bi := 0
				for ; bi+4 <= bs; bi += 4 {
					gather4(gb1, dh[bi*hid:], hid, 1, 1, 1, 1)
				}
				for ; bi < bs; bi++ {
					dhrow := dh[bi*hid : (bi+1)*hid][:len(gb1)]
					for k, d := range dhrow {
						gb1[k] += d
					}
				}
			}

			// One momentum step on the batch-sum gradient (the linear
			// scaling rule: summing rather than averaging keeps the total
			// displacement per epoch on par with per-sample SGD, which is
			// what makes the two trainers accuracy-equivalent). Gradients
			// are re-zeroed in the same pass.
			updateMomentum(f.w1, vw1, gw1, mom, step)
			updateMomentum(f.b1, vb1, gb1, mom, step)
			updateMomentum(f.w2, vw2, gw2, mom, step)
			updateMomentum(f.b2, vb2, gb2, mom, step)
		}
	}
}

// scatter4 accumulates one weight row into four consecutive stride-spaced
// destination rows: dst[b·stride+k] += x_b·w[k] for b in 0..3. The four
// independent add chains give the scalar loop instruction-level parallelism.
func scatter4(dst []float64, stride int, w []float64, x0, x1, x2, x3 float64) {
	d0 := dst[0*stride : 0*stride+len(w)]
	d1 := dst[1*stride : 1*stride+len(w)]
	d2 := dst[2*stride : 2*stride+len(w)]
	d3 := dst[3*stride : 3*stride+len(w)]
	k := 0
	for ; k+2 <= len(w); k += 2 {
		wa, wb := w[k], w[k+1]
		d0[k] += x0 * wa
		d0[k+1] += x0 * wb
		d1[k] += x1 * wa
		d1[k+1] += x1 * wb
		d2[k] += x2 * wa
		d2[k+1] += x2 * wb
		d3[k] += x3 * wa
		d3[k+1] += x3 * wb
	}
	for ; k < len(w); k++ {
		wk := w[k]
		d0[k] += x0 * wk
		d1[k] += x1 * wk
		d2[k] += x2 * wk
		d3[k] += x3 * wk
	}
}

// gather4 accumulates four consecutive stride-spaced source rows into one
// destination row: dst[k] += Σ_b x_b·src[b·stride+k] — one store and four
// multiply-adds per element. The loop is unrolled two elements deep so two
// independent multiply-add trees are in flight at once.
func gather4(dst []float64, src []float64, stride int, x0, x1, x2, x3 float64) {
	s0 := src[0*stride : 0*stride+len(dst)]
	s1 := src[1*stride : 1*stride+len(dst)]
	s2 := src[2*stride : 2*stride+len(dst)]
	s3 := src[3*stride : 3*stride+len(dst)]
	k := 0
	for ; k+2 <= len(dst); k += 2 {
		a := x0*s0[k] + x1*s1[k]
		b := x0*s0[k+1] + x1*s1[k+1]
		a += x2*s2[k] + x3*s3[k]
		b += x2*s2[k+1] + x3*s3[k+1]
		dst[k] += a
		dst[k+1] += b
	}
	for ; k < len(dst); k++ {
		dst[k] += x0*s0[k] + x1*s1[k] + x2*s2[k] + x3*s3[k]
	}
}

// updateMomentum applies v = mom·v − scale·g; w += v and zeroes g, two
// elements per iteration to keep two independent chains in flight.
func updateMomentum(w, v, g []float64, mom, scale float64) {
	v = v[:len(w)]
	g = g[:len(w)]
	i := 0
	for ; i+2 <= len(w); i += 2 {
		nva := mom*v[i] - scale*g[i]
		nvb := mom*v[i+1] - scale*g[i+1]
		v[i] = nva
		v[i+1] = nvb
		w[i] += nva
		w[i+1] += nvb
		g[i] = 0
		g[i+1] = 0
	}
	for ; i < len(w); i++ {
		nv := mom*v[i] - scale*g[i]
		v[i] = nv
		w[i] += nv
		g[i] = 0
	}
}

func zeroFloats(s []float64) { clear(s) }

// initWeights fills w with He-initialized weights for ReLU.
func initWeights(rng *rand.Rand, w []float64, fanIn int) {
	scale := math.Sqrt(2 / float64(fanIn))
	for i := range w {
		w[i] = rng.NormFloat64() * scale
	}
}

// forward runs the network: hidden = relu(in·W1 + b1), out = hidden·W2 + b2.
func (f *FFNN) forward(in, hidden, out []float64) {
	for k := range hidden {
		hidden[k] = f.b1[k]
	}
	for i, xi := range in {
		if xi == 0 {
			continue
		}
		row := f.w1[i*f.cfg.Hidden : (i+1)*f.cfg.Hidden]
		hh := hidden[:len(row)] // bounds-check hint: len(hidden) == len(row)
		for k, w := range row {
			hh[k] += xi * w
		}
	}
	for k := range hidden {
		if hidden[k] < 0 {
			hidden[k] = 0
		}
	}
	copy(out, f.b2)
	for k, hk := range hidden {
		if hk == 0 {
			continue
		}
		row := f.w2[k*f.outDim : (k+1)*f.outDim]
		oo := out[:len(row)]
		for j, w := range row {
			oo[j] += hk * w
		}
	}
}

// Forecast implements Model: roll the network forward one coarse day at a
// time until the horizon is covered, then expand to the fine granularity.
func (f *FFNN) Forecast(horizon int) (timeseries.Series, error) {
	if !f.trained {
		return timeseries.Series{}, ErrNotTrained
	}
	if horizon <= 0 {
		return timeseries.Series{}, fmt.Errorf("forecast: non-positive horizon %d", horizon)
	}
	coarseH := (horizon + f.factor - 1) / f.factor
	ctx := append([]float64(nil), f.context...)
	hidden := make([]float64, f.cfg.Hidden)
	day := make([]float64, f.outDim)
	// Round the capacity up to whole predicted days so the append loop never
	// reallocates.
	preds := make([]float64, 0, ((coarseH+f.outDim-1)/f.outDim)*f.outDim)
	for len(preds) < coarseH {
		f.forward(ctx, hidden, day)
		for _, v := range day {
			preds = append(preds, math.Min(math.Max(v*100, 0), 100))
		}
		// Slide the context forward by one predicted day.
		ctx = append(ctx[f.outDim:], day...)
	}
	preds = preds[:coarseH]
	coarse := timeseries.New(f.end, time.Duration(f.factor)*f.fineInterval, preds)
	return expand(coarse, f.factor, f.fineInterval, horizon), nil
}
