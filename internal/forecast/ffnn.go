package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"seagull/internal/timeseries"
)

// FFNNConfig configures the feed-forward network forecaster — the stand-in
// for GluonTS's simple feed-forward estimator, the estimator the paper found
// most accurate among the GluonTS models it tried (Section 5.1).
type FFNNConfig struct {
	// ContextDays is the look-back window fed to the network, in days.
	// Default 2.
	ContextDays int
	// Hidden is the hidden layer width. Default 48.
	Hidden int
	// Epochs is the number of passes over the training windows. Default 25.
	Epochs int
	// LearningRate for SGD with momentum. Default 0.05.
	LearningRate float64
	// Momentum coefficient. Default 0.9.
	Momentum float64
	// Granularity is the internal sampling interval (the network predicts a
	// full coarse day in one shot). Default 30 minutes.
	Granularity time.Duration
	// TrainDays limits how much trailing history is used. Default 14.
	TrainDays int
	// Seed drives weight initialization and sample shuffling.
	Seed int64
}

func (c FFNNConfig) withDefaults() FFNNConfig {
	if c.ContextDays == 0 {
		c.ContextDays = 2
	}
	if c.Hidden == 0 {
		c.Hidden = 48
	}
	if c.Epochs == 0 {
		c.Epochs = 25
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Granularity == 0 {
		c.Granularity = 30 * time.Minute
	}
	if c.TrainDays == 0 {
		c.TrainDays = 14
	}
	return c
}

// FFNN is a one-hidden-layer feed-forward regression network mapping a
// context window of past load to the next day of load (multi-output), trained
// with SGD with momentum on sliding windows. Inputs and outputs are scaled
// to [0,1] (load percentage / 100).
type FFNN struct {
	cfg FFNNConfig

	trained       bool
	inDim, outDim int
	w1, b1        []float64 // inDim×Hidden weights, Hidden biases
	w2, b2        []float64 // Hidden×outDim weights, outDim biases
	context       []float64 // final context window at coarse granularity
	factor        int
	fineInterval  time.Duration
	end           time.Time
}

// NewFFNN returns a feed-forward forecaster with cfg (zero fields take
// defaults).
func NewFFNN(cfg FFNNConfig) *FFNN { return &FFNN{cfg: cfg.withDefaults()} }

// Name implements Model.
func (f *FFNN) Name() string { return NameFFNN }

// Train implements Model.
func (f *FFNN) Train(history timeseries.Series) error {
	h, err := prepare(history, f.cfg.ContextDays+1)
	if err != nil {
		return err
	}
	ppd := h.PointsPerDay()
	if h.NumDays() > f.cfg.TrainDays {
		h, err = h.Slice(h.Len()-f.cfg.TrainDays*ppd, h.Len())
		if err != nil {
			return err
		}
	}
	coarse, factor, err := resampleTo(h, f.cfg.Granularity)
	if err != nil {
		return err
	}
	coarse = coarse.FillGaps()
	cppd := coarse.PointsPerDay()
	f.inDim = f.cfg.ContextDays * cppd
	f.outDim = cppd

	x := make([]float64, coarse.Len())
	for i, v := range coarse.Values {
		x[i] = v / 100
	}
	nSamples := len(x) - f.inDim - f.outDim + 1
	if nSamples < 1 {
		return fmt.Errorf("%w: %d coarse points for context %d + horizon %d",
			ErrNeedHistory, len(x), f.inDim, f.outDim)
	}

	rng := rand.New(rand.NewSource(f.cfg.Seed ^ 0x5ea9011))
	f.w1 = initWeights(rng, f.inDim*f.cfg.Hidden, f.inDim)
	f.b1 = make([]float64, f.cfg.Hidden)
	f.w2 = initWeights(rng, f.cfg.Hidden*f.outDim, f.cfg.Hidden)
	f.b2 = make([]float64, f.outDim)

	// All training scratch — momentum state plus forward/backward buffers —
	// lives in one backing allocation reused across every epoch and sample.
	scratch := make([]float64, len(f.w1)+len(f.b1)+len(f.w2)+len(f.b2)+2*f.cfg.Hidden+2*f.outDim)
	cut := func(n int) []float64 {
		s := scratch[:n:n]
		scratch = scratch[n:]
		return s
	}
	vw1, vb1, vw2, vb2 := cut(len(f.w1)), cut(len(f.b1)), cut(len(f.w2)), cut(len(f.b2))
	hidden, dHidden := cut(f.cfg.Hidden), cut(f.cfg.Hidden)
	out, dOut := cut(f.outDim), cut(f.outDim)
	// Indices of hidden units with non-zero gradient this sample; the W1
	// update touches only these. Per-unit updates are independent, so
	// iterating the compacted set is numerically identical to scanning all
	// units and skipping zeros.
	active := make([]int32, 0, f.cfg.Hidden)

	order := rng.Perm(nSamples)
	lr := f.cfg.LearningRate
	mom := f.cfg.Momentum
	for epoch := 0; epoch < f.cfg.Epochs; epoch++ {
		// Simple learning-rate decay stabilizes the final weights.
		step := lr / (1 + 0.1*float64(epoch))
		for _, s := range order {
			in := x[s : s+f.inDim]
			target := x[s+f.inDim : s+f.inDim+f.outDim]
			f.forward(in, hidden, out)

			// Backprop of 0.5·MSE. The hidden gradient and the W2 update share
			// one pass over each W2 row: the row is read (pre-update weights)
			// to accumulate dHidden[k], then updated in place.
			for j := range out {
				dOut[j] = (out[j] - target[j]) / float64(f.outDim)
			}
			active = active[:0]
			for k := range hidden {
				if hidden[k] <= 0 { // ReLU gate
					dHidden[k] = 0
					continue
				}
				hk := hidden[k]
				w2row := f.w2[k*f.outDim : (k+1)*f.outDim]
				v2row := vw2[k*f.outDim : (k+1)*f.outDim][:len(w2row)]
				g := 0.0
				for j, dj := range dOut {
					g += dj * w2row[j]
					v := mom*v2row[j] - step*dj*hk
					v2row[j] = v
					w2row[j] += v
				}
				dHidden[k] = g
				if g != 0 {
					active = append(active, int32(k))
				}
			}
			for j := range dOut {
				vb2[j] = mom*vb2[j] - step*dOut[j]
				f.b2[j] += vb2[j]
			}
			for i, xi := range in {
				if xi == 0 {
					continue
				}
				w1row := f.w1[i*f.cfg.Hidden : (i+1)*f.cfg.Hidden]
				v1row := vw1[i*f.cfg.Hidden : (i+1)*f.cfg.Hidden][:len(w1row)]
				for _, k := range active {
					dh := dHidden[k]
					v := mom*v1row[k] - step*dh*xi
					v1row[k] = v
					w1row[k] += v
				}
			}
			for k := range dHidden {
				vb1[k] = mom*vb1[k] - step*dHidden[k]
				f.b1[k] += vb1[k]
			}
		}
	}

	f.context = append([]float64(nil), x[len(x)-f.inDim:]...)
	f.factor = factor
	f.fineInterval = h.Interval
	f.end = h.End()
	f.trained = true
	return nil
}

func initWeights(rng *rand.Rand, n, fanIn int) []float64 {
	w := make([]float64, n)
	scale := math.Sqrt(2 / float64(fanIn)) // He initialization for ReLU
	for i := range w {
		w[i] = rng.NormFloat64() * scale
	}
	return w
}

// forward runs the network: hidden = relu(in·W1 + b1), out = hidden·W2 + b2.
func (f *FFNN) forward(in, hidden, out []float64) {
	for k := range hidden {
		hidden[k] = f.b1[k]
	}
	for i, xi := range in {
		if xi == 0 {
			continue
		}
		row := f.w1[i*f.cfg.Hidden : (i+1)*f.cfg.Hidden]
		hh := hidden[:len(row)] // bounds-check hint: len(hidden) == len(row)
		for k, w := range row {
			hh[k] += xi * w
		}
	}
	for k := range hidden {
		if hidden[k] < 0 {
			hidden[k] = 0
		}
	}
	copy(out, f.b2)
	for k, hk := range hidden {
		if hk == 0 {
			continue
		}
		row := f.w2[k*f.outDim : (k+1)*f.outDim]
		oo := out[:len(row)]
		for j, w := range row {
			oo[j] += hk * w
		}
	}
}

// Forecast implements Model: roll the network forward one coarse day at a
// time until the horizon is covered, then expand to the fine granularity.
func (f *FFNN) Forecast(horizon int) (timeseries.Series, error) {
	if !f.trained {
		return timeseries.Series{}, ErrNotTrained
	}
	if horizon <= 0 {
		return timeseries.Series{}, fmt.Errorf("forecast: non-positive horizon %d", horizon)
	}
	coarseH := (horizon + f.factor - 1) / f.factor
	ctx := append([]float64(nil), f.context...)
	hidden := make([]float64, f.cfg.Hidden)
	day := make([]float64, f.outDim)
	// Round the capacity up to whole predicted days so the append loop never
	// reallocates.
	preds := make([]float64, 0, ((coarseH+f.outDim-1)/f.outDim)*f.outDim)
	for len(preds) < coarseH {
		f.forward(ctx, hidden, day)
		for _, v := range day {
			preds = append(preds, math.Min(math.Max(v*100, 0), 100))
		}
		// Slide the context forward by one predicted day.
		ctx = append(ctx[f.outDim:], day...)
	}
	preds = preds[:coarseH]
	coarse := timeseries.New(f.end, time.Duration(f.factor)*f.fineInterval, preds)
	return expand(coarse, f.factor, f.fineInterval, horizon), nil
}
