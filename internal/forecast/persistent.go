package forecast

import (
	"fmt"

	"seagull/internal/timeseries"
)

// Variant selects one of the three persistent-forecast heuristics of
// Section 5.1.
type Variant int

const (
	// PrevDay replicates the load of the previous day — the variant deployed
	// to production (Section 5.4): it captures daily patterns and stable
	// load, covering 53.7% of servers.
	PrevDay Variant = iota
	// PrevEquivalentDay replicates the load of the same weekday one week
	// earlier, capturing weekly patterns.
	PrevEquivalentDay
	// PrevWeekAverage predicts the constant average load of the previous
	// week, capturing only stable servers.
	PrevWeekAverage
)

// String returns the variant's registry name.
func (v Variant) String() string {
	switch v {
	case PrevDay:
		return NamePersistentPrevDay
	case PrevEquivalentDay:
		return NamePersistentPrevWeek
	case PrevWeekAverage:
		return NamePersistentWeekAvg
	default:
		return fmt.Sprintf("pf-variant(%d)", int(v))
	}
}

// Persistent is the persistent-forecast model: it replicates previously seen
// load as the forecast. It requires no training computation, which is why
// the paper deploys it — zero training cost at equal accuracy (Section 5.4).
type Persistent struct {
	variant Variant
	history timeseries.Series
	trained bool
}

// NewPersistent returns a persistent forecaster of the given variant.
func NewPersistent(v Variant) *Persistent { return &Persistent{variant: v} }

// DeterministicInference implements InferenceDeterministic: the persistent
// forecast replays history slices with no randomness.
func (p *Persistent) DeterministicInference() bool { return true }

// Name implements Model.
func (p *Persistent) Name() string { return p.variant.String() }

// Variant returns the heuristic this forecaster replicates.
func (p *Persistent) Variant() Variant { return p.variant }

// Train implements Model. Persistent forecast "does not require training
// because it uses the load per server on the previous day as predicted load"
// (Section 5.3.3); Train only records the history reference.
func (p *Persistent) Train(history timeseries.Series) error {
	minDays := 1
	if p.variant != PrevDay {
		minDays = 7
	}
	h, err := prepare(history, minDays)
	if err != nil {
		return err
	}
	p.history, p.trained = h, true
	return nil
}

// Forecast implements Model.
func (p *Persistent) Forecast(horizon int) (timeseries.Series, error) {
	if !p.trained {
		return timeseries.Series{}, ErrNotTrained
	}
	if horizon <= 0 {
		return timeseries.Series{}, fmt.Errorf("forecast: non-positive horizon %d", horizon)
	}
	n := p.history.Len()
	ppd := p.history.PointsPerDay()
	out := make([]float64, horizon)
	switch p.variant {
	case PrevDay:
		// Replicate the final day cyclically across the horizon.
		src := p.history.Values[n-ppd:]
		for i := range out {
			out[i] = src[i%ppd]
		}
	case PrevEquivalentDay:
		// Observation i of the horizon mirrors the value exactly one week
		// earlier. For horizons beyond a week this wraps onto itself, which
		// matches replaying the final week cyclically.
		week := 7 * ppd
		src := p.history.Values[n-week:]
		for i := range out {
			out[i] = src[i%week]
		}
	case PrevWeekAverage:
		lastWeek, err := p.history.Slice(n-7*ppd, n)
		if err != nil {
			return timeseries.Series{}, err
		}
		avg := lastWeek.Mean()
		for i := range out {
			out[i] = avg
		}
	default:
		return timeseries.Series{}, fmt.Errorf("%w: %v", ErrUnknown, p.variant)
	}
	return timeseries.New(p.history.End(), p.history.Interval, out), nil
}
