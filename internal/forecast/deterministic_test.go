package forecast

import (
	"testing"
	"time"

	"seagull/internal/timeseries"
)

func detHistory(days int) timeseries.Series {
	vals := make([]float64, days*288)
	for i := range vals {
		base := 12.0
		if i%288 >= 96 && i%288 < 192 {
			base = 58
		}
		vals[i] = base + float64((i*37)%11)
	}
	return timeseries.New(time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC), 5*time.Minute, vals)
}

// TestDeterministicInferenceContract pins the InferenceDeterministic
// claims: every model advertising deterministic inference must return
// bit-identical series from repeated Forecast calls after one Train, and
// the additive model — whose inference consumes the model RNG — must not
// advertise it.
func TestDeterministicInferenceContract(t *testing.T) {
	hist := detHistory(7)
	names := []string{
		NamePersistentPrevDay, NamePersistentPrevWeek, NamePersistentWeekAvg,
		NameSSA, NameFFNN, NameAdditive, NameARIMA,
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			m, err := New(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			di, claims := m.(InferenceDeterministic)
			deterministic := claims && di.DeterministicInference()
			if name == NameAdditive {
				if deterministic {
					t.Fatal("the additive model draws inference samples from its RNG and must not claim deterministic inference")
				}
				return
			}
			if !deterministic {
				t.Fatalf("%s should claim deterministic inference", name)
			}
			if err := m.Train(hist); err != nil {
				t.Fatal(err)
			}
			first, err := m.Forecast(288)
			if err != nil {
				t.Fatal(err)
			}
			second, err := m.Forecast(288)
			if err != nil {
				t.Fatal(err)
			}
			if first.Len() != second.Len() {
				t.Fatalf("len %d vs %d", first.Len(), second.Len())
			}
			for i := range first.Values {
				if first.Values[i] != second.Values[i] {
					t.Fatalf("repeated Forecast diverges at %d: %v vs %v",
						i, first.Values[i], second.Values[i])
				}
			}
		})
	}
}
