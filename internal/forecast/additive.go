package forecast

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"seagull/internal/linalg"
	"seagull/internal/timeseries"
)

// AdditiveConfig configures the additive decomposition forecaster — the
// stand-in for Prophet (Section 5.1): "an additive model where non-linear
// trends are fit with seasonality". The model is y(t) = trend(t) +
// daily seasonality + weekly seasonality, with a piecewise-linear trend.
//
// Like Prophet, fitting is iterative (gradient descent on the penalized
// least-squares objective) and inference draws Monte-Carlo trajectories for
// uncertainty. Historically this reproduced Prophet's role as the most
// expensive model in Figure 11(a); the trainer now iterates on the
// precomputed Gram matrix (see Train), so the per-iteration cost no longer
// scales with the history length and the model trains far faster than the
// Python original — the paper's cost ordering is recorded in the fig11a
// Paper field rather than reproduced.
type AdditiveConfig struct {
	// Changepoints is the number of potential trend changepoints, uniformly
	// placed over the first 80% of the history. Default 20.
	Changepoints int
	// DailyOrder is the Fourier order of the daily seasonality. Default 8.
	DailyOrder int
	// WeeklyOrder is the Fourier order of the weekly seasonality. Default 3.
	WeeklyOrder int
	// Iterations of batch gradient descent. Default 1500.
	Iterations int
	// LearningRate for gradient descent. Default 0.3.
	LearningRate float64
	// Ridge is the L2 penalty on all coefficients except the intercept.
	// Default 0.05.
	Ridge float64
	// Samples is the number of Monte-Carlo trajectories drawn at inference
	// for uncertainty; the forecast is their mean. Default 3000.
	Samples int
	// TrainDays limits how much trailing history is used. Default 14.
	TrainDays int
	// Seed drives the Monte-Carlo sampling.
	Seed int64
}

func (c AdditiveConfig) withDefaults() AdditiveConfig {
	if c.Changepoints == 0 {
		c.Changepoints = 20
	}
	if c.DailyOrder == 0 {
		c.DailyOrder = 8
	}
	if c.WeeklyOrder == 0 {
		c.WeeklyOrder = 3
	}
	if c.Iterations == 0 {
		c.Iterations = 1500
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.3
	}
	if c.Ridge == 0 {
		c.Ridge = 0.05
	}
	if c.Samples == 0 {
		c.Samples = 3000
	}
	if c.TrainDays == 0 {
		c.TrainDays = 14
	}
	return c
}

// Additive is the Prophet-analog forecaster.
//
// An Additive instance may be retrained on fresh histories: the design
// matrix, Gram accumulator and coefficient buffers are retained between
// Train calls (they dominated fig11a's allocation profile before reuse),
// and the Monte-Carlo RNG is re-seeded at the top of Train so a reused
// model forecasts exactly like a fresh one.
type Additive struct {
	cfg AdditiveConfig

	trained  bool
	beta     []float64 // coefficients over the design features
	nTrain   int       // training points
	ppd      int
	interval time.Duration
	end      time.Time
	residual float64   // residual std, used for MC noise
	cpGrowth []float64 // fitted slope deltas at changepoints (for sampling)
	cpTimes  []float64 // changepoint positions in scaled time
	rng      *rand.Rand

	// Reused training/inference scratch.
	designBuf []float64
	yBuf      []float64
	gramBuf   []float64
	cBuf      []float64
	gradBuf   []float64
	dayTab    []float64 // daily Fourier block per slot-of-day, ppd×2·DailyOrder
	rowBuf    []float64
	pointBuf  []float64
	accBuf    []float64
}

// NewAdditive returns an additive forecaster with cfg (zero fields take
// defaults).
func NewAdditive(cfg AdditiveConfig) *Additive {
	c := cfg.withDefaults()
	return &Additive{cfg: c, rng: rand.New(rand.NewSource(c.Seed ^ 0x9a0ff37))}
}

// Name implements Model.
func (a *Additive) Name() string { return NameAdditive }

// featureDim returns the width of the design matrix.
func (a *Additive) featureDim() int {
	return 2 + a.cfg.Changepoints + 2*a.cfg.DailyOrder + 2*a.cfg.WeeklyOrder
}

// features fills row with the design features for absolute observation index
// t (0 = start of training): intercept, scaled time, changepoint hinges,
// daily and weekly Fourier terms. The daily block is copied from the
// slot-of-day table built in Train — only ppd distinct phases exist, so the
// per-row sin/cos evaluations (which dominated the design build) collapse to
// one table fill; the copied values are bit-identical to direct evaluation.
func (a *Additive) features(row []float64, t int) {
	ts := float64(t) / float64(max(a.nTrain-1, 1)) // scaled time
	row[0] = 1
	row[1] = ts
	k := 2
	for _, cp := range a.cpTimes {
		if ts > cp {
			row[k] = ts - cp
		} else {
			row[k] = 0
		}
		k++
	}
	nd := 2 * a.cfg.DailyOrder
	copy(row[k:k+nd], a.dayTab[(t%a.ppd)*nd:(t%a.ppd+1)*nd])
	k += nd
	week := 2 * math.Pi * float64(t%(7*a.ppd)) / float64(7*a.ppd)
	for o := 1; o <= a.cfg.WeeklyOrder; o++ {
		row[k] = math.Sin(float64(o) * week)
		row[k+1] = math.Cos(float64(o) * week)
		k += 2
	}
}

// buildDayTable fills the slot-of-day Fourier table with exactly the
// expressions features historically evaluated per row.
func (a *Additive) buildDayTable() {
	nd := 2 * a.cfg.DailyOrder
	if cap(a.dayTab) < a.ppd*nd {
		a.dayTab = make([]float64, a.ppd*nd)
	}
	a.dayTab = a.dayTab[:a.ppd*nd]
	for s := 0; s < a.ppd; s++ {
		day := 2 * math.Pi * float64(s) / float64(a.ppd)
		row := a.dayTab[s*nd : (s+1)*nd]
		k := 0
		for o := 1; o <= a.cfg.DailyOrder; o++ {
			row[k] = math.Sin(float64(o) * day)
			row[k+1] = math.Cos(float64(o) * day)
			k += 2
		}
	}
}

// Train implements Model: gradient descent on the ridge-penalized MSE of the
// additive design.
func (a *Additive) Train(history timeseries.Series) error {
	h, err := prepare(history, 2)
	if err != nil {
		return err
	}
	ppd := h.PointsPerDay()
	if h.NumDays() > a.cfg.TrainDays {
		h, err = h.Slice(h.Len()-a.cfg.TrainDays*ppd, h.Len())
		if err != nil {
			return err
		}
	}
	a.ppd = ppd
	a.nTrain = h.Len()
	a.interval = h.Interval
	a.end = h.End()
	// Re-seed so a reused (worker-arena) model draws the same Monte-Carlo
	// trajectories a fresh instance would; a single New→Train→Forecast pass
	// is unaffected because Train never consumes the stream.
	a.rng.Seed(a.cfg.Seed ^ 0x9a0ff37)

	if cap(a.cpTimes) < a.cfg.Changepoints {
		a.cpTimes = make([]float64, a.cfg.Changepoints)
	}
	a.cpTimes = a.cpTimes[:a.cfg.Changepoints]
	for i := range a.cpTimes {
		a.cpTimes[i] = 0.8 * float64(i+1) / float64(a.cfg.Changepoints+1)
	}
	a.buildDayTable()

	p := a.featureDim()
	n := a.nTrain
	// Materialize the design once into the retained buffer; n×p is small
	// enough (≤ ~4032×50) but dominated the allocation profile when it was
	// rebuilt fresh for every server.
	if cap(a.designBuf) < n*p {
		a.designBuf = make([]float64, n*p)
	}
	design := a.designBuf[:n*p]
	for t := 0; t < n; t++ {
		a.features(design[t*p:(t+1)*p], t)
	}
	if cap(a.yBuf) < n {
		a.yBuf = make([]float64, n)
	}
	y := a.yBuf[:n]
	for i, v := range h.Values {
		y[i] = v / 100
	}

	// Gradient descent in Gram form: the least-squares gradient
	// Σ_t (row_t·β − y_t)·row_t equals Gβ − c with G = AᵀA and c = Aᵀy, so
	// each iteration costs p² instead of 2·n·p once G and c are accumulated —
	// a ~40× flop reduction at the default shapes. G is built by the
	// linalg fast path without materializing Aᵀ.
	dm := &linalg.Matrix{Rows: n, Cols: p, Data: design}
	if cap(a.gramBuf) < p*p {
		a.gramBuf = make([]float64, p*p)
	}
	gram := &linalg.Matrix{Rows: p, Cols: p, Data: a.gramBuf[:p*p]}
	if err := linalg.MulTransposedInto(gram, dm); err != nil {
		return err
	}
	if cap(a.cBuf) < p {
		a.cBuf = make([]float64, p)
	}
	c := a.cBuf[:p]
	clear(c)
	for t := 0; t < n; t++ {
		row := design[t*p : (t+1)*p]
		yt := y[t]
		for j, v := range row {
			c[j] += v * yt
		}
	}

	if cap(a.beta) < p {
		a.beta = make([]float64, p)
	}
	beta := a.beta[:p]
	clear(beta)
	if cap(a.gradBuf) < p {
		a.gradBuf = make([]float64, p)
	}
	grad := a.gradBuf[:p]
	lr := a.cfg.LearningRate
	for it := 0; it < a.cfg.Iterations; it++ {
		for j := 0; j < p; j++ {
			row := gram.Data[j*p : (j+1)*p]
			s := 0.0
			for k, b := range beta {
				s += row[k] * b
			}
			grad[j] = s - c[j]
		}
		inv := 1 / float64(n)
		for j := range beta {
			g := grad[j] * inv
			if j > 0 {
				g += a.cfg.Ridge * beta[j] * inv
			}
			beta[j] -= lr * g
		}
	}
	a.beta = beta

	// Residual std for Monte-Carlo noise, and the fitted slope deltas for
	// future changepoint sampling (Prophet's trend uncertainty).
	sse := 0.0
	for t := 0; t < n; t++ {
		row := design[t*p : (t+1)*p]
		s := 0.0
		for j, b := range beta {
			s += b * row[j]
		}
		d := s - y[t]
		sse += d * d
	}
	a.residual = math.Sqrt(sse / float64(n))
	a.cpGrowth = append(a.cpGrowth[:0], beta[2:2+a.cfg.Changepoints]...)
	a.trained = true
	return nil
}

// Forecast implements Model: the mean of Samples Monte-Carlo trajectories.
// Each trajectory evaluates the fitted model over the horizon, adds sampled
// future trend changes (Laplace-distributed with the scale of the fitted
// changepoint magnitudes, as Prophet does) and observation noise.
func (a *Additive) Forecast(horizon int) (timeseries.Series, error) {
	if !a.trained {
		return timeseries.Series{}, ErrNotTrained
	}
	if horizon <= 0 {
		return timeseries.Series{}, fmt.Errorf("forecast: non-positive horizon %d", horizon)
	}
	p := a.featureDim()
	// Point component of each future observation is shared by all samples.
	if cap(a.pointBuf) < horizon {
		a.pointBuf = make([]float64, horizon)
	}
	point := a.pointBuf[:horizon]
	if cap(a.rowBuf) < p {
		a.rowBuf = make([]float64, p)
	}
	row := a.rowBuf[:p]
	for i := 0; i < horizon; i++ {
		a.features(row, a.nTrain+i)
		s := 0.0
		for j, b := range a.beta {
			s += b * row[j]
		}
		point[i] = s
	}

	// Laplace scale of historic slope changes drives trend uncertainty.
	scale := 0.0
	for _, g := range a.cpGrowth {
		scale += math.Abs(g)
	}
	if len(a.cpGrowth) > 0 {
		scale /= float64(len(a.cpGrowth))
	}

	if cap(a.accBuf) < horizon {
		a.accBuf = make([]float64, horizon)
	}
	acc := a.accBuf[:horizon]
	clear(acc)
	for s := 0; s < a.cfg.Samples; s++ {
		// Sample one future changepoint location and slope delta.
		cpAt := a.rng.Intn(horizon + 1)
		delta := laplace(a.rng, scale)
		for i := 0; i < horizon; i++ {
			v := point[i]
			if i >= cpAt {
				v += delta * float64(i-cpAt) / float64(max(a.nTrain-1, 1))
			}
			v += a.rng.NormFloat64() * a.residual
			acc[i] += v
		}
	}
	out := make([]float64, horizon)
	inv := 1 / float64(a.cfg.Samples)
	for i := range out {
		out[i] = math.Min(math.Max(acc[i]*inv*100, 0), 100)
	}
	return timeseries.New(a.end, a.interval, out), nil
}

// laplace draws a Laplace(0, b) variate.
func laplace(rng *rand.Rand, b float64) float64 {
	u := rng.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}
