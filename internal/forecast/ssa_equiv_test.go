package forecast

import (
	"math"
	"testing"

	"seagull/internal/timeseries"
)

// Equivalence tests for the SSA fast paths added for the figure-benchmark
// floor: the randomized range-finder SVD must reproduce the exact Jacobi
// forecasts to ≤1e-6, and a reused (retrained) model must match a fresh one
// bit for bit.

func ssaTestSeries(seed int64, days int) timeseries.Series {
	return mkDays(days, dailyShape(seed))
}

func maxAbsDiff(a, b timeseries.Series) float64 {
	d := 0.0
	for i := range a.Values {
		if v := math.Abs(a.Values[i] - b.Values[i]); v > d {
			d = v
		}
	}
	return d
}

func TestSSARandomizedMatchesJacobi(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		hist := ssaTestSeries(seed, 7)
		exact, err := PredictDay(NewSSA(SSAConfig{}), hist)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := PredictDay(NewSSA(SSAConfig{RandomizedSVD: true}), hist)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Len() != approx.Len() {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		if d := maxAbsDiff(exact, approx); d > 1e-6 {
			t.Errorf("seed %d: randomized SVD forecast deviates by %.2e (> 1e-6)", seed, d)
		}
	}
}

func TestSSARandomizedOnStableLoad(t *testing.T) {
	// Near-rank-one spectra exercise the zero-triple drop path.
	hist := mkDays(7, func(d, s int) float64 { return 42 })
	exact, err := PredictDay(NewSSA(SSAConfig{}), hist)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := PredictDay(NewSSA(SSAConfig{RandomizedSVD: true}), hist)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(exact, approx); d > 1e-6 {
		t.Errorf("stable load: randomized SVD forecast deviates by %.2e", d)
	}
}

// TestSSARetrainMatchesFresh pins the worker-arena contract: a model that
// already trained on one server and is then retrained on another must
// produce exactly the forecast a fresh model would, i.e. no state may leak
// through the retained scratch buffers.
func TestSSARetrainMatchesFresh(t *testing.T) {
	for _, cfg := range []SSAConfig{{}, {RandomizedSVD: true}} {
		reused := NewSSA(cfg)
		if _, err := PredictDay(reused, ssaTestSeries(11, 7)); err != nil {
			t.Fatal(err)
		}
		// Second server: shorter history so every scratch buffer shrinks.
		hist := ssaTestSeries(12, 5)
		predReused, err := PredictDay(reused, hist)
		if err != nil {
			t.Fatal(err)
		}
		predFresh, err := PredictDay(NewSSA(cfg), hist)
		if err != nil {
			t.Fatal(err)
		}
		for i := range predFresh.Values {
			if predReused.Values[i] != predFresh.Values[i] {
				t.Fatalf("cfg %+v: retrained model diverges from fresh at %d", cfg, i)
			}
		}
	}
}

// TestSSALargeWindowSmallHistory exercises the K < L trajectory shape, where
// the tail anti-diagonals are K-term sums rather than (N-t)-term sums.
func TestSSALargeWindowSmallHistory(t *testing.T) {
	hist := ssaTestSeries(13, 3)
	for _, cfg := range []SSAConfig{{WindowDays: 2}, {WindowDays: 2, RandomizedSVD: true}} {
		pred, err := PredictDay(NewSSA(cfg), hist)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if pred.Len() != 288 {
			t.Fatalf("cfg %+v: forecast len %d", cfg, pred.Len())
		}
		for i, v := range pred.Values {
			if v < 0 || v > 100 || math.IsNaN(v) {
				t.Fatalf("cfg %+v: forecast[%d] = %v", cfg, i, v)
			}
		}
	}
}
