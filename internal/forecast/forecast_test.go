package forecast

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"seagull/internal/metrics"
	"seagull/internal/timeseries"
)

var t0 = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)

// mkDays builds a 5-minute series from a per-(day,slot) function.
func mkDays(days int, f func(day, slot int) float64) timeseries.Series {
	const ppd = 288
	vals := make([]float64, days*ppd)
	for d := 0; d < days; d++ {
		for s := 0; s < ppd; s++ {
			vals[d*ppd+s] = f(d, s)
		}
	}
	return timeseries.New(t0, 5*time.Minute, vals)
}

// dailyShape is a noisy business-hours bump repeated every day.
func dailyShape(seed int64) func(day, slot int) float64 {
	rng := rand.New(rand.NewSource(seed))
	return func(day, slot int) float64 {
		v := 10.0
		if slot >= 96 && slot < 192 {
			v = 60
		}
		return v + rng.NormFloat64()
	}
}

func bucketRatioVs(t *testing.T, trueDay, pred timeseries.Series) float64 {
	t.Helper()
	r, err := metrics.BucketRatio(trueDay, pred, metrics.DefaultBound)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// --- Persistent forecast ---

func TestPersistentPrevDay(t *testing.T) {
	hist := mkDays(7, dailyShape(1))
	m := NewPersistent(PrevDay)
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Len() != 288 {
		t.Fatalf("forecast len = %d", pred.Len())
	}
	if !pred.Start.Equal(hist.End()) {
		t.Errorf("forecast start = %v, want %v", pred.Start, hist.End())
	}
	// Forecast equals the last day of history.
	last, _ := hist.Day(6)
	for i := range pred.Values {
		if pred.Values[i] != last.Values[i] {
			t.Fatalf("prev-day forecast differs at %d", i)
		}
	}
}

func TestPersistentPrevDayMultiDayHorizon(t *testing.T) {
	hist := mkDays(3, dailyShape(2))
	m := NewPersistent(PrevDay)
	if err := m.Train(hist); err != nil {
		t.Fatal(err)
	}
	pred, err := m.Forecast(2 * 288)
	if err != nil {
		t.Fatal(err)
	}
	// Both forecast days replicate the last history day.
	for i := 0; i < 288; i++ {
		if pred.Values[i] != pred.Values[i+288] {
			t.Fatalf("cyclic replication broken at %d", i)
		}
	}
}

func TestPersistentPrevEquivalentDay(t *testing.T) {
	// Weekly pattern: weekday amplitude depends on day-of-week.
	amp := [7]float64{5, 60, 30, 60, 30, 60, 10}
	hist := mkDays(14, func(d, s int) float64 {
		v := 8.0
		if s >= 96 && s < 192 {
			v += amp[d%7]
		}
		return v
	})
	m := NewPersistent(PrevEquivalentDay)
	pred, err := PredictDay(m, hist) // predicts day 14, a Sunday (d%7==0)
	if err != nil {
		t.Fatal(err)
	}
	day7, _ := hist.Day(7) // previous equivalent day
	for i := range pred.Values {
		if pred.Values[i] != day7.Values[i] {
			t.Fatalf("prev-equivalent-day forecast differs at %d", i)
		}
	}
	// Sanity: prev-day would have used Saturday (amp 10) instead.
	mPrev := NewPersistent(PrevDay)
	predPrev, err := PredictDay(mPrev, hist)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range pred.Values {
		diff += math.Abs(pred.Values[i] - predPrev.Values[i])
	}
	if diff == 0 {
		t.Error("prev-day and prev-equivalent-day should differ on weekly data")
	}
}

func TestPersistentWeekAverage(t *testing.T) {
	hist := mkDays(7, func(d, s int) float64 { return 30 })
	m := NewPersistent(PrevWeekAverage)
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pred.Values {
		if math.Abs(v-30) > 1e-9 {
			t.Fatalf("week-average forecast[%d] = %v", i, v)
		}
	}
}

func TestPersistentNeedsHistory(t *testing.T) {
	short := mkDays(3, dailyShape(3))
	if err := NewPersistent(PrevEquivalentDay).Train(short); !errors.Is(err, ErrNeedHistory) {
		t.Errorf("prev-equivalent-day with 3 days: err = %v", err)
	}
	if err := NewPersistent(PrevWeekAverage).Train(short); !errors.Is(err, ErrNeedHistory) {
		t.Errorf("week-average with 3 days: err = %v", err)
	}
	if err := NewPersistent(PrevDay).Train(short); err != nil {
		t.Errorf("prev-day with 3 days should train: %v", err)
	}
}

func TestForecastBeforeTrain(t *testing.T) {
	models := []Model{
		NewPersistent(PrevDay), NewSSA(SSAConfig{}), NewFFNN(FFNNConfig{}),
		NewAdditive(AdditiveConfig{}), NewARIMA(ARIMAConfig{}),
	}
	for _, m := range models {
		if _, err := m.Forecast(288); !errors.Is(err, ErrNotTrained) {
			t.Errorf("%s: Forecast before Train = %v, want ErrNotTrained", m.Name(), err)
		}
	}
}

func TestNonPositiveHorizon(t *testing.T) {
	hist := mkDays(7, dailyShape(4))
	m := NewPersistent(PrevDay)
	if err := m.Train(hist); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err == nil {
		t.Error("zero horizon should error")
	}
	if _, err := m.Forecast(-5); err == nil {
		t.Error("negative horizon should error")
	}
}

// --- SSA ---

func TestSSAOnDailyPattern(t *testing.T) {
	hist := mkDays(7, dailyShape(5))
	trueNext := mkDays(8, dailyShape(5)) // same generator, day 7 is the target
	target, _ := trueNext.Day(7)

	m := NewSSA(SSAConfig{})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Len() != 288 {
		t.Fatalf("forecast len = %d", pred.Len())
	}
	r := bucketRatioVs(t, target, pred)
	if r < 0.85 {
		t.Errorf("SSA bucket ratio on daily pattern = %.3f, want ≥ 0.85", r)
	}
}

func TestSSAOnStableLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hist := mkDays(7, func(d, s int) float64 { return 40 + rng.NormFloat64() })
	m := NewSSA(SSAConfig{})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.Mean()-40) > 5 {
		t.Errorf("SSA mean on stable load = %.2f, want ≈ 40", pred.Mean())
	}
}

func TestSSAForecastBounded(t *testing.T) {
	hist := mkDays(7, dailyShape(7))
	m := NewSSA(SSAConfig{})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pred.Values {
		if v < 0 || v > 100 {
			t.Fatalf("SSA forecast[%d] = %v out of [0,100]", i, v)
		}
	}
}

func TestSSANeedsHistory(t *testing.T) {
	short := mkDays(1, dailyShape(8))
	if err := NewSSA(SSAConfig{}).Train(short); !errors.Is(err, ErrNeedHistory) {
		t.Errorf("err = %v", err)
	}
}

// --- FFNN ---

func TestFFNNOnDailyPattern(t *testing.T) {
	hist := mkDays(14, dailyShape(9))
	trueNext := mkDays(15, dailyShape(9))
	target, _ := trueNext.Day(14)

	m := NewFFNN(FFNNConfig{Seed: 1})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	r := bucketRatioVs(t, target, pred)
	if r < 0.8 {
		t.Errorf("FFNN bucket ratio on daily pattern = %.3f, want ≥ 0.8", r)
	}
	for i, v := range pred.Values {
		if v < 0 || v > 100 {
			t.Fatalf("FFNN forecast[%d] = %v out of [0,100]", i, v)
		}
	}
}

func TestFFNNDeterministicGivenSeed(t *testing.T) {
	hist := mkDays(7, dailyShape(10))
	p1, err := PredictDay(NewFFNN(FFNNConfig{Seed: 7}), hist)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PredictDay(NewFFNN(FFNNConfig{Seed: 7}), hist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Values {
		if p1.Values[i] != p2.Values[i] {
			t.Fatalf("same seed diverges at %d", i)
		}
	}
}

func TestFFNNNeedsHistory(t *testing.T) {
	short := mkDays(2, dailyShape(11))
	if err := NewFFNN(FFNNConfig{}).Train(short); !errors.Is(err, ErrNeedHistory) {
		t.Errorf("err = %v", err)
	}
}

// --- Additive (Prophet analog) ---

func TestAdditiveOnDailyPattern(t *testing.T) {
	hist := mkDays(14, dailyShape(12))
	trueNext := mkDays(15, dailyShape(12))
	target, _ := trueNext.Day(14)

	m := NewAdditive(AdditiveConfig{Seed: 1, Iterations: 400, Samples: 300})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	r := bucketRatioVs(t, target, pred)
	if r < 0.6 {
		t.Errorf("additive bucket ratio on daily pattern = %.3f, want ≥ 0.6", r)
	}
	for i, v := range pred.Values {
		if v < 0 || v > 100 {
			t.Fatalf("additive forecast[%d] = %v out of [0,100]", i, v)
		}
	}
}

func TestAdditiveCapturesWeeklySeasonality(t *testing.T) {
	// Low Sundays, high weekdays; target day is a Sunday.
	amp := [7]float64{0, 50, 50, 50, 50, 50, 10}
	hist := mkDays(14, func(d, s int) float64 {
		return 10 + amp[d%7]*0.5*(1+math.Sin(2*math.Pi*float64(s)/288))
	})
	m := NewAdditive(AdditiveConfig{Seed: 2, Iterations: 600, Samples: 200})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	// Sunday forecast should be much lower than the weekday average.
	weekday, _ := hist.Day(8)
	if pred.Mean() > weekday.Mean()-10 {
		t.Errorf("Sunday forecast mean %.1f should undercut weekday mean %.1f",
			pred.Mean(), weekday.Mean())
	}
}

// --- ARIMA ---

func TestARIMAOnDailyPattern(t *testing.T) {
	hist := mkDays(7, dailyShape(13))
	trueNext := mkDays(8, dailyShape(13))
	target, _ := trueNext.Day(7)

	m := NewARIMA(ARIMAConfig{MaxP: 1, MaxQ: 1, SearchBudget: 60})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() == "" {
		t.Error("order should be recorded after training")
	}
	r := bucketRatioVs(t, target, pred)
	if r < 0.6 {
		t.Errorf("ARIMA bucket ratio on daily pattern = %.3f, want ≥ 0.6 (order %s)", r, m.Order())
	}
	for i, v := range pred.Values {
		if v < 0 || v > 100 {
			t.Fatalf("ARIMA forecast[%d] = %v out of [0,100]", i, v)
		}
	}
}

func TestARIMAOnStableLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	hist := mkDays(7, func(d, s int) float64 { return 35 + rng.NormFloat64() })
	m := NewARIMA(ARIMAConfig{MaxP: 1, MaxQ: 1, SearchBudget: 40})
	pred, err := PredictDay(m, hist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred.Mean()-35) > 6 {
		t.Errorf("ARIMA mean on stable load = %.2f, want ≈ 35 (order %s)", pred.Mean(), m.Order())
	}
}

func TestARIMASelectsByAIC(t *testing.T) {
	hist := mkDays(7, dailyShape(15))
	m := NewARIMA(ARIMAConfig{MaxP: 1, MaxQ: 1, SearchBudget: 40})
	if err := m.Train(hist); err != nil {
		t.Fatal(err)
	}
	if math.IsInf(m.AIC(), 1) || m.AIC() == 0 {
		t.Errorf("AIC = %v, should be finite and set", m.AIC())
	}
}

func TestDifferenceHelpers(t *testing.T) {
	x := []float64{1, 4, 9, 16, 25}
	d1 := difference(x, 1)
	want := []float64{3, 5, 7, 9}
	for i := range want {
		if d1[i] != want[i] {
			t.Fatalf("difference[%d] = %v", i, d1[i])
		}
	}
	if difference([]float64{1}, 2) != nil {
		t.Error("over-long lag should return nil")
	}
	// integrate inverts difference.
	back := integrate(d1, []float64{1}, 1)
	for i := range back {
		if math.Abs(back[i]-x[i+1]) > 1e-12 {
			t.Fatalf("integrate[%d] = %v, want %v", i, back[i], x[i+1])
		}
	}
}

func TestSeasonalDifferenceRoundTrip(t *testing.T) {
	x := []float64{1, 2, 3, 10, 20, 30, 100, 200, 300}
	season := 3
	z := differenceAll(x, 0, 1, season)
	if len(z) != 6 {
		t.Fatalf("seasonal diff len = %d", len(z))
	}
	back := integrateSeasonal(z, x[:3], season, 1)
	for i := range back {
		if math.Abs(back[i]-x[i+3]) > 1e-12 {
			t.Fatalf("seasonal integrate[%d] = %v, want %v", i, back[i], x[i+3])
		}
	}
}

// --- Factory & helpers ---

func TestNewByName(t *testing.T) {
	for _, name := range append(StandardNames, NamePersistentPrevWeek, NamePersistentWeekAvg, NameARIMA) {
		m, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := New("nope", 1); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown model err = %v", err)
	}
}

func TestExpand(t *testing.T) {
	coarse := timeseries.New(t0, 30*time.Minute, []float64{1, 2})
	fine := expand(coarse, 6, 5*time.Minute, 12)
	if fine.Len() != 12 {
		t.Fatalf("expanded len = %d", fine.Len())
	}
	for i := 0; i < 6; i++ {
		if fine.Values[i] != 1 || fine.Values[i+6] != 2 {
			t.Fatalf("expansion wrong at %d", i)
		}
	}
	// Truncation.
	fine = expand(coarse, 6, 5*time.Minute, 7)
	if fine.Len() != 7 || fine.Values[6] != 2 {
		t.Fatalf("truncated expansion = %+v", fine.Values)
	}
	// Padding.
	fine = expand(coarse, 6, 5*time.Minute, 15)
	if fine.Len() != 15 || fine.Values[14] != 2 {
		t.Fatalf("padded expansion = %+v", fine.Values)
	}
}

func TestPredictDayStartsAtHistoryEnd(t *testing.T) {
	hist := mkDays(7, dailyShape(16))
	for _, name := range StandardNames {
		m, err := New(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if name == NameAdditive {
			m = NewAdditive(AdditiveConfig{Seed: 3, Iterations: 100, Samples: 50})
		}
		pred, err := PredictDay(m, hist)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !pred.Start.Equal(hist.End()) {
			t.Errorf("%s forecast starts at %v, want %v", name, pred.Start, hist.End())
		}
		if pred.Len() != 288 {
			t.Errorf("%s forecast len = %d", name, pred.Len())
		}
		if pred.Interval != hist.Interval {
			t.Errorf("%s forecast interval = %v", name, pred.Interval)
		}
	}
}

// The headline comparison of Section 5: on servers with recognizable
// patterns, the ML models do not significantly beat persistent forecast.
func TestPersistentCompetitiveOnDailyPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	gen := dailyShape(17)
	hist := mkDays(14, gen)
	full := mkDays(15, gen)
	target, _ := full.Day(14)

	ratios := map[string]float64{}
	models := []Model{
		NewPersistent(PrevDay),
		NewSSA(SSAConfig{}),
		NewFFNN(FFNNConfig{Seed: 5}),
	}
	for _, m := range models {
		pred, err := PredictDay(m, hist)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		ratios[m.Name()] = bucketRatioVs(t, target, pred)
	}
	pf := ratios[NamePersistentPrevDay]
	for name, r := range ratios {
		if r > pf+0.1 {
			t.Errorf("%s ratio %.3f dramatically beats persistent forecast %.3f — "+
				"pattern servers should be equally easy for PF", name, r, pf)
		}
	}
	if pf < 0.9 {
		t.Errorf("persistent forecast ratio on daily pattern = %.3f, want ≥ 0.9", pf)
	}
}
