// Package forecast implements the time-series forecasting model zoo of
// Section 5.1: persistent forecast (three variants), a singular spectrum
// analysis forecaster (the NimbusML analog), a feed-forward neural network
// (the GluonTS simple feed-forward analog), an additive trend+seasonality
// model (the Prophet analog) and seasonal ARIMA.
//
// Any model can be plugged into the Seagull pipeline through the Model
// interface (Section 2.1's modularity principle).
//
// Concurrency: a Model is NOT safe for concurrent use — models retain
// scratch buffers, weights and RNG state across Train calls precisely so
// repeated training is allocation-lean; give each goroutine its own
// instance (the serving pool and the experiment worker arenas do).
// Equivalence guarantees, all pinned by *_equiv_test.go: retraining a
// retained model equals training a fresh one bit for bit; the fast paths
// (SSA randomized SVD, FFNN minibatching) are opt-in and pinned against the
// exact/historical loops; models advertising InferenceDeterministic produce
// identical forecasts from identical trained state, which lets servers skip
// retrains on byte-identical histories.
package forecast

import (
	"errors"
	"fmt"
	"time"

	"seagull/internal/timeseries"
)

// Common errors returned by models.
var (
	ErrNotTrained  = errors.New("forecast: model not trained")
	ErrNeedHistory = errors.New("forecast: insufficient history")
	ErrUnknown     = errors.New("forecast: unknown model")
)

// Model is a per-server load forecaster. Train fits the model on a history
// series; Forecast then predicts the next horizon observations immediately
// following the training history, at the history's sampling interval.
//
// Implementations are single-server and not safe for concurrent use; the
// pipeline runs one model instance per server partition.
type Model interface {
	// Name identifies the model in experiment output and the registry.
	Name() string
	// Train fits the model. It returns ErrNeedHistory when the series is too
	// short for the model's requirements.
	Train(history timeseries.Series) error
	// Forecast predicts the next horizon observations after the end of the
	// training history. It returns ErrNotTrained before a successful Train.
	Forecast(horizon int) (timeseries.Series, error)
}

// InferenceDeterministic is an optional Model extension. Implementations
// whose DeterministicInference returns true guarantee that Forecast is a
// pure function of the state established by the last successful Train:
// repeated Forecast calls return identical series and consume no internal
// randomness. The serving layer's warm model pool relies on this to skip
// retraining an instance whose last trained history is bit-identical to the
// incoming one. The additive model does NOT implement it: its inference
// draws Monte-Carlo trajectories from the model RNG, which only Train
// re-seeds.
type InferenceDeterministic interface {
	DeterministicInference() bool
}

// PredictDay trains m on history and forecasts the full day immediately
// following it — the "predict customer load per server 24h into the future"
// operation the paper's pipeline performs.
func PredictDay(m Model, history timeseries.Series) (timeseries.Series, error) {
	if err := m.Train(history); err != nil {
		return timeseries.Series{}, err
	}
	ppd := history.PointsPerDay()
	if ppd == 0 {
		return timeseries.Series{}, timeseries.ErrBadInterval
	}
	return m.Forecast(ppd)
}

// Standard model names used by the registry, experiments and the paper's
// figures (Figure 11 abbreviates them PF, N, G, P).
const (
	NamePersistentPrevDay  = "pf-prev-day"
	NamePersistentPrevWeek = "pf-prev-equivalent-day"
	NamePersistentWeekAvg  = "pf-prev-week-average"
	NameSSA                = "nimbus-ssa"
	NameFFNN               = "gluon-ffnn"
	NameAdditive           = "prophet-additive"
	NameARIMA              = "arima"
)

// StandardNames lists every model the experiments compare, in the order the
// paper's figures present them.
var StandardNames = []string{
	NamePersistentPrevDay,
	NameSSA,
	NameFFNN,
	NameAdditive,
}

// New builds a model by registry name with production-default configuration.
// seed drives any stochastic elements (the neural network's initialization
// and the additive model's uncertainty sampling).
func New(name string, seed int64) (Model, error) {
	switch name {
	case NamePersistentPrevDay:
		return NewPersistent(PrevDay), nil
	case NamePersistentPrevWeek:
		return NewPersistent(PrevEquivalentDay), nil
	case NamePersistentWeekAvg:
		return NewPersistent(PrevWeekAverage), nil
	case NameSSA:
		return NewSSA(SSAConfig{}), nil
	case NameFFNN:
		return NewFFNN(FFNNConfig{Seed: seed}), nil
	case NameAdditive:
		return NewAdditive(AdditiveConfig{Seed: seed}), nil
	case NameARIMA:
		return NewARIMA(ARIMAConfig{}), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
}

// prepare fills gaps and validates that history has at least minDays whole
// days; models call it at the top of Train.
func prepare(history timeseries.Series, minDays int) (timeseries.Series, error) {
	ppd := history.PointsPerDay()
	if ppd == 0 {
		return timeseries.Series{}, timeseries.ErrBadInterval
	}
	if history.NumDays() < minDays {
		return timeseries.Series{}, fmt.Errorf("%w: have %d days, need %d",
			ErrNeedHistory, history.NumDays(), minDays)
	}
	return history.FillGaps(), nil
}

// resampleTo coarsens history to the target interval for models that operate
// at a coarser granularity, returning the series and the expansion factor
// back to the original interval. History already at or coarser than the
// target granularity is used as-is.
func resampleTo(history timeseries.Series, target time.Duration) (timeseries.Series, int, error) {
	if history.Interval < target {
		coarse, err := history.Resample(target)
		if err != nil {
			return timeseries.Series{}, 0, err
		}
		return coarse, int(target / history.Interval), nil
	}
	return history, 1, nil
}

// expand stretches a coarse forecast back to a fine interval by repeating
// each coarse observation factor times (piecewise-constant upsampling).
func expand(coarse timeseries.Series, factor int, fineInterval time.Duration, horizon int) timeseries.Series {
	vals := make([]float64, 0, coarse.Len()*factor)
	for _, v := range coarse.Values {
		for k := 0; k < factor; k++ {
			vals = append(vals, v)
		}
	}
	if len(vals) > horizon {
		vals = vals[:horizon]
	}
	for len(vals) < horizon {
		// Degenerate rounding case: pad with the final level.
		last := 0.0
		if len(vals) > 0 {
			last = vals[len(vals)-1]
		}
		vals = append(vals, last)
	}
	return timeseries.New(coarse.Start, fineInterval, vals)
}
