package forecast

import (
	"fmt"
	"time"

	"seagull/internal/linalg"
	"seagull/internal/timeseries"
)

// SSAConfig configures the singular spectrum analysis forecaster — the
// stand-in for NimbusML's SsaForecaster (Section 5.1), which the paper uses
// "to transform forecasts".
type SSAConfig struct {
	// WindowDays is the SSA embedding window expressed in days; the window
	// must cover the longest period to be captured, so ≥ 1. Default 1 (one day).
	WindowDays int
	// Rank is the number of leading singular triples kept for reconstruction
	// and forecasting. Low ranks smooth harder, which both stabilizes the
	// recurrence on noisy servers and markedly improves low-load-window
	// accuracy (see the SSA sweep in EXPERIMENTS.md). Default 8.
	Rank int
	// Granularity is the internal sampling interval: SSA runs on a coarsened
	// copy of the series and the forecast is expanded back, which keeps the
	// trajectory-matrix SVD cheap. Default 30 minutes.
	Granularity time.Duration
	// TrainDays limits how much trailing history is used. Default 7.
	TrainDays int
	// RandomizedSVD switches the trajectory-matrix decomposition to the
	// seeded randomized range-finder SVD, which extracts only the Rank
	// leading triples from a Rank+Oversample sketch of the window-side Gram
	// matrix instead of running full Jacobi sweeps over every column pair.
	// At the default sketch settings the resulting forecasts match the exact
	// decomposition to ≤1e-6 (see TestSSARandomizedMatchesJacobi) at a
	// fraction of the cost. Default false (exact Jacobi).
	RandomizedSVD bool
	// Oversample is the number of extra sketch columns beyond Rank when
	// RandomizedSVD is set. The default is deliberately deep (24): it pushes
	// the sketch boundary below the noise shelf of load spectra, which is
	// what lets the subspace iteration resolve the trailing kept triples to
	// forecasting tolerance. Default 24.
	Oversample int
	// PowerIters is the number of subspace-iteration rounds sharpening the
	// randomized sketch. Default 6.
	PowerIters int
	// Seed drives the randomized range finder's Gaussian test matrix; the
	// decomposition is deterministic for a fixed seed. Default 0.
	Seed int64
}

func (c SSAConfig) withDefaults() SSAConfig {
	if c.WindowDays == 0 {
		c.WindowDays = 1
	}
	if c.Rank == 0 {
		c.Rank = 12
	}
	if c.Granularity == 0 {
		c.Granularity = 30 * time.Minute
	}
	if c.TrainDays == 0 {
		c.TrainDays = 7
	}
	if c.Oversample == 0 {
		c.Oversample = 24
	}
	if c.PowerIters == 0 {
		c.PowerIters = 6
	}
	return c
}

// SSA is a singular-spectrum-analysis forecaster: it embeds the series into
// a Hankel trajectory matrix, keeps the leading singular triples, and
// forecasts with the linear recurrence formula derived from the signal
// subspace (recurrent SSA forecasting).
//
// An SSA instance may be retrained on fresh histories; the trajectory
// matrix, SVD working set and coefficient buffers are retained between Train
// calls, so a model reused as a per-worker arena across many servers
// allocates almost nothing after the first fit.
type SSA struct {
	cfg SSAConfig

	trained      bool
	fineInterval time.Duration
	factor       int       // coarse→fine expansion
	coeffs       []float64 // linear recurrence coefficients a_1..a_{L-1}
	tail         []float64 // last L-1 reconstructed values, oldest first
	end          time.Time // end of training history (fine granularity)

	// Reused training scratch.
	hankelBuf  []float64
	ucol, vcol []float64
	svdScratch linalg.SVDScratch
}

// NewSSA returns an SSA forecaster with cfg (zero fields take defaults).
func NewSSA(cfg SSAConfig) *SSA { return &SSA{cfg: cfg.withDefaults()} }

// DeterministicInference implements InferenceDeterministic: the linear
// recurrence consumes only the coefficients and tail Train established.
func (s *SSA) DeterministicInference() bool { return true }

// Name implements Model.
func (s *SSA) Name() string { return NameSSA }

// Train implements Model: decompose the trailing TrainDays of history and
// derive the recurrence coefficients.
func (s *SSA) Train(history timeseries.Series) error {
	h, err := prepare(history, min(s.cfg.TrainDays, 3))
	if err != nil {
		return err
	}
	// Use at most TrainDays of trailing history.
	ppd := h.PointsPerDay()
	if h.NumDays() > s.cfg.TrainDays {
		h, err = h.Slice(h.Len()-s.cfg.TrainDays*ppd, h.Len())
		if err != nil {
			return err
		}
	}
	coarse, factor, err := resampleTo(h, s.cfg.Granularity)
	if err != nil {
		return err
	}
	coarse = coarse.FillGaps()
	x := coarse.Values
	cppd := coarse.PointsPerDay()
	l := s.cfg.WindowDays * cppd
	if l >= len(x) {
		l = len(x) / 2
	}
	if l < 2 {
		return fmt.Errorf("%w: series too short for SSA window", ErrNeedHistory)
	}

	// Embed into the L×K trajectory matrix, filled in scratch.
	k := len(x) - l + 1
	if cap(s.hankelBuf) < l*k {
		s.hankelBuf = make([]float64, l*k)
	}
	hankel := linalg.Matrix{Rows: l, Cols: k, Data: s.hankelBuf[:l*k]}
	for i := 0; i < l; i++ {
		copy(hankel.Data[i*k:(i+1)*k], x[i:i+k])
	}

	var svd *linalg.SVD
	if s.cfg.RandomizedSVD {
		svd, err = linalg.RandomizedSVDScratch(&hankel, s.cfg.Rank,
			s.cfg.Oversample, s.cfg.PowerIters, s.cfg.Seed, &s.svdScratch)
	} else {
		svd, err = linalg.ComputeSVDScratch(&hankel, &s.svdScratch)
	}
	if err != nil {
		return err
	}
	rank := min(s.cfg.Rank, len(svd.S))
	// Drop numerically zero triples.
	for rank > 1 && svd.S[rank-1] < 1e-10*svd.S[0] {
		rank--
	}

	// Recurrent forecasting coefficients. With π_r the last coordinate of
	// each left singular vector and ν² = Σπ_r², the recurrence is
	// x_t = Σ_{j=1}^{L-1} a_j x_{t-j}, a = (1/(1-ν²)) Σ_r π_r U_r^∇.
	nu2 := 0.0
	for r := 0; r < rank; r++ {
		pi := svd.U.At(l-1, r)
		nu2 += pi * pi
	}
	if nu2 >= 1-1e-9 {
		return fmt.Errorf("forecast: SSA verticality coefficient ν²=%.6f too close to 1", nu2)
	}
	if cap(s.coeffs) < l-1 {
		s.coeffs = make([]float64, l-1)
	}
	a := s.coeffs[:l-1] // a[0] multiplies x_{t-1}
	clear(a)
	for r := 0; r < rank; r++ {
		pi := svd.U.At(l-1, r)
		if pi == 0 {
			continue
		}
		for i := 0; i < l-1; i++ {
			// U_r^∇ coordinate i corresponds to lag L-1-i.
			a[l-2-i] += pi * svd.U.At(i, r)
		}
	}
	for i := range a {
		a[i] /= 1 - nu2
	}

	// Forecast seed values: the rank-r signal reconstruction at the last L-1
	// positions only. Position t of the diagonal-averaged signal is
	// (1/cnt_t)·Σ_r σ_r Σ_{i+j=t} U_ir·V_jr with i∈[0,L), j∈[0,K), so the
	// full L×K reconstruction matrix the textbook pipeline materializes is
	// never needed — only the ≤L-term anti-diagonal sums of the final L-1
	// positions.
	if cap(s.tail) < l-1 {
		s.tail = make([]float64, l-1)
	}
	tail := s.tail[:l-1]
	clear(tail)
	if cap(s.ucol) < l {
		s.ucol = make([]float64, l)
	}
	if cap(s.vcol) < k {
		s.vcol = make([]float64, k)
	}
	ucol, vcol := s.ucol[:l], s.vcol[:k]
	for r := 0; r < rank; r++ {
		sr := svd.S[r]
		for i := 0; i < l; i++ {
			ucol[i] = svd.U.At(i, r)
		}
		for j := 0; j < k; j++ {
			vcol[j] = svd.V.At(j, r)
		}
		for idx := range tail {
			t := k + idx
			hi := min(l-1, t)
			acc := 0.0
			for i := t - k + 1; i <= hi; i++ {
				acc += ucol[i] * vcol[t-i]
			}
			tail[idx] += sr * acc
		}
	}
	for idx := range tail {
		t := k + idx
		cnt := min(l-1, t) - (t - k + 1) + 1
		tail[idx] /= float64(cnt)
	}

	s.coeffs = a
	s.tail = tail
	s.factor = factor
	s.fineInterval = h.Interval
	s.end = h.End()
	s.trained = true
	return nil
}

// Forecast implements Model: apply the linear recurrence beyond the end of
// the training history and expand back to the original granularity.
func (s *SSA) Forecast(horizon int) (timeseries.Series, error) {
	if !s.trained {
		return timeseries.Series{}, ErrNotTrained
	}
	if horizon <= 0 {
		return timeseries.Series{}, fmt.Errorf("forecast: non-positive horizon %d", horizon)
	}
	coarseH := (horizon + s.factor - 1) / s.factor
	// Capacity covers every recurrence step: the window slides forward through
	// the buffer (buf = append(buf[1:], v)) without ever reallocating.
	buf := make([]float64, len(s.tail), len(s.tail)+coarseH)
	copy(buf, s.tail)
	out := make([]float64, 0, coarseH)
	for t := 0; t < coarseH; t++ {
		v := 0.0
		for j, aj := range s.coeffs {
			// coeffs[j] multiplies x_{t-(j+1)}: the most recent value is the
			// last element of buf.
			v += aj * buf[len(buf)-1-j]
		}
		// Load percentages live in [0,100]; keep the recurrence from
		// drifting out of the physical range.
		if v < 0 {
			v = 0
		} else if v > 100 {
			v = 100
		}
		out = append(out, v)
		buf = append(buf[1:], v)
	}
	coarse := timeseries.New(s.end, time.Duration(s.factor)*s.fineInterval, out)
	return expand(coarse, s.factor, s.fineInterval, horizon), nil
}
