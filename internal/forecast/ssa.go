package forecast

import (
	"fmt"
	"time"

	"seagull/internal/linalg"
	"seagull/internal/timeseries"
)

// SSAConfig configures the singular spectrum analysis forecaster — the
// stand-in for NimbusML's SsaForecaster (Section 5.1), which the paper uses
// "to transform forecasts".
type SSAConfig struct {
	// WindowDays is the SSA embedding window expressed in days; the window
	// must cover the longest period to be captured, so ≥ 1. Default 1 (one day).
	WindowDays int
	// Rank is the number of leading singular triples kept for reconstruction
	// and forecasting. Low ranks smooth harder, which both stabilizes the
	// recurrence on noisy servers and markedly improves low-load-window
	// accuracy (see the SSA sweep in EXPERIMENTS.md). Default 8.
	Rank int
	// Granularity is the internal sampling interval: SSA runs on a coarsened
	// copy of the series and the forecast is expanded back, which keeps the
	// trajectory-matrix SVD cheap. Default 30 minutes.
	Granularity time.Duration
	// TrainDays limits how much trailing history is used. Default 7.
	TrainDays int
}

func (c SSAConfig) withDefaults() SSAConfig {
	if c.WindowDays == 0 {
		c.WindowDays = 1
	}
	if c.Rank == 0 {
		c.Rank = 12
	}
	if c.Granularity == 0 {
		c.Granularity = 30 * time.Minute
	}
	if c.TrainDays == 0 {
		c.TrainDays = 7
	}
	return c
}

// SSA is a singular-spectrum-analysis forecaster: it embeds the series into
// a Hankel trajectory matrix, keeps the leading singular triples, and
// forecasts with the linear recurrence formula derived from the signal
// subspace (recurrent SSA forecasting).
type SSA struct {
	cfg SSAConfig

	trained      bool
	fineInterval time.Duration
	factor       int       // coarse→fine expansion
	coeffs       []float64 // linear recurrence coefficients a_1..a_{L-1}
	tail         []float64 // last L-1 reconstructed values, oldest first
	end          time.Time // end of training history (fine granularity)
}

// NewSSA returns an SSA forecaster with cfg (zero fields take defaults).
func NewSSA(cfg SSAConfig) *SSA { return &SSA{cfg: cfg.withDefaults()} }

// Name implements Model.
func (s *SSA) Name() string { return NameSSA }

// Train implements Model: decompose the trailing TrainDays of history and
// derive the recurrence coefficients.
func (s *SSA) Train(history timeseries.Series) error {
	h, err := prepare(history, min(s.cfg.TrainDays, 3))
	if err != nil {
		return err
	}
	// Use at most TrainDays of trailing history.
	ppd := h.PointsPerDay()
	if h.NumDays() > s.cfg.TrainDays {
		h, err = h.Slice(h.Len()-s.cfg.TrainDays*ppd, h.Len())
		if err != nil {
			return err
		}
	}
	coarse, factor, err := resampleTo(h, s.cfg.Granularity)
	if err != nil {
		return err
	}
	coarse = coarse.FillGaps()
	x := coarse.Values
	cppd := coarse.PointsPerDay()
	l := s.cfg.WindowDays * cppd
	if l >= len(x) {
		l = len(x) / 2
	}
	if l < 2 {
		return fmt.Errorf("%w: series too short for SSA window", ErrNeedHistory)
	}

	hankel, err := linalg.Hankel(x, l)
	if err != nil {
		return err
	}
	svd, err := linalg.ComputeSVD(hankel)
	if err != nil {
		return err
	}
	rank := min(s.cfg.Rank, len(svd.S))
	// Drop numerically zero triples.
	for rank > 1 && svd.S[rank-1] < 1e-10*svd.S[0] {
		rank--
	}

	// Reconstruct the signal component for the forecast seed values. The
	// rank-r outer products accumulate into one reused matrix; V's column r is
	// gathered once per triple instead of strided At calls in the inner loop.
	recon := linalg.NewMatrix(hankel.Rows, hankel.Cols)
	vcol := make([]float64, hankel.Cols)
	for r := 0; r < rank; r++ {
		for j := 0; j < hankel.Cols; j++ {
			vcol[j] = svd.V.At(j, r)
		}
		for i := 0; i < hankel.Rows; i++ {
			ui := svd.U.At(i, r) * svd.S[r]
			row := recon.Data[i*recon.Cols : (i+1)*recon.Cols]
			for j, v := range vcol {
				row[j] += ui * v
			}
		}
	}
	signal := linalg.DiagonalAverage(recon)

	// Recurrent forecasting coefficients. With π_r the last coordinate of
	// each left singular vector and ν² = Σπ_r², the recurrence is
	// x_t = Σ_{j=1}^{L-1} a_j x_{t-j}, a = (1/(1-ν²)) Σ_r π_r U_r^∇.
	nu2 := 0.0
	for r := 0; r < rank; r++ {
		pi := svd.U.At(l-1, r)
		nu2 += pi * pi
	}
	if nu2 >= 1-1e-9 {
		return fmt.Errorf("forecast: SSA verticality coefficient ν²=%.6f too close to 1", nu2)
	}
	a := make([]float64, l-1) // a[0] multiplies x_{t-1}
	for r := 0; r < rank; r++ {
		pi := svd.U.At(l-1, r)
		if pi == 0 {
			continue
		}
		for i := 0; i < l-1; i++ {
			// U_r^∇ coordinate i corresponds to lag L-1-i.
			a[l-2-i] += pi * svd.U.At(i, r)
		}
	}
	for i := range a {
		a[i] /= 1 - nu2
	}

	s.coeffs = a
	s.tail = append([]float64(nil), signal[len(signal)-(l-1):]...)
	s.factor = factor
	s.fineInterval = h.Interval
	s.end = h.End()
	s.trained = true
	return nil
}

// Forecast implements Model: apply the linear recurrence beyond the end of
// the training history and expand back to the original granularity.
func (s *SSA) Forecast(horizon int) (timeseries.Series, error) {
	if !s.trained {
		return timeseries.Series{}, ErrNotTrained
	}
	if horizon <= 0 {
		return timeseries.Series{}, fmt.Errorf("forecast: non-positive horizon %d", horizon)
	}
	coarseH := (horizon + s.factor - 1) / s.factor
	// Capacity covers every recurrence step: the window slides forward through
	// the buffer (buf = append(buf[1:], v)) without ever reallocating.
	buf := make([]float64, len(s.tail), len(s.tail)+coarseH)
	copy(buf, s.tail)
	out := make([]float64, 0, coarseH)
	for t := 0; t < coarseH; t++ {
		v := 0.0
		for j, aj := range s.coeffs {
			// coeffs[j] multiplies x_{t-(j+1)}: the most recent value is the
			// last element of buf.
			v += aj * buf[len(buf)-1-j]
		}
		// Load percentages live in [0,100]; keep the recurrence from
		// drifting out of the physical range.
		if v < 0 {
			v = 0
		} else if v > 100 {
			v = 100
		}
		out = append(out, v)
		buf = append(buf[1:], v)
	}
	coarse := timeseries.New(s.end, time.Duration(s.factor)*s.fineInterval, out)
	return expand(coarse, s.factor, s.fineInterval, horizon), nil
}
