package forecast

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"seagull/internal/linalg"
	"seagull/internal/timeseries"
)

// This file preserves the pre-optimization ARIMA implementation — the naive
// per-candidate recomputation with row-allocating design matrices — as a
// reference, and asserts the optimized hot path (hoisted per-(d,sd) state,
// flat scratch-backed buffers, optional parallel grid) selects the identical
// model and produces identical numbers.

// refLongARResiduals is the seed implementation of longARResiduals.
func refLongARResiduals(w []float64, m, season int) []float64 {
	resid := make([]float64, len(w))
	lags := make([]int, 0, m+1)
	for i := 1; i <= m; i++ {
		lags = append(lags, i)
	}
	if season < len(w)/2 {
		lags = append(lags, season)
	}
	start := lags[len(lags)-1]
	if start >= len(w)-4 {
		return resid
	}
	rows := make([][]float64, 0, len(w)-start)
	ys := make([]float64, 0, len(w)-start)
	for t := start; t < len(w); t++ {
		row := make([]float64, len(lags)+1)
		row[0] = 1
		for j, lag := range lags {
			row[j+1] = w[t-lag]
		}
		rows = append(rows, row)
		ys = append(ys, w[t])
	}
	design, err := linalg.FromRows(rows)
	if err != nil {
		return resid
	}
	beta, err := linalg.SolveRidge(design, ys, 1e-6)
	if err != nil {
		return resid
	}
	for t := start; t < len(w); t++ {
		pred := beta[0]
		for j, lag := range lags {
			pred += beta[j+1] * w[t-lag]
		}
		resid[t] = w[t] - pred
	}
	return resid
}

// refCSSResiduals is the seed implementation of cssResiduals: it allocates a
// fresh residual slice per call and returns the post-burn-in view.
func refCSSResiduals(o arimaOrder, w []float64, season int, beta []float64) ([]float64, float64) {
	t0 := o.burnIn(season)
	resid := make([]float64, len(w))
	css := 0.0
	for t := t0; t < len(w); t++ {
		pred := beta[0]
		k := 1
		for i := 1; i <= o.p; i++ {
			pred += beta[k] * w[t-i]
			k++
		}
		for i := 1; i <= o.sp; i++ {
			pred += beta[k] * w[t-i*season]
			k++
		}
		for j := 1; j <= o.q; j++ {
			pred += beta[k] * resid[t-j]
			k++
		}
		for j := 1; j <= o.sq; j++ {
			pred += beta[k] * resid[t-j*season]
			k++
		}
		e := w[t] - pred
		resid[t] = e
		css += e * e
	}
	return resid[t0:], css
}

// refPatternSearch is the seed implementation: a fresh candidate vector per
// probe and a fresh residual slice per CSS evaluation.
func refPatternSearch(o arimaOrder, w []float64, season int, beta []float64, budget int) []float64 {
	best := append([]float64(nil), beta...)
	_, bestCSS := refCSSResiduals(o, w, season, best)
	evals := 1
	step := 0.1
	for step > 1e-4 && evals < budget {
		improved := false
		for j := 0; j < len(best) && evals < budget; j++ {
			for _, dir := range [2]float64{1, -1} {
				cand := append([]float64(nil), best...)
				cand[j] += dir * step
				_, css := refCSSResiduals(o, w, season, cand)
				evals++
				if css < bestCSS {
					best, bestCSS = cand, css
					improved = true
					break
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return best
}

// refFit is the seed per-candidate fit: Hannan–Rissanen with [][]float64 rows
// and a per-candidate long-AR pass.
func refFit(o arimaOrder, w []float64, season, budget int) (coeffs, resid []float64, css float64, ok bool) {
	t0 := o.burnIn(season)
	if len(w) < t0+16 {
		return nil, nil, 0, false
	}
	initResid := refLongARResiduals(w, minInt(24, len(w)/4), season)
	k := o.numCoeffs()
	start := maxInt(t0, minInt(24, len(w)/4)+season)
	if start >= len(w)-8 {
		start = t0
	}
	rows := make([][]float64, 0, len(w)-start)
	ys := make([]float64, 0, len(w)-start)
	for t := start; t < len(w); t++ {
		row := make([]float64, k)
		fillLagRow(row, o, w, initResid, t, season)
		rows = append(rows, row)
		ys = append(ys, w[t])
	}
	design, err := linalg.FromRows(rows)
	if err != nil {
		return nil, nil, 0, false
	}
	beta, err := linalg.SolveRidge(design, ys, 1e-6)
	if err != nil {
		return nil, nil, 0, false
	}
	beta = refPatternSearch(o, w, season, beta, budget)
	resid, css = refCSSResiduals(o, w, season, beta)
	if math.IsNaN(css) || math.IsInf(css, 0) {
		return nil, nil, 0, false
	}
	return beta, resid, css, true
}

// refSelect runs the seed grid search over the coarse series x, returning the
// winning order, coefficients, residuals, differenced series and AIC.
func refSelect(cfg ARIMAConfig, x []float64, season int) (arimaOrder, []float64, []float64, []float64, float64, bool) {
	bestAIC := math.Inf(1)
	var best arimaOrder
	var bestCoeffs, bestW, bestResid []float64
	for p := 0; p <= cfg.MaxP; p++ {
		for d := 0; d <= cfg.MaxD; d++ {
			for q := 0; q <= cfg.MaxQ; q++ {
				for sp := 0; sp <= cfg.MaxSP; sp++ {
					for sd := 0; sd <= cfg.MaxSD; sd++ {
						for sq := 0; sq <= cfg.MaxSQ; sq++ {
							o := arimaOrder{p, d, q, sp, sd, sq}
							if o.numCoeffs() == 1 && d == 0 && sd == 0 {
								continue
							}
							w := differenceAll(x, d, sd, season)
							coeffs, resid, css, ok := refFit(o, w, season, cfg.SearchBudget)
							if !ok {
								continue
							}
							nEff := float64(len(resid))
							if nEff < 8 {
								continue
							}
							aic := nEff*math.Log(css/nEff+1e-12) + 2*float64(o.numCoeffs())
							if aic < bestAIC {
								bestAIC, best = aic, o
								bestCoeffs = coeffs
								bestW = w
								bestResid = resid
							}
						}
					}
				}
			}
		}
	}
	return best, bestCoeffs, bestResid, bestW, bestAIC, !math.IsInf(bestAIC, 1)
}

// equivSeries builds a deterministic week of 5-minute data with a daily shape
// plus seeded noise — enough structure for the order search to be non-trivial.
func equivSeries(seed int64, days int) timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, days*288)
	for i := range vals {
		tod := i % 288
		v := 20 + 30*math.Sin(2*math.Pi*float64(tod)/288)
		if tod >= 96 && tod < 192 {
			v += 15
		}
		v += rng.NormFloat64() * 4
		vals[i] = math.Min(math.Max(v, 0), 100)
	}
	return timeseries.New(time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC), 5*time.Minute, vals)
}

// coarseFor replicates Train's preamble so the reference search sees exactly
// the series the optimized path fits.
func coarseFor(t *testing.T, cfg ARIMAConfig, hist timeseries.Series) ([]float64, int) {
	t.Helper()
	h, err := prepare(hist, 3)
	if err != nil {
		t.Fatal(err)
	}
	ppd := h.PointsPerDay()
	if h.NumDays() > cfg.TrainDays {
		h, err = h.Slice(h.Len()-cfg.TrainDays*ppd, h.Len())
		if err != nil {
			t.Fatal(err)
		}
	}
	coarse, _, err := resampleTo(h, cfg.Granularity)
	if err != nil {
		t.Fatal(err)
	}
	coarse = coarse.FillGaps()
	return coarse.Values, coarse.PointsPerDay()
}

func equivConfigs() []ARIMAConfig {
	return []ARIMAConfig{
		{MaxP: 1, MaxQ: 1, SearchBudget: 60},              // the experiments' fast config
		{MaxP: 2, MaxQ: 1, MaxSP: 1, SearchBudget: 120},   // a mid-size grid
		{MaxP: 1, MaxQ: 2, Granularity: 30 * time.Minute}, // coarser season, default budget
	}
}

func sliceClose(t *testing.T, what string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s[%d]: %v != %v", what, i, got[i], want[i])
		}
	}
}

// TestARIMAOptimizedMatchesReference fits the optimized search and the
// preserved seed implementation on identical inputs and requires the same
// chosen order and numerically identical (≤1e-9) coefficients, residuals and
// forecasts.
func TestARIMAOptimizedMatchesReference(t *testing.T) {
	for _, cfg := range equivConfigs() {
		for seed := int64(1); seed <= 3; seed++ {
			hist := equivSeries(seed, 7)
			m := NewARIMA(cfg)
			if err := m.Train(hist); err != nil {
				t.Fatalf("cfg=%+v seed=%d: %v", cfg, seed, err)
			}
			x, season := coarseFor(t, m.cfg, hist)
			order, coeffs, resid, w, aic, ok := refSelect(m.cfg, x, season)
			if !ok {
				t.Fatalf("cfg=%+v seed=%d: reference found no candidate", cfg, seed)
			}
			if m.order != order {
				t.Fatalf("cfg=%+v seed=%d: order %v != reference %v", cfg, seed, m.order, order)
			}
			if math.Abs(m.aic-aic) > 1e-9 {
				t.Fatalf("cfg=%+v seed=%d: aic %v != %v", cfg, seed, m.aic, aic)
			}
			sliceClose(t, "coeffs", m.coeffs, coeffs, 1e-9)
			sliceClose(t, "w", m.w, w, 1e-9)
			sliceClose(t, "resid", m.resid, resid, 1e-9)

			// End-to-end: the forecast built from the optimized fit must match
			// one built from the reference fit state.
			fc, err := m.Forecast(288)
			if err != nil {
				t.Fatal(err)
			}
			ref := NewARIMA(cfg)
			if err := ref.Train(hist); err != nil {
				t.Fatal(err)
			}
			ref.order, ref.coeffs, ref.w, ref.resid, ref.aic = order, coeffs, w, resid, aic
			fcRef, err := ref.Forecast(288)
			if err != nil {
				t.Fatal(err)
			}
			sliceClose(t, "forecast", fc.Values, fcRef.Values, 1e-9)
		}
	}
}

// TestARIMAParallelGridMatchesSequential requires the parallel candidate grid
// to select the identical model as the sequential search.
func TestARIMAParallelGridMatchesSequential(t *testing.T) {
	for _, cfg := range equivConfigs() {
		for seed := int64(1); seed <= 2; seed++ {
			hist := equivSeries(seed, 7)
			seq := NewARIMA(cfg)
			if err := seq.Train(hist); err != nil {
				t.Fatal(err)
			}
			parCfg := cfg
			parCfg.GridWorkers = 4
			par := NewARIMA(parCfg)
			if err := par.Train(hist); err != nil {
				t.Fatal(err)
			}
			if seq.order != par.order {
				t.Fatalf("cfg=%+v seed=%d: parallel order %v != sequential %v",
					cfg, seed, par.order, seq.order)
			}
			if seq.aic != par.aic {
				t.Fatalf("cfg=%+v seed=%d: parallel aic %v != sequential %v",
					cfg, seed, par.aic, seq.aic)
			}
			sliceClose(t, "coeffs", par.coeffs, seq.coeffs, 0)
			fs, err := seq.Forecast(288)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := par.Forecast(288)
			if err != nil {
				t.Fatal(err)
			}
			sliceClose(t, "forecast", fp.Values, fs.Values, 0)
		}
	}
}
