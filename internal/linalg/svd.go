package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// SVD holds a thin singular value decomposition A = U diag(S) Vᵀ with
// singular values in non-increasing order.
type SVD struct {
	U *Matrix   // Rows×k
	S []float64 // k singular values, descending
	V *Matrix   // Cols×k
}

// SVDScratch holds the working and result storage for ComputeSVDScratch and
// RandomizedSVDScratch so repeated decompositions of similarly sized matrices
// (the per-server trajectory matrices of SSA) allocate nothing after the
// first call. The zero value is ready to use; buffers grow on demand and are
// retained. A result returned from a scratch-backed call aliases the scratch
// and is valid only until the scratch's next use.
type SVDScratch struct {
	cols  []float64 // working columns, flat (column j at [j*m, (j+1)*m))
	v     []float64 // right-rotation accumulator, flat n×n
	norms []float64 // tracked squared column norms
	order []int     // permutation sorting singular values descending

	// Randomized range-finder storage.
	gram  []float64 // small-side Gram matrix, row-major s×s
	omega []float64 // Gaussian test matrix, column-major s×r
	y     []float64 // sketch basis Q, column-major s×r
	z     []float64 // power-iteration / G·Q workspace, column-major s×r
	tmp   []float64 // per-triple assembly vectors

	uBuf, vBuf, sBuf, sOut []float64 // result backing
	uM, vM                 Matrix
	svd                    SVD
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// ComputeSVD computes the thin SVD of a via one-sided Jacobi rotations
// applied to the columns of a working copy. It is O(iter·n²·m) which is fine
// for the small Hankel matrices SSA builds. Allocation-sensitive callers
// should hold an SVDScratch and use ComputeSVDScratch.
func ComputeSVD(a *Matrix) (*SVD, error) {
	return ComputeSVDScratch(a, &SVDScratch{})
}

// ComputeSVDScratch is ComputeSVD with caller-provided scratch: all working
// and result storage comes from sc, so a warm scratch makes the
// decomposition allocation-free. The returned SVD aliases sc and is valid
// until sc's next use.
func ComputeSVDScratch(a *Matrix, sc *SVDScratch) (*SVD, error) {
	m, n := a.Rows, a.Cols
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("%w: empty matrix", ErrShape)
	}
	// One-sided Jacobi works on columns; ensure rows >= cols by operating on
	// the transpose when the matrix is wide (and swapping U/V at the end).
	transposed := m < n
	if transposed {
		m, n = n, m
	}
	sc.cols = growFloats(sc.cols, n*m)
	if transposed {
		// The columns of aᵀ are the rows of a, which are contiguous.
		for j := 0; j < n; j++ {
			copy(sc.cols[j*m:(j+1)*m], a.Data[j*a.Cols:(j+1)*a.Cols])
		}
	} else {
		for j := 0; j < n; j++ {
			col := sc.cols[j*m : (j+1)*m]
			for i := range col {
				col[i] = a.Data[i*a.Cols+j]
			}
		}
	}
	sc.v = growFloats(sc.v, n*n)
	for i := range sc.v {
		sc.v[i] = 0
	}
	for j := 0; j < n; j++ {
		sc.v[j*n+j] = 1
	}
	sc.norms = growFloats(sc.norms, n)
	for j := 0; j < n; j++ {
		col := sc.cols[j*m : (j+1)*m]
		sc.norms[j] = Dot(col, col)
	}
	jacobiSVD(sc.cols, sc.v, sc.norms, m, n)
	sc.buildResult(m, n, transposed)
	return &sc.svd, nil
}

// jacobiSVD runs one-sided Jacobi sweeps over the n working columns of
// length m stored flat in cols, accumulating the right rotations into v
// (n×n, same flat layout, identity on entry). norms2 must hold the squared
// column norms on entry; they are maintained incrementally — the rotation of
// a pair (p,q) that annihilates their inner product γ moves exactly t·γ of
// squared mass between the two columns (α' = α − t·γ, β' = β + t·γ), so the
// per-pair norm recomputation the textbook loop performs is unnecessary.
// Only the inner product itself still costs a pass over the pair.
func jacobiSVD(cols, v, norms2 []float64, m, n int) {
	const maxSweeps = 30
	const eps = 1e-10
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotations := 0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				cp := cols[p*m : (p+1)*m]
				cq := cols[q*m : (q+1)*m][:m]
				gamma := 0.0
				for i, wp := range cp {
					gamma += wp * cq[i]
				}
				alpha, beta := norms2[p], norms2[q]
				// Incremental tracking can drift a hair below zero for
				// numerically dead columns; clamp for the threshold test.
				if alpha < 0 {
					alpha = 0
				}
				if beta < 0 {
					beta = 0
				}
				if gamma == 0 || math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				rotations++
				// Jacobi rotation that annihilates the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := sign(zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i, wp := range cp {
					wq := cq[i]
					cp[i] = c*wp - s*wq
					cq[i] = s*wp + c*wq
				}
				norms2[p] = alpha - t*gamma
				norms2[q] = beta + t*gamma
				vp := v[p*n : (p+1)*n]
				vq := v[q*n : (q+1)*n][:n]
				for i, wp := range vp {
					wq := vq[i]
					vp[i] = c*wp - s*wq
					vq[i] = s*wp + c*wq
				}
			}
		}
		if rotations == 0 {
			break
		}
	}
}

// buildResult turns the converged working columns into the sorted thin SVD.
// Final singular values are recomputed exactly from the columns (one O(m·n)
// pass) rather than read from the incrementally tracked norms, so tracking
// drift never reaches the output.
func (sc *SVDScratch) buildResult(m, n int, transposed bool) {
	sc.sBuf = growFloats(sc.sBuf, n)
	for j := 0; j < n; j++ {
		sc.sBuf[j] = Norm2(sc.cols[j*m : (j+1)*m])
	}
	sc.order = growInts(sc.order, n)
	for j := range sc.order {
		sc.order[j] = j
	}
	// Sort descending by singular value (insertion sort; n is small). Strict
	// comparison keeps equal values in original column order, matching the
	// historical behaviour.
	for i := 1; i < n; i++ {
		for k := i; k > 0 && sc.sBuf[sc.order[k]] > sc.sBuf[sc.order[k-1]]; k-- {
			sc.order[k], sc.order[k-1] = sc.order[k-1], sc.order[k]
		}
	}

	sc.uBuf = growFloats(sc.uBuf, m*n)
	sc.vBuf = growFloats(sc.vBuf, n*n)
	sc.sOut = growFloats(sc.sOut, n)
	u := Matrix{Rows: m, Cols: n, Data: sc.uBuf[:m*n]}
	vOut := Matrix{Rows: n, Cols: n, Data: sc.vBuf[:n*n]}
	sVals := sc.sOut[:n]
	for rank, idx := range sc.order {
		sv := sc.sBuf[idx]
		sVals[rank] = sv
		src := sc.cols[idx*m : (idx+1)*m]
		if sv > 0 {
			inv := 1 / sv
			for i := 0; i < m; i++ {
				u.Data[i*n+rank] = src[i] * inv
			}
		} else {
			for i := 0; i < m; i++ {
				u.Data[i*n+rank] = 0
			}
		}
		vsrc := sc.v[idx*n : (idx+1)*n]
		for i := 0; i < n; i++ {
			vOut.Data[i*n+rank] = vsrc[i]
		}
	}
	sc.uM, sc.vM = u, vOut
	if transposed {
		sc.svd = SVD{U: &sc.vM, S: sVals, V: &sc.uM}
	} else {
		sc.svd = SVD{U: &sc.uM, S: sVals, V: &sc.vM}
	}
}

// RandomizedSVD computes the leading rank singular triples of a with a
// seeded randomized range finder. The m×n matrix is first collapsed onto its
// small side's Gram matrix G (s×s with s = min(m,n)), which a Hankel-sized
// input amortizes in one pass; a Gaussian sketch of rank+oversample columns
// is then tightened by powerIters rounds of subspace iteration G·Y (each
// round sharpens the sketch by the square of the spectral decay, and
// re-orthonormalizes), and the triples are extracted by Rayleigh–Ritz: the
// projected s×s problem T = QᵀGQ is diagonalized exactly by the one-sided
// Jacobi core and the large-side singular vectors are recovered as A·v/σ
// (resp. Aᵀu/σ). All iteration work is O(s²·r) per round — independent of
// the large dimension — which is what makes the sketch cheaper than full
// Jacobi even at ≤1e-6 equivalence budgets.
//
// The result is deterministic for a fixed seed. When the sketch would cover
// the full small dimension the call falls back to the exact decomposition
// (returning all min(m,n) triples rather than rank).
func RandomizedSVD(a *Matrix, rank, oversample, powerIters int, seed int64) (*SVD, error) {
	return RandomizedSVDScratch(a, rank, oversample, powerIters, seed, &SVDScratch{})
}

// RandomizedSVDScratch is RandomizedSVD with caller-provided scratch. The
// returned SVD aliases sc and is valid until sc's next use.
func RandomizedSVDScratch(a *Matrix, rank, oversample, powerIters int, seed int64, sc *SVDScratch) (*SVD, error) {
	m, n := a.Rows, a.Cols
	if m == 0 || n == 0 {
		return nil, fmt.Errorf("%w: empty matrix", ErrShape)
	}
	if rank <= 0 {
		return nil, fmt.Errorf("linalg: randomized SVD rank %d must be positive", rank)
	}
	if oversample < 0 {
		oversample = 0
	}
	// Operate on the smaller of the two Gram matrices: A·Aᵀ when the matrix
	// is wide (small side = rows), AᵀA when it is tall.
	wide := m <= n
	s := m
	if !wide {
		s = n
	}
	r := rank + oversample
	if r >= s {
		// Sketch as wide as the matrix: nothing to save, use the exact path.
		return ComputeSVDScratch(a, sc)
	}

	// G = A·Aᵀ (wide) or AᵀA (tall), symmetric s×s in row-major sc.gram.
	sc.gram = growFloats(sc.gram, s*s)
	gram := sc.gram[:s*s]
	if wide {
		for i := 0; i < m; i++ {
			ri := a.Data[i*n : (i+1)*n]
			for j := i; j < m; j++ {
				d := Dot(ri, a.Data[j*n:(j+1)*n])
				gram[i*s+j] = d
				gram[j*s+i] = d
			}
		}
	} else {
		for i := range gram {
			gram[i] = 0
		}
		for i := 0; i < m; i++ {
			row := a.Data[i*n : (i+1)*n]
			for p := 0; p < n; p++ {
				rp := row[p]
				if rp == 0 {
					continue
				}
				grow := gram[p*s+p : p*s+n]
				rq := row[p:n]
				for q, v := range rq {
					grow[q] += rp * v
				}
			}
		}
		for p := 0; p < n; p++ {
			for q := 0; q < p; q++ {
				gram[p*s+q] = gram[q*s+p]
			}
		}
	}

	// Seeded Gaussian sketch, then subspace iteration entirely in dimension s.
	rng := rand.New(rand.NewSource(seed ^ 0x5eaf00d))
	sc.omega = growFloats(sc.omega, s*r)
	for i := range sc.omega {
		sc.omega[i] = rng.NormFloat64()
	}
	sc.y = growFloats(sc.y, s*r)
	sc.z = growFloats(sc.z, s*r)
	symMulCols(sc.y, gram, sc.omega, s, r)
	orthonormalize(sc.y, s, r)
	for it := 0; it < powerIters; it++ {
		copy(sc.z[:s*r], sc.y[:s*r])
		symMulCols(sc.y, gram, sc.z, s, r)
		orthonormalize(sc.y, s, r)
	}

	// Rayleigh–Ritz: T = QᵀGQ (r×r), diagonalized exactly. T is symmetric
	// positive semi-definite, so its SVD is its eigendecomposition; the
	// Jacobi rotation accumulator is the (exactly orthonormal) eigenbasis W
	// and the converged column norms are the eigenvalues λ = σ².
	symMulCols(sc.z, gram, sc.y, s, r) // Z = G·Q
	sc.cols = growFloats(sc.cols, r*r)
	for j := 0; j < r; j++ {
		zj := sc.z[j*s : (j+1)*s]
		tj := sc.cols[j*r : (j+1)*r]
		for i := 0; i < r; i++ {
			tj[i] = Dot(sc.y[i*s:(i+1)*s], zj)
		}
	}
	sc.v = growFloats(sc.v, r*r)
	for i := range sc.v {
		sc.v[i] = 0
	}
	for j := 0; j < r; j++ {
		sc.v[j*r+j] = 1
	}
	sc.norms = growFloats(sc.norms, r)
	for j := 0; j < r; j++ {
		col := sc.cols[j*r : (j+1)*r]
		sc.norms[j] = Dot(col, col)
	}
	jacobiSVD(sc.cols, sc.v, sc.norms, r, r)

	sc.sBuf = growFloats(sc.sBuf, r)
	sc.order = growInts(sc.order, r)
	for j := 0; j < r; j++ {
		sc.sBuf[j] = Norm2(sc.cols[j*r : (j+1)*r])
		sc.order[j] = j
	}
	for i := 1; i < r; i++ {
		for k := i; k > 0 && sc.sBuf[sc.order[k]] > sc.sBuf[sc.order[k-1]]; k-- {
			sc.order[k], sc.order[k-1] = sc.order[k-1], sc.order[k]
		}
	}

	// Assemble the leading rank triples. The small-side singular vector is
	// b = Q·w; the large-side one is recovered through A (Aᵀb/σ when wide,
	// A·b/σ when tall), which is exactly the relation the converged Jacobi
	// columns satisfy.
	sc.uBuf = growFloats(sc.uBuf, m*rank)
	sc.vBuf = growFloats(sc.vBuf, n*rank)
	sc.sOut = growFloats(sc.sOut, rank)
	sc.tmp = growFloats(sc.tmp, s+m+n)
	u := Matrix{Rows: m, Cols: rank, Data: sc.uBuf[:m*rank]}
	vOut := Matrix{Rows: n, Cols: rank, Data: sc.vBuf[:n*rank]}
	sVals := sc.sOut[:rank]
	small := sc.tmp[:s]
	large := sc.tmp[s : s+m+n]
	for t := 0; t < rank; t++ {
		idx := sc.order[t]
		lambda := sc.sBuf[idx]
		if lambda < 0 {
			lambda = 0
		}
		sv := math.Sqrt(lambda)
		sVals[t] = sv
		// b = Q·w (length s).
		for i := range small {
			small[i] = 0
		}
		w := sc.v[idx*r : (idx+1)*r]
		for e, we := range w {
			if we == 0 {
				continue
			}
			qcol := sc.y[e*s : (e+1)*s]
			for i, qv := range qcol {
				small[i] += we * qv
			}
		}
		if wide {
			// u = b; v = Aᵀu/σ.
			for i := 0; i < m; i++ {
				u.Data[i*rank+t] = small[i]
			}
			vt := large[:n]
			for i := range vt {
				vt[i] = 0
			}
			if sv > 0 {
				inv := 1 / sv
				for i := 0; i < m; i++ {
					wi := small[i] * inv
					if wi == 0 {
						continue
					}
					row := a.Data[i*n : (i+1)*n]
					for k, v := range row {
						vt[k] += wi * v
					}
				}
			}
			for i := 0; i < n; i++ {
				vOut.Data[i*rank+t] = vt[i]
			}
		} else {
			// v = b; u = A·v/σ.
			for i := 0; i < n; i++ {
				vOut.Data[i*rank+t] = small[i]
			}
			ut := large[:m]
			if sv > 0 {
				inv := 1 / sv
				for i := 0; i < m; i++ {
					ut[i] = Dot(a.Data[i*n:(i+1)*n], small) * inv
				}
			} else {
				for i := range ut {
					ut[i] = 0
				}
			}
			for i := 0; i < m; i++ {
				u.Data[i*rank+t] = ut[i]
			}
		}
	}
	sc.uM, sc.vM = u, vOut
	sc.svd = SVD{U: &sc.uM, S: sVals, V: &sc.vM}
	return &sc.svd, nil
}

// symMulCols computes dst = G·X for r column-major columns of X (length s),
// with G a row-major symmetric s×s matrix. dst and x must not alias.
func symMulCols(dst, g, x []float64, s, r int) {
	for j := 0; j < r; j++ {
		xj := x[j*s : (j+1)*s]
		dj := dst[j*s : (j+1)*s]
		for i := 0; i < s; i++ {
			dj[i] = Dot(g[i*s:(i+1)*s], xj)
		}
	}
}

// orthonormalize runs modified Gram–Schmidt over r column-major columns of
// length m in place, with a second re-orthogonalization pass ("twice is
// enough"): a single pass can hand back a cancellation residue parallel to
// an earlier basis vector when a column is numerically dependent on the ones
// before it. Columns whose norm collapses relative to their original length
// are numerically dead — they are zeroed (deflated) rather than normalized
// into junk directions, so a rank-deficient sketch stays a valid partial
// orthonormal basis.
func orthonormalize(cols []float64, m, r int) {
	for j := 0; j < r; j++ {
		col := cols[j*m : (j+1)*m]
		orig := Norm2(col)
		if orig == 0 {
			continue
		}
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				prev := cols[i*m : (i+1)*m]
				d := Dot(col, prev)
				if d == 0 {
					continue
				}
				for k, pv := range prev {
					col[k] -= d * pv
				}
			}
		}
		nrm := Norm2(col)
		if nrm <= 1e-12*orig || nrm < 1e-300 {
			for k := range col {
				col[k] = 0
			}
			continue
		}
		inv := 1 / nrm
		for k := range col {
			col[k] *= inv
		}
	}
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
