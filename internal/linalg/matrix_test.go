package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 5 || m.At(1, 2) != -2 || m.At(0, 0) != 0 {
		t.Errorf("At/Set broken: %+v", m.Data)
	}
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 0 {
		t.Error("Row must copy")
	}
	c := m.Col(1)
	if c[0] != 5 || c[1] != 0 {
		t.Errorf("Col = %v", c)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Errorf("FromRows At(1,0) = %v", m.At(1, 0))
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("ragged rows should error")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Error("empty FromRows should give 0x0")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Errorf("T = %+v", tr)
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 2)); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil || v[0] != 3 || v[1] != 7 {
		t.Errorf("MulVec = %v err %v", v, err)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("wrong vector length should error")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !approx(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
}

func TestSVDIdentity(t *testing.T) {
	sv, err := ComputeSVD(identity(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sv.S {
		if !approx(s, 1, 1e-9) {
			t.Errorf("S[%d] = %v, want 1", i, s)
		}
	}
}

func TestSVDKnown(t *testing.T) {
	// A = [[3,0],[0,-2]] has singular values 3, 2.
	a, _ := FromRows([][]float64{{3, 0}, {0, -2}})
	sv, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sv.S[0], 3, 1e-9) || !approx(sv.S[1], 2, 1e-9) {
		t.Errorf("S = %v, want [3 2]", sv.S)
	}
}

func reconstruct(sv *SVD) *Matrix {
	m, k := sv.U.Rows, len(sv.S)
	n := sv.V.Rows
	out := NewMatrix(m, n)
	for r := 0; r < k; r++ {
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += sv.S[r] * sv.U.At(i, r) * sv.V.At(j, r)
			}
		}
	}
	return out
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(8)
		n := 2 + rng.Intn(8)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64() * 10
		}
		sv, err := ComputeSVD(a)
		if err != nil {
			t.Fatal(err)
		}
		rec := reconstruct(sv)
		for i := range a.Data {
			if !approx(rec.Data[i], a.Data[i], 1e-6) {
				t.Fatalf("trial %d (%dx%d): reconstruction[%d] = %v, want %v",
					trial, m, n, i, rec.Data[i], a.Data[i])
			}
		}
		// Singular values descending and non-negative.
		for r := 1; r < len(sv.S); r++ {
			if sv.S[r] > sv.S[r-1]+1e-9 || sv.S[r] < -1e-12 {
				t.Fatalf("singular values not sorted/non-negative: %v", sv.S)
			}
		}
	}
}

func TestSVDOrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix(10, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	sv, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		for q := 0; q < 4; q++ {
			dot := Dot(sv.U.Col(p), sv.U.Col(q))
			want := 0.0
			if p == q {
				want = 1
			}
			if !approx(dot, want, 1e-8) {
				t.Errorf("UᵀU[%d,%d] = %v, want %v", p, q, dot, want)
			}
			dotV := Dot(sv.V.Col(p), sv.V.Col(q))
			if !approx(dotV, want, 1e-8) {
				t.Errorf("VᵀV[%d,%d] = %v, want %v", p, q, dotV, want)
			}
		}
	}
}

func TestSVDWideMatrix(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0, 0, 2}, {0, 3, 0, 0}})
	sv, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := reconstruct(sv)
	for i := range a.Data {
		if !approx(rec.Data[i], a.Data[i], 1e-8) {
			t.Fatalf("wide reconstruction mismatch at %d", i)
		}
	}
}

func TestSVDEmpty(t *testing.T) {
	if _, err := ComputeSVD(NewMatrix(0, 0)); err == nil {
		t.Error("empty SVD should error")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Exactly determined: x = [2, -1].
	a, _ := FromRows([][]float64{{1, 1}, {1, -1}})
	x, err := SolveLeastSquares(a, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 2, 1e-9) || !approx(x[1], -1, 1e-9) {
		t.Errorf("x = %v, want [2 -1]", x)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 with noiseless samples.
	rows := [][]float64{}
	b := []float64{}
	for ti := 0; ti < 10; ti++ {
		rows = append(rows, []float64{float64(ti), 1})
		b = append(b, 2*float64(ti)+1)
	}
	a, _ := FromRows(rows)
	x, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[0], 2, 1e-8) || !approx(x[1], 1, 1e-8) {
		t.Errorf("fit = %v, want [2 1]", x)
	}
}

func TestSolveRidgeShrinks(t *testing.T) {
	rows := [][]float64{{1}, {1}, {1}}
	a, _ := FromRows(rows)
	b := []float64{3, 3, 3}
	x0, err := SolveRidge(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := SolveRidge(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(x1[0] < x0[0]) {
		t.Errorf("ridge should shrink: λ=0 → %v, λ=10 → %v", x0[0], x1[0])
	}
	if _, err := SolveRidge(a, b, -1); err == nil {
		t.Error("negative lambda should error")
	}
	if _, err := SolveRidge(a, []float64{1}, 0); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestSolveSingular(t *testing.T) {
	// Two identical columns: rank deficient.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Error("rank-deficient system should error without ridge")
	}
	// Ridge regularization rescues it.
	if _, err := SolveRidge(a, []float64{1, 2, 3}, 1e-3); err != nil {
		t.Errorf("ridge should solve rank-deficient system: %v", err)
	}
}

func TestCholeskySolveErrors(t *testing.T) {
	if _, err := CholeskySolve(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square should error")
	}
	neg, _ := FromRows([][]float64{{-1}})
	if _, err := CholeskySolve(neg, []float64{1}); err == nil {
		t.Error("negative-definite should error")
	}
}

func TestHankel(t *testing.T) {
	h, err := Hankel([]float64{1, 2, 3, 4, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows != 3 || h.Cols != 3 {
		t.Fatalf("Hankel shape %dx%d", h.Rows, h.Cols)
	}
	want := [][]float64{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}
	for i := range want {
		for j := range want[i] {
			if h.At(i, j) != want[i][j] {
				t.Errorf("H(%d,%d) = %v", i, j, h.At(i, j))
			}
		}
	}
	if _, err := Hankel([]float64{1, 2}, 5); err == nil {
		t.Error("window longer than series should error")
	}
	if _, err := Hankel([]float64{1, 2}, 0); err == nil {
		t.Error("zero window should error")
	}
}

func TestDiagonalAverageInvertsHankel(t *testing.T) {
	x := []float64{4, 8, 15, 16, 23, 42}
	h, err := Hankel(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	back := DiagonalAverage(h)
	if len(back) != len(x) {
		t.Fatalf("len = %d", len(back))
	}
	for i := range x {
		if !approx(back[i], x[i], 1e-12) {
			t.Errorf("back[%d] = %v, want %v", i, back[i], x[i])
		}
	}
}

// Property: Hankel → DiagonalAverage is the identity for any series/window.
func TestPropertyHankelRoundTrip(t *testing.T) {
	f := func(raw []uint8, lSeed uint8) bool {
		if len(raw) < 2 {
			return true
		}
		x := make([]float64, len(raw))
		for i, r := range raw {
			x[i] = float64(r)
		}
		l := 1 + int(lSeed)%len(x)
		h, err := Hankel(x, l)
		if err != nil {
			return false
		}
		back := DiagonalAverage(h)
		for i := range x {
			if !approx(back[i], x[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: least-squares residual is orthogonal to the column space.
func TestPropertyLeastSquaresOrthogonalResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		m := 4 + rng.Intn(10)
		n := 1 + rng.Intn(3)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLeastSquares(a, b)
		if err != nil {
			continue // random degenerate case
		}
		ax, _ := a.MulVec(x)
		res := make([]float64, m)
		for i := range res {
			res[i] = b[i] - ax[i]
		}
		for j := 0; j < n; j++ {
			if d := Dot(a.Col(j), res); !approx(d, 0, 1e-6) {
				t.Fatalf("trial %d: residual not orthogonal to col %d: %v", trial, j, d)
			}
		}
	}
}
