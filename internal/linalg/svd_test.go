package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// lowRankMatrix builds an m×n matrix with a rapidly decaying spectrum plus a
// small noise floor — the shape of SSA trajectory matrices.
func lowRankMatrix(rng *rand.Rand, m, n, rank int) *Matrix {
	a := NewMatrix(m, n)
	for r := 0; r < rank; r++ {
		scale := math.Pow(0.5, float64(r)) * 10
		u := randomVec(rng, m)
		v := randomVec(rng, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Data[i*n+j] += scale * u[i] * v[j]
			}
		}
	}
	for i := range a.Data {
		a.Data[i] += rng.NormFloat64() * 1e-6
	}
	return a
}

func TestComputeSVDScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var sc SVDScratch
	for _, shape := range [][2]int{{12, 7}, {7, 12}, {20, 20}, {12, 7}} {
		a := randomMatrix(rng, shape[0], shape[1])
		want, err := ComputeSVD(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ComputeSVDScratch(a, &sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.S) != len(want.S) {
			t.Fatalf("shape %v: %d singular values, want %d", shape, len(got.S), len(want.S))
		}
		for i := range want.S {
			if math.Abs(got.S[i]-want.S[i]) > 1e-9 {
				t.Fatalf("shape %v: S[%d] = %v, want %v", shape, i, got.S[i], want.S[i])
			}
		}
		// Reconstruction through the scratch-backed result must match A.
		recon := reconstruct(got)
		for i := range a.Data {
			if math.Abs(recon.Data[i]-a.Data[i]) > 1e-8 {
				t.Fatalf("shape %v: reconstruction off at %d", shape, i)
			}
		}
	}
}

func TestRandomizedSVDMatchesJacobiLeadingTriples(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	// Signal rank safely above the compared triple count, so every compared
	// singular vector is well separated from the noise floor.
	for _, shape := range [][2]int{{48, 289}, {289, 48}, {30, 60}} {
		a := lowRankMatrix(rng, shape[0], shape[1], 12)
		exact, err := ComputeSVD(a)
		if err != nil {
			t.Fatal(err)
		}
		const rank = 8
		approx, err := RandomizedSVD(a, rank, 8, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx.S) < rank {
			t.Fatalf("shape %v: only %d triples", shape, len(approx.S))
		}
		for r := 0; r < rank; r++ {
			rel := math.Abs(approx.S[r]-exact.S[r]) / (exact.S[0] + 1e-300)
			if rel > 1e-8 {
				t.Errorf("shape %v: σ[%d] rel error %.2e", shape, r, rel)
			}
			// Compare singular vectors up to sign via |cos| of the angle.
			du, dv := 0.0, 0.0
			for i := 0; i < approx.U.Rows; i++ {
				du += approx.U.At(i, r) * exact.U.At(i, r)
			}
			for i := 0; i < approx.V.Rows; i++ {
				dv += approx.V.At(i, r) * exact.V.At(i, r)
			}
			if math.Abs(math.Abs(du)-1) > 1e-6 || math.Abs(math.Abs(dv)-1) > 1e-6 {
				t.Errorf("shape %v: triple %d subspace off (|u·u'|=%.8f |v·v'|=%.8f)",
					shape, r, math.Abs(du), math.Abs(dv))
			}
		}
	}
}

func TestRandomizedSVDDeterministicAndSeedSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := lowRankMatrix(rng, 40, 120, 5)
	s1, err := RandomizedSVD(a, 6, 6, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RandomizedSVD(a, 6, 6, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.S {
		if s1.S[i] != s2.S[i] {
			t.Fatalf("same seed diverges at σ[%d]", i)
		}
	}
	for i := 0; i < s1.U.Rows; i++ {
		for j := 0; j < s1.U.Cols; j++ {
			if s1.U.At(i, j) != s2.U.At(i, j) {
				t.Fatalf("same seed diverges at U(%d,%d)", i, j)
			}
		}
	}
}

func TestRandomizedSVDFallsBackForSmallMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := randomMatrix(rng, 6, 5)
	exact, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	// rank+oversample covers min(m,n): must be the exact decomposition.
	got, err := RandomizedSVD(a, 4, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.S) != len(exact.S) {
		t.Fatalf("fallback returned %d triples, want %d", len(got.S), len(exact.S))
	}
	for i := range exact.S {
		if math.Abs(got.S[i]-exact.S[i]) > 1e-12 {
			t.Fatalf("fallback σ[%d] = %v, want %v", i, got.S[i], exact.S[i])
		}
	}
}

func TestRandomizedSVDScratchReuseAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	var sc SVDScratch
	for _, shape := range [][2]int{{48, 289}, {24, 100}, {48, 289}} {
		a := lowRankMatrix(rng, shape[0], shape[1], 4)
		want, err := RandomizedSVD(a, 5, 6, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RandomizedSVDScratch(a, 5, 6, 3, 3, &sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.S {
			if got.S[i] != want.S[i] {
				t.Fatalf("shape %v: scratch result differs at σ[%d]", shape, i)
			}
		}
	}
}

func TestRandomizedSVDRejectsBadRank(t *testing.T) {
	a := NewMatrix(4, 4)
	if _, err := RandomizedSVD(a, 0, 2, 1, 1); err == nil {
		t.Error("rank 0 must error")
	}
}
