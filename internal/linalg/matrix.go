// Package linalg provides the small dense linear-algebra substrate used by
// the forecasting models: matrices, one-sided Jacobi SVD (for singular
// spectrum analysis), and least-squares/ridge solvers (for AR fitting and the
// additive model).
//
// The implementation favours clarity and numerical robustness over raw speed;
// the matrices involved in Seagull's per-server models are tiny (a few
// hundred rows at most).
//
// Concurrency: matrices and scratch types (RidgeScratch, SVD scratch) are
// plain buffers with no internal locking — share nothing across goroutines.
// Equivalence: the *Into/*Scratch fast paths are pinned against the naive
// implementations (fastpath_test.go: exact bit-equality where the
// computation is reordered-free, ≤1e-9 where accumulation order changes);
// the randomized SVD is deterministic per seed.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Common errors.
var (
	ErrShape    = errors.New("linalg: shape mismatch")
	ErrSingular = errors.New("linalg: singular system")
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must be equally long.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrShape, i, len(r), c)
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %dx%d × %dx%d", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols : (k+1)*b.Cols]
			rowOut := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range rowB {
				rowOut[j] += a * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m × v for a column vector v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("%w: %dx%d × vec(%d)", ErrShape, m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

func identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// SolveLeastSquares returns x minimizing ‖Ax − b‖₂ via the normal equations
// with Cholesky decomposition. Returns ErrSingular for rank-deficient A.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	return SolveRidge(a, b, 0)
}

// MulTransposedInto computes dst = AᵀA without materializing Aᵀ. dst must be
// Cols×Cols; its contents are overwritten. Only the upper triangle is
// accumulated (G is symmetric) and mirrored afterwards.
func MulTransposedInto(dst *Matrix, a *Matrix) error {
	n := a.Cols
	if dst.Rows != n || dst.Cols != n {
		return fmt.Errorf("%w: dst is %dx%d, want %dx%d", ErrShape, dst.Rows, dst.Cols, n, n)
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*n : (i+1)*n]
		for p := 0; p < n; p++ {
			rp := row[p]
			if rp == 0 {
				continue
			}
			drow := dst.Data[p*n+p : p*n+n]
			rq := row[p:n]
			for q, v := range rq {
				drow[q] += rp * v
			}
		}
	}
	for p := 0; p < n; p++ {
		for q := 0; q < p; q++ {
			dst.Data[p*n+q] = dst.Data[q*n+p]
		}
	}
	return nil
}

// RidgeScratch holds the buffers SolveRidgeInto needs so repeated solves of
// similarly-sized systems (the ARIMA candidate grid, the additive model) do
// zero intermediate allocations. The zero value is ready to use; buffers grow
// on demand and are retained across calls.
type RidgeScratch struct {
	g   Matrix
	buf []float64 // backing storage for g
	rhs []float64
}

// grab sizes the scratch for an n-coefficient system and returns the zeroed
// Gram matrix and right-hand side.
func (s *RidgeScratch) grab(n int) (*Matrix, []float64) {
	if cap(s.buf) < n*n {
		s.buf = make([]float64, n*n)
	}
	if cap(s.rhs) < n {
		s.rhs = make([]float64, n)
	}
	s.g = Matrix{Rows: n, Cols: n, Data: s.buf[:n*n]}
	rhs := s.rhs[:n]
	for i := range s.g.Data {
		s.g.Data[i] = 0
	}
	for i := range rhs {
		rhs[i] = 0
	}
	return &s.g, rhs
}

// SolveRidge returns x minimizing ‖Ax − b‖₂² + λ‖x‖₂² (λ ≥ 0).
func SolveRidge(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	var s RidgeScratch
	return SolveRidgeInto(a, b, lambda, &s)
}

// SolveRidgeInto is SolveRidge with caller-provided scratch: the normal
// equations G = AᵀA + λI, rhs = Aᵀb are accumulated into s and solved in
// place, so the call does no intermediate matrix allocations. The returned
// solution aliases s and is valid until the next call with the same scratch;
// copy it if it must outlive that.
func SolveRidgeInto(a *Matrix, b []float64, lambda float64, s *RidgeScratch) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("%w: A is %dx%d, b has %d", ErrShape, a.Rows, a.Cols, len(b))
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge penalty %v", lambda)
	}
	n := a.Cols
	g, rhs := s.grab(n)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*n : (i+1)*n]
		bi := b[i]
		for p := 0; p < n; p++ {
			rp := row[p]
			if rp == 0 {
				continue
			}
			rhs[p] += rp * bi
			// Accumulate the upper-triangle run g[p][p..n) against row[p..n);
			// subslicing here lets the compiler keep the bases in registers
			// even though g is scratch-backed rather than freshly allocated.
			grow := g.Data[p*n+p : p*n+n]
			rq := row[p:n]
			for q, v := range rq {
				grow[q] += rp * v
			}
		}
	}
	for p := 0; p < n; p++ {
		g.Data[p*n+p] += lambda
		for q := 0; q < p; q++ {
			g.Data[p*n+q] = g.Data[q*n+p]
		}
	}
	if err := CholeskySolveInPlace(g, rhs); err != nil {
		return nil, err
	}
	return rhs, nil
}

// CholeskySolve solves the symmetric positive-definite system Gx = b without
// modifying its inputs.
func CholeskySolve(g *Matrix, b []float64) ([]float64, error) {
	n := g.Rows
	if g.Cols != n || len(b) != n {
		return nil, fmt.Errorf("%w: G is %dx%d, b has %d", ErrShape, g.Rows, g.Cols, len(b))
	}
	work := g.Clone()
	x := make([]float64, n)
	copy(x, b)
	if err := CholeskySolveInPlace(work, x); err != nil {
		return nil, err
	}
	return x, nil
}

// CholeskySolveInPlace solves the symmetric positive-definite system Gx = b,
// overwriting g's lower triangle with its Cholesky factor L and b with the
// solution x. It allocates nothing, which is what the small normal-equations
// systems on the ARIMA/additive hot path need.
func CholeskySolveInPlace(g *Matrix, b []float64) error {
	n := g.Rows
	if g.Cols != n || len(b) != n {
		return fmt.Errorf("%w: G is %dx%d, b has %d", ErrShape, g.Rows, g.Cols, len(b))
	}
	// Decompose G = LLᵀ, writing L over g's lower triangle. Element (i,j) of
	// the input is only read before iteration (i,j) completes, so the
	// factorization can proceed in place.
	d := g.Data
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := d[i*n+j]
			for k := 0; k < j; k++ {
				sum -= d[i*n+k] * d[j*n+k]
			}
			if i == j {
				if sum <= 1e-14 {
					return ErrSingular
				}
				d[i*n+i] = math.Sqrt(sum)
			} else {
				d[i*n+j] = sum / d[j*n+j]
			}
		}
	}
	// Forward solve Ly = b (y over b).
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= d[i*n+k] * b[k]
		}
		b[i] = sum / d[i*n+i]
	}
	// Back solve Lᵀx = y (x over b).
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= d[k*n+i] * b[k]
		}
		b[i] = sum / d[i*n+i]
	}
	return nil
}

// Hankel builds the L×K trajectory (Hankel) matrix of series x with window
// length L, where K = len(x) − L + 1 and H[i][j] = x[i+j]. This is the
// embedding step of singular spectrum analysis. The SSA hot path fills its
// scratch-backed trajectory matrix inline; this constructor remains as the
// reference definition of the embedding (and for external consumers).
func Hankel(x []float64, l int) (*Matrix, error) {
	k := len(x) - l + 1
	if l <= 0 || k <= 0 {
		return nil, fmt.Errorf("%w: window %d of series %d", ErrShape, l, len(x))
	}
	h := NewMatrix(l, k)
	for i := 0; i < l; i++ {
		for j := 0; j < k; j++ {
			h.Set(i, j, x[i+j])
		}
	}
	return h, nil
}

// DiagonalAverage reconstructs a series of length l+k−1 from an l×k matrix by
// averaging its anti-diagonals — the inverse of the Hankel embedding used in
// SSA reconstruction. The SSA hot path computes only the trailing
// anti-diagonal sums it needs for the forecast seed; this full
// reconstruction remains as the reference the tail-only math is checked
// against.
func DiagonalAverage(m *Matrix) []float64 {
	l, k := m.Rows, m.Cols
	n := l + k - 1
	out := make([]float64, n)
	cnt := make([]int, n)
	for i := 0; i < l; i++ {
		for j := 0; j < k; j++ {
			out[i+j] += m.At(i, j)
			cnt[i+j]++
		}
	}
	for i := range out {
		out[i] /= float64(cnt[i])
	}
	return out
}
