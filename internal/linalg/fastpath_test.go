package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Property-style equivalence tests for the allocation-lean fast paths: each
// optimized primitive is checked against the straightforward reference
// composition on randomized fixed-seed inputs.

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	// Sprinkle exact zeros so the zero-skip branches are exercised.
	for k := 0; k < rows*cols/10; k++ {
		m.Data[rng.Intn(len(m.Data))] = 0
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMulTransposedIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range [][2]int{{1, 1}, {3, 2}, {5, 5}, {40, 7}, {200, 26}, {8, 30}} {
		a := randomMatrix(rng, shape[0], shape[1])
		want, err := a.T().Mul(a)
		if err != nil {
			t.Fatal(err)
		}
		got := NewMatrix(shape[1], shape[1])
		// Pre-dirty dst: MulTransposedInto must fully overwrite it.
		for i := range got.Data {
			got.Data[i] = math.NaN()
		}
		if err := MulTransposedInto(got, a); err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("shape %v: element %d: %v != %v", shape, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulTransposedIntoShapeError(t *testing.T) {
	a := NewMatrix(4, 3)
	if err := MulTransposedInto(NewMatrix(2, 3), a); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

// spdSystem builds a well-conditioned SPD matrix G = AᵀA + I and rhs.
func spdSystem(rng *rand.Rand, n int) (*Matrix, []float64) {
	a := randomMatrix(rng, n+8, n)
	g, err := a.T().Mul(a)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		g.Data[i*n+i]++
	}
	return g, randomVec(rng, n)
}

func TestCholeskySolveInPlaceMatchesCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 5, 9, 26} {
		g, b := spdSystem(rng, n)
		want, err := CholeskySolve(g, b)
		if err != nil {
			t.Fatal(err)
		}
		work := g.Clone()
		x := append([]float64(nil), b...)
		if err := CholeskySolveInPlace(work, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, x[i], want[i])
			}
		}
		// The solution must actually solve Gx = b.
		gx, err := g.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			if math.Abs(gx[i]-b[i]) > 1e-6 {
				t.Fatalf("n=%d: (Gx)[%d] = %v, want %v", n, i, gx[i], b[i])
			}
		}
	}
}

func TestCholeskySolveDoesNotModifyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, b := spdSystem(rng, 6)
	gCopy := append([]float64(nil), g.Data...)
	bCopy := append([]float64(nil), b...)
	if _, err := CholeskySolve(g, b); err != nil {
		t.Fatal(err)
	}
	for i := range gCopy {
		if g.Data[i] != gCopy[i] {
			t.Fatalf("CholeskySolve modified g at %d", i)
		}
	}
	for i := range bCopy {
		if b[i] != bCopy[i] {
			t.Fatalf("CholeskySolve modified b at %d", i)
		}
	}
}

func TestCholeskySolveInPlaceSingular(t *testing.T) {
	g := NewMatrix(2, 2) // all zero: not positive definite
	if err := CholeskySolveInPlace(g, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	if err := CholeskySolveInPlace(NewMatrix(2, 3), []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("err = %v, want ErrShape", err)
	}
}

// naiveRidge solves the ridge system by the explicit composition
// (AᵀA + λI) x = Aᵀb with out-of-place primitives.
func naiveRidge(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	at := a.T()
	g, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for i := 0; i < g.Rows; i++ {
		g.Data[i*g.Cols+i] += lambda
	}
	rhs, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(g, rhs)
}

func TestSolveRidgeIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var scratch RidgeScratch
	// Interleave sizes so the shared scratch is exercised growing and
	// shrinking; results must be independent of prior calls.
	for _, sz := range [][2]int{{30, 4}, {600, 26}, {12, 9}, {100, 17}, {20, 2}} {
		a := randomMatrix(rng, sz[0], sz[1])
		b := randomVec(rng, sz[0])
		for _, lambda := range []float64{0, 1e-6, 0.5} {
			want, err := naiveRidge(a, b, lambda)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SolveRidgeInto(a, b, lambda, &scratch)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("size %v λ=%v: x[%d] = %v, want %v", sz, lambda, i, got[i], want[i])
				}
			}
			// The convenience wrapper must agree too.
			wrapped, err := SolveRidge(a, b, lambda)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if wrapped[i] != got[i] {
					t.Fatalf("SolveRidge diverges from SolveRidgeInto at %d", i)
				}
			}
		}
	}
}

func TestSolveRidgeIntoErrors(t *testing.T) {
	var s RidgeScratch
	a := NewMatrix(3, 2)
	if _, err := SolveRidgeInto(a, []float64{1, 2}, 0, &s); !errors.Is(err, ErrShape) {
		t.Errorf("row mismatch err = %v", err)
	}
	if _, err := SolveRidgeInto(a, []float64{1, 2, 3}, -1, &s); err == nil {
		t.Error("negative lambda must fail")
	}
	// Zero matrix ⇒ singular normal equations.
	if _, err := SolveRidgeInto(a, []float64{1, 2, 3}, 0, &s); !errors.Is(err, ErrSingular) {
		t.Errorf("singular err = %v", err)
	}
}

func TestSolveRidgeIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 120, 12)
	b := randomVec(rng, 120)
	var s RidgeScratch
	if _, err := SolveRidgeInto(a, b, 1e-6, &s); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := SolveRidgeInto(a, b, 1e-6, &s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SolveRidgeInto allocated %.1f times per solve with warm scratch", allocs)
	}
}
