package validate

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"seagull/internal/extract"
	"seagull/internal/lake"
	"seagull/internal/timeseries"
)

func rowsCSV(t *testing.T, rows []lake.Row) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := lake.WriteRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func cleanRows() []lake.Row {
	return []lake.Row{
		{ServerID: "a", TimestampMin: 100, CPUPct: 10, BackupStartMin: 0, BackupEndMin: 10},
		{ServerID: "a", TimestampMin: 105, CPUPct: 20, BackupStartMin: 0, BackupEndMin: 10},
		{ServerID: "b", TimestampMin: 100, CPUPct: 30, BackupStartMin: 0, BackupEndMin: 10},
	}
}

func TestValidateCleanRows(t *testing.T) {
	rep, err := ValidateRows(rowsCSV(t, cleanRows()), DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid || len(rep.Anomalies) != 0 {
		t.Errorf("clean data flagged: %+v", rep.Anomalies)
	}
	if rep.Rows != 3 || rep.Servers != 2 {
		t.Errorf("rows=%d servers=%d", rep.Rows, rep.Servers)
	}
}

func TestValidateBoundAnomaly(t *testing.T) {
	rows := cleanRows()
	rows[1].CPUPct = 150
	rep, err := ValidateRows(rowsCSV(t, rows), DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid {
		t.Error("bound anomaly not flagged")
	}
	if rep.Anomalies[0].Kind != KindBound {
		t.Errorf("kind = %v", rep.Anomalies[0].Kind)
	}
	// The missing sentinel is allowed.
	rows = cleanRows()
	rows[1].CPUPct = -1
	rep, _ = ValidateRows(rowsCSV(t, rows), DefaultSchema())
	if !rep.Valid {
		t.Errorf("missing sentinel flagged: %+v", rep.Anomalies)
	}
}

func TestValidateDuplicateAndOrder(t *testing.T) {
	rows := cleanRows()
	rows[1].TimestampMin = 100 // duplicate of rows[0]
	rep, _ := ValidateRows(rowsCSV(t, rows), DefaultSchema())
	if rep.Valid || rep.Anomalies[0].Kind != KindDuplicate {
		t.Errorf("duplicate not flagged: %+v", rep.Anomalies)
	}

	rows = cleanRows()
	rows[1].TimestampMin = 50 // regression
	rep, _ = ValidateRows(rowsCSV(t, rows), DefaultSchema())
	if rep.Valid || rep.Anomalies[0].Kind != KindOrder {
		t.Errorf("order anomaly not flagged: %+v", rep.Anomalies)
	}
}

func TestValidateInterleavedServerBlocks(t *testing.T) {
	rows := []lake.Row{
		{ServerID: "a", TimestampMin: 100, CPUPct: 1},
		{ServerID: "b", TimestampMin: 100, CPUPct: 1},
		{ServerID: "a", TimestampMin: 105, CPUPct: 1}, // a reappears
	}
	rep, _ := ValidateRows(rowsCSV(t, rows), DefaultSchema())
	if rep.Valid {
		t.Error("interleaved blocks not flagged")
	}
	found := false
	for _, a := range rep.Anomalies {
		if a.Kind == KindOrder && strings.Contains(a.Detail, "interleaved") {
			found = true
		}
	}
	if !found {
		t.Errorf("anomalies = %+v", rep.Anomalies)
	}
}

func TestValidateSchemaAnomalies(t *testing.T) {
	// Bad header.
	rep, err := ValidateRows(strings.NewReader("bogus\n"), DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid {
		t.Error("bad header not flagged")
	}
	// Malformed row mid-file.
	data := lake.Header + "\na,100,1.0,0,0\nnot,a,row\n"
	rep, err = ValidateRows(strings.NewReader(data), DefaultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid {
		t.Error("malformed row not flagged")
	}
	// Empty file body.
	rep, _ = ValidateRows(strings.NewReader(lake.Header+"\n"), DefaultSchema())
	if rep.Valid || rep.Anomalies[0].Kind != KindEmpty {
		t.Errorf("empty body: %+v", rep.Anomalies)
	}
	// Empty server id.
	rows := cleanRows()
	rows[0].ServerID = ""
	rep, _ = ValidateRows(rowsCSV(t, rows), DefaultSchema())
	if rep.Valid {
		t.Error("empty server id not flagged")
	}
}

func TestValidateTimestampBounds(t *testing.T) {
	s := DefaultSchema()
	s.MinTimestamp, s.MaxTimestamp = 90, 110
	rows := cleanRows()
	rows[2].TimestampMin = 500
	rep, _ := ValidateRows(rowsCSV(t, rows), s)
	if rep.Valid {
		t.Error("timestamp outside schema span not flagged")
	}
}

func TestInferSchema(t *testing.T) {
	s, err := Infer(rowsCSV(t, cleanRows()))
	if err != nil {
		t.Fatal(err)
	}
	if s.MinTimestamp != 100 || s.MaxTimestamp != 105 {
		t.Errorf("timestamps = [%d,%d]", s.MinTimestamp, s.MaxTimestamp)
	}
	if s.MinCPU != 0 || s.MaxCPU != 100 {
		t.Errorf("cpu bounds = [%v,%v]", s.MinCPU, s.MaxCPU)
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := DefaultSchema()
	s.MinTimestamp, s.MaxTimestamp = 1, 2
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSchema(data)
	if err != nil || got != s {
		t.Errorf("round trip: %+v err %v", got, err)
	}
	if _, err := ParseSchema([]byte("{")); err == nil {
		t.Error("bad JSON should error")
	}
	if _, err := ParseSchema([]byte("{}")); err == nil {
		t.Error("schema without header should error")
	}
}

func mkLoad(id string, n int, f func(i int) float64) *extract.ServerLoad {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = f(i)
	}
	return &extract.ServerLoad{
		ServerID: id,
		Load: timeseries.New(
			time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC), 5*time.Minute, vals),
	}
}

func TestValidateLoadsClean(t *testing.T) {
	loads := []*extract.ServerLoad{
		mkLoad("a", 2016, func(int) float64 { return 30 }),
	}
	rep := ValidateLoads(loads, DefaultSchema(), 2016)
	if !rep.Valid || len(rep.Anomalies) != 0 {
		t.Errorf("clean loads flagged: %+v", rep.Anomalies)
	}
}

func TestValidateLoadsGap(t *testing.T) {
	loads := []*extract.ServerLoad{
		mkLoad("a", 100, func(i int) float64 {
			if i < 30 {
				return timeseries.Missing
			}
			return 10
		}),
	}
	rep := ValidateLoads(loads, DefaultSchema(), 0)
	if rep.Valid || rep.Anomalies[0].Kind != KindGap {
		t.Errorf("gap not flagged: %+v", rep.Anomalies)
	}
}

func TestValidateLoadsBound(t *testing.T) {
	loads := []*extract.ServerLoad{
		mkLoad("a", 10, func(i int) float64 { return 200 }),
	}
	rep := ValidateLoads(loads, DefaultSchema(), 0)
	if rep.Valid || rep.Anomalies[0].Kind != KindBound {
		t.Errorf("bound not flagged: %+v", rep.Anomalies)
	}
}

func TestValidateLoadsEmptyAndCoverage(t *testing.T) {
	loads := []*extract.ServerLoad{
		{ServerID: "empty"},
		mkLoad("partial", 1000, func(int) float64 { return 10 }),
	}
	rep := ValidateLoads(loads, DefaultSchema(), 2016)
	if rep.Valid {
		t.Error("empty server should invalidate")
	}
	kinds := map[AnomalyKind]bool{}
	for _, a := range rep.Anomalies {
		kinds[a.Kind] = true
	}
	if !kinds[KindEmpty] || !kinds[KindCoverage] {
		t.Errorf("kinds = %+v", kinds)
	}
	// Coverage alone keeps the batch valid.
	rep = ValidateLoads(loads[1:], DefaultSchema(), 2016)
	if !rep.Valid {
		t.Errorf("coverage-only should stay valid: %+v", rep.Anomalies)
	}
}

func TestAnomalyString(t *testing.T) {
	a := Anomaly{Kind: KindBound, ServerID: "s", Detail: "d"}
	if a.String() != "[bound] s: d" {
		t.Errorf("String = %q", a.String())
	}
	a = Anomaly{Kind: KindEmpty, Detail: "d"}
	if a.String() != "[empty] d" {
		t.Errorf("String = %q", a.String())
	}
}

func TestAnomalyCap(t *testing.T) {
	rows := make([]lake.Row, 500)
	for i := range rows {
		rows[i] = lake.Row{ServerID: "a", TimestampMin: int64(100 + i*5), CPUPct: 999}
	}
	rep, _ := ValidateRows(rowsCSV(t, rows), DefaultSchema())
	if len(rep.Anomalies) > maxAnomalies {
		t.Errorf("anomalies = %d, cap is %d", len(rep.Anomalies), maxAnomalies)
	}
	if rep.Valid {
		t.Error("capped report must still be invalid")
	}
}
