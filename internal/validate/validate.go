// Package validate implements Seagull's Data Validation module (Section 2.2):
// schema inference from input data, expert-verifiable schema files, and
// detection of schema and bound anomalies — the rules of Breck et al. the
// paper cites — plus per-server telemetry quality checks (gaps, duplicates,
// coverage).
//
// Concurrency: validation is stateless and safe to run concurrently per
// (region, week); reports are plain values. Validation never mutates its
// input — a validated extract trains on exactly the bytes that were
// checked.
package validate

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"seagull/internal/extract"
	"seagull/internal/lake"
	"seagull/internal/timeseries"
)

// Schema captures the deduced data properties of an extract dataset: the
// expected header and the observed numeric bounds. It is persisted as JSON,
// "verified by a domain expert", and then used to detect anomalies in later
// weeks (Section 2.4).
type Schema struct {
	Header       string  `json:"header"`
	MinTimestamp int64   `json:"min_timestamp_min"`
	MaxTimestamp int64   `json:"max_timestamp_min"`
	MinCPU       float64 `json:"min_cpu_pct"`
	MaxCPU       float64 `json:"max_cpu_pct"`
	// MissingSentinel is the encoding of missing observations (< 0 CPU).
	MissingSentinel float64 `json:"missing_sentinel"`
	// MaxMissingRatio is the tolerated per-server share of missing points.
	MaxMissingRatio float64 `json:"max_missing_ratio"`
}

// DefaultSchema returns the production schema for the backup-scheduling
// extracts: CPU percentages in [0,100] with -1 as the missing sentinel, and
// at most 20% missing points per server.
func DefaultSchema() Schema {
	return Schema{
		Header:          lake.Header,
		MinCPU:          0,
		MaxCPU:          100,
		MissingSentinel: -1,
		MaxMissingRatio: 0.2,
	}
}

// Infer deduces a schema from an extract stream: observed bounds widened to
// the physical CPU range.
func Infer(r io.Reader) (Schema, error) {
	s := DefaultSchema()
	first := true
	err := lake.ScanRows(r, func(row lake.Row) error {
		if first {
			s.MinTimestamp, s.MaxTimestamp = row.TimestampMin, row.TimestampMin
			first = false
		}
		if row.TimestampMin < s.MinTimestamp {
			s.MinTimestamp = row.TimestampMin
		}
		if row.TimestampMin > s.MaxTimestamp {
			s.MaxTimestamp = row.TimestampMin
		}
		return nil
	})
	if err != nil {
		return Schema{}, fmt.Errorf("validate: infer: %w", err)
	}
	return s, nil
}

// Marshal renders the schema as the JSON document a domain expert signs off.
func (s Schema) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseSchema loads a schema document.
func ParseSchema(data []byte) (Schema, error) {
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return Schema{}, fmt.Errorf("validate: parse schema: %w", err)
	}
	if s.Header == "" {
		return Schema{}, fmt.Errorf("validate: schema missing header")
	}
	return s, nil
}

// AnomalyKind classifies a detected problem.
type AnomalyKind string

// Anomaly kinds detected by the validator.
const (
	KindSchema    AnomalyKind = "schema"    // malformed row / wrong header
	KindBound     AnomalyKind = "bound"     // value outside schema bounds
	KindDuplicate AnomalyKind = "duplicate" // repeated (server, timestamp)
	KindGap       AnomalyKind = "gap"       // per-server missing data above threshold
	KindOrder     AnomalyKind = "order"     // timestamps regress within a server block
	KindEmpty     AnomalyKind = "empty"     // no data at all
	KindCoverage  AnomalyKind = "coverage"  // server span shorter than the week
)

// Anomaly is one detected data problem.
type Anomaly struct {
	Kind     AnomalyKind
	ServerID string
	Detail   string
}

func (a Anomaly) String() string {
	if a.ServerID == "" {
		return fmt.Sprintf("[%s] %s", a.Kind, a.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", a.Kind, a.ServerID, a.Detail)
}

// Report is the outcome of validating one weekly extract.
type Report struct {
	Rows      int
	Servers   int
	Anomalies []Anomaly
	// Valid means no anomalies severe enough to halt the pipeline; the
	// incident-management module alerts on !Valid (Section 2.2).
	Valid bool
}

// maxAnomalies caps the anomaly list so a corrupt file cannot blow up the
// report (the count still reflects reality via Truncated).
const maxAnomalies = 100

func (r *Report) add(a Anomaly) {
	if len(r.Anomalies) < maxAnomalies {
		r.Anomalies = append(r.Anomalies, a)
	}
}

// ValidateRows checks one extract stream against the schema: header, field
// bounds, per-server duplicate timestamps and ordering.
func ValidateRows(rd io.Reader, schema Schema) (*Report, error) {
	rep := &Report{}
	var (
		curServer string
		lastTS    int64
		seen      = map[string]bool{} // servers completed (detects interleaving)
	)
	err := lake.ScanRows(rd, func(row lake.Row) error {
		rep.Rows++
		if row.ServerID == "" {
			rep.add(Anomaly{Kind: KindSchema, Detail: "empty server id"})
		}
		if row.CPUPct != schema.MissingSentinel && (row.CPUPct < schema.MinCPU || row.CPUPct > schema.MaxCPU) {
			rep.add(Anomaly{Kind: KindBound, ServerID: row.ServerID,
				Detail: fmt.Sprintf("cpu %.3f outside [%.1f,%.1f]", row.CPUPct, schema.MinCPU, schema.MaxCPU)})
		}
		if schema.MaxTimestamp > 0 && (row.TimestampMin < schema.MinTimestamp || row.TimestampMin > schema.MaxTimestamp) {
			rep.add(Anomaly{Kind: KindBound, ServerID: row.ServerID,
				Detail: fmt.Sprintf("timestamp %d outside schema span", row.TimestampMin)})
		}
		if row.ServerID != curServer {
			if seen[row.ServerID] {
				rep.add(Anomaly{Kind: KindOrder, ServerID: row.ServerID,
					Detail: "server block interleaved"})
			}
			if curServer != "" {
				seen[curServer] = true
			}
			curServer = row.ServerID
			rep.Servers++
			lastTS = row.TimestampMin
			return nil
		}
		if row.TimestampMin == lastTS {
			rep.add(Anomaly{Kind: KindDuplicate, ServerID: row.ServerID,
				Detail: fmt.Sprintf("duplicate timestamp %d", row.TimestampMin)})
		} else if row.TimestampMin < lastTS {
			rep.add(Anomaly{Kind: KindOrder, ServerID: row.ServerID,
				Detail: fmt.Sprintf("timestamp %d after %d", row.TimestampMin, lastTS)})
		}
		lastTS = row.TimestampMin
		return nil
	})
	if err != nil {
		// A malformed row is a schema anomaly, not a hard error: record it so
		// the incident manager can alert with context.
		rep.add(Anomaly{Kind: KindSchema, Detail: err.Error()})
	}
	if rep.Rows == 0 {
		rep.add(Anomaly{Kind: KindEmpty, Detail: "extract contains no rows"})
	}
	rep.Valid = len(rep.Anomalies) == 0
	return rep, nil
}

// ValidateLoads checks ingested per-server series: missing-data ratio,
// physically impossible values and sub-week coverage. weekPoints is the
// expected number of observations for a full week at the dataset interval.
func ValidateLoads(loads []*extract.ServerLoad, schema Schema, weekPoints int) *Report {
	rep := &Report{Servers: len(loads)}
	for _, sl := range loads {
		rep.Rows += sl.Load.Len()
		n := sl.Load.Len()
		if n == 0 {
			rep.add(Anomaly{Kind: KindEmpty, ServerID: sl.ServerID, Detail: "no observations"})
			continue
		}
		missing := sl.Load.MissingCount()
		if ratio := float64(missing) / float64(n); ratio > schema.MaxMissingRatio {
			rep.add(Anomaly{Kind: KindGap, ServerID: sl.ServerID,
				Detail: fmt.Sprintf("%.1f%% missing exceeds %.1f%%", 100*ratio, 100*schema.MaxMissingRatio)})
		}
		for _, v := range sl.Load.Values {
			if timeseries.IsMissing(v) {
				continue
			}
			if v < schema.MinCPU || v > schema.MaxCPU || math.IsInf(v, 0) {
				rep.add(Anomaly{Kind: KindBound, ServerID: sl.ServerID,
					Detail: fmt.Sprintf("load %.3f outside [%.1f,%.1f]", v, schema.MinCPU, schema.MaxCPU)})
				break
			}
		}
		if weekPoints > 0 && n < weekPoints && n >= weekPoints/7 {
			// Partial coverage is expected for servers created or deleted
			// mid-week; only note it (it feeds the lifespan feature).
			rep.add(Anomaly{Kind: KindCoverage, ServerID: sl.ServerID,
				Detail: fmt.Sprintf("%d of %d expected points", n, weekPoints)})
		}
	}
	// Coverage notes do not invalidate a batch; anything else does.
	rep.Valid = true
	for _, a := range rep.Anomalies {
		if a.Kind != KindCoverage {
			rep.Valid = false
			break
		}
	}
	return rep
}
