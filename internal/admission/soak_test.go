package admission

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The soak test models a CPU-bound server: simulated service time grows
// linearly with admitted concurrency (svcUnit per in-flight request), so
// running "hotter" makes every request slower — exactly the regime the
// AIMD limiter exists for. A goroutine storm at 10× the baseline client
// count must not collapse accepted-request latency or goodput, every shed
// must carry Retry-After, and after a squeeze phase (service slowdown)
// drags the limit down, it must re-open within 5 seconds.
//
// All load is closed-loop (clients wait for their own completions), which
// keeps the test deterministic across machines: margins are 2x or wider.

type soakStats struct {
	mu        sync.Mutex
	latencies []time.Duration // accepted requests only
	accepted  uint64
	sheds     uint64
	badRetry  uint64 // sheds missing a Retry-After hint
}

func (s *soakStats) record(lat time.Duration) {
	s.mu.Lock()
	s.latencies = append(s.latencies, lat)
	s.accepted++
	s.mu.Unlock()
}

func (s *soakStats) shed(res Result) {
	s.mu.Lock()
	s.sheds++
	if res.RetryAfter <= 0 {
		s.badRetry++
	}
	s.mu.Unlock()
}

func (s *soakStats) p99() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.latencies))
	copy(sorted, s.latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func (s *soakStats) snapshot() (accepted, sheds, badRetry uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted, s.sheds, s.badRetry
}

// soakClient loops acquire → simulated work → release until stop closes.
// svcUnit is read atomically so the squeeze phase can slow the "server"
// mid-run. think adds idle time between requests (baseline clients only).
func soakClient(l *Limiter, ep *Endpoint, st *soakStats, svcUnit *atomic.Int64, think time.Duration, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		start := time.Now()
		tk, res := ep.Acquire(context.Background(), false)
		switch res.Verdict {
		case Admitted:
			// Service time scales with how many requests were let in:
			// contention made concrete.
			n := l.InFlight()
			if n < 1 {
				n = 1
			}
			time.Sleep(time.Duration(n) * time.Duration(svcUnit.Load()))
			tk.Release()
			st.record(time.Since(start))
		default:
			st.shed(res)
			time.Sleep(2 * time.Millisecond) // abusive client, but not a spin loop
		}
		if think > 0 {
			time.Sleep(think)
		}
	}
}

func TestSoakStormKeepsLatencyAndGoodput(t *testing.T) {
	const (
		maxInflight = 16
		queueCap    = 8
		target      = 60 * time.Millisecond
		baseClients = 4
		stormFactor = 10 // 10x the baseline client population
	)
	baseDur, stormDur, squeezeDur := 700*time.Millisecond, 1500*time.Millisecond, 700*time.Millisecond
	if testing.Short() {
		baseDur, stormDur, squeezeDur = 300*time.Millisecond, 600*time.Millisecond, 400*time.Millisecond
	}

	l := NewLimiter(Config{
		MaxInflight: maxInflight,
		QueueCap:    queueCap,
		Target:      target,
	})
	ep := l.Endpoint("predict", Predict, target)

	var svcUnit atomic.Int64
	svcUnit.Store(int64(time.Millisecond)) // svc = 1ms x in-flight

	// Phase 1: baseline. A few polite clients, comfortably under capacity.
	base := &soakStats{}
	stopBase := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < baseClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			soakClient(l, ep, base, &svcUnit, 2*time.Millisecond, stopBase)
		}()
	}
	time.Sleep(baseDur)
	baseAccepted, _, _ := base.snapshot()
	baseRate := float64(baseAccepted) / baseDur.Seconds()
	if baseRate == 0 {
		t.Fatal("baseline produced no completions")
	}

	// Phase 2: storm. 10x the client population piles on with zero think
	// time; baseline clients keep running underneath.
	storm := &soakStats{}
	stopStorm := make(chan struct{})
	for i := 0; i < baseClients*stormFactor; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			soakClient(l, ep, storm, &svcUnit, 0, stopStorm)
		}()
	}
	stormStart := time.Now()
	time.Sleep(stormDur)
	stormElapsed := time.Since(stormStart)
	stormAcceptedMid, stormSheds, _ := storm.snapshot()
	baseAcceptedMid, _, _ := base.snapshot()

	// Accepted-request p99 must hold under the latency target even at 10x.
	if p99 := storm.p99(); p99 > target {
		t.Errorf("storm accepted p99 = %v, want <= %v", p99, target)
	}
	// Goodput (all accepted completions/s) must stay >= 80% of baseline.
	stormRate := float64(stormAcceptedMid+baseAcceptedMid-baseAccepted) / stormElapsed.Seconds()
	if stormRate < 0.8*baseRate {
		t.Errorf("storm goodput = %.0f/s, want >= 80%% of baseline %.0f/s", stormRate, baseRate)
	}
	// The storm must actually have shed (otherwise this test proves nothing).
	if stormSheds == 0 {
		t.Error("storm shed nothing — load did not exceed capacity")
	}

	// Phase 3: squeeze. The simulated server slows 4x (e.g. a co-located
	// retrain storm); over-target completions must drag the limit down.
	svcUnit.Store(int64(4 * time.Millisecond))
	time.Sleep(squeezeDur)
	squeezed := l.Limit()
	if squeezed > 0.8*maxInflight {
		t.Errorf("limit = %.1f after squeeze, want < %.1f (AIMD must back off)", squeezed, 0.8*maxInflight)
	}

	// Phase 4: recovery. Storm ends, service speed restores; the limit
	// must re-open to >= 90%% of max within 5s.
	svcUnit.Store(int64(time.Millisecond))
	close(stopStorm)
	recoverDeadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(recoverDeadline) {
		if l.Limit() >= 0.9*maxInflight {
			recovered = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !recovered {
		t.Errorf("limit = %.1f did not recover to %.1f within 5s of storm end (from %.1f)",
			l.Limit(), 0.9*maxInflight, squeezed)
	}
	close(stopBase)
	wg.Wait()

	// Every shed across all phases must have carried a Retry-After hint.
	_, totalSheds, badRetry := storm.snapshot()
	_, baseSheds, baseBad := base.snapshot()
	if badRetry+baseBad > 0 {
		t.Errorf("%d of %d sheds carried no Retry-After", badRetry+baseBad, totalSheds+baseSheds)
	}
	if l.InFlight() != 0 {
		t.Errorf("InFlight = %d after drain, want 0", l.InFlight())
	}
}
