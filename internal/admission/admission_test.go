package admission

import (
	"context"
	"sync"
	"testing"
	"time"
)

// hold admits n requests and returns their tickets (failing the test when
// any is not admitted).
func hold(t *testing.T, ep *Endpoint, n int) []Ticket {
	t.Helper()
	out := make([]Ticket, 0, n)
	for i := 0; i < n; i++ {
		tk, res := ep.Acquire(context.Background(), false)
		if res.Verdict != Admitted {
			t.Fatalf("acquire %d: verdict %v, want Admitted", i, res.Verdict)
		}
		out = append(out, tk)
	}
	return out
}

func TestFastPathAdmitsUnderLimit(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 4})
	ep := l.Endpoint("a", Predict, 0)
	tickets := hold(t, ep, 4)
	if got := l.InFlight(); got != 4 {
		t.Fatalf("InFlight = %d, want 4", got)
	}
	for _, tk := range tickets {
		tk.Release()
	}
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
	st := l.Stats()
	if st.Endpoints["a"].Admitted != 4 {
		t.Fatalf("admitted = %d, want 4", st.Endpoints["a"].Admitted)
	}
}

// acquireAsync starts an Acquire on its own goroutine and returns channels
// carrying the outcome.
func acquireAsync(ctx context.Context, ep *Endpoint, allowDegrade bool) (<-chan Ticket, <-chan Result) {
	tc := make(chan Ticket, 1)
	rc := make(chan Result, 1)
	go func() {
		tk, res := ep.Acquire(ctx, allowDegrade)
		tc <- tk
		rc <- res
	}()
	return tc, rc
}

func TestQueueGrantsInPriorityOrder(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueCap: 8})
	bg := l.Endpoint("bg", Background, 0)
	pr := l.Endpoint("pr", Predict, 0)

	blocker := hold(t, pr, 1)

	// Queue a background waiter first, then a predict waiter.
	bgT, bgR := acquireAsync(context.Background(), bg, false)
	waitQueued(t, l, 1)
	prT, prR := acquireAsync(context.Background(), pr, false)
	waitQueued(t, l, 2)

	// Freeing the slot must grant the predict waiter despite its later
	// arrival: strict class priority.
	blocker[0].Release()
	res := <-prR
	if res.Verdict != Admitted {
		t.Fatalf("predict verdict %v, want Admitted", res.Verdict)
	}
	(<-prT).Release()
	if res := <-bgR; res.Verdict != Admitted {
		t.Fatalf("background verdict %v, want Admitted", res.Verdict)
	}
	(<-bgT).Release()
}

// waitQueued polls until the limiter reports n queued waiters.
func waitQueued(t *testing.T, l *Limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		q := l.queued
		l.mu.Unlock()
		if q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, q)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFullQueueShedsWithRetryAfter(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueCap: 1})
	ep := l.Endpoint("p", Predict, 0)
	tickets := hold(t, ep, 1)
	defer func() {
		for _, tk := range tickets {
			tk.Release()
		}
	}()
	_, _ = acquireAsync(context.Background(), ep, false)
	waitQueued(t, l, 1)

	_, res := ep.Acquire(context.Background(), false)
	if res.Verdict != Shed {
		t.Fatalf("verdict %v, want Shed", res.Verdict)
	}
	if res.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s (wire carries whole delta-seconds)", res.RetryAfter)
	}
	st := l.Stats()
	if st.Sheds == 0 || st.Endpoints["p"].Shed == 0 {
		t.Fatalf("shed counters not incremented: %+v", st)
	}
}

func TestHigherClassEvictsLowestWaiter(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueCap: 1})
	bg := l.Endpoint("bg", Background, 0)
	pr := l.Endpoint("pr", Predict, 0)
	blocker := hold(t, pr, 1)

	_, bgR := acquireAsync(context.Background(), bg, false)
	waitQueued(t, l, 1)

	// The queue is full of background traffic; an arriving predict evicts it.
	prT, prR := acquireAsync(context.Background(), pr, false)
	res := <-bgR
	if res.Verdict != Shed {
		t.Fatalf("evicted background verdict %v, want Shed", res.Verdict)
	}
	if res.RetryAfter <= 0 {
		t.Fatalf("evicted waiter carries no RetryAfter")
	}
	blocker[0].Release()
	if res := <-prR; res.Verdict != Admitted {
		t.Fatalf("predict verdict %v, want Admitted", res.Verdict)
	}
	(<-prT).Release()
	st := l.Stats()
	if st.Evictions != 1 || st.Endpoints["bg"].Evicted != 1 {
		t.Fatalf("eviction counters wrong: %+v", st)
	}
}

func TestBackgroundCannotEvictPredict(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueCap: 1})
	bg := l.Endpoint("bg", Background, 0)
	pr := l.Endpoint("pr", Predict, 0)
	blocker := hold(t, pr, 1)
	defer blocker[0].Release()

	_, _ = acquireAsync(context.Background(), pr, false)
	waitQueued(t, l, 1)

	_, res := bg.Acquire(context.Background(), false)
	if res.Verdict != Shed {
		t.Fatalf("verdict %v, want Shed (no lower-priority waiter to evict)", res.Verdict)
	}
	if got := l.Stats().Evictions; got != 0 {
		t.Fatalf("evictions = %d, want 0", got)
	}
}

func TestDeadlineRejectedOnArrival(t *testing.T) {
	// Target 1s seeds the service-time estimate at 100ms; a 5ms deadline
	// cannot cover it, so the request is rejected before queueing.
	l := NewLimiter(Config{MaxInflight: 1, QueueCap: 8, Target: time.Second})
	ep := l.Endpoint("p", Predict, 0)
	blocker := hold(t, ep, 1)
	defer blocker[0].Release()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, res := ep.Acquire(ctx, false)
	if res.Verdict != ShedDeadline {
		t.Fatalf("verdict %v, want ShedDeadline", res.Verdict)
	}
	if res.RetryAfter <= 0 {
		t.Fatal("deadline shed carries no RetryAfter")
	}
	if got := l.Stats().DeadlineRejects; got != 1 {
		t.Fatalf("DeadlineRejects = %d, want 1", got)
	}
}

func TestDeadlineRejectedAtGrant(t *testing.T) {
	// A queued waiter whose deadline expires while waiting must be rejected
	// when capacity frees, not executed. The 50ms deadline comfortably
	// covers the seeded estimate (target/10 = 1ms) at arrival.
	l := NewLimiter(Config{MaxInflight: 1, QueueCap: 8, Target: 10 * time.Millisecond})
	ep := l.Endpoint("p", Predict, 0)
	blocker := hold(t, ep, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, rc := acquireAsync(ctx, ep, false)
	waitQueued(t, l, 1)
	time.Sleep(60 * time.Millisecond) // let the waiter's deadline lapse
	blocker[0].Release()
	res := <-rc
	if res.Verdict != ShedDeadline && res.Verdict != Canceled {
		t.Fatalf("verdict %v, want ShedDeadline (or Canceled via ctx)", res.Verdict)
	}
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0 — expired waiter must not run", got)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueCap: 8})
	ep := l.Endpoint("p", Predict, 0)
	blocker := hold(t, ep, 1)

	ctx, cancel := context.WithCancel(context.Background())
	_, rc := acquireAsync(ctx, ep, false)
	waitQueued(t, l, 1)
	cancel()
	if res := <-rc; res.Verdict != Canceled {
		t.Fatalf("verdict %v, want Canceled", res.Verdict)
	}
	// The abandoned waiter must not absorb the freed slot.
	blocker[0].Release()
	tk, res := ep.Acquire(context.Background(), false)
	if res.Verdict != Admitted {
		t.Fatalf("post-cancel acquire verdict %v, want Admitted", res.Verdict)
	}
	tk.Release()
}

func TestAIMDDecreasesOnOverTargetAndRecovers(t *testing.T) {
	l := NewLimiter(Config{
		MaxInflight: 16, Target: time.Millisecond,
		DecreaseCooldown: time.Nanosecond, // every over-target completion may decrease
	})
	ep := l.Endpoint("p", Predict, 0)

	// Over-target completions walk the limit down multiplicatively.
	for i := 0; i < 20; i++ {
		tk, res := ep.Acquire(context.Background(), false)
		if res.Verdict != Admitted {
			t.Fatalf("acquire: %v", res.Verdict)
		}
		time.Sleep(3 * time.Millisecond) // 3x the 1ms target
		tk.Release()
	}
	low := l.Limit()
	if low >= 16 {
		t.Fatalf("limit = %.1f after sustained over-target latency, want < 16", low)
	}

	// On-target completions (fast, under 1ms) grow it back additively.
	for i := 0; i < 400 && l.Limit() < 15.5; i++ {
		tk, res := ep.Acquire(context.Background(), false)
		if res.Verdict != Admitted {
			t.Fatalf("acquire: %v", res.Verdict)
		}
		tk.Release()
	}
	if got := l.Limit(); got < 15.5 {
		t.Fatalf("limit = %.1f after fast completions, want recovered to ~16 (from %.1f)", got, low)
	}
}

func TestAIMDDecreaseCooldownBoundsCollapse(t *testing.T) {
	// With a long cooldown, a burst of slow completions counts as ONE
	// congestion event: the limit decreases exactly once.
	l := NewLimiter(Config{
		MaxInflight: 16, Target: time.Nanosecond, // everything is over target
		DecreaseCooldown: time.Hour,
	})
	ep := l.Endpoint("p", Predict, 0)
	for i := 0; i < 10; i++ {
		tk, res := ep.Acquire(context.Background(), false)
		if res.Verdict != Admitted {
			t.Fatalf("acquire: %v", res.Verdict)
		}
		tk.Release()
	}
	want := 16 * 0.85
	if got := l.Limit(); got < want-0.01 || got > want+0.01 {
		t.Fatalf("limit = %.2f, want exactly one 0.85 decrease (%.2f)", got, want)
	}
}

func TestBrownoutServesDegradedWhenSaturated(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueCap: 2, Brownout: true})
	ep := l.Endpoint("p", Predict, 0)
	blocker := hold(t, ep, 1)
	defer blocker[0].Release()
	_, _ = acquireAsync(context.Background(), ep, false)
	waitQueued(t, l, 1)

	// Saturated (limit exhausted + waiter behind it): a degradable request
	// is served the fallback instead of queueing behind the storm.
	_, res := ep.Acquire(context.Background(), true)
	if res.Verdict != Degraded {
		t.Fatalf("verdict %v, want Degraded", res.Verdict)
	}
	st := l.Stats()
	if st.Endpoints["p"].Degraded != 1 {
		t.Fatalf("degraded counter = %d, want 1", st.Endpoints["p"].Degraded)
	}
	if !st.Brownout || st.BrownoutEntries == 0 {
		t.Fatalf("brownout state not reported: %+v", st)
	}
	// A non-degradable request still queues/sheds normally (bounded here by
	// a deadline so the test doesn't wait behind the blocker).
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, res = ep.Acquire(ctx, false)
	if res.Verdict == Degraded {
		t.Fatal("non-degradable request must not be degraded")
	}
}

func TestBrownoutDisabledSheds(t *testing.T) {
	l := NewLimiter(Config{MaxInflight: 1, QueueCap: 1})
	ep := l.Endpoint("p", Predict, 0)
	blocker := hold(t, ep, 1)
	defer blocker[0].Release()
	_, _ = acquireAsync(context.Background(), ep, false)
	waitQueued(t, l, 1)

	_, res := ep.Acquire(context.Background(), true)
	if res.Verdict == Degraded {
		t.Fatal("brownout disabled: allowDegrade must not produce Degraded")
	}
}

func TestBrownoutExternalSaturationHook(t *testing.T) {
	var saturated bool
	var mu sync.Mutex
	l := NewLimiter(Config{
		MaxInflight: 8, Brownout: true,
		Saturated: func() bool { mu.Lock(); defer mu.Unlock(); return saturated },
	})
	if l.Brownout() {
		t.Fatal("brownout with idle limiter and clear hook")
	}
	mu.Lock()
	saturated = true
	mu.Unlock()
	if !l.Brownout() {
		t.Fatal("external saturation hook must enter brownout")
	}
	mu.Lock()
	saturated = false
	mu.Unlock()
	if l.Brownout() {
		t.Fatal("brownout must clear with the hook")
	}
	if got := l.Stats().BrownoutEntries; got != 1 {
		t.Fatalf("BrownoutEntries = %d, want 1", got)
	}
}

func TestConcurrentAcquireReleaseRace(t *testing.T) {
	// Hammer the limiter from many goroutines; run under -race in CI. The
	// invariant checked at the end: all slots returned, queue empty.
	l := NewLimiter(Config{MaxInflight: 4, QueueCap: 8})
	eps := []*Endpoint{
		l.Endpoint("p", Predict, 0),
		l.Endpoint("i", Ingest, 0),
		l.Endpoint("b", Background, 0),
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ep := eps[g%len(eps)]
			for i := 0; i < 200; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				tk, res := ep.Acquire(ctx, g%2 == 0)
				if res.Verdict == Admitted {
					tk.Release()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after drain, want 0", got)
	}
	st := l.Stats()
	if st.InQueue != 0 {
		t.Fatalf("InQueue = %d after drain, want 0", st.InQueue)
	}
	var admitted uint64
	for _, e := range st.Endpoints {
		admitted += e.Admitted
	}
	if admitted == 0 {
		t.Fatal("nothing was admitted")
	}
}
