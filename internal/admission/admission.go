// Package admission is the serving layer's overload story: an adaptive
// concurrency limiter with a bounded priority queue, deadline-aware load
// shedding and a brownout signal for graceful degradation.
//
// The problem it solves is the one Seagull itself exists to solve for other
// services (Poppe et al., VLDB 2020): a process under a burst storm that
// admits every request queues unboundedly until latency collapses for
// *everyone*. Robust-provisioning work (Makridis et al.; Pace et al.) argues
// the same conclusion from the resource side — graceful, prioritized
// degradation beats open-loop admission. The limiter here closes that loop:
//
//   - Adaptive limit (AIMD, gradient-style). The concurrency limit rises
//     additively (+IncreasePerDone/limit per completion, the TCP-style probe)
//     while observed request latency stays at or under the endpoint's target,
//     and falls multiplicatively (×DecreaseFactor, at most once per cooldown)
//     when completions come in over target. The observed quantity includes
//     queue wait, so a growing queue pushes the limit down before clients
//     time out, and the normalized ratio latency/target lets endpoints with
//     very different service times share one limit.
//
//   - Bounded priority queue. Requests beyond the limit wait in a bounded
//     queue ordered by class (Predict > Ingest > Background; FIFO within a
//     class). A full queue sheds — and an arriving higher-class request
//     evicts the youngest waiter of the lowest class present, so under
//     overload the cheap-to-retry background traffic is shed first and
//     forecasts keep flowing.
//
//   - Deadline-aware shedding. A request whose propagated deadline cannot
//     cover the estimated queue wait plus service time is rejected on
//     arrival, and a queued request whose deadline has expired is rejected at
//     grant time — before any work is done on its behalf. Every shed carries
//     a computed Retry-After (estimated queue drain time), which the serving
//     client's retry loop and circuit breaker honor.
//
//   - Brownout. When the limiter is saturated (or an external backpressure
//     hook reports saturation, e.g. the stream refresher's sustained-drop
//     predicate), endpoints that registered a degraded fallback are told to
//     serve it instead of shedding: /v2/predict falls back to the cheap
//     persistent-model forecast, trading accuracy for availability.
//
// The accept fast path takes one mutex and allocates nothing; waiters
// allocate only on the queue path. BenchmarkAdmissionAccept pins the
// zero-alloc guarantee.
package admission

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"seagull/internal/simclock"
)

// Class is a request's priority class. Lower values are more important:
// under overload, higher-valued classes are queued behind and shed before
// lower-valued ones. Liveness endpoints (health, readiness, varz) are never
// routed through the limiter at all — an operator must be able to observe an
// overloaded process.
type Class uint8

const (
	// Predict is forecast traffic — the service's reason to exist; shed last.
	Predict Class = iota
	// Ingest is telemetry writes — droppable under pressure because appends
	// are idempotent and clients re-send under their retry budget.
	Ingest
	// Background is advisory/introspection traffic (advise, models, stored
	// predictions) — cheapest to retry, shed first.
	Background

	numClasses
)

// String returns the class name used in stats.
func (c Class) String() string {
	switch c {
	case Predict:
		return "predict"
	case Ingest:
		return "ingest"
	case Background:
		return "background"
	default:
		return "unknown"
	}
}

// Verdict is the outcome of an admission decision.
type Verdict uint8

const (
	// Admitted: proceed; the caller holds a concurrency slot and must call
	// Endpoint.Release exactly once.
	Admitted Verdict = iota
	// Degraded: the limiter is saturated and this endpoint registered a
	// degraded fallback — serve the cheap path, outside the limit, and do
	// not call Release.
	Degraded
	// Shed: rejected (queue full, evicted, or deadline hopeless). Do no
	// work; respond with the retry hint. Do not call Release.
	Shed
	// ShedDeadline: rejected because the request's deadline cannot be met
	// (on arrival, while queued, or at grant time). Do not call Release.
	ShedDeadline
	// Canceled: the caller's context ended while waiting. Do not call
	// Release.
	Canceled
)

// String returns the verdict name used in logs.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case Degraded:
		return "degraded"
	case Shed:
		return "shed"
	case ShedDeadline:
		return "shed_deadline"
	case Canceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Config parameterizes a Limiter. The zero value selects production
// defaults sized for one serving process.
type Config struct {
	// MaxInflight is the hard ceiling on concurrently admitted requests —
	// the value the adaptive limit can recover to. Default 64.
	MaxInflight int
	// MinLimit is the floor the multiplicative decrease cannot cross.
	// Default 1.
	MinLimit int
	// InitialLimit seeds the adaptive limit. Default MaxInflight (start
	// open; the first overload walks it down).
	InitialLimit int
	// Target is the default per-request latency target (queue wait plus
	// service) that drives the AIMD signal; Endpoint registration may
	// override it per endpoint. Default 500ms.
	Target time.Duration
	// QueueCap bounds the total waiters across all classes. Default
	// 2×MaxInflight.
	QueueCap int
	// IncreasePerDone is the additive-increase numerator: each on-target
	// completion grows the limit by IncreasePerDone/limit, i.e. roughly +1
	// per limit-worth of completions. Default 1.
	IncreasePerDone float64
	// DecreaseFactor is the multiplicative decrease applied when a
	// completion exceeds its target. Default 0.85.
	DecreaseFactor float64
	// DecreaseCooldown is the minimum spacing between two multiplicative
	// decreases, so one slow burst (whose completions all arrive over
	// target together) counts as one congestion event, not a collapse to
	// MinLimit. Default: the endpoint-default Target.
	DecreaseCooldown time.Duration
	// ShedWindow is how long after a shed/eviction the limiter still
	// reports itself saturated (the brownout entry signal). Default 1s.
	ShedWindow time.Duration
	// Brownout enables the degraded-fallback verdict. Off, saturated
	// endpoints with a fallback shed like everyone else.
	Brownout bool
	// Saturated, when non-nil, is an external backpressure hook folded into
	// the brownout signal (the stream refresher's sustained-drop predicate).
	Saturated func() bool
	// Clock supplies the cooldown/shed-window timestamps; nil means the
	// wall clock. Simulations inject a compressed clock.
	Clock simclock.Clock
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = c.MaxInflight
	}
	if c.InitialLimit > c.MaxInflight {
		c.InitialLimit = c.MaxInflight
	}
	if c.Target <= 0 {
		c.Target = 500 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 2 * c.MaxInflight
	}
	if c.IncreasePerDone <= 0 {
		c.IncreasePerDone = 1
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.85
	}
	if c.DecreaseCooldown <= 0 {
		c.DecreaseCooldown = c.Target
	}
	if c.ShedWindow <= 0 {
		c.ShedWindow = time.Second
	}
	return c
}

// waiter state, guarded by the limiter mutex.
type waiterState uint8

const (
	waiting waiterState = iota
	granted
	shedded   // queue eviction or deadline rejection; verdict in w.verdict
	abandoned // caller's context ended; skipped at grant time
)

// waiter is one queued request.
type waiter struct {
	ep       *Endpoint
	deadline time.Time // zero: none
	enq      time.Time
	state    waiterState
	verdict  Verdict       // valid when state == shedded
	ready    chan struct{} // closed on grant/shed
}

// Limiter is the shared admission controller for one serving process: one
// adaptive concurrency limit, one bounded priority queue. Endpoints are
// registered once at wiring time and hand out per-request tickets. Safe for
// concurrent use.
type Limiter struct {
	cfg Config

	mu           sync.Mutex
	limit        float64
	inFlight     int
	queues       [numClasses][]*waiter // FIFO per class; head at index 0
	queued       int
	lastDecrease time.Time
	lastShed     time.Time

	endpoints   map[string]*Endpoint
	endpointsMu sync.Mutex

	sheds           atomic.Uint64
	evictions       atomic.Uint64
	deadlineRejects atomic.Uint64
	brownoutActive  atomic.Bool
	brownoutEntries atomic.Uint64
}

// NewLimiter builds a limiter from cfg.
func NewLimiter(cfg Config) *Limiter {
	cfg = cfg.withDefaults()
	cfg.Clock = simclock.Or(cfg.Clock)
	return &Limiter{
		cfg:       cfg,
		limit:     float64(cfg.InitialLimit),
		endpoints: map[string]*Endpoint{},
	}
}

// Endpoint registers (or returns the existing) named endpoint with its
// priority class and latency target (0 selects the limiter default). The
// returned handle is the per-request entry point.
func (l *Limiter) Endpoint(name string, class Class, target time.Duration) *Endpoint {
	if class >= numClasses {
		class = Background
	}
	if target <= 0 {
		target = l.cfg.Target
	}
	l.endpointsMu.Lock()
	defer l.endpointsMu.Unlock()
	if ep, ok := l.endpoints[name]; ok {
		return ep
	}
	ep := &Endpoint{l: l, name: name, class: class, target: target}
	// Seed the service-time estimate at a tenth of the target: optimistic
	// enough not to pre-reject early deadlines, real completions correct it
	// within a few requests.
	ep.estNs.Store(int64(target / 10))
	l.endpoints[name] = ep
	return ep
}

// Limit returns the current adaptive concurrency limit.
func (l *Limiter) Limit() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit
}

// InFlight returns the number of currently admitted requests.
func (l *Limiter) InFlight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inFlight
}

// saturatedLocked reports limiter-side saturation: the limit is exhausted
// with waiters behind it, the queue is half full, or a shed happened within
// the shed window. Callers hold l.mu.
func (l *Limiter) saturatedLocked(now time.Time) bool {
	if l.inFlight >= int(l.limit) && l.queued > 0 {
		return true
	}
	if l.queued >= l.cfg.QueueCap/2 {
		return true
	}
	return now.Sub(l.lastShed) < l.cfg.ShedWindow
}

// Brownout reports whether degraded fallbacks should serve: brownout is
// enabled and either the limiter is saturated or the external backpressure
// hook says so. Transitions into brownout are counted for /varz.
func (l *Limiter) Brownout() bool {
	if !l.cfg.Brownout {
		return false
	}
	now := l.cfg.Clock.Now()
	l.mu.Lock()
	sat := l.saturatedLocked(now)
	l.mu.Unlock()
	if !sat && l.cfg.Saturated != nil {
		sat = l.cfg.Saturated()
	}
	if sat && !l.brownoutActive.Swap(true) {
		l.brownoutEntries.Add(1)
	} else if !sat {
		l.brownoutActive.Store(false)
	}
	return sat
}

// retryAfterLocked estimates when shed traffic should come back: the time
// for the current queue plus one more request to drain through the limit at
// the endpoint's estimated service time, clamped to [1s, 30s] (whole
// seconds — the wire carries delta-seconds). Callers hold l.mu.
func (l *Limiter) retryAfterLocked(ep *Endpoint) time.Duration {
	est := time.Duration(ep.estNs.Load())
	lim := l.limit
	if lim < 1 {
		lim = 1
	}
	drain := time.Duration(float64(l.queued+1) * float64(est) / lim)
	secs := int64(math.Ceil(drain.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return time.Duration(secs) * time.Second
}

// estWaitLocked estimates the queue wait a new arrival of class c would see:
// the waiters at or ahead of its class draining through the limit. Callers
// hold l.mu.
func (l *Limiter) estWaitLocked(c Class, est time.Duration) time.Duration {
	ahead := 0
	for cl := Class(0); cl <= c; cl++ {
		ahead += len(l.queues[cl])
	}
	lim := l.limit
	if lim < 1 {
		lim = 1
	}
	return time.Duration(float64(ahead) * float64(est) / lim)
}

// shedLocked records a shed and stamps the saturation window.
func (l *Limiter) shedLocked(now time.Time) {
	l.lastShed = now
	l.sheds.Add(1)
}

// grantNextLocked hands freed capacity to the highest-priority waiter whose
// deadline still holds. Callers hold l.mu.
func (l *Limiter) grantNextLocked(now time.Time) {
	for l.inFlight < int(l.limit) {
		w := l.popLocked(now)
		if w == nil {
			return
		}
		l.inFlight++
		w.state = granted
		close(w.ready)
	}
}

// popLocked removes and returns the next grantable waiter, discarding
// abandoned and deadline-expired entries along the way.
func (l *Limiter) popLocked(now time.Time) *waiter {
	for c := Class(0); c < numClasses; c++ {
		q := l.queues[c]
		for len(q) > 0 {
			w := q[0]
			q[0] = nil
			q = q[1:]
			l.queues[c] = q
			if w.state == abandoned {
				continue
			}
			l.queued--
			// Deadline-aware grant: a waiter that can no longer finish in
			// time is rejected before any work happens on its behalf.
			est := time.Duration(w.ep.estNs.Load())
			if !w.deadline.IsZero() && now.Add(est).After(w.deadline) {
				w.state = shedded
				w.verdict = ShedDeadline
				l.deadlineRejects.Add(1)
				w.ep.deadlineRejected.Add(1)
				l.shedLocked(now)
				close(w.ready)
				continue
			}
			return w
		}
	}
	return nil
}

// evictForLocked makes room for an arriving request of class c by evicting
// the youngest waiter of the lowest-priority class strictly below it.
// Returns false when no lower-priority waiter exists.
func (l *Limiter) evictForLocked(c Class, now time.Time) bool {
	for victim := numClasses - 1; victim > c; victim-- {
		q := l.queues[victim]
		if len(q) == 0 {
			continue
		}
		// Evict the youngest: it has the least sunk queue wait.
		for i := len(q) - 1; i >= 0; i-- {
			w := q[i]
			if w.state != waiting {
				continue
			}
			w.state = shedded
			w.verdict = Shed
			l.queues[victim] = append(q[:i], q[i+1:]...)
			l.queued--
			l.evictions.Add(1)
			w.ep.evicted.Add(1)
			l.shedLocked(now)
			close(w.ready)
			return true
		}
	}
	return false
}

// observe folds one completed request into the AIMD control loop.
// totalNs is queue wait plus service; serviceNs updates the endpoint's
// service-time estimate used for deadline math and Retry-After.
func (l *Limiter) observe(ep *Endpoint, totalNs, serviceNs int64, now time.Time) {
	// EWMA service-time estimate (α=1/4), updated without the limiter lock.
	for {
		old := ep.estNs.Load()
		next := old + (serviceNs-old)/4
		if next <= 0 {
			next = serviceNs
		}
		if ep.estNs.CompareAndSwap(old, next) {
			break
		}
	}
	over := totalNs > int64(ep.target)
	l.mu.Lock()
	if over {
		if now.Sub(l.lastDecrease) >= l.cfg.DecreaseCooldown {
			l.limit *= l.cfg.DecreaseFactor
			if l.limit < float64(l.cfg.MinLimit) {
				l.limit = float64(l.cfg.MinLimit)
			}
			l.lastDecrease = now
		}
	} else {
		l.limit += l.cfg.IncreasePerDone / l.limit
		if l.limit > float64(l.cfg.MaxInflight) {
			l.limit = float64(l.cfg.MaxInflight)
		}
	}
	l.mu.Unlock()
}

// Endpoint is one named route's admission handle: it carries the route's
// priority class, latency target, service-time estimate and counters, and
// funnels requests into the shared limiter.
type Endpoint struct {
	l      *Limiter
	name   string
	class  Class
	target time.Duration

	estNs atomic.Int64 // EWMA service time

	admitted         atomic.Uint64
	queuedTotal      atomic.Uint64
	shed             atomic.Uint64
	evicted          atomic.Uint64
	deadlineRejected atomic.Uint64
	degraded         atomic.Uint64
	canceled         atomic.Uint64
}

// Name returns the endpoint's registered name.
func (ep *Endpoint) Name() string { return ep.name }

// Class returns the endpoint's priority class.
func (ep *Endpoint) Class() Class { return ep.class }

// Target returns the endpoint's latency target.
func (ep *Endpoint) Target() time.Duration { return ep.target }

// Ticket is an admitted request's release handle.
type Ticket struct {
	ep    *Endpoint
	start time.Time // Acquire entry (queue wait included)
	grant time.Time // slot grant (service time starts here)
}

// Result is an admission decision: the verdict plus, for sheds, the
// computed retry hint.
type Result struct {
	Verdict    Verdict
	RetryAfter time.Duration // set on Shed/ShedDeadline
}

// Acquire asks for a concurrency slot. allowDegrade marks requests whose
// endpoint can serve a degraded fallback (brownout); they are degraded
// instead of queued or shed while the limiter is saturated. The caller must
// call Release on the returned ticket iff the verdict is Admitted. Blocks
// while queued; ctx cancellation, eviction and deadline expiry unblock it.
func (ep *Endpoint) Acquire(ctx context.Context, allowDegrade bool) (Ticket, Result) {
	l := ep.l
	now := l.cfg.Clock.Now()
	deadline, hasDeadline := ctx.Deadline()

	l.mu.Lock()
	if l.inFlight < int(l.limit) && l.queued == 0 {
		// Fast path: capacity free and nobody waiting (queue order is
		// preserved by never jumping past waiters). Zero allocations.
		l.inFlight++
		l.mu.Unlock()
		ep.admitted.Add(1)
		return Ticket{ep: ep, start: now, grant: now}, Result{Verdict: Admitted}
	}

	// Saturated. Brownout fallback first: availability over accuracy.
	if allowDegrade && l.cfg.Brownout && l.saturatedLocked(now) {
		l.mu.Unlock()
		ep.degraded.Add(1)
		l.brownoutFold()
		return Ticket{}, Result{Verdict: Degraded}
	}

	est := time.Duration(ep.estNs.Load())
	// Deadline-aware arrival check: no point queueing a request that cannot
	// drain through the queue and still finish in time.
	if hasDeadline {
		if now.Add(l.estWaitLocked(ep.class, est)).Add(est).After(deadline) {
			retry := l.retryAfterLocked(ep)
			l.deadlineRejects.Add(1)
			l.shedLocked(now)
			l.mu.Unlock()
			ep.deadlineRejected.Add(1)
			return Ticket{}, Result{Verdict: ShedDeadline, RetryAfter: retry}
		}
	}
	if l.queued >= l.cfg.QueueCap {
		// Full queue: a higher-priority arrival evicts the youngest waiter
		// of the lowest class present; otherwise the arrival itself sheds.
		if !l.evictForLocked(ep.class, now) {
			retry := l.retryAfterLocked(ep)
			l.shedLocked(now)
			l.mu.Unlock()
			ep.shed.Add(1)
			return Ticket{}, Result{Verdict: Shed, RetryAfter: retry}
		}
	}
	w := &waiter{ep: ep, enq: now, ready: make(chan struct{})}
	if hasDeadline {
		w.deadline = deadline
	}
	l.queues[ep.class] = append(l.queues[ep.class], w)
	l.queued++
	// Capacity may have freed between the fast-path check and the enqueue
	// bookkeeping (another goroutine's Release saw an empty queue).
	l.grantNextLocked(now)
	l.mu.Unlock()
	ep.queuedTotal.Add(1)

	select {
	case <-w.ready:
	case <-ctx.Done():
		l.mu.Lock()
		if w.state == waiting {
			w.state = abandoned
			l.queued--
			l.mu.Unlock()
			ep.canceled.Add(1)
			return Ticket{}, Result{Verdict: Canceled}
		}
		// Granted or shed concurrently with the cancellation: fall through
		// and honor whichever the limiter decided.
		l.mu.Unlock()
		<-w.ready
	}
	switch w.state {
	case granted:
		grantedAt := l.cfg.Clock.Now()
		ep.admitted.Add(1)
		return Ticket{ep: ep, start: w.enq, grant: grantedAt}, Result{Verdict: Admitted}
	default: // shedded — counters were folded in at the shed site
		l.mu.Lock()
		retry := l.retryAfterLocked(ep)
		l.mu.Unlock()
		return Ticket{}, Result{Verdict: w.verdict, RetryAfter: retry}
	}
}

// brownoutFold updates the brownout transition counter outside the lock.
func (l *Limiter) brownoutFold() {
	if !l.brownoutActive.Swap(true) {
		l.brownoutEntries.Add(1)
	}
}

// Release returns an admitted request's slot and feeds its latency into the
// AIMD loop. Exactly one Release per Admitted verdict.
func (t Ticket) Release() {
	if t.ep == nil {
		return
	}
	l := t.ep.l
	now := l.cfg.Clock.Now()
	l.observe(t.ep, int64(now.Sub(t.start)), int64(now.Sub(t.grant)), now)
	l.mu.Lock()
	l.inFlight--
	l.grantNextLocked(now)
	l.mu.Unlock()
}

// EndpointStats is one endpoint's admission counters.
type EndpointStats struct {
	Class            string  `json:"class"`
	TargetMs         float64 `json:"target_ms"`
	EstServiceMs     float64 `json:"est_service_ms"`
	Admitted         uint64  `json:"admitted"`
	Queued           uint64  `json:"queued"`
	Shed             uint64  `json:"shed,omitempty"`
	Evicted          uint64  `json:"evicted,omitempty"`
	DeadlineRejected uint64  `json:"deadline_rejected,omitempty"`
	Degraded         uint64  `json:"degraded,omitempty"`
	Canceled         uint64  `json:"canceled,omitempty"`
}

// Stats is the limiter's /varz document.
type Stats struct {
	// Limit is the current adaptive concurrency limit; MaxInflight is its
	// configured ceiling.
	Limit       float64 `json:"limit"`
	MaxInflight int     `json:"max_inflight"`
	InFlight    int     `json:"in_flight"`
	InQueue     int     `json:"in_queue"`
	// Sheds/Evictions/DeadlineRejects are process-lifetime shed totals
	// across endpoints (per-endpoint splits below).
	Sheds           uint64 `json:"sheds"`
	Evictions       uint64 `json:"evictions"`
	DeadlineRejects uint64 `json:"deadline_rejects"`
	// Brownout reports whether degraded fallbacks are currently serving;
	// BrownoutEntries counts transitions into that state.
	Brownout        bool                     `json:"brownout"`
	BrownoutEntries uint64                   `json:"brownout_entries"`
	Endpoints       map[string]EndpointStats `json:"endpoints"`
}

// Stats snapshots the limiter.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	s := Stats{
		Limit:       l.limit,
		MaxInflight: l.cfg.MaxInflight,
		InFlight:    l.inFlight,
		InQueue:     l.queued,
	}
	l.mu.Unlock()
	s.Sheds = l.sheds.Load()
	s.Evictions = l.evictions.Load()
	s.DeadlineRejects = l.deadlineRejects.Load()
	s.Brownout = l.brownoutActive.Load()
	s.BrownoutEntries = l.brownoutEntries.Load()
	s.Endpoints = map[string]EndpointStats{}
	l.endpointsMu.Lock()
	for name, ep := range l.endpoints {
		s.Endpoints[name] = EndpointStats{
			Class:            ep.class.String(),
			TargetMs:         float64(ep.target) / float64(time.Millisecond),
			EstServiceMs:     float64(ep.estNs.Load()) / float64(time.Millisecond),
			Admitted:         ep.admitted.Load(),
			Queued:           ep.queuedTotal.Load(),
			Shed:             ep.shed.Load(),
			Evicted:          ep.evicted.Load(),
			DeadlineRejected: ep.deadlineRejected.Load(),
			Degraded:         ep.degraded.Load(),
			Canceled:         ep.canceled.Load(),
		}
	}
	l.endpointsMu.Unlock()
	return s
}
