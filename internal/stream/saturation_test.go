package stream

import (
	"context"
	"testing"
	"time"

	"seagull/internal/cosmos"
)

// saturate fills a refresher's queue and then forces n rejected enqueues
// (distinct jobs, so none coalesce).
func saturate(t *testing.T, r *Refresher, n int) {
	t.Helper()
	if ok, err := r.Enqueue("region", "filler", 1); !ok || err != nil {
		t.Fatalf("filler enqueue: ok=%v err=%v", ok, err)
	}
	for i := 0; i < n; i++ {
		if _, err := r.Enqueue("region", "srv", 100+i); err != ErrQueueFull {
			t.Fatalf("enqueue %d: err=%v, want ErrQueueFull", i, err)
		}
	}
}

func TestRefresherSaturatedNeedsSustainedDrops(t *testing.T) {
	r := NewRefresher(nil, nil, nil, nil, RefreshConfig{
		QueueSize: 1, SaturationDrops: 3, SaturationWindow: time.Minute,
	})
	if r.Saturated() {
		t.Fatal("fresh refresher reads saturated")
	}
	// Two drops: below the sustained threshold.
	saturate(t, r, 2)
	if r.Saturated() {
		t.Fatal("saturated after 2 drops, threshold is 3")
	}
	// Third drop completes the window.
	if _, err := r.Enqueue("region", "srv", 999); err != ErrQueueFull {
		t.Fatalf("enqueue: %v, want ErrQueueFull", err)
	}
	if !r.Saturated() {
		t.Fatal("not saturated after 3 drops within the window")
	}
	if got := r.Stats().Dropped; got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
}

func TestRefresherSaturationClearsWithWindow(t *testing.T) {
	r := NewRefresher(nil, nil, nil, nil, RefreshConfig{
		QueueSize: 1, SaturationDrops: 2, SaturationWindow: 50 * time.Millisecond,
	})
	saturate(t, r, 2)
	if !r.Saturated() {
		t.Fatal("not saturated after a drop burst")
	}
	deadline := time.Now().Add(2 * time.Second)
	for r.Saturated() {
		if time.Now().After(deadline) {
			t.Fatal("saturation never cleared after the window slid past")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSweeperPausesWhileRefresherSaturated(t *testing.T) {
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	ref := NewRefresher(nil, db, nil, nil, RefreshConfig{
		QueueSize: 1, SaturationDrops: 2, SaturationWindow: time.Minute,
	})
	sw := NewSweeper(db, nil, ref, SweeperConfig{})

	// Unsaturated: the round runs (no summaries → zero regions, no error).
	if err := sw.SweepOnce(context.Background()); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if st := sw.Stats(); st.Ticks != 1 || st.Paused != 0 {
		t.Fatalf("stats = %+v, want 1 tick, 0 paused", st)
	}

	// Saturated: rounds are skipped and counted.
	saturate(t, ref, 2)
	for i := 0; i < 3; i++ {
		if err := sw.SweepOnce(context.Background()); err != nil {
			t.Fatalf("paused sweep: %v", err)
		}
	}
	st := sw.Stats()
	if st.Paused != 3 {
		t.Fatalf("Paused = %d, want 3", st.Paused)
	}
	if st.Ticks != 1 {
		t.Fatalf("Ticks = %d, want 1 (paused rounds are not ticks)", st.Ticks)
	}
}
