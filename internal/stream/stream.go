// Package stream is Seagull's online telemetry layer: it replaces the
// weekly batch-only seam between production telemetry and the pipeline with
// continuous ingestion and incremental, drift-triggered forecast refresh.
//
// Three components compose end to end:
//
//   - Ingestor accepts out-of-order per-server load points into
//     fixed-capacity per-server slot rings, lock-striped across shards. The
//     warm append path is allocation-free; points roll up to the pipeline's
//     slot granularity as they arrive, so a server's live history is always
//     one zero-copy view away from being model-ready.
//
//   - DriftDetector compares live slots against the stored PredictionDocs
//     (the pipeline's cosmos output) using the paper's Definition 1/2
//     bucket-ratio machinery: a stored prediction whose live actuals fall
//     below the accuracy threshold has drifted.
//
//   - Refresher retrains only the drifted servers — through the serving
//     layer's warm model pool, via the Pool interface — and republishes the
//     refreshed PredictionDocs to cosmos. A fleet where 2% of servers
//     drifted costs ~2% of a weekly pipeline run. Queued refreshes drain
//     across a bounded parallel.Pool (RefreshConfig.Workers), and a full
//     queue is surfaced as a Dropped count rather than silently discarded.
//
//   - Sweeper makes the loop self-driving: a ticker-driven background round
//     discovers each region's latest summarized week from the document
//     store and sweeps it with zero client involvement, queueing drifted
//     servers into the Refresher.
//
//   - Ring snapshots (snapshot.go) make the layer durable: the live windows
//     serialize to a lake object on drain and restore on startup, so a
//     restart no longer loses the month of telemetry the rings hold.
//
// Concurrency: every component is safe for concurrent use. The ingestor
// lock-stripes rings across shards (warm appends are allocation-free);
// zero-copy views are only valid under WithView's shard lock, with
// SnapshotInto as the stable-copy escape for long work like training.
//
// Equivalence guarantees, all pinned by tests: rolled-up ring state is
// independent of arrival order and duplication (first write wins); a
// snapshot→restore round trip is observationally identical to never
// restarting (snapshot_test.go); refreshed predictions are bit-identical to
// what a full pipeline.RunWeek would store (equiv_test.go); and a parallel
// drain republishes exactly what a serial drain would (parallel_test.go).
// The whole layer is a scheduling and durability optimization, never an
// accuracy trade.
package stream
