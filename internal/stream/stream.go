// Package stream is Seagull's online telemetry layer: it replaces the
// weekly batch-only seam between production telemetry and the pipeline with
// continuous ingestion and incremental, drift-triggered forecast refresh.
//
// Three components compose end to end:
//
//   - Ingestor accepts out-of-order per-server load points into
//     fixed-capacity per-server slot rings, lock-striped across shards. The
//     warm append path is allocation-free; points roll up to the pipeline's
//     slot granularity as they arrive, so a server's live history is always
//     one zero-copy view away from being model-ready.
//
//   - DriftDetector compares live slots against the stored PredictionDocs
//     (the pipeline's cosmos output) using the paper's Definition 1/2
//     bucket-ratio machinery: a stored prediction whose live actuals fall
//     below the accuracy threshold has drifted.
//
//   - Refresher retrains only the drifted servers — through the serving
//     layer's warm model pool, via the Pool interface — and republishes the
//     refreshed PredictionDocs to cosmos. A fleet where 2% of servers
//     drifted costs ~2% of a weekly pipeline run.
//
// The refresh path is pinned equivalent to the batch path: for the same
// telemetry, a refreshed prediction is bit-identical to what a full
// pipeline.RunWeek would store (see equiv_test.go). Drift detection is
// therefore a pure scheduling optimization, never an accuracy trade.
package stream
