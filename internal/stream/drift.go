package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/metrics"
	"seagull/internal/pipeline"
	"seagull/internal/timeseries"
)

// DriftConfig parameterizes drift detection. The zero value selects the
// production defaults.
type DriftConfig struct {
	// Metrics carries the Definition 1/2 constants. Zero value → DefaultConfig.
	Metrics metrics.Config
	// MinRatio is the bucket ratio (Definition 1, live actuals vs the stored
	// prediction) below which a server counts as drifted. Default: the
	// Definition 2 accuracy threshold (0.90) — a stored prediction that would
	// no longer be judged accurate has drifted.
	MinRatio float64
	// MinPoints is the minimum number of live/predicted pairs required to
	// judge a server at all; with fewer overlapping points the verdict is
	// "skipped", not "drifted". Default 12 (one hour at five-minute slots).
	MinPoints int
	// Collection is the cosmos collection holding PredictionDocs. Default
	// "predictions" (the pipeline's).
	Collection string
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Metrics == (metrics.Config{}) {
		c.Metrics = metrics.DefaultConfig()
	}
	if c.MinRatio == 0 {
		c.MinRatio = c.Metrics.AccuracyThreshold
	}
	if c.MinPoints == 0 {
		c.MinPoints = 12
	}
	if c.Collection == "" {
		c.Collection = "predictions"
	}
	return c
}

// ServerDrift is one server's sweep verdict.
type ServerDrift struct {
	ServerID string  `json:"server_id"`
	Ratio    float64 `json:"ratio"`  // bucket ratio of live actuals vs stored prediction
	Points   int     `json:"points"` // live/predicted pairs the ratio covers
}

// Report is the outcome of one drift sweep over a stored (region, week).
type Report struct {
	Region  string `json:"region"`
	Week    int    `json:"week"`
	Checked int    `json:"checked"` // stored predictions examined
	Drifted int    `json:"drifted"` // predictions whose live actuals fell below MinRatio
	// Skipped counts predictions with too little live overlap to judge.
	Skipped int `json:"skipped"`
	// DriftedServers lists the drifted servers' verdicts, worst ratio first.
	DriftedServers []ServerDrift `json:"drifted_servers,omitempty"`
}

// DriftStats accumulates sweep counters across the detector's lifetime.
type DriftStats struct {
	Sweeps  uint64 `json:"sweeps"`
	Checked uint64 `json:"checked"`
	Drifted uint64 `json:"drifted"`
	Skipped uint64 `json:"skipped"`
}

// DriftDetector compares live slots against stored PredictionDocs: a stored
// prediction whose live actuals score below the accuracy threshold on the
// Definition 1 bucket ratio has drifted and should be refreshed. Safe for
// concurrent use; one detector serves every region.
type DriftDetector struct {
	ing *Ingestor
	db  *cosmos.DB
	cfg DriftConfig

	sweeps  atomic.Uint64
	checked atomic.Uint64
	drifted atomic.Uint64
	skipped atomic.Uint64
}

// NewDriftDetector returns a detector over live telemetry and the document
// store holding the pipeline's predictions.
func NewDriftDetector(ing *Ingestor, db *cosmos.DB, cfg DriftConfig) *DriftDetector {
	return &DriftDetector{ing: ing, db: db, cfg: cfg.withDefaults()}
}

// Sweep judges every stored prediction of (region, week) against the live
// telemetry and returns the drifted servers, worst ratio first. The
// comparison is zero-copy on both sides: the live day is read in place under
// the shard lock and the stored day is viewed, with metrics.BucketRatioCount
// skipping slots that have not arrived yet. Cancelling ctx abandons the
// sweep between servers.
func (d *DriftDetector) Sweep(ctx context.Context, region string, week int) (Report, error) {
	rep := Report{Region: region, Week: week}
	weekSuffix := fmt.Sprintf("/week-%04d", week)
	err := d.db.Collection(d.cfg.Collection).Query(region, func(id string, body json.RawMessage) error {
		if !strings.HasSuffix(id, weekSuffix) {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		var doc pipeline.PredictionDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			return fmt.Errorf("decode prediction %s: %w", id, err)
		}
		if doc.Week != week {
			return nil
		}
		rep.Checked++
		ratio, points, ok := d.judge(&doc)
		if !ok {
			rep.Skipped++
			return nil
		}
		if ratio < d.cfg.MinRatio {
			rep.Drifted++
			rep.DriftedServers = append(rep.DriftedServers, ServerDrift{
				ServerID: doc.ServerID, Ratio: ratio, Points: points,
			})
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	// Worst offenders first, so a bounded refresh queue spends its budget on
	// the most wrong predictions.
	for i := 1; i < len(rep.DriftedServers); i++ {
		for j := i; j > 0 && rep.DriftedServers[j].Ratio < rep.DriftedServers[j-1].Ratio; j-- {
			rep.DriftedServers[j], rep.DriftedServers[j-1] = rep.DriftedServers[j-1], rep.DriftedServers[j]
		}
	}
	d.sweeps.Add(1)
	d.checked.Add(uint64(rep.Checked))
	d.drifted.Add(uint64(rep.Drifted))
	d.skipped.Add(uint64(rep.Skipped))
	return rep, nil
}

// judge computes the Definition 1 bucket ratio of the live actuals inside
// the stored prediction's day. ok is false when too few live points overlap
// the predicted day to call a verdict.
func (d *DriftDetector) judge(doc *pipeline.PredictionDoc) (ratio float64, points int, ok bool) {
	interval := time.Duration(doc.IntervalMin) * time.Minute
	if interval <= 0 || interval != d.ing.Interval() || len(doc.Values) == 0 {
		return 0, 0, false
	}
	d.ing.WithView(doc.ServerID, func(live timeseries.Series) {
		span := doc.BackupDay.Sub(live.Start)
		if span%interval != 0 {
			// The predicted day is off the ingestor's slot grid: pairing
			// truncated indices would score live slots against predictions
			// for different times. Skip — the refresher rejects the same
			// misalignment.
			return
		}
		off := int(span / interval)
		lo, hi := off, off+len(doc.Values)
		if lo < 0 {
			lo = 0
		}
		if n := live.Len(); hi > n {
			hi = n
		}
		if hi <= lo {
			return
		}
		liveDay, err := live.View(lo, hi)
		if err != nil {
			return
		}
		pred := doc.Series()
		predDay, err := pred.View(lo-off, hi-off)
		if err != nil {
			return
		}
		ratio, points, err = metrics.BucketRatioCount(liveDay, predDay, d.cfg.Metrics.Bound)
		ok = err == nil && points >= d.cfg.MinPoints
	})
	return ratio, points, ok
}

// Stats snapshots the lifetime sweep counters.
func (d *DriftDetector) Stats() DriftStats {
	return DriftStats{
		Sweeps:  d.sweeps.Load(),
		Checked: d.checked.Load(),
		Drifted: d.drifted.Load(),
		Skipped: d.skipped.Load(),
	}
}
