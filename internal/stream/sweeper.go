package stream

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/obs"
	"seagull/internal/simclock"
)

// Sweeper closes the drift loop with zero client involvement: before it, a
// drift sweep only ran when an ingest request attached a `sweep` clause, so
// an operatorless deployment could watch telemetry stream in forever without
// ever noticing its predictions had gone stale. The sweeper is a
// ticker-driven background loop that discovers, per region, the most recent
// week the weekly pipeline summarized, sweeps that week's stored predictions
// against the live actuals, and queues whatever drifted into the Refresher.
//
// Discovery reads the cosmos summaries collection (one SummaryDoc per
// pipeline run, id "week-NNNN" partitioned by region), which makes the
// sweeper self-configuring: regions appear as soon as their first weekly run
// lands, and each region is judged on its own latest week — no flag lists
// the fleet.

// SweeperConfig parameterizes the background sweeper. The zero value sweeps
// every summarized region once a minute.
type SweeperConfig struct {
	// Interval is the tick period. Default one minute.
	Interval time.Duration
	// Collection is the cosmos collection holding the pipeline's SummaryDocs,
	// whose (region partition, week id) pairs drive discovery. Default
	// "summaries".
	Collection string
	// Clock paces Run's ticker; nil means the wall clock.
	Clock simclock.Clock
	// Tracer, when non-nil, records one "sweep" trace per round with a span
	// per region swept.
	Tracer *obs.Tracer
	// Logger, when non-nil, reports sweep-round failures from Run (SweepOnce
	// already counts them; without a logger they are otherwise invisible to
	// an operator).
	Logger *slog.Logger
}

func (c SweeperConfig) withDefaults() SweeperConfig {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.Collection == "" {
		c.Collection = "summaries"
	}
	c.Clock = simclock.Or(c.Clock)
	return c
}

// SweeperStats snapshots the sweeper's lifetime counters.
type SweeperStats struct {
	// Ticks counts completed sweep rounds (one round visits every region).
	Ticks uint64 `json:"ticks"`
	// Regions counts region sweeps across all rounds.
	Regions uint64 `json:"regions"`
	// Drifted counts drifted servers found by background sweeps.
	Drifted uint64 `json:"drifted"`
	// Queued counts drifted servers newly queued for refresh.
	Queued uint64 `json:"queued"`
	// Dropped counts drifted servers the full refresh queue rejected — the
	// backpressure signal; they are re-found on the next tick.
	Dropped uint64 `json:"dropped"`
	// Paused counts rounds skipped because the refresher reported sustained
	// Dropped backpressure (Refresher.Saturated) — sweeping while the queue
	// rejects everything only re-finds servers it cannot queue.
	Paused uint64 `json:"paused"`
	// Errors counts failed region sweeps (kept counting, never fatal).
	Errors uint64 `json:"errors"`
}

// Sweeper periodically sweeps the latest summarized week of every region for
// drift and queues drifted servers into the refresher. Safe for concurrent
// use; Run is meant to be launched on its own goroutine
// (seagull.System.StartSweeper does).
type Sweeper struct {
	db  *cosmos.DB
	det *DriftDetector
	ref *Refresher
	cfg SweeperConfig

	ticks   atomic.Uint64
	regions atomic.Uint64
	drifted atomic.Uint64
	queued  atomic.Uint64
	dropped atomic.Uint64
	paused  atomic.Uint64
	errs    atomic.Uint64
}

// NewSweeper wires a sweeper over the document store (for week discovery),
// a drift detector and a refresher. ref may be nil: sweeps then only count
// drift without queueing refreshes (a monitoring-only deployment).
func NewSweeper(db *cosmos.DB, det *DriftDetector, ref *Refresher, cfg SweeperConfig) *Sweeper {
	return &Sweeper{db: db, det: det, ref: ref, cfg: cfg.withDefaults()}
}

// Interval returns the configured tick period.
func (s *Sweeper) Interval() time.Duration { return s.cfg.Interval }

// latestWeek finds the most recent week with a stored summary for region;
// ok is false when the region has none (nothing to judge yet).
func (s *Sweeper) latestWeek(region string) (week int, ok bool) {
	for _, id := range s.db.Collection(s.cfg.Collection).IDs(region) {
		rest, found := strings.CutPrefix(id, "week-")
		if !found {
			continue
		}
		w, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		if !ok || w > week {
			week, ok = w, true
		}
	}
	return week, ok
}

// SweepOnce runs one background round: every region with a stored weekly
// summary is swept at its latest summarized week, and drifted servers are
// queued for refresh. Per-region sweep failures are counted and skipped so
// one bad region cannot starve the rest; the first error is returned for
// logging. Cancelling ctx stops between regions.
func (s *Sweeper) SweepOnce(ctx context.Context) error {
	// Under sustained refresh-queue backpressure a sweep cannot queue what it
	// finds; pause the round and let the queue drain. Drifted servers stay
	// drifted and are re-found by the first unpaused round.
	if s.ref != nil && s.ref.Saturated() {
		s.paused.Add(1)
		return nil
	}
	tr := s.cfg.Tracer.Start("sweep", "")
	defer func() { s.cfg.Tracer.Finish(tr, 0) }()
	var firstErr error
	for _, region := range s.db.Collection(s.cfg.Collection).Partitions() {
		if err := ctx.Err(); err != nil {
			return err
		}
		week, ok := s.latestWeek(region)
		if !ok {
			continue
		}
		sp := tr.Begin(obs.StageSweep)
		rep, err := s.det.Sweep(ctx, region, week)
		sp.End()
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			s.errs.Add(1)
			if firstErr == nil {
				firstErr = fmt.Errorf("sweep %s week %d: %w", region, week, err)
			}
			continue
		}
		s.regions.Add(1)
		s.drifted.Add(uint64(rep.Drifted))
		if s.ref != nil {
			queued, dropped := s.ref.EnqueueReport(rep)
			s.queued.Add(uint64(queued))
			s.dropped.Add(uint64(dropped))
		}
	}
	s.ticks.Add(1)
	return firstErr
}

// Run sweeps on every tick until ctx is cancelled, then returns ctx.Err().
// Sweep errors are counted in Stats and logged, never fatal.
func (s *Sweeper) Run(ctx context.Context) error {
	logger := obs.LoggerOr(s.cfg.Logger)
	ticker := s.cfg.Clock.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C():
			if err := s.SweepOnce(ctx); err != nil && ctx.Err() == nil {
				logger.Warn("background sweep failed", "error", err)
			}
		}
	}
}

// Stats snapshots the lifetime counters.
func (s *Sweeper) Stats() SweeperStats {
	return SweeperStats{
		Ticks:   s.ticks.Load(),
		Regions: s.regions.Load(),
		Drifted: s.drifted.Load(),
		Queued:  s.queued.Load(),
		Dropped: s.dropped.Load(),
		Paused:  s.paused.Load(),
		Errors:  s.errs.Load(),
	}
}
