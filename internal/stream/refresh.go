package stream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/forecast"
	"seagull/internal/metrics"
	"seagull/internal/obs"
	"seagull/internal/parallel"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/simclock"
	"seagull/internal/timeseries"
)

// Refresh errors.
var (
	ErrNoPrediction        = errors.New("stream: no stored prediction for server")
	ErrInsufficientHistory = errors.New("stream: insufficient live history to retrain")
	ErrQueueFull           = errors.New("stream: refresh queue full")
)

// Instance is one checked-out trained-or-trainable model. It is satisfied by
// the serving layer's warm-pool instances (serving.Instance via its stream
// adapter), whose retained scratch makes repeated refreshes allocation-lean.
type Instance interface {
	// TrainOn fits the instance on h; deterministic-inference instances may
	// skip when h is bit-identical to their last trained history.
	TrainOn(h timeseries.Series) (skipped bool, err error)
	// Forecast predicts the next horizon observations after the trained
	// history.
	Forecast(horizon int) (timeseries.Series, error)
}

// Pool is the warm model source the refresher trains through. The serving
// layer's ModelPool satisfies it through serving.StreamPool; NewFreshPool
// provides a dependency-free fallback that builds a model per refresh.
type Pool interface {
	Checkout(target registry.Target, version int, modelName string) (Instance, error)
	Return(target registry.Target, version int, inst Instance)
}

// freshPool is the no-reuse Pool: a deterministic fresh model per checkout,
// mirroring what the batch pipeline does per server.
type freshPool struct{ seed int64 }

// freshInstance adapts a bare forecast.Model to the Instance interface.
type freshInstance struct{ m forecast.Model }

func (fi freshInstance) TrainOn(h timeseries.Series) (bool, error) { return false, fi.m.Train(h) }
func (fi freshInstance) Forecast(horizon int) (timeseries.Series, error) {
	return fi.m.Forecast(horizon)
}

func (p freshPool) Checkout(_ registry.Target, _ int, modelName string) (Instance, error) {
	m, err := forecast.New(modelName, p.seed)
	if err != nil {
		return nil, err
	}
	return freshInstance{m: m}, nil
}

func (p freshPool) Return(registry.Target, int, Instance) {}

// NewFreshPool returns a Pool that builds a deterministic fresh model per
// checkout — the model-per-refresh baseline, and the standalone option when
// no serving layer is attached.
func NewFreshPool(seed int64) Pool { return freshPool{seed: seed} }

// RefreshConfig parameterizes a Refresher. The zero value selects the
// pipeline's production defaults.
type RefreshConfig struct {
	// Scenario is the deployment scenario whose active model retrains.
	// Default: the pipeline's backup scenario.
	Scenario string
	// Metrics carries the accuracy constants. Zero value → DefaultConfig.
	Metrics metrics.Config
	// HistoryDays bounds the live history a refresh trains on; default 7
	// (the batch pipeline's training window).
	HistoryDays int
	// MinDays is the minimum whole days of live history required to retrain;
	// default 3 (Section 5.3.1's floor, matching the batch pipeline).
	MinDays int
	// QueueSize bounds the pending refresh queue; default 1024.
	QueueSize int
	// Workers bounds how many retrains Run and Drain execute concurrently.
	// Default 1 (serial — the right choice on the single-CPU benchmark
	// host); multi-core hosts raise it and retrain drifted fleets in
	// parallel. Results are independent of the worker count: jobs touch
	// disjoint documents (the dedup queue holds at most one job per
	// (region, server, week)) and every retrain is deterministic, which the
	// drain equivalence test pins.
	Workers int
	// Collection is the cosmos collection holding PredictionDocs. Default
	// "predictions".
	Collection string
	// SaturationDrops and SaturationWindow define the sustained-backpressure
	// predicate Saturated(): the queue is saturated while the last
	// SaturationDrops rejected enqueues all happened within SaturationWindow.
	// Defaults: 3 drops in 5s. One isolated drop never reads as saturation.
	SaturationDrops  int
	SaturationWindow time.Duration
	// Clock timestamps drops for the saturation window; nil means the wall
	// clock.
	Clock simclock.Clock
	// Tracer, when non-nil, records one "refresh" trace per refresh with
	// spans around its snapshot, checkout, train, inference and upsert
	// phases — the stream-side mirror of the serving request trace.
	Tracer *obs.Tracer
	// Logger, when non-nil, reports refresh failures and skips (counted in
	// Stats either way; the log adds the server and the reason).
	Logger *slog.Logger
}

func (c RefreshConfig) withDefaults() RefreshConfig {
	if c.Scenario == "" {
		c.Scenario = pipeline.Scenario
	}
	if c.Metrics == (metrics.Config{}) {
		c.Metrics = metrics.DefaultConfig()
	}
	if c.HistoryDays <= 0 {
		c.HistoryDays = 7
	}
	if c.MinDays <= 0 {
		c.MinDays = 3
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Collection == "" {
		c.Collection = "predictions"
	}
	if c.SaturationDrops <= 0 {
		c.SaturationDrops = 3
	}
	if c.SaturationWindow <= 0 {
		c.SaturationWindow = 5 * time.Second
	}
	c.Clock = simclock.Or(c.Clock)
	return c
}

// RefreshStats snapshots the refresher's lifetime counters.
type RefreshStats struct {
	Queued    uint64 `json:"queued"`
	Coalesced uint64 `json:"coalesced"` // enqueues folded into an already-pending job
	Dropped   uint64 `json:"dropped"`   // enqueues rejected by a full queue
	Refreshed uint64 `json:"refreshed"`
	Skipped   uint64 `json:"skipped"` // insufficient live history
	Failed    uint64 `json:"failed"`
	Pending   int    `json:"pending"`
}

// job is one queued refresh.
type job struct {
	region   string
	serverID string
	week     int
}

// Refresher retrains drifted servers from live telemetry and republishes
// their PredictionDocs. Refreshes flow through a bounded dedup queue drained
// by Run (one background worker — retraining is CPU-bound, and the serving
// pool hands each checkout exclusive ownership), or synchronously through
// RefreshServer/RefreshWeek. Safe for concurrent use.
type Refresher struct {
	ing  *Ingestor
	db   *cosmos.DB
	reg  *registry.Registry
	pool Pool
	cfg  RefreshConfig

	mu      sync.Mutex
	jobs    chan job
	pending map[job]bool

	queued    atomic.Uint64
	coalesced atomic.Uint64
	dropped   atomic.Uint64
	refreshed atomic.Uint64
	skipped   atomic.Uint64
	failed    atomic.Uint64

	// dropTimes is a ring of the last SaturationDrops rejection times,
	// feeding the Saturated predicate. Drops are rare (queue-full only), so
	// a small mutex-guarded ring costs nothing on the enqueue happy path.
	dropMu    sync.Mutex
	dropTimes []time.Time
	dropIdx   int

	scratchMu sync.Mutex
	scratch   []float64
}

// NewRefresher wires a refresher over live telemetry, the document store,
// the model registry and a warm model pool. pool may be nil: a fresh
// deterministic model is then built per refresh (NewFreshPool(0)).
func NewRefresher(ing *Ingestor, db *cosmos.DB, reg *registry.Registry, pool Pool, cfg RefreshConfig) *Refresher {
	cfg = cfg.withDefaults()
	if pool == nil {
		pool = NewFreshPool(0)
	}
	return &Refresher{
		ing: ing, db: db, reg: reg, pool: pool, cfg: cfg,
		jobs:    make(chan job, cfg.QueueSize),
		pending: map[job]bool{},
	}
}

// Enqueue queues one server for refresh. queued reports whether a new job
// entered the queue: an enqueue matching an already-pending job coalesces
// (false, nil), and a full queue rejects with ErrQueueFull (drift sweeps
// re-find a server that stays drifted, so a rejected enqueue heals on the
// next sweep).
func (r *Refresher) Enqueue(region, serverID string, week int) (queued bool, err error) {
	j := job{region: region, serverID: serverID, week: week}
	r.mu.Lock()
	if r.pending[j] {
		r.mu.Unlock()
		r.coalesced.Add(1)
		return false, nil
	}
	select {
	case r.jobs <- j:
		r.pending[j] = true
		r.mu.Unlock()
		r.queued.Add(1)
		return true, nil
	default:
		r.mu.Unlock()
		r.dropped.Add(1)
		r.recordDrop(r.cfg.Clock.Now())
		return false, ErrQueueFull
	}
}

// recordDrop folds one queue-full rejection into the saturation ring.
func (r *Refresher) recordDrop(now time.Time) {
	r.dropMu.Lock()
	if len(r.dropTimes) < r.cfg.SaturationDrops {
		r.dropTimes = append(r.dropTimes, now)
	} else {
		r.dropTimes[r.dropIdx] = now
		r.dropIdx = (r.dropIdx + 1) % len(r.dropTimes)
	}
	r.dropMu.Unlock()
}

// Saturated reports sustained refresh-queue backpressure: the last
// SaturationDrops rejected enqueues all landed within SaturationWindow of
// now. Consumers use it to yield — the background sweeper pauses its rounds
// (re-finding drifted servers it cannot queue only churns the detector), and
// the serving layer treats it as a brownout-entry signal. A single isolated
// drop never reads as saturation, and the predicate clears on its own once
// the window slides past the last burst.
func (r *Refresher) Saturated() bool {
	r.dropMu.Lock()
	defer r.dropMu.Unlock()
	if len(r.dropTimes) < r.cfg.SaturationDrops {
		return false
	}
	cutoff := r.cfg.Clock.Now().Add(-r.cfg.SaturationWindow)
	for _, t := range r.dropTimes {
		if t.Before(cutoff) {
			return false
		}
	}
	return true
}

// EnqueueReport queues every drifted server of a sweep report. queued is how
// many newly entered the queue (coalesced enqueues excluded); dropped is how
// many a full queue rejected — the backpressure signal callers surface
// instead of silently discarding (a server that stays drifted is re-found
// and re-queued by the next sweep, so a drop delays its refresh rather than
// losing it).
func (r *Refresher) EnqueueReport(rep Report) (queued, dropped int) {
	for _, sd := range rep.DriftedServers {
		ok, err := r.Enqueue(rep.Region, sd.ServerID, rep.Week)
		switch {
		case ok:
			queued++
		case errors.Is(err, ErrQueueFull):
			dropped++
		}
	}
	return queued, dropped
}

// Run drains the refresh queue until ctx is cancelled, fanning retrains
// across Workers goroutines (each with its own snapshot scratch; the warm
// pool hands every checkout an exclusive instance, so workers never share
// model state). Refresh failures are counted, not fatal. Run returns
// ctx.Err; it is meant to be launched on its own goroutine
// (seagull.System.StartRefresher does).
func (r *Refresher) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []float64
			for {
				select {
				case <-ctx.Done():
					return
				case j := <-r.jobs:
					r.take(j)
					_ = r.refreshCounted(ctx, j.region, j.serverID, j.week, &scratch)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Drain synchronously processes every job queued at the time of the call,
// fanning the CPU-bound retrains across a bounded parallel.Pool of Workers
// (per-worker snapshot scratch, ctx-aware: cancelling abandons jobs not yet
// claimed while in-flight retrains finish). Jobs queued concurrently with
// the drain stay queued for the next drain or the background Run worker.
// The republished documents are bit-identical to a serial drain — jobs are
// deduplicated per (region, server, week), touch disjoint documents, and
// retrain deterministically — which the parallel-equivalence test pins.
func (r *Refresher) Drain(ctx context.Context) error {
	var batch []job
	for {
		select {
		case j := <-r.jobs:
			r.take(j)
			batch = append(batch, j)
			continue
		default:
		}
		break
	}
	if len(batch) == 0 {
		return ctx.Err()
	}
	workers := r.cfg.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	pool := parallel.NewPool(workers)
	return parallel.ForEachScratchCtx(ctx, pool, len(batch),
		func() *[]float64 { return new([]float64) },
		func(i int, scratch *[]float64) error {
			j := batch[i]
			_ = r.refreshCounted(ctx, j.region, j.serverID, j.week, scratch)
			return nil
		})
}

// take clears a job's pending mark once it leaves the queue.
func (r *Refresher) take(j job) {
	r.mu.Lock()
	delete(r.pending, j)
	r.mu.Unlock()
}

// RefreshServer retrains one server's stored prediction from live telemetry
// through the warm pool and republishes the PredictionDoc. The history
// window replicates the batch pipeline exactly (up to HistoryDays whole days
// immediately before the predicted day, at least MinDays), so for identical
// telemetry the refreshed forecast is bit-identical to a full weekly run.
func (r *Refresher) RefreshServer(ctx context.Context, region, serverID string, week int) error {
	r.scratchMu.Lock()
	defer r.scratchMu.Unlock()
	return r.refreshCounted(ctx, region, serverID, week, &r.scratch)
}

// refreshCounted runs one refresh with the given snapshot scratch and folds
// the outcome into the lifetime counters. Parallel drains hand each worker
// its own scratch; the synchronous RefreshServer path shares one under
// scratchMu.
func (r *Refresher) refreshCounted(ctx context.Context, region, serverID string, week int, scratch *[]float64) error {
	tr := r.cfg.Tracer.Start("refresh", "")
	err := r.refresh(ctx, tr, region, serverID, week, scratch)
	r.cfg.Tracer.Finish(tr, 0)
	logger := obs.LoggerOr(r.cfg.Logger)
	switch {
	case err == nil:
		r.refreshed.Add(1)
	case errors.Is(err, ErrInsufficientHistory) || errors.Is(err, ErrNoTelemetry):
		r.skipped.Add(1)
		logger.Debug("refresh skipped",
			"region", region, "server", serverID, "week", week, "reason", err)
	default:
		r.failed.Add(1)
		logger.Warn("refresh failed",
			"region", region, "server", serverID, "week", week, "error", err)
	}
	return err
}

func (r *Refresher) refresh(ctx context.Context, tr *obs.Trace, region, serverID string, week int, scratch *[]float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	col := r.db.Collection(r.cfg.Collection)
	docID := fmt.Sprintf("%s/week-%04d", serverID, week)
	var doc pipeline.PredictionDoc
	if err := col.Get(region, docID, &doc); err != nil {
		if errors.Is(err, cosmos.ErrNotFound) {
			return fmt.Errorf("%w: %s %s", ErrNoPrediction, region, docID)
		}
		return err
	}
	interval := time.Duration(doc.IntervalMin) * time.Minute
	if interval <= 0 || interval != r.ing.Interval() {
		return fmt.Errorf("%w: stored interval %v vs ingestor %v", ErrBadInterval, interval, r.ing.Interval())
	}
	ppd := int(24 * time.Hour / interval)

	target := registry.Target{Scenario: r.cfg.Scenario, Region: region}
	v, err := r.reg.Active(target)
	if err != nil {
		return err
	}

	// Snapshot the live history (stable copy: training is long, and holding
	// the shard lock would stall ingestion). The scratch buffer is retained
	// across refreshes, so the steady state allocates nothing here.
	sp := tr.Begin(obs.StageSnapshot)
	snap, ok := r.ing.SnapshotInto(serverID, *scratch)
	sp.End()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoTelemetry, serverID)
	}
	*scratch = snap.Values

	// Replicate the batch pipeline's training window: whole days up to
	// HistoryDays immediately before the predicted day, at least MinDays.
	d := doc.BackupDay.Sub(snap.Start)
	if d < 0 || d%interval != 0 {
		return fmt.Errorf("%w: predicted day %s not aligned with live telemetry starting %s",
			ErrInsufficientHistory, doc.BackupDay.Format(time.RFC3339), snap.Start.Format(time.RFC3339))
	}
	dayIdx := int(d / interval)
	if dayIdx > snap.Len() {
		dayIdx = snap.Len() // history can only use what has arrived
	}
	trainPoints := r.cfg.HistoryDays * ppd
	if dayIdx < trainPoints {
		trainPoints = dayIdx - dayIdx%ppd // whole days available
	}
	if trainPoints < r.cfg.MinDays*ppd {
		return fmt.Errorf("%w: %s has %d points before %s, need %d",
			ErrInsufficientHistory, serverID, dayIdx, doc.BackupDay.Format(time.RFC3339), r.cfg.MinDays*ppd)
	}
	history, err := snap.View(dayIdx-trainPoints, dayIdx)
	if err != nil {
		return err
	}

	sp = tr.Begin(obs.StageCheckout)
	inst, err := r.pool.Checkout(target, v.Number, v.ModelName)
	sp.End()
	if err != nil {
		return err
	}
	defer r.pool.Return(target, v.Number, inst)
	if err := ctx.Err(); err != nil {
		return err
	}
	sp = tr.Begin(obs.StageTrain)
	memoHit, err := inst.TrainOn(history)
	sp.EndHit(memoHit)
	if err != nil {
		return fmt.Errorf("retrain %s with %s: %w", serverID, v.ModelName, err)
	}
	sp = tr.Begin(obs.StageInference)
	pred, err := inst.Forecast(ppd)
	sp.End()
	if err != nil {
		return fmt.Errorf("forecast %s with %s: %w", serverID, v.ModelName, err)
	}
	w := doc.WindowPoints
	if w < 1 {
		w = 1
	}
	if w > ppd {
		w = ppd
	}
	llw, err := metrics.LowestLoadWindow(pred, w)
	if err != nil {
		return err
	}

	doc.Model = v.ModelName
	doc.Values = pred.Values
	doc.LLStart = llw.Start
	doc.LLAvg = llw.AvgLoad
	doc.Refreshes++
	sp = tr.Begin(obs.StageUpsert)
	err = col.Upsert(region, docID, &doc)
	sp.End()
	return err
}

// RefreshWeek synchronously refreshes every stored prediction of (region,
// week) — the full-fleet path the equivalence tests pin against
// pipeline.RunWeek — and returns how many servers were refreshed. Servers
// with insufficient live history are skipped, not fatal.
func (r *Refresher) RefreshWeek(ctx context.Context, region string, week int) (int, error) {
	weekSuffix := fmt.Sprintf("/week-%04d", week)
	var ids []string
	err := r.db.Collection(r.cfg.Collection).Query(region, func(id string, body json.RawMessage) error {
		if strings.HasSuffix(id, weekSuffix) {
			ids = append(ids, strings.TrimSuffix(id, weekSuffix))
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, serverID := range ids {
		if err := ctx.Err(); err != nil {
			return n, err
		}
		err := r.RefreshServer(ctx, region, serverID, week)
		switch {
		case err == nil:
			n++
		case errors.Is(err, ErrInsufficientHistory) || errors.Is(err, ErrNoTelemetry):
			// counted as skipped by RefreshServer
		default:
			return n, err
		}
	}
	return n, nil
}

// Stats snapshots the refresher's lifetime counters.
func (r *Refresher) Stats() RefreshStats {
	r.mu.Lock()
	pending := len(r.pending)
	r.mu.Unlock()
	return RefreshStats{
		Queued:    r.queued.Load(),
		Coalesced: r.coalesced.Load(),
		Dropped:   r.dropped.Load(),
		Refreshed: r.refreshed.Load(),
		Skipped:   r.skipped.Load(),
		Failed:    r.failed.Load(),
		Pending:   pending,
	}
}
