package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/lake"
	"seagull/internal/timeseries"
)

// snapCfg is a small, deterministic geometry for snapshot tests.
func snapCfg() Config {
	return Config{
		Interval:  5 * time.Minute,
		Epoch:     time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC),
		Slots:     4 * 288, // four days
		Shards:    4,
		MaxFuture: -1, // synthetic timestamps, no wall-clock guard
	}
}

// feed appends a deterministic messy workload: several servers, shuffled
// arrival order, duplicates, gaps and a mid-stream window slide.
func feed(t *testing.T, g *Ingestor, seed int64) []string {
	t.Helper()
	cfg := snapCfg()
	rng := rand.New(rand.NewSource(seed))
	servers := []string{"srv-a", "srv-b", "srv-c", "srv-long-name-d"}
	for si, id := range servers {
		n := 600 + 100*si
		order := rng.Perm(n)
		for _, i := range order {
			if i%17 == 0 {
				continue // leave gaps
			}
			ts := cfg.Epoch.Add(time.Duration(i) * cfg.Interval)
			v := 20 + 10*math.Sin(float64(i)/29) + float64(si)
			g.Append(id, ts, v)
			if i%13 == 0 {
				g.Append(id, ts, v+99) // duplicate: first write must win
			}
		}
		// Slide the window forward well past the ring capacity for one
		// server, so eviction and shift paths are exercised.
		if si == 1 {
			for i := 0; i < 200; i++ {
				ts := cfg.Epoch.Add(time.Duration(5*288+i) * cfg.Interval)
				g.Append(id, ts, 50+float64(i%7))
			}
		}
	}
	return servers
}

// TestSnapshotRestoreEquivalence is the tentpole pin: ingest → snapshot →
// restart (fresh ingestor) → restore → forecast is bit-identical to the
// uninterrupted run, including appends that continue after the restore.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	cfg := snapCfg()
	uninterrupted := NewIngestor(cfg)
	restarted := NewIngestor(cfg)
	servers := feed(t, uninterrupted, 42)

	var buf bytes.Buffer
	if err := uninterrupted.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := restarted.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Post-restart traffic lands on both: late out-of-order points, fresh
	// points, duplicates of pre-snapshot slots.
	for _, g := range []*Ingestor{uninterrupted, restarted} {
		for _, id := range servers {
			for i := 550; i < 900; i += 3 {
				ts := cfg.Epoch.Add(time.Duration(i) * cfg.Interval)
				st := g.Append(id, ts, 30+float64(i%11))
				_ = st
			}
		}
	}

	for _, id := range servers {
		a, okA := uninterrupted.View(id)
		b, okB := restarted.View(id)
		if okA != okB {
			t.Fatalf("%s: view ok %v vs %v", id, okA, okB)
		}
		if !okA {
			continue
		}
		if !a.Start.Equal(b.Start) || a.Interval != b.Interval || a.Len() != b.Len() {
			t.Fatalf("%s: view shape (%s, %v, %d) vs (%s, %v, %d)",
				id, a.Start, a.Interval, a.Len(), b.Start, b.Interval, b.Len())
		}
		for i := range a.Values {
			av, bv := a.Values[i], b.Values[i]
			if math.Float64bits(av) != math.Float64bits(bv) && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("%s: values[%d] = %v vs %v", id, i, av, bv)
			}
		}

		// The pin the stream layer promises: forecasts from the restored
		// window are bit-identical to the uninterrupted run's.
		fa := forecastFromView(t, a)
		fb := forecastFromView(t, b)
		for i := range fa.Values {
			if math.Float64bits(fa.Values[i]) != math.Float64bits(fb.Values[i]) {
				t.Fatalf("%s: forecast[%d] = %v vs %v", id, i, fa.Values[i], fb.Values[i])
			}
		}
	}
}

func forecastFromView(t *testing.T, live timeseries.Series) timeseries.Series {
	t.Helper()
	m, err := forecast.New(forecast.NameSSA, 1)
	if err != nil {
		t.Fatal(err)
	}
	filled := live.FillGaps()
	if err := m.Train(filled); err != nil {
		t.Fatal(err)
	}
	f, err := m.Forecast(filled.PointsPerDay())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestSnapshotGeometryMismatch: a snapshot from a different ring geometry is
// refused rather than aliased onto the wrong slot grid.
func TestSnapshotGeometryMismatch(t *testing.T) {
	g := NewIngestor(snapCfg())
	feed(t, g, 7)
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	other := snapCfg()
	other.Interval = time.Minute
	h := NewIngestor(other)
	if err := h.RestoreSnapshot(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrSnapshotFormat) {
		t.Fatalf("err = %v, want ErrSnapshotFormat", err)
	}
	if st := h.Stats(); st.Servers != 0 {
		t.Fatalf("mismatched restore installed %d servers", st.Servers)
	}
}

// TestSnapshotCorruption: truncations at every boundary and bit flips all
// fail cleanly with ErrSnapshotFormat and leave the ingestor untouched — a
// damaged snapshot means a cold start, never a panic or a half-restore.
func TestSnapshotCorruption(t *testing.T) {
	g := NewIngestor(snapCfg())
	feed(t, g, 11)
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	cuts := []int{0, 3, len(snapshotMagic), len(snapshotMagic) + 10, len(whole) / 2, len(whole) - 5, len(whole) - 1}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("truncate-%d", cut), func(t *testing.T) {
			h := NewIngestor(snapCfg())
			err := h.RestoreSnapshot(bytes.NewReader(whole[:cut]))
			if !errors.Is(err, ErrSnapshotFormat) {
				t.Fatalf("err = %v, want ErrSnapshotFormat", err)
			}
			if st := h.Stats(); st.Servers != 0 {
				t.Fatalf("truncated restore installed %d servers", st.Servers)
			}
		})
	}

	// Flip one byte in the middle of the records: the CRC must catch it (or
	// the structural validation, whichever trips first).
	t.Run("bitflip", func(t *testing.T) {
		flipped := append([]byte(nil), whole...)
		flipped[len(flipped)/2] ^= 0x40
		h := NewIngestor(snapCfg())
		if err := h.RestoreSnapshot(bytes.NewReader(flipped)); !errors.Is(err, ErrSnapshotFormat) {
			t.Fatalf("err = %v, want ErrSnapshotFormat", err)
		}
		if st := h.Stats(); st.Servers != 0 {
			t.Fatalf("corrupt restore installed %d servers", st.Servers)
		}
	})
}

// TestSnapshotLiveRingWins: restoring over an ingestor that already has live
// telemetry for a server keeps the live ring.
func TestSnapshotLiveRingWins(t *testing.T) {
	cfg := snapCfg()
	g := NewIngestor(cfg)
	feed(t, g, 3)
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	h := NewIngestor(cfg)
	ts := cfg.Epoch.Add(1000 * cfg.Interval)
	h.Append("srv-a", ts, 77)
	if err := h.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	v, ok := h.View("srv-a")
	if !ok {
		t.Fatal("no view for srv-a")
	}
	if v.Len() != 1 || v.Values[0] != 77 {
		t.Fatalf("live ring was replaced by the snapshot: view len %d", v.Len())
	}
	// Other servers came in from the snapshot.
	if _, ok := h.View("srv-b"); !ok {
		t.Fatal("snapshot servers missing after restore")
	}
}

// TestSnapshotLakeRoundTrip exercises the lake glue: SaveSnapshot stores the
// object atomically, LoadSnapshot restores it, first boot sees ErrNoSnapshot.
func TestSnapshotLakeRoundTrip(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := snapCfg()
	g := NewIngestor(cfg)

	if err := g.LoadSnapshot(store); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("first boot err = %v, want ErrNoSnapshot", err)
	}

	feed(t, g, 5)
	if err := g.SaveSnapshot(store); err != nil {
		t.Fatal(err)
	}
	h := NewIngestor(cfg)
	if err := h.LoadSnapshot(store); err != nil {
		t.Fatal(err)
	}
	want, _ := g.View("srv-c")
	got, ok := h.View("srv-c")
	if !ok || got.Len() != want.Len() {
		t.Fatalf("restored view len %d, want %d", got.Len(), want.Len())
	}
}
