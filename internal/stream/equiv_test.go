package stream_test

// The acceptance pin of the stream subsystem: the incremental refresh path
// (ingest → snapshot → warm-pool retrain → republish) must be a pure
// scheduling optimization over the weekly batch pipeline, never an accuracy
// trade. For identical telemetry, a refreshed PredictionDoc carries a
// forecast bit-identical to what pipeline.RunWeek stored; and when only part
// of a fleet drifts, only the drifted servers are retrained.

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/extract"
	"seagull/internal/forecast"
	"seagull/internal/lake"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
	"seagull/internal/serving"
	"seagull/internal/simulate"
	"seagull/internal/stream"
)

const eqRegion = "eq"

// eqFixture runs a real two-week pipeline over a synthetic fleet and
// returns everything the stream layer needs to replay it.
type eqFixture struct {
	store *lake.Store
	db    *cosmos.DB
	reg   *registry.Registry
	docs  map[string]*pipeline.PredictionDoc // by server id
	start time.Time
}

func newEqFixture(t *testing.T, model string) *eqFixture {
	t.Helper()
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(nil)
	fleet := simulate.GenerateFleet(simulate.Config{Region: eqRegion, Servers: 16, Weeks: 2, Seed: 3})
	if _, err := extract.ExtractAll(store, fleet); err != nil {
		t.Fatal(err)
	}
	p := pipeline.New(store, db, reg, nil)
	if _, err := p.RunWeek(context.Background(), pipeline.Config{
		Region: eqRegion, Week: 1, ModelName: model,
	}); err != nil {
		t.Fatal(err)
	}
	f := &eqFixture{store: store, db: db, reg: reg, start: fleet.Config.Start}
	f.docs = f.storedDocs(t)
	if len(f.docs) == 0 {
		t.Fatal("pipeline stored no predictions")
	}
	return f
}

// storedDocs reads every week-1 PredictionDoc.
func (f *eqFixture) storedDocs(t *testing.T) map[string]*pipeline.PredictionDoc {
	t.Helper()
	out := map[string]*pipeline.PredictionDoc{}
	err := f.db.Collection("predictions").Query(eqRegion, func(id string, body json.RawMessage) error {
		if !strings.HasSuffix(id, "/week-0001") {
			return nil
		}
		var doc pipeline.PredictionDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			return err
		}
		out[doc.ServerID] = &doc
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// feed streams the same weekly extracts the pipeline ingested into an
// ingestor, optionally perturbing one server's values inside [from, to).
func (f *eqFixture) feed(t *testing.T, ing *stream.Ingestor, perturbID string, from, to time.Time, delta float64) {
	t.Helper()
	for w := 0; w <= 1; w++ {
		loads, err := extract.Ingest(f.store, eqRegion, w, 5*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		for _, sl := range loads {
			vals := sl.Load.Values
			if sl.ServerID == perturbID {
				vals = append([]float64(nil), vals...)
				for i := range vals {
					at := sl.Load.TimeAt(i)
					if !at.Before(from) && at.Before(to) {
						vals[i] += delta
					}
				}
			}
			if _, err := ing.AppendSeries(sl.ServerID, sl.Load.Start, vals); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// zeroTime marks "no perturbation window" in feed calls.
var zeroTime time.Time

// newWarmPool builds the serving layer's warm model pool bound to the
// fixture's registry, adapted to the stream refresher's Pool interface.
func newWarmPool(t *testing.T, f *eqFixture) stream.Pool {
	t.Helper()
	pool := serving.NewModelPool(serving.PoolConfig{})
	t.Cleanup(pool.Bind(f.reg))
	return serving.StreamPool(pool)
}

// warmRefresher builds a refresher over the serving layer's warm model pool.
func warmRefresher(t *testing.T, f *eqFixture, ing *stream.Ingestor) *stream.Refresher {
	t.Helper()
	return stream.NewRefresher(ing, f.db, f.reg, newWarmPool(t, f), stream.RefreshConfig{})
}

// TestRefreshEquivalentToRunWeek: refreshing an undrifted fleet from live
// telemetry reproduces the weekly run's forecasts bit for bit — across the
// production persistent forecast, the SSA model (deterministic retrain with
// retained scratch) and the additive model (inference consumes the model
// RNG, which Train re-seeds).
func TestRefreshEquivalentToRunWeek(t *testing.T) {
	for _, model := range []string{
		forecast.NamePersistentPrevDay,
		forecast.NameSSA,
		forecast.NameAdditive,
	} {
		t.Run(model, func(t *testing.T) {
			f := newEqFixture(t, model)
			ing := stream.NewIngestor(stream.Config{Epoch: f.start, Slots: 8064})
			f.feed(t, ing, "", time.Time{}, time.Time{}, 0)

			r := warmRefresher(t, f, ing)
			n, err := r.RefreshWeek(context.Background(), eqRegion, 1)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(f.docs) {
				t.Fatalf("refreshed %d servers, want all %d", n, len(f.docs))
			}

			after := f.storedDocs(t)
			for id, want := range f.docs {
				got := after[id]
				if got == nil {
					t.Fatalf("server %s lost its prediction", id)
				}
				if got.Refreshes != 1 {
					t.Errorf("%s: refreshes = %d, want 1", id, got.Refreshes)
				}
				if got.Model != want.Model || got.LLStart != want.LLStart {
					t.Errorf("%s: model/LL = %s/%d, want %s/%d", id, got.Model, got.LLStart, want.Model, want.LLStart)
				}
				if math.Float64bits(got.LLAvg) != math.Float64bits(want.LLAvg) {
					t.Errorf("%s: LLAvg = %v, want %v", id, got.LLAvg, want.LLAvg)
				}
				if len(got.Values) != len(want.Values) {
					t.Fatalf("%s: forecast length %d vs %d", id, len(got.Values), len(want.Values))
				}
				for i := range want.Values {
					if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
						t.Fatalf("%s: refreshed forecast differs from the weekly run at %d: %v vs %v",
							id, i, got.Values[i], want.Values[i])
					}
				}
			}
		})
	}
}

// TestDriftTriggersPartialRefresh: when one server's live backup day runs
// hot, the sweep flags exactly that server beyond the naturally drifted
// baseline, and the refresher retrains only the drifted servers (pinned via
// the refresh counters and the per-doc Refreshes field).
func TestDriftTriggersPartialRefresh(t *testing.T) {
	f := newEqFixture(t, forecast.NamePersistentPrevDay)
	ctx := context.Background()

	// Baseline: live telemetry identical to what the pipeline evaluated.
	clean := stream.NewIngestor(stream.Config{Epoch: f.start, Slots: 8064})
	f.feed(t, clean, "", time.Time{}, time.Time{}, 0)
	baseRep, err := stream.NewDriftDetector(clean, f.db, stream.DriftConfig{}).Sweep(ctx, eqRegion, 1)
	if err != nil {
		t.Fatal(err)
	}
	baseline := map[string]bool{}
	for _, sd := range baseRep.DriftedServers {
		baseline[sd.ServerID] = true
	}

	// Pick a server the clean sweep judged fine and run its backup day 40
	// points hot in a second ingestor.
	var target *pipeline.PredictionDoc
	for _, doc := range f.docs {
		if !baseline[doc.ServerID] {
			target = doc
			break
		}
	}
	if target == nil {
		t.Fatal("every server drifted naturally; fixture too noisy to test partial drift")
	}
	hot := stream.NewIngestor(stream.Config{Epoch: f.start, Slots: 8064})
	f.feed(t, hot, target.ServerID, target.BackupDay, target.BackupDay.Add(24*time.Hour), 40)

	rep, err := stream.NewDriftDetector(hot, f.db, stream.DriftConfig{}).Sweep(ctx, eqRegion, 1)
	if err != nil {
		t.Fatal(err)
	}
	drifted := map[string]bool{}
	for _, sd := range rep.DriftedServers {
		drifted[sd.ServerID] = true
	}
	if !drifted[target.ServerID] {
		t.Fatalf("perturbed server %s not flagged; drifted = %v", target.ServerID, drifted)
	}
	if len(drifted) != len(baseline)+1 {
		t.Fatalf("drift sweep flagged %d servers, want baseline %d + the perturbed one",
			len(drifted), len(baseline))
	}
	for id := range baseline {
		if !drifted[id] {
			t.Errorf("baseline-drifted %s missing from the perturbed sweep", id)
		}
	}

	// Queue and drain: only the drifted servers retrain.
	r := warmRefresher(t, f, hot)
	if queued, dropped := r.EnqueueReport(rep); queued != len(drifted) || dropped != 0 {
		t.Fatalf("queued %d (dropped %d), want %d queued", queued, dropped, len(drifted))
	}
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Refreshed != uint64(len(drifted)) || st.Failed != 0 {
		t.Fatalf("refresh stats = %+v, want exactly %d refreshed", st, len(drifted))
	}

	after := f.storedDocs(t)
	for id, doc := range after {
		wantRefreshes := 0
		if drifted[id] {
			wantRefreshes = 1
		}
		if doc.Refreshes != wantRefreshes {
			t.Errorf("%s: refreshes = %d, want %d (drifted=%v)", id, doc.Refreshes, wantRefreshes, drifted[id])
		}
	}
	// The fleet-cost claim in one line: refresh work scales with the
	// drifted share, not the fleet size.
	if len(drifted) >= len(f.docs) {
		t.Fatalf("partial-drift fixture degenerated: %d of %d drifted", len(drifted), len(f.docs))
	}
}
