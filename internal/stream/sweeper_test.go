package stream_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"seagull/internal/forecast"
	"seagull/internal/pipeline"
	"seagull/internal/simclock"
	"seagull/internal/stream"
)

// TestSweeperEndToEnd: with live telemetry running one server hot, a single
// background round — no client sweep clause anywhere — discovers the
// region's latest summarized week, flags the drifted server and queues it;
// draining the refresher republishes the doc.
func TestSweeperEndToEnd(t *testing.T) {
	f := newEqFixture(t, forecast.NamePersistentPrevDay)
	ctx := context.Background()

	// Find a server that does not drift naturally (same selection as the
	// partial-drift test) and run its backup day hot.
	clean := stream.NewIngestor(stream.Config{Epoch: f.start, Slots: 8064})
	f.feed(t, clean, "", zeroTime, zeroTime, 0)
	cleanRep, err := stream.NewDriftDetector(clean, f.db, stream.DriftConfig{}).Sweep(ctx, eqRegion, 1)
	if err != nil {
		t.Fatal(err)
	}
	naturally := map[string]bool{}
	for _, sd := range cleanRep.DriftedServers {
		naturally[sd.ServerID] = true
	}
	var target *pipeline.PredictionDoc
	for _, doc := range f.docs {
		if !naturally[doc.ServerID] {
			target = doc
			break
		}
	}
	if target == nil {
		t.Fatal("every server drifted naturally")
	}

	hot := stream.NewIngestor(stream.Config{Epoch: f.start, Slots: 8064})
	f.feed(t, hot, target.ServerID, target.BackupDay, target.BackupDay.Add(24*time.Hour), 40)
	det := stream.NewDriftDetector(hot, f.db, stream.DriftConfig{})
	ref := stream.NewRefresher(hot, f.db, f.reg, newWarmPool(t, f), stream.RefreshConfig{Workers: 2})
	sw := stream.NewSweeper(f.db, det, ref, stream.SweeperConfig{})

	if err := sw.SweepOnce(ctx); err != nil {
		t.Fatal(err)
	}
	st := sw.Stats()
	if st.Ticks != 1 || st.Regions != 1 {
		t.Fatalf("sweeper stats = %+v, want 1 tick over 1 region", st)
	}
	if st.Drifted == 0 || st.Queued != st.Drifted || st.Dropped != 0 || st.Errors != 0 {
		t.Fatalf("sweeper stats = %+v, want every drifted server queued", st)
	}

	if err := ref.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	doc := f.storedDocs(t)[target.ServerID]
	if doc == nil || doc.Refreshes != 1 {
		t.Fatalf("hot server not refreshed by the background loop: %+v", doc)
	}

	// A second round over unchanged telemetry re-finds the naturally drifted
	// servers (refresh does not change their actuals) but the loop stays
	// stable: nothing errors, queue drains again.
	if err := sw.SweepOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if st := sw.Stats(); st.Ticks != 2 || st.Errors != 0 {
		t.Fatalf("second round stats = %+v", st)
	}
}

// TestSweeperDiscoversLatestWeek: discovery picks each region's most recent
// summarized week and ignores regions without summaries or malformed ids.
func TestSweeperDiscoversLatestWeek(t *testing.T) {
	f := newEqFixture(t, forecast.NamePersistentPrevDay)
	ing := stream.NewIngestor(stream.Config{Epoch: f.start, Slots: 8064})
	f.feed(t, ing, "", zeroTime, zeroTime, 0)
	det := stream.NewDriftDetector(ing, f.db, stream.DriftConfig{})
	sw := stream.NewSweeper(f.db, det, nil, stream.SweeperConfig{})

	// Plant decoys: a malformed id in the real region, a summary-free region
	// (partition exists in predictions only), and an extra region whose only
	// summary points at a week with no predictions (sweep finds 0 checked —
	// not an error).
	sums := f.db.Collection("summaries")
	if err := sums.Upsert(eqRegion, "not-a-week", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.db.Collection("predictions").Upsert("ghost", "srv/week-0009", map[string]int{}); err != nil {
		t.Fatal(err)
	}
	if err := sums.Upsert("empty", "week-0003", map[string]int{}); err != nil {
		t.Fatal(err)
	}

	if err := sw.SweepOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := sw.Stats()
	// Both summarized regions swept; the ghost (no summaries) skipped.
	if st.Regions != 2 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 2 regions swept cleanly", st)
	}
	// ref == nil: drift counted, nothing queued.
	if st.Queued != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want monitoring-only sweeps to queue nothing", st)
	}
}

// TestSweeperRunStops: Run ticks on its clock's ticker in the background and
// stops on cancel. The simulated clock makes the test deterministic: each
// Advance crosses exactly one interval, and no real time is slept.
func TestSweeperRunStops(t *testing.T) {
	f := newEqFixture(t, forecast.NamePersistentPrevDay)
	ing := stream.NewIngestor(stream.Config{Epoch: f.start, Slots: 8064})
	f.feed(t, ing, "", zeroTime, zeroTime, 0)
	det := stream.NewDriftDetector(ing, f.db, stream.DriftConfig{})
	clock := simclock.NewSimulated(f.start)
	sw := stream.NewSweeper(f.db, det, nil, stream.SweeperConfig{Interval: time.Minute, Clock: clock})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sw.Run(ctx) }()
	clock.BlockUntil(1) // Run's ticker is registered
	for tick := uint64(1); tick <= 2; tick++ {
		clock.Advance(time.Minute)
		// The tick is delivered asynchronously; wait for the sweep to land.
		deadline := time.Now().Add(5 * time.Second)
		for sw.Stats().Ticks < tick && time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop after cancel")
	}
	if sw.Stats().Ticks < 2 {
		t.Fatalf("background Run ticked %d times, want ≥ 2", sw.Stats().Ticks)
	}
}
