package stream

import (
	"context"
	"errors"
	"math"
	"os"
	"testing"
	"time"

	"seagull/internal/lake"
)

// Crash-recovery matrix: every injected kill point (torn WAL append, failed
// snapshot replace, interrupted replay, corrupted bytes) must recover the
// live window bit-identical to the uninterrupted run up to the durable
// prefix, and no injected corruption may panic or install a partial window.
// "Kill" is simulated by abandoning the Durability without Close — exactly
// what SIGKILL leaves behind — and recovering into a fresh ingestor over the
// same store.

// durCfg disables tickers so tests drive commits and snapshots explicitly.
func durCfg() DurabilityConfig {
	return DurabilityConfig{SnapshotEvery: -1, CommitEvery: time.Hour}
}

// openDurability builds and opens a manager over store for a fresh ingestor.
func openDurability(t *testing.T, store ObjectStore, cfg DurabilityConfig) (*Ingestor, *Durability) {
	t.Helper()
	g := NewIngestor(snapCfg())
	d := NewDurability(g, store, cfg)
	if _, err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := d.Open(); err != nil {
		t.Fatal(err)
	}
	return g, d
}

// recoverFresh recovers a fresh ingestor from store, failing the test on a
// transport-level error (per-object failures land in the stats).
func recoverFresh(t *testing.T, store ObjectStore) (*Ingestor, RecoveryStats) {
	t.Helper()
	g := NewIngestor(snapCfg())
	rec, err := NewDurability(g, store, durCfg()).Recover()
	if err != nil {
		t.Fatal(err)
	}
	return g, rec
}

// requireSameViews pins got's live windows bit-identical to want's, for every
// server either side knows.
func requireSameViews(t *testing.T, want, got *Ingestor) {
	t.Helper()
	ws, gs := want.Servers(), got.Servers()
	if len(ws) != len(gs) {
		t.Fatalf("servers: recovered %v, want %v", gs, ws)
	}
	for _, id := range ws {
		a, okA := want.View(id)
		b, okB := got.View(id)
		if okA != okB {
			t.Fatalf("%s: view ok %v, want %v", id, okB, okA)
		}
		if !okA {
			continue
		}
		if !a.Start.Equal(b.Start) || a.Interval != b.Interval || a.Len() != b.Len() {
			t.Fatalf("%s: view shape (%s, %v, %d), want (%s, %v, %d)",
				id, b.Start, b.Interval, b.Len(), a.Start, a.Interval, a.Len())
		}
		for i := range a.Values {
			av, bv := a.Values[i], b.Values[i]
			if math.Float64bits(av) != math.Float64bits(bv) && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("%s: values[%d] = %v, want %v", id, i, bv, av)
			}
		}
	}
}

// feedN appends n deterministic points for id starting at slot base.
func feedN(g *Ingestor, id string, base, n int) {
	cfg := snapCfg()
	for i := 0; i < n; i++ {
		ts := cfg.Epoch.Add(time.Duration(base+i) * cfg.Interval)
		g.Append(id, ts, 10+math.Sin(float64(base+i)/13))
	}
}

// TestDurabilityWALRecovery: a hard kill after a group commit loses nothing
// that was committed — WAL-only recovery (no snapshot ever written) is
// bit-identical to the uninterrupted run.
func TestDurabilityWALRecovery(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, d := openDurability(t, store, durCfg())
	ref := NewIngestor(snapCfg())
	feed(t, g, 42)
	feed(t, ref, 42)
	if err := d.CommitNow(); err != nil {
		t.Fatal(err)
	}
	// Kill: no Close, no snapshot.
	got, rec := recoverFresh(t, store)
	if rec.Degraded() {
		t.Fatalf("unexpected degraded recovery: %v", rec.Failures)
	}
	if rec.WALRecords == 0 || rec.SnapshotShards != 0 {
		t.Fatalf("recovery = %+v, want WAL-only records", rec)
	}
	requireSameViews(t, ref, got)
}

// TestDurabilitySnapshotPlusWAL: snapshot, more traffic, commit, kill — the
// recovered window composes the snapshot with the replayed tail and matches
// the uninterrupted run. Also pins incremental skip (an idle shard set costs
// zero snapshot writes) and WAL truncation after a successful snapshot.
func TestDurabilitySnapshotPlusWAL(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, d := openDurability(t, store, durCfg())
	ref := NewIngestor(snapCfg())
	feed(t, g, 7)
	feed(t, ref, 7)

	wrote, err := d.SnapshotNow()
	if err != nil {
		t.Fatal(err)
	}
	if wrote == 0 {
		t.Fatal("first snapshot wrote no shards")
	}
	// Unchanged shards cost nothing on the next cycle.
	if wrote, err = d.SnapshotNow(); err != nil || wrote != 0 {
		t.Fatalf("idle snapshot wrote %d shards (err %v), want 0", wrote, err)
	}
	st := d.Stats()
	if st.Truncations == 0 {
		t.Fatalf("stats = %+v, want WAL truncations after snapshot", st)
	}

	feedN(g, "srv-a", 700, 150)
	feedN(ref, "srv-a", 700, 150)
	if err := d.CommitNow(); err != nil {
		t.Fatal(err)
	}
	got, rec := recoverFresh(t, store)
	if rec.Degraded() {
		t.Fatalf("unexpected degraded recovery: %v", rec.Failures)
	}
	if rec.SnapshotShards == 0 || rec.WALRecords != 150 {
		t.Fatalf("recovery = %+v, want snapshots plus the 150-record WAL tail", rec)
	}
	requireSameViews(t, ref, got)
}

// TestDurabilityTornTail: a kill mid-append leaves a partial frame at the
// WAL tail; replay keeps every complete frame before it and never panics.
func TestDurabilityTornTail(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, d := openDurability(t, store, durCfg())
	ref := NewIngestor(snapCfg())
	feedN(g, "srv-torn", 0, 300)
	feedN(ref, "srv-torn", 0, 300)
	if err := d.CommitNow(); err != nil {
		t.Fatal(err)
	}
	// Tear every shard log's tail the way a mid-write kill would: a few raw
	// bytes of a frame that never finished.
	for i := range g.sh {
		f, err := os.OpenFile(store.ObjectPath(walObject(i)), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe}); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	got, rec := recoverFresh(t, store)
	if rec.Degraded() {
		t.Fatalf("torn tails must not degrade: %v", rec.Failures)
	}
	if rec.TornTails != len(g.sh) || rec.WALRecords != 300 {
		t.Fatalf("recovery = %+v, want %d torn tails and all 300 committed records", rec, len(g.sh))
	}
	requireSameViews(t, ref, got)
}

// TestDurabilityKillDuringWALAppend: an injected mid-frame write failure
// (ENOSPC at a scripted offset) rolls the log back to a frame boundary and
// keeps the batch buffered. A kill at that moment recovers exactly the last
// committed prefix; clearing the fault and retrying commits the batch with
// zero loss.
func TestDurabilityKillDuringWALAppend(t *testing.T) {
	base, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := lake.NewFaultStore(base)
	g, d := openDurability(t, store, durCfg())
	prefix := NewIngestor(snapCfg())
	full := NewIngestor(snapCfg())

	feedN(g, "srv-enospc", 0, 200)
	feedN(prefix, "srv-enospc", 0, 200)
	feedN(full, "srv-enospc", 0, 200)
	if err := d.CommitNow(); err != nil {
		t.Fatal(err)
	}

	// Arm ENOSPC a little into the next batch, on the server's shard log.
	shardIdx := -1
	for i := range g.sh {
		if _, ok := g.sh[i].rings["srv-enospc"]; ok {
			shardIdx = i
		}
	}
	if shardIdx < 0 {
		t.Fatal("server shard not found")
	}
	enospc := errors.New("no space left on device")
	store.Arm(lake.FaultRule{Name: walObject(shardIdx), Op: lake.FaultAppend, Offset: 37, Err: enospc})

	feedN(g, "srv-enospc", 200, 100)
	feedN(full, "srv-enospc", 200, 100)
	if err := d.CommitNow(); !errors.Is(err, enospc) {
		t.Fatalf("commit under ENOSPC err = %v, want the injected error", err)
	}
	if d.Stats().CommitErrors == 0 {
		t.Fatal("commit error not counted")
	}

	// Kill here: recovery sees exactly the pre-fault committed prefix — the
	// rolled-back partial frame must not poison it.
	got, rec := recoverFresh(t, base)
	if rec.Degraded() {
		t.Fatalf("rolled-back torn write must not degrade: %v", rec.Failures)
	}
	if rec.WALRecords != 200 {
		t.Fatalf("recovered %d records, want the 200-record prefix", rec.WALRecords)
	}
	requireSameViews(t, prefix, got)

	// The disk clears; the requeued batch commits on the next cycle with
	// zero loss.
	store.Disarm(walObject(shardIdx), lake.FaultAppend)
	if err := d.CommitNow(); err != nil {
		t.Fatal(err)
	}
	got, rec = recoverFresh(t, base)
	if rec.Degraded() || rec.WALRecords != 300 {
		t.Fatalf("post-retry recovery = %+v, want all 300 records", rec)
	}
	requireSameViews(t, full, got)
}

// TestDurabilityKillDuringSnapshotReplace: a failure mid-replace aborts the
// staged write, so the previous snapshot stays live — and because pending
// points are flushed to the WAL before the replace, a kill at that moment
// still recovers everything.
func TestDurabilityKillDuringSnapshotReplace(t *testing.T) {
	base, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store := lake.NewFaultStore(base)
	g, d := openDurability(t, store, durCfg())
	ref := NewIngestor(snapCfg())
	feed(t, g, 99)
	feed(t, ref, 99)
	if _, err := d.SnapshotNow(); err != nil {
		t.Fatal(err)
	}

	feedN(g, "srv-a", 700, 120)
	feedN(ref, "srv-a", 700, 120)
	shardIdx := -1
	for i := range g.sh {
		if _, ok := g.sh[i].rings["srv-a"]; ok {
			shardIdx = i
		}
	}
	store.Arm(lake.FaultRule{Name: shardSnapshotObject(shardIdx), Op: lake.FaultWrite, Offset: 100})
	if _, err := d.SnapshotNow(); !errors.Is(err, lake.ErrInjected) {
		t.Fatalf("snapshot under fault err = %v, want injected", err)
	}
	if d.Stats().SnapshotErrs == 0 {
		t.Fatal("snapshot error not counted")
	}

	// Kill mid-replace: old snapshot + WAL reconstruct the full state. Sweep
	// first, as boot does — the aborted stage leaves no usable temp either
	// way.
	if _, err := base.SweepTempObjects(); err != nil {
		t.Fatal(err)
	}
	got, rec := recoverFresh(t, base)
	if rec.Degraded() {
		t.Fatalf("aborted replace must not degrade: %v", rec.Failures)
	}
	if rec.WALRecords != 120 {
		t.Fatalf("recovered %d WAL records, want the 120 flushed before the replace", rec.WALRecords)
	}
	requireSameViews(t, ref, got)
}

// TestDurabilityKillDuringReplay: an I/O error mid-replay recovers what it
// can, reports the file as failed (degraded), installs no partial record —
// and a clean retry over the same store recovers everything, because replay
// never mutates the log.
func TestDurabilityKillDuringReplay(t *testing.T) {
	base, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, d := openDurability(t, base, durCfg())
	ref := NewIngestor(snapCfg())
	feedN(g, "srv-replay", 0, 400)
	feedN(ref, "srv-replay", 0, 400)
	if err := d.CommitNow(); err != nil {
		t.Fatal(err)
	}

	shardIdx := -1
	for i := range g.sh {
		if _, ok := g.sh[i].rings["srv-replay"]; ok {
			shardIdx = i
		}
	}
	ioErr := errors.New("read timeout")
	faulty := lake.NewFaultStore(base)
	faulty.Arm(lake.FaultRule{Name: walObject(shardIdx), Op: lake.FaultRead, Offset: int64(walHeaderLen) + 500, Err: ioErr})

	killed := NewIngestor(snapCfg())
	rec, err := NewDurability(killed, faulty, durCfg()).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Degraded() {
		t.Fatalf("interrupted replay not reported: %+v", rec)
	}
	// A prefix may have been applied, but only whole records: every slot the
	// killed ingestor holds must match the reference bit-for-bit.
	if live, ok := killed.View("srv-replay"); ok {
		want, _ := ref.View("srv-replay")
		for i, v := range live.Values {
			j := int(live.Start.Sub(want.Start)/live.Interval) + i
			if !math.IsNaN(v) && math.Float64bits(v) != math.Float64bits(want.Values[j]) {
				t.Fatalf("partial replay installed a corrupt value at %d", i)
			}
		}
	}

	// Retry after the fault clears (a restart re-reads the intact log).
	got, rec := recoverFresh(t, base)
	if rec.Degraded() || rec.WALRecords != 400 {
		t.Fatalf("retry recovery = %+v, want all 400 records", rec)
	}
	requireSameViews(t, ref, got)
}

// TestDurabilityCorruptSnapshot: flipped bits in a snapshot (or its short
// read) fail its CRC, recovery skips it, reports degraded, and never panics
// or installs a partial window — the WAL tail still replays.
func TestDurabilityCorruptSnapshot(t *testing.T) {
	base, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, d := openDurability(t, base, durCfg())
	feed(t, g, 5)
	if _, err := d.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	feedN(g, "srv-tail", 100, 50)
	if err := d.CommitNow(); err != nil {
		t.Fatal(err)
	}

	snaps, err := base.ListObjects(ShardSnapshotPrefix)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no shard snapshots on disk (%v)", err)
	}
	faulty := lake.NewFaultStore(base)
	for _, name := range snaps {
		faulty.Arm(lake.FaultRule{Name: name, Op: lake.FaultRead, Offset: 64, Corrupt: true})
	}
	got := NewIngestor(snapCfg())
	rec, err := NewDurability(got, faulty, durCfg()).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Degraded() || rec.SnapshotShards != 0 {
		t.Fatalf("corrupt snapshots: recovery = %+v, want all skipped and degraded", rec)
	}
	// The WAL tail written after the snapshot still recovers.
	if rec.WALRecords != 50 {
		t.Fatalf("recovered %d WAL records, want the 50-record tail", rec.WALRecords)
	}
	if _, ok := got.View("srv-tail"); !ok {
		t.Fatal("WAL tail not replayed after snapshot corruption")
	}
}

// TestDurabilityCleanClose: Close flushes and snapshots everything, so a
// drain loses nothing and leaves only header-sized WALs behind.
func TestDurabilityCleanClose(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, d := openDurability(t, store, durCfg())
	ref := NewIngestor(snapCfg())
	feed(t, g, 1234)
	feed(t, ref, 1234)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range g.sh {
		fi, err := os.Stat(store.ObjectPath(walObject(i)))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(walHeaderLen) {
			t.Fatalf("WAL %d is %d bytes after drain, want bare header (%d)", i, fi.Size(), walHeaderLen)
		}
	}
	got, rec := recoverFresh(t, store)
	if rec.Degraded() || rec.WALRecords != 0 {
		t.Fatalf("post-drain recovery = %+v, want snapshots only", rec)
	}
	requireSameViews(t, ref, got)
}

// TestDurabilityTickers: Start's maintenance loop commits and snapshots on
// its own — points survive a kill with no explicit CommitNow.
func TestDurabilityTickers(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := NewIngestor(snapCfg())
	d := NewDurability(g, store, DurabilityConfig{CommitEvery: 2 * time.Millisecond, SnapshotEvery: 5 * time.Millisecond})
	if _, err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	feedN(g, "srv-tick", 0, 250)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := d.Stats()
		if st.CommitRecords >= 250 && st.Snapshots > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("maintenance loop never persisted: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	// Kill without Close.
	got, rec := recoverFresh(t, store)
	if rec.Degraded() {
		t.Fatalf("degraded: %v", rec.Failures)
	}
	requireSameViews(t, g, got)
}

// TestDurabilityGeometryMismatch: a WAL from a different ring geometry is
// refused (degraded), never aliased onto the wrong slot grid.
func TestDurabilityGeometryMismatch(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, d := openDurability(t, store, durCfg())
	feedN(g, "srv-geo", 0, 10)
	if err := d.CommitNow(); err != nil {
		t.Fatal(err)
	}
	other := snapCfg()
	other.Slots = 288
	got := NewIngestor(other)
	rec, err := NewDurability(got, store, durCfg()).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Degraded() {
		t.Fatalf("geometry mismatch not reported: %+v", rec)
	}
	if len(got.Servers()) != 0 {
		t.Fatal("mismatched WAL was replayed anyway")
	}
}

// TestWALAppendNoAllocs: the warm append path stays allocation-free with the
// WAL armed — buffering is a copy into preallocated capacity.
func TestWALAppendNoAllocs(t *testing.T) {
	store, err := lake.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, d := openDurability(t, store, DurabilityConfig{SnapshotEvery: -1, CommitEvery: time.Hour, BufferEntries: 1 << 20})
	defer d.Close()
	cfg := snapCfg()
	feedN(g, "srv-alloc", 0, 1) // ring + buffer exist
	i := 1
	avg := testing.AllocsPerRun(500, func() {
		g.Append("srv-alloc", cfg.Epoch.Add(time.Duration(i)*cfg.Interval), 12.5)
		i++
	})
	if avg != 0 {
		t.Fatalf("warm append with WAL = %v allocs/op, want 0", avg)
	}
}
