package stream

// Fuzz targets for the two binary decoders that read attacker-ignorant but
// crash-shaped bytes: lake objects survive partial writes, process kills and
// bit rot, so the decoders' contract is "never panic, never install partial
// state, fail with an ErrSnapshotFormat/ErrWALFormat-class error". The seed
// corpora in testdata/fuzz cover the valid encodings plus the classic
// mutations (truncation, flipped CRC, scrambled lengths); CI runs each target
// for a short fixed budget.

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// fuzzGeometry is the fixed ring geometry every fuzz ingestor shares — the
// decoders reject any other geometry, which is itself a path worth fuzzing.
func fuzzIngestor() *Ingestor {
	return NewIngestor(Config{
		Interval: 5 * time.Minute,
		Epoch:    time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC),
		Slots:    64,
		Shards:   4,
	})
}

// fuzzSnapshotBytes builds a small valid snapshot of two live rings.
func fuzzSnapshotBytes(tb testing.TB) []byte {
	g := fuzzIngestor()
	for slot := int64(0); slot < 8; slot++ {
		g.replayPut("srv-a", slot, float64(slot))
		g.replayPut("srv-b", slot*2, 1.5)
	}
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzWALBytes builds a small valid shard log of three frames.
func fuzzWALBytes() []byte {
	g := fuzzIngestor()
	buf := appendWALHeader(nil, &g.cfg)
	buf = appendWALFrame(buf, walEntry{id: "srv-a", slot: 1, val: 3.25})
	buf = appendWALFrame(buf, walEntry{id: "srv-a", slot: 2, val: 4.5})
	buf = appendWALFrame(buf, walEntry{id: "srv-b", slot: 7, val: 0})
	return buf
}

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpora under
// testdata/fuzz when SEAGULL_REGEN_CORPUS=1 — run it after changing either
// binary format so the corpora track the real encodings.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("SEAGULL_REGEN_CORPUS") == "" {
		t.Skip("set SEAGULL_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	valid := fuzzSnapshotBytes(t)
	snapFlip := append([]byte(nil), valid...)
	snapFlip[len(snapFlip)-1] ^= 0xff
	writeCorpus(t, "FuzzRestoreSnapshot", map[string][]byte{
		"valid":         valid,
		"truncated":     valid[:len(valid)/2],
		"crc-flipped":   snapFlip,
		"header-only":   valid[:len(snapshotMagic)+3*8],
		"wrong-geometry": func() []byte {
			g := NewIngestor(Config{Interval: time.Minute, Epoch: time.Unix(0, 0), Slots: 8})
			var buf bytes.Buffer
			if err := g.WriteSnapshot(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}(),
	})
	wal := fuzzWALBytes()
	walFlip := append([]byte(nil), wal...)
	walFlip[len(walFlip)-1] ^= 0xff
	writeCorpus(t, "FuzzReplayWAL", map[string][]byte{
		"valid":       wal,
		"header-only": wal[:walHeaderLen],
		"torn-tail":   wal[:len(wal)-5],
		"crc-flipped": walFlip,
	})
}

// writeCorpus emits native go-fuzz corpus files ("go test fuzz v1").
func writeCorpus(t *testing.T, target string, seeds map[string][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func FuzzRestoreSnapshot(f *testing.F) {
	valid := fuzzSnapshotBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-1])              // truncated checksum
	f.Add(valid[:len(snapshotMagic)+3*8+2])  // truncated mid-record
	f.Add([]byte{})                          // empty object
	f.Add([]byte("SGRINGS2withwrongmagic.")) // wrong magic
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff // CRC mismatch
	f.Add(flipped)
	scrambled := append([]byte(nil), valid...)
	scrambled[len(snapshotMagic)+3*8] = 0xee // scrambled id length
	f.Add(scrambled)

	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzIngestor()
		err := g.RestoreSnapshot(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrSnapshotFormat) {
				t.Fatalf("error escaped the ErrSnapshotFormat class: %v", err)
			}
			// A rejected snapshot must leave the ingestor a clean cold start.
			if n := len(g.Servers()); n != 0 {
				t.Fatalf("failed restore installed %d rings", n)
			}
			return
		}
		// An accepted snapshot must hold invariant state: re-serializing the
		// restored rings must produce a snapshot that restores cleanly too.
		var buf bytes.Buffer
		if err := g.WriteSnapshot(&buf); err != nil {
			t.Fatalf("re-snapshot of accepted restore: %v", err)
		}
		if err := fuzzIngestor().RestoreSnapshot(&buf); err != nil {
			t.Fatalf("round-trip of accepted restore: %v", err)
		}
	})
}

func FuzzReplayWAL(f *testing.F) {
	valid := fuzzWALBytes()
	f.Add(valid)
	f.Add(valid[:walHeaderLen])    // header only: clean empty log
	f.Add(valid[:walHeaderLen+6])  // torn first frame
	f.Add(valid[:len(valid)-3])    // torn last frame
	f.Add([]byte{})                // empty object
	f.Add([]byte("SGWALOG2.....")) // wrong magic
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff // CRC mismatch on the tail frame
	f.Add(flipped)
	scrambled := append([]byte(nil), valid...)
	scrambled[walHeaderLen] = 0xff // scrambled frame length
	f.Add(scrambled)

	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzIngestor()
		rep, err := g.replayWAL(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrWALFormat) {
				t.Fatalf("error escaped the ErrWALFormat class: %v", err)
			}
			return
		}
		// Whatever replay applied must be observable, finite ring state.
		for _, id := range g.Servers() {
			snap, ok := g.SnapshotInto(id, nil)
			if !ok {
				t.Fatalf("server %q listed but has no window", id)
			}
			for i, v := range snap.Values {
				if math.IsInf(v, 0) {
					t.Fatalf("server %q point %d is infinite", id, i)
				}
			}
		}
		if rep.records < 0 || rep.duplicates < 0 {
			t.Fatalf("negative replay tallies: %+v", rep)
		}
	})
}
