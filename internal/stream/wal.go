package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// Per-shard write-ahead log: the first half of the bounded-loss guarantee.
// Accepted points buffer in their shard, and the group committer appends them
// as CRC-framed records and fsyncs — so after a hard kill, everything older
// than the last commit (at most the commit interval δ ago) is on disk.
// Replay happens on boot after snapshot restore; ring puts are first-write-
// wins, so records a snapshot already covers land as duplicates and the
// WAL/snapshot overlap never needs to be exact. Each successful shard
// snapshot truncates that shard's log back to its header, keeping the logs
// small.
//
// Layout per object (little-endian throughout):
//
//	magic "SGWALOG1" | u64 interval | u64 epochUnixNano | u64 slots   (header)
//	repeated frames: u32 payloadLen | payload | u32 crc32(payload)
//	payload: u32 idLen | id | u64 slot | u64 valueBits
//
// A crash mid-append leaves at most one torn frame at the tail; replay stops
// at the first frame that is short or fails its CRC and keeps everything
// before it. Corruption never panics and never installs a partial record.

// WALPrefix is the lake prefix shard logs live under; walObject names one
// shard's log.
const WALPrefix = "stream/wal/"

func walObject(shard int) string {
	return fmt.Sprintf("%sshard-%04d.wal", WALPrefix, shard)
}

// walMagic identifies WAL format version 1.
const walMagic = "SGWALOG1"

// walHeaderLen is the byte length of the header: magic plus ring geometry.
const walHeaderLen = len(walMagic) + 3*8

// walMaxIDLen bounds server ids in frames, mirroring the snapshot format's
// bound; a larger length in a frame means corruption.
const walMaxIDLen = 4096

// ErrWALFormat reports a WAL whose header is missing, malformed or from a
// different ring geometry. (Torn or corrupt frames are not errors — they are
// the expected crash artifact, reported per file in RecoveryStats.)
var ErrWALFormat = errors.New("stream: bad WAL")

// appendWALHeader serializes the log header for the given ring geometry.
func appendWALHeader(buf []byte, cfg *Config) []byte {
	buf = append(buf, walMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.Interval))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.Epoch.UnixNano()))
	return binary.LittleEndian.AppendUint64(buf, uint64(cfg.Slots))
}

// appendWALFrame serializes one record frame.
func appendWALFrame(buf []byte, e walEntry) []byte {
	lenAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // payload length, patched below
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.id)))
	buf = append(buf, e.id...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.slot))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.val))
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-payloadAt))
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[payloadAt:]))
}

// walReplay reports what one log's replay recovered.
type walReplay struct {
	records    int  // frames applied to the rings
	duplicates int  // frames already covered by a snapshot (expected overlap)
	torn       bool // stopped at a short or CRC-failing tail frame
}

// replayWAL reads one shard log and applies its records to the ingestor.
// Geometry mismatch or a missing header returns ErrWALFormat (the caller
// treats the file as unusable); a torn tail is normal crash residue — replay
// keeps everything before it and reports torn. A read error from the
// underlying store aborts with that error; records already applied stay
// applied, which is safe because replay is idempotent.
func (g *Ingestor) replayWAL(r io.Reader) (walReplay, error) {
	var rep walReplay
	br := bufio.NewReaderSize(r, 1<<16)

	hdr := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return rep, fmt.Errorf("%w: short header: %v", ErrWALFormat, err)
	}
	if string(hdr[:len(walMagic)]) != walMagic {
		return rep, fmt.Errorf("%w: magic %q", ErrWALFormat, hdr[:len(walMagic)])
	}
	geo := hdr[len(walMagic):]
	interval := time.Duration(binary.LittleEndian.Uint64(geo[0:8]))
	epoch := int64(binary.LittleEndian.Uint64(geo[8:16]))
	slots := int64(binary.LittleEndian.Uint64(geo[16:24]))
	if interval != g.cfg.Interval || epoch != g.cfg.Epoch.UnixNano() || slots != int64(g.cfg.Slots) {
		return rep, fmt.Errorf("%w: geometry interval=%v epoch=%d slots=%d vs ingestor interval=%v epoch=%d slots=%d",
			ErrWALFormat, interval, epoch, slots, g.cfg.Interval, g.cfg.Epoch.UnixNano(), g.cfg.Slots)
	}

	var frame []byte
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			if err == io.EOF {
				return rep, nil // clean end of log
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				rep.torn = true
				return rep, nil
			}
			return rep, err
		}
		payloadLen := binary.LittleEndian.Uint32(lenBuf[:])
		// 4 (idLen) + id + 8 (slot) + 8 (value); anything outside is a torn
		// or scrambled length, and nothing after it can be framed again.
		if payloadLen < 20 || payloadLen > walMaxIDLen+20 {
			rep.torn = true
			return rep, nil
		}
		need := int(payloadLen) + 4 // payload + trailing CRC
		if cap(frame) < need {
			frame = make([]byte, need)
		}
		frame = frame[:need]
		if _, err := io.ReadFull(br, frame); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				rep.torn = true
				return rep, nil
			}
			return rep, err
		}
		payload := frame[:payloadLen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[payloadLen:]) {
			rep.torn = true
			return rep, nil
		}
		idLen := binary.LittleEndian.Uint32(payload[0:4])
		if int(idLen) != len(payload)-20 || idLen == 0 {
			rep.torn = true
			return rep, nil
		}
		id := string(payload[4 : 4+idLen])
		slot := int64(binary.LittleEndian.Uint64(payload[4+idLen : 12+idLen]))
		val := math.Float64frombits(binary.LittleEndian.Uint64(payload[12+idLen : 20+idLen]))
		switch g.replayPut(id, slot, val) {
		case Appended:
			rep.records++
		case Duplicate:
			rep.duplicates++
		}
	}
}
