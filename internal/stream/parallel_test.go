package stream_test

// Pins the parallel refresher drain: fanning the CPU-bound retrains across
// parallel.Pool workers republishes PredictionDocs bit-identical to a serial
// drain. Jobs are deduplicated per (region, server, week) and touch disjoint
// documents, and every retrain is deterministic, so the worker count is pure
// throughput, never an accuracy or ordering trade.

import (
	"context"
	"math"
	"testing"

	"seagull/internal/forecast"
	"seagull/internal/stream"
)

// drainDocs builds a fixture, queues every stored week-1 prediction for
// refresh and drains with the given worker count, returning the republished
// docs. Fixtures are deterministic (same fleet seed, same pipeline), so two
// calls start from bit-identical stored state.
func drainDocs(t *testing.T, model string, workers int) map[string]docKey {
	t.Helper()
	f := newEqFixture(t, model)
	ing := stream.NewIngestor(stream.Config{Epoch: f.start, Slots: 8064})
	f.feed(t, ing, "", zeroTime, zeroTime, 0)

	pool := newWarmPool(t, f)
	r := stream.NewRefresher(ing, f.db, f.reg, pool, stream.RefreshConfig{Workers: workers})
	queued := 0
	for id := range f.docs {
		ok, err := r.Enqueue(eqRegion, id, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			queued++
		}
	}
	if queued != len(f.docs) {
		t.Fatalf("queued %d, want %d", queued, len(f.docs))
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Refreshed != uint64(queued) || st.Failed != 0 || st.Pending != 0 {
		t.Fatalf("drain stats = %+v, want %d refreshed, none failed or pending", st, queued)
	}

	out := map[string]docKey{}
	for id, doc := range f.storedDocs(t) {
		out[id] = docKey{
			model:     doc.Model,
			llStart:   doc.LLStart,
			llAvgBits: math.Float64bits(doc.LLAvg),
			refreshes: doc.Refreshes,
			valueBits: valueBits(doc.Values),
		}
	}
	return out
}

type docKey struct {
	model     string
	llStart   int
	llAvgBits uint64
	refreshes int
	valueBits string
}

func valueBits(vals []float64) string {
	buf := make([]byte, 0, 8*len(vals))
	for _, v := range vals {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(bits>>s))
		}
	}
	return string(buf)
}

func TestParallelDrainEquivalentToSerial(t *testing.T) {
	for _, model := range []string{forecast.NamePersistentPrevDay, forecast.NameSSA} {
		t.Run(model, func(t *testing.T) {
			serial := drainDocs(t, model, 1)
			parallel4 := drainDocs(t, model, 4)
			if len(serial) != len(parallel4) {
				t.Fatalf("doc counts differ: %d vs %d", len(serial), len(parallel4))
			}
			for id, want := range serial {
				got, ok := parallel4[id]
				if !ok {
					t.Fatalf("parallel drain lost %s", id)
				}
				if got != want {
					t.Fatalf("%s: parallel drain differs from serial:\n got %+v\nwant %+v", id, got, want)
				}
			}
		})
	}
}

// TestDrainCancelAbandonsQueue: a cancelled context stops the drain without
// failing jobs it never claimed; they remain refreshable later.
func TestDrainCancelAbandonsQueue(t *testing.T) {
	f := newEqFixture(t, forecast.NamePersistentPrevDay)
	ing := stream.NewIngestor(stream.Config{Epoch: f.start, Slots: 8064})
	f.feed(t, ing, "", zeroTime, zeroTime, 0)
	r := stream.NewRefresher(ing, f.db, f.reg, newWarmPool(t, f), stream.RefreshConfig{Workers: 2})
	for id := range f.docs {
		if _, err := r.Enqueue(eqRegion, id, 1); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Drain(ctx); err != context.Canceled {
		t.Fatalf("drain err = %v, want context.Canceled", err)
	}
	st := r.Stats()
	if st.Refreshed != 0 {
		t.Fatalf("cancelled drain refreshed %d servers", st.Refreshed)
	}
	// The batch was taken off the queue; a fresh enqueue+drain still works.
	for id := range f.docs {
		if _, err := r.Enqueue(eqRegion, id, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Refreshed != uint64(len(f.docs)) {
		t.Fatalf("post-cancel drain refreshed %d, want %d", st.Refreshed, len(f.docs))
	}
}
