package stream

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/forecast"
	"seagull/internal/pipeline"
	"seagull/internal/registry"
)

// refreshFixture wires an ingestor + store + registry with one deployed
// model and one stored prediction whose backup day is `days` in from the
// epoch, with full live telemetry before it.
func refreshFixture(t *testing.T, days int) (*Ingestor, *cosmos.DB, *registry.Registry, *pipeline.PredictionDoc) {
	t.Helper()
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	g := NewIngestor(testConfig(8064))
	reg := registry.New(nil)
	reg.Deploy(registry.Target{Scenario: "backup", Region: "r"}, forecast.NamePersistentPrevDay, "test")

	day := testEpoch.Add(time.Duration(days) * 24 * time.Hour)
	doc := flatDoc("srv", "r", 1, day, 20)
	storePrediction(t, db, "r", doc)
	// Live history: a daily sine-ish pattern for `days` whole days.
	for i := 0; i < days*288; i++ {
		v := 30 + 20*math.Sin(2*math.Pi*float64(i%288)/288)
		g.Append("srv", testEpoch.Add(time.Duration(i)*5*time.Minute), v)
	}
	return g, db, reg, doc
}

func TestRefreshServer(t *testing.T) {
	g, db, reg, _ := refreshFixture(t, 7)
	r := NewRefresher(g, db, reg, nil, RefreshConfig{})
	if err := r.RefreshServer(context.Background(), "r", "srv", 1); err != nil {
		t.Fatal(err)
	}

	var got pipeline.PredictionDoc
	if err := db.Collection("predictions").Get("r", "srv/week-0001", &got); err != nil {
		t.Fatal(err)
	}
	if got.Refreshes != 1 {
		t.Fatalf("refreshes = %d, want 1", got.Refreshes)
	}
	// pf-prev-day forecasts the previous live day; the flat stored values
	// must have been replaced.
	want := 30 + 20*math.Sin(2*math.Pi*float64(6*288%288)/288)
	if got.Values[0] != want {
		t.Fatalf("refreshed value[0] = %v, want the live previous-day value %v", got.Values[0], want)
	}
	if got.Model != forecast.NamePersistentPrevDay {
		t.Fatalf("model = %q", got.Model)
	}
	if got.LLStart < 0 || got.LLAvg == 20 {
		t.Fatalf("LL window not recomputed: start=%d avg=%v", got.LLStart, got.LLAvg)
	}
	st := r.Stats()
	if st.Refreshed != 1 || st.Failed != 0 || st.Skipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRefreshServerErrors(t *testing.T) {
	g, db, reg, _ := refreshFixture(t, 7)
	r := NewRefresher(g, db, reg, nil, RefreshConfig{})
	ctx := context.Background()

	if err := r.RefreshServer(ctx, "r", "ghost", 1); !errors.Is(err, ErrNoPrediction) {
		t.Fatalf("missing doc: %v", err)
	}
	// A server with a stored doc but no live telemetry: skipped.
	storePrediction(t, db, "r", flatDoc("cold", "r", 1, testEpoch.Add(7*24*time.Hour), 20))
	if err := r.RefreshServer(ctx, "r", "cold", 1); !errors.Is(err, ErrNoTelemetry) {
		t.Fatalf("cold server: %v", err)
	}
	// No active deployment for the region.
	if err := r.RefreshServer(ctx, "nowhere", "srv", 1); err == nil {
		t.Fatal("no deployment should fail")
	}
	st := r.Stats()
	if st.Skipped != 1 || st.Failed != 2 {
		t.Fatalf("stats = %+v, want 1 skipped / 2 failed", st)
	}
}

func TestRefreshInsufficientHistory(t *testing.T) {
	// Only two whole days of live history before the predicted day: below
	// the three-day floor the batch pipeline enforces.
	g, db, reg, _ := refreshFixture(t, 7)
	storePrediction(t, db, "r", flatDoc("young", "r", 1, testEpoch.Add(7*24*time.Hour), 20))
	for i := 5 * 288; i < 7*288; i++ {
		g.Append("young", testEpoch.Add(time.Duration(i)*5*time.Minute), 25)
	}
	r := NewRefresher(g, db, reg, nil, RefreshConfig{})
	if err := r.RefreshServer(context.Background(), "r", "young", 1); !errors.Is(err, ErrInsufficientHistory) {
		t.Fatalf("young server: %v", err)
	}
}

func TestRefreshQueue(t *testing.T) {
	g, db, reg, _ := refreshFixture(t, 7)
	r := NewRefresher(g, db, reg, nil, RefreshConfig{QueueSize: 2})

	if q, err := r.Enqueue("r", "srv", 1); err != nil || !q {
		t.Fatalf("first enqueue = (%v, %v)", q, err)
	}
	// Duplicate coalesces, does not consume a second slot.
	if q, err := r.Enqueue("r", "srv", 1); err != nil || q {
		t.Fatalf("duplicate enqueue = (%v, %v), want coalesce", q, err)
	}
	if q, err := r.Enqueue("r", "other", 1); err != nil || !q {
		t.Fatalf("second enqueue = (%v, %v)", q, err)
	}
	if q, err := r.Enqueue("r", "third", 1); !errors.Is(err, ErrQueueFull) || q {
		t.Fatalf("overflow = (%v, %v), want ErrQueueFull", q, err)
	}
	st := r.Stats()
	if st.Queued != 2 || st.Coalesced != 1 || st.Dropped != 1 || st.Pending != 2 {
		t.Fatalf("stats = %+v", st)
	}

	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = r.Stats()
	if st.Pending != 0 || st.Refreshed != 1 {
		// "other" has no stored doc → failed; "srv" refreshes.
		t.Fatalf("after drain: %+v", st)
	}

	// After draining, the same job can queue again.
	if q, err := r.Enqueue("r", "srv", 1); err != nil || !q {
		t.Fatalf("re-enqueue = (%v, %v)", q, err)
	}
	if r.Stats().Pending != 1 {
		t.Fatal("re-enqueue after drain failed")
	}
}

func TestRefreshRun(t *testing.T) {
	g, db, reg, _ := refreshFixture(t, 7)
	r := NewRefresher(g, db, reg, nil, RefreshConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.Run(ctx) }()
	if _, err := r.Enqueue("r", "srv", 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Refreshed == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
	if r.Stats().Refreshed != 1 {
		t.Fatal("background worker never refreshed the queued server")
	}
}

func TestRefreshWeek(t *testing.T) {
	g, db, reg, _ := refreshFixture(t, 7)
	// A second fully-covered server and a telemetry-less one.
	day := testEpoch.Add(7 * 24 * time.Hour)
	storePrediction(t, db, "r", flatDoc("srv2", "r", 1, day, 20))
	for i := 0; i < 7*288; i++ {
		g.Append("srv2", testEpoch.Add(time.Duration(i)*5*time.Minute), 42)
	}
	storePrediction(t, db, "r", flatDoc("cold", "r", 1, day, 20))

	r := NewRefresher(g, db, reg, nil, RefreshConfig{})
	n, err := r.RefreshWeek(context.Background(), "r", 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("refreshed %d servers, want 2 (cold one skipped)", n)
	}
	var got pipeline.PredictionDoc
	if err := db.Collection("predictions").Get("r", "srv2/week-0001", &got); err != nil {
		t.Fatal(err)
	}
	if got.Values[0] != 42 || got.Refreshes != 1 {
		t.Fatalf("srv2 refreshed doc = v0 %v refreshes %d", got.Values[0], got.Refreshes)
	}
}

// TestFreshPoolUnknownModel covers the fallback pool's error path.
func TestFreshPoolUnknownModel(t *testing.T) {
	p := NewFreshPool(1)
	if _, err := p.Checkout(registry.Target{}, 1, "no-such-model"); err == nil {
		t.Fatal("unknown model should fail checkout")
	}
	if _, err := p.Checkout(registry.Target{}, 1, forecast.NameSSA); err != nil {
		t.Fatal(err)
	}
}
