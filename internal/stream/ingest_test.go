package stream

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"seagull/internal/simclock"
	"seagull/internal/timeseries"
)

var testEpoch = time.Date(2019, 12, 1, 0, 0, 0, 0, time.UTC)

func testConfig(slots int) Config {
	return Config{Interval: 5 * time.Minute, Epoch: testEpoch, Slots: slots, Shards: 4}
}

type point struct {
	t time.Time
	v float64
}

// seriesOf reads a server's live window or fails the test.
func seriesOf(t *testing.T, g *Ingestor, id string) timeseries.Series {
	t.Helper()
	s, ok := g.View(id)
	if !ok {
		t.Fatalf("no live telemetry for %s", id)
	}
	return s
}

func sameSeries(a, b timeseries.Series) bool {
	if !a.Start.Equal(b.Start) || a.Interval != b.Interval || a.Len() != b.Len() {
		return false
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			return false
		}
	}
	return true
}

// TestAppendOrderInvariance is the rollup property the subsystem is built
// on: a shuffled append stream with duplicated deliveries rolls up to a live
// window bit-identical to the sorted, exactly-once stream.
func TestAppendOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	pts := make([]point, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.15 {
			continue // leave holes: unfilled slots must read as missing
		}
		pts = append(pts, point{
			t: testEpoch.Add(time.Duration(i) * 5 * time.Minute),
			v: 10 + 50*rng.Float64(),
		})
	}

	sorted := NewIngestor(testConfig(4096))
	for _, p := range pts {
		if st := sorted.Append("srv", p.t, p.v); st != Appended {
			t.Fatalf("sorted append at %s: %v", p.t, st)
		}
	}

	// Shuffle and duplicate ~30% of the deliveries.
	shuffled := append([]point(nil), pts...)
	for _, p := range pts {
		if rng.Float64() < 0.3 {
			shuffled = append(shuffled, p)
		}
	}
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	chaos := NewIngestor(testConfig(4096))
	for _, p := range shuffled {
		if st := chaos.Append("srv", p.t, p.v); st != Appended && st != Duplicate {
			t.Fatalf("shuffled append at %s: %v", p.t, st)
		}
	}

	a, b := seriesOf(t, sorted, "srv"), seriesOf(t, chaos, "srv")
	if !sameSeries(a, b) {
		t.Fatalf("shuffled+duplicated stream diverged:\nsorted   %v len %d\nshuffled %v len %d",
			a.Start, a.Len(), b.Start, b.Len())
	}
	st := chaos.Stats()
	if int(st.Appended) != len(pts) {
		t.Errorf("appended = %d, want %d", st.Appended, len(pts))
	}
	if int(st.Duplicates) != len(shuffled)-len(pts) {
		t.Errorf("duplicates = %d, want %d", st.Duplicates, len(shuffled)-len(pts))
	}
}

// TestAppendWindowEviction: old slots fall off as the head advances, and
// points behind the retained window are dropped as too old.
func TestAppendWindowEviction(t *testing.T) {
	const slots = 100
	g := NewIngestor(testConfig(slots))
	at := func(i int) time.Time { return testEpoch.Add(time.Duration(i) * 5 * time.Minute) }

	// Fill well past capacity, forcing several shifts.
	total := 5*slots + 17
	for i := 0; i < total; i++ {
		if st := g.Append("srv", at(i), float64(i)); st != Appended {
			t.Fatalf("append %d: %v", i, st)
		}
	}
	s := seriesOf(t, g, "srv")
	if s.Len() != slots {
		t.Fatalf("live window = %d slots, want %d", s.Len(), slots)
	}
	wantStart := at(total - slots)
	if !s.Start.Equal(wantStart) {
		t.Fatalf("window start = %v, want %v", s.Start, wantStart)
	}
	for i, v := range s.Values {
		if v != float64(total-slots+i) {
			t.Fatalf("slot %d = %v, want %v", i, v, float64(total-slots+i))
		}
	}

	// Behind the window: dropped.
	if st := g.Append("srv", at(total-slots-1), 1); st != TooOld {
		t.Errorf("stale point = %v, want TooOld", st)
	}
	// Before the epoch: dropped.
	if st := g.Append("srv", testEpoch.Add(-time.Minute), 1); st != TooOld {
		t.Errorf("pre-epoch point = %v, want TooOld", st)
	}
	// NaN and Inf: rejected.
	if st := g.Append("srv", at(total), math.NaN()); st != BadValue {
		t.Errorf("NaN = %v, want BadValue", st)
	}
	if st := g.Append("srv", at(total), math.Inf(1)); st != BadValue {
		t.Errorf("+Inf = %v, want BadValue", st)
	}
}

// TestAppendTooNew: a far-future point (a client posting milliseconds where
// seconds are expected, say) must be rejected before it slides the retained
// window into the future and turns every real point into a too-old drop.
func TestAppendTooNew(t *testing.T) {
	now := testEpoch.Add(7 * 24 * time.Hour)
	cfg := testConfig(500)
	cfg.Clock = simclock.NewSimulated(now)
	g := NewIngestor(cfg)

	for i := 0; i < 100; i++ {
		g.Append("srv", now.Add(time.Duration(i-100)*5*time.Minute), 20)
	}
	// A point 1000× in the future (the ms-for-s mistake).
	if st := g.Append("srv", testEpoch.Add(7000*24*time.Hour), 20); st != TooNew {
		t.Fatalf("far-future point = %v, want TooNew", st)
	}
	// The retained window is intact and present-time points still land.
	if s := seriesOf(t, g, "srv"); s.Len() != 100 {
		t.Fatalf("window damaged by rejected point: len=%d", s.Len())
	}
	if st := g.Append("srv", now, 21); st != Appended {
		t.Fatalf("present point after rejection = %v", st)
	}
	// Within the clock-skew allowance is fine.
	if st := g.Append("srv", now.Add(30*time.Minute), 22); st != Appended {
		t.Fatalf("near-future point = %v", st)
	}
	if st := g.Stats(); st.TooNew != 1 {
		t.Fatalf("stats = %+v, want 1 too_new", st)
	}

	// MaxFuture < 0 disables the bound.
	cfg.MaxFuture = -1
	open := NewIngestor(cfg)
	if st := open.Append("srv", testEpoch.Add(7000*24*time.Hour), 20); st != Appended {
		t.Fatalf("unbounded ingestor rejected the future point: %v", st)
	}
}

// TestAppendForwardJump: a gap larger than the whole buffer abandons the old
// window and restarts cleanly at the new head.
func TestAppendForwardJump(t *testing.T) {
	const slots = 50
	g := NewIngestor(testConfig(slots))
	at := func(i int) time.Time { return testEpoch.Add(time.Duration(i) * 5 * time.Minute) }
	for i := 0; i < 10; i++ {
		g.Append("srv", at(i), float64(i))
	}
	jump := 10 * slots
	if st := g.Append("srv", at(jump), 99); st != Appended {
		t.Fatalf("jump append: %v", st)
	}
	s := seriesOf(t, g, "srv")
	if s.Len() != 1 || s.Values[0] != 99 || !s.Start.Equal(at(jump)) {
		t.Fatalf("after jump: len=%d start=%v values=%v", s.Len(), s.Start, s.Values)
	}
	// Out-of-order backfill within the new window still lands.
	if st := g.Append("srv", at(jump-slots+1), 7); st != Appended {
		t.Fatalf("backfill append: %v", st)
	}
	s = seriesOf(t, g, "srv")
	if s.Len() != slots || s.Values[0] != 7 {
		t.Fatalf("after backfill: len=%d first=%v", s.Len(), s.Values[0])
	}
}

// TestSnapshotMatchesView: the stable copy equals the zero-copy view and
// reuses the caller's buffer.
func TestSnapshotMatchesView(t *testing.T) {
	g := NewIngestor(testConfig(500))
	for i := 0; i < 300; i++ {
		if i%7 == 3 {
			continue
		}
		g.Append("srv", testEpoch.Add(time.Duration(i)*5*time.Minute), float64(i))
	}
	view := seriesOf(t, g, "srv")
	snap, ok := g.SnapshotInto("srv", nil)
	if !ok {
		t.Fatal("snapshot failed")
	}
	if !sameSeries(view, snap) {
		t.Fatal("snapshot differs from view")
	}
	// Reusing the returned buffer must not reallocate.
	buf := snap.Values
	snap2, _ := g.SnapshotInto("srv", buf)
	if &snap2.Values[0] != &buf[0] {
		t.Error("snapshot did not reuse the caller's buffer")
	}

	if _, ok := g.SnapshotInto("nope", nil); ok {
		t.Error("snapshot of unknown server succeeded")
	}
	if g.WithView("nope", func(timeseries.Series) {}) {
		t.Error("WithView of unknown server succeeded")
	}
}

// TestAppendSeries: batch appends skip missing observations and reject
// mismatched intervals at the caller (serving) layer; here the summary adds
// up.
func TestAppendSeries(t *testing.T) {
	g := NewIngestor(testConfig(500))
	vals := []float64{1, 2, timeseries.Missing, 4, 5}
	sum, err := g.AppendSeries("srv", testEpoch, vals)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Appended != 4 || sum.Skipped != 1 {
		t.Fatalf("summary = %+v, want 4 appended / 1 skipped", sum)
	}
	// Replay: all duplicates.
	sum, _ = g.AppendSeries("srv", testEpoch, vals)
	if sum.Duplicates != 4 || sum.Appended != 0 {
		t.Fatalf("replay summary = %+v, want 4 duplicates", sum)
	}
	s := seriesOf(t, g, "srv")
	if s.Len() != 5 || !timeseries.IsMissing(s.Values[2]) || s.Values[3] != 4 {
		t.Fatalf("series = %v", s.Values)
	}
}

// TestConcurrentAppend hammers overlapping servers from several goroutines;
// run under -race in CI. Totals must add up exactly: every delivery is
// either appended or a duplicate.
func TestConcurrentAppend(t *testing.T) {
	g := NewIngestor(testConfig(2048))
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	const perWorker = 2000
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				id := ids[rng.Intn(len(ids))]
				slot := rng.Intn(1500)
				g.Append(id, testEpoch.Add(time.Duration(slot)*5*time.Minute), float64(slot))
				if i%64 == 0 {
					g.WithView(id, func(live timeseries.Series) { _ = live.Len() })
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	st := g.Stats()
	if st.Appended+st.Duplicates != workers*perWorker {
		t.Fatalf("appended %d + duplicates %d != %d deliveries",
			st.Appended, st.Duplicates, workers*perWorker)
	}
	if st.Servers != len(ids) {
		t.Fatalf("servers = %d, want %d", st.Servers, len(ids))
	}
	if got := g.Servers(); len(got) != len(ids) {
		t.Fatalf("Servers() = %v", got)
	}
	// Every filled slot holds the value its slot index encodes, regardless
	// of which worker wrote it.
	for _, id := range ids {
		s := seriesOf(t, g, id)
		off := int(s.Start.Sub(testEpoch) / (5 * time.Minute))
		for i, v := range s.Values {
			if timeseries.IsMissing(v) {
				continue
			}
			if v != float64(off+i) {
				t.Fatalf("server %s slot %d = %v, want %v", id, off+i, v, float64(off+i))
			}
		}
	}
}
