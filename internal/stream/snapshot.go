package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"time"

	"seagull/internal/lake"
	"seagull/internal/timeseries"
)

// Ring snapshot/restore: the durability seam of the stream layer. A process
// restart used to lose every server's live window until telemetry re-fed it;
// WriteSnapshot serializes the retained rings to any writer (seagull-serve
// stores them as a lake object on drain) and RestoreSnapshot rebuilds them on
// startup, so the forecastable state survives restarts.
//
// Only observable ring state is captured: for each server, the filled slots
// of the live window [max(min, head-Slots), head) plus the head and min
// markers. Buffer placement (the amortized-shift position) is an
// implementation detail and is re-derived on restore, which is why the
// equivalence tests can pin "ingest → snapshot → restore → forecast" as
// bit-identical to the uninterrupted run: views, subsequent appends and
// duplicate/too-old verdicts behave identically either way. Process-lifetime
// ingestion counters (Stats) are deliberately not snapshotted — they describe
// a process, not the data.
//
// The format is a compact little-endian binary stream with a magic header,
// the ring geometry (interval, epoch, slots — restore refuses a geometry
// mismatch rather than aliasing slots), length-prefixed per-server records
// and a trailing CRC-32. Truncation or corruption fails the restore before
// any ring is installed, so a damaged snapshot degrades to a clean cold
// start, never a panic or a half-restored ingestor.

// snapshotMagic identifies snapshot format version 1.
const snapshotMagic = "SGRINGS1"

// SnapshotObject is the conventional lake object name seagull-serve (and the
// System facade) store ring snapshots under.
const SnapshotObject = "stream/rings.snap"

// Snapshot errors.
var (
	// ErrSnapshotFormat covers a bad magic, geometry mismatch, truncation,
	// CRC failure or any other malformed snapshot content.
	ErrSnapshotFormat = errors.New("stream: bad snapshot")
	// ErrNoSnapshot is returned by LoadSnapshot when the lake holds no
	// snapshot object — the normal first-boot case.
	ErrNoSnapshot = errors.New("stream: no snapshot stored")
)

// snapshotEnd marks the end of the per-server records.
const snapshotEnd = ^uint32(0)

// ShardSnapshotPrefix is the lake prefix incremental per-shard snapshots live
// under; shardSnapshotObject names one shard's file. Each file is a complete,
// self-validating snapshot stream (same format as SnapshotObject) holding
// just that shard's servers, so RestoreSnapshot reads both kinds and a
// damaged shard file degrades only that shard.
const ShardSnapshotPrefix = "stream/rings/"

func shardSnapshotObject(shard int) string {
	return fmt.Sprintf("%sshard-%04d.snap", ShardSnapshotPrefix, shard)
}

// appendShardSnapshot serializes one shard's rings into buf as a complete
// snapshot stream — magic, geometry header, per-server records, end sentinel,
// trailing CRC. The caller holds the shard's lock.
func appendShardSnapshot(buf []byte, cfg *Config, sh *shard) []byte {
	base := len(buf)
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.Interval))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.Epoch.UnixNano()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cfg.Slots))
	for id, r := range sh.rings {
		buf = appendRingRecord(buf, id, r, cfg.Slots)
	}
	buf = binary.LittleEndian.AppendUint32(buf, snapshotEnd)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[base:]))
}

// crcWriter updates a running CRC-32 with everything written through it.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc.Write(p[:n])
	return n, err
}

// WriteSnapshot serializes every server's live window to w. Shards are
// serialized one at a time under their read lock, so concurrent appends stay
// unblocked apart from the shard currently being walked; servers whose first
// point arrives mid-snapshot may or may not be included (call on drain, after
// ingestion has stopped, for an exact capture).
func (g *Ingestor) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw, crc: crc32.NewIEEE()}
	if _, err := io.WriteString(cw, snapshotMagic); err != nil {
		return err
	}
	hdr := [3]int64{int64(g.cfg.Interval), g.cfg.Epoch.UnixNano(), int64(g.cfg.Slots)}
	if err := binary.Write(cw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	var scratch []byte
	for i := range g.sh {
		sh := &g.sh[i]
		sh.mu.RLock()
		for id, r := range sh.rings {
			scratch = appendRingRecord(scratch[:0], id, r, g.cfg.Slots)
			if _, err := cw.Write(scratch); err != nil {
				sh.mu.RUnlock()
				return err
			}
		}
		sh.mu.RUnlock()
	}
	if err := binary.Write(cw, binary.LittleEndian, snapshotEnd); err != nil {
		return err
	}
	// The CRC covers everything before it, footer sentinel included.
	if err := binary.Write(bw, binary.LittleEndian, cw.crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// appendRingRecord serializes one server's live window:
//
//	u32 idLen | id | i64 head | i64 min | u32 count | count × (i64 slot, u64 valueBits)
//
// Only filled slots inside [max(min, head-slots), head) are written — slots
// older than the retained window are unobservable and would be evicted by
// the next shift anyway.
func appendRingRecord(buf []byte, id string, r *serverRing, slots int) []byte {
	lo := r.min
	if hs := r.head - int64(slots); lo < hs {
		lo = hs
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(id)))
	buf = append(buf, id...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.head))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lo))
	countAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	n := uint32(0)
	for slot := lo; slot < r.head; slot++ {
		v := r.vals[slot-r.start]
		if math.IsNaN(v) {
			continue
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(slot))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		n++
	}
	binary.LittleEndian.PutUint32(buf[countAt:], n)
	return buf
}

// crcReader updates a running CRC-32 with everything read through it.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc.Write(p[:n])
	return n, err
}

// RestoreSnapshot rebuilds rings from a snapshot written by WriteSnapshot.
// The snapshot's ring geometry (interval, epoch, slots) must match the
// ingestor's. Decoding is two-phase: the whole snapshot is parsed and
// CRC-verified first, and only then are rings installed — so a truncated or
// corrupted snapshot returns ErrSnapshotFormat and leaves the ingestor
// exactly as it was (a clean cold start, in the restart flow). Servers that
// already have a live ring keep it; the snapshot's version of that server is
// ignored (live telemetry outranks stale state).
func (g *Ingestor) RestoreSnapshot(r io.Reader) error {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20), crc: crc32.NewIEEE()}

	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return fmt.Errorf("%w: short magic: %v", ErrSnapshotFormat, err)
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("%w: magic %q", ErrSnapshotFormat, magic)
	}
	var hdr [3]int64
	if err := binary.Read(cr, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrSnapshotFormat, err)
	}
	if time.Duration(hdr[0]) != g.cfg.Interval || hdr[1] != g.cfg.Epoch.UnixNano() || hdr[2] != int64(g.cfg.Slots) {
		return fmt.Errorf("%w: geometry interval=%v epoch=%d slots=%d vs ingestor interval=%v epoch=%d slots=%d",
			ErrSnapshotFormat, time.Duration(hdr[0]), hdr[1], hdr[2],
			g.cfg.Interval, g.cfg.Epoch.UnixNano(), g.cfg.Slots)
	}

	type restored struct {
		id   string
		ring *serverRing
	}
	var rings []restored
	slots := int64(g.cfg.Slots)
	for {
		var idLen uint32
		if err := binary.Read(cr, binary.LittleEndian, &idLen); err != nil {
			return fmt.Errorf("%w: truncated records: %v", ErrSnapshotFormat, err)
		}
		if idLen == snapshotEnd {
			break
		}
		if idLen == 0 || idLen > 4096 {
			return fmt.Errorf("%w: server id length %d", ErrSnapshotFormat, idLen)
		}
		idBytes := make([]byte, idLen)
		if _, err := io.ReadFull(cr, idBytes); err != nil {
			return fmt.Errorf("%w: truncated server id: %v", ErrSnapshotFormat, err)
		}
		var headMin [2]uint64
		if err := binary.Read(cr, binary.LittleEndian, headMin[:]); err != nil {
			return fmt.Errorf("%w: truncated ring markers: %v", ErrSnapshotFormat, err)
		}
		head, min := int64(headMin[0]), int64(headMin[1])
		var count uint32
		if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
			return fmt.Errorf("%w: truncated slot count: %v", ErrSnapshotFormat, err)
		}
		if min > head || head-min > slots || int64(count) > slots {
			return fmt.Errorf("%w: ring markers head=%d min=%d count=%d for %q",
				ErrSnapshotFormat, head, min, count, idBytes)
		}
		// Geometry mirrors newRing for an append at head: start = head-slots
		// leaves the whole window indexable plus a full window of forward
		// room before the first shift.
		ring := &serverRing{vals: make([]float64, 2*g.cfg.Slots), start: head - slots, head: head, min: min}
		for i := range ring.vals {
			ring.vals[i] = timeseries.Missing
		}
		pair := make([]uint64, 2*int(count))
		if err := binary.Read(cr, binary.LittleEndian, pair); err != nil {
			return fmt.Errorf("%w: truncated slots for %q: %v", ErrSnapshotFormat, idBytes, err)
		}
		for i := 0; i < int(count); i++ {
			slot, bits := int64(pair[2*i]), pair[2*i+1]
			if slot < min || slot >= head {
				return fmt.Errorf("%w: slot %d outside [%d, %d) for %q", ErrSnapshotFormat, slot, min, head, idBytes)
			}
			v := math.Float64frombits(bits)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: non-finite value for %q slot %d", ErrSnapshotFormat, idBytes, slot)
			}
			ring.vals[slot-ring.start] = v
		}
		rings = append(rings, restored{id: string(idBytes), ring: ring})
	}
	want := cr.crc.Sum32() // records + sentinel were hashed; footer follows un-hashed
	var got uint32
	if err := binary.Read(cr.r, binary.LittleEndian, &got); err != nil {
		return fmt.Errorf("%w: missing checksum: %v", ErrSnapshotFormat, err)
	}
	if got != want {
		return fmt.Errorf("%w: checksum %08x, want %08x", ErrSnapshotFormat, got, want)
	}

	// Fully decoded and verified: install. First-ring-wins per server — a
	// server already live in this process is newer than the snapshot.
	for _, rr := range rings {
		sh := g.shardOf(rr.id)
		sh.mu.Lock()
		if _, exists := sh.rings[rr.id]; !exists {
			sh.rings[rr.id] = rr.ring
		}
		sh.mu.Unlock()
	}
	return nil
}

// SaveSnapshot writes the ingestor's snapshot to the lake under
// SnapshotObject, atomically (the previous snapshot is replaced only once
// the new one is fully written).
func (g *Ingestor) SaveSnapshot(store *lake.Store) error {
	w, err := store.ObjectWriter(SnapshotObject)
	if err != nil {
		return err
	}
	if err := g.WriteSnapshot(w); err != nil {
		if ab, ok := w.(interface{ Abort() }); ok {
			ab.Abort()
		} else {
			w.Close()
		}
		return err
	}
	return w.Close()
}

// LoadSnapshot restores the ingestor from the lake's SnapshotObject.
// ErrNoSnapshot when none is stored (first boot); ErrSnapshotFormat when the
// stored snapshot is damaged or from a different ring geometry — in both
// cases the ingestor is untouched and serving cold-starts cleanly.
func (g *Ingestor) LoadSnapshot(store *lake.Store) error {
	r, err := store.ObjectReader(SnapshotObject)
	if err != nil {
		if errors.Is(err, lake.ErrNotFound) {
			return ErrNoSnapshot
		}
		return err
	}
	defer r.Close()
	return g.RestoreSnapshot(r)
}
