package stream

import (
	"context"
	"fmt"
	"testing"
	"time"

	"seagull/internal/cosmos"
	"seagull/internal/pipeline"
)

// storePrediction writes a PredictionDoc the way the pipeline does.
func storePrediction(t *testing.T, db *cosmos.DB, region string, doc *pipeline.PredictionDoc) {
	t.Helper()
	id := fmt.Sprintf("%s/week-%04d", doc.ServerID, doc.Week)
	if err := db.Collection("predictions").Upsert(region, id, doc); err != nil {
		t.Fatal(err)
	}
}

// flatDoc builds a stored prediction of constant load `level` for a backup
// day starting at `day`.
func flatDoc(serverID, region string, week int, day time.Time, level float64) *pipeline.PredictionDoc {
	vals := make([]float64, 288)
	for i := range vals {
		vals[i] = level
	}
	return &pipeline.PredictionDoc{
		ServerID: serverID, Region: region, Week: week, Model: "pf-prev-day",
		BackupDay: day, WindowPoints: 12, IntervalMin: 5, Values: vals,
	}
}

func TestDriftSweep(t *testing.T) {
	db, err := cosmos.Open("")
	if err != nil {
		t.Fatal(err)
	}
	g := NewIngestor(testConfig(4096))
	const region = "westus"
	day := testEpoch.Add(7 * 24 * time.Hour)

	// ok-srv: live actuals equal the prediction → ratio 1, no drift.
	// drift-srv: live actuals 40 points above the prediction → ratio 0.
	// thin-srv: only 5 live points inside the day → skipped (below MinPoints).
	// cold-srv: no live telemetry at all → skipped.
	storePrediction(t, db, region, flatDoc("ok-srv", region, 1, day, 20))
	storePrediction(t, db, region, flatDoc("drift-srv", region, 1, day, 20))
	storePrediction(t, db, region, flatDoc("thin-srv", region, 1, day, 20))
	storePrediction(t, db, region, flatDoc("cold-srv", region, 1, day, 20))
	for i := 0; i < 288; i++ {
		at := day.Add(time.Duration(i) * 5 * time.Minute)
		g.Append("ok-srv", at, 20)
		g.Append("drift-srv", at, 60)
		if i < 5 {
			g.Append("thin-srv", at, 20)
		}
	}

	det := NewDriftDetector(g, db, DriftConfig{})
	rep, err := det.Sweep(context.Background(), region, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 4 || rep.Drifted != 1 || rep.Skipped != 2 {
		t.Fatalf("report = %+v, want checked 4 / drifted 1 / skipped 2", rep)
	}
	if len(rep.DriftedServers) != 1 || rep.DriftedServers[0].ServerID != "drift-srv" {
		t.Fatalf("drifted = %+v", rep.DriftedServers)
	}
	if sd := rep.DriftedServers[0]; sd.Ratio != 0 || sd.Points != 288 {
		t.Fatalf("drift verdict = %+v, want ratio 0 over 288 points", sd)
	}

	// Wrong week: nothing checked.
	rep, err = det.Sweep(context.Background(), region, 9)
	if err != nil || rep.Checked != 0 {
		t.Fatalf("week 9 sweep = %+v, %v", rep, err)
	}

	st := det.Stats()
	if st.Sweeps != 2 || st.Checked != 4 || st.Drifted != 1 || st.Skipped != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDriftSweepPartialDay: actuals covering only part of the predicted day
// still judge once MinPoints arrive, and the verdict worsens as bad actuals
// accumulate — the "react to live load" loop.
func TestDriftSweepPartialDay(t *testing.T) {
	db, _ := cosmos.Open("")
	g := NewIngestor(testConfig(4096))
	day := testEpoch.Add(24 * time.Hour)
	storePrediction(t, db, "r", flatDoc("srv", "r", 0, day, 20))
	det := NewDriftDetector(g, db, DriftConfig{MinPoints: 24})

	// First two hours match the prediction.
	for i := 0; i < 24; i++ {
		g.Append("srv", day.Add(time.Duration(i)*5*time.Minute), 20)
	}
	rep, err := det.Sweep(context.Background(), "r", 0)
	if err != nil || rep.Drifted != 0 || rep.Skipped != 0 {
		t.Fatalf("matching partial day: %+v, %v", rep, err)
	}

	// The next six hours run 40 points hot: 24 good vs 72 bad → ratio 0.25.
	for i := 24; i < 96; i++ {
		g.Append("srv", day.Add(time.Duration(i)*5*time.Minute), 60)
	}
	rep, err = det.Sweep(context.Background(), "r", 0)
	if err != nil || rep.Drifted != 1 {
		t.Fatalf("hot partial day: %+v, %v", rep, err)
	}
	if got := rep.DriftedServers[0].Ratio; got != 0.25 {
		t.Fatalf("ratio = %v, want 0.25", got)
	}
}

// TestDriftSweepMisaligned: a stored day off the ingestor's slot grid is
// skipped rather than scored against truncated (wrong-slot) pairings — the
// same verdict the refresher gives the same input.
func TestDriftSweepMisaligned(t *testing.T) {
	db, _ := cosmos.Open("")
	g := NewIngestor(testConfig(4096))
	day := testEpoch.Add(24*time.Hour + time.Minute) // off the 5-minute grid
	storePrediction(t, db, "r", flatDoc("srv", "r", 0, day, 20))
	for i := 0; i < 288; i++ {
		g.Append("srv", testEpoch.Add(24*time.Hour).Add(time.Duration(i)*5*time.Minute), 60)
	}
	rep, err := NewDriftDetector(g, db, DriftConfig{}).Sweep(context.Background(), "r", 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 1 || rep.Skipped != 1 || rep.Drifted != 0 {
		t.Fatalf("misaligned day: %+v, want skipped", rep)
	}
}

func TestDriftSweepCancel(t *testing.T) {
	db, _ := cosmos.Open("")
	g := NewIngestor(testConfig(512))
	storePrediction(t, db, "r", flatDoc("srv", "r", 0, testEpoch, 20))
	det := NewDriftDetector(g, db, DriftConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := det.Sweep(ctx, "r", 0); err == nil {
		t.Fatal("cancelled sweep should fail")
	}
}
