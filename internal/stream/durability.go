package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"seagull/internal/lake"
	"seagull/internal/parallel"
	"seagull/internal/simclock"
)

// Durability bounds what a hard kill can cost: a WAL group commit every δ
// plus periodic incremental snapshots guarantee that restart recovers the
// live window to within δ of the moment of death (restore ≥ T-δ). The
// division of labor:
//
//   - Append hot path: buffers accepted points per shard (0 allocs/op).
//   - Maintenance goroutine (one per Durability): flushes buffers to
//     per-shard WALs every CommitEvery (δ), and every SnapshotEvery rewrites
//     the shard snapshots whose generation counter moved — then truncates
//     those shards' WALs, which the fresh snapshot now covers.
//   - Recover (boot): restores every per-shard snapshot, then replays every
//     WAL; first-write-wins ring puts make the overlap idempotent. A file
//     that fails to restore is skipped — recovery salvages everything else
//     and reports the failure so serving can declare itself degraded rather
//     than silently cold-start.

// ObjectStore is the slice of the lake's object API the durability layer
// consumes. *lake.Store implements it; so does *lake.FaultStore, which is how
// the crash-recovery matrix injects torn writes, short reads, corruption and
// ENOSPC under it.
type ObjectStore interface {
	ObjectWriter(name string) (io.WriteCloser, error)
	ObjectReader(name string) (io.ReadCloser, error)
	ObjectAppender(name string) (lake.AppendObject, error)
	ListObjects(prefix string) ([]string, error)
	RemoveObject(name string) error
}

// DurabilityConfig parameterizes a Durability. The zero value selects the
// production defaults.
type DurabilityConfig struct {
	// Namespace scopes every durable object name under
	// "replicas/<Namespace>/", so N sharded serving replicas can persist
	// their WALs and ring snapshots into one shared lake without colliding
	// — each replica recovers exactly its own shard's state. Empty (the
	// default) keeps the original single-process object names, so existing
	// lakes restore unchanged.
	Namespace string
	// DisableWAL turns off write-ahead logging, leaving periodic snapshots as
	// the only durability (δ degrades to SnapshotEvery).
	DisableWAL bool
	// CommitEvery is the WAL group-commit interval — the δ in restore ≥ T-δ.
	// Default 100ms.
	CommitEvery time.Duration
	// SnapshotEvery is the incremental snapshot interval. Unchanged shards
	// are skipped, so a short interval only costs where ingest is hot.
	// Default 30s; negative disables the ticker (snapshots then happen only
	// on Close or explicit SnapshotNow).
	SnapshotEvery time.Duration
	// BufferEntries caps each shard's pending buffer between commits; points
	// beyond it are dropped and counted, never blocked on. Default 4096.
	BufferEntries int
	// Clock paces the group-commit and snapshot tickers; nil means the wall
	// clock.
	Clock simclock.Clock
}

func (c DurabilityConfig) withDefaults() DurabilityConfig {
	if c.CommitEvery <= 0 {
		c.CommitEvery = 100 * time.Millisecond
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 30 * time.Second
	}
	if c.BufferEntries <= 0 {
		c.BufferEntries = 4096
	}
	c.Clock = simclock.Or(c.Clock)
	return c
}

// shardWAL is one shard's open log handle. size tracks the last known-good
// durable length so a failed append can be rolled back to a clean frame
// boundary (torn frames then only ever come from real crashes, at the tail).
type shardWAL struct {
	obj  lake.AppendObject
	size int64
}

// Durability owns the WAL + incremental-snapshot lifecycle for one Ingestor
// over one store. Construct with NewDurability, then Recover (boot), Open or
// Start, and Close on drain.
type Durability struct {
	ing   *Ingestor
	store ObjectStore
	cfg   DurabilityConfig

	// opMu serializes maintenance operations (commit, snapshot, open,
	// close): they share the scratch buffers below and each shard's WAL
	// handle. The append hot path never takes it.
	opMu    sync.Mutex
	opened  bool
	closed  bool
	wals    []*shardWAL
	lastGen []uint64
	spare   []walEntry // commit swap buffer, recycled through takePending
	scratch []byte     // frame/snapshot serialization buffer

	kick   chan struct{}
	stop   context.CancelFunc
	loopWG sync.WaitGroup

	rec atomic.Pointer[RecoveryStats]

	commits        atomic.Uint64
	commitRecords  atomic.Uint64
	commitBytes    atomic.Uint64
	commitErrors   atomic.Uint64
	snapshots      atomic.Uint64
	snapshotErrors atomic.Uint64
	truncations    atomic.Uint64
}

// NewDurability wires a manager for ing over store. Nothing is opened or
// scheduled yet: call Recover to restore state, then Start (or Open) to
// begin persisting.
func NewDurability(ing *Ingestor, store ObjectStore, cfg DurabilityConfig) *Durability {
	return &Durability{
		ing:     ing,
		store:   store,
		cfg:     cfg.withDefaults(),
		lastGen: make([]uint64, len(ing.sh)),
		kick:    make(chan struct{}, 1),
	}
}

// NamespacePrefix returns the lake object prefix a durability namespace
// scopes its state under ("" for the default, single-process namespace).
func NamespacePrefix(namespace string) string {
	if namespace == "" {
		return ""
	}
	return "replicas/" + namespace + "/"
}

// objName scopes a durable object name under the configured namespace.
func (d *Durability) objName(name string) string {
	return NamespacePrefix(d.cfg.Namespace) + name
}

// RecoveryStats reports what Recover salvaged.
type RecoveryStats struct {
	// SnapshotShards counts per-shard snapshot objects restored.
	SnapshotShards int `json:"snapshot_shards"`
	// LegacySnapshot is set when the monolithic pre-incremental snapshot
	// object was restored (no per-shard snapshots existed yet).
	LegacySnapshot bool `json:"legacy_snapshot,omitempty"`
	// Servers counts servers live after restore + replay.
	Servers int `json:"servers"`
	// WALFiles counts shard logs replayed; WALRecords the points they
	// re-applied; WALDuplicates the points a snapshot already covered.
	WALFiles      int `json:"wal_files"`
	WALRecords    int `json:"wal_records"`
	WALDuplicates int `json:"wal_duplicates"`
	// TornTails counts logs that ended in a torn or CRC-failing frame — the
	// expected residue of a hard kill, trimmed on the next commit cycle.
	TornTails int `json:"torn_tails"`
	// Failures lists objects that could not be restored (corrupt snapshot,
	// unreadable WAL, wrong geometry). Non-empty means recovery was partial:
	// serving should report degraded rather than pretend full health.
	Failures []string `json:"failures,omitempty"`
}

// Degraded reports whether any durable state failed to restore.
func (r RecoveryStats) Degraded() bool { return len(r.Failures) > 0 }

// String renders a one-line boot summary.
func (r RecoveryStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d servers from %d shard snapshots", r.Servers, r.SnapshotShards)
	if r.LegacySnapshot {
		b.WriteString(" (legacy)")
	}
	fmt.Fprintf(&b, ", %d WAL records replayed from %d logs", r.WALRecords, r.WALFiles)
	if r.TornTails > 0 {
		fmt.Fprintf(&b, ", %d torn tails trimmed", r.TornTails)
	}
	if len(r.Failures) > 0 {
		fmt.Fprintf(&b, ", DEGRADED (%s)", strings.Join(r.Failures, "; "))
	}
	return b.String()
}

// Recover restores the ingestor from the store: every per-shard snapshot
// first (falling back to the legacy monolithic snapshot when none exist),
// then every WAL replayed over it. Per-shard recovery is embarrassingly
// parallel, so files are processed concurrently. A file that fails to
// restore is recorded in Failures and skipped — everything else is still
// salvaged, no partial object is ever installed, and the error surface is
// the returned stats, not an abort. Call once, on boot, before Open/Start.
func (d *Durability) Recover() (RecoveryStats, error) {
	var rec RecoveryStats
	var mu sync.Mutex // guards rec across the parallel file workers
	pool := parallel.NewPool(0)

	snaps, err := d.store.ListObjects(d.objName(ShardSnapshotPrefix))
	if err != nil {
		return rec, fmt.Errorf("stream: list snapshots: %w", err)
	}
	pool.ForEach(len(snaps), func(i int) error {
		err := d.restoreObject(snaps[i])
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", snaps[i], err))
		} else {
			rec.SnapshotShards++
		}
		return nil
	})

	// Pre-incremental lakes stored one monolithic snapshot; honor it when no
	// per-shard snapshots exist so upgrades restore cleanly.
	if len(snaps) == 0 {
		switch err := d.restoreObject(d.objName(SnapshotObject)); {
		case err == nil:
			rec.LegacySnapshot = true
		case errors.Is(err, lake.ErrNotFound):
			// first boot
		default:
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", d.objName(SnapshotObject), err))
		}
	}

	logs, err := d.store.ListObjects(d.objName(WALPrefix))
	if err != nil {
		return rec, fmt.Errorf("stream: list WALs: %w", err)
	}
	pool.ForEach(len(logs), func(i int) error {
		r, err := d.store.ObjectReader(logs[i])
		var rep walReplay
		if err == nil {
			rep, err = d.ing.replayWAL(r)
			r.Close()
		}
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			rec.Failures = append(rec.Failures, fmt.Sprintf("%s: %v", logs[i], err))
			return nil
		}
		rec.WALFiles++
		rec.WALRecords += rep.records
		rec.WALDuplicates += rep.duplicates
		if rep.torn {
			rec.TornTails++
		}
		return nil
	})

	sort.Strings(rec.Failures) // parallel workers finish in any order
	rec.Servers = len(d.ing.Servers())
	// Recovered state counts as snapshotted-at-gen-current only after the
	// next snapshot cycle actually writes it; leave lastGen at zero so every
	// populated shard is captured on the first cycle (and its replayed WAL
	// records are truncated away only then).
	d.rec.Store(&rec)
	return rec, nil
}

// restoreObject restores one snapshot object into the ingestor.
func (d *Durability) restoreObject(name string) error {
	r, err := d.store.ObjectReader(name)
	if err != nil {
		return err
	}
	defer r.Close()
	return d.ing.RestoreSnapshot(r)
}

// Open arms the ingestor's WAL buffers and opens each shard's log, writing
// fresh headers where absent. Idempotent. With DisableWAL it only marks the
// manager open (snapshots need no standing handles).
func (d *Durability) Open() error {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	if d.opened {
		return nil
	}
	if !d.cfg.DisableWAL {
		d.wals = make([]*shardWAL, len(d.ing.sh))
		for i := range d.wals {
			w, err := d.openShardWAL(i)
			if err != nil {
				for _, open := range d.wals {
					if open != nil {
						open.obj.Close()
					}
				}
				d.wals = nil
				return err
			}
			d.wals[i] = w
		}
		d.ing.attachWAL(d.cfg.BufferEntries, d.kick)
	}
	d.opened = true
	return nil
}

// openShardWAL opens shard i's log. An empty or undersized log gets a fresh
// header; an existing one is trusted (Recover already consumed and validated
// it — and even if stale bytes survived, replay's CRC framing contains them).
func (d *Durability) openShardWAL(i int) (*shardWAL, error) {
	obj, err := d.store.ObjectAppender(d.objName(walObject(i)))
	if err != nil {
		return nil, fmt.Errorf("stream: open WAL %d: %w", i, err)
	}
	size, err := obj.Size()
	if err != nil {
		obj.Close()
		return nil, fmt.Errorf("stream: size WAL %d: %w", i, err)
	}
	if size < int64(walHeaderLen) {
		if err := obj.Truncate(0); err != nil {
			obj.Close()
			return nil, fmt.Errorf("stream: reset WAL %d: %w", i, err)
		}
		hdr := appendWALHeader(nil, &d.ing.cfg)
		if _, err := obj.Write(hdr); err != nil {
			obj.Close()
			return nil, fmt.Errorf("stream: write WAL header %d: %w", i, err)
		}
		if err := obj.Sync(); err != nil {
			obj.Close()
			return nil, fmt.Errorf("stream: sync WAL header %d: %w", i, err)
		}
		size = int64(walHeaderLen)
	}
	return &shardWAL{obj: obj, size: size}, nil
}

// Start opens the manager and launches the maintenance goroutine: WAL group
// commits every CommitEvery (sooner when a shard buffer passes half full),
// incremental snapshots every SnapshotEvery. It stops when ctx is canceled;
// Close then performs the final flush.
func (d *Durability) Start(ctx context.Context) error {
	if err := d.Open(); err != nil {
		return err
	}
	ctx, d.stop = context.WithCancel(ctx)
	d.loopWG.Add(1)
	go d.maintain(ctx)
	return nil
}

func (d *Durability) maintain(ctx context.Context) {
	defer d.loopWG.Done()
	commit := d.cfg.Clock.NewTicker(d.cfg.CommitEvery)
	defer commit.Stop()
	var snap <-chan time.Time
	if d.cfg.SnapshotEvery > 0 {
		t := d.cfg.Clock.NewTicker(d.cfg.SnapshotEvery)
		defer t.Stop()
		snap = t.C()
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-commit.C():
			d.CommitNow()
		case <-d.kick:
			d.CommitNow()
		case <-snap:
			d.SnapshotNow()
		}
	}
}

// CommitNow group-commits every shard's pending points to its WAL and syncs.
// Errors are counted and the affected entries requeued for the next cycle;
// the first error is returned (tests assert on it, serve logs it).
func (d *Durability) CommitNow() error {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	if !d.opened || d.closed || d.cfg.DisableWAL {
		return nil
	}
	var first error
	for i := range d.wals {
		if err := d.flushShard(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// flushShard writes shard i's pending entries to its log. Caller holds opMu.
func (d *Durability) flushShard(i int) error {
	pend := d.ing.takePending(i, d.spare, d.cfg.BufferEntries)
	if len(pend) == 0 {
		d.spare = pend
		return nil
	}
	err := d.writeEntries(d.wals[i], pend)
	if err != nil {
		d.commitErrors.Add(1)
		// Put the batch back so the next cycle retries it: a transient
		// store error must not silently void the δ guarantee.
		d.ing.requeuePending(i, pend)
		d.spare = nil // pend is now owned by the shard again
		return err
	}
	d.commits.Add(1)
	d.commitRecords.Add(uint64(len(pend)))
	d.spare = pend
	return nil
}

// writeEntries appends entries to w as frames and syncs. On failure the log
// is rolled back to its last known-good size, so a store hiccup never leaves
// a mid-file torn frame that would poison every record after it.
func (d *Durability) writeEntries(w *shardWAL, entries []walEntry) error {
	buf := d.scratch[:0]
	for _, e := range entries {
		buf = appendWALFrame(buf, e)
	}
	d.scratch = buf
	_, werr := w.obj.Write(buf)
	if werr == nil {
		werr = w.obj.Sync()
	}
	if werr != nil {
		// Trim any partial frame; if even the rollback fails, the reopen
		// path (or replay's CRC) still contains the damage.
		if terr := w.obj.Truncate(w.size); terr == nil {
			d.truncations.Add(1)
		}
		return werr
	}
	w.size += int64(len(buf))
	d.commitBytes.Add(uint64(len(buf)))
	return nil
}

// SnapshotNow writes an incremental snapshot: every shard whose generation
// counter moved since its last snapshot is re-serialized and atomically
// replaced; unchanged shards cost nothing. Each successfully snapshotted
// shard's WAL is truncated back to its header — everything in it is now
// covered. Returns how many shards were written, and the first error.
func (d *Durability) SnapshotNow() (int, error) {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	return d.snapshotLocked()
}

func (d *Durability) snapshotLocked() (int, error) {
	if !d.opened || d.closed {
		return 0, nil
	}
	wrote := 0
	var first error
	for i := range d.ing.sh {
		ok, err := d.snapshotShard(i)
		if ok {
			wrote++
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return wrote, first
}

// snapshotShard captures and persists one shard. Caller holds opMu.
//
// Ordering is what makes this safe against a kill at any line: pending WAL
// entries swapped out together with the ring capture are flushed to the log
// BEFORE the snapshot replace, and the log is truncated only AFTER the
// replace succeeds. Points arriving after the capture only accumulate in the
// shard buffer (no one else writes the log file), so truncation can never
// discard a point the snapshot does not cover.
func (d *Durability) snapshotShard(i int) (bool, error) {
	sh := &d.ing.sh[i]
	var w *shardWAL
	if !d.cfg.DisableWAL {
		w = d.wals[i]
	}

	spare := d.spare
	if w != nil && cap(spare) < d.cfg.BufferEntries {
		spare = make([]walEntry, 0, d.cfg.BufferEntries)
	}
	sh.mu.Lock()
	gen := sh.gen
	if gen == d.lastGen[i] {
		sh.mu.Unlock()
		return false, nil
	}
	buf := appendShardSnapshot(d.scratch[:0], &d.ing.cfg, sh)
	var pend []walEntry
	if w != nil {
		pend = sh.pend
		sh.pend = spare[:0]
	}
	sh.mu.Unlock()
	d.scratch = buf

	if w != nil {
		if len(pend) > 0 {
			// The capture covers these entries, but if the snapshot write
			// below fails they must already be in the log — otherwise a
			// kill right after would lose them with nothing to replay.
			if err := d.appendFrames(w, pend); err != nil {
				d.commitErrors.Add(1)
				d.ing.requeuePending(i, pend)
				d.spare = nil
				return false, err
			}
			d.commits.Add(1)
			d.commitRecords.Add(uint64(len(pend)))
		}
		d.spare = pend
	}

	obj, err := d.store.ObjectWriter(d.objName(shardSnapshotObject(i)))
	if err == nil {
		_, err = obj.Write(d.scratch)
		if err == nil {
			err = obj.Close()
		} else if ab, ok := obj.(interface{ Abort() }); ok {
			ab.Abort()
		} else {
			obj.Close()
		}
	}
	if err != nil {
		// The replace failed atomically: the previous snapshot and the WAL
		// (which now holds everything since it) still reconstruct the shard.
		d.snapshotErrors.Add(1)
		return false, fmt.Errorf("stream: snapshot shard %d: %w", i, err)
	}
	d.snapshots.Add(1)
	d.lastGen[i] = gen

	if w != nil && w.size > int64(walHeaderLen) {
		if err := w.obj.Truncate(int64(walHeaderLen)); err != nil {
			// Harmless to leave: replay of covered records is idempotent.
			return true, nil
		}
		w.size = int64(walHeaderLen)
		d.truncations.Add(1)
	}
	return true, nil
}

// appendFrames writes entries to w without touching d.scratch (the caller is
// using it for the snapshot capture).
func (d *Durability) appendFrames(w *shardWAL, entries []walEntry) error {
	var buf []byte
	for _, e := range entries {
		buf = appendWALFrame(buf, e)
	}
	_, werr := w.obj.Write(buf)
	if werr == nil {
		werr = w.obj.Sync()
	}
	if werr != nil {
		if terr := w.obj.Truncate(w.size); terr == nil {
			d.truncations.Add(1)
		}
		return werr
	}
	w.size += int64(len(buf))
	d.commitBytes.Add(uint64(len(buf)))
	return nil
}

// Close stops the maintenance goroutine, performs a final commit + snapshot
// (so a clean drain loses nothing at all), and closes the shard logs. The
// manager cannot be reused after Close.
func (d *Durability) Close() error {
	if d.stop != nil {
		d.stop()
		d.loopWG.Wait()
	}
	d.opMu.Lock()
	defer d.opMu.Unlock()
	if !d.opened || d.closed {
		d.closed = true
		return nil
	}
	var first error
	if !d.cfg.DisableWAL {
		for i := range d.wals {
			if err := d.flushShard(i); err != nil && first == nil {
				first = err
			}
		}
	}
	if _, err := d.snapshotLocked(); err != nil && first == nil {
		first = err
	}
	if !d.cfg.DisableWAL {
		for _, w := range d.wals {
			if err := w.obj.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	d.closed = true
	return first
}

// DurabilityStats is the /varz view of the durability layer.
type DurabilityStats struct {
	WAL           bool    `json:"wal"`
	DeltaMS       float64 `json:"delta_ms"` // configured δ (commit interval)
	Commits       uint64  `json:"wal_commits"`
	CommitRecords uint64  `json:"wal_records"`
	CommitBytes   uint64  `json:"wal_bytes"`
	CommitErrors  uint64  `json:"wal_errors"`
	Dropped       uint64  `json:"wal_dropped"` // buffer overflow between commits
	Snapshots     uint64  `json:"snapshots"`
	SnapshotErrs  uint64  `json:"snapshot_errors"`
	Truncations   uint64  `json:"wal_truncations"`

	// Boot recovery outcome, frozen at Recover time.
	Recovered *RecoveryStats `json:"recovered,omitempty"`
}

// Stats assembles a point-in-time durability snapshot.
func (d *Durability) Stats() DurabilityStats {
	st := DurabilityStats{
		WAL:           !d.cfg.DisableWAL,
		DeltaMS:       float64(d.cfg.CommitEvery) / float64(time.Millisecond),
		Commits:       d.commits.Load(),
		CommitRecords: d.commitRecords.Load(),
		CommitBytes:   d.commitBytes.Load(),
		CommitErrors:  d.commitErrors.Load(),
		Dropped:       d.ing.walOverflow(),
		Snapshots:     d.snapshots.Load(),
		SnapshotErrs:  d.snapshotErrors.Load(),
		Truncations:   d.truncations.Load(),
		Recovered:     d.rec.Load(),
	}
	return st
}

// Delta returns the configured bounded-loss window δ: the WAL commit
// interval, or the snapshot interval when the WAL is disabled.
func (d *Durability) Delta() time.Duration {
	if d.cfg.DisableWAL {
		if d.cfg.SnapshotEvery > 0 {
			return d.cfg.SnapshotEvery
		}
		return -1
	}
	return d.cfg.CommitEvery
}
