package stream

import (
	"errors"
	"math"
	"sort"
	"sync"
	"time"

	"seagull/internal/simclock"
	"seagull/internal/timeseries"
)

// Common errors returned by the stream layer.
var (
	ErrBadInterval = errors.New("stream: series interval must match the ingestor slot interval")
	ErrNoTelemetry = errors.New("stream: no live telemetry for server")
)

// Config parameterizes an Ingestor. The zero value selects the production
// defaults: five-minute slots (the paper's telemetry granularity), four weeks
// of retained history per server, and sixteen lock stripes.
type Config struct {
	// Interval is the slot granularity every point rolls up to; it must match
	// the granularity the pipeline trains at. Default five minutes.
	Interval time.Duration
	// Epoch is the slot-index origin: a point at time t lands in slot
	// (t-Epoch)/Interval. Points before Epoch are rejected as too old.
	// Default: the Unix epoch (UTC).
	Epoch time.Time
	// Slots bounds the retained history per server, in slots; as the newest
	// slot advances, slots older than the trailing window fall off. Default
	// 8064 (four weeks at five-minute granularity).
	Slots int
	// Shards is the number of lock stripes server rings are hashed across;
	// rounded up to a power of two. Default 16.
	Shards int
	// MaxFuture bounds how far past the current wall clock a point's
	// timestamp may lie. Without it, one bogus far-future point (a client
	// sending milliseconds where seconds are expected, say) would slide the
	// server's whole retained window into the future and turn every real
	// point into a too-old drop. Default one hour (generous clock skew);
	// negative disables the bound.
	MaxFuture time.Duration
	// Clock is the time source MaxFuture is judged against; nil means the
	// wall clock. Tests and simulations inject their own.
	Clock simclock.Clock
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Minute
	}
	if c.Epoch.IsZero() {
		c.Epoch = time.Unix(0, 0).UTC()
	}
	if c.Slots <= 0 {
		c.Slots = 4 * 7 * 24 * 12 // four weeks of five-minute slots
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.MaxFuture == 0 {
		c.MaxFuture = time.Hour
	}
	c.Clock = simclock.Or(c.Clock)
	return c
}

// AppendStatus reports what happened to one appended point.
type AppendStatus uint8

// Append outcomes.
const (
	// Appended: the point filled a new slot.
	Appended AppendStatus = iota
	// Duplicate: the slot already held a value; the first write wins, which
	// makes ingestion idempotent under at-least-once delivery and replays.
	Duplicate
	// TooOld: the point predates the server's retained window (or the epoch)
	// and was dropped.
	TooOld
	// TooNew: the point's timestamp lies beyond the wall clock plus
	// Config.MaxFuture and was dropped before it could poison the ring.
	TooNew
	// BadValue: the value was NaN or infinite.
	BadValue
)

// String renders the status for diagnostics.
func (s AppendStatus) String() string {
	switch s {
	case Appended:
		return "appended"
	case Duplicate:
		return "duplicate"
	case TooOld:
		return "too-old"
	case TooNew:
		return "too-new"
	default:
		return "bad-value"
	}
}

// Stats is a point-in-time snapshot of ingestion counters across all shards.
type Stats struct {
	Servers    int    `json:"servers"`
	Appended   uint64 `json:"appended"`
	Duplicates uint64 `json:"duplicates"`
	TooOld     uint64 `json:"too_old"`
	TooNew     uint64 `json:"too_new"`
	BadValues  uint64 `json:"bad_values"`
}

// serverRing is one server's retained history: a linear buffer of 2×Slots
// slots (NaN = empty) that slides forward by an amortized shift, so the live
// window is always contiguous in memory and zero-copy views are possible —
// a classic ring buffer would wrap and force copies on every read.
type serverRing struct {
	vals  []float64
	start int64 // absolute slot index of vals[0]
	head  int64 // one past the newest filled slot
	min   int64 // oldest filled slot (lower bound after eviction)
}

func newRing(slot int64, slots int) *serverRing {
	vals := make([]float64, 2*slots)
	for i := range vals {
		vals[i] = timeseries.Missing
	}
	// Placing the first point in the middle leaves a full window of backward
	// room for out-of-order arrivals that predate it.
	return &serverRing{vals: vals, start: slot - int64(slots), head: slot, min: slot}
}

// put rolls one point into its slot. The first write to a slot wins;
// re-deliveries are reported as Duplicate and ignored, which keeps the
// rolled-up state independent of arrival order (the equivalence the property
// tests pin).
func (r *serverRing) put(slot int64, v float64, slots int) AppendStatus {
	if slot < r.head-int64(slots) {
		return TooOld
	}
	idx := slot - r.start
	if idx < 0 {
		// Unreachable under the start ≤ head-Slots invariant; kept as a
		// defensive drop rather than a panic on a hot concurrent path.
		return TooOld
	}
	if idx >= int64(len(r.vals)) {
		r.shift(slot)
		idx = slot - r.start
	}
	if !math.IsNaN(r.vals[idx]) {
		return Duplicate
	}
	r.vals[idx] = v
	if slot >= r.head {
		r.head = slot + 1
	}
	if slot < r.min {
		r.min = slot
	}
	return Appended
}

// shift slides the buffer so slot becomes indexable, moving the trailing
// retained window that ends at slot to the front of the buffer — which
// leaves a full window of forward room, so the next shift is at least
// len(vals)/2 appends away and the amortized append cost stays O(1) and
// allocation-free.
func (r *serverRing) shift(slot int64) {
	slots := int64(len(r.vals) / 2)
	newStart := slot + 1 - slots
	lo := r.min
	if hs := slot + 1 - slots; lo < hs {
		lo = hs // slots beyond the retained window are evicted by the move
	}
	if lo < r.head {
		copy(r.vals[lo-newStart:r.head-newStart], r.vals[lo-r.start:r.head-r.start])
		for i := int64(0); i < lo-newStart; i++ {
			r.vals[i] = timeseries.Missing
		}
		for i := r.head - newStart; i < int64(len(r.vals)); i++ {
			r.vals[i] = timeseries.Missing
		}
		if r.min < lo {
			r.min = lo
		}
	} else {
		for i := range r.vals {
			r.vals[i] = timeseries.Missing
		}
		r.min = slot + 1 // nothing retained; the pending put re-establishes it
		r.head = slot    // and advances head
	}
	r.start = newStart
}

// view returns the zero-copy live window [max(min, head-Slots), head).
func (r *serverRing) view(slots int, epoch time.Time, interval time.Duration) (timeseries.Series, bool) {
	lo := r.min
	if hs := r.head - int64(slots); lo < hs {
		lo = hs
	}
	if lo >= r.head {
		return timeseries.Series{}, false
	}
	vals := r.vals[lo-r.start : r.head-r.start : r.head-r.start]
	return timeseries.New(epoch.Add(time.Duration(lo)*interval), interval, vals), true
}

// walEntry is one accepted point pending WAL group commit: the minimum
// needed to replay the ring-level put. Value type, no pointers — buffering
// one is a copy into a preallocated slice, not an allocation.
type walEntry struct {
	id   string
	slot int64
	val  float64
}

// shard is one lock stripe of server rings. Counters are guarded by mu.
type shard struct {
	mu         sync.RWMutex
	rings      map[string]*serverRing
	appended   uint64
	duplicates uint64
	tooOld     uint64
	tooNew     uint64
	badValues  uint64

	// gen counts ring mutations (appends and replays) in this shard; the
	// incremental snapshotter skips shards whose gen hasn't moved since
	// their last snapshot, so unchanged shards cost nothing.
	gen uint64

	// WAL hook, armed by Durability. Accepted points are buffered in pend
	// under mu (append into preallocated capacity — the hot path stays
	// 0 allocs/op) and flushed to the log by the group committer, which
	// swaps the slice out rather than copying it. When the buffer fills
	// between commits the overflow is counted, not blocked on: ingest
	// latency outranks completeness of the last δ of uncommitted points,
	// which the bounded-loss guarantee already writes off.
	walOn      bool
	pend       []walEntry
	walDropped uint64
	walKick    chan struct{}
}

// Ingestor accepts out-of-order per-server load points and rolls them up
// incrementally to the pipeline's slot granularity. Server rings are hashed
// across lock-striped shards; the warm append path (ring exists) is
// allocation-free. Safe for concurrent use.
type Ingestor struct {
	cfg  Config
	mask uint32
	sh   []shard
}

// NewIngestor returns an empty ingestor.
func NewIngestor(cfg Config) *Ingestor {
	cfg = cfg.withDefaults()
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	g := &Ingestor{cfg: cfg, mask: uint32(n - 1), sh: make([]shard, n)}
	for i := range g.sh {
		g.sh[i].rings = map[string]*serverRing{}
	}
	return g
}

// Interval returns the slot granularity.
func (g *Ingestor) Interval() time.Duration { return g.cfg.Interval }

// Epoch returns the slot-index origin.
func (g *Ingestor) Epoch() time.Time { return g.cfg.Epoch }

// SlotOf returns the slot index covering t, and whether t is at or after the
// epoch.
func (g *Ingestor) SlotOf(t time.Time) (int64, bool) {
	d := t.Sub(g.cfg.Epoch)
	if d < 0 {
		return 0, false
	}
	return int64(d / g.cfg.Interval), true
}

// shardOf stripes a server id across shards with FNV-1a (inlined: the
// hash/fnv package would force a byte-slice conversion and an allocation on
// the hot path).
func (g *Ingestor) shardOf(serverID string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(serverID); i++ {
		h ^= uint64(serverID[i])
		h *= 1099511628211
	}
	return &g.sh[uint32(h)&g.mask]
}

// Append rolls one load point into the server's ring. Allocation-free once
// the server's ring exists (the first point per server allocates it).
func (g *Ingestor) Append(serverID string, t time.Time, v float64) AppendStatus {
	sh := g.shardOf(serverID)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		sh.mu.Lock()
		sh.badValues++
		sh.mu.Unlock()
		return BadValue
	}
	if g.cfg.MaxFuture >= 0 && t.Sub(g.cfg.Clock.Now()) > g.cfg.MaxFuture {
		sh.mu.Lock()
		sh.tooNew++
		sh.mu.Unlock()
		return TooNew
	}
	slot, ok := g.SlotOf(t)
	if !ok {
		sh.mu.Lock()
		sh.tooOld++
		sh.mu.Unlock()
		return TooOld
	}
	sh.mu.Lock()
	r := sh.rings[serverID]
	if r == nil {
		r = newRing(slot, g.cfg.Slots)
		sh.rings[serverID] = r
	}
	st := r.put(slot, v, g.cfg.Slots)
	switch st {
	case Appended:
		sh.appended++
		sh.gen++
		if sh.walOn {
			if len(sh.pend) < cap(sh.pend) {
				sh.pend = append(sh.pend, walEntry{id: serverID, slot: slot, val: v})
				if len(sh.pend) == cap(sh.pend)/2 {
					// Nudge the committer before the buffer fills; dropping
					// the nudge is fine — the commit ticker is the backstop.
					select {
					case sh.walKick <- struct{}{}:
					default:
					}
				}
			} else {
				sh.walDropped++
			}
		}
	case Duplicate:
		sh.duplicates++
	case TooOld:
		sh.tooOld++
	}
	sh.mu.Unlock()
	return st
}

// replayPut applies one recovered WAL record directly at the ring level. The
// wall-clock bound is skipped — a replayed point was already accepted once,
// and judging it against the current clock would drop records near the
// MaxFuture horizon — but every ring-level verdict still applies, so a record
// whose slot is covered by a newer snapshot lands as Duplicate (first write
// wins) and replay is idempotent. Replayed points are not re-buffered for the
// WAL (they are already in it) and do not move the process-lifetime ingestion
// counters, which describe this process, not the data.
func (g *Ingestor) replayPut(serverID string, slot int64, v float64) AppendStatus {
	if math.IsNaN(v) || math.IsInf(v, 0) || slot < 0 {
		return BadValue
	}
	sh := g.shardOf(serverID)
	sh.mu.Lock()
	r := sh.rings[serverID]
	if r == nil {
		r = newRing(slot, g.cfg.Slots)
		sh.rings[serverID] = r
	}
	st := r.put(slot, v, g.cfg.Slots)
	if st == Appended {
		sh.gen++
	}
	sh.mu.Unlock()
	return st
}

// attachWAL arms per-shard pending buffers of the given capacity. kick is
// nudged (non-blocking) when a buffer reaches half full. Arm before
// concurrent appends begin.
func (g *Ingestor) attachWAL(buffer int, kick chan struct{}) {
	for i := range g.sh {
		sh := &g.sh[i]
		sh.mu.Lock()
		sh.walOn = true
		sh.walKick = kick
		if cap(sh.pend) < buffer {
			sh.pend = make([]walEntry, 0, buffer)
		}
		sh.mu.Unlock()
	}
}

// takePending swaps shard i's pending WAL entries out for spare (reset to
// length zero, grown to at least minCap so the shard never receives an
// undersized buffer), returning the buffered entries. The committer hands
// the previous batch back as the next spare, so steady-state commits
// allocate nothing.
func (g *Ingestor) takePending(i int, spare []walEntry, minCap int) []walEntry {
	if cap(spare) < minCap {
		spare = make([]walEntry, 0, minCap)
	}
	sh := &g.sh[i]
	sh.mu.Lock()
	pend := sh.pend
	sh.pend = spare[:0]
	sh.mu.Unlock()
	return pend
}

// requeuePending puts entries back at the front of shard i's pending buffer
// after a failed WAL flush, so they are retried on the next commit. May
// exceed the configured buffer capacity (correctness over the bound on the
// error path).
func (g *Ingestor) requeuePending(i int, entries []walEntry) {
	sh := &g.sh[i]
	sh.mu.Lock()
	sh.pend = append(entries, sh.pend...)
	sh.mu.Unlock()
}

// walOverflow sums points dropped because a shard's pending buffer was full
// between commits.
func (g *Ingestor) walOverflow() uint64 {
	var n uint64
	for i := range g.sh {
		sh := &g.sh[i]
		sh.mu.RLock()
		n += sh.walDropped
		sh.mu.RUnlock()
	}
	return n
}

// AppendSummary tallies the outcomes of a batch append.
type AppendSummary struct {
	Appended   int `json:"appended"`
	Duplicates int `json:"duplicates"`
	TooOld     int `json:"too_old"`
	TooNew     int `json:"too_new"`
	BadValues  int `json:"bad_values"`
	// Skipped counts missing (NaN) observations in a series append, which
	// are not ingested — an empty slot already means missing.
	Skipped int `json:"skipped"`
}

// Add folds one point status into the summary (also used by the serving
// layer's ingest endpoint, so the status→counter mapping lives here only).
func (a *AppendSummary) Add(st AppendStatus) {
	switch st {
	case Appended:
		a.Appended++
	case Duplicate:
		a.Duplicates++
	case TooOld:
		a.TooOld++
	case TooNew:
		a.TooNew++
	case BadValue:
		a.BadValues++
	}
}

// AppendSeries appends a contiguous run of observations starting at start.
// The series interval must equal the ingestor's slot interval (points are
// rolled up by slot, so a mismatched interval would alias). Missing (NaN)
// observations are skipped — an unfilled slot already reads as missing.
func (g *Ingestor) AppendSeries(serverID string, start time.Time, vals []float64) (AppendSummary, error) {
	var sum AppendSummary
	for i, v := range vals {
		if timeseries.IsMissing(v) {
			sum.Skipped++
			continue
		}
		sum.Add(g.Append(serverID, start.Add(time.Duration(i)*g.cfg.Interval), v))
	}
	return sum, nil
}

// WithView runs fn with a zero-copy view of the server's live window —
// [newest-Slots, newest] trimmed to filled slots, unfilled slots reading as
// timeseries.Missing — while holding the server's shard read lock, so the
// view is stable for the duration of fn. fn must not retain the series or
// call back into the ingestor. It reports whether the server had any live
// telemetry.
func (g *Ingestor) WithView(serverID string, fn func(live timeseries.Series)) bool {
	sh := g.shardOf(serverID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r := sh.rings[serverID]
	if r == nil {
		return false
	}
	s, ok := r.view(g.cfg.Slots, g.cfg.Epoch, g.cfg.Interval)
	if !ok {
		return false
	}
	fn(s)
	return true
}

// View returns a zero-copy view of the server's live window. The backing
// array is shared with the ring: the view is only stable until the next
// append for this server, so it suits single-writer phases and tests; use
// WithView or SnapshotInto when appenders run concurrently.
func (g *Ingestor) View(serverID string) (timeseries.Series, bool) {
	var out timeseries.Series
	ok := g.WithView(serverID, func(live timeseries.Series) { out = live })
	return out, ok
}

// SnapshotInto copies the server's live window into buf (grown when needed)
// and returns a series owning the copy — the stable-snapshot counterpart of
// WithView for long work like model training, where holding a shard lock
// would stall ingestion. Callers reuse the returned Values as the next buf
// to stay allocation-free in steady state.
func (g *Ingestor) SnapshotInto(serverID string, buf []float64) (timeseries.Series, bool) {
	sh := g.shardOf(serverID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r := sh.rings[serverID]
	if r == nil {
		return timeseries.Series{}, false
	}
	s, ok := r.view(g.cfg.Slots, g.cfg.Epoch, g.cfg.Interval)
	if !ok {
		return timeseries.Series{}, false
	}
	if cap(buf) < s.Len() {
		buf = make([]float64, s.Len())
	}
	buf = buf[:s.Len()]
	copy(buf, s.Values)
	return timeseries.New(s.Start, s.Interval, buf), true
}

// Servers lists every server with live telemetry, sorted.
func (g *Ingestor) Servers() []string {
	var out []string
	for i := range g.sh {
		sh := &g.sh[i]
		sh.mu.RLock()
		for id := range sh.rings {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Stats sums the ingestion counters across shards.
func (g *Ingestor) Stats() Stats {
	var st Stats
	for i := range g.sh {
		sh := &g.sh[i]
		sh.mu.RLock()
		st.Servers += len(sh.rings)
		st.Appended += sh.appended
		st.Duplicates += sh.duplicates
		st.TooOld += sh.tooOld
		st.TooNew += sh.tooNew
		st.BadValues += sh.badValues
		sh.mu.RUnlock()
	}
	return st
}
