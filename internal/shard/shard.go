// Package shard assigns server IDs to serving replicas by rendezvous
// (highest-random-weight) consistent hashing.
//
// Every key scores each replica with a 64-bit mix of (seed, replica, key) and
// is owned by the replica with the highest score. The properties the sharded
// fleet rests on fall straight out of that construction:
//
//   - Deterministic: ownership is a pure function of (seed, member set, key).
//     Two routers configured identically route identically — the map carries
//     no state beyond its inputs.
//   - Balanced: scores are uniform 64-bit draws, so keys split evenly across
//     replicas (the property test pins deviation < 10% at fleet scale).
//   - Minimal movement: removing a replica moves exactly the keys it owned
//     (every other key's argmax is untouched); adding one moves only the keys
//     the newcomer now wins — 1/(N+1) of them in expectation. No other
//     assignment changes, which is what keeps a membership change from
//     invalidating every replica's rings, warm pools and WAL at once.
//
// Rendezvous hashing was chosen over a virtual-node ring because it gets
// provably tight balance and exactly-minimal movement with no tuning knob
// (a vnode ring needs hundreds of vnodes per replica to approximate either),
// and O(N) lookup is irrelevant at router fan-in sizes (N ≤ dozens).
package shard

import (
	"fmt"
	"sort"
)

// Map is an immutable assignment of string keys onto a replica set. Methods
// never mutate; membership changes return a new Map, so a router can swap
// maps atomically while requests route against the old one.
type Map struct {
	seed     uint64
	names    []string // sorted, unique
	premixed []uint64 // per-replica hash, premixed with the seed
}

// New builds a map over the given replica names. Names must be non-empty and
// unique; order does not matter (the map sorts internally, so any permutation
// of the same membership is the same map).
func New(seed uint64, replicas []string) (*Map, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("shard: replica set must not be empty")
	}
	names := append([]string(nil), replicas...)
	sort.Strings(names)
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("shard: replica name must not be empty")
		}
		if i > 0 && names[i-1] == n {
			return nil, fmt.Errorf("shard: duplicate replica %q", n)
		}
	}
	m := &Map{seed: seed, names: names, premixed: make([]uint64, len(names))}
	for i, n := range names {
		m.premixed[i] = mix64(hash64(n) ^ m.seed)
	}
	return m, nil
}

// Seed returns the seed the map was built with.
func (m *Map) Seed() uint64 { return m.seed }

// N returns the replica count.
func (m *Map) N() int { return len(m.names) }

// Replicas returns the sorted member names (a copy).
func (m *Map) Replicas() []string { return append([]string(nil), m.names...) }

// Contains reports whether replica is a member.
func (m *Map) Contains(replica string) bool {
	i := sort.SearchStrings(m.names, replica)
	return i < len(m.names) && m.names[i] == replica
}

// OwnerIndex returns the index (into Replicas()) of the replica owning key.
func (m *Map) OwnerIndex(key string) int {
	kh := hash64(key)
	best, bestScore := 0, uint64(0)
	for i, ph := range m.premixed {
		// Scores are full 64-bit mixes, so ties are ~impossible; the strict >
		// keeps any tie on the lowest-sorted name, deterministically.
		if s := mix64(ph ^ kh); s > bestScore || i == 0 {
			best, bestScore = i, s
		}
	}
	return best
}

// Owner returns the name of the replica owning key.
func (m *Map) Owner(key string) string { return m.names[m.OwnerIndex(key)] }

// WithJoined returns a new map with replica added.
func (m *Map) WithJoined(replica string) (*Map, error) {
	if m.Contains(replica) {
		return nil, fmt.Errorf("shard: replica %q already a member", replica)
	}
	return New(m.seed, append(m.Replicas(), replica))
}

// WithLeft returns a new map with replica removed.
func (m *Map) WithLeft(replica string) (*Map, error) {
	if !m.Contains(replica) {
		return nil, fmt.Errorf("shard: replica %q is not a member", replica)
	}
	names := make([]string, 0, len(m.names)-1)
	for _, n := range m.names {
		if n != replica {
			names = append(names, n)
		}
	}
	return New(m.seed, names)
}

// Split partitions keys by owning replica, preserving each key's position via
// the returned index slices: keys[idx[name][j]] is the j-th key owned by
// name. The router's batch splitter is this function.
func (m *Map) Split(keys []string) map[string][]int {
	out := make(map[string][]int, len(m.names))
	for i, k := range keys {
		owner := m.names[m.OwnerIndex(k)]
		out[owner] = append(out[owner], i)
	}
	return out
}

// hash64 is FNV-1a over the key bytes — fast, allocation-free, and stable
// across processes (no runtime-randomized map hashing can leak in).
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection that turns
// the structured FNV/seed xor into uniform 64-bit scores.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
