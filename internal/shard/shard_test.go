package shard

import (
	"fmt"
	"math"
	"testing"
)

func replicaNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("replica-%02d", i)
	}
	return names
}

func fleetKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("westus2-srv-%06d", i)
	}
	return keys
}

// TestBalance pins the headline property: at fleet scale every replica's key
// share is within 10% of the even split, for each N in the table.
func TestBalance(t *testing.T) {
	const fleet = 50_000
	keys := fleetKeys(fleet)
	for _, n := range []int{2, 4, 8, 16} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			m, err := New(42, replicaNames(n))
			if err != nil {
				t.Fatal(err)
			}
			counts := map[string]int{}
			for _, k := range keys {
				counts[m.Owner(k)]++
			}
			if len(counts) != n {
				t.Fatalf("only %d of %d replicas own keys", len(counts), n)
			}
			even := float64(fleet) / float64(n)
			for name, c := range counts {
				if dev := math.Abs(float64(c)-even) / even; dev > 0.10 {
					t.Errorf("replica %s owns %d keys, %.1f%% off the even %0.f",
						name, c, dev*100, even)
				}
			}
		})
	}
}

// TestMinimalMovementOnJoin pins that adding a replica moves at most
// 1/(N+1) + ε of the keys — and that every moved key lands on the newcomer
// (no shuffling between surviving replicas).
func TestMinimalMovementOnJoin(t *testing.T) {
	const fleet = 50_000
	keys := fleetKeys(fleet)
	for _, n := range []int{2, 4, 8, 16} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			m, err := New(7, replicaNames(n))
			if err != nil {
				t.Fatal(err)
			}
			grown, err := m.WithJoined("replica-new")
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for _, k := range keys {
				before, after := m.Owner(k), grown.Owner(k)
				if before == after {
					continue
				}
				if after != "replica-new" {
					t.Fatalf("key %s moved %s -> %s, not to the joining replica", k, before, after)
				}
				moved++
			}
			bound := float64(fleet)/float64(n+1) + 0.02*float64(fleet)
			if float64(moved) > bound {
				t.Errorf("join moved %d keys, above 1/(N+1)+eps bound %.0f", moved, bound)
			}
			if moved == 0 {
				t.Error("join moved no keys: newcomer owns nothing")
			}
		})
	}
}

// TestMinimalMovementOnLeave pins that removing a replica moves exactly the
// keys it owned: survivors keep every key they had, and the departed
// replica's share (≈ 1/N, so ≤ 1/N + ε) is redistributed.
func TestMinimalMovementOnLeave(t *testing.T) {
	const fleet = 50_000
	keys := fleetKeys(fleet)
	for _, n := range []int{2, 4, 8, 16} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			m, err := New(7, replicaNames(n))
			if err != nil {
				t.Fatal(err)
			}
			departed := "replica-01"
			shrunk, err := m.WithLeft(departed)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for _, k := range keys {
				before, after := m.Owner(k), shrunk.Owner(k)
				if before == departed {
					if after == departed {
						t.Fatalf("key %s still owned by departed replica", k)
					}
					moved++
					continue
				}
				if before != after {
					t.Fatalf("key %s moved %s -> %s though its owner never left", k, before, after)
				}
			}
			bound := float64(fleet)/float64(n) + 0.02*float64(fleet)
			if float64(moved) > bound {
				t.Errorf("leave moved %d keys, above 1/N+eps bound %.0f", moved, bound)
			}
		})
	}
}

// TestDeterminism pins that ownership is a pure function of (seed, members):
// rebuilding the map — in any member order — reproduces it, and a different
// seed produces a genuinely different assignment.
func TestDeterminism(t *testing.T) {
	keys := fleetKeys(5_000)
	a, _ := New(1, []string{"r0", "r1", "r2", "r3"})
	b, _ := New(1, []string{"r3", "r1", "r0", "r2"}) // permuted membership
	c, _ := New(2, []string{"r0", "r1", "r2", "r3"})
	differs := 0
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("same (seed, members) disagree on %s", k)
		}
		if a.Owner(k) != c.Owner(k) {
			differs++
		}
	}
	if differs == 0 {
		t.Error("seed change did not alter the assignment")
	}
}

func TestSplitPreservesPositions(t *testing.T) {
	m, err := New(9, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	keys := fleetKeys(1_000)
	parts := m.Split(keys)
	seen := 0
	for name, idxs := range parts {
		prev := -1
		for _, i := range idxs {
			if i <= prev {
				t.Fatalf("replica %s index order broken: %d after %d", name, i, prev)
			}
			prev = i
			if got := m.Owner(keys[i]); got != name {
				t.Fatalf("key %s grouped under %s but owned by %s", keys[i], name, got)
			}
			seen++
		}
	}
	if seen != len(keys) {
		t.Fatalf("split covered %d of %d keys", seen, len(keys))
	}
}

func TestMembershipErrors(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := New(0, []string{"a", "a"}); err == nil {
		t.Error("duplicate replica accepted")
	}
	if _, err := New(0, []string{""}); err == nil {
		t.Error("empty replica name accepted")
	}
	m, err := New(0, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WithJoined("a"); err == nil {
		t.Error("joining an existing member accepted")
	}
	if _, err := m.WithLeft("zzz"); err == nil {
		t.Error("removing a non-member accepted")
	}
	if !m.Contains("a") || m.Contains("zzz") {
		t.Error("Contains is wrong")
	}
	if m.N() != 2 || m.Seed() != 0 {
		t.Error("accessors are wrong")
	}
}
