package cosmos

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

type doc struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func TestUpsertGet(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("results")
	if err := c.Upsert("westus", "srv-1", doc{Name: "a", Value: 1.5}); err != nil {
		t.Fatal(err)
	}
	var got doc
	if err := c.Get("westus", "srv-1", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "a" || got.Value != 1.5 {
		t.Errorf("got %+v", got)
	}
	// Upsert replaces.
	if err := c.Upsert("westus", "srv-1", doc{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Get("westus", "srv-1", &got); err != nil || got.Name != "b" {
		t.Errorf("after replace: %+v err %v", got, err)
	}
}

func TestGetNotFound(t *testing.T) {
	db, _ := Open("")
	c := db.Collection("x")
	var got doc
	if err := c.Get("p", "missing", &got); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestInsertConflict(t *testing.T) {
	db, _ := Open("")
	c := db.Collection("x")
	if err := c.Insert("p", "id", doc{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("p", "id", doc{}); !errors.Is(err, ErrConflict) {
		t.Errorf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	db, _ := Open("")
	c := db.Collection("x")
	_ = c.Upsert("p", "id", doc{})
	if err := c.Delete("p", "id"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("p", "id"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestIDsPartitionsCount(t *testing.T) {
	db, _ := Open("")
	c := db.Collection("x")
	_ = c.Upsert("p2", "b", doc{})
	_ = c.Upsert("p1", "z", doc{})
	_ = c.Upsert("p1", "a", doc{})
	if ids := c.IDs("p1"); len(ids) != 2 || ids[0] != "a" || ids[1] != "z" {
		t.Errorf("IDs = %v", ids)
	}
	if ps := c.Partitions(); len(ps) != 2 || ps[0] != "p1" || ps[1] != "p2" {
		t.Errorf("Partitions = %v", ps)
	}
	if c.Count("p1") != 2 || c.Count("nope") != 0 {
		t.Errorf("Count wrong")
	}
}

func TestQueryOrderedAndStops(t *testing.T) {
	db, _ := Open("")
	c := db.Collection("x")
	for i := 0; i < 5; i++ {
		_ = c.Upsert("p", fmt.Sprintf("id-%d", i), doc{Value: float64(i)})
	}
	var seen []string
	err := c.Query("p", func(id string, body json.RawMessage) error {
		seen = append(seen, id)
		if len(seen) == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || len(seen) != 3 {
		t.Errorf("seen=%v err=%v", seen, err)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Errorf("unsorted iteration: %v", seen)
		}
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("predictions")
	_ = c.Upsert("westus", "srv-1", doc{Name: "persisted", Value: 7})
	_ = db.Collection("empty") // collections with no docs persist too
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got doc
	if err := db2.Collection("predictions").Get("westus", "srv-1", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "persisted" || got.Value != 7 {
		t.Errorf("got %+v", got)
	}
	cols := db2.Collections()
	if len(cols) != 2 {
		t.Errorf("collections = %v", cols)
	}
}

func TestFlushMemoryOnlyNoop(t *testing.T) {
	db, _ := Open("")
	_ = db.Collection("x").Upsert("p", "id", doc{})
	if err := db.Flush(); err != nil {
		t.Errorf("memory flush err = %v", err)
	}
}

func TestOpenBadCollectionFile(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(dir+"/broken.json", "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("corrupt collection should fail Open")
	}
}

func TestDump(t *testing.T) {
	db, _ := Open("")
	c := db.Collection("x")
	_ = c.Upsert("b", "2", doc{})
	_ = c.Upsert("a", "1", doc{})
	docs := c.Dump()
	if len(docs) != 2 || docs[0].Partition != "a" || docs[1].Partition != "b" {
		t.Errorf("Dump = %+v", docs)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db, _ := Open("")
	c := db.Collection("x")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := c.Upsert("p", id, doc{Value: float64(i)}); err != nil {
					t.Error(err)
					return
				}
				var got doc
				if err := c.Get("p", id, &got); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Count("p") != 800 {
		t.Errorf("count = %d", c.Count("p"))
	}
}

func TestUpsertUnmarshalable(t *testing.T) {
	db, _ := Open("")
	c := db.Collection("x")
	if err := c.Upsert("p", "id", func() {}); err == nil {
		t.Error("unmarshalable value should error")
	}
}

func writeFile(path, content string) error {
	return osWriteFile(path, []byte(content), 0o644)
}
