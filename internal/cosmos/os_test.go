package cosmos

import "os"

// osWriteFile is aliased so tests stay grep-able for direct os usage.
var osWriteFile = os.WriteFile
