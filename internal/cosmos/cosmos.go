// Package cosmos is the Cosmos DB analog (Section 2.2): a document store
// with named collections, partition keys and JSON persistence, holding the
// pipeline's predictions and accuracy results. It is an in-process store
// with optional durability to disk — the paper only exercises
// write-then-read-by-key semantics.
//
// Concurrency: DB and Collection are safe for concurrent use (collections
// are independently RW-locked; Query holds a collection's read lock for the
// whole iteration, so callbacks must not write back into the same
// collection). Durability: writes are applied in memory and persisted by
// Flush; a persistent DB reloads every collection on Open.
package cosmos

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Common errors.
var (
	ErrNotFound = errors.New("cosmos: document not found")
	ErrConflict = errors.New("cosmos: document already exists")
)

// Document is a stored item: a partition key, an id unique within the
// partition, and an arbitrary JSON-serializable body.
type Document struct {
	Partition string          `json:"partition"`
	ID        string          `json:"id"`
	Body      json.RawMessage `json:"body"`
}

// Collection is a named set of documents, safe for concurrent use.
type Collection struct {
	mu   sync.RWMutex
	name string
	docs map[string]map[string]json.RawMessage // partition -> id -> body
}

// DB is a set of collections, safe for concurrent use.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	dir         string // persistence directory; empty means memory-only
}

// Open returns a database persisting to dir; an empty dir keeps the store in
// memory only. Existing collections under dir are loaded eagerly.
func Open(dir string) (*DB, error) {
	db := &DB{collections: map[string]*Collection{}, dir: dir}
	if dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cosmos: open: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cosmos: open: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		c, err := loadCollection(filepath.Join(dir, e.Name()), name)
		if err != nil {
			return nil, err
		}
		db.collections[name] = c
	}
	return db, nil
}

func loadCollection(path, name string) (*Collection, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cosmos: load %s: %w", name, err)
	}
	var docs []Document
	if err := json.Unmarshal(data, &docs); err != nil {
		return nil, fmt.Errorf("cosmos: load %s: %w", name, err)
	}
	c := newCollection(name)
	for _, d := range docs {
		part := c.docs[d.Partition]
		if part == nil {
			part = map[string]json.RawMessage{}
			c.docs[d.Partition] = part
		}
		part[d.ID] = d.Body
	}
	return c, nil
}

func newCollection(name string) *Collection {
	return &Collection{name: name, docs: map[string]map[string]json.RawMessage{}}
}

// Collection returns the named collection, creating it if absent.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		c = newCollection(name)
		db.collections[name] = c
	}
	return c
}

// Collections lists collection names, sorted.
func (db *DB) Collections() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.collections))
	for name := range db.collections {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Flush persists every collection to the database directory. It is a no-op
// for memory-only databases.
func (db *DB) Flush() error {
	if db.dir == "" {
		return nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, c := range db.collections {
		docs := c.Dump()
		data, err := json.Marshal(docs)
		if err != nil {
			return fmt.Errorf("cosmos: flush %s: %w", name, err)
		}
		tmp := filepath.Join(db.dir, name+".json.tmp")
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return fmt.Errorf("cosmos: flush %s: %w", name, err)
		}
		if err := os.Rename(tmp, filepath.Join(db.dir, name+".json")); err != nil {
			return fmt.Errorf("cosmos: flush %s: %w", name, err)
		}
	}
	return nil
}

// Upsert stores v under (partition, id), replacing any existing document.
func (c *Collection) Upsert(partition, id string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cosmos: marshal %s/%s: %w", partition, id, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	part := c.docs[partition]
	if part == nil {
		part = map[string]json.RawMessage{}
		c.docs[partition] = part
	}
	part[id] = body
	return nil
}

// Insert stores v under (partition, id) and fails with ErrConflict when the
// document already exists.
func (c *Collection) Insert(partition, id string, v any) error {
	c.mu.Lock()
	exists := c.docs[partition][id] != nil
	c.mu.Unlock()
	if exists {
		return fmt.Errorf("%w: %s/%s", ErrConflict, partition, id)
	}
	return c.Upsert(partition, id, v)
}

// Get unmarshals the document at (partition, id) into out.
func (c *Collection) Get(partition, id string, out any) error {
	c.mu.RLock()
	body := c.docs[partition][id]
	c.mu.RUnlock()
	if body == nil {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, partition, id)
	}
	return json.Unmarshal(body, out)
}

// Delete removes the document at (partition, id); deleting a missing
// document returns ErrNotFound.
func (c *Collection) Delete(partition, id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	part := c.docs[partition]
	if part == nil || part[id] == nil {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, partition, id)
	}
	delete(part, id)
	return nil
}

// IDs lists document ids in a partition, sorted.
func (c *Collection) IDs(partition string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	part := c.docs[partition]
	out := make([]string, 0, len(part))
	for id := range part {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Partitions lists partition keys, sorted.
func (c *Collection) Partitions() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.docs))
	for p := range c.docs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of documents in a partition.
func (c *Collection) Count(partition string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs[partition])
}

// Query invokes fn for every document in a partition (sorted by id) and
// collects no results itself; fn unmarshals what it needs. Iteration stops at
// the first error.
func (c *Collection) Query(partition string, fn func(id string, body json.RawMessage) error) error {
	c.mu.RLock()
	part := c.docs[partition]
	ids := make([]string, 0, len(part))
	for id := range part {
		ids = append(ids, id)
	}
	bodies := make(map[string]json.RawMessage, len(part))
	for id, b := range part {
		bodies[id] = b
	}
	c.mu.RUnlock()
	sort.Strings(ids)
	for _, id := range ids {
		if err := fn(id, bodies[id]); err != nil {
			return err
		}
	}
	return nil
}

// Dump returns every document in the collection, ordered by partition then
// id — used for persistence and tests.
func (c *Collection) Dump() []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Document
	parts := make([]string, 0, len(c.docs))
	for p := range c.docs {
		parts = append(parts, p)
	}
	sort.Strings(parts)
	for _, p := range parts {
		ids := make([]string, 0, len(c.docs[p]))
		for id := range c.docs[p] {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			out = append(out, Document{Partition: p, ID: id, Body: c.docs[p][id]})
		}
	}
	return out
}
