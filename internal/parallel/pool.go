// Package parallel is the Dask analog of the paper (Section 2.1, 6.1): a
// bounded worker pool used to partition work per server and process the
// partitions concurrently. The paper reports 3–4.6× speedups for accuracy
// evaluation; Figure 12(b)'s single-threaded vs parallel comparison runs on
// this pool.
//
// Concurrency contract: a Pool carries no per-run state, so one pool may be
// shared by any number of concurrent ForEach loops; item functions run on
// pool goroutines and must synchronize any shared writes themselves (the
// ForEachScratch variants hand each worker private scratch for exactly that
// reason). Item errors are collected, not cancelling — every index still
// runs; only context cancellation (ForEachCtx) stops new claims, with
// in-flight items finishing. Equivalence: scheduling policy and worker
// count affect wall clock only, never which indices run or how often —
// callers owning deterministic per-item work get deterministic aggregate
// results at any worker count.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrBadWorkers is returned when a non-positive worker count is requested.
var ErrBadWorkers = errors.New("parallel: worker count must be positive")

// Schedule selects how ForEach partitions the index space across workers.
type Schedule int

const (
	// ScheduleChunked hands out fixed-size chunks, roughly four per worker —
	// the lowest-overhead policy when per-item cost is roughly uniform.
	ScheduleChunked Schedule = iota
	// ScheduleGuided hands out shrinking chunks: each claim takes half of
	// the remaining work divided by the worker count (OpenMP's "guided"
	// policy). Early claims are large, so distribution overhead stays low,
	// while the tail degrades to single items — a pathologically expensive
	// item near the end strands at most its own claim's few neighbours
	// instead of a fixed n/(4·workers)-item chunk. Use for heavy-tailed
	// per-item cost (one slow server in a fleet partition).
	ScheduleGuided
)

// Pool is a fixed-size worker pool. The zero value is not usable; call
// NewPool. A Pool carries no per-run state and may be reused and shared
// freely across experiments and goroutines.
type Pool struct {
	workers int
	sched   Schedule
}

// NewPool returns a pool with the given concurrency and chunked scheduling.
// workers ≤ 0 selects runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// WithSchedule returns a pool sharing p's concurrency under the given
// scheduling policy. The receiver is unchanged, so a shared pool can serve
// uniform and heavy-tailed loops simultaneously.
func (p *Pool) WithSchedule(s Schedule) *Pool {
	q := *p
	q.sched = s
	return &q
}

// claimObserver, when non-nil, is invoked for every index-range claim the
// dispatcher hands to a worker. Test hook: set only from package tests,
// before any concurrent ForEach is running.
var claimObserver func(lo, hi int)

// ForEach runs fn(i) for every i in [0, n) across the pool's workers and
// blocks until all complete. The first error observed is returned (remaining
// items still run; partitioned accuracy evaluation must visit every server
// so we don't cancel). Panics in fn are recovered and reported as errors.
//
// Work is handed out as chunked index ranges claimed off a single atomic
// cursor — roughly four chunks per worker — rather than one channel send per
// item, so distribution overhead stays negligible even for micro-tasks.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	return p.forEachWorker(context.Background(), n, func(int) func(int) error { return fn })
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// workers stop claiming new index ranges (in-flight items finish — fn is
// never interrupted mid-item) and the context's error is returned. Unlike
// plain errors from fn, which do not stop the sweep, cancellation abandons
// the remaining items: a serving request whose client went away must not keep
// training models for servers nobody will read.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	return p.forEachWorker(ctx, n, func(int) func(int) error { return fn })
}

// ForEachScratch is like Pool.ForEach but allocates one scratch value per
// worker via newScratch and passes that worker's scratch to every fn call it
// executes. This is the hook model-fitting loops use to reuse design-matrix
// and residual buffers across items without any locking.
func ForEachScratch[S any](p *Pool, n int, newScratch func() S, fn func(i int, scratch S) error) error {
	return ForEachScratchCtx(context.Background(), p, n, newScratch, fn)
}

// ForEachScratchCtx is ForEachScratch with the cancellation semantics of
// ForEachCtx: per-worker scratch, and no new claims once ctx is done.
func ForEachScratchCtx[S any](ctx context.Context, p *Pool, n int, newScratch func() S, fn func(i int, scratch S) error) error {
	return p.forEachWorker(ctx, n, func(int) func(int) error {
		scratch := newScratch()
		return func(i int) error { return fn(i, scratch) }
	})
}

// forEachWorker is the shared chunked dispatcher. makeFn runs once per worker
// (on that worker's goroutine for workers > 1) to build the item function,
// letting callers close over per-worker scratch state. Cancellation is
// observed between items on the single-worker path and between claims on the
// parallel path.
func (p *Pool) forEachWorker(ctx context.Context, n int, makeFn func(worker int) func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	// An already-dead context does no setup at all: makeFn can be expensive
	// (scratch allocation, warm-pool checkouts) and must not run for a
	// request that will process zero items.
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := min(p.workers, n)
	if workers == 1 {
		var firstErr error
		fn := makeFn(0)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if firstErr != nil {
					return firstErr
				}
				return err
			}
			if err := safeCall(fn, i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}

	var (
		cursor   atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	chunk := n / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	claim := func() (int, int, bool) {
		// Fixed-size chunks off a single atomic cursor.
		lo := int(cursor.Add(int64(chunk))) - chunk
		if lo >= n {
			return 0, 0, false
		}
		return lo, min(lo+chunk, n), true
	}
	if p.sched == ScheduleGuided {
		claim = func() (int, int, bool) {
			// Claim half of the remaining work divided across the workers;
			// CAS because the size depends on the remaining count.
			for {
				cur := cursor.Load()
				if cur >= int64(n) {
					return 0, 0, false
				}
				take := (int64(n) - cur) / int64(2*workers)
				if take < 1 {
					take = 1
				}
				if cursor.CompareAndSwap(cur, cur+take) {
					return int(cur), int(cur + take), true
				}
			}
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return // cancelled before this worker's setup ran
			}
			fn := makeFn(w)
			for {
				if ctx.Err() != nil {
					return
				}
				lo, hi, ok := claim()
				if !ok {
					return
				}
				if obs := claimObserver; obs != nil {
					obs(lo, hi)
				}
				for i := lo; i < hi; i++ {
					if err := safeCall(fn, i); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// safeCall shields the pool from panics in user functions, converting them
// to errors so one bad server partition cannot take the pipeline down.
func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Map applies fn to every element of in concurrently and returns the results
// in input order. If any invocation fails, Map returns the first error and a
// nil slice.
func Map[T, R any](p *Pool, in []T, fn func(T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	if err := MapInto(p, in, out, fn); err != nil {
		return nil, err
	}
	return out, nil
}

// MapInto is Map with a caller-provided result slice: out[i] receives fn(in[i])
// for every i, letting callers reuse one result buffer across repeated sweeps.
// len(out) must be at least len(in). Unlike Map, out keeps the results written
// before the first error.
func MapInto[T, R any](p *Pool, in []T, out []R, fn func(T) (R, error)) error {
	if len(out) < len(in) {
		return fmt.Errorf("parallel: MapInto out has %d slots for %d inputs", len(out), len(in))
	}
	return p.ForEach(len(in), func(i int) error {
		r, err := fn(in[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
}

// MapSeq is the single-threaded reference implementation used as the
// baseline in Figure 12(b)'s comparison.
func MapSeq[T, R any](in []T, fn func(T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	for i, v := range in {
		r, err := fn(v)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
