// Package parallel is the Dask analog of the paper (Section 2.1, 6.1): a
// bounded worker pool used to partition work per server and process the
// partitions concurrently. The paper reports 3–4.6× speedups for accuracy
// evaluation; Figure 12(b)'s single-threaded vs parallel comparison runs on
// this pool.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrBadWorkers is returned when a non-positive worker count is requested.
var ErrBadWorkers = errors.New("parallel: worker count must be positive")

// Pool is a fixed-size worker pool. The zero value is not usable; call
// NewPool.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given concurrency. workers ≤ 0 selects
// runtime.NumCPU().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// ForEach runs fn(i) for every i in [0, n) across the pool's workers and
// blocks until all complete. The first non-nil error is returned (remaining
// items still run; partitioned accuracy evaluation must visit every server
// so we don't cancel).
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := min(p.workers, n)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := safeCall(fn, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}

// safeCall shields the pool from panics in user functions, converting them
// to errors so one bad server partition cannot take the pipeline down.
func safeCall(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("parallel: task %d panicked: %v", i, r)
		}
	}()
	return fn(i)
}

// Map applies fn to every element of in concurrently and returns the results
// in input order. If any invocation fails, Map returns the first error and a
// nil slice.
func Map[T, R any](p *Pool, in []T, fn func(T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	err := p.ForEach(len(in), func(i int) error {
		r, err := fn(in[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapSeq is the single-threaded reference implementation used as the
// baseline in Figure 12(b)'s comparison.
func MapSeq[T, R any](in []T, fn func(T) (R, error)) ([]R, error) {
	out := make([]R, len(in))
	for i, v := range in {
		r, err := fn(v)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
