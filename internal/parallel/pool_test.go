package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewPoolDefaults(t *testing.T) {
	if got := NewPool(0).Workers(); got != runtime.NumCPU() {
		t.Errorf("Workers = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := NewPool(-3).Workers(); got != runtime.NumCPU() {
		t.Errorf("negative workers = %d", got)
	}
	if got := NewPool(4).Workers(); got != 4 {
		t.Errorf("Workers = %d, want 4", got)
	}
}

func TestForEachVisitsAll(t *testing.T) {
	p := NewPool(8)
	var visited [100]int32
	err := p.ForEach(100, func(i int) error {
		atomic.AddInt32(&visited[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range visited {
		if v != 1 {
			t.Errorf("index %d visited %d times", i, v)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := NewPool(2).ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("empty ForEach err = %v", err)
	}
	if err := NewPool(2).ForEach(-1, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("negative ForEach err = %v", err)
	}
}

func TestForEachReportsErrorButContinues(t *testing.T) {
	p := NewPool(4)
	var count int32
	wantErr := errors.New("boom")
	err := p.ForEach(50, func(i int) error {
		atomic.AddInt32(&count, 1)
		if i == 10 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
	if count != 50 {
		t.Errorf("only %d items ran; errors must not cancel the rest", count)
	}
}

func TestForEachRecoversPanic(t *testing.T) {
	p := NewPool(4)
	err := p.ForEach(10, func(i int) error {
		if i == 3 {
			panic("bad partition")
		}
		return nil
	})
	if err == nil || err.Error() == "" {
		t.Errorf("panic should surface as error, got %v", err)
	}
}

func TestMapOrdering(t *testing.T) {
	p := NewPool(8)
	in := make([]int, 200)
	for i := range in {
		in[i] = i
	}
	out, err := Map(p, in, func(v int) (int, error) { return v * v, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapError(t *testing.T) {
	p := NewPool(2)
	_, err := Map(p, []int{1, 2, 3}, func(v int) (int, error) {
		if v == 2 {
			return 0, fmt.Errorf("item %d failed", v)
		}
		return v, nil
	})
	if err == nil {
		t.Error("Map should propagate errors")
	}
}

func TestMapSeqMatchesMap(t *testing.T) {
	p := NewPool(4)
	f := func(in []int8) bool {
		vals := make([]int, len(in))
		for i, v := range in {
			vals[i] = int(v)
		}
		sq := func(v int) (int, error) { return v * v, nil }
		a, err1 := Map(p, vals, sq)
		b, err2 := MapSeq(vals, sq)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMapSeqError(t *testing.T) {
	_, err := MapSeq([]int{1, 2}, func(v int) (int, error) {
		return 0, errors.New("x")
	})
	if err == nil {
		t.Error("MapSeq should propagate errors")
	}
}

func TestPoolSpeedsUpCPUWork(t *testing.T) {
	if testing.Short() || runtime.NumCPU() < 4 {
		t.Skip("needs multiple CPUs")
	}
	work := func(int) error {
		s := 0.0
		for k := 0; k < 2_000_000; k++ {
			s += float64(k % 7)
		}
		_ = s
		return nil
	}
	// Not a strict benchmark — just verify the pool actually parallelizes by
	// checking the parallel wall-clock beats the obviously serial bound.
	seq := NewPool(1)
	par := NewPool(runtime.NumCPU())
	t1 := timeIt(func() { _ = seq.ForEach(16, work) })
	t2 := timeIt(func() { _ = par.ForEach(16, work) })
	if t2 > t1 {
		t.Errorf("parallel (%v) slower than serial (%v)", t2, t1)
	}
}

func timeIt(f func()) int64 {
	start := nowNanos()
	f()
	return nowNanos() - start
}
