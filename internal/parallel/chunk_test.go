package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Tests for the chunked dispatcher and the scratch/MapInto hooks added for
// the allocation-lean hot path.

// TestForEachMatchesSequentialLoop is the property-style equivalence check:
// for arbitrary (n, workers), the chunked ForEach visits exactly the index
// set a sequential loop would, each exactly once.
func TestForEachMatchesSequentialLoop(t *testing.T) {
	f := func(nRaw uint16, workersRaw uint8) bool {
		n := int(nRaw % 700)
		workers := int(workersRaw%12) + 1
		visited := make([]int32, n)
		err := NewPool(workers).ForEach(n, func(i int) error {
			atomic.AddInt32(&visited[i], 1)
			return nil
		})
		if err != nil {
			return false
		}
		for _, v := range visited {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Chunk-boundary shapes that the generic property test may miss.
func TestForEachChunkBoundaries(t *testing.T) {
	for _, tc := range [][2]int{
		{1, 8},   // n < workers
		{7, 8},   // n just under workers
		{8, 8},   // n == workers
		{32, 8},  // n == workers*4 (exactly one chunk per claim round)
		{33, 8},  // one extra item
		{255, 8}, // chunk > 1 with remainder
	} {
		n, workers := tc[0], tc[1]
		var count int32
		if err := NewPool(workers).ForEach(n, func(int) error {
			atomic.AddInt32(&count, 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if int(count) != n {
			t.Errorf("n=%d workers=%d: ran %d items", n, workers, count)
		}
	}
}

// TestGuidedMatchesSequentialLoop: the guided scheduler must visit exactly
// the index set a sequential loop would, each exactly once, for arbitrary
// (n, workers).
func TestGuidedMatchesSequentialLoop(t *testing.T) {
	f := func(nRaw uint16, workersRaw uint8) bool {
		n := int(nRaw % 700)
		workers := int(workersRaw%12) + 1
		visited := make([]int32, n)
		err := NewPool(workers).WithSchedule(ScheduleGuided).ForEach(n, func(i int) error {
			atomic.AddInt32(&visited[i], 1)
			return nil
		})
		if err != nil {
			return false
		}
		for _, v := range visited {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGuidedStragglerTail records the claim schedule and verifies the
// property that motivates guided scheduling for heavy-tailed per-server
// cost: claims shrink toward the tail, so a pathological server near the
// end of the index space strands at most a handful of chunkmates behind it,
// where the fixed-chunk policy strands n/(4·workers).
func TestGuidedStragglerTail(t *testing.T) {
	const n, workers = 1024, 4
	var (
		mu     sync.Mutex
		claims [][2]int
	)
	claimObserver = func(lo, hi int) {
		mu.Lock()
		claims = append(claims, [2]int{lo, hi})
		mu.Unlock()
	}
	defer func() { claimObserver = nil }()

	err := NewPool(workers).WithSchedule(ScheduleGuided).ForEach(n, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) == 0 {
		t.Fatal("no claims recorded")
	}
	maxSize, tailMax, sawSingle := 0, 0, false
	covered := 0
	for _, c := range claims {
		size := c[1] - c[0]
		covered += size
		if size > maxSize {
			maxSize = size
		}
		// Claims that begin in the final 5% of the index space.
		if c[0] >= n*95/100 {
			if size > tailMax {
				tailMax = size
			}
		}
		if size == 1 {
			sawSingle = true
		}
	}
	if covered != n {
		t.Fatalf("claims cover %d items, want %d", covered, n)
	}
	// The first claim takes remaining/(2·workers) = n/8; no claim may exceed it.
	if maxSize > n/(2*workers) {
		t.Errorf("claim of %d items exceeds the claim-half bound %d", maxSize, n/(2*workers))
	}
	// The tail must be fine-grained: by the last 5% of the space, remaining
	// ≤ n/20, so claims are at most n/(20·2·workers) ≈ 6 items here — far
	// below the fixed-chunk policy's n/(4·workers) = 64.
	if want := n / (100 / 5) / (2 * workers); tailMax > max(want, 1) {
		t.Errorf("tail claim of %d items; guided tail should be ≤ %d", tailMax, max(want, 1))
	}
	if !sawSingle {
		t.Error("guided schedule never degraded to single-item claims")
	}
}

// TestGuidedScratchConfinement mirrors the chunked scratch test on the
// guided dispatcher: scratch values must stay confined to one worker
// goroutine (plain increments below would trip -race otherwise).
func TestGuidedScratchConfinement(t *testing.T) {
	type scratch struct{ items int32 }
	var (
		mu      sync.Mutex
		created []*scratch
	)
	const n, workers = 500, 4
	p := NewPool(workers).WithSchedule(ScheduleGuided)
	err := ForEachScratch(p, n, func() *scratch {
		mu.Lock()
		defer mu.Unlock()
		s := &scratch{}
		created = append(created, s)
		return s
	}, func(i int, s *scratch) error {
		s.items++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int32
	for _, s := range created {
		total += s.items
	}
	if total != n {
		t.Errorf("scratch items total %d, want %d", total, n)
	}
}

func TestWithScheduleLeavesReceiverUntouched(t *testing.T) {
	p := NewPool(3)
	g := p.WithSchedule(ScheduleGuided)
	if p.sched != ScheduleChunked {
		t.Error("WithSchedule mutated the receiver")
	}
	if g.sched != ScheduleGuided || g.Workers() != 3 {
		t.Errorf("derived pool sched=%v workers=%d", g.sched, g.Workers())
	}
}

func TestForEachScratchPerWorker(t *testing.T) {
	type scratch struct {
		worker int
		items  int32
	}
	var (
		mu      sync.Mutex
		created []*scratch
	)
	const n, workers = 500, 4
	err := ForEachScratch(NewPool(workers), n, func() *scratch {
		mu.Lock()
		defer mu.Unlock()
		s := &scratch{worker: len(created)}
		created = append(created, s)
		return s
	}, func(i int, s *scratch) error {
		// No atomics: each scratch must be confined to one worker goroutine,
		// so plain increments racing would be caught by -race.
		s.items++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(created) == 0 || len(created) > workers {
		t.Fatalf("newScratch ran %d times, want 1..%d", len(created), workers)
	}
	var total int32
	for _, s := range created {
		total += s.items
	}
	if total != n {
		t.Errorf("scratch items total %d, want %d", total, n)
	}
}

func TestForEachScratchSequential(t *testing.T) {
	creations := 0
	var got []int
	err := ForEachScratch(NewPool(1), 5, func() *int {
		creations++
		v := 0
		return &v
	}, func(i int, s *int) error {
		*s++
		got = append(got, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if creations != 1 {
		t.Errorf("sequential path created %d scratches", creations)
	}
	for i, v := range got {
		if v != i {
			t.Errorf("sequential path order got[%d]=%d", i, v)
		}
	}
}

func TestForEachScratchError(t *testing.T) {
	wantErr := errors.New("boom")
	var count int32
	err := ForEachScratch(NewPool(3), 40, func() int { return 0 }, func(i int, _ int) error {
		atomic.AddInt32(&count, 1)
		if i == 7 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v", err)
	}
	if count != 40 {
		t.Errorf("error cancelled remaining items: ran %d", count)
	}
}

func TestMapIntoReusesBuffer(t *testing.T) {
	p := NewPool(4)
	in := make([]int, 300)
	for i := range in {
		in[i] = i
	}
	out := make([]int, len(in))
	for round := 0; round < 3; round++ {
		r := round
		if err := MapInto(p, in, out, func(v int) (int, error) { return v * r, nil }); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*r {
				t.Fatalf("round %d: out[%d] = %d, want %d", r, i, v, i*r)
			}
		}
	}
}

func TestMapIntoShortOut(t *testing.T) {
	err := MapInto(NewPool(2), []int{1, 2, 3}, make([]int, 2), func(v int) (int, error) { return v, nil })
	if err == nil {
		t.Error("MapInto must reject an undersized out slice")
	}
}

func TestMapIntoError(t *testing.T) {
	out := make([]int, 4)
	err := MapInto(NewPool(2), []int{1, 2, 3, 4}, out, func(v int) (int, error) {
		if v == 3 {
			return 0, fmt.Errorf("item %d", v)
		}
		return v * 10, nil
	})
	if err == nil {
		t.Fatal("MapInto must propagate errors")
	}
}

// TestForEachSequentialPanic exercises panic recovery on the workers==1 fast
// path, which bypasses the goroutine dispatcher entirely.
func TestForEachSequentialPanic(t *testing.T) {
	var count int32
	err := NewPool(1).ForEach(6, func(i int) error {
		atomic.AddInt32(&count, 1)
		if i == 2 {
			panic("sequential boom")
		}
		return nil
	})
	if err == nil {
		t.Error("sequential panic must surface as error")
	}
	if count != 6 {
		t.Errorf("sequential panic cancelled remaining items: ran %d", count)
	}
}
