package parallel

import "time"

// nowNanos is split out so the timing-sensitive test reads clearly.
func nowNanos() int64 { return time.Now().UnixNano() }
