package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCtxCompletesWithLiveContext(t *testing.T) {
	pool := NewPool(4)
	var visited atomic.Int64
	err := pool.ForEachCtx(context.Background(), 100, func(i int) error {
		visited.Add(1)
		return nil
	})
	if err != nil || visited.Load() != 100 {
		t.Fatalf("err=%v visited=%d", err, visited.Load())
	}
}

func TestForEachCtxStopsClaimingAfterCancel(t *testing.T) {
	pool := NewPool(2)
	ctx, cancel := context.WithCancel(context.Background())
	var visited atomic.Int64
	started := make(chan struct{}, 1)
	err := pool.ForEachCtx(ctx, 10_000, func(i int) error {
		select {
		case started <- struct{}{}:
			cancel() // cancel from inside the first item observed
		default:
		}
		visited.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Workers abandon unclaimed ranges; with chunked claims each worker can
	// finish at most its in-flight chunk.
	if n := visited.Load(); n == 0 || n >= 10_000 {
		t.Fatalf("visited = %d, want partial progress", n)
	}
}

func TestForEachCtxAlreadyCancelled(t *testing.T) {
	pool := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var visited atomic.Int64
	err := pool.ForEachCtx(ctx, 100, func(i int) error {
		visited.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visited.Load() != 0 {
		t.Fatalf("visited = %d, want 0", visited.Load())
	}
}

func TestForEachCtxSingleWorkerObservesCancelBetweenItems(t *testing.T) {
	pool := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	var visited int
	err := pool.ForEachCtx(ctx, 100, func(i int) error {
		visited++
		if i == 4 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visited != 5 {
		t.Fatalf("visited = %d, want 5 (cancel after item 4)", visited)
	}
}

func TestForEachCtxItemErrorWinsOverLateCancel(t *testing.T) {
	pool := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := pool.ForEachCtx(ctx, 10, func(i int) error {
		if i == 2 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the item error", err)
	}
}

func TestForEachScratchCtxCancel(t *testing.T) {
	pool := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var made atomic.Int64
	err := ForEachScratchCtx(ctx, pool, 100,
		func() *int { made.Add(1); v := 0; return &v },
		func(i int, s *int) error { *s++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
