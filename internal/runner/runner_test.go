package runner

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"seagull/internal/registry"
	"seagull/internal/serving"
)

func fakeProbe(name string, healthy bool, latency time.Duration) Probe {
	return ProbeFunc{ProbeName: name, Fn: func() ProbeResult {
		return ProbeResult{Probe: name, Healthy: healthy, Latency: latency}
	}}
}

func TestRunOnceAccumulatesStats(t *testing.T) {
	r := New("cluster-1", nil)
	r.Register(fakeProbe("good", true, 10*time.Millisecond))
	r.Register(fakeProbe("bad", false, 20*time.Millisecond))

	for i := 0; i < 4; i++ {
		results, err := r.RunOnce()
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 2 {
			t.Fatalf("results = %d", len(results))
		}
	}
	good, ok := r.ProbeStats("good")
	if !ok || good.Checks != 4 || good.Availability() != 1 {
		t.Errorf("good stats = %+v ok=%v", good, ok)
	}
	if good.MeanLatency() != 10*time.Millisecond {
		t.Errorf("good latency = %v", good.MeanLatency())
	}
	bad, _ := r.ProbeStats("bad")
	if bad.Availability() != 0 {
		t.Errorf("bad availability = %v", bad.Availability())
	}
	if _, ok := r.ProbeStats("missing"); ok {
		t.Error("missing probe should not have stats")
	}
	if got := r.Probes(); len(got) != 2 || got[0] != "bad" {
		t.Errorf("Probes = %v", got)
	}
}

func TestEmptyStats(t *testing.T) {
	var s Stats
	if s.Availability() != 0 || s.MeanLatency() != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestJobsRunAndRecordErrors(t *testing.T) {
	r := New("cluster-1", nil)
	ran := 0
	r.AddJob(JobFunc{JobName: "schedule-backups", Fn: func() error {
		ran++
		return nil
	}})
	boom := errors.New("boom")
	r.AddJob(JobFunc{JobName: "flaky", Fn: func() error { return boom }})

	_, err := r.RunOnce()
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if ran != 1 {
		t.Errorf("job ran %d times", ran)
	}
	if errs := r.JobErrors("flaky"); len(errs) != 1 {
		t.Errorf("job errors = %v", errs)
	}
	if errs := r.JobErrors("schedule-backups"); len(errs) != 0 {
		t.Errorf("clean job has errors: %v", errs)
	}
}

func TestHTTPProbeAgainstServingEndpoint(t *testing.T) {
	reg := registry.New(nil)
	srv := httptest.NewServer(serving.NewHandler(reg))
	defer srv.Close()

	r := New("cluster-1", nil)
	r.Register(&HTTPProbe{ProbeName: "serving", URL: srv.URL + "/healthz"})
	if _, err := r.RunOnce(); err != nil {
		t.Fatal(err)
	}
	st, ok := r.ProbeStats("serving")
	if !ok || st.Availability() != 1 {
		t.Errorf("stats = %+v ok=%v", st, ok)
	}
	if st.LastResult.Latency <= 0 {
		t.Error("latency not measured")
	}
}

func TestHTTPProbeUnhealthy(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer down.Close()

	p := &HTTPProbe{ProbeName: "down", URL: down.URL}
	res := p.Check()
	if res.Healthy || res.Detail == "" {
		t.Errorf("result = %+v", res)
	}

	// Unreachable endpoint.
	p = &HTTPProbe{ProbeName: "gone", URL: "http://127.0.0.1:1/healthz",
		Client: &http.Client{Timeout: 200 * time.Millisecond}}
	res = p.Check()
	if res.Healthy {
		t.Error("unreachable endpoint should be unhealthy")
	}
}

func TestProbeTimestampFilledByClock(t *testing.T) {
	fixed := time.Date(2020, 3, 1, 12, 0, 0, 0, time.UTC)
	r := New("c", func() time.Time { return fixed })
	r.Register(fakeProbe("p", true, 0)) // fake probe leaves At zero
	results, err := r.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].At.Equal(fixed) {
		t.Errorf("At = %v, want %v", results[0].At, fixed)
	}
}
